# Developer entry points. Everything is plain `go` underneath; the targets
# just pin the flag combinations used by CI and by EXPERIMENTS.md.

GO ?= go
INSTS ?= 1000000

.PHONY: build test race bench sweep accuracy clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The scheduler's contract is that parallel fan-out never changes results;
# the race target is how that claim is enforced.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# Regenerates EXPERIMENTS.md at full trace length (stderr carries the
# per-study wall times and effective sim-instrs/s summary).
sweep:
	$(GO) run ./cmd/sweep -insts $(INSTS) -markdown > EXPERIMENTS.md

accuracy:
	$(GO) run ./cmd/accuracy

clean:
	$(GO) clean ./...
