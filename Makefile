# Developer entry points. Everything is plain `go` underneath; the targets
# just pin the flag combinations used by CI and by EXPERIMENTS.md.

GO ?= go
INSTS ?= 1000000
# Content-addressed run cache shared by sweep/accuracy/serve: repeated runs
# with unchanged config+workload+seed+model are served without simulating.
CACHE_DIR ?= .simcache

.PHONY: build test race bench benchdiff bench-baseline sampling-speedup sweep accuracy serve smoke cluster-smoke verify verify-quick litmus clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The scheduler's contract is that parallel fan-out never changes results;
# the race target is how that claim is enforced.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# Benchmark regression gate (scripts/benchdiff.sh): median-of-5 sched and
# runcache micro-benchmarks vs scripts/bench_baseline.json. allocs/op is a
# tight machine-independent gate (±15%); ns/op is loose by default
# (BENCH_NS_TOLERANCE=75) to survive noisy CI hosts. bench-baseline
# rewrites the baseline after an intended change.
benchdiff:
	./scripts/benchdiff.sh

bench-baseline:
	./scripts/benchdiff.sh -update

# Re-measures the sampled-simulation demonstration (4-CPU TPC-C, 2M
# insts/CPU: >= 10x speedup at |CPI error| < 5%) and rewrites the
# checked-in artifact scripts/sampling_speedup.json. Fails if the bar is
# missed. See DESIGN.md "Sampled simulation".
sampling-speedup:
	./scripts/sampling_speedup.sh

# Regenerates EXPERIMENTS.md at full trace length (stderr carries the
# per-study wall times, effective sim-instrs/s, and cache summary). The
# cache makes regeneration incremental: only runs invalidated by a config,
# workload, seed, or model-version change re-simulate.
sweep:
	$(GO) run ./cmd/sweep -insts $(INSTS) -markdown -cache-dir $(CACHE_DIR) > EXPERIMENTS.md

accuracy:
	$(GO) run ./cmd/accuracy -cache-dir $(CACHE_DIR)

# Serves the simulator over HTTP (see cmd/simd and README "Simulation as
# a service"): POST /v1/run, GET /v1/studies/{id}, /healthz, /metrics.
serve:
	$(GO) run ./cmd/simd -cache-dir $(CACHE_DIR)

# End-to-end service check: boots simd, proves a repeated request is a
# cache hit via /metrics, and drains it with SIGINT.
smoke:
	./scripts/smoke.sh

# End-to-end cluster check: boots three peer-meshed simd workers behind
# a simgw gateway, runs a sweep twice, and proves via the gateway's
# /metrics that the warm pass simulated nothing anywhere in the pool;
# then drains a worker and shows the pool stays available. See DESIGN.md
# "Distributed tier".
cluster-smoke:
	./scripts/cluster_smoke.sh

# Metamorphic cross-verification harness (internal/metamorph, cmd/verify):
# monotonicity, conservation, differential and TSO-conformance invariants
# over the model. verify-quick is the CI merge gate (litmus sweeps at 32
# seeds per shape) and writes the machine-readable verdict report CI
# uploads as an artifact; verify runs the whole catalog on every workload
# with litmus sweeps doubled to 64 seeds. See DESIGN.md "Verification" and
# "Memory-ordering verification".
verify-quick:
	$(GO) run ./cmd/verify -quick -json verify-report.json

verify:
	$(GO) run ./cmd/verify -full -json verify-report.json

# TSO litmus sweeps with the outcome histograms on stdout (the same
# machinery the tso-outcomes verify check gates on).
litmus:
	$(GO) run ./cmd/sparc64sim -litmus all

clean:
	$(GO) clean ./...
	rm -rf $(CACHE_DIR)
