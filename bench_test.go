package sparc64v

import (
	"testing"

	"sparc64v/internal/core"
	"sparc64v/internal/sched"
	"sparc64v/internal/system"
	"sparc64v/internal/trace"
	"sparc64v/internal/workload"
)

// One benchmark per table/figure of the paper's evaluation. Each iteration
// regenerates the artifact at a reduced trace length; cmd/sweep produces
// the full-length numbers recorded in EXPERIMENTS.md.

// benchOpt keeps per-iteration cost moderate.
func benchOpt() RunOptions { return RunOptions{Insts: 60_000} }

// workloadHPC aliases the HPC profile (not part of the paper's five).
func workloadHPC() Profile { return workload.HPC() }

func BenchmarkTable1Base(b *testing.B) {
	b.ReportAllocs()
	// The base-machine run behind Table 1's configuration: simulate the
	// Table 1 machine on TPC-C and report simulated instructions/second —
	// the modern counterpart of the paper's "7.8K instructions per second
	// on a 1GHz Pentium III" model-speed quote.
	m, err := NewModel(BaseConfig())
	if err != nil {
		b.Fatal(err)
	}
	opt := benchOpt()
	total := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := m.Run(TPCC(), opt)
		if err != nil {
			b.Fatal(err)
		}
		total += int64(r.Committed)
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "sim-instrs/s")
}

func BenchmarkFig07Breakdown(b *testing.B) {
	b.ReportAllocs()
	m, _ := NewModel(BaseConfig())
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		if _, err := m.Breakdown(TPCC(), opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig08IssueWidth(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fig08(benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig09BHT(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Fig09and10(benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11L1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Fig11to13(benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14L2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Fig14and15(benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16Prefetch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Fig16and17(benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18RS(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fig18(benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig19Accuracy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fig19(benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

func benchConfig(b *testing.B, cfg Config, p Profile) {
	b.Helper()
	b.ReportAllocs()
	m, err := NewModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(p, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSpeculativeDispatchOff(b *testing.B) {
	b.ReportAllocs()
	cfg := BaseConfig()
	cfg.CPU.SpeculativeDispatch = false
	benchConfig(b, cfg, SPECint95())
}

func BenchmarkAblationDataForwardingOff(b *testing.B) {
	b.ReportAllocs()
	cfg := BaseConfig()
	cfg.CPU.DataForwarding = false
	benchConfig(b, cfg, SPECint95())
}

func BenchmarkAblationBlockingL1(b *testing.B) {
	b.ReportAllocs()
	cfg := BaseConfig()
	cfg.L1D.MSHRs = 1
	benchConfig(b, cfg, TPCC())
}

func BenchmarkAblationFlatMemory(b *testing.B) {
	b.ReportAllocs()
	cfg := BaseConfig()
	cfg.Fidelity.FlatMemory = true
	cfg.Fidelity.FlatMemoryCycles = 22
	benchConfig(b, cfg, TPCC())
}

func BenchmarkAblationSingleBankL1(b *testing.B) {
	b.ReportAllocs()
	cfg := BaseConfig()
	cfg.L1D.Banks = 1
	benchConfig(b, cfg, SPECint95())
}

// Raw component benches.

func BenchmarkTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	g := workload.New(workload.TPCC(), 1, 0)
	var r trace.Record
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(&r)
	}
}

func BenchmarkSimulatorSpeed(b *testing.B) {
	b.ReportAllocs()
	// Simulated instructions per wall-clock second on SPECint95.
	m, _ := NewModel(BaseConfig())
	opt := core.RunOptions{Insts: 100_000}
	total := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := m.Run(SPECint95(), opt)
		if err != nil {
			b.Fatal(err)
		}
		total += int64(r.Committed)
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "sim-instrs/s")
}

func BenchmarkSchedulerSweep(b *testing.B) {
	// A batch of independent runs through the sched worker pool — the shape
	// every expt study and cmd/sweep reduce to. Reports aggregate simulated
	// instructions per wall-clock second at the default worker count.
	b.ReportAllocs()
	m, _ := NewModel(BaseConfig())
	profiles := []Profile{SPECint95(), SPECfp95(), SPECint2000(), SPECfp2000(), TPCC()}
	opt := core.RunOptions{Insts: 60_000}
	total := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := sched.Map(len(profiles), sched.Options{Workers: opt.Workers},
			func(j int) (system.Report, error) { return m.Run(profiles[j], opt) })
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reports {
			total += int64(r.Committed)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "sim-instrs/s")
}

func BenchmarkAblationStoreForwardingOff(b *testing.B) {
	b.ReportAllocs()
	cfg := BaseConfig()
	cfg.CPU.StoreForwarding = false
	benchConfig(b, cfg, TPCC())
}

func BenchmarkAblationSingleFMAUnit(b *testing.B) {
	b.ReportAllocs()
	// The paper: "Having two sets of floating-point multiply-add execution
	// units is effective for HPC performance." This ablation halves them.
	cfg := BaseConfig()
	cfg.CPU.FPUnits = 1
	benchConfig(b, cfg, workloadHPC())
}
