// Command accuracy runs the paper's model-verification workflow (sections
// 2 and 5) end to end:
//
//  1. the fidelity ladder v1..v8 against the final model and the
//     physical-machine proxy (Figure 19),
//  2. trend agreement between the detailed model and the independent
//     in-order reference model (the initial-model validation), and
//  3. a reverse-tracer round trip: trace -> test program -> replay, with a
//     cycle-exact model comparison (the logic-simulator cross-check).
//
// Example:
//
//	accuracy -workload specint2000 -insts 300000
//
// With -cache-dir the profile-based simulations go through the
// content-addressed run cache (internal/runcache), so re-running the
// workflow after an interruption or on a warm cache skips the ladder and
// trend runs that already completed. The reverse-tracer section replays
// explicit traces and always simulates.
//
// Run lifecycle: -timeout bounds the whole workflow and SIGINT (Ctrl-C)
// cancels it cooperatively; sections that already printed stand, the
// section in flight reports the cancellation, and the process exits
// non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"sparc64v/internal/analytic"
	"sparc64v/internal/config"
	"sparc64v/internal/core"
	"sparc64v/internal/obs"
	"sparc64v/internal/runcache"
	"sparc64v/internal/stats"
	"sparc64v/internal/trace"
	"sparc64v/internal/verif"
	"sparc64v/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "specint2000", "workload name")
		insts        = flag.Int("insts", 300_000, "instructions per run")
		seed         = flag.Int64("seed", 42, "workload seed")
		parallel     = flag.Bool("parallel", true, "run independent simulations concurrently")
		workers      = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		timeout      = flag.Duration("timeout", 0, "abort the workflow after this long (0 = no limit)")
		cacheDir     = flag.String("cache-dir", "", "content-addressed run cache directory (empty = no cache)")
		profile      = flag.String("profile", "", "write a JSON timing+counter profile of every run to this file")
		sample       = flag.String("sample", "", "sampled simulation for the ladder and trend runs: off|auto|interval=N,warmup=N,measure=N[,offset=N]")
		batch        = flag.Int("batch", 0, "lockstep-batch up to N same-trace ladder configurations per decode (0/1 = serial decode per run)")
	)
	flag.Parse()
	prof, ok := workload.ByName(*workloadName)
	if !ok {
		fatal("unknown workload %q (have %v)", *workloadName, workload.Names())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opt := core.RunOptions{Insts: *insts, Seed: *seed, Workers: *workers, Batch: *batch}
	if !*parallel {
		opt.Workers = 1
	}
	// Sampling accelerates the ladder and trend sections; the reverse-tracer
	// round trip below is a cycle-exact comparison and always runs full.
	var sampErr error
	if opt.Sample, sampErr = config.ParseSampling(*sample, *insts); sampErr != nil {
		fatal("%v", sampErr)
	}
	if *profile != "" {
		opt.Obs = obs.NewCollector()
	}
	if *cacheDir != "" {
		cache, err := runcache.New(runcache.Options{Dir: *cacheDir})
		if err != nil {
			fatal("%v", err)
		}
		opt.Cache = cache
	}
	base := config.Base()

	// 1. Fidelity ladder.
	study, err := verif.RunAccuracyStudyContext(ctx, base, prof, opt)
	if err != nil {
		fatalCtx(err)
	}
	t := stats.NewTable(fmt.Sprintf("Model versions on %s (machine proxy IPC %.3f)",
		prof.Name, study.MachineIPC),
		"version", "detail", "IPC", "perf/v8", "err vs machine %")
	// The analytic estimator sits below the ladder as a simulation-free v0
	// rung; a workload outside the calibration set simply omits it.
	if cal, calErr := analytic.Default(); calErr == nil {
		if v0, rungErr := verif.AnalyticRung(cal, base, &study); rungErr == nil {
			t.AddRow(v0.Name, v0.Detail, v0.IPC, v0.RatioToFinal, 100*v0.ErrorVsMachine)
		}
	}
	for _, p := range study.Points {
		t.AddRow(p.Name, p.Detail, p.IPC, p.RatioToFinal, 100*p.ErrorVsMachine)
	}
	fmt.Print(t.String())
	fmt.Printf("final model error: %.2f%% (paper achieved <5%%)\n\n", 100*study.FinalError())

	// 2. Trend checks against the independent reference model.
	fmt.Println("Trend agreement (detailed model vs independent in-order reference):")
	for _, c := range []struct {
		name    string
		variant config.Config
	}{
		{"32k-1w.3c L1", base.WithSmallL1()},
		{"off.8m-1w L2", base.WithOffChipL2(1)},
		{"4k-2w.1t BHT", base.WithSmallBHT()},
	} {
		tc, err := verif.RunTrendCheckContext(ctx, c.name, base, c.variant, prof, opt)
		if err != nil {
			fatalCtx(err)
		}
		verdict := "AGREE"
		if !tc.Agree() {
			verdict = "DISAGREE"
		}
		fmt.Printf("  %-14s model %+6.2f%%  reference %+6.2f%%  -> %s\n",
			c.name, 100*tc.ModelDelta, 100*tc.ReferenceDelta, verdict)
	}
	fmt.Println()

	// 3. Reverse-tracer round trip with cycle-exact comparison.
	recs := trace.Collect(trace.NewLimitSource(workload.New(prof, *seed, 0), *insts), 0)
	prog, err := verif.FromTrace(trace.NewSliceSource(recs))
	if err != nil {
		fatal("reverse trace: %v", err)
	}
	m, err := core.NewModel(base)
	if err != nil {
		fatal("%v", err)
	}
	ro := core.RunOptions{Insts: len(recs), Seed: *seed, Warmup: 1, Obs: opt.Obs}
	r1, err := m.RunSourcesContext(ctx, "trace", []trace.Source{trace.NewSliceSource(recs)}, ro)
	if err != nil {
		fatalCtx(err)
	}
	r2, err := m.RunSourcesContext(ctx, "replay", []trace.Source{prog.Replay()}, ro)
	if err != nil {
		fatalCtx(err)
	}
	fmt.Printf("Reverse tracer: %d dynamic instrs -> %d static; trace %d cycles, replay %d cycles",
		prog.Len(), prog.StaticInstrs(), r1.Cycles, r2.Cycles)
	if *profile != "" {
		if err := opt.Obs.WriteProfileFile(*profile); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "accuracy: wrote run profiles to %s\n", *profile)
	}
	if r1.Cycles == r2.Cycles && r1.Committed == r2.Committed {
		fmt.Println("  [EXACT MATCH]")
	} else {
		fmt.Println("  [MISMATCH]")
		os.Exit(1)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "accuracy: "+format+"\n", args...)
	os.Exit(1)
}

// fatalCtx distinguishes a cooperative cancellation (timeout or Ctrl-C)
// from a genuine failure; sections printed before the cancellation stand.
func fatalCtx(err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		fatal("timed out: %v (completed sections rendered above)", err)
	case errors.Is(err, context.Canceled):
		fatal("interrupted: %v (completed sections rendered above)", err)
	default:
		fatal("%v", err)
	}
}
