// Command calibrate regenerates the analytic estimator's checked-in
// calibration artifact (internal/analytic/calibration.json): it runs the
// detailed model over the calibration ladder for every uniprocessor
// workload, fits the per-workload coefficients, and writes the artifact
// with its residual report.
//
//	calibrate                          # rewrite internal/analytic/calibration.json
//	calibrate -out - -insts 300000     # print a longer-trace artifact to stdout
//	calibrate -cache-dir .simcache     # reuse cached reference runs
//
// Rerun after any change that bumps core.ModelVersion; the artifact records
// the version it was fitted against and estimates refuse stale artifacts.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sparc64v/internal/analytic"
	"sparc64v/internal/runcache"
	"sparc64v/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	out := flag.String("out", "internal/analytic/calibration.json",
		`artifact path ("-" = stdout)`)
	insts := flag.Int("insts", analytic.DefaultInsts, "per-run detailed trace length")
	seed := flag.Int64("seed", 42, "trace window seed")
	workers := flag.Int("workers", 0, "concurrent reference runs (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "content-addressed run cache directory (empty = no cache)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := analytic.CalibrateOptions{Insts: *insts, Seed: *seed, Workers: *workers}
	if *cacheDir != "" {
		c, err := runcache.New(runcache.Options{Dir: *cacheDir})
		if err != nil {
			fmt.Fprintf(os.Stderr, "calibrate: %v\n", err)
			return 2
		}
		opt.Cache = c
	}

	profiles := append(workload.UPProfiles(), workload.HPC())
	start := time.Now()
	cal, err := analytic.Calibrate(ctx, profiles, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "calibrate: %v\n", err)
		return 2
	}

	var buf bytes.Buffer
	if err := cal.Write(&buf); err != nil {
		fmt.Fprintf(os.Stderr, "calibrate: %v\n", err)
		return 2
	}
	if *out == "-" {
		os.Stdout.Write(buf.Bytes())
	} else if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "calibrate: %v\n", err)
		return 2
	}

	fmt.Fprintf(os.Stderr, "calibrated %d workloads at insts=%d seed=%d in %s (model %s)\n",
		len(cal.Workloads), cal.Insts, cal.Seed,
		time.Since(start).Round(time.Millisecond), cal.ModelVersion)
	for _, wc := range cal.Workloads {
		fmt.Fprintf(os.Stderr, "  %-12s core=%.3f mem=%.3f branch=%.3f const=%.3f  max|err|=%.2f%% rmse=%.2f%%\n",
			wc.Features.Workload, wc.Coeffs.Core, wc.Coeffs.Mem, wc.Coeffs.Branch,
			wc.Coeffs.Const, 100*wc.MaxRelErr, 100*wc.RMSE)
	}
	return 0
}
