// Command ingest converts a raw instruction capture — the
// "<pc> <instruction-word> [<ea>]" per-line shape a Shade-style tracer
// produces — into the model's binary trace format, decoding each SPARC-V9
// word and inferring branch outcomes from the captured control flow.
//
// Example:
//
//	ingest -in capture.txt -out run.s64v -gzip
//	sparc64sim -trace run.s64v
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"

	"sparc64v/internal/trace"
)

func main() {
	var (
		in       = flag.String("in", "", "raw capture file (default stdin)")
		out      = flag.String("out", "", "binary trace output file (required)")
		compress = flag.Bool("gzip", false, "gzip-compress the output")
	)
	flag.Parse()
	if *out == "" {
		fatal("need -out")
	}

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		src = f
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	var sink io.Writer = f
	var gz *gzip.Writer
	if *compress {
		gz = gzip.NewWriter(f)
		sink = gz
	}
	w, err := trace.NewWriter(sink)
	if err != nil {
		fatal("%v", err)
	}
	n, err := trace.IngestRaw(src, w)
	if err != nil {
		fatal("%v", err)
	}
	if err := w.Flush(); err != nil {
		fatal("%v", err)
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			fatal("%v", err)
		}
	}
	fmt.Printf("ingested %d instructions into %s\n", n, *out)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ingest: "+format+"\n", args...)
	os.Exit(1)
}
