// Command pipeview renders a per-instruction pipeline trace: when each
// instruction fetched, issued, dispatched, completed and committed, plus a
// gem5-style occupancy lane. This is the tooling counterpart of the
// paper's detailed model-vs-logic-simulator comparisons.
//
// Example:
//
//	pipeview -workload specint95 -skip 2000 -n 40 -lanes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sparc64v/internal/config"
	"sparc64v/internal/cpu"
	"sparc64v/internal/system"
	"sparc64v/internal/trace"
	"sparc64v/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "specint95", "workload name")
		skip         = flag.Int("skip", 1000, "instructions to skip before tracing")
		n            = flag.Int("n", 30, "instructions to trace")
		lanes        = flag.Bool("lanes", false, "render occupancy lanes instead of timestamps")
		seed         = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	prof, ok := profileByName(*workloadName)
	if !ok {
		fmt.Fprintf(os.Stderr, "pipeview: unknown workload %q\n", *workloadName)
		os.Exit(1)
	}
	cfg := config.Base()
	cfg.WarmupInsts = 0
	src := trace.NewLimitSource(workload.New(prof, *seed, 0), *skip+*n+500)
	sys, err := system.New(cfg, []trace.Source{src})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipeview:", err)
		os.Exit(1)
	}
	var events []cpu.PipeEvent
	sys.CPU(0).SetPipeTracer(func(e *cpu.PipeEvent) {
		if int(e.Seq) >= *skip && len(events) < *n {
			events = append(events, *e)
		}
	})
	sys.Run(100_000_000)

	if len(events) == 0 {
		fmt.Println("no events traced")
		return
	}
	if !*lanes {
		for i := range events {
			fmt.Println(events[i].String())
		}
		return
	}
	base := events[0].Fetch
	width := int(events[len(events)-1].Commit-base) + 2
	if width > 160 {
		width = 160
	}
	fmt.Printf("cycles %d..%d  (f=fetch/decode i=reservation station d=execute .=wait C=commit)\n",
		base, base+uint64(width))
	for i := range events {
		e := &events[i]
		tag := fmt.Sprintf("%-7s %#x", e.Op, e.PC)
		fmt.Printf("%-24s |%s|\n", tag, e.Lane(base, width))
	}
	_ = strings.TrimSpace("")
}

func profileByName(name string) (workload.Profile, bool) {
	switch strings.ToLower(name) {
	case "specint95":
		return workload.SPECint95(), true
	case "specfp95":
		return workload.SPECfp95(), true
	case "specint2000":
		return workload.SPECint2000(), true
	case "specfp2000":
		return workload.SPECfp2000(), true
	case "tpcc":
		return workload.TPCC(), true
	}
	return workload.Profile{}, false
}
