// Command simd serves the simulator over HTTP ("simulation as a
// service"): content-addressed runs, the experiment-study harness, a
// health probe, and Prometheus-style metrics.
//
// Endpoints:
//
//	POST /v1/run          run (or fetch) one simulation; JSON in/out
//	POST /v1/estimate     closed-form analytic CPI estimate (sub-ms, no
//	                      simulation, never queued); 404 + fallback hint
//	                      when the request is outside the calibration set
//	GET  /v1/studies/{id} run one expt study (table-1, figure-7, ...)
//	GET  /healthz         liveness probe
//	GET  /metrics         text metrics (cache, queue, simulation meter)
//
// Example:
//
//	simd -addr :8964 -cache-dir /var/cache/sparc64v &
//	curl -s localhost:8964/v1/run -d '{"workload":"specint95","insts":100000}'
//
// Repeating the same request is a cache hit (see the response's "cache"
// field and /metrics); concurrent identical requests share one
// simulation. When the queue is full the server sheds load with 429
// instead of accepting unbounded work. SIGINT/SIGTERM drains: in-flight
// requests finish, new connections are refused.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux for -pprof-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sparc64v/internal/runcache"
	"sparc64v/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8964", "listen address")
		cacheDir = flag.String("cache-dir", "", "persistent run-cache directory (empty = in-memory only)")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		maxQueue = flag.Int("max-queue", 64, "jobs admitted beyond the running ones before shedding 429s (negative = none)")
		insts    = flag.Int("insts", 1_000_000, "default instructions per CPU when a request omits insts")
		pprof    = flag.String("pprof-addr", "", "serve net/http/pprof on this side address (empty = disabled)")
		nodeID   = flag.String("node-id", "", "cluster node name, echoed as X-Node on every response (empty = single-node)")
		peers    = flag.String("peers", "", "comma-separated peer base URLs for the shared-cache tier (e.g. http://host:8965,http://host:8966)")
	)
	flag.Parse()

	cache, err := runcache.New(runcache.Options{Dir: *cacheDir})
	if err != nil {
		fatal("%v", err)
	}
	srv, err := server.New(server.Config{
		Cache:        cache,
		Workers:      *workers,
		MaxQueue:     *maxQueue,
		DefaultInsts: *insts,
		NodeID:       *nodeID,
		Peers:        splitPeers(*peers),
	})
	if err != nil {
		fatal("%v", err)
	}

	if *pprof != "" {
		// pprof stays off the service mux and listener: profiling must not
		// be reachable through the public address, and a wedged service
		// port can still be profiled.
		go func() {
			fmt.Fprintf(os.Stderr, "simd: pprof on http://%s/debug/pprof/\n", *pprof)
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				fmt.Fprintf(os.Stderr, "simd: pprof: %v\n", err)
			}
		}()
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "simd: listening on %s (cache-dir %q)\n", *addr, *cacheDir)

	select {
	case err := <-errc:
		fatal("%v", err)
	case <-ctx.Done():
	}
	// Drain: stop accepting, let in-flight runs finish (bounded).
	srv.DrainStarted()
	fmt.Fprintln(os.Stderr, "simd: draining (in-flight runs finish; new connections refused)")
	sctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		fatal("drain: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("%v", err)
	}
	fmt.Fprintln(os.Stderr, "simd: drained, bye")
}

// splitPeers parses the -peers flag; empty elements (trailing commas,
// doubled separators) are dropped.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "simd: "+format+"\n", args...)
	os.Exit(1)
}
