// Command simgw fronts a pool of simd workers: one address for the whole
// cluster, with placement by consistent hashing of each run's content
// address so identical requests land on the same worker and the pool
// deduplicates simulations without coordination.
//
// Endpoints:
//
//	POST /v1/run       proxied to the run's home worker, with failover
//	POST /v1/estimate  proxied by body hash (load spreading)
//	GET  /healthz      200 while at least one worker is available
//	GET  /metrics      gateway routing/health/cache-outcome metrics
//
// Example (three local workers):
//
//	simd -addr :8971 -node-id n0 -peers http://127.0.0.1:8972,http://127.0.0.1:8973 &
//	simd -addr :8972 -node-id n1 -peers http://127.0.0.1:8971,http://127.0.0.1:8973 &
//	simd -addr :8973 -node-id n2 -peers http://127.0.0.1:8971,http://127.0.0.1:8972 &
//	simgw -addr :8970 -workers n0=http://127.0.0.1:8971,n1=http://127.0.0.1:8972,n2=http://127.0.0.1:8973
//
// A worker that dies or drains mid-sweep costs a failover, not an error:
// requests retry on the next replica in the key's preference order, and
// the shared-cache tier means the replacement usually finds the entry
// its peers already computed. Worker 429s (queue full) are preserved end
// to end so clients still see backpressure.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sparc64v/internal/gateway"
)

func main() {
	var (
		addr    = flag.String("addr", ":8970", "listen address")
		workers = flag.String("workers", "", "comma-separated worker pool: name=url or bare URLs (required)")
		insts   = flag.Int("insts", 1_000_000, "default instructions per CPU (must match the workers' -insts)")
		retries = flag.Int("retries", 0, "worker attempts per request (0 = every replica once)")
		health  = flag.Duration("health-every", 2*time.Second, "active health-probe interval")
	)
	flag.Parse()

	pool, err := gateway.ParseWorkers(*workers)
	if err != nil {
		fatal("%v (use -workers name=url,name=url)", err)
	}
	gw, err := gateway.New(gateway.Config{
		Workers:      pool,
		DefaultInsts: *insts,
		RetryBudget:  *retries,
		HealthEvery:  *health,
	})
	if err != nil {
		fatal("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go gw.Run(ctx)

	hs := &http.Server{Addr: *addr, Handler: gw.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "simgw: listening on %s, %d workers\n", *addr, len(pool))

	select {
	case err := <-errc:
		fatal("%v", err)
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		fatal("shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("%v", err)
	}
	fmt.Fprintln(os.Stderr, "simgw: bye")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "simgw: "+format+"\n", args...)
	os.Exit(1)
}
