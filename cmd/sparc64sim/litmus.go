package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"sparc64v/internal/litmus"
	"sparc64v/internal/stats"
)

// runLitmus sweeps one litmus shape (or "all") and prints the outcome
// histogram with the TSO verdict. Exits non-zero if any sweep observes a
// forbidden outcome, misses a required witness, or cannot run.
func runLitmus(name string, seeds int, seed int64, cpus, workers int, jsonOut bool) {
	var tests []litmus.Test
	if name == "all" {
		tests = litmus.Tests()
	} else {
		t, ok := litmus.ByName(name)
		if !ok {
			fatal("unknown -litmus %q (have all, %s)", name, strings.Join(litmus.Names(), ", "))
		}
		tests = []litmus.Test{t}
	}
	cfg := litmus.BaseConfig()
	clean := true
	var results []litmus.SweepResult
	for _, t := range tests {
		sr, err := litmus.Sweep(context.Background(), t, cfg, litmus.Options{
			Seeds:    seeds,
			BaseSeed: seed,
			CPUs:     cpus,
			Workers:  workers,
		})
		if err != nil {
			fatal("litmus %s: %v", t.Name, err)
		}
		results = append(results, sr)
		if !sr.OK() {
			clean = false
		}
		if !jsonOut {
			printSweep(t, &sr)
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fatal("%v", err)
		}
	}
	if !clean {
		os.Exit(1)
	}
}

// printSweep renders one sweep's histogram and verdict.
func printSweep(t litmus.Test, sr *litmus.SweepResult) {
	fmt.Printf("%s: %s\n", t.Name, t.Doc)
	tbl := stats.NewTable(fmt.Sprintf("%s / %d cpus / %d seeds", sr.Test, sr.CPUs, sr.Seeds),
		"outcome", "count", "tso")
	for _, oc := range sr.Outcomes {
		verdict := "allowed"
		if !oc.Allowed {
			verdict = "FORBIDDEN"
		}
		tbl.AddRow(oc.Outcome, oc.Count, verdict)
	}
	fmt.Print(tbl.String())
	switch {
	case len(sr.Forbidden) > 0:
		fmt.Printf("FAIL: %d TSO-forbidden observations: %s\n",
			len(sr.Forbidden), strings.Join(sr.Forbidden, "; "))
	case len(sr.WitnessMissing) > 0:
		fmt.Printf("FAIL: required witness never observed: %s\n",
			strings.Join(sr.WitnessMissing, "; "))
	default:
		fmt.Println("PASS: all outcomes TSO-allowed, witnesses observed")
	}
	fmt.Println()
}
