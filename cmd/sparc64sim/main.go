// Command sparc64sim runs the SPARC64 V performance model on one workload
// and configuration and prints the report.
//
// Examples:
//
//	sparc64sim -workload tpcc -insts 500000
//	sparc64sim -workload specint95 -issue 2 -breakdown
//	sparc64sim -workload tpcc16p -cpus 16 -l2 off.8m-1w
//	sparc64sim -trace trace.s64v
//	sparc64sim -litmus sb               # TSO litmus sweep with verdict
//	sparc64sim -litmus all -cpus 4      # whole catalog, padded machine
package main

import (
	"flag"
	"fmt"
	"os"

	"sparc64v/internal/config"
	"sparc64v/internal/core"
	"sparc64v/internal/stats"
	"sparc64v/internal/system"
	"sparc64v/internal/trace"
	"sparc64v/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "specint95", "workload: specint95|specfp95|specint2000|specfp2000|tpcc|tpcc16p")
		traceFile    = flag.String("trace", "", "run a trace file instead of a synthetic workload")
		insts        = flag.Int("insts", 400_000, "instructions to simulate per CPU")
		seed         = flag.Int64("seed", 42, "workload generator seed")
		cpus         = flag.Int("cpus", 0, "processor count (0 = workload default)")
		issue        = flag.Int("issue", 4, "issue width (4 or 2)")
		bht          = flag.String("bht", "16k-4w.2t", "BHT geometry: 16k-4w.2t|4k-2w.1t")
		l1           = flag.String("l1", "128k-2w.4c", "L1 geometry: 128k-2w.4c|32k-1w.3c")
		l2           = flag.String("l2", "on.2m-4w", "L2 geometry: on.2m-4w|off.8m-2w|off.8m-1w")
		noPrefetch   = flag.Bool("no-prefetch", false, "disable the L2 hardware prefetcher")
		oneRS        = flag.Bool("1rs", false, "fused single reservation station per unit class")
		breakdown    = flag.Bool("breakdown", false, "run the Figure 7 perfect-ization breakdown")
		sample       = flag.String("sample", "", "sampled simulation: off|auto|interval=N,warmup=N,measure=N[,offset=N]")
		litmusName   = flag.String("litmus", "", "run a TSO litmus sweep instead of a workload: shape name or \"all\"")
		litmusSeeds  = flag.Int("litmus-seeds", 32, "seeds per litmus sweep")
		workers      = flag.Int("workers", 0, "parallel litmus runs (0 = GOMAXPROCS)")
		verbose      = flag.Bool("v", false, "print per-CPU detail")
		jsonOut      = flag.Bool("json", false, "emit the report as JSON")
		configFile   = flag.String("config", "", "JSON config overlay applied on top of the preset")
		dumpConfig   = flag.Bool("dump-config", false, "print the effective configuration as JSON and exit")
	)
	flag.Parse()

	if *litmusName != "" {
		// Litmus sweeps use their own dedicated machine (litmus.BaseConfig):
		// -cpus pads the machine with bystander chips, -seed offsets the
		// per-run seeds.
		runLitmus(*litmusName, *litmusSeeds, *seed, *cpus, *workers, *jsonOut)
		return
	}

	cfg := config.Base()
	if *issue != 4 {
		cfg = cfg.WithIssueWidth(*issue)
	}
	switch *bht {
	case "16k-4w.2t":
	case "4k-2w.1t":
		cfg = cfg.WithSmallBHT()
	default:
		fatal("unknown -bht %q", *bht)
	}
	switch *l1 {
	case "128k-2w.4c":
	case "32k-1w.3c":
		cfg = cfg.WithSmallL1()
	default:
		fatal("unknown -l1 %q", *l1)
	}
	switch *l2 {
	case "on.2m-4w":
	case "off.8m-2w":
		cfg = cfg.WithOffChipL2(2)
	case "off.8m-1w":
		cfg = cfg.WithOffChipL2(1)
	default:
		fatal("unknown -l2 %q", *l2)
	}
	if *noPrefetch {
		cfg = cfg.WithoutPrefetch()
	}
	if *oneRS {
		cfg = cfg.WithOneRS()
	}
	if *configFile != "" {
		f, err := os.Open(*configFile)
		if err != nil {
			fatal("%v", err)
		}
		cfg, err = config.OverlayJSON(cfg, f)
		f.Close()
		if err != nil {
			fatal("%v", err)
		}
	}
	if *dumpConfig {
		if err := cfg.WriteJSON(os.Stdout); err != nil {
			fatal("%v", err)
		}
		return
	}

	opt := core.RunOptions{Insts: *insts, Seed: *seed}
	var err error
	if opt.Sample, err = config.ParseSampling(*sample, *insts); err != nil {
		fatal("%v", err)
	}
	if opt.Sample.Enabled() && *breakdown {
		fatal("-sample and -breakdown are mutually exclusive")
	}

	if *traceFile != "" {
		runTraceFile(cfg, *traceFile, opt, *verbose, *jsonOut)
		return
	}

	prof, ok := workload.ByName(*workloadName)
	if !ok {
		fatal("unknown -workload %q (have %v)", *workloadName, workload.Names())
	}
	if *cpus > 0 {
		cfg = cfg.WithCPUs(*cpus)
	} else if prof.SharedBytes > 0 {
		cfg = cfg.WithCPUs(16)
	}

	m, err := core.NewModel(cfg)
	if err != nil {
		fatal("%v", err)
	}
	if *breakdown {
		br, err := m.Breakdown(prof, opt)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("%s on %s (%d insts/cpu)\n", prof.Name, cfg.Name, *insts)
		fmt.Printf("  IPC %.3f, breakdown: %s\n", br.Base.IPC(), br.Breakdown.String())
		return
	}
	r, err := m.Run(prof, opt)
	if err != nil {
		fatal("%v", err)
	}
	if *jsonOut {
		if err := r.WriteJSON(os.Stdout); err != nil {
			fatal("%v", err)
		}
		return
	}
	printReport(&r, *verbose)
}

func runTraceFile(cfg config.Config, path string, opt core.RunOptions, verbose, jsonOut bool) {
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	rd, err := trace.OpenReader(f)
	if err != nil {
		fatal("%v", err)
	}
	m, err := core.NewModel(cfg)
	if err != nil {
		fatal("%v", err)
	}
	r, err := m.RunSources(path, []trace.Source{rd}, opt)
	if err != nil {
		fatal("%v", err)
	}
	if rd.Err() != nil {
		fatal("trace error: %v", rd.Err())
	}
	if jsonOut {
		if err := r.WriteJSON(os.Stdout); err != nil {
			fatal("%v", err)
		}
		return
	}
	printReport(&r, verbose)
}

func printReport(r *system.Report, verbose bool) {
	t := stats.NewTable(fmt.Sprintf("%s / %s", r.Name, r.Workload), "metric", "value")
	t.AddRow("IPC", r.IPC())
	t.AddRow("cycles", r.MeasuredCycles())
	t.AddRow("instructions", r.Committed)
	t.AddRow("L1I miss ratio", r.L1IMissRate())
	t.AddRow("L1D miss ratio", r.L1DMissRate())
	t.AddRow("L2 miss ratio (demand)", r.L2DemandMissRate())
	t.AddRow("L2 miss ratio (with prefetch)", r.L2TotalMissRate())
	t.AddRow("branch failure rate", r.BranchFailureRate())
	t.AddRow("bus wait cycles", r.BusWaitCycles)
	t.AddRow("memory reads", r.Coherence.MemoryReads)
	t.AddRow("cache-to-cache transfers", r.Coherence.CacheTransfers)
	t.AddRow("invalidations", r.Coherence.Invalidations)
	fmt.Print(t.String())
	if s := r.Sampling; s != nil {
		fmt.Printf("sampled: %d windows (interval=%d warmup=%d measure=%d), ff=%d detailed=%d insts, CPI %.4f ± %.4f (95%%)\n",
			s.Windows, s.Interval, s.Warmup, s.Measure,
			s.FastForwarded, s.DetailedInsts, s.CPIMean, s.CPIHalf95)
	}
	if verbose {
		for i := range r.CPUs {
			c := &r.CPUs[i]
			fmt.Printf("cpu%d: IPC=%.3f cancels=%d bankConflicts=%d stalls(win/rn/rs/lq/sq)=%d/%d/%d/%d/%d\n",
				i, c.IPC(), c.Core.SpecCancels, c.Core.BankConflicts,
				c.Core.StallWindow, c.Core.StallRename, c.Core.StallRS,
				c.Core.StallLQ, c.Core.StallSQ)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sparc64sim: "+format+"\n", args...)
	os.Exit(1)
}
