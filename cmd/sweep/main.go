// Command sweep regenerates every table and figure of the paper's
// evaluation at full trace length and renders them as text or markdown
// (the source of EXPERIMENTS.md).
//
// Example:
//
//	sweep -insts 1000000 -markdown > EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sparc64v/internal/core"
	"sparc64v/internal/expt"
)

func main() {
	var (
		insts    = flag.Int("insts", 1_000_000, "instructions per CPU per run")
		seed     = flag.Int64("seed", 42, "workload seed")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown")
	)
	flag.Parse()

	opt := core.RunOptions{Insts: *insts, Seed: *seed}
	t0 := time.Now()
	results, err := expt.All(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	if *markdown {
		fmt.Printf("# EXPERIMENTS — paper vs. reproduced\n\n")
		fmt.Printf("Regenerated with `go run ./cmd/sweep -insts %d -markdown` ", *insts)
		fmt.Printf("(runtime %s).\n\n", time.Since(t0).Round(time.Second))
		fmt.Println("Absolute numbers are not comparable to the paper (the workloads are")
		fmt.Println("synthetic substitutes; see DESIGN.md). The reproduction target is the")
		fmt.Println("*shape* of each comparison: who wins, roughly by how much, and where")
		fmt.Println("the trade-offs fall. Each section lists the paper's claim and the")
		fmt.Println("reproduced data.")
		fmt.Println()
		for _, r := range results {
			fmt.Printf("## %s — %s\n\n", r.ID, r.Title)
			for _, n := range r.Notes {
				fmt.Printf("*%s*\n\n", n)
			}
			fmt.Println(r.Table.Markdown())
			if r.Chart != "" {
				fmt.Printf("```\n%s```\n\n", r.Chart)
			}
		}
		return
	}
	for _, r := range results {
		fmt.Println(r.String())
	}
	fmt.Fprintf(os.Stderr, "sweep: done in %s\n", time.Since(t0).Round(time.Second))
}
