// Command sweep regenerates every table and figure of the paper's
// evaluation at full trace length and renders them as text or markdown
// (the source of EXPERIMENTS.md).
//
// The studies are independent simulations, so the sweep fans out onto the
// sched worker pool by default (-parallel=false or -workers 1 restores the
// serial sweep; output is byte-identical either way). The stderr summary
// reports per-study wall time and the sweep's effective simulated
// instructions/second — the modern counterpart of the paper's "7.8K
// instructions per second on a 1-GHz Pentium III" model-speed quote.
//
// Run lifecycle: -timeout bounds the whole sweep, and SIGINT (Ctrl-C)
// cancels it cooperatively. Either way every study that finished before
// the cancellation still renders; studies that didn't are marked
// "(incomplete)" in their presentation slot, and the process exits
// non-zero.
//
// With -cache-dir the sweep reads and writes the content-addressed run
// cache (internal/runcache): an aborted sweep's completed runs are not
// lost, and a warm cache regenerates EXPERIMENTS.md byte-identically
// without simulating (Section 2.1's wall-clock rows are measured, not
// simulated, so they always rerun but never change the rendered table).
//
// Example:
//
//	sweep -insts 1000000 -markdown -cache-dir .simcache > EXPERIMENTS.md
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"sparc64v/internal/config"
	"sparc64v/internal/core"
	"sparc64v/internal/expt"
	"sparc64v/internal/obs"
	"sparc64v/internal/runcache"
	"sparc64v/internal/sched"
)

func main() {
	var (
		insts    = flag.Int("insts", 1_000_000, "instructions per CPU per run")
		seed     = flag.Int64("seed", 42, "workload seed")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown")
		parallel = flag.Bool("parallel", true, "run independent simulations concurrently")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 0, "abort the sweep after this long (0 = no limit)")
		cacheDir = flag.String("cache-dir", "", "content-addressed run cache directory (empty = no cache)")
		profile  = flag.String("profile", "", "write a JSON timing+counter profile of every run to this file")
		sample   = flag.String("sample", "", "sampled simulation for every study: off|auto|interval=N,warmup=N,measure=N[,offset=N]")
		batch    = flag.Int("batch", 0, "lockstep-batch up to N same-trace configurations per decode (0/1 = serial decode per run)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opt := core.RunOptions{Insts: *insts, Seed: *seed, Workers: *workers, Batch: *batch}
	if !*parallel {
		opt.Workers = 1
	}
	var err error
	if opt.Sample, err = config.ParseSampling(*sample, *insts); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	if *profile != "" {
		opt.Obs = obs.NewCollector()
	}
	var cache *runcache.Cache
	if *cacheDir != "" {
		var err error
		cache, err = runcache.New(runcache.Options{Dir: *cacheDir})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		opt.Cache = cache
	}
	expt.MeterReset()
	t0 := time.Now()
	results, err := expt.AllContext(ctx, opt)
	wall := time.Since(t0)
	// Completed studies render even when the sweep was cut short; the
	// missing ones carry "(incomplete)" markers from AllContext.
	if *markdown {
		// The preamble carries no wall time or worker count: given the
		// same -insts and -seed the whole file is byte-identical across
		// hosts, worker counts, and cache state (timing goes to stderr).
		fmt.Printf("# EXPERIMENTS — paper vs. reproduced\n\n")
		fmt.Printf("Regenerated with `go run ./cmd/sweep -insts %d -markdown`.\n", *insts)
		fmt.Printf("Add `-cache-dir <dir>` to reuse prior runs: only changed studies\n")
		fmt.Printf("re-simulate, and a fully warm cache regenerates this file without\n")
		fmt.Printf("running the simulator at all.\n\n")
		fmt.Println("Absolute numbers are not comparable to the paper (the workloads are")
		fmt.Println("synthetic substitutes; see DESIGN.md). The reproduction target is the")
		fmt.Println("*shape* of each comparison: who wins, roughly by how much, and where")
		fmt.Println("the trade-offs fall. Each section lists the paper's claim and the")
		fmt.Println("reproduced data.")
		fmt.Println()
		for _, r := range results {
			fmt.Printf("## %s — %s\n\n", r.ID, r.Title)
			for _, n := range r.Notes {
				fmt.Printf("*%s*\n\n", n)
			}
			fmt.Println(r.Table.Markdown())
			if r.Chart != "" {
				fmt.Printf("```\n%s```\n\n", r.Chart)
			}
		}
	} else {
		for _, r := range results {
			fmt.Println(r.String())
		}
	}
	summarize(results, wall, sched.Workers(opt.Workers), cache)
	if *profile != "" {
		if werr := opt.Obs.WriteProfileFile(*profile); werr != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sweep: wrote run profiles to %s\n", *profile)
	}
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			fmt.Fprintf(os.Stderr, "sweep: timed out after %s (completed studies rendered above)\n", *timeout)
		case errors.Is(err, context.Canceled):
			fmt.Fprintln(os.Stderr, "sweep: interrupted (completed studies rendered above)")
		default:
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		}
		os.Exit(1)
	}
}

// summarize prints the per-study wall times and the sweep's effective
// simulated-instruction throughput to stderr.
func summarize(results []expt.Result, wall time.Duration, workers int, cache *runcache.Cache) {
	fmt.Fprintf(os.Stderr, "sweep: study wall times (%d workers, studies overlap):\n", workers)
	for _, r := range results {
		if r.Elapsed <= 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "  %-12s %-40s %10s\n", r.ID, r.Title,
			r.Elapsed.Round(time.Millisecond))
	}
	instrs, runs := expt.Meter()
	fmt.Fprintf(os.Stderr,
		"sweep: done in %s: %d runs, %.1fM instrs simulated, %.0f effective sim-instrs/s\n",
		wall.Round(time.Millisecond), runs, float64(instrs)/1e6,
		float64(instrs)/wall.Seconds())
	if cache != nil {
		s := cache.Stats()
		fmt.Fprintf(os.Stderr,
			"sweep: cache: %d hits (%d memory, %d disk), %d shared, %d misses, %.1fM instrs served from cache\n",
			s.Hits(), s.MemoryHits, s.DiskHits, s.Shared, s.Misses,
			float64(s.HitInstructions)/1e6)
	}
}
