// Command tracegen generates a synthetic instruction trace (or a
// reverse-traced test program) and writes it to a file.
//
// Examples:
//
//	tracegen -workload tpcc -insts 1000000 -out tpcc.s64v
//	tracegen -workload specfp95 -insts 200000 -program fp95.prog
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sparc64v/internal/trace"
	"sparc64v/internal/verif"
	"sparc64v/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "specint95", "workload: specint95|specfp95|specint2000|specfp2000|tpcc|tpcc16p")
		insts        = flag.Int("insts", 200_000, "records to generate")
		seed         = flag.Int64("seed", 42, "generator seed")
		cpu          = flag.Int("cpu", 0, "CPU index (MP workloads)")
		out          = flag.String("out", "", "trace output file (.s64v)")
		program      = flag.String("program", "", "reverse-traced program output file")
		compress     = flag.Bool("gzip", false, "gzip-compress the trace output")
	)
	flag.Parse()
	if *out == "" && *program == "" {
		fatal("need -out and/or -program")
	}

	prof, ok := profileByName(*workloadName)
	if !ok {
		fatal("unknown -workload %q", *workloadName)
	}
	gen := workload.New(prof, *seed, *cpu)
	src := trace.NewLimitSource(gen, *insts)

	if *out != "" && *program != "" {
		// Need the records twice: buffer them.
		recs := trace.Collect(src, 0)
		writeTrace(*out, trace.NewSliceSource(recs), *compress)
		writeProgram(*program, trace.NewSliceSource(recs))
		return
	}
	if *out != "" {
		writeTrace(*out, src, *compress)
	}
	if *program != "" {
		writeProgram(*program, src)
	}
}

func writeTrace(path string, src trace.Source, compress bool) {
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	var sink io.Writer = f
	var gz *gzip.Writer
	if compress {
		gz = gzip.NewWriter(f)
		sink = gz
	}
	w, err := trace.NewWriter(sink)
	if err != nil {
		fatal("%v", err)
	}
	var r trace.Record
	for src.Next(&r) {
		if err := w.Write(&r); err != nil {
			fatal("%v", err)
		}
	}
	if err := w.Flush(); err != nil {
		fatal("%v", err)
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			fatal("%v", err)
		}
	}
	st, _ := f.Stat()
	fmt.Printf("wrote %d records to %s (%d bytes, %.2f B/record)\n",
		w.Count(), path, st.Size(), float64(st.Size())/float64(w.Count()))
}

func writeProgram(path string, src trace.Source) {
	prog, err := verif.FromTrace(src)
	if err != nil {
		fatal("reverse trace: %v", err)
	}
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	n, err := prog.WriteTo(f)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("wrote program: %d dynamic instrs, %d static, %d bytes\n",
		prog.Len(), prog.StaticInstrs(), n)
}

func profileByName(name string) (workload.Profile, bool) {
	switch strings.ToLower(name) {
	case "specint95":
		return workload.SPECint95(), true
	case "specfp95":
		return workload.SPECfp95(), true
	case "specint2000":
		return workload.SPECint2000(), true
	case "specfp2000":
		return workload.SPECfp2000(), true
	case "tpcc":
		return workload.TPCC(), true
	case "tpcc16p":
		return workload.TPCC16P(), true
	}
	return workload.Profile{}, false
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
