// Command traceinfo summarizes a trace file: instruction mix, code and
// data footprints, branch statistics, and optionally the first records.
//
// Example:
//
//	traceinfo -head 20 tpcc.s64v
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sparc64v/internal/isa"
	"sparc64v/internal/stats"
	"sparc64v/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command: it parses args, summarizes the
// trace, and returns the process exit code. Decode errors — including a
// corrupt or truncated gzip stream, which OpenReader surfaces through
// Err() after the records end — are reported on stderr with exit code 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("traceinfo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	head := fs.Int("head", 0, "print the first N records")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: traceinfo [-head N] <trace.s64v>")
		return 1
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "traceinfo: %v\n", err)
		return 1
	}
	defer f.Close()
	rd, err := trace.OpenReader(f)
	if err != nil {
		fmt.Fprintf(stderr, "traceinfo: %v\n", err)
		return 1
	}

	var (
		r         trace.Record
		total     uint64
		byClass   [isa.NumClasses]uint64
		taken     uint64
		branches  uint64
		codeLines = map[uint64]struct{}{}
		dataLines = map[uint64]struct{}{}
		printed   int
	)
	for rd.Next(&r) {
		if printed < *head {
			fmt.Fprintln(stdout, r.String())
			printed++
		}
		total++
		byClass[r.Op]++
		codeLines[r.PC>>6] = struct{}{}
		if r.Op.IsMemory() {
			dataLines[r.EA>>6] = struct{}{}
		}
		if r.Op.IsBranch() {
			branches++
			if r.Taken {
				taken++
			}
		}
	}
	if rd.Err() != nil {
		fmt.Fprintf(stderr, "traceinfo: decode: %v\n", rd.Err())
		return 1
	}

	t := stats.NewTable(fmt.Sprintf("%s: %d records", fs.Arg(0), total),
		"class", "count", "fraction")
	for c := isa.Class(0); c.Valid(); c++ {
		if byClass[c] == 0 {
			continue
		}
		t.AddRow(c.String(), byClass[c], stats.Ratio(byClass[c], total))
	}
	fmt.Fprint(stdout, t.String())
	fmt.Fprintf(stdout, "code footprint: %d KB (64B lines touched)\n", len(codeLines)*64/1024)
	fmt.Fprintf(stdout, "data footprint: %d KB (64B lines touched)\n", len(dataLines)*64/1024)
	fmt.Fprintf(stdout, "branches: %d (%.1f%% of instrs), taken %.1f%%\n",
		branches, 100*stats.Ratio(branches, total), 100*stats.Ratio(taken, branches))
	return 0
}
