// Command traceinfo summarizes a trace file: instruction mix, code and
// data footprints, branch statistics, and optionally the first records.
//
// Example:
//
//	traceinfo -head 20 tpcc.s64v
package main

import (
	"flag"
	"fmt"
	"os"

	"sparc64v/internal/isa"
	"sparc64v/internal/stats"
	"sparc64v/internal/trace"
)

func main() {
	head := flag.Int("head", 0, "print the first N records")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceinfo [-head N] <trace.s64v>")
		os.Exit(1)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	rd, err := trace.OpenReader(f)
	if err != nil {
		fatal("%v", err)
	}

	var (
		r         trace.Record
		total     uint64
		byClass   [isa.NumClasses]uint64
		taken     uint64
		branches  uint64
		codeLines = map[uint64]struct{}{}
		dataLines = map[uint64]struct{}{}
		printed   int
	)
	for rd.Next(&r) {
		if printed < *head {
			fmt.Println(r.String())
			printed++
		}
		total++
		byClass[r.Op]++
		codeLines[r.PC>>6] = struct{}{}
		if r.Op.IsMemory() {
			dataLines[r.EA>>6] = struct{}{}
		}
		if r.Op.IsBranch() {
			branches++
			if r.Taken {
				taken++
			}
		}
	}
	if rd.Err() != nil {
		fatal("decode: %v", rd.Err())
	}

	t := stats.NewTable(fmt.Sprintf("%s: %d records", flag.Arg(0), total),
		"class", "count", "fraction")
	for c := isa.Class(0); c.Valid(); c++ {
		if byClass[c] == 0 {
			continue
		}
		t.AddRow(c.String(), byClass[c], stats.Ratio(byClass[c], total))
	}
	fmt.Print(t.String())
	fmt.Printf("code footprint: %d KB (64B lines touched)\n", len(codeLines)*64/1024)
	fmt.Printf("data footprint: %d KB (64B lines touched)\n", len(dataLines)*64/1024)
	fmt.Printf("branches: %d (%.1f%% of instrs), taken %.1f%%\n",
		branches, 100*stats.Ratio(branches, total), 100*stats.Ratio(taken, branches))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceinfo: "+format+"\n", args...)
	os.Exit(1)
}
