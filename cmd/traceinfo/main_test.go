package main

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sparc64v/internal/trace"
	"sparc64v/internal/workload"
)

// writeGzipTrace captures n records of the given profile into a
// gzip-compressed trace file and returns the raw file bytes.
func writeGzipTrace(t *testing.T, path string, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	w, err := trace.NewWriter(gz)
	if err != nil {
		t.Fatal(err)
	}
	src := workload.New(workload.SPECint95(), 1, 0)
	var r trace.Record
	for i := 0; i < n; i++ {
		if !src.Next(&r) {
			t.Fatal("workload source ran dry")
		}
		if err := w.Write(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRunGzipTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ok.s64v.gz")
	writeGzipTrace(t, path, 500)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-head", "3", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "500 records") {
		t.Errorf("summary missing record count:\n%s", out)
	}
	if !strings.Contains(out, "code footprint") || !strings.Contains(out, "branches") {
		t.Errorf("summary missing footprint/branch lines:\n%s", out)
	}
}

// TestRunCorruptGzip is the regression test for corrupt compressed input:
// a single flipped bit in the deflate body must surface as a decode error
// and a non-zero exit, never as a silently shorter (or garbled) summary.
// The flip lands mid-body, so it is caught either by record validation or
// by the gzip CRC32 trailer check that OpenReader arms for gzip streams.
func TestRunCorruptGzip(t *testing.T) {
	dir := t.TempDir()
	good := writeGzipTrace(t, filepath.Join(dir, "ok.s64v.gz"), 500)

	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)/2] ^= 0x40
	path := filepath.Join(dir, "bad.s64v.gz")
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{path}, &stdout, &stderr); code != 1 {
		t.Fatalf("run on bit-flipped gzip = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "traceinfo:") {
		t.Errorf("error not surfaced on stderr: %q", stderr.String())
	}
}

// TestRunTruncatedGzip cuts the gzip trailer off entirely: the records may
// all decode, but the missing CRC32/ISIZE trailer must still fail the run.
func TestRunTruncatedGzip(t *testing.T) {
	dir := t.TempDir()
	good := writeGzipTrace(t, filepath.Join(dir, "ok.s64v.gz"), 500)

	path := filepath.Join(dir, "cut.s64v.gz")
	if err := os.WriteFile(path, good[:len(good)-8], 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{path}, &stdout, &stderr); code != 1 {
		t.Fatalf("run on truncated gzip = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "decode:") {
		t.Errorf("truncation not reported as decode error: %q", stderr.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 1 {
		t.Errorf("run with no args = %d, want 1", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing")}, &stdout, &stderr); code != 1 {
		t.Errorf("run on missing file = %d, want 1", code)
	}
}
