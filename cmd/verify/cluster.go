package main

// The cluster-replay differential check: the distributed tier must be
// invisible in the numbers. A sweep pushed through a 1-node topology and
// a 3-node topology (consistent-hash routing, peer caches, per-node
// singleflight) has to return byte-identical keys and reports — any
// divergence means routing, caching or the peer protocol changed a
// result, which is the one thing a sharded experiment service may never
// do. The check lives in cmd/verify rather than internal/metamorph
// because it drives the HTTP gateway, which sits above metamorph in the
// import graph; it joins the catalog through metamorph.Options.Extra.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"

	"sparc64v/internal/gateway"
	"sparc64v/internal/metamorph"
	"sparc64v/internal/obs"
	"sparc64v/internal/runcache"
	"sparc64v/internal/server"
)

// clusterReplayCheck builds the diff-cluster-replay catalog entry.
func clusterReplayCheck() metamorph.Check {
	return metamorph.Check{
		Name:   "diff-cluster-replay",
		Kind:   "differential",
		Detail: "a config sweep through 1-node and 3-node cluster topologies returns byte-identical reports",
		Run:    runClusterReplay,
	}
}

// clusterResult is the identity-relevant slice of a /v1/run response:
// the content key and the raw stats bytes. The cache-outcome field is
// topology-dependent by design (a 3-node run may be a peer hit) and is
// excluded from the comparison.
type clusterResult struct {
	Key   string          `json:"key"`
	Stats json.RawMessage `json:"stats"`
}

func runClusterReplay(ctx context.Context, env *metamorph.Env) (string, error) {
	sweep := []string{
		fmt.Sprintf(`{"workload":"specint95","insts":%d,"seed":%d}`, env.Insts, env.Seed),
		fmt.Sprintf(`{"workload":"specint95","insts":%d,"seed":%d}`, env.Insts, env.Seed+1),
		fmt.Sprintf(`{"workload":"specfp95","insts":%d,"seed":%d}`, env.Insts, env.Seed),
		fmt.Sprintf(`{"workload":"specint2000","insts":%d,"seed":%d}`, env.Insts, env.Seed),
	}

	solo, err := runClusterSweep(ctx, 1, sweep)
	if err != nil {
		return "", fmt.Errorf("1-node topology: %w", err)
	}
	sharded, err := runClusterSweep(ctx, 3, sweep)
	if err != nil {
		return "", fmt.Errorf("3-node topology: %w", err)
	}
	for i, body := range sweep {
		if solo[i].Key != sharded[i].Key {
			return "", &metamorph.Violation{Msg: fmt.Sprintf(
				"%s: cache key %s (1-node) != %s (3-node): topologies disagree on request identity",
				body, solo[i].Key, sharded[i].Key)}
		}
		if string(solo[i].Stats) != string(sharded[i].Stats) {
			return "", &metamorph.Violation{Msg: fmt.Sprintf(
				"%s: report differs between 1-node and 3-node topologies", body)}
		}
	}
	return fmt.Sprintf("%d configs byte-identical across topologies", len(sweep)), nil
}

// runClusterSweep stands up an n-node cluster (workers with peer-meshed
// caches behind a consistent-hash gateway) and pushes the sweep through
// it.
func runClusterSweep(ctx context.Context, n int, sweep []string) ([]clusterResult, error) {
	type node struct {
		srv *server.Server
		ts  *httptest.Server
	}
	nodes := make([]node, n)
	for i := range nodes {
		cache, err := runcache.New(runcache.Options{})
		if err != nil {
			return nil, err
		}
		srv, err := server.New(server.Config{
			Cache:    cache,
			Workers:  1,
			NodeID:   fmt.Sprintf("n%d", i),
			Registry: obs.NewRegistry(),
		})
		if err != nil {
			return nil, err
		}
		nodes[i] = node{srv: srv, ts: httptest.NewServer(srv.Handler())}
	}
	defer func() {
		for _, nd := range nodes {
			nd.ts.Close()
		}
	}()
	for i, nd := range nodes {
		var peers []string
		for j, other := range nodes {
			if j != i {
				peers = append(peers, other.ts.URL)
			}
		}
		if len(peers) > 0 {
			nd.srv.SetPeers(peers)
		}
	}
	workers := make([]gateway.Worker, n)
	for i, nd := range nodes {
		workers[i] = gateway.Worker{Name: fmt.Sprintf("n%d", i), URL: nd.ts.URL}
	}
	gw, err := gateway.New(gateway.Config{Workers: workers, Registry: obs.NewRegistry()})
	if err != nil {
		return nil, err
	}

	results := make([]clusterResult, len(sweep))
	for i, body := range sweep {
		req := httptest.NewRequestWithContext(ctx, http.MethodPost, "/v1/run", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		gw.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return nil, fmt.Errorf("%s: HTTP %d: %s", body, rec.Code, rec.Body.String())
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &results[i]); err != nil {
			return nil, fmt.Errorf("%s: decode response: %w", body, err)
		}
	}
	return results, nil
}
