// Command verify runs the metamorphic cross-verification harness
// (internal/metamorph) against the built-in model and workloads: the
// repository's stand-in for the paper's logic-simulator cross-check, used
// as a merge gate in CI.
//
//	verify -quick            # CI gate: subset of workloads, MP checks skipped
//	verify -full             # whole catalog on every workload
//	verify -json report.json # machine-readable verdicts ("-" for stdout)
//	verify -inject l1index   # plant a model bug; the run must FAIL
//	verify -inject dropinval -checks tso-outcomes  # TSO harness self-test
//
// Exit status: 0 all checks passed, 1 at least one invariant violated,
// 2 the harness itself could not run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sparc64v/internal/cache"
	"sparc64v/internal/coherence"
	"sparc64v/internal/core"
	"sparc64v/internal/metamorph"
	"sparc64v/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// injectFault arms the named fault at whichever injection point owns it:
// cache faults (l1index) and coherence faults (dropinval) share the flag.
func injectFault(name string) bool {
	if f, ok := cache.FaultByName(name); ok {
		cache.InjectFault(f)
		return true
	}
	if f, ok := coherence.FaultByName(name); ok {
		coherence.InjectFault(f)
		return true
	}
	return false
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "quick CI gate (default unless -full)")
	full := fs.Bool("full", false, "full catalog on every workload")
	seed := fs.Int64("seed", 42, "trace window seed")
	insts := fs.Int("insts", 0, "per-run trace length (0 = mode default)")
	workers := fs.Int("workers", 0, "concurrent checks (0 = GOMAXPROCS)")
	jsonOut := fs.String("json", "", "write the JSON verdict report to this file (\"-\" = stdout)")
	checks := fs.String("checks", "", "comma-separated check subset (default: whole mode catalog)")
	inject := fs.String("inject", "", "inject a model fault (l1index, dropinval) — the harness must catch it")
	profile := fs.String("profile", "", "write a JSON timing+counter profile of every check and run to this file")
	timeout := fs.Duration("timeout", 15*time.Minute, "abort the run after this long")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *quick && *full {
		fmt.Fprintln(stderr, "verify: -quick and -full are mutually exclusive")
		return 2
	}
	if !injectFault(*inject) {
		fmt.Fprintf(stderr, "verify: unknown fault %q (have: l1index, dropinval)\n", *inject)
		return 2
	}

	opt := metamorph.Options{
		Full:    *full,
		Seed:    *seed,
		Insts:   *insts,
		Workers: *workers,
		// The cluster-replay differential lives here (not in
		// internal/metamorph) because it drives the HTTP gateway; see
		// cluster.go.
		Extra: []metamorph.Check{clusterReplayCheck()},
	}
	if *profile != "" {
		opt.Obs = obs.NewCollector()
	}
	if *checks != "" {
		for _, name := range strings.Split(*checks, ",") {
			if name = strings.TrimSpace(name); name != "" {
				opt.Checks = append(opt.Checks, name)
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := metamorph.Run(ctx, opt)
	if err != nil {
		fmt.Fprintf(stderr, "verify: %v\n", err)
		return 2
	}
	printReport(stdout, &rep)
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, &rep); err != nil {
			fmt.Fprintf(stderr, "verify: %v\n", err)
			return 2
		}
	}
	if *profile != "" {
		if err := opt.Obs.WriteProfileFile(*profile); err != nil {
			fmt.Fprintf(stderr, "verify: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "verify: wrote check profiles to %s\n", *profile)
	}
	if ctx.Err() != nil {
		fmt.Fprintf(stderr, "verify: aborted: %v\n", ctx.Err())
		return 2
	}
	switch {
	case rep.Errors > 0:
		return 2
	case rep.Fail > 0:
		return 1
	}
	return 0
}

// printReport renders the human-readable verdict table.
func printReport(w io.Writer, rep *metamorph.Report) {
	fmt.Fprintf(w, "model %s  mode=%s  seed=%d  insts=%d  workloads=%s",
		core.ModelVersion, rep.Mode, rep.Seed, rep.Insts,
		strings.Join(rep.Workloads, ","))
	if rep.Fault != "none" {
		fmt.Fprintf(w, "  INJECTED FAULT=%s", rep.Fault)
	}
	fmt.Fprintln(w)
	for _, v := range rep.Verdicts {
		fmt.Fprintf(w, "%-5s %-22s %-13s %6.1fs  %s\n",
			strings.ToUpper(v.Status), v.Check, v.Kind,
			float64(v.ElapsedMS)/1000, v.Detail)
	}
	fmt.Fprintf(w, "%d checks: %d pass, %d fail, %d errors in %.1fs\n",
		len(rep.Verdicts), rep.Pass, rep.Fail, rep.Errors,
		float64(rep.ElapsedMS)/1000)
}

// writeJSON writes the verdict report ("-" selects stdout).
func writeJSON(path string, rep *metamorph.Report) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
