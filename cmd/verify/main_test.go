package main

import (
	"bytes"
	"strings"
	"testing"

	"sparc64v/internal/cache"
	"sparc64v/internal/coherence"
)

// These tests arm process-global state (the fault injectors) through the
// CLI entry point, so none of them may run in parallel.

func TestUnknownCheckListsValidNames(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-quick", "-checks", "no-such-check"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errb.String())
	}
	msg := errb.String()
	// The listing must include catalog checks and the Extra check wired in
	// by this command — the whole point of the error is discoverability.
	for _, want := range []string{"no-such-check", "tso-outcomes", "diff-cluster-replay", "mono-l1-size"} {
		if !strings.Contains(msg, want) {
			t.Errorf("stderr %q does not mention %q", msg, want)
		}
	}
}

func TestUnknownFaultRejected(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-inject", "no-such-fault"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if msg := errb.String(); !strings.Contains(msg, "l1index") || !strings.Contains(msg, "dropinval") {
		t.Errorf("stderr %q does not list the known faults", msg)
	}
}

func TestQuickFullExclusive(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-quick", "-full"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestInjectDropInvalFailsTSOCheck is the end-to-end self-test the issue
// demands: `verify -inject dropinval -checks tso-outcomes` must exit 1
// with the conformance check FAILING on forbidden litmus outcomes.
func TestInjectDropInvalFailsTSOCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("runs litmus sweeps")
	}
	defer coherence.InjectFault(coherence.FaultNone)
	defer cache.InjectFault(cache.FaultNone)
	var out, errb bytes.Buffer
	code := run([]string{"-quick", "-checks", "tso-outcomes", "-inject", "dropinval"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (check must FAIL)\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
	msg := out.String()
	if !strings.Contains(msg, "FAIL") || !strings.Contains(msg, "forbidden") {
		t.Errorf("report does not show the forbidden-outcome failure: %s", msg)
	}
	if !strings.Contains(msg, "INJECTED FAULT=dropinval") {
		t.Errorf("report header does not flag the armed fault: %s", msg)
	}
}
