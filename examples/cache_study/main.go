// Cache study: a pre-silicon design exploration in the style of the
// paper's section 4.3 — sweep the L1 and L2 alternatives on the workload
// mix and print IPC trade-off tables a hardware architect would review.
package main

import (
	"fmt"
	"log"

	"sparc64v"
)

func main() {
	workloads := sparc64v.Workloads()
	opt := sparc64v.RunOptions{Insts: 150_000}

	type variant struct {
		name string
		cfg  sparc64v.Config
	}
	l1s := []variant{
		{"128k-2w.4c", sparc64v.BaseConfig()},
		{"32k-1w.3c", sparc64v.BaseConfig().WithSmallL1()},
	}
	l2s := []variant{
		{"on.2m-4w", sparc64v.BaseConfig()},
		{"off.8m-2w", sparc64v.BaseConfig().WithOffChipL2(2)},
		{"off.8m-1w", sparc64v.BaseConfig().WithOffChipL2(1)},
	}

	run := func(cfg sparc64v.Config, p sparc64v.Profile) *sparc64v.Report {
		m, err := sparc64v.NewModel(cfg)
		if err != nil {
			log.Fatal(err)
		}
		r, err := m.Run(p, opt)
		if err != nil {
			log.Fatal(err)
		}
		return &r
	}

	fmt.Println("L1 geometry study (IPC):")
	fmt.Printf("%-12s", "workload")
	for _, v := range l1s {
		fmt.Printf("  %12s", v.name)
	}
	fmt.Println()
	for _, p := range workloads {
		fmt.Printf("%-12s", p.Name)
		for _, v := range l1s {
			fmt.Printf("  %12.3f", run(v.cfg, p).IPC())
		}
		fmt.Println()
	}

	fmt.Println("\nL2 geometry study (IPC):")
	fmt.Printf("%-12s", "workload")
	for _, v := range l2s {
		fmt.Printf("  %12s", v.name)
	}
	fmt.Println()
	for _, p := range workloads {
		fmt.Printf("%-12s", p.Name)
		for _, v := range l2s {
			fmt.Printf("  %12.3f", run(v.cfg, p).IPC())
		}
		fmt.Println()
	}
	fmt.Println("\nThe paper adopted 128k-2w.4c and on.2m-4w: the larger, slower L1 wins")
	fmt.Println("on commercial workloads, and the small on-chip L2 beats a big off-chip")
	fmt.Println("direct-mapped one despite 4x less capacity.")
}
