// HPC FMA study: the SPARC64 V targets high-performance computing as well
// as enterprise servers, and the paper singles out its *two* floating-point
// multiply-add units as "effective for HPC performance". This example
// quantifies that choice on a dense multiply-add kernel, sweeping the FL
// unit count and issue width.
package main

import (
	"fmt"
	"log"

	"sparc64v"
)

func main() {
	kernel := sparc64v.HPC()
	opt := sparc64v.RunOptions{Insts: 200_000}

	run := func(mutate func(*sparc64v.Config), label string) float64 {
		cfg := sparc64v.BaseConfig()
		if mutate != nil {
			mutate(&cfg)
		}
		m, err := sparc64v.NewModel(cfg)
		if err != nil {
			log.Fatal(err)
		}
		r, err := m.Run(kernel, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s IPC %.3f\n", label, r.IPC())
		return r.IPC()
	}

	fmt.Printf("Dense multiply-add kernel (%s) on the SPARC64 V model:\n", kernel.Name)
	base := run(nil, "2x FL (multiply-add), 4-issue")
	one := run(func(c *sparc64v.Config) { c.CPU.FPUnits = 1 },
		"1x FL unit")
	run(func(c *sparc64v.Config) { *c = c.WithIssueWidth(2) },
		"2-issue front end")
	run(func(c *sparc64v.Config) { c.CPU.SpeculativeDispatch = false },
		"no speculative dispatch")

	fmt.Printf("\nDual multiply-add units are worth %.0f%% on this kernel —\n",
		100*(base-one)/one)
	fmt.Println("the HPC half of the paper's throughput story.")
}
