// OLTP SMP study: the paper's enterprise-server scenario. Runs the TPC-C
// workload with shared data on 1..16 processors and reports throughput
// scaling and the coherence traffic (move-out transfers, invalidations)
// that the two-level cache hierarchy was designed around.
package main

import (
	"fmt"
	"log"

	"sparc64v"
)

func main() {
	profile := sparc64v.TPCC16P()
	fmt.Println("TPC-C scaling on the SPARC64 V SMP model")
	fmt.Println("CPUs  per-CPU IPC  aggregate  C2C xfers  invalidations  bus wait")
	var base float64
	for _, n := range []int{1, 2, 4, 8, 16} {
		cfg := sparc64v.BaseConfig().WithCPUs(n)
		model, err := sparc64v.NewModel(cfg)
		if err != nil {
			log.Fatal(err)
		}
		report, err := model.Run(profile, sparc64v.RunOptions{Insts: 120_000})
		if err != nil {
			log.Fatal(err)
		}
		agg := report.IPC() * float64(n)
		if n == 1 {
			base = agg
		}
		fmt.Printf("%4d  %11.3f  %9.2fx  %9d  %13d  %8d\n",
			n, report.IPC(), agg/base,
			report.Coherence.CacheTransfers, report.Coherence.Invalidations,
			report.BusWaitCycles)
	}
	fmt.Println("\nShared-data stores cause move-out (cache-to-cache) transfers between")
	fmt.Println("the per-chip L2s; scaling efficiency is set by memory and coherence")
	fmt.Println("behavior, not by the cores — the system-balance point of the paper.")
}
