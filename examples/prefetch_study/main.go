// Prefetch study: quantify the L2 hardware prefetcher (section 3.4) the
// way the paper's Figure 16/17 does — IPC impact and the demand-miss
// versus pollution accounting — plus a stall-attribution view showing
// where the cycles go with and without prefetching.
package main

import (
	"fmt"
	"log"

	"sparc64v"
)

func main() {
	opt := sparc64v.RunOptions{Insts: 200_000}
	withCfg := sparc64v.BaseConfig()
	withoutCfg := sparc64v.BaseConfig().WithoutPrefetch()

	fmt.Println("Hardware prefetch study (L1-miss triggered, next-line + stride)")
	fmt.Println()
	for _, p := range []sparc64v.Profile{sparc64v.SPECfp2000(), sparc64v.TPCC()} {
		mWith, err := sparc64v.NewModel(withCfg)
		if err != nil {
			log.Fatal(err)
		}
		mWithout, err := sparc64v.NewModel(withoutCfg)
		if err != nil {
			log.Fatal(err)
		}
		rw, err := mWith.Run(p, opt)
		if err != nil {
			log.Fatal(err)
		}
		ro, err := mWithout.Run(p, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", p.Name)
		fmt.Printf("  IPC              with %.3f   without %.3f   (%+.1f%%)\n",
			rw.IPC(), ro.IPC(), 100*(rw.IPC()-ro.IPC())/ro.IPC())
		fmt.Printf("  L2 miss ratio    with %.3f   with-Demand %.3f   without %.3f\n",
			rw.L2TotalMissRate(), rw.L2DemandMissRate(), ro.L2DemandMissRate())

		// Where do the cycles go? The Figure 7 attribution, with and
		// without prefetching.
		bw, err := mWith.Breakdown(p, opt)
		if err != nil {
			log.Fatal(err)
		}
		bo, err := mWithout.Breakdown(p, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  stalls with      %s\n", bw.Breakdown.String())
		fmt.Printf("  stalls without   %s\n\n", bo.Breakdown.String())
	}
	fmt.Println("Prefetch pays off most on chain/stream access patterns (SPECfp);")
	fmt.Println("the 'with' vs 'with-Demand' gap is the unnecessary prefetch traffic.")
}
