// Quickstart: simulate the SPARC64 V base machine (Table 1) on two
// workloads and print the headline metrics. This is the smallest useful
// program against the public API.
package main

import (
	"fmt"
	"log"

	"sparc64v"
)

func main() {
	model, err := sparc64v.NewModel(sparc64v.BaseConfig())
	if err != nil {
		log.Fatal(err)
	}
	opt := sparc64v.RunOptions{Insts: 200_000, Seed: 1}
	for _, profile := range []sparc64v.Profile{sparc64v.SPECint95(), sparc64v.TPCC()} {
		report, err := model.Run(profile, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s IPC %.3f | L1I miss %.2f%% | L1D miss %.2f%% | L2 miss %.2f%% | branch fail %.2f%%\n",
			profile.Name, report.IPC(),
			100*report.L1IMissRate(), 100*report.L1DMissRate(),
			100*report.L2DemandMissRate(), 100*report.BranchFailureRate())
	}
}
