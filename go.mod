module sparc64v

go 1.24
