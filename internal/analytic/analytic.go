// Package analytic is a grey-box closed-form CPI estimator for the
// detailed model: a fast tier that prices a configuration in microseconds
// instead of seconds.
//
// The model is "grey-box" because it is neither a pure white-box pipeline
// equation nor a black-box regression: its inputs are physically meaningful
// per-workload features measured from ONE detailed reference run (miss
// rates per kilo-instruction, mispredict rates, stall attribution), its
// structure is the classic additive-penalty CPI decomposition
//
//	CPI ≈ c_core·(issue + exec) + c_mem·(L1I + L1D + L2 + TLB) +
//	      c_branch·(mispredict + fetch-bubble) + c_0
//
// and the four coefficients are calibrated per workload against a ladder of
// detailed runs (see Calibrate). The coefficients absorb what the closed
// form cannot express — out-of-order overlap, MSHR parallelism, prefetch
// coverage — which is exactly why a naive additive model overestimates
// memory stalls by 2-3x and this one does not.
//
// Configurations away from the reference geometry are priced by scaling the
// measured miss rates with power laws (the square-root capacity rule for
// caches, a milder exponent for associativity and BHT entries), so the
// estimator answers "what if the L1 were 32KB?" without ever simulating
// that machine. The estimate carries a confidence band derived from the
// calibration residuals and full provenance (model version, trace length,
// seed), so a consumer can always tell how much to trust it and fall back
// to the detailed model (POST /v1/run) when the band is too wide or the
// workload is uncalibrated.
package analytic

import (
	"fmt"
	"math"

	"sparc64v/internal/config"
	"sparc64v/internal/isa"
	"sparc64v/internal/system"
)

// Power-law exponents for scaling measured miss rates to geometries away
// from the reference. The capacity exponent is the empirical "square-root
// rule" (miss rate ~ 1/sqrt(size)) that holds across the cache sizes the
// paper studies; associativity and BHT sizing move miss rates much less,
// hence the milder exponent.
const (
	sizeExp = 0.5
	waysExp = 0.25
	bhtExp  = 0.25
)

// Features is the per-workload measurement vector the estimator consumes,
// extracted from one detailed run at the reference configuration. All rates
// are per kilo-instruction (PKI/MPKI) over the measurement window, so they
// compose into cycles-per-instruction terms by a single multiply.
type Features struct {
	// Workload is the profile's canonical name.
	Workload string `json:"workload"`
	// ClassWeights is the committed-instruction fraction per class name
	// (isa.Class.String); the weights sum to 1.
	ClassWeights map[string]float64 `json:"class_weights"`
	// L1IMPKI, L1DMPKI and L2MPKI are demand misses per kilo-instruction
	// at the reference geometry.
	L1IMPKI float64 `json:"l1i_mpki"`
	L1DMPKI float64 `json:"l1d_mpki"`
	L2MPKI  float64 `json:"l2_mpki"`
	// L2MPKINoPf estimates the demand L2 MPKI with the prefetcher off:
	// demand plus prefetch misses per kilo-instruction. Every line the
	// prefetcher missed on is a line demand would have missed on, so this
	// is the no-prefetch upper bound the estimator uses for Prefetch=false
	// configurations.
	L2MPKINoPf float64 `json:"l2_mpki_nopf"`
	// BranchMPKI is mispredicted branches per kilo-instruction.
	BranchMPKI float64 `json:"branch_mpki"`
	// FetchBubblePKI is taken-branch BHT-access bubbles per
	// kilo-instruction (cycles, already scaled by the reference BHT's
	// access latency).
	FetchBubblePKI float64 `json:"fetch_bubble_pki"`
	// TLBStallPKI is TLB miss penalty cycles per kilo-instruction.
	TLBStallPKI float64 `json:"tlb_stall_pki"`

	// Reference geometry anchors for the power-law scaling.
	RefL1IBytes        int `json:"ref_l1i_bytes"`
	RefL1IWays         int `json:"ref_l1i_ways"`
	RefL1DBytes        int `json:"ref_l1d_bytes"`
	RefL1DWays         int `json:"ref_l1d_ways"`
	RefL2Bytes         int `json:"ref_l2_bytes"`
	RefL2Ways          int `json:"ref_l2_ways"`
	RefBHTEntries      int `json:"ref_bht_entries"`
	RefBHTAccessCycles int `json:"ref_bht_access_cycles"`
}

// MeasureFeatures extracts the feature vector from a uniprocessor detailed
// run at configuration cfg (the calibration reference).
func MeasureFeatures(cfg config.Config, r *system.Report) (Features, error) {
	if len(r.CPUs) != 1 {
		return Features{}, fmt.Errorf("analytic: features need a uniprocessor run, got %d CPUs", len(r.CPUs))
	}
	c := &r.CPUs[0]
	if c.Core.Committed == 0 {
		return Features{}, fmt.Errorf("analytic: reference run committed no instructions")
	}
	ki := float64(c.Core.Committed) / 1000
	f := Features{
		Workload:           r.Workload,
		ClassWeights:       make(map[string]float64),
		L1IMPKI:            float64(c.L1I.DemandMisses) / ki,
		L1DMPKI:            float64(c.L1D.DemandMisses) / ki,
		L2MPKI:             float64(c.L2.DemandMisses) / ki,
		L2MPKINoPf:         float64(c.L2.DemandMisses+c.L2.PrefetchMisses) / ki,
		BranchMPKI:         float64(c.Branch.Mispredicts()) / ki,
		FetchBubblePKI:     float64(c.Core.FetchBubbles) / ki,
		TLBStallPKI:        float64(c.TLBStallCycles) / ki,
		RefL1IBytes:        cfg.L1I.SizeBytes,
		RefL1IWays:         cfg.L1I.Ways,
		RefL1DBytes:        cfg.L1D.SizeBytes,
		RefL1DWays:         cfg.L1D.Ways,
		RefL2Bytes:         cfg.Mem.L2.SizeBytes,
		RefL2Ways:          cfg.Mem.L2.Ways,
		RefBHTEntries:      cfg.BHT.Entries,
		RefBHTAccessCycles: cfg.BHT.AccessCycles,
	}
	for op, n := range c.Core.CommittedByClass {
		if n > 0 {
			f.ClassWeights[isa.Class(op).String()] = float64(n) / float64(c.Core.Committed)
		}
	}
	return f, nil
}

// Terms are the three grouped regressors of the CPI model, each in
// cycles-per-instruction units so the fitted coefficients are dimensionless
// overlap factors.
type Terms struct {
	// Core is ideal issue occupancy plus latency-over-single-cycle
	// execution work.
	Core float64 `json:"core"`
	// Mem is the additive L1I + L1D + L2 + TLB miss penalty.
	Mem float64 `json:"mem"`
	// Branch is the mispredict redirect plus taken-branch fetch-bubble
	// penalty.
	Branch float64 `json:"branch"`
}

// Terms evaluates the model's regressors for configuration cfg, scaling the
// measured reference rates to cfg's geometry. The second return value
// itemizes the contributions (uncalibrated, for explainability).
func (f *Features) Terms(cfg config.Config) (Terms, map[string]float64) {
	var t Terms
	parts := make(map[string]float64)

	// Core: 1/width of perfectly packed issue, plus per-class execution
	// latency beyond a single cycle (mostly hidden by the out-of-order
	// window; the calibrated coefficient prices how much is not).
	issue := 1 / float64(cfg.CPU.IssueWidth)
	var exec float64
	for name, w := range f.ClassWeights {
		if cl, ok := classByName(name); ok {
			exec += w * float64(cfg.CPU.Latencies[cl].Cycles-1)
		}
	}
	t.Core = issue + exec
	parts["issue"] = issue
	parts["exec"] = exec

	// Mem: each miss population times its exposed latency. An L1 miss is
	// served by the L2 (plus the chip crossing when the L2 is off chip);
	// an L2 miss is served by memory.
	l1Cost := float64(cfg.Mem.L2.HitCycles)
	if cfg.Mem.L2OffChip {
		l1Cost += float64(cfg.Mem.OffChipPenalty)
	}
	memLat := float64(cfg.Mem.DRAMCycles)
	l1i := scaleCache(f.L1IMPKI, f.RefL1IBytes, cfg.L1I.SizeBytes, f.RefL1IWays, cfg.L1I.Ways) / 1000 * l1Cost
	l1d := scaleCache(f.L1DMPKI, f.RefL1DBytes, cfg.L1D.SizeBytes, f.RefL1DWays, cfg.L1D.Ways) / 1000 * l1Cost
	l2mpki := f.L2MPKI
	if !cfg.Mem.Prefetch {
		l2mpki = f.L2MPKINoPf
	}
	l2 := scaleCache(l2mpki, f.RefL2Bytes, cfg.Mem.L2.SizeBytes, f.RefL2Ways, cfg.Mem.L2.Ways) / 1000 * memLat
	tlb := f.TLBStallPKI / 1000
	t.Mem = l1i + l1d + l2 + tlb
	parts["l1i"] = l1i
	parts["l1d"] = l1d
	parts["l2"] = l2
	parts["tlb"] = tlb

	// Branch: a mispredict drains the front end (redirect plus fetch and
	// decode refill); a predicted-taken branch inserts BHT-access bubbles,
	// scaled from the reference table's latency.
	brMPKI := scalePow(f.BranchMPKI, f.RefBHTEntries, cfg.BHT.Entries, bhtExp)
	brPenalty := float64(cfg.CPU.MispredictRedirect + cfg.CPU.FetchPipeStages + cfg.CPU.DecodeStages)
	br := brMPKI / 1000 * brPenalty
	var bub float64
	if f.RefBHTAccessCycles > 0 {
		bub = f.FetchBubblePKI / 1000 * float64(cfg.BHT.AccessCycles) / float64(f.RefBHTAccessCycles)
	}
	t.Branch = br + bub
	parts["mispredict"] = br
	parts["bubble"] = bub

	return t, parts
}

// scalePow scales a measured rate from a reference geometry parameter to
// the configured one: rate · (ref/cur)^exp. Shrinking the resource (cur <
// ref) raises the rate.
func scalePow(rate float64, ref, cur int, exp float64) float64 {
	if ref <= 0 || cur <= 0 || ref == cur {
		return rate
	}
	return rate * math.Pow(float64(ref)/float64(cur), exp)
}

// scaleCache applies the capacity and associativity power laws together.
func scaleCache(mpki float64, refBytes, curBytes, refWays, curWays int) float64 {
	return scalePow(scalePow(mpki, refBytes, curBytes, sizeExp), refWays, curWays, waysExp)
}

// classByName inverts isa.Class.String. The class space is tiny, so a
// linear scan is simpler than maintaining a parallel map.
func classByName(name string) (isa.Class, bool) {
	for c := 0; c < isa.NumClasses; c++ {
		if isa.Class(c).String() == name {
			return isa.Class(c), true
		}
	}
	return 0, false
}

// Coefficients are the calibrated per-workload weights of the grouped
// terms. Core/Mem/Branch are overlap factors (how much of each additive
// penalty the out-of-order machine actually exposes, typically in (0,1]);
// Const absorbs workload-constant cost the terms do not carry.
type Coefficients struct {
	Core   float64 `json:"core"`
	Mem    float64 `json:"mem"`
	Branch float64 `json:"branch"`
	Const  float64 `json:"const"`
}

// CPI applies the coefficients to a term vector.
func (k Coefficients) CPI(t Terms) float64 {
	return k.Core*t.Core + k.Mem*t.Mem + k.Branch*t.Branch + k.Const
}
