package analytic

import (
	"errors"
	"math"
	"strings"
	"testing"

	"sparc64v/internal/config"
	"sparc64v/internal/core"
	"sparc64v/internal/system"
)

// synthTerms builds a spread of term vectors resembling a real ladder.
func synthTerms() []Terms {
	return []Terms{
		{Core: 0.30, Mem: 0.40, Branch: 0.10},
		{Core: 0.55, Mem: 0.40, Branch: 0.10},
		{Core: 0.30, Mem: 0.90, Branch: 0.10},
		{Core: 0.30, Mem: 0.55, Branch: 0.10},
		{Core: 0.30, Mem: 0.40, Branch: 0.22},
		{Core: 0.30, Mem: 0.70, Branch: 0.13},
		{Core: 0.30, Mem: 0.60, Branch: 0.10},
		{Core: 0.30, Mem: 0.80, Branch: 0.16},
	}
}

func TestFitRecoversKnownCoefficients(t *testing.T) {
	want := Coefficients{Core: 0.8, Mem: 0.5, Branch: 1.2, Const: 0.3}
	terms := synthTerms()
	y := make([]float64, len(terms))
	for i, tr := range terms {
		y[i] = want.CPI(tr)
	}
	got := fit(terms, y)
	for name, pair := range map[string][2]float64{
		"core":   {got.Core, want.Core},
		"mem":    {got.Mem, want.Mem},
		"branch": {got.Branch, want.Branch},
		"const":  {got.Const, want.Const},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-6 {
			t.Errorf("fit %s = %v, want %v", name, pair[0], pair[1])
		}
	}
}

func TestFitClampsNegativeSlopes(t *testing.T) {
	// A response that decreases with the Branch term would fit a negative
	// slope unconstrained; the active-set pass must clamp it to zero.
	gen := Coefficients{Core: 0.8, Mem: 0.5, Branch: -2.0, Const: 0.3}
	terms := synthTerms()
	y := make([]float64, len(terms))
	for i, tr := range terms {
		y[i] = gen.CPI(tr)
	}
	got := fit(terms, y)
	if got.Branch != 0 {
		t.Errorf("fit branch = %v, want clamped 0", got.Branch)
	}
	if got.Core < 0 || got.Mem < 0 {
		t.Errorf("fit produced negative slope: %+v", got)
	}
}

func TestScalePow(t *testing.T) {
	// Halving a cache under the square-root rule raises the miss rate by
	// sqrt(2); growing it lowers the rate; same size is identity.
	if got := scalePow(10, 128, 64, 0.5); math.Abs(got-10*math.Sqrt2) > 1e-9 {
		t.Errorf("shrink: got %v", got)
	}
	if got := scalePow(10, 64, 128, 0.5); got >= 10 {
		t.Errorf("grow did not lower the rate: %v", got)
	}
	if got := scalePow(10, 64, 64, 0.5); got != 10 {
		t.Errorf("identity: got %v", got)
	}
}

func TestDefaultArtifact(t *testing.T) {
	cal, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	if cal.ModelVersion != core.ModelVersion {
		t.Fatalf("artifact model version %q, want %q — regenerate with cmd/calibrate",
			cal.ModelVersion, core.ModelVersion)
	}
	if len(cal.Workloads) < 6 {
		t.Fatalf("artifact has %d workloads, want >= 6", len(cal.Workloads))
	}
	for _, wc := range cal.Workloads {
		name := wc.Features.Workload
		if wc.MaxRelErr >= 0.15 {
			t.Errorf("%s: max ladder residual %.1f%% >= 15%%", name, 100*wc.MaxRelErr)
		}
		var base *Residual
		for i := range wc.Residuals {
			if wc.Residuals[i].Config == "sparc64v.base" {
				base = &wc.Residuals[i]
			}
		}
		if base == nil {
			t.Errorf("%s: no base-configuration residual", name)
			continue
		}
		if math.Abs(base.RelErr) >= 0.10 {
			t.Errorf("%s: base residual %.1f%% >= 10%%", name, 100*base.RelErr)
		}
	}
}

func TestEstimate(t *testing.T) {
	cal, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	e, err := cal.Estimate(config.Base(), "specint95")
	if err != nil {
		t.Fatal(err)
	}
	if e.CPI <= 0 || e.IPC <= 0 || math.Abs(e.CPI*e.IPC-1) > 1e-9 {
		t.Errorf("CPI/IPC inconsistent: %+v", e)
	}
	if !(e.CPILow <= e.CPI && e.CPI <= e.CPIHigh) {
		t.Errorf("band does not bracket the estimate: [%v, %v] around %v", e.CPILow, e.CPIHigh, e.CPI)
	}
	if e.ModelVersion != core.ModelVersion || e.CalibrationInsts <= 0 {
		t.Errorf("missing provenance: %+v", e)
	}
	for _, part := range []string{"issue", "exec", "l1i", "l1d", "l2", "tlb", "mispredict", "bubble"} {
		if _, ok := e.Terms[part]; !ok {
			t.Errorf("terms missing %q", part)
		}
	}
	// Workload names resolve case-insensitively, as in workload.ByName.
	if _, err := cal.Estimate(config.Base(), "SPECint95"); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
}

func TestEstimateUncalibrated(t *testing.T) {
	cal, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cal.Estimate(config.Base(), "nosuch"); !errors.Is(err, ErrUncalibrated) {
		t.Errorf("unknown workload: got %v, want ErrUncalibrated", err)
	}
	if _, err := cal.Estimate(config.Base().WithCPUs(16), "specint95"); !errors.Is(err, ErrUncalibrated) {
		t.Errorf("MP configuration: got %v, want ErrUncalibrated", err)
	}
}

func TestEstimateCacheTrend(t *testing.T) {
	cal, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	base := config.Base()
	ladder := []config.Config{
		base,
		base.WithL1Capacity(64<<10, 2),
		base.WithL1Capacity(32<<10, 1),
	}
	for _, wc := range cal.Workloads {
		prev := -1.0
		for _, cfg := range ladder {
			e, err := cal.Estimate(cfg, wc.Features.Workload)
			if err != nil {
				t.Fatalf("%s/%s: %v", wc.Features.Workload, cfg.Name, err)
			}
			if e.CPI < prev {
				t.Errorf("%s: CPI fell from %.4f to %.4f when the L1 shrank (%s)",
					wc.Features.Workload, prev, e.CPI, cfg.Name)
			}
			prev = e.CPI
		}
		// Disabling the prefetcher can only expose more L2 misses.
		on, _ := cal.Estimate(base, wc.Features.Workload)
		off, err := cal.Estimate(base.WithoutPrefetch(), wc.Features.Workload)
		if err != nil {
			t.Fatal(err)
		}
		if off.CPI < on.CPI {
			t.Errorf("%s: prefetch-off CPI %.4f < prefetch-on %.4f",
				wc.Features.Workload, off.CPI, on.CPI)
		}
	}
}

func TestEstimateDeterministic(t *testing.T) {
	cal, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	a, err := cal.Estimate(config.Base().WithSmallBHT(), "tpc-c")
	if err != nil {
		t.Fatal(err)
	}
	b, err := cal.Estimate(config.Base().WithSmallBHT(), "tpc-c")
	if err != nil {
		t.Fatal(err)
	}
	if a.CPI != b.CPI || a.CPILow != b.CPILow || a.CPIHigh != b.CPIHigh {
		t.Errorf("estimate not deterministic: %+v vs %+v", a, b)
	}
}

func TestMeasureFeaturesRejectsMP(t *testing.T) {
	r := system.Report{CPUs: make([]system.CPUReport, 2)}
	if _, err := MeasureFeatures(config.Base(), &r); err == nil ||
		!strings.Contains(err.Error(), "uniprocessor") {
		t.Errorf("MP report: got %v", err)
	}
}
