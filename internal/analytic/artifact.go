package analytic

import (
	_ "embed"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"

	"sparc64v/internal/config"
)

// Residual is one ladder point's calibration error.
type Residual struct {
	// Config names the ladder configuration.
	Config string `json:"config"`
	// MeasuredCPI is the detailed model's CPI; EstimatedCPI the fitted
	// model's; RelErr their signed relative difference.
	MeasuredCPI  float64 `json:"measured_cpi"`
	EstimatedCPI float64 `json:"estimated_cpi"`
	RelErr       float64 `json:"rel_err"`
}

// WorkloadCalibration is one workload's fitted model plus the evidence for
// trusting it.
type WorkloadCalibration struct {
	Features  Features     `json:"features"`
	Coeffs    Coefficients `json:"coefficients"`
	Residuals []Residual   `json:"residuals"`
	// MaxRelErr is the largest absolute relative residual across the
	// ladder; RMSE the root-mean-square. MaxRelErr sizes the confidence
	// band on every estimate.
	MaxRelErr float64 `json:"max_rel_err"`
	RMSE      float64 `json:"rmse"`
}

// Calibration is the complete estimator state: everything POST /v1/estimate
// needs, checked into the repository and embedded into the binary so the
// fast tier works with zero setup. Regenerate with cmd/calibrate.
type Calibration struct {
	// ModelVersion records the simulator version the references ran on;
	// estimates refuse to serve from a stale artifact.
	ModelVersion string `json:"model_version"`
	// Insts and Seed pin the reference runs' operating point.
	Insts int   `json:"insts"`
	Seed  int64 `json:"seed"`
	// Workloads holds one calibrated model per workload.
	Workloads []WorkloadCalibration `json:"workloads"`
}

// ErrUncalibrated reports that no calibrated model exists for the requested
// (workload, configuration) pair — multiprocessor configurations and
// workloads outside the calibration set. Callers fall back to the detailed
// tier.
var ErrUncalibrated = errors.New("analytic: not calibrated for this request")

// Lookup finds a workload's calibration by canonical name
// (case-insensitive, matching workload.ByName).
func (c *Calibration) Lookup(name string) (*WorkloadCalibration, bool) {
	for i := range c.Workloads {
		if strings.EqualFold(c.Workloads[i].Features.Workload, name) {
			return &c.Workloads[i], true
		}
	}
	return nil, false
}

// Estimate is a fast-tier CPI prediction with its uncertainty and
// provenance.
type Estimate struct {
	Workload string `json:"workload"`
	Config   string `json:"config"`
	// CPI is the point estimate; IPC its reciprocal. CPILow and CPIHigh
	// are the confidence band: the point estimate widened by the
	// calibration's worst relative residual.
	CPI     float64 `json:"cpi"`
	IPC     float64 `json:"ipc"`
	CPILow  float64 `json:"cpi_low"`
	CPIHigh float64 `json:"cpi_high"`
	// Terms itemizes the uncalibrated model terms (cycles per
	// instruction) so the estimate is explainable.
	Terms map[string]float64 `json:"terms"`
	// ModelVersion, CalibrationInsts and CalibrationSeed identify the
	// calibration artifact that produced the estimate; MaxRelErr is its
	// worst ladder residual (the band's half-width, relative).
	ModelVersion     string  `json:"model_version"`
	CalibrationInsts int     `json:"calibration_insts"`
	CalibrationSeed  int64   `json:"calibration_seed"`
	MaxRelErr        float64 `json:"max_rel_err"`
}

// Estimate prices configuration cfg for the named workload. It returns
// ErrUncalibrated for multiprocessor configurations and workloads outside
// the calibration set; every other configuration within the model's
// parameter space gets an answer in microseconds.
func (c *Calibration) Estimate(cfg config.Config, name string) (Estimate, error) {
	if err := cfg.Validate(); err != nil {
		return Estimate{}, err
	}
	if cfg.CPUs != 1 {
		return Estimate{}, fmt.Errorf("%w: %d-CPU configuration (calibrated for uniprocessors)", ErrUncalibrated, cfg.CPUs)
	}
	wc, ok := c.Lookup(name)
	if !ok {
		return Estimate{}, fmt.Errorf("%w: workload %q", ErrUncalibrated, name)
	}
	terms, parts := wc.Features.Terms(cfg)
	cpi := wc.Coeffs.CPI(terms)
	// The machine cannot beat perfectly packed issue; an extrapolated
	// estimate must not either.
	if floor := 1 / float64(cfg.CPU.IssueWidth); cpi < floor {
		cpi = floor
	}
	e := Estimate{
		Workload:         wc.Features.Workload,
		Config:           cfg.Name,
		CPI:              cpi,
		IPC:              1 / cpi,
		CPILow:           cpi * (1 - wc.MaxRelErr),
		CPIHigh:          cpi * (1 + wc.MaxRelErr),
		Terms:            parts,
		ModelVersion:     c.ModelVersion,
		CalibrationInsts: c.Insts,
		CalibrationSeed:  c.Seed,
		MaxRelErr:        wc.MaxRelErr,
	}
	return e, nil
}

// Write serializes the artifact as stable indented JSON (the checked-in
// calibration.json format).
func (c *Calibration) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// Load parses an artifact.
func Load(data []byte) (*Calibration, error) {
	var c Calibration
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("analytic: bad calibration artifact: %w", err)
	}
	return &c, nil
}

//go:embed calibration.json
var embedded []byte

var (
	defaultOnce sync.Once
	defaultCal  *Calibration
	defaultErr  error
)

// Default returns the calibration artifact checked into the repository
// (embedded at build time). Regenerate it with cmd/calibrate after any
// change that bumps core.ModelVersion.
func Default() (*Calibration, error) {
	defaultOnce.Do(func() {
		defaultCal, defaultErr = Load(embedded)
	})
	return defaultCal, defaultErr
}
