package analytic

import (
	"context"
	"fmt"
	"math"

	"sparc64v/internal/config"
	"sparc64v/internal/core"
	"sparc64v/internal/obs"
	"sparc64v/internal/runcache"
	"sparc64v/internal/sched"
	"sparc64v/internal/system"
	"sparc64v/internal/workload"
)

// Ladder returns the calibration configurations derived from base: the
// reference machine first, then one-knob excursions that exercise every
// term of the model (issue width, L1 capacity both ways, BHT sizing, L2
// geometry and placement, prefetching). Eight points fitting four
// coefficients leaves the fit honestly overdetermined.
func Ladder(base config.Config) []config.Config {
	l2small := base
	l2small.Mem.L2.SizeBytes = 1 << 20
	l2small.Mem.L2.Ways = 2
	l2small.Name += ".l2-1m-2w"
	return []config.Config{
		base,
		base.WithIssueWidth(2),
		base.WithL1Capacity(32<<10, 1),
		base.WithL1Capacity(64<<10, 2),
		base.WithSmallBHT(),
		base.WithOffChipL2(1),
		l2small,
		base.WithoutPrefetch(),
	}
}

// CalibrateOptions controls a calibration run.
type CalibrateOptions struct {
	// Insts is the detailed trace length per reference run (0 means
	// DefaultInsts). It is recorded in the artifact: the residual check
	// re-validates at exactly this operating point.
	Insts int
	// Seed selects the synthetic trace window (0 means 42).
	Seed int64
	// Workers bounds the fan-out over (workload, configuration) reference
	// runs; 0 means GOMAXPROCS.
	Workers int
	// Cache, when non-nil, serves reference runs content-addressed.
	Cache *runcache.Cache
	// Obs, when non-nil, profiles the reference runs.
	Obs *obs.Collector
}

// DefaultInsts is the calibration trace length: long enough that the
// measured CPI is stable to well under the residual tolerance, short enough
// that regenerating the artifact stays a coffee-break operation.
const DefaultInsts = 150_000

func (o *CalibrateOptions) defaults() {
	if o.Insts <= 0 {
		o.Insts = DefaultInsts
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// Calibrate fits per-workload coefficients against detailed reference runs
// of the Ladder configurations and returns the complete, serializable
// calibration artifact. All (workload, configuration) runs fan out on the
// scheduler; results are deterministic for fixed (Insts, Seed).
func Calibrate(ctx context.Context, profiles []workload.Profile, opt CalibrateOptions) (*Calibration, error) {
	opt.defaults()
	ladder := Ladder(config.Base())
	type job struct {
		prof workload.Profile
		cfg  config.Config
	}
	var jobs []job
	for _, p := range profiles {
		for _, cfg := range ladder {
			jobs = append(jobs, job{p, cfg})
		}
	}
	ropt := core.RunOptions{
		Insts:   opt.Insts,
		Seed:    opt.Seed,
		Workers: opt.Workers,
		Cache:   opt.Cache,
		Obs:     opt.Obs,
	}
	reports, err := sched.MapCtx(ctx, len(jobs), sched.Options{Workers: opt.Workers},
		func(ctx context.Context, i int) (system.Report, error) {
			m, err := core.NewModel(jobs[i].cfg)
			if err != nil {
				return system.Report{}, err
			}
			return m.RunContext(ctx, jobs[i].prof, ropt)
		})
	if err != nil {
		return nil, fmt.Errorf("analytic: calibration reference runs: %w", err)
	}

	cal := &Calibration{
		ModelVersion: core.ModelVersion,
		Insts:        opt.Insts,
		Seed:         opt.Seed,
	}
	for pi, p := range profiles {
		refs := reports[pi*len(ladder) : (pi+1)*len(ladder)]
		feat, err := MeasureFeatures(ladder[0], &refs[0])
		if err != nil {
			return nil, fmt.Errorf("analytic: %s: %w", p.Name, err)
		}
		wc, err := fitWorkload(feat, ladder, refs)
		if err != nil {
			return nil, fmt.Errorf("analytic: %s: %w", p.Name, err)
		}
		cal.Workloads = append(cal.Workloads, wc)
	}
	return cal, nil
}

// fitWorkload fits one workload's coefficients over the ladder and computes
// its residual report.
func fitWorkload(feat Features, ladder []config.Config, refs []system.Report) (WorkloadCalibration, error) {
	terms := make([]Terms, len(ladder))
	y := make([]float64, len(ladder))
	for i := range ladder {
		terms[i], _ = feat.Terms(ladder[i])
		ipc := refs[i].IPC()
		if ipc <= 0 {
			return WorkloadCalibration{}, fmt.Errorf("reference run %s has no IPC", ladder[i].Name)
		}
		y[i] = 1 / ipc
	}
	coeffs := fit(terms, y)
	wc := WorkloadCalibration{Features: feat, Coeffs: coeffs}
	var ss float64
	for i := range ladder {
		est := coeffs.CPI(terms[i])
		rel := (est - y[i]) / y[i]
		wc.Residuals = append(wc.Residuals, Residual{
			Config:       ladder[i].Name,
			MeasuredCPI:  y[i],
			EstimatedCPI: est,
			RelErr:       rel,
		})
		if a := math.Abs(rel); a > wc.MaxRelErr {
			wc.MaxRelErr = a
		}
		ss += rel * rel
	}
	wc.RMSE = math.Sqrt(ss / float64(len(ladder)))
	return wc, nil
}

// fit solves the least-squares problem y ≈ [Core Mem Branch 1]·β with the
// three slope coefficients constrained non-negative: a negative overlap
// factor is physically meaningless and would flip the sign of the model's
// response to a resource change (a smaller cache must never predict a
// lower CPI). The active-set loop clamps the most negative slope to zero
// and refits the rest; with three slopes it terminates in at most three
// passes. The base configuration (row 0) is weighted heavily — it is the
// operating point every estimate starts from, so its residual matters most.
func fit(terms []Terms, y []float64) Coefficients {
	active := []bool{true, true, true}
	for {
		beta := solveWeighted(terms, y, active)
		worst, worstV := -1, 0.0
		for j := 0; j < 3; j++ {
			if active[j] && beta[j] < worstV {
				worst, worstV = j, beta[j]
			}
		}
		if worst < 0 {
			return Coefficients{Core: beta[0], Mem: beta[1], Branch: beta[2], Const: beta[3]}
		}
		active[worst] = false
	}
}

// baseWeight is the least-squares weight of the reference configuration's
// row relative to the excursions.
const baseWeight = 4.0

// solveWeighted solves the normal equations over the active columns plus
// the constant, returning a dense 4-vector (inactive slopes zero).
func solveWeighted(terms []Terms, y []float64, active []bool) [4]float64 {
	cols := []int{}
	for j := 0; j < 3; j++ {
		if active[j] {
			cols = append(cols, j)
		}
	}
	cols = append(cols, 3) // constant column
	n := len(cols)
	// Accumulate XᵀWX and XᵀWy.
	var a [4][4]float64
	var b [4]float64
	row := func(t Terms) [4]float64 { return [4]float64{t.Core, t.Mem, t.Branch, 1} }
	for i := range terms {
		w := 1.0
		if i == 0 {
			w = baseWeight
		}
		x := row(terms[i])
		for ji, j := range cols {
			b[ji] += w * x[j] * y[i]
			for ki, k := range cols {
				a[ji][ki] += w * x[j] * x[k]
			}
		}
	}
	// Tiny ridge keeps the system solvable when a term is constant across
	// the ladder (e.g. every slope clamped but one).
	for j := 0; j < n; j++ {
		a[j][j] += 1e-9
	}
	sol := gauss(a, b, n)
	var beta [4]float64
	for ji, j := range cols {
		beta[j] = sol[ji]
	}
	return beta
}

// gauss solves the n×n system a·x = b by Gaussian elimination with partial
// pivoting. n ≤ 4; the arrays are fixed-size to keep the solver
// allocation-free and deterministic.
func gauss(a [4][4]float64, b [4]float64, n int) [4]float64 {
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		if a[col][col] == 0 {
			continue
		}
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [4]float64
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		if a[r][r] != 0 {
			x[r] = s / a[r][r]
		}
	}
	return x
}
