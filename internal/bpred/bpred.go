// Package bpred implements the SPARC64 V branch prediction machinery: a
// set-associative, tagged branch history table (BHT) with 2-bit saturating
// counters and stored targets, plus a return-address stack.
//
// The paper's Figure 9/10 study compares two BHT geometries — a 16K-entry
// 4-way table with 2-cycle access ("16k-4w.2t") against a 4K-entry 2-way
// table with 1-cycle access ("4k-2w.1t"). The access latency matters
// because a predicted-taken branch cannot redirect fetch until the table
// read completes: the large table costs two fetch bubbles per taken branch,
// the small one costs one.
package bpred

import (
	"fmt"

	"sparc64v/internal/config"
	"sparc64v/internal/isa"
)

type entry struct {
	tag     uint64
	target  uint64
	counter uint8 // 2-bit saturating: 0,1 not-taken; 2,3 taken
	valid   bool
	lru     uint64
}

// BHT is a tagged, set-associative branch history table.
type BHT struct {
	sets    [][]entry
	setMask uint64
	access  int
	tick    uint64
}

// NewBHT builds a table with the given geometry.
func NewBHT(g config.BHTGeometry) *BHT {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	nsets := g.Entries / g.Ways
	sets := make([][]entry, nsets)
	backing := make([]entry, g.Entries)
	for i := range sets {
		sets[i], backing = backing[:g.Ways:g.Ways], backing[g.Ways:]
	}
	return &BHT{sets: sets, setMask: uint64(nsets - 1), access: g.AccessCycles}
}

// AccessCycles returns the table read latency (taken-branch fetch bubbles).
func (b *BHT) AccessCycles() int { return b.access }

func (b *BHT) index(pc uint64) (set uint64, tag uint64) {
	line := pc >> 2
	return line & b.setMask, line >> uint(popcount(b.setMask))
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Lookup predicts the branch at pc. hit reports whether the table holds an
// entry; when !hit the static prediction (not taken) applies.
func (b *BHT) Lookup(pc uint64) (taken bool, target uint64, hit bool) {
	set, tag := b.index(pc)
	for i := range b.sets[set] {
		e := &b.sets[set][i]
		if e.valid && e.tag == tag {
			b.tick++
			e.lru = b.tick
			return e.counter >= 2, e.target, true
		}
	}
	return false, 0, false
}

// Update trains the table with the architected outcome. Entries are
// allocated on taken branches (a never-taken branch costs nothing to
// predict statically).
func (b *BHT) Update(pc uint64, taken bool, target uint64) {
	set, tag := b.index(pc)
	ways := b.sets[set]
	for i := range ways {
		e := &ways[i]
		if e.valid && e.tag == tag {
			if taken {
				if e.counter < 3 {
					e.counter++
				}
				e.target = target
			} else if e.counter > 0 {
				e.counter--
			}
			return
		}
	}
	if !taken {
		return
	}
	// Allocate, evicting the LRU way.
	victim := 0
	for i := 1; i < len(ways); i++ {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	b.tick++
	ways[victim] = entry{tag: tag, target: target, counter: 3, valid: true, lru: b.tick}
}

// RAS is a fixed-depth return-address stack with wrap-around overwrite on
// overflow (matching hardware behavior: deep recursion corrupts the oldest
// entries, not the newest).
type RAS struct {
	buf []uint64
	top int
	n   int
}

// NewRAS returns a stack with the given capacity.
func NewRAS(entries int) *RAS {
	if entries < 1 {
		entries = 1
	}
	return &RAS{buf: make([]uint64, entries)}
}

// Push records a return address at a call.
func (r *RAS) Push(addr uint64) {
	r.buf[r.top] = addr
	r.top = (r.top + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// Pop predicts the target of a return. ok is false when the stack is empty.
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.n == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.buf)) % len(r.buf)
	r.n--
	return r.buf[r.top], true
}

// Depth returns the current number of valid entries.
func (r *RAS) Depth() int { return r.n }

// Stats counts prediction outcomes.
type Stats struct {
	// CondBranches and CondMispredicts count conditional branches.
	CondBranches, CondMispredicts uint64
	// Calls counts call instructions (always predicted taken).
	Calls uint64
	// Returns and ReturnMispredicts count RAS activity.
	Returns, ReturnMispredicts uint64
	// BHTHits counts conditional lookups that found an entry.
	BHTHits uint64
}

// Branches returns the total control transfers predicted.
func (s *Stats) Branches() uint64 { return s.CondBranches + s.Calls + s.Returns }

// Mispredicts returns total mispredictions.
func (s *Stats) Mispredicts() uint64 { return s.CondMispredicts + s.ReturnMispredicts }

// FailureRate returns the paper's "branch prediction failure" metric:
// mispredictions per predicted branch.
func (s *Stats) FailureRate() float64 {
	b := s.Branches()
	if b == 0 {
		return 0
	}
	return float64(s.Mispredicts()) / float64(b)
}

func (s *Stats) String() string {
	return fmt.Sprintf("branches=%d mispredicts=%d (%.2f%%)",
		s.Branches(), s.Mispredicts(), 100*s.FailureRate())
}

// Outcome is the front end's view of one predicted control transfer.
type Outcome struct {
	// Mispredict reports a direction or target misprediction: fetch went
	// down the wrong path until the branch resolves.
	Mispredict bool
	// TakenBubbles is the fetch-gap cost, in cycles, of a correctly
	// predicted taken transfer (BHT access latency).
	TakenBubbles int
}

// Predictor bundles the BHT and RAS behind the interface the fetch unit
// uses: feed it each control-transfer record (with its architected outcome)
// and get back what the front end would have done.
type Predictor struct {
	bht *BHT
	ras *RAS
	// Stats accumulates outcome counts.
	Stats Stats
}

// NewPredictor builds the predictor for the given geometry.
func NewPredictor(bht config.BHTGeometry, rasEntries int) *Predictor {
	return &Predictor{bht: NewBHT(bht), ras: NewRAS(rasEntries)}
}

// Conditional processes a conditional branch: pc, the architected outcome
// taken/target.
func (p *Predictor) Conditional(pc uint64, taken bool, target uint64) Outcome {
	p.Stats.CondBranches++
	predTaken, predTarget, hit := p.bht.Lookup(pc)
	if hit {
		p.Stats.BHTHits++
	}
	var o Outcome
	switch {
	case predTaken != taken:
		o.Mispredict = true
	case taken && predTarget != target:
		o.Mispredict = true
	case taken:
		o.TakenBubbles = p.bht.AccessCycles()
	}
	if o.Mispredict {
		p.Stats.CondMispredicts++
	}
	p.bht.Update(pc, taken, target)
	return o
}

// Call processes a call instruction: the target is known at decode, so it
// never mispredicts, but the taken redirect still costs the table bubbles,
// and the return address is pushed for the matching Return.
func (p *Predictor) Call(pc uint64) Outcome {
	p.Stats.Calls++
	p.ras.Push(pc + isa.InstrBytes)
	return Outcome{TakenBubbles: p.bht.AccessCycles()}
}

// Return processes a return: the RAS supplies the predicted target.
func (p *Predictor) Return(target uint64) Outcome {
	p.Stats.Returns++
	pred, ok := p.ras.Pop()
	if !ok || pred != target {
		p.Stats.ReturnMispredicts++
		return Outcome{Mispredict: true}
	}
	return Outcome{TakenBubbles: p.bht.AccessCycles()}
}
