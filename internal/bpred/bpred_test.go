package bpred

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparc64v/internal/config"
	"sparc64v/internal/isa"
)

func smallGeo() config.BHTGeometry {
	return config.BHTGeometry{Entries: 64, Ways: 2, AccessCycles: 1}
}

func TestBHTLearnsTaken(t *testing.T) {
	b := NewBHT(smallGeo())
	pc, tgt := uint64(0x1000), uint64(0x2000)
	if taken, _, hit := b.Lookup(pc); taken || hit {
		t.Fatal("cold lookup must be a static not-taken miss")
	}
	b.Update(pc, true, tgt)
	taken, target, hit := b.Lookup(pc)
	if !hit || !taken || target != tgt {
		t.Fatalf("after one taken update: taken=%v target=%#x hit=%v", taken, target, hit)
	}
	// A single not-taken flips the 2-bit counter to weakly-taken, still taken.
	b.Update(pc, false, 0)
	if taken, _, _ := b.Lookup(pc); !taken {
		t.Fatal("2-bit counter flipped after a single not-taken")
	}
	b.Update(pc, false, 0)
	if taken, _, _ := b.Lookup(pc); taken {
		t.Fatal("counter still taken after two not-takens")
	}
}

func TestBHTNeverAllocatesNotTaken(t *testing.T) {
	b := NewBHT(smallGeo())
	b.Update(0x1000, false, 0)
	if _, _, hit := b.Lookup(0x1000); hit {
		t.Fatal("not-taken branch allocated an entry")
	}
}

func TestBHTCapacityEviction(t *testing.T) {
	g := smallGeo() // 32 sets * 2 ways
	b := NewBHT(g)
	// Fill one set's both ways plus one more mapping to the same set.
	nsets := uint64(g.Entries / g.Ways)
	pcs := []uint64{0x1000, 0x1000 + nsets*4, 0x1000 + 2*nsets*4}
	for _, pc := range pcs {
		b.Update(pc, true, pc+100)
	}
	hits := 0
	for _, pc := range pcs {
		if _, _, hit := b.Lookup(pc); hit {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("expected exactly 2 survivors in a 2-way set, got %d", hits)
	}
}

func TestBHTTargetUpdate(t *testing.T) {
	b := NewBHT(smallGeo())
	b.Update(0x1000, true, 0x2000)
	b.Update(0x1000, true, 0x3000) // indirect-style target change
	_, target, _ := b.Lookup(0x1000)
	if target != 0x3000 {
		t.Fatalf("target = %#x, want 0x3000", target)
	}
}

// Property: a strongly biased branch is predicted with accuracy well above
// its bias floor; an alternating branch does poorly. Classic 2-bit counter
// behavior.
func TestCounterDynamics(t *testing.T) {
	b := NewBHT(smallGeo())
	rng := rand.New(rand.NewSource(42))
	correct, total := 0, 0
	for i := 0; i < 10000; i++ {
		taken := rng.Float64() < 0.95
		pred, _, _ := b.Lookup(0x4000)
		if pred == taken {
			correct++
		}
		total++
		b.Update(0x4000, taken, 0x5000)
	}
	if acc := float64(correct) / float64(total); acc < 0.90 {
		t.Errorf("biased branch accuracy %.3f < 0.90", acc)
	}
	// Strict alternation defeats a 2-bit counter.
	correct, total = 0, 0
	for i := 0; i < 1000; i++ {
		taken := i%2 == 0
		pred, _, _ := b.Lookup(0x6000)
		if pred == taken {
			correct++
		}
		total++
		b.Update(0x6000, taken, 0x7000)
	}
	if acc := float64(correct) / float64(total); acc > 0.6 {
		t.Errorf("alternating branch accuracy %.3f suspiciously high", acc)
	}
}

func TestRAS(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Fatal("empty RAS popped")
	}
	r.Push(1)
	r.Push(2)
	if a, ok := r.Pop(); !ok || a != 2 {
		t.Fatalf("Pop = %d,%v", a, ok)
	}
	if a, ok := r.Pop(); !ok || a != 1 {
		t.Fatalf("Pop = %d,%v", a, ok)
	}
	// Overflow wraps: deepest entries are lost, newest survive.
	for i := 1; i <= 6; i++ {
		r.Push(uint64(i))
	}
	if r.Depth() != 4 {
		t.Fatalf("Depth = %d", r.Depth())
	}
	for want := 6; want >= 3; want-- {
		a, ok := r.Pop()
		if !ok || a != uint64(want) {
			t.Fatalf("Pop = %d,%v, want %d", a, ok, want)
		}
	}
}

// Property: RAS behaves as a stack for any push/pop sequence within
// capacity.
func TestRASQuick(t *testing.T) {
	f := func(ops []bool) bool {
		r := NewRAS(64)
		var model []uint64
		next := uint64(1)
		for _, push := range ops {
			if push {
				if len(model) == 64 {
					continue
				}
				r.Push(next)
				model = append(model, next)
				next++
			} else {
				got, ok := r.Pop()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if !ok || got != want {
					return false
				}
			}
		}
		return r.Depth() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPredictorConditional(t *testing.T) {
	p := NewPredictor(config.BHTGeometry{Entries: 1024, Ways: 4, AccessCycles: 2}, 8)
	// Train a taken branch, then verify correct predictions cost bubbles.
	o := p.Conditional(0x100, true, 0x200)
	if !o.Mispredict {
		t.Fatal("cold taken branch must mispredict (static not-taken)")
	}
	o = p.Conditional(0x100, true, 0x200)
	if o.Mispredict || o.TakenBubbles != 2 {
		t.Fatalf("trained taken branch: %+v", o)
	}
	// Correct not-taken prediction is free.
	o = p.Conditional(0x300, false, 0)
	if o.Mispredict || o.TakenBubbles != 0 {
		t.Fatalf("not-taken branch: %+v", o)
	}
	// Target change on a predicted-taken branch is a misprediction.
	o = p.Conditional(0x100, true, 0x999)
	if !o.Mispredict {
		t.Fatal("target mismatch not flagged")
	}
	if p.Stats.CondBranches != 4 || p.Stats.CondMispredicts != 2 {
		t.Fatalf("stats = %+v", p.Stats)
	}
}

func TestPredictorCallReturn(t *testing.T) {
	p := NewPredictor(smallGeo(), 8)
	o := p.Call(0x1000)
	if o.Mispredict {
		t.Fatal("call mispredicted")
	}
	o = p.Return(0x1004)
	if o.Mispredict {
		t.Fatal("matched return mispredicted")
	}
	// Return with empty RAS mispredicts.
	o = p.Return(0x2000)
	if !o.Mispredict {
		t.Fatal("empty-RAS return predicted")
	}
	if p.Stats.Returns != 2 || p.Stats.ReturnMispredicts != 1 || p.Stats.Calls != 1 {
		t.Fatalf("stats = %+v", p.Stats)
	}
	if p.Stats.Branches() != 3 {
		t.Fatalf("Branches() = %d", p.Stats.Branches())
	}
	if got := p.Stats.FailureRate(); got < 0.33 || got > 0.34 {
		t.Fatalf("FailureRate = %v", got)
	}
	if p.Stats.String() == "" {
		t.Error("empty stats string")
	}
}

// The capacity story behind Figure 10: a branch working set that fits the
// large table but thrashes the small one must show a clearly higher failure
// rate on the small table.
func TestGeometryCapacityEffect(t *testing.T) {
	run := func(g config.BHTGeometry, nBranches int) float64 {
		p := NewPredictor(g, 8)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 200000; i++ {
			pc := uint64(rng.Intn(nBranches))*4 + 0x10000
			// All branches biased-taken: perfectly predictable when resident.
			taken := rng.Float64() < 0.97
			p.Conditional(pc, taken, pc+400)
		}
		return p.Stats.FailureRate()
	}
	big := config.BHTGeometry{Entries: 16 << 10, Ways: 4, AccessCycles: 2}
	small := config.BHTGeometry{Entries: 4 << 10, Ways: 2, AccessCycles: 1}
	const branches = 6000 // fits 16K, thrashes 4K
	fBig, fSmall := run(big, branches), run(small, branches)
	if fSmall < fBig*1.4 {
		t.Errorf("small-table failure rate %.4f not ≫ big-table %.4f", fSmall, fBig)
	}
}

func BenchmarkPredictor(b *testing.B) {
	p := NewPredictor(config.BHTGeometry{Entries: 16 << 10, Ways: 4, AccessCycles: 2}, 8)
	rng := rand.New(rand.NewSource(1))
	pcs := make([]uint64, 1024)
	for i := range pcs {
		pcs[i] = uint64(rng.Intn(8000))*4 + 0x10000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := pcs[i%len(pcs)]
		p.Conditional(pc, i%3 != 0, pc+400)
	}
}

// TestCallReturnRoundTrip: the address Call pushes must be exactly what a
// matched Return pops — pc advanced by the architectural instruction size
// (a literal "pc + 4" here once drifted from isa.InstrBytes).
func TestCallReturnRoundTrip(t *testing.T) {
	p := NewPredictor(smallGeo(), 8)
	// Nested calls, then returns in LIFO order: none may mispredict.
	pcs := []uint64{0x1000, 0x2040, 0x3080, 0x40c0}
	for _, pc := range pcs {
		p.Call(pc)
	}
	for i := len(pcs) - 1; i >= 0; i-- {
		out := p.Return(pcs[i] + isa.InstrBytes)
		if out.Mispredict {
			t.Fatalf("matched return from call at %#x mispredicted", pcs[i])
		}
	}
	if p.Stats.ReturnMispredicts != 0 {
		t.Fatalf("ReturnMispredicts = %d after matched call/return pairs",
			p.Stats.ReturnMispredicts)
	}
	// A return to anywhere other than call PC + InstrBytes must mispredict.
	p.Call(0x5000)
	if out := p.Return(0x5000 + 2*isa.InstrBytes); !out.Mispredict {
		t.Fatal("mismatched return target predicted as correct")
	}
}

// TestRASOverflowWraps: pushing past capacity keeps the newest entries (the
// stack wraps), so the deepest frames mispredict but recent ones survive.
func TestRASOverflowWraps(t *testing.T) {
	const depth = 8
	p := NewPredictor(smallGeo(), depth)
	for i := 0; i < depth+3; i++ {
		p.Call(uint64(0x1000 + 0x100*i))
	}
	// The most recent depth calls predict correctly in LIFO order.
	for i := depth + 2; i >= 3; i-- {
		if out := p.Return(uint64(0x1000+0x100*i) + isa.InstrBytes); out.Mispredict {
			t.Fatalf("recent frame %d mispredicted after wrap", i)
		}
	}
}
