package bpred

// Counter-block arithmetic for snapshot-delta measurement (the sampling
// driver in internal/core). All Stats fields are monotonic counters.

// Sub returns the field-wise difference s - o.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		CondBranches:      s.CondBranches - o.CondBranches,
		CondMispredicts:   s.CondMispredicts - o.CondMispredicts,
		Calls:             s.Calls - o.Calls,
		Returns:           s.Returns - o.Returns,
		ReturnMispredicts: s.ReturnMispredicts - o.ReturnMispredicts,
		BHTHits:           s.BHTHits - o.BHTHits,
	}
}

// Add returns the field-wise sum s + o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		CondBranches:      s.CondBranches + o.CondBranches,
		CondMispredicts:   s.CondMispredicts + o.CondMispredicts,
		Calls:             s.Calls + o.Calls,
		Returns:           s.Returns + o.Returns,
		ReturnMispredicts: s.ReturnMispredicts + o.ReturnMispredicts,
		BHTHits:           s.BHTHits + o.BHTHits,
	}
}
