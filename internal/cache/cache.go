// Package cache implements the cache structures of the SPARC64 V
// performance model: set-associative LRU caches whose lines carry MOESI
// coherence states, miss-status holding registers for non-blocking
// operation, the 8x4-byte banking of the L1 operand cache, and the L2
// hardware prefetcher.
//
// The package provides mechanisms only; the memory-path policy (who probes
// whom, when lines move) lives in the core model and the coherence package.
package cache

import (
	"fmt"

	"sparc64v/internal/config"
)

// State is a MOESI coherence state. Uniprocessor runs use only I/E/M (plus
// S for clean lines below a shared point); the SMP snoop protocol uses all
// five.
type State uint8

// MOESI states.
const (
	// Invalid: the line is not present.
	Invalid State = iota
	// Shared: clean, possibly present in other caches.
	Shared
	// Exclusive: clean, guaranteed the only copy.
	Exclusive
	// Owned: dirty, possibly present (Shared) in other caches; this cache
	// must supply data and write back on eviction.
	Owned
	// Modified: dirty, guaranteed the only copy.
	Modified
)

// String names the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	}
	return "?"
}

// Dirty reports whether the state requires a writeback on eviction.
func (s State) Dirty() bool { return s == Owned || s == Modified }

// Writable reports whether a store may proceed without an upgrade.
func (s State) Writable() bool { return s == Exclusive || s == Modified }

// Line is one cache line's bookkeeping.
type Line struct {
	// Tag is the line address (addr >> lineShift) — the full line number,
	// not just the tag bits, which keeps back-probes trivial.
	Tag uint64
	// State is the coherence state; Invalid lines are free.
	State State
	// Prefetched marks lines brought in by the hardware prefetcher and not
	// yet demanded (for the Figure 17 pollution accounting).
	Prefetched bool
	lru        uint64
}

// Stats counts cache activity, split demand vs prefetch as the Figure 17
// methodology requires.
type Stats struct {
	// DemandAccesses and DemandMisses count requests from the workload.
	DemandAccesses, DemandMisses uint64
	// PrefetchAccesses and PrefetchMisses count prefetcher requests.
	PrefetchAccesses, PrefetchMisses uint64
	// Writebacks counts dirty evictions.
	Writebacks uint64
	// PrefetchedUseful counts prefetched lines that were later demanded.
	PrefetchedUseful uint64
	// PrefetchedEvictedUnused counts prefetched lines evicted untouched.
	PrefetchedEvictedUnused uint64
}

// DemandMissRate returns demand misses per demand access.
func (s *Stats) DemandMissRate() float64 {
	if s.DemandAccesses == 0 {
		return 0
	}
	return float64(s.DemandMisses) / float64(s.DemandAccesses)
}

// TotalMissRate returns all misses per all accesses (the paper's "with"
// bars, which include prefetch requests).
func (s *Stats) TotalMissRate() float64 {
	a := s.DemandAccesses + s.PrefetchAccesses
	if a == 0 {
		return 0
	}
	return float64(s.DemandMisses+s.PrefetchMisses) / float64(a)
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	geo       config.CacheGeometry
	sets      [][]Line
	setMask   uint64
	lineShift uint
	tick      uint64
	// VictimFilter, when set, is consulted during eviction: lines for
	// which it returns true are avoided if any other way is evictable.
	// An inclusive L2 uses it to protect lines with L1 copies (presence
	// bits), preventing inclusion-victim thrash of the hot L1 working set.
	VictimFilter func(lineAddr uint64) bool
	// Stats is exported for the reporting layer.
	Stats Stats
}

// New builds a cache with the given geometry.
func New(geo config.CacheGeometry) *Cache {
	if err := geo.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for 1<<shift < geo.LineBytes {
		shift++
	}
	nsets := geo.Sets()
	sets := make([][]Line, nsets)
	backing := make([]Line, nsets*geo.Ways)
	for i := range sets {
		sets[i], backing = backing[:geo.Ways:geo.Ways], backing[geo.Ways:]
	}
	return &Cache{geo: geo, sets: sets,
		setMask: faultedSetMask(uint64(nsets - 1)), lineShift: shift}
}

// Geometry returns the configured geometry.
func (c *Cache) Geometry() config.CacheGeometry { return c.geo }

// LineAddr returns the line number containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// LineShift returns log2(line size).
func (c *Cache) LineShift() uint { return c.lineShift }

func (c *Cache) set(lineAddr uint64) []Line { return c.sets[lineAddr&c.setMask] }

// Lookup finds the line containing addr without recording statistics.
// It returns nil when absent. The LRU stamp is refreshed when touch is set.
func (c *Cache) Lookup(addr uint64, touch bool) *Line {
	lineAddr := c.LineAddr(addr)
	set := c.set(lineAddr)
	for i := range set {
		l := &set[i]
		if l.State != Invalid && l.Tag == lineAddr {
			if touch {
				c.tick++
				l.lru = c.tick
			}
			return l
		}
	}
	return nil
}

// Access performs a demand lookup with statistics. It returns the line on
// a hit and nil on a miss. Prefetched lines are promoted to demanded.
func (c *Cache) Access(addr uint64) *Line {
	c.Stats.DemandAccesses++
	l := c.Lookup(addr, true)
	if l == nil {
		c.Stats.DemandMisses++
		return nil
	}
	if l.Prefetched {
		l.Prefetched = false
		c.Stats.PrefetchedUseful++
	}
	return l
}

// AccessPrefetch performs a prefetcher lookup with statistics: it reports
// whether the line is already present (no fetch needed).
func (c *Cache) AccessPrefetch(addr uint64) bool {
	c.Stats.PrefetchAccesses++
	if c.Lookup(addr, false) != nil {
		return true
	}
	c.Stats.PrefetchMisses++
	return false
}

// Eviction describes a line displaced by Fill.
type Eviction struct {
	// LineAddr is the displaced line number; Addr reconstructs a byte
	// address inside it.
	LineAddr uint64
	// State is the displaced line's coherence state (Dirty() means the
	// caller must issue a writeback).
	State State
	// Prefetched reports the displaced line was an unused prefetch.
	Prefetched bool
}

// Addr returns the base byte address of the evicted line.
func (e *Eviction) Addr(lineShift uint) uint64 { return e.LineAddr << lineShift }

// Fill installs the line containing addr in the given state, evicting the
// LRU way if the set is full. It returns the eviction, if any. Filling a
// line that is already present just updates its state.
func (c *Cache) Fill(addr uint64, st State, prefetched bool) (ev Eviction, evicted bool) {
	if st == Invalid {
		panic("cache: Fill with Invalid state")
	}
	lineAddr := c.LineAddr(addr)
	set := c.set(lineAddr)
	victim := -1
	for i := range set {
		l := &set[i]
		if l.State != Invalid && l.Tag == lineAddr {
			l.State = st
			if !prefetched {
				l.Prefetched = false
			}
			return Eviction{}, false
		}
		if l.State == Invalid && victim < 0 {
			victim = i
		}
	}
	if victim < 0 {
		victim = c.pickVictim(set)
		v := &set[victim]
		ev = Eviction{LineAddr: v.Tag, State: v.State, Prefetched: v.Prefetched}
		evicted = true
		if v.State.Dirty() {
			c.Stats.Writebacks++
		}
		if v.Prefetched {
			c.Stats.PrefetchedEvictedUnused++
		}
	}
	c.tick++
	set[victim] = Line{Tag: lineAddr, State: st, Prefetched: prefetched, lru: c.tick}
	return ev, evicted
}

// pickVictim selects the LRU way, preferring ways the VictimFilter does
// not protect.
func (c *Cache) pickVictim(set []Line) int {
	victim, protected := -1, -1
	for i := range set {
		if c.VictimFilter != nil && c.VictimFilter(set[i].Tag) {
			if protected < 0 || set[i].lru < set[protected].lru {
				protected = i
			}
			continue
		}
		if victim < 0 || set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if victim < 0 {
		return protected // every way protected: fall back to LRU
	}
	return victim
}

// Invalidate removes the line containing addr, returning its former state
// (Invalid when it was absent). Used for snoop invalidations and L1
// back-invalidation on L2 eviction.
func (c *Cache) Invalidate(addr uint64) State {
	l := c.Lookup(addr, false)
	if l == nil {
		return Invalid
	}
	st := l.State
	l.State = Invalid
	return st
}

// SetState downgrades/upgrades the line containing addr (snoop responses).
// It is a no-op when the line is absent.
func (c *Cache) SetState(addr uint64, st State) {
	if l := c.Lookup(addr, false); l != nil {
		l.State = st
	}
}

// Occupancy returns the fraction of lines in non-Invalid state (testing and
// warmup diagnostics).
func (c *Cache) Occupancy() float64 {
	total, valid := 0, 0
	for _, set := range c.sets {
		for i := range set {
			total++
			if set[i].State != Invalid {
				valid++
			}
		}
	}
	return float64(valid) / float64(total)
}

// CheckInvariants verifies structural invariants (tests): no duplicate tags
// within a set, all valid tags map to their set.
func (c *Cache) CheckInvariants() error {
	for si, set := range c.sets {
		seen := map[uint64]bool{}
		for i := range set {
			l := &set[i]
			if l.State == Invalid {
				continue
			}
			if seen[l.Tag] {
				return fmt.Errorf("cache: duplicate tag %#x in set %d", l.Tag, si)
			}
			seen[l.Tag] = true
			if l.Tag&c.setMask != uint64(si) {
				return fmt.Errorf("cache: tag %#x in wrong set %d", l.Tag, si)
			}
		}
	}
	return nil
}
