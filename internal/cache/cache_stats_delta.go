package cache

// Counter-block arithmetic for snapshot-delta measurement (the sampling
// driver in internal/core). All Stats fields are monotonic counters.

// Sub returns the field-wise difference s - o.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		DemandAccesses:          s.DemandAccesses - o.DemandAccesses,
		DemandMisses:            s.DemandMisses - o.DemandMisses,
		PrefetchAccesses:        s.PrefetchAccesses - o.PrefetchAccesses,
		PrefetchMisses:          s.PrefetchMisses - o.PrefetchMisses,
		Writebacks:              s.Writebacks - o.Writebacks,
		PrefetchedUseful:        s.PrefetchedUseful - o.PrefetchedUseful,
		PrefetchedEvictedUnused: s.PrefetchedEvictedUnused - o.PrefetchedEvictedUnused,
	}
}

// Add returns the field-wise sum s + o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		DemandAccesses:          s.DemandAccesses + o.DemandAccesses,
		DemandMisses:            s.DemandMisses + o.DemandMisses,
		PrefetchAccesses:        s.PrefetchAccesses + o.PrefetchAccesses,
		PrefetchMisses:          s.PrefetchMisses + o.PrefetchMisses,
		Writebacks:              s.Writebacks + o.Writebacks,
		PrefetchedUseful:        s.PrefetchedUseful + o.PrefetchedUseful,
		PrefetchedEvictedUnused: s.PrefetchedEvictedUnused + o.PrefetchedEvictedUnused,
	}
}
