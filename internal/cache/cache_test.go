package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparc64v/internal/config"
)

func geo(size, ways int) config.CacheGeometry {
	return config.CacheGeometry{SizeBytes: size, Ways: ways, LineBytes: 64, HitCycles: 3}
}

func TestStateHelpers(t *testing.T) {
	if Invalid.Dirty() || Shared.Dirty() || Exclusive.Dirty() {
		t.Error("clean state reported dirty")
	}
	if !Owned.Dirty() || !Modified.Dirty() {
		t.Error("dirty state reported clean")
	}
	if Shared.Writable() || Owned.Writable() {
		t.Error("non-writable state reported writable")
	}
	if !Exclusive.Writable() || !Modified.Writable() {
		t.Error("writable state reported non-writable")
	}
	names := map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Owned: "O", Modified: "M"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q", s, s.String())
		}
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := New(geo(4096, 2)) // 32 sets
	if l := c.Access(0x1000); l != nil {
		t.Fatal("cold access hit")
	}
	c.Fill(0x1000, Exclusive, false)
	l := c.Access(0x1000)
	if l == nil || l.State != Exclusive {
		t.Fatalf("filled line not found: %+v", l)
	}
	// Same line, different offset.
	if c.Access(0x103f) == nil {
		t.Fatal("same-line access missed")
	}
	// Next line misses.
	if c.Access(0x1040) != nil {
		t.Fatal("adjacent line hit")
	}
	if c.Stats.DemandAccesses != 4 || c.Stats.DemandMisses != 2 {
		t.Fatalf("stats: %+v", c.Stats)
	}
	if c.Stats.DemandMissRate() != 0.5 {
		t.Fatalf("miss rate = %v", c.Stats.DemandMissRate())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(geo(2*64*2, 2)) // 2 sets, 2 ways
	nsets := uint64(2)
	stride := nsets * 64 // same-set stride
	a, b, d := uint64(0), stride, 2*stride
	c.Fill(a, Exclusive, false)
	c.Fill(b, Exclusive, false)
	c.Access(a) // refresh a
	ev, evicted := c.Fill(d, Exclusive, false)
	if !evicted || ev.LineAddr != c.LineAddr(b) {
		t.Fatalf("eviction = %+v (%v), want line of %#x", ev, evicted, b)
	}
	if c.Lookup(a, false) == nil || c.Lookup(d, false) == nil || c.Lookup(b, false) != nil {
		t.Fatal("LRU victim selection wrong")
	}
}

func TestDirtyEvictionCountsWriteback(t *testing.T) {
	c := New(geo(128, 1)) // 2 sets, direct mapped
	c.Fill(0, Modified, false)
	ev, evicted := c.Fill(128, Exclusive, false) // same set (2 sets * 64B)
	if !evicted || !ev.State.Dirty() {
		t.Fatalf("dirty eviction = %+v (%v)", ev, evicted)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats.Writebacks)
	}
	if ev.Addr(c.LineShift()) != 0 {
		t.Fatalf("evicted addr = %#x", ev.Addr(c.LineShift()))
	}
}

func TestFillExistingUpdatesState(t *testing.T) {
	c := New(geo(4096, 2))
	c.Fill(0x1000, Shared, false)
	_, evicted := c.Fill(0x1000, Modified, false)
	if evicted {
		t.Fatal("refill of present line evicted")
	}
	if l := c.Lookup(0x1000, false); l == nil || l.State != Modified {
		t.Fatalf("state not updated: %+v", l)
	}
}

func TestInvalidateAndSetState(t *testing.T) {
	c := New(geo(4096, 2))
	c.Fill(0x2000, Modified, false)
	if st := c.Invalidate(0x2000); st != Modified {
		t.Fatalf("Invalidate returned %v", st)
	}
	if st := c.Invalidate(0x2000); st != Invalid {
		t.Fatalf("double Invalidate returned %v", st)
	}
	c.Fill(0x3000, Exclusive, false)
	c.SetState(0x3000, Shared)
	if l := c.Lookup(0x3000, false); l.State != Shared {
		t.Fatalf("SetState failed: %+v", l)
	}
	c.SetState(0x9999000, Shared) // absent: no-op, no panic
}

func TestPrefetchAccounting(t *testing.T) {
	c := New(geo(4096, 2))
	if c.AccessPrefetch(0x1000) {
		t.Fatal("prefetch lookup hit empty cache")
	}
	c.Fill(0x1000, Exclusive, true)
	if !c.AccessPrefetch(0x1000) {
		t.Fatal("prefetch lookup missed present line")
	}
	// Demand access promotes the prefetched line.
	l := c.Access(0x1000)
	if l == nil || l.Prefetched {
		t.Fatalf("promotion failed: %+v", l)
	}
	if c.Stats.PrefetchedUseful != 1 {
		t.Fatalf("PrefetchedUseful = %d", c.Stats.PrefetchedUseful)
	}
	// An unused prefetched line evicted counts as pollution.
	c2 := New(geo(128, 1))
	c2.Fill(0, Exclusive, true)
	c2.Fill(128, Exclusive, false)
	if c2.Stats.PrefetchedEvictedUnused != 1 {
		t.Fatalf("PrefetchedEvictedUnused = %d", c2.Stats.PrefetchedEvictedUnused)
	}
	if c.Stats.TotalMissRate() == 0 {
		t.Error("TotalMissRate should count prefetch misses")
	}
}

func TestFillInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Fill(Invalid) did not panic")
		}
	}()
	New(geo(4096, 2)).Fill(0, Invalid, false)
}

// Property: after any random mix of fills/invalidates/accesses the
// structural invariants hold and occupancy never exceeds 1.
func TestInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(geo(8192, 4))
		states := []State{Shared, Exclusive, Owned, Modified}
		for i := 0; i < 3000; i++ {
			addr := uint64(rng.Intn(1 << 16))
			switch rng.Intn(4) {
			case 0:
				c.Fill(addr, states[rng.Intn(len(states))], rng.Intn(4) == 0)
			case 1:
				c.Access(addr)
			case 2:
				c.Invalidate(addr)
			case 3:
				c.SetState(addr, states[rng.Intn(len(states))])
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		occ := c.Occupancy()
		return occ >= 0 && occ <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Working-set behavior: a loop footprint inside capacity converges to ~zero
// misses; beyond capacity with a uniform random pattern it keeps missing.
func TestWorkingSetMissBehavior(t *testing.T) {
	c := New(geo(32<<10, 2))
	for pass := 0; pass < 10; pass++ {
		for a := uint64(0); a < 16<<10; a += 64 {
			if c.Access(a) == nil {
				c.Fill(a, Exclusive, false)
			}
		}
	}
	// After warmup the in-capacity loop must hit.
	before := c.Stats.DemandMisses
	for a := uint64(0); a < 16<<10; a += 64 {
		c.Access(a)
	}
	if c.Stats.DemandMisses != before {
		t.Errorf("in-capacity loop still missing: %d new misses",
			c.Stats.DemandMisses-before)
	}
	// Far-beyond-capacity random traffic misses nearly always.
	c2 := New(geo(32<<10, 2))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		a := uint64(rng.Intn(16 << 20))
		if c2.Access(a) == nil {
			c2.Fill(a, Exclusive, false)
		}
	}
	if mr := c2.Stats.DemandMissRate(); mr < 0.95 {
		t.Errorf("out-of-capacity miss rate %.3f too low", mr)
	}
}

// Direct-mapped caches must show conflict misses that associativity
// removes (the thrashing argument in section 4.3.3).
func TestAssociativityConflicts(t *testing.T) {
	run := func(ways int) float64 {
		c := New(config.CacheGeometry{SizeBytes: 8 << 10, Ways: ways, LineBytes: 64, HitCycles: 1})
		nsets := uint64(c.Geometry().Sets())
		// Two addresses mapping to the same set, alternating.
		a, b := uint64(0), nsets*64
		for i := 0; i < 1000; i++ {
			for _, addr := range []uint64{a, b} {
				if c.Access(addr) == nil {
					c.Fill(addr, Exclusive, false)
				}
			}
		}
		return c.Stats.DemandMissRate()
	}
	dm, assoc := run(1), run(2)
	if dm < 0.9 {
		t.Errorf("direct-mapped ping-pong miss rate %.3f, want ~1", dm)
	}
	if assoc > 0.05 {
		t.Errorf("2-way ping-pong miss rate %.3f, want ~0", assoc)
	}
}

func TestMSHRs(t *testing.T) {
	m := NewMSHRs(2)
	if m.Size() != 2 {
		t.Fatalf("Size = %d", m.Size())
	}
	if !m.Allocate(100, 50, 10) {
		t.Fatal("first Allocate failed")
	}
	if !m.Allocate(200, 60, 10) {
		t.Fatal("second Allocate failed")
	}
	// Full: third allocation at cycle 20 fails (both still in flight).
	if m.Allocate(300, 70, 20) {
		t.Fatal("Allocate succeeded with full MSHRs")
	}
	if m.FullStalls != 1 {
		t.Fatalf("FullStalls = %d", m.FullStalls)
	}
	// Secondary miss merges.
	if ready, ok := m.Pending(100, 20); !ok || ready != 50 {
		t.Fatalf("Pending = %d,%v", ready, ok)
	}
	if m.InFlight(20) != 2 {
		t.Fatalf("InFlight = %d", m.InFlight(20))
	}
	// After the first fill completes, allocation succeeds again.
	if !m.Allocate(300, 90, 55) {
		t.Fatal("Allocate failed after expiry")
	}
	if _, ok := m.Pending(100, 55); ok {
		t.Fatal("expired entry still pending")
	}
	if m.Allocations != 3 || m.Merges != 1 {
		t.Fatalf("counters: %+v", *m)
	}
}

func TestMSHRMinimumOne(t *testing.T) {
	m := NewMSHRs(0)
	if m.Size() != 1 {
		t.Fatalf("Size = %d", m.Size())
	}
}

func TestPrefetcherNextLine(t *testing.T) {
	p := NewPrefetcher(2, false, 16)
	got := p.OnMiss(100)
	if len(got) != 2 || got[0] != 101 || got[1] != 102 {
		t.Fatalf("OnMiss = %v", got)
	}
	if p.Triggers != 1 || p.Issued != 2 {
		t.Fatalf("stats: %+v", *p)
	}
}

func TestPrefetcherStride(t *testing.T) {
	p := NewPrefetcher(2, true, 16)
	// Establish a stride of 3 lines within one region.
	base := uint64(1 << 10) // line number; region = base>>6
	p.OnMiss(base)
	p.OnMiss(base + 3)
	got := p.OnMiss(base + 6) // stride 3 confirmed
	if len(got) != 2 || got[0] != base+9 || got[1] != base+12 {
		t.Fatalf("strided OnMiss = %v", got)
	}
}

func TestPrefetcherSequentialChain(t *testing.T) {
	// A chain access pattern (line+1 each miss) must be covered.
	p := NewPrefetcher(2, true, 64)
	base := uint64(4096)
	p.OnMiss(base)
	p.OnMiss(base + 1)
	got := p.OnMiss(base + 2)
	if len(got) == 0 || got[0] != base+3 {
		t.Fatalf("chain OnMiss = %v", got)
	}
}

func TestBank(t *testing.T) {
	// 8 banks of 4 bytes: addr 0 -> bank 0, addr 4 -> bank 1, addr 32 -> bank 0.
	if Bank(0, 8, 4) != 0 || Bank(4, 8, 4) != 1 || Bank(32, 8, 4) != 0 {
		t.Error("bank mapping wrong")
	}
	if Bank(123, 1, 4) != 0 {
		t.Error("single bank must map everything to 0")
	}
	if Bank(16, 8, 0) != Bank(16, 8, 4) {
		t.Error("zero bank width must default to 4")
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := New(geo(128<<10, 2))
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i%len(addrs)]
		if c.Access(a) == nil {
			c.Fill(a, Exclusive, false)
		}
	}
}

// Property: the cache's hit/miss decisions match a brute-force LRU
// reference model over arbitrary access sequences (no victim filter).
func TestLRUMatchesReferenceQuick(t *testing.T) {
	type refSet struct {
		order []uint64 // MRU first
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := config.CacheGeometry{SizeBytes: 4096, Ways: 4, LineBytes: 64, HitCycles: 1}
		c := New(g)
		nsets := uint64(g.Sets())
		ref := make([]refSet, nsets)
		for i := 0; i < 5000; i++ {
			addr := uint64(rng.Intn(1 << 14))
			line := addr >> 6
			set := &ref[line&(nsets-1)]
			// Reference lookup.
			refHit := false
			for j, l := range set.order {
				if l == line {
					refHit = true
					copy(set.order[1:j+1], set.order[:j])
					set.order[0] = line
					break
				}
			}
			got := c.Access(addr)
			if (got != nil) != refHit {
				t.Logf("seed %d access %d addr %#x: cache hit=%v ref hit=%v",
					seed, i, addr, got != nil, refHit)
				return false
			}
			if !refHit {
				c.Fill(addr, Exclusive, false)
				set.order = append([]uint64{line}, set.order...)
				if len(set.order) > g.Ways {
					set.order = set.order[:g.Ways]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
