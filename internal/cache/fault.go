package cache

// Deliberate fault injection for the metamorphic verification harness.
//
// The harness (internal/metamorph, cmd/verify -inject) proves it can catch
// real model bugs by planting one and demanding that at least one catalog
// check fails. The faults here are the classic cache-model bugs the
// paper's logic-simulator cross-check was designed to surface; they are
// compile-time-real but default-off, and nothing on the simulation hot
// path pays for them: a fault is sampled once in New and baked into the
// cache's indexing constants.
//
// Injection is process-global and not synchronized: set it before building
// any model (cmd/verify does so at startup; tests do so before running the
// catalog) and never mid-run.

// Fault selects an injected model bug.
type Fault uint8

const (
	// FaultNone disables injection (the default).
	FaultNone Fault = iota
	// FaultIndexBits drops the top set-index bit of every cache with at
	// least four sets — the "off-by-one in the index-bit count" bug: half
	// the sets become unreachable, so the cache behaves at half capacity
	// while reporting its configured geometry.
	FaultIndexBits
)

// String names the fault.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultIndexBits:
		return "l1index"
	}
	return "fault?"
}

// FaultByName resolves a -inject flag value ("" and "none" mean no fault).
func FaultByName(name string) (Fault, bool) {
	switch name {
	case "", "none":
		return FaultNone, true
	case "l1index":
		return FaultIndexBits, true
	}
	return FaultNone, false
}

// injected is the process-global fault, sampled by New.
var injected Fault

// InjectFault arms a fault for every cache built afterwards. Call with
// FaultNone to disarm. Not safe to call while simulations are running.
func InjectFault(f Fault) { injected = f }

// InjectedFault returns the currently armed fault.
func InjectedFault() Fault { return injected }

// faultedSetMask applies the armed fault to a cache's set-index mask.
func faultedSetMask(mask uint64) uint64 {
	if injected == FaultIndexBits && mask >= 3 {
		return mask >> 1
	}
	return mask
}
