package cache

// MSHRs model a non-blocking cache's miss-status holding registers: the
// bound on outstanding line misses. The timing model installs a missing
// line's state immediately at miss time (the hierarchy computes the fill
// cycle up front), so each MSHR entry carries the fill cycle; secondary
// misses to the same line merge onto the existing entry.
type MSHRs struct {
	entries []mshrEntry
	// Stats
	Allocations uint64
	Merges      uint64
	FullStalls  uint64
}

type mshrEntry struct {
	lineAddr uint64
	readyAt  uint64
	valid    bool
}

// NewMSHRs returns a file with n entries (n >= 1).
func NewMSHRs(n int) *MSHRs {
	if n < 1 {
		n = 1
	}
	return &MSHRs{entries: make([]mshrEntry, n)}
}

// expire frees entries whose fill completed at or before cycle.
func (m *MSHRs) expire(cycle uint64) {
	for i := range m.entries {
		if m.entries[i].valid && m.entries[i].readyAt <= cycle {
			m.entries[i].valid = false
		}
	}
}

// Pending returns the fill cycle of an outstanding miss on lineAddr, if
// one exists (a secondary miss merges onto it).
func (m *MSHRs) Pending(lineAddr uint64, cycle uint64) (readyAt uint64, ok bool) {
	for i := range m.entries {
		e := &m.entries[i]
		if e.valid && e.readyAt > cycle && e.lineAddr == lineAddr {
			m.Merges++
			return e.readyAt, true
		}
	}
	return 0, false
}

// CanAllocate reports whether an entry is free at cycle, without claiming
// it. Callers must check this before performing the (bus- and memory-
// billing) work that produces the fill time, so that a refused miss does
// not consume bandwidth.
func (m *MSHRs) CanAllocate(cycle uint64) bool {
	m.expire(cycle)
	for i := range m.entries {
		if !m.entries[i].valid {
			return true
		}
	}
	m.FullStalls++
	return false
}

// Allocate reserves an entry for a new outstanding miss that will fill at
// readyAt. It fails (returning false) when all entries are busy — the
// requester must retry, which is how MSHR pressure turns into stall time.
func (m *MSHRs) Allocate(lineAddr, readyAt, cycle uint64) bool {
	m.expire(cycle)
	for i := range m.entries {
		e := &m.entries[i]
		if !e.valid {
			*e = mshrEntry{lineAddr: lineAddr, readyAt: readyAt, valid: true}
			m.Allocations++
			return true
		}
	}
	m.FullStalls++
	return false
}

// InFlight returns the number of outstanding misses at cycle.
func (m *MSHRs) InFlight(cycle uint64) int {
	n := 0
	for i := range m.entries {
		if m.entries[i].valid && m.entries[i].readyAt > cycle {
			n++
		}
	}
	return n
}

// Size returns the configured entry count.
func (m *MSHRs) Size() int { return len(m.entries) }
