package cache

// Prefetcher implements the SPARC64 V L2 hardware prefetch (section 3.4):
// triggered by an L1 cache miss, it brings lines the workload is expected
// to demand soon into the L2. There is no prefetch buffer (the designers
// "decided against using a buffer that stores data from a fetched line
// temporarily") — prefetched lines go straight into the L2, where they
// compete for capacity (the pollution visible in Figure 17).
//
// The predictor is next-line prefetch plus a small stride table keyed by
// 4KB region, which captures both sequential streams and the "chain access
// pattern of memory addresses" (pointer chases laid out in order) the
// paper says the algorithm fits.
type Prefetcher struct {
	table   []pfEntry
	mask    uint64
	degree  int
	stride  bool
	scratch []uint64
	// Stats
	Triggers uint64
	Issued   uint64
}

type pfEntry struct {
	region   uint64
	lastLine uint64
	stride   int64
	valid    bool
}

// regionShift groups miss addresses into 4KB regions for stride detection.
const regionShift = 12

// NewPrefetcher builds a prefetcher issuing up to degree lines per trigger;
// stride enables the stride detector (next-line only otherwise). The table
// has entries slots (rounded down to a power of two).
func NewPrefetcher(degree int, stride bool, entries int) *Prefetcher {
	if degree < 1 {
		degree = 1
	}
	if entries < 1 {
		entries = 1
	}
	for entries&(entries-1) != 0 {
		entries &= entries - 1
	}
	return &Prefetcher{
		table:   make([]pfEntry, entries),
		mask:    uint64(entries - 1),
		degree:  degree,
		stride:  stride,
		scratch: make([]uint64, 0, degree),
	}
}

// OnMiss is called with the line address of an L1 demand miss; it returns
// the line addresses to prefetch into the L2. The returned slice is reused
// across calls.
func (p *Prefetcher) OnMiss(lineAddr uint64) []uint64 {
	p.Triggers++
	p.scratch = p.scratch[:0]
	step := int64(1)
	if p.stride {
		region := lineAddr >> (regionShift - 6)
		e := &p.table[region&p.mask]
		if e.valid && e.region == region {
			if d := int64(lineAddr) - int64(e.lastLine); d != 0 && d == e.stride {
				step = d // confirmed stride
			} else if d != 0 {
				e.stride = d
			}
			e.lastLine = lineAddr
		} else {
			*e = pfEntry{region: region, lastLine: lineAddr, stride: 1, valid: true}
		}
	}
	next := int64(lineAddr)
	for i := 0; i < p.degree; i++ {
		next += step
		if next <= 0 {
			break
		}
		p.scratch = append(p.scratch, uint64(next))
	}
	p.Issued += uint64(len(p.scratch))
	return p.scratch
}

// Bank returns the L1 operand cache bank an access maps to. The SPARC64 V
// L1D is organized as eight four-byte banks; two same-cycle requests to the
// same bank conflict and the younger retries (section 3.2).
func Bank(addr uint64, banks, bankBytes int) int {
	if banks <= 1 {
		return 0
	}
	if bankBytes < 1 {
		bankBytes = 4
	}
	return int(addr / uint64(bankBytes) % uint64(banks))
}
