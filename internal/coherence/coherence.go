// Package coherence implements the snooping MOESI protocol that keeps the
// per-chip L2 caches of an SMP consistent, together with the timing of the
// transfers it causes: snoop broadcasts on the system bus, cache-to-cache
// ("move-out") transfers between L2s, invalidations, and memory reads and
// writebacks.
//
// The paper's MP studies (TPC-C 16P in Figures 14/15) depend on exactly
// this machinery: "requests between L2 caches can be modeled for MP system
// performance models", and the two-level cache-hierarchy decision (section
// 3.3) is argued partly from the cost of move-out requests from other CPUs.
package coherence

import (
	"sparc64v/internal/cache"
	"sparc64v/internal/config"
	"sparc64v/internal/mem"
)

// ChipCache is the controller's view of one chip's cache hierarchy: the L2
// state plus the ability to back-invalidate (which the chip must propagate
// into its L1s to preserve inclusion).
type ChipCache interface {
	// Probe returns the L2 state of the line containing addr.
	Probe(addr uint64) cache.State
	// Downgrade sets the L2 line state after a snoop hit (no data motion
	// here; timing is the controller's business).
	Downgrade(addr uint64, st cache.State)
	// InvalidateLine removes the line from L2 and the L1s.
	InvalidateLine(addr uint64)
}

// Stats counts protocol activity.
type Stats struct {
	// MemoryReads counts line fetches served by DRAM.
	MemoryReads uint64
	// CacheTransfers counts lines supplied by another chip's L2 (move-out).
	CacheTransfers uint64
	// Invalidations counts lines invalidated in remote chips.
	Invalidations uint64
	// Upgrades counts write-permission upgrades of Shared lines.
	Upgrades uint64
	// Writebacks counts dirty castouts written to memory.
	Writebacks uint64
}

// Controller is the snoop-bus protocol engine shared by all chips.
type Controller struct {
	chips  []ChipCache
	bus    *mem.Bus
	dram   *mem.DRAM
	p      config.MemParams
	timing bool // Fidelity.CoherenceTiming

	// Injected-fault state, sampled at construction (see fault.go).
	fault     Fault
	dropCount uint64

	// Stats is exported for reporting.
	Stats Stats
}

// NewController builds the engine. chips may be populated later via
// AttachChip (the chips need the controller to construct themselves).
func NewController(p config.MemParams, bus *mem.Bus, dram *mem.DRAM, coherenceTiming bool) *Controller {
	return &Controller{bus: bus, dram: dram, p: p, timing: coherenceTiming,
		fault: injected}
}

// AttachChip registers a chip and returns its identifier.
func (c *Controller) AttachChip(ch ChipCache) int {
	c.chips = append(c.chips, ch)
	return len(c.chips) - 1
}

// Chips returns the number of attached chips.
func (c *Controller) Chips() int { return len(c.chips) }

// lineBytes returns the coherence granule size.
func (c *Controller) lineBytes() uint64 { return uint64(c.p.L2.LineBytes) }

// FetchLine services an L2 miss by chip req for the line containing addr.
// exclusive requests write permission (store miss). It returns the cycle
// the line arrives at the requesting L2 and the MOESI state to install.
func (c *Controller) FetchLine(req int, addr uint64, exclusive bool, cycle uint64) (uint64, cache.State) {
	granted := c.bus.Request(cycle) // snoop broadcast
	var supplier ChipCache
	supplierState := cache.Invalid
	sharers := 0
	for i, ch := range c.chips {
		if i == req {
			continue
		}
		st := ch.Probe(addr)
		if st == cache.Invalid {
			continue
		}
		sharers++
		if st.Dirty() || st == cache.Exclusive {
			supplier = ch
			supplierState = st
		}
	}

	var ready uint64
	if supplier != nil {
		// Cache-to-cache transfer (move-out from the owning chip).
		c.Stats.CacheTransfers++
		c2c := uint64(c.p.CacheToCacheCycles)
		if !c.timing {
			c2c = c.dram.Latency() // low-fidelity: costed like memory
		}
		ready = c.bus.Transfer(granted+c2c, c.lineBytes())
	} else {
		c.Stats.MemoryReads++
		data := c.dram.Access(granted, addr>>6)
		ready = c.bus.Transfer(data, c.lineBytes())
	}

	if exclusive {
		// Invalidate every other copy; a dirty owner has supplied the data
		// and transfers ownership with it.
		for i, ch := range c.chips {
			if i == req {
				continue
			}
			if ch.Probe(addr) != cache.Invalid {
				if c.dropInvalidate() {
					continue
				}
				ch.InvalidateLine(addr)
				c.Stats.Invalidations++
			}
		}
		return ready, cache.Modified
	}

	// Read: downgrade the supplier, pick the requestor's state.
	if supplier != nil {
		switch supplierState {
		case cache.Modified:
			supplier.Downgrade(addr, cache.Owned)
		case cache.Exclusive:
			supplier.Downgrade(addr, cache.Shared)
		}
		return ready, cache.Shared
	}
	if sharers > 0 {
		return ready, cache.Shared
	}
	return ready, cache.Exclusive
}

// Upgrade obtains write permission for a line chip req already holds in a
// readable state: a snoop invalidation of all other copies. It returns the
// cycle permission is granted.
func (c *Controller) Upgrade(req int, addr uint64, cycle uint64) uint64 {
	c.Stats.Upgrades++
	granted := c.bus.Request(cycle)
	for i, ch := range c.chips {
		if i == req {
			continue
		}
		if ch.Probe(addr) != cache.Invalid {
			if c.dropInvalidate() {
				continue
			}
			ch.InvalidateLine(addr)
			c.Stats.Invalidations++
		}
	}
	return granted
}

// Writeback casts a dirty line out to memory. Fire-and-forget: the
// requesting chip does not wait, but the bus and memory bank occupancy are
// consumed, which is how castout traffic degrades loaded systems.
func (c *Controller) Writeback(addr uint64, cycle uint64) {
	c.Stats.Writebacks++
	granted := c.bus.Request(cycle)
	done := c.bus.Transfer(granted, c.lineBytes())
	c.dram.Access(done, addr>>6)
}

// CheckCoherence validates the single-writer/multi-reader invariant for a
// line across all chips (tests and debug): at most one chip in
// M/E, and if any chip is M or E no other chip holds the line; at most one
// Owner.
func (c *Controller) CheckCoherence(addr uint64) bool {
	owners, exclusives, holders := 0, 0, 0
	for _, ch := range c.chips {
		switch ch.Probe(addr) {
		case cache.Modified, cache.Exclusive:
			exclusives++
			holders++
		case cache.Owned:
			owners++
			holders++
		case cache.Shared:
			holders++
		}
	}
	if exclusives > 1 || owners > 1 {
		return false
	}
	if exclusives == 1 && holders > 1 {
		return false
	}
	return true
}
