package coherence

import (
	"math/rand"
	"testing"

	"sparc64v/internal/cache"
	"sparc64v/internal/config"
	"sparc64v/internal/mem"
)

// fakeChip is a minimal ChipCache backed by a real cache.
type fakeChip struct {
	l2          *cache.Cache
	invalidated []uint64
}

func (f *fakeChip) Probe(addr uint64) cache.State {
	if l := f.l2.Lookup(addr, false); l != nil {
		return l.State
	}
	return cache.Invalid
}
func (f *fakeChip) Downgrade(addr uint64, st cache.State) { f.l2.SetState(addr, st) }
func (f *fakeChip) InvalidateLine(addr uint64) {
	f.l2.Invalidate(addr)
	f.invalidated = append(f.invalidated, addr)
}

func newController(nchips int) (*Controller, []*fakeChip) {
	p := config.Base().Mem
	bus := mem.NewBus(p, true)
	dram := mem.NewDRAM(p, true)
	ctrl := NewController(p, bus, dram, true)
	chips := make([]*fakeChip, nchips)
	for i := range chips {
		chips[i] = &fakeChip{l2: cache.New(config.CacheGeometry{
			SizeBytes: 64 << 10, Ways: 4, LineBytes: 64, HitCycles: 10})}
		ctrl.AttachChip(chips[i])
	}
	return ctrl, chips
}

func TestUPFetchFromMemory(t *testing.T) {
	ctrl, _ := newController(1)
	ready, st := ctrl.FetchLine(0, 0x1000, false, 0)
	if st != cache.Exclusive {
		t.Fatalf("state = %v, want E", st)
	}
	if ready <= ctrl.dram.Latency() {
		t.Fatalf("ready = %d, must include bus + memory", ready)
	}
	if ctrl.Stats.MemoryReads != 1 || ctrl.Stats.CacheTransfers != 0 {
		t.Fatalf("stats = %+v", ctrl.Stats)
	}
}

func TestReadSharing(t *testing.T) {
	ctrl, chips := newController(2)
	// Chip 0 reads: gets E.
	_, st := ctrl.FetchLine(0, 0x1000, false, 0)
	chips[0].l2.Fill(0x1000, st, false)
	// Chip 1 reads the same line: supplier E -> both Shared, served by C2C.
	ready, st1 := ctrl.FetchLine(1, 0x1000, false, 100)
	if st1 != cache.Shared {
		t.Fatalf("requestor state = %v, want S", st1)
	}
	chips[1].l2.Fill(0x1000, st1, false)
	if got := chips[0].Probe(0x1000); got != cache.Shared {
		t.Fatalf("supplier state = %v, want S", got)
	}
	if ctrl.Stats.CacheTransfers != 1 {
		t.Fatalf("stats = %+v", ctrl.Stats)
	}
	// C2C must be much faster than memory in full-fidelity timing.
	memReady, _ := ctrl.FetchLine(0, 0x8000, false, 100)
	if ready-100 >= memReady-100 {
		t.Errorf("C2C latency %d not faster than memory %d", ready-100, memReady-100)
	}
	if !ctrl.CheckCoherence(0x1000) {
		t.Fatal("coherence violated")
	}
}

func TestDirtySupplierBecomesOwner(t *testing.T) {
	ctrl, chips := newController(2)
	chips[0].l2.Fill(0x2000, cache.Modified, false)
	_, st := ctrl.FetchLine(1, 0x2000, false, 0)
	if st != cache.Shared {
		t.Fatalf("requestor state = %v", st)
	}
	chips[1].l2.Fill(0x2000, st, false)
	if got := chips[0].Probe(0x2000); got != cache.Owned {
		t.Fatalf("supplier state = %v, want O", got)
	}
	if !ctrl.CheckCoherence(0x2000) {
		t.Fatal("coherence violated")
	}
}

func TestExclusiveFetchInvalidates(t *testing.T) {
	ctrl, chips := newController(4)
	for _, ch := range chips[1:] {
		ch.l2.Fill(0x3000, cache.Shared, false)
	}
	_, st := ctrl.FetchLine(0, 0x3000, true, 0)
	if st != cache.Modified {
		t.Fatalf("state = %v, want M", st)
	}
	chips[0].l2.Fill(0x3000, st, false)
	for i, ch := range chips[1:] {
		if got := ch.Probe(0x3000); got != cache.Invalid {
			t.Fatalf("chip %d state = %v, want I", i+1, got)
		}
	}
	if ctrl.Stats.Invalidations != 3 {
		t.Fatalf("Invalidations = %d", ctrl.Stats.Invalidations)
	}
	if !ctrl.CheckCoherence(0x3000) {
		t.Fatal("coherence violated")
	}
}

func TestUpgrade(t *testing.T) {
	ctrl, chips := newController(2)
	chips[0].l2.Fill(0x4000, cache.Shared, false)
	chips[1].l2.Fill(0x4000, cache.Shared, false)
	granted := ctrl.Upgrade(0, 0x4000, 50)
	if granted <= 50 {
		t.Fatalf("granted = %d", granted)
	}
	chips[0].l2.SetState(0x4000, cache.Modified)
	if chips[1].Probe(0x4000) != cache.Invalid {
		t.Fatal("remote copy survived upgrade")
	}
	if ctrl.Stats.Upgrades != 1 || ctrl.Stats.Invalidations != 1 {
		t.Fatalf("stats = %+v", ctrl.Stats)
	}
	if !ctrl.CheckCoherence(0x4000) {
		t.Fatal("coherence violated")
	}
}

func TestWriteback(t *testing.T) {
	ctrl, _ := newController(1)
	before := ctrl.dram.Accesses
	ctrl.Writeback(0x5000, 10)
	if ctrl.Stats.Writebacks != 1 || ctrl.dram.Accesses != before+1 {
		t.Fatal("writeback did not reach memory")
	}
}

func TestLowFidelityC2CTiming(t *testing.T) {
	p := config.Base().Mem
	bus := mem.NewBus(p, true)
	dram := mem.NewDRAM(p, true)
	ctrl := NewController(p, bus, dram, false) // coherence timing off
	a := &fakeChip{l2: cache.New(config.CacheGeometry{
		SizeBytes: 8 << 10, Ways: 2, LineBytes: 64, HitCycles: 10})}
	b := &fakeChip{l2: cache.New(config.CacheGeometry{
		SizeBytes: 8 << 10, Ways: 2, LineBytes: 64, HitCycles: 10})}
	ctrl.AttachChip(a)
	ctrl.AttachChip(b)
	a.l2.Fill(0x100, cache.Modified, false)
	c2cReady, _ := ctrl.FetchLine(1, 0x100, false, 0)
	memReady, _ := ctrl.FetchLine(1, 0x4100, false, 0)
	// Without coherence timing, C2C costs like memory (within queue noise).
	d := int64(c2cReady) - int64(memReady)
	if d < -40 || d > 40 {
		t.Errorf("low-fidelity C2C %d vs memory %d differ too much", c2cReady, memReady)
	}
}

// Property: any random sequence of reads/writes across chips preserves the
// MOESI single-writer invariant (as maintained through the controller).
func TestCoherenceInvariantRandom(t *testing.T) {
	ctrl, chips := newController(4)
	rng := rand.New(rand.NewSource(3))
	lines := []uint64{0x1000, 0x2000, 0x3000, 0x4000}
	cycle := uint64(0)
	for i := 0; i < 5000; i++ {
		cycle += uint64(rng.Intn(3))
		chip := rng.Intn(len(chips))
		addr := lines[rng.Intn(len(lines))]
		write := rng.Intn(3) == 0
		st := chips[chip].Probe(addr)
		switch {
		case st == cache.Invalid:
			_, newSt := ctrl.FetchLine(chip, addr, write, cycle)
			chips[chip].l2.Fill(addr, newSt, false)
		case write && !st.Writable():
			ctrl.Upgrade(chip, addr, cycle)
			chips[chip].l2.SetState(addr, cache.Modified)
		case write:
			chips[chip].l2.SetState(addr, cache.Modified)
		}
		if !ctrl.CheckCoherence(addr) {
			states := make([]cache.State, len(chips))
			for j := range chips {
				states[j] = chips[j].Probe(addr)
			}
			t.Fatalf("iteration %d: coherence violated on %#x: %v", i, addr, states)
		}
	}
}

func TestChipsCount(t *testing.T) {
	ctrl, _ := newController(3)
	if ctrl.Chips() != 3 {
		t.Fatalf("Chips = %d", ctrl.Chips())
	}
}

// Repeated reads of a dirty line keep being served by the owner without
// touching memory (the move-out economics of the two-level hierarchy).
func TestOwnerServesRepeatedReads(t *testing.T) {
	ctrl, chips := newController(4)
	chips[0].l2.Fill(0x9000, cache.Modified, false)
	memBefore := ctrl.Stats.MemoryReads
	for i, ch := range chips[1:] {
		_, st := ctrl.FetchLine(i+1, 0x9000, false, uint64(i*100))
		ch.l2.Fill(0x9000, st, false)
	}
	if ctrl.Stats.MemoryReads != memBefore {
		t.Fatalf("owner present but %d memory reads happened",
			ctrl.Stats.MemoryReads-memBefore)
	}
	if ctrl.Stats.CacheTransfers != 3 {
		t.Fatalf("CacheTransfers = %d", ctrl.Stats.CacheTransfers)
	}
	if got := chips[0].Probe(0x9000); got != cache.Owned {
		t.Fatalf("original owner state = %v, want O", got)
	}
	if !ctrl.CheckCoherence(0x9000) {
		t.Fatal("coherence violated")
	}
}

// A store by a sharer after wide read sharing invalidates every other copy
// exactly once.
func TestWriteAfterWideSharing(t *testing.T) {
	ctrl, chips := newController(8)
	for _, ch := range chips {
		ch.l2.Fill(0xa000, cache.Shared, false)
	}
	granted := ctrl.Upgrade(3, 0xa000, 0)
	chips[3].l2.SetState(0xa000, cache.Modified)
	if granted == 0 {
		t.Fatal("upgrade not granted")
	}
	if ctrl.Stats.Invalidations != 7 {
		t.Fatalf("Invalidations = %d, want 7", ctrl.Stats.Invalidations)
	}
	for i, ch := range chips {
		want := cache.Invalid
		if i == 3 {
			want = cache.Modified
		}
		if got := ch.Probe(0xa000); got != want {
			t.Fatalf("chip %d state %v, want %v", i, got, want)
		}
	}
}
