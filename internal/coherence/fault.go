package coherence

// Deliberate coherence-protocol fault injection for the metamorphic
// verification harness, mirroring internal/cache's fault machinery.
//
// The tso-outcomes check (internal/metamorph, driven by internal/litmus)
// proves it can catch real memory-ordering bugs by planting one here and
// demanding a forbidden litmus outcome surfaces. The fault models the
// classic SMP escape a logic-simulator cross-check exists to find: a snoop
// invalidation message lost on the bus, leaving a remote chip reading a
// stale line forever.
//
// Injection is process-global but sampled per Controller at construction
// (like cache.New samples its fault), so concurrently running systems each
// carry their own deterministic drop counter and parallel check fan-out
// stays race-free. Arm before building a model; never mid-run.

// Fault selects an injected protocol bug.
type Fault uint8

const (
	// FaultNone disables injection (the default).
	FaultNone Fault = iota
	// FaultDropInvalidate silently drops every other snoop invalidation
	// the controller would deliver (the 1st, 3rd, 5th, ... per
	// controller). Dropping only half is deliberate: the companion
	// message of an MP/IRIW pair still lands, so the stale copy is
	// *observably* stale — a reader sees the new flag but the old data,
	// exactly the forbidden outcome the litmus harness must flag.
	FaultDropInvalidate
)

// String names the fault.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultDropInvalidate:
		return "dropinval"
	}
	return "fault?"
}

// FaultByName resolves a -inject flag value ("" and "none" mean no fault).
func FaultByName(name string) (Fault, bool) {
	switch name {
	case "", "none":
		return FaultNone, true
	case "dropinval":
		return FaultDropInvalidate, true
	}
	return FaultNone, false
}

// injected is the process-global fault, sampled by NewController.
var injected Fault

// InjectFault arms a fault for every controller built afterwards. Call
// with FaultNone to disarm. Not safe to call while simulations run.
func InjectFault(f Fault) { injected = f }

// InjectedFault returns the currently armed fault.
func InjectedFault() Fault { return injected }

// dropInvalidate reports whether the controller's next snoop invalidation
// should be lost. The parity counter lives on the controller, so each
// simulated system drops deterministically regardless of what else runs
// in the process.
func (c *Controller) dropInvalidate() bool {
	if c.fault != FaultDropInvalidate {
		return false
	}
	c.dropCount++
	return c.dropCount&1 == 1
}
