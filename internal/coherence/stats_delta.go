package coherence

// Counter-block arithmetic for snapshot-delta measurement (the sampling
// driver in internal/core). All Stats fields are monotonic counters.

// Sub returns the field-wise difference s - o.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		MemoryReads:    s.MemoryReads - o.MemoryReads,
		CacheTransfers: s.CacheTransfers - o.CacheTransfers,
		Invalidations:  s.Invalidations - o.Invalidations,
		Upgrades:       s.Upgrades - o.Upgrades,
		Writebacks:     s.Writebacks - o.Writebacks,
	}
}

// Add returns the field-wise sum s + o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		MemoryReads:    s.MemoryReads + o.MemoryReads,
		CacheTransfers: s.CacheTransfers + o.CacheTransfers,
		Invalidations:  s.Invalidations + o.Invalidations,
		Upgrades:       s.Upgrades + o.Upgrades,
		Writebacks:     s.Writebacks + o.Writebacks,
	}
}
