// Package config defines the full parameter set of the performance model
// and the machine presets used in the paper's studies.
//
// The paper's model exposed ~500 parameters; this reproduction keeps the
// load-bearing ones: every number in Table 1, every alternative studied in
// section 4 (issue width, BHT geometry, L1/L2 geometry, prefetching,
// reservation-station topology), the perfect-ization switches used for the
// Figure 7 breakdown, and the model-fidelity knobs that implement the
// version ladder of Figure 19.
package config

import (
	"fmt"

	"sparc64v/internal/isa"
)

// CacheGeometry describes one cache.
type CacheGeometry struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the set associativity (1 = direct mapped).
	Ways int
	// LineBytes is the line size.
	LineBytes int
	// HitCycles is the access latency on a hit.
	HitCycles int
	// MSHRs is the number of miss-status holding registers (outstanding
	// line misses) for a non-blocking cache; 1 makes the cache blocking.
	MSHRs int
	// Banks is the number of interleaved banks (0 = unbanked). The SPARC64 V
	// L1 operand cache has eight 4-byte banks.
	Banks int
	// BankBytes is the width of one bank in bytes.
	BankBytes int
}

// Sets returns the number of sets implied by the geometry.
func (g CacheGeometry) Sets() int { return g.SizeBytes / (g.Ways * g.LineBytes) }

// Validate checks that the geometry is internally consistent.
func (g CacheGeometry) Validate() error {
	if g.SizeBytes <= 0 || g.Ways <= 0 || g.LineBytes <= 0 {
		return fmt.Errorf("config: non-positive cache geometry %+v", g)
	}
	if g.SizeBytes%(g.Ways*g.LineBytes) != 0 {
		return fmt.Errorf("config: size %d not divisible by ways*line (%d*%d)",
			g.SizeBytes, g.Ways, g.LineBytes)
	}
	if s := g.Sets(); s&(s-1) != 0 {
		return fmt.Errorf("config: set count %d not a power of two", s)
	}
	if g.LineBytes&(g.LineBytes-1) != 0 {
		return fmt.Errorf("config: line size %d not a power of two", g.LineBytes)
	}
	if g.HitCycles < 1 {
		return fmt.Errorf("config: hit latency %d < 1", g.HitCycles)
	}
	return nil
}

// BHTGeometry describes the branch history table.
type BHTGeometry struct {
	// Entries is the total number of entries (e.g. 16K).
	Entries int
	// Ways is the set associativity.
	Ways int
	// AccessCycles is the table read latency; a predicted-taken branch
	// inserts AccessCycles fetch bubbles before the target can be fetched
	// (the paper's "one bubble" for 4k-2w.1t vs "two bubbles" for 16k-4w.2t).
	AccessCycles int
}

// Validate checks the geometry.
func (g BHTGeometry) Validate() error {
	if g.Entries <= 0 || g.Ways <= 0 || g.Entries%g.Ways != 0 {
		return fmt.Errorf("config: bad BHT geometry %+v", g)
	}
	if s := g.Entries / g.Ways; s&(s-1) != 0 {
		return fmt.Errorf("config: BHT set count %d not a power of two", s)
	}
	if g.AccessCycles < 1 {
		return fmt.Errorf("config: BHT access latency %d < 1", g.AccessCycles)
	}
	return nil
}

// TLBGeometry describes one TLB.
type TLBGeometry struct {
	// Entries is the number of TLB entries.
	Entries int
	// PageBytes is the page size.
	PageBytes int
	// MissPenalty is the refill cost in cycles (trap-style software walk).
	MissPenalty int
}

// CPUParams configures the out-of-order core.
type CPUParams struct {
	// IssueWidth is the decode/issue width (4 in the base machine; the
	// Figure 8 study compares against 2).
	IssueWidth int
	// CommitWidth is the in-order retirement width.
	CommitWidth int
	// FetchBytes is the instruction fetch width in bytes (32 = 8 instrs).
	FetchBytes int
	// FetchPipeStages is the depth of the instruction fetch pipeline
	// (1 priority + 3 cache + 1 validate = 5 on the SPARC64 V).
	FetchPipeStages int
	// DecodeStages is the decode/issue pipeline depth.
	DecodeStages int
	// FetchBufEntries is the capacity of the fetch buffer, in instructions.
	FetchBufEntries int
	// WindowSize is the instruction window (64 on the SPARC64 V).
	WindowSize int
	// IntRenameRegs and FPRenameRegs bound in-flight renamed results.
	IntRenameRegs, FPRenameRegs int
	// RSEEntries and RSFEntries are per reservation station (8 each, two
	// stations). When OneRS is set the two stations are fused into a single
	// 2*entries station that can dispatch two operations per cycle
	// (the Figure 18 "1RS" alternative).
	RSEEntries, RSFEntries int
	// RSAEntries and RSBREntries are the address-generation and branch
	// reservation stations (10 each).
	RSAEntries, RSBREntries int
	// OneRS selects the fused reservation-station topology.
	OneRS bool
	// LoadQueueEntries and StoreQueueEntries size the memory queues (16/10).
	LoadQueueEntries, StoreQueueEntries int
	// IntUnits, FPUnits, AGUnits count execution units (2 each).
	IntUnits, FPUnits, AGUnits int
	// SpeculativeDispatch enables dispatching consumers of loads on the
	// predicted L1 hit timing, cancelling on a miss (section 3.1).
	SpeculativeDispatch bool
	// StoreForwarding lets a load take its data from an older, overlapping
	// store still in the store queue instead of the cache.
	StoreForwarding bool
	// StoreForwardCycles is the store-queue bypass latency.
	StoreForwardCycles int
	// DataForwarding enables bypass paths between all execution units; when
	// disabled results are only visible after the register-file write.
	DataForwarding bool
	// ForwardDelay is the extra delay to reach the register file when
	// DataForwarding is off.
	ForwardDelay int
	// MispredictRedirect is the front-end refill penalty, in cycles, after
	// a mispredicted branch resolves.
	MispredictRedirect int
	// Latencies are the per-class execution latencies.
	Latencies [isa.NumClasses]isa.LatencyClass
	// SpecialDetailed selects detailed modeling of special (serializing)
	// instructions; when false each Special instruction is charged
	// SpecialPenalty cycles and serializes the window. This is the model
	// fidelity change the paper credits for the v5 accuracy jump.
	SpecialDetailed bool
	// SpecialPenalty is the crude fixed penalty (cycles).
	SpecialPenalty int
}

// MemParams configures everything behind the L1 caches.
type MemParams struct {
	// L2 is the unified second-level cache geometry.
	L2 CacheGeometry
	// L2OffChip adds the chip-crossing penalty to every L2 access
	// (the paper estimates 10ns = 13 cycles at 1.3GHz).
	L2OffChip bool
	// OffChipPenalty is that chip-crossing penalty in cycles.
	OffChipPenalty int
	// DRAMCycles is the memory access latency (controller + DRAM).
	DRAMCycles int
	// DRAMBanks is the number of interleaved memory banks.
	DRAMBanks int
	// DRAMBankBusy is the per-access bank occupancy (cycle time).
	DRAMBankBusy int
	// BusBytesPerCycle is the system-bus data bandwidth.
	BusBytesPerCycle int
	// BusRequestCycles is the bus occupancy of a request/snoop message.
	BusRequestCycles int
	// CacheToCacheCycles is the extra latency of an L2-to-L2 (move-out)
	// transfer in an SMP.
	CacheToCacheCycles int
	// Prefetch enables the L2 hardware prefetcher (section 3.4).
	Prefetch bool
	// PrefetchDegree is how many lines ahead a trigger fetches.
	PrefetchDegree int
	// PrefetchStride enables the stride ("chain access") detector in
	// addition to next-line prefetch.
	PrefetchStride bool
	// PrefetchTableEntries sizes the stride detector table.
	PrefetchTableEntries int
}

// Fidelity holds the model-fidelity knobs that define the version ladder of
// the accuracy study (Figure 19). The final model (v8) has everything on.
type Fidelity struct {
	// FlatMemory replaces the detailed memory hierarchy with a fixed
	// latency for every L1 miss (the "rather rough memory system model"
	// the paper argues against).
	FlatMemory bool
	// FlatMemoryCycles is that fixed latency.
	FlatMemoryCycles int
	// BHTBubbles models taken-branch fetch bubbles from BHT access latency.
	BHTBubbles bool
	// BankConflicts models L1 operand cache bank conflicts.
	BankConflicts bool
	// TLBModeled enables TLB miss modeling.
	TLBModeled bool
	// BusContention enables queuing/occupancy on the bus and DRAM banks.
	BusContention bool
	// CoherenceTiming enables detailed MP coherence transfer timing
	// (cache-to-cache latency); without it remote state is still kept
	// correct but transfers cost the same as memory.
	CoherenceTiming bool
}

// FullFidelity returns the final-model fidelity (everything modeled).
func FullFidelity() Fidelity {
	return Fidelity{
		BHTBubbles:      true,
		BankConflicts:   true,
		TLBModeled:      true,
		BusContention:   true,
		CoherenceTiming: true,
	}
}

// Perfect holds the perfect-ization switches used to attribute stall time
// (Figure 7): each switch removes one source of stalls.
type Perfect struct {
	// L2 makes every L2 access hit.
	L2 bool
	// L1 makes every L1 (instruction and operand) access hit.
	L1 bool
	// TLB makes every TLB access hit.
	TLB bool
	// Branch makes every branch prediction correct with no fetch bubbles.
	Branch bool
}

// Config is the complete machine + model configuration.
type Config struct {
	// Name labels the configuration in reports.
	Name string
	// CPUs is the number of processors (1 = UP; the paper's MP study uses 16).
	CPUs int
	// CPU configures the core.
	CPU CPUParams
	// L1I and L1D configure the level-one caches.
	L1I, L1D CacheGeometry
	// BHT configures branch prediction.
	BHT BHTGeometry
	// RASEntries sizes the return-address stack.
	RASEntries int
	// ITLB and DTLB configure address translation.
	ITLB, DTLB TLBGeometry
	// Mem configures the L2 and everything behind it.
	Mem MemParams
	// Perfect holds the stall-attribution switches.
	Perfect Perfect
	// Fidelity holds the model-version knobs.
	Fidelity Fidelity
	// WarmupInsts is the number of committed instructions per CPU excluded
	// from statistics (cache warmup).
	WarmupInsts uint64
}

// Base returns the Table 1 machine: the SPARC64 V as shipped, with the
// final-fidelity model.
func Base() Config {
	return Config{
		Name: "sparc64v.base",
		CPUs: 1,
		CPU: CPUParams{
			IssueWidth:          4,
			CommitWidth:         4,
			FetchBytes:          32,
			FetchPipeStages:     5,
			DecodeStages:        1,
			FetchBufEntries:     24,
			WindowSize:          64,
			IntRenameRegs:       32,
			FPRenameRegs:        32,
			RSEEntries:          8,
			RSFEntries:          8,
			RSAEntries:          10,
			RSBREntries:         10,
			LoadQueueEntries:    16,
			StoreQueueEntries:   10,
			IntUnits:            2,
			FPUnits:             2,
			AGUnits:             2,
			SpeculativeDispatch: true,
			StoreForwarding:     true,
			StoreForwardCycles:  3,
			DataForwarding:      true,
			ForwardDelay:        2,
			MispredictRedirect:  2,
			Latencies:           isa.DefaultLatencies(),
			SpecialDetailed:     true,
			SpecialPenalty:      60,
		},
		L1I: CacheGeometry{SizeBytes: 128 << 10, Ways: 2, LineBytes: 64,
			HitCycles: 3, MSHRs: 4},
		L1D: CacheGeometry{SizeBytes: 128 << 10, Ways: 2, LineBytes: 64,
			HitCycles: 4, MSHRs: 8, Banks: 8, BankBytes: 4},
		BHT:        BHTGeometry{Entries: 16 << 10, Ways: 4, AccessCycles: 2},
		RASEntries: 8,
		ITLB:       TLBGeometry{Entries: 256, PageBytes: 8 << 10, MissPenalty: 40},
		DTLB:       TLBGeometry{Entries: 1024, PageBytes: 8 << 10, MissPenalty: 40},
		Mem: MemParams{
			L2: CacheGeometry{SizeBytes: 2 << 20, Ways: 4, LineBytes: 64,
				HitCycles: 21, MSHRs: 16},
			OffChipPenalty:       13, // 10ns at 1.3GHz
			DRAMCycles:           240,
			DRAMBanks:            16,
			DRAMBankBusy:         12,
			BusBytesPerCycle:     64,
			BusRequestCycles:     1,
			CacheToCacheCycles:   80,
			Prefetch:             true,
			PrefetchDegree:       1,
			PrefetchStride:       true,
			PrefetchTableEntries: 64,
		},
		Fidelity:    FullFidelity(),
		WarmupInsts: 20000,
	}
}

// Validate checks the whole configuration.
func (c *Config) Validate() error {
	if c.CPUs < 1 {
		return fmt.Errorf("config: CPUs = %d", c.CPUs)
	}
	if c.CPU.IssueWidth < 1 || c.CPU.CommitWidth < 1 || c.CPU.WindowSize < 1 {
		return fmt.Errorf("config: bad core widths %+v", c.CPU)
	}
	if c.CPU.IntUnits < 1 || c.CPU.FPUnits < 1 || c.CPU.AGUnits < 1 {
		return fmt.Errorf("config: need at least one unit of each kind")
	}
	if c.CPU.LoadQueueEntries < 1 || c.CPU.StoreQueueEntries < 1 {
		return fmt.Errorf("config: load/store queues must be non-empty")
	}
	for _, g := range []CacheGeometry{c.L1I, c.L1D, c.Mem.L2} {
		if err := g.Validate(); err != nil {
			return err
		}
	}
	if c.L1I.LineBytes != c.Mem.L2.LineBytes || c.L1D.LineBytes != c.Mem.L2.LineBytes {
		return fmt.Errorf("config: L1/L2 line sizes must match (inclusion)")
	}
	if err := c.BHT.Validate(); err != nil {
		return err
	}
	if c.Fidelity.FlatMemory && c.Fidelity.FlatMemoryCycles < 1 {
		return fmt.Errorf("config: flat memory needs a latency")
	}
	return nil
}

// ---- Variant builders (section 4 study alternatives). Each returns a
// modified copy so presets compose.

// WithName relabels the configuration.
func (c Config) WithName(name string) Config { c.Name = name; return c }

// WithCPUs sets the processor count (SMP model).
func (c Config) WithCPUs(n int) Config { c.CPUs = n; return c }

// WithIssueWidth sets decode/issue width (Figure 8: 4 vs 2).
func (c Config) WithIssueWidth(w int) Config {
	c.CPU.IssueWidth = w
	c.Name = fmt.Sprintf("%s.issue%d", c.Name, w)
	return c
}

// WithSmallBHT selects the 4K-entry 2-way 1-cycle table (Figure 9/10's
// "4k-2w.1t" alternative).
func (c Config) WithSmallBHT() Config {
	c.BHT = BHTGeometry{Entries: 4 << 10, Ways: 2, AccessCycles: 1}
	c.Name += ".bht4k-2w.1t"
	return c
}

// WithSmallL1 selects the 32KB direct-mapped 3-cycle L1 caches
// (Figure 11-13's "32k-1w.3c" alternative).
func (c Config) WithSmallL1() Config {
	c.L1I = CacheGeometry{SizeBytes: 32 << 10, Ways: 1, LineBytes: 64,
		HitCycles: 2, MSHRs: c.L1I.MSHRs}
	c.L1D = CacheGeometry{SizeBytes: 32 << 10, Ways: 1, LineBytes: 64,
		HitCycles: 3, MSHRs: c.L1D.MSHRs, Banks: 8, BankBytes: 4}
	c.Name += ".l1-32k-1w.3c"
	return c
}

// WithL1Capacity shrinks (or grows) both L1 caches to sizeBytes with the
// given associativity while keeping the base hit latencies, line size,
// banking and MSHRs — a pure capacity/associativity change, unlike
// WithSmallL1's latency-for-volume trade-off. The analytic calibration
// ladder and the trend checks use it to probe cache-size response in
// isolation.
func (c Config) WithL1Capacity(sizeBytes, ways int) Config {
	c.L1I.SizeBytes, c.L1I.Ways = sizeBytes, ways
	c.L1D.SizeBytes, c.L1D.Ways = sizeBytes, ways
	c.Name += fmt.Sprintf(".l1-%dk-%dw-iso", sizeBytes>>10, ways)
	return c
}

// WithOffChipL2 selects an off-chip 8MB L2 with the given associativity
// (Figure 14/15's "off.8m-2w" and "off.8m-1w" alternatives).
func (c Config) WithOffChipL2(ways int) Config {
	c.Mem.L2 = CacheGeometry{SizeBytes: 8 << 20, Ways: ways, LineBytes: 64,
		HitCycles: c.Mem.L2.HitCycles, MSHRs: c.Mem.L2.MSHRs}
	c.Mem.L2OffChip = true
	c.Name += fmt.Sprintf(".l2-off.8m-%dw", ways)
	return c
}

// WithoutPrefetch disables the hardware prefetcher (Figure 16/17 baseline).
func (c Config) WithoutPrefetch() Config {
	c.Mem.Prefetch = false
	c.Name += ".nopf"
	return c
}

// WithOneRS selects the fused single-reservation-station topology that can
// dispatch two operations per cycle (Figure 18's "1RS").
func (c Config) WithOneRS() Config {
	c.CPU.OneRS = true
	c.Name += ".1rs"
	return c
}

// WithPerfect applies perfect-ization switches.
func (c Config) WithPerfect(p Perfect) Config {
	c.Perfect = p
	return c
}

// WithFidelity applies a model-version fidelity set.
func (c Config) WithFidelity(f Fidelity, detailedSpecial bool) Config {
	c.Fidelity = f
	c.CPU.SpecialDetailed = detailedSpecial
	return c
}
