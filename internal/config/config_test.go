package config

import (
	"strings"
	"testing"
)

func TestBaseValidates(t *testing.T) {
	c := Base()
	if err := c.Validate(); err != nil {
		t.Fatalf("Base() invalid: %v", err)
	}
	// Table 1 numbers.
	if c.CPU.IssueWidth != 4 || c.CPU.WindowSize != 64 ||
		c.CPU.IntRenameRegs != 32 || c.CPU.FPRenameRegs != 32 {
		t.Errorf("core params diverge from Table 1: %+v", c.CPU)
	}
	if c.L1I.SizeBytes != 128<<10 || c.L1I.Ways != 2 {
		t.Errorf("L1I diverges from Table 1: %+v", c.L1I)
	}
	if c.L1D.Banks != 8 || c.L1D.BankBytes != 4 {
		t.Errorf("L1D banking diverges: %+v", c.L1D)
	}
	if c.Mem.L2.SizeBytes != 2<<20 || c.Mem.L2.Ways != 4 || c.Mem.L2OffChip {
		t.Errorf("L2 diverges from Table 1: %+v", c.Mem.L2)
	}
	if c.BHT.Entries != 16<<10 || c.BHT.Ways != 4 || c.BHT.AccessCycles != 2 {
		t.Errorf("BHT diverges from Table 1: %+v", c.BHT)
	}
	if c.CPU.LoadQueueEntries != 16 || c.CPU.StoreQueueEntries != 10 {
		t.Errorf("LSQ diverges from Table 1")
	}
	if c.CPU.RSAEntries != 10 || c.CPU.RSBREntries != 10 ||
		c.CPU.RSEEntries != 8 || c.CPU.RSFEntries != 8 {
		t.Errorf("reservation stations diverge from Table 1")
	}
}

func TestVariants(t *testing.T) {
	base := Base()

	v := base.WithIssueWidth(2)
	if v.CPU.IssueWidth != 2 || base.CPU.IssueWidth != 4 {
		t.Error("WithIssueWidth must not mutate the receiver")
	}
	if err := v.Validate(); err != nil {
		t.Errorf("issue2 invalid: %v", err)
	}

	v = base.WithSmallBHT()
	if v.BHT.Entries != 4<<10 || v.BHT.AccessCycles != 1 {
		t.Errorf("small BHT = %+v", v.BHT)
	}
	if err := v.Validate(); err != nil {
		t.Errorf("small BHT invalid: %v", err)
	}

	v = base.WithSmallL1()
	if v.L1I.SizeBytes != 32<<10 || v.L1I.Ways != 1 || v.L1D.HitCycles != 3 {
		t.Errorf("small L1 = %+v / %+v", v.L1I, v.L1D)
	}
	if err := v.Validate(); err != nil {
		t.Errorf("small L1 invalid: %v", err)
	}

	for _, ways := range []int{1, 2} {
		v = base.WithOffChipL2(ways)
		if !v.Mem.L2OffChip || v.Mem.L2.SizeBytes != 8<<20 || v.Mem.L2.Ways != ways {
			t.Errorf("off-chip L2 = %+v", v.Mem)
		}
		if err := v.Validate(); err != nil {
			t.Errorf("off-chip L2 invalid: %v", err)
		}
	}

	v = base.WithoutPrefetch()
	if v.Mem.Prefetch || !base.Mem.Prefetch {
		t.Error("WithoutPrefetch wrong")
	}
	v = base.WithOneRS()
	if !v.CPU.OneRS {
		t.Error("WithOneRS wrong")
	}
	v = base.WithCPUs(16).WithName("smp")
	if v.CPUs != 16 || v.Name != "smp" {
		t.Error("WithCPUs/WithName wrong")
	}
	if !strings.Contains(base.WithIssueWidth(2).Name, "issue2") {
		t.Error("variant naming missing")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.CPUs = 0 },
		func(c *Config) { c.CPU.IssueWidth = 0 },
		func(c *Config) { c.CPU.IntUnits = 0 },
		func(c *Config) { c.CPU.LoadQueueEntries = 0 },
		func(c *Config) { c.L1D.SizeBytes = 100 },        // not divisible
		func(c *Config) { c.L1D.LineBytes = 48 },         // non power of two
		func(c *Config) { c.Mem.L2.HitCycles = 0 },       // zero latency
		func(c *Config) { c.BHT.Ways = 3 },               // bad BHT
		func(c *Config) { c.L1I.LineBytes = 32 },         // line mismatch
		func(c *Config) { c.Fidelity.FlatMemory = true }, // no flat latency
	}
	for i, mutate := range cases {
		c := Base()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid config", i)
		}
	}
}

func TestCacheGeometrySets(t *testing.T) {
	g := CacheGeometry{SizeBytes: 128 << 10, Ways: 2, LineBytes: 64, HitCycles: 4}
	if got := g.Sets(); got != 1024 {
		t.Errorf("Sets = %d, want 1024", got)
	}
}

func TestFullFidelity(t *testing.T) {
	f := FullFidelity()
	if f.FlatMemory || !f.BHTBubbles || !f.BankConflicts || !f.TLBModeled ||
		!f.BusContention || !f.CoherenceTiming {
		t.Errorf("FullFidelity = %+v", f)
	}
}
