package config

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Content addressing for configurations. A simulation result is fully
// determined by (configuration, workload, seed, model version); hashing a
// canonical serialization of the configuration gives every run a stable
// identity that survives process restarts and struct-field reordering, so
// results can be cached and deduplicated (internal/runcache) the way the
// paper's team re-ran the same model thousands of times across parameter
// variants.

// CanonicalJSON marshals v and rewrites the result into canonical form:
// object keys sorted, no insignificant whitespace, numbers preserved
// exactly as encoding/json emitted them (shortest round-trip form). Two
// value-identical inputs always produce identical bytes, regardless of
// struct field declaration order or map iteration order.
func CanonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("config: canonical marshal: %w", err)
	}
	// Round-trip through an untyped tree: json.Marshal sorts map keys, and
	// json.Number keeps every numeric literal byte-exact.
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, fmt.Errorf("config: canonicalize: %w", err)
	}
	out, err := json.Marshal(tree)
	if err != nil {
		return nil, fmt.Errorf("config: canonicalize: %w", err)
	}
	return out, nil
}

// HashJSON returns the hex SHA-256 of v's canonical JSON.
func HashJSON(v any) (string, error) {
	b, err := CanonicalJSON(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Canonical returns the configuration's canonical JSON serialization.
func (c Config) Canonical() ([]byte, error) { return CanonicalJSON(c) }

// Hash returns the hex SHA-256 of the canonical serialization: the
// configuration's content address. Equal values hash equal; any
// single-field change hashes different; the value is stable across
// processes and hosts (see TestConfigHashGolden).
func (c Config) Hash() (string, error) { return HashJSON(c) }
