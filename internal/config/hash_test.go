package config

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestConfigHashEqualValues pins that hashing is value-based: two
// independently built, value-identical configurations hash equal.
func TestConfigHashEqualValues(t *testing.T) {
	a, b := Base(), Base()
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("value-identical configs hash differently: %s vs %s", ha, hb)
	}
}

// TestConfigHashMutations pins that every kind of field mutation — top
// level, nested struct, bool flip, array element, string — changes the
// hash.
func TestConfigHashMutations(t *testing.T) {
	base, err := Base().Hash()
	if err != nil {
		t.Fatal(err)
	}
	muts := []struct {
		name   string
		mutate func(*Config)
	}{
		{"Name", func(c *Config) { c.Name = "other" }},
		{"CPUs", func(c *Config) { c.CPUs = 2 }},
		{"CPU.IssueWidth", func(c *Config) { c.CPU.IssueWidth = 2 }},
		{"CPU.SpeculativeDispatch", func(c *Config) { c.CPU.SpeculativeDispatch = false }},
		{"CPU.Latencies[0].Cycles", func(c *Config) { c.CPU.Latencies[0].Cycles++ }},
		{"L1D.SizeBytes", func(c *Config) { c.L1D.SizeBytes = 32 << 10 }},
		{"BHT.Entries", func(c *Config) { c.BHT.Entries = 4 << 10 }},
		{"RASEntries", func(c *Config) { c.RASEntries++ }},
		{"DTLB.MissPenalty", func(c *Config) { c.DTLB.MissPenalty++ }},
		{"Mem.L2.Ways", func(c *Config) { c.Mem.L2.Ways = 8 }},
		{"Mem.Prefetch", func(c *Config) { c.Mem.Prefetch = false }},
		{"Perfect.L2", func(c *Config) { c.Perfect.L2 = true }},
		{"Fidelity.TLBModeled", func(c *Config) { c.Fidelity.TLBModeled = false }},
		{"WarmupInsts", func(c *Config) { c.WarmupInsts++ }},
	}
	seen := map[string]string{base: "base"}
	for _, m := range muts {
		c := Base()
		m.mutate(&c)
		h, err := c.Hash()
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("mutation %s collides with %s (hash %s)", m.name, prev, h)
		}
		seen[h] = m.name
	}
}

// goldenBaseHash is the content address of config.Base() computed once and
// pinned: it must be identical on every host, OS, and process run, or the
// run cache would silently re-simulate (or worse, cross-match) between
// machines. If a config field is deliberately added/changed, regenerate
// with: go test ./internal/config -run TestConfigHashGolden -v
const goldenBaseHash = "53c4167d3a09081c6d832a00bed9270908ad9a9b2f4bafbe6405cb3d1791afe0"

// TestConfigHashGolden pins cross-process stability.
func TestConfigHashGolden(t *testing.T) {
	h, err := Base().Hash()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("config.Base() hash: %s", h)
	if h != goldenBaseHash {
		t.Fatalf("config.Base() hash drifted: got %s want %s\n"+
			"(if the Config schema changed intentionally, update goldenBaseHash "+
			"AND bump core.ModelVersion so stale cache entries are not reused)", h, goldenBaseHash)
	}
}

// TestCanonicalJSONDeterministic pins that canonicalization is stable under
// repeated application and produces identical bytes for identical values.
func TestCanonicalJSONDeterministic(t *testing.T) {
	a, err := Base().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Base().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("canonical JSON differs between identical values")
	}
	// Canonical form must round-trip to itself (idempotence).
	again, err := CanonicalJSON(json.RawMessage(a))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, again) {
		t.Fatalf("canonicalization not idempotent:\n%s\nvs\n%s", a, again)
	}
}
