package config

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON persistence for configurations. The paper's model carried ~500
// parameters in configuration files so studies were reproducible from
// artifacts; this is the same facility: dump a preset, edit, re-run.

// WriteJSON serializes the configuration as indented JSON.
func (c Config) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// FromJSON reads a configuration. The input is validated; unknown fields
// are rejected so a typo cannot silently leave a parameter at its zero
// value.
func FromJSON(r io.Reader) (Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// OverlayJSON reads a *partial* configuration on top of base: fields
// present in the JSON replace the base values, everything else keeps the
// preset. This is how study variants are expressed as small files.
func OverlayJSON(base Config, r io.Reader) (Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	c := base
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}
