package config

import (
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	base := Base().WithSmallBHT().WithCPUs(4)
	var sb strings.Builder
	if err := base.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.CPUs != 4 || back.BHT.Entries != 4<<10 || back.Name != base.Name {
		t.Fatalf("round trip diverged: %+v", back)
	}
	if back.CPU.Latencies != base.CPU.Latencies {
		t.Fatal("latencies diverged")
	}
}

func TestFromJSONRejectsInvalid(t *testing.T) {
	// Unknown fields fail loudly.
	if _, err := FromJSON(strings.NewReader(`{"Bogus": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	// Structurally valid JSON that fails validation fails too.
	var sb strings.Builder
	bad := Base()
	bad.CPUs = 0
	bad.WriteJSON(&sb)
	if _, err := FromJSON(strings.NewReader(sb.String())); err == nil {
		t.Fatal("invalid config accepted")
	}
	// Not JSON at all.
	if _, err := FromJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestOverlayJSON(t *testing.T) {
	// A partial overlay changes only what it names.
	c, err := OverlayJSON(Base(), strings.NewReader(`{"CPUs": 8}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.CPUs != 8 {
		t.Fatalf("CPUs = %d", c.CPUs)
	}
	if c.CPU.IssueWidth != 4 || c.Mem.L2.SizeBytes != 2<<20 {
		t.Fatal("overlay clobbered unrelated fields")
	}
	// An overlay that breaks validation is rejected.
	if _, err := OverlayJSON(Base(), strings.NewReader(`{"CPUs": -1}`)); err == nil {
		t.Fatal("invalid overlay accepted")
	}
}
