package config

import (
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	base := Base().WithSmallBHT().WithCPUs(4)
	var sb strings.Builder
	if err := base.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.CPUs != 4 || back.BHT.Entries != 4<<10 || back.Name != base.Name {
		t.Fatalf("round trip diverged: %+v", back)
	}
	if back.CPU.Latencies != base.CPU.Latencies {
		t.Fatal("latencies diverged")
	}
}

func TestFromJSONRejectsInvalid(t *testing.T) {
	// Unknown fields fail loudly.
	if _, err := FromJSON(strings.NewReader(`{"Bogus": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	// Structurally valid JSON that fails validation fails too.
	var sb strings.Builder
	bad := Base()
	bad.CPUs = 0
	bad.WriteJSON(&sb)
	if _, err := FromJSON(strings.NewReader(sb.String())); err == nil {
		t.Fatal("invalid config accepted")
	}
	// Not JSON at all.
	if _, err := FromJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestOverlayJSON(t *testing.T) {
	// A partial overlay changes only what it names.
	c, err := OverlayJSON(Base(), strings.NewReader(`{"CPUs": 8}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.CPUs != 8 {
		t.Fatalf("CPUs = %d", c.CPUs)
	}
	if c.CPU.IssueWidth != 4 || c.Mem.L2.SizeBytes != 2<<20 {
		t.Fatal("overlay clobbered unrelated fields")
	}
	// An overlay that breaks validation is rejected.
	if _, err := OverlayJSON(Base(), strings.NewReader(`{"CPUs": -1}`)); err == nil {
		t.Fatal("invalid overlay accepted")
	}
}

// TestOverlayJSONRejectsBadGeometry table-tests the overlay validator on
// the malformed-geometry inputs the experiment service must turn into 400s:
// every case decodes as JSON but violates a structural constraint, so the
// error has to come from Validate, not the decoder.
func TestOverlayJSONRejectsBadGeometry(t *testing.T) {
	for _, tc := range []struct {
		name, overlay string
	}{
		{"unknown field", `{"NoSuchKnob": 1}`},
		{"unknown nested field", `{"L1D": {"SizzleBytes": 65536}}`},
		{"sets not a power of two", `{"L1D": {"SizeBytes": 98304, "Ways": 2, "LineBytes": 64, "HitCycles": 4}}`},
		{"size not divisible", `{"L1D": {"SizeBytes": 100000, "Ways": 2, "LineBytes": 64, "HitCycles": 4}}`},
		{"line size not a power of two", `{"L1D": {"SizeBytes": 131072, "Ways": 2, "LineBytes": 48, "HitCycles": 4}}`},
		{"zero hit latency", `{"L1D": {"SizeBytes": 131072, "Ways": 2, "LineBytes": 64, "HitCycles": 0}}`},
		{"negative ways", `{"Mem": {"L2": {"SizeBytes": 2097152, "Ways": -4, "LineBytes": 64, "HitCycles": 21}}}`},
		{"L1/L2 line size mismatch", `{"L1D": {"SizeBytes": 131072, "Ways": 2, "LineBytes": 32, "HitCycles": 4}}`},
		{"BHT sets not a power of two", `{"BHT": {"Entries": 12288, "Ways": 2, "AccessCycles": 1}}`},
		{"zero issue width", `{"CPU": {"IssueWidth": 0}}`},
		{"empty load queue", `{"CPU": {"LoadQueueEntries": 0}}`},
	} {
		if _, err := OverlayJSON(Base(), strings.NewReader(tc.overlay)); err == nil {
			t.Errorf("%s: overlay %s accepted", tc.name, tc.overlay)
		}
	}
	// The valid neighbors of the rejected cases still pass, so the table
	// is testing the constraint, not the decoder.
	for _, tc := range []struct {
		name, overlay string
	}{
		{"valid L1D shrink", `{"L1D": {"SizeBytes": 65536, "Ways": 2, "LineBytes": 64, "HitCycles": 4}}`},
		{"valid off-chip L2", `{"Mem": {"L2OffChip": true}}`},
	} {
		if _, err := OverlayJSON(Base(), strings.NewReader(tc.overlay)); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}
