package config

// Sampled-simulation parameters (SMARTS-style systematic sampling).
//
// A sampled run splits the trace into fixed-size intervals. Each interval
// is mostly fast-forwarded through a functional executor that keeps the
// caches, TLBs and branch predictor warm at ~1 IPC cost; only the tail of
// the interval runs on the detailed out-of-order model — first a warm-up
// window whose statistics are discarded (it re-establishes pipeline and
// queue state the functional mode does not track), then a measurement
// window that contributes to the reported statistics. Whole-run CPI is the
// ratio estimator over all measurement windows; the per-window CPI spread
// yields a confidence bound.
//
// The type lives in package config so it participates in canonical-JSON
// hashing: a sampled run and a full run of the same machine are different
// content addresses (see runcache.Key.Sampling).

import (
	"fmt"
	"strconv"
	"strings"
)

// Sampling configures sampled simulation. The zero value means "disabled":
// every instruction runs on the detailed model.
type Sampling struct {
	// IntervalInsts is the sampling period per CPU in instructions: one
	// measurement is taken every IntervalInsts instructions.
	IntervalInsts int `json:"interval_insts"`
	// WarmupInsts is the detailed warm-up window preceding each
	// measurement window. Its statistics are discarded.
	WarmupInsts int `json:"warmup_insts"`
	// MeasureInsts is the detailed measurement window per interval.
	MeasureInsts int `json:"measure_insts"`
	// OffsetInsts is fast-forwarded once before the first interval,
	// phase-shifting the sampling grid (SMARTS' random offset; here it is
	// explicit so runs stay reproducible).
	OffsetInsts int `json:"offset_insts"`
}

// Enabled reports whether sampling is in effect.
func (s Sampling) Enabled() bool { return s.IntervalInsts > 0 }

// Validate checks the window arithmetic. The zero value is valid
// (sampling disabled).
func (s Sampling) Validate() error {
	if !s.Enabled() {
		if s != (Sampling{}) {
			return fmt.Errorf("config: sampling windows set but interval is 0")
		}
		return nil
	}
	if s.MeasureInsts <= 0 {
		return fmt.Errorf("config: sampling measure window must be positive, got %d", s.MeasureInsts)
	}
	if s.WarmupInsts < 0 || s.OffsetInsts < 0 {
		return fmt.Errorf("config: sampling warmup/offset must be non-negative")
	}
	if s.WarmupInsts+s.MeasureInsts > s.IntervalInsts {
		return fmt.Errorf("config: sampling warmup+measure (%d) exceeds interval (%d)",
			s.WarmupInsts+s.MeasureInsts, s.IntervalInsts)
	}
	return nil
}

// DetailedFraction returns the fraction of instructions simulated on the
// detailed model (warm-up + measurement over the interval).
func (s Sampling) DetailedFraction() float64 {
	if !s.Enabled() {
		return 1
	}
	return float64(s.WarmupInsts+s.MeasureInsts) / float64(s.IntervalInsts)
}

// String renders the spec in the form ParseSampling accepts.
func (s Sampling) String() string {
	if !s.Enabled() {
		return "off"
	}
	str := fmt.Sprintf("interval=%d,warmup=%d,measure=%d", s.IntervalInsts, s.WarmupInsts, s.MeasureInsts)
	if s.OffsetInsts != 0 {
		str += fmt.Sprintf(",offset=%d", s.OffsetInsts)
	}
	return str
}

// DefaultSampling returns the stock sampling schedule for a trace of n
// instructions per CPU: intervals sized for ~10 measurement windows with a
// 2k-instruction detailed warm-up and a measurement window of interval/20,
// clamped so the window arithmetic stays valid on short traces.
func DefaultSampling(n int) Sampling {
	const (
		minInterval = 10_000
		warmup      = 2_000
	)
	interval := n / 10
	if interval < minInterval {
		interval = minInterval
	}
	measure := interval / 20
	if measure < 1_000 {
		measure = 1_000
	}
	s := Sampling{IntervalInsts: interval, WarmupInsts: warmup, MeasureInsts: measure}
	if s.WarmupInsts+s.MeasureInsts > s.IntervalInsts {
		s.WarmupInsts = s.IntervalInsts / 4
		s.MeasureInsts = s.IntervalInsts / 4
	}
	return s
}

// ParseSampling parses a -sample flag value:
//
//	""            sampling disabled (zero value)
//	"off"         sampling disabled
//	"auto"        DefaultSampling for the run's instruction count
//	"interval=100000,warmup=2000,measure=5000[,offset=N]"
//
// autoInsts supplies the trace length "auto" derives its schedule from.
func ParseSampling(spec string, autoInsts int) (Sampling, error) {
	switch strings.TrimSpace(spec) {
	case "", "off":
		return Sampling{}, nil
	case "auto", "on":
		return DefaultSampling(autoInsts), nil
	}
	var s Sampling
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Sampling{}, fmt.Errorf("config: sampling spec %q: want key=value, got %q", spec, kv)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return Sampling{}, fmt.Errorf("config: sampling spec %q: %s=%q is not an integer", spec, k, v)
		}
		switch k {
		case "interval":
			s.IntervalInsts = n
		case "warmup":
			s.WarmupInsts = n
		case "measure":
			s.MeasureInsts = n
		case "offset":
			s.OffsetInsts = n
		default:
			return Sampling{}, fmt.Errorf("config: sampling spec %q: unknown key %q", spec, k)
		}
	}
	if err := s.Validate(); err != nil {
		return Sampling{}, err
	}
	return s, nil
}
