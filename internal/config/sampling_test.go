package config

import "testing"

func TestSamplingValidate(t *testing.T) {
	cases := []struct {
		s  Sampling
		ok bool
	}{
		{Sampling{}, true}, // zero value: disabled
		{Sampling{IntervalInsts: 100_000, WarmupInsts: 2_000, MeasureInsts: 5_000}, true},
		{Sampling{IntervalInsts: 100, WarmupInsts: 60, MeasureInsts: 50}, false}, // warm+measure > interval
		{Sampling{IntervalInsts: 100, MeasureInsts: 0}, false},                   // no measurement
		{Sampling{IntervalInsts: 100, MeasureInsts: 50, WarmupInsts: -1}, false},
		{Sampling{MeasureInsts: 50}, false},                   // windows set but interval 0
		{Sampling{IntervalInsts: 10, MeasureInsts: 10}, true}, // zero-length fast-forward
	}
	for _, c := range cases {
		if err := c.s.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.s, err, c.ok)
		}
	}
}

func TestParseSampling(t *testing.T) {
	s, err := ParseSampling("interval=100000,warmup=2000,measure=5000,offset=7", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := Sampling{IntervalInsts: 100_000, WarmupInsts: 2_000, MeasureInsts: 5_000, OffsetInsts: 7}
	if s != want {
		t.Errorf("parsed %+v, want %+v", s, want)
	}
	if round, err := ParseSampling(s.String(), 0); err != nil || round != s {
		t.Errorf("String round trip: %+v, %v", round, err)
	}

	for _, spec := range []string{"", "off"} {
		if s, err := ParseSampling(spec, 400_000); err != nil || s.Enabled() {
			t.Errorf("ParseSampling(%q) = %+v, %v", spec, s, err)
		}
	}
	auto, err := ParseSampling("auto", 400_000)
	if err != nil || !auto.Enabled() {
		t.Fatalf("auto: %+v, %v", auto, err)
	}
	if err := auto.Validate(); err != nil {
		t.Errorf("auto schedule invalid: %v", err)
	}
	// Auto schedules stay valid even for tiny traces.
	tiny, err := ParseSampling("auto", 500)
	if err != nil {
		t.Fatal(err)
	}
	if err := tiny.Validate(); err != nil {
		t.Errorf("tiny auto schedule invalid: %v (%+v)", err, tiny)
	}

	for _, bad := range []string{"interval=x", "nope=3", "interval=100,warmup=60,measure=50", "interval"} {
		if _, err := ParseSampling(bad, 0); err == nil {
			t.Errorf("ParseSampling(%q) accepted", bad)
		}
	}
}

func TestSamplingDetailedFraction(t *testing.T) {
	s := Sampling{IntervalInsts: 100_000, WarmupInsts: 2_000, MeasureInsts: 3_000}
	if f := s.DetailedFraction(); f != 0.05 {
		t.Errorf("DetailedFraction = %v", f)
	}
	if f := (Sampling{}).DetailedFraction(); f != 1 {
		t.Errorf("disabled DetailedFraction = %v", f)
	}
}
