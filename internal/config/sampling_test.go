package config

import (
	"strings"
	"testing"
)

func TestSamplingValidate(t *testing.T) {
	cases := []struct {
		s  Sampling
		ok bool
	}{
		{Sampling{}, true}, // zero value: disabled
		{Sampling{IntervalInsts: 100_000, WarmupInsts: 2_000, MeasureInsts: 5_000}, true},
		{Sampling{IntervalInsts: 100, WarmupInsts: 60, MeasureInsts: 50}, false}, // warm+measure > interval
		{Sampling{IntervalInsts: 100, MeasureInsts: 0}, false},                   // no measurement
		{Sampling{IntervalInsts: 100, MeasureInsts: 50, WarmupInsts: -1}, false},
		{Sampling{MeasureInsts: 50}, false},                   // windows set but interval 0
		{Sampling{IntervalInsts: 10, MeasureInsts: 10}, true}, // zero-length fast-forward
	}
	for _, c := range cases {
		if err := c.s.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.s, err, c.ok)
		}
	}
}

func TestParseSampling(t *testing.T) {
	s, err := ParseSampling("interval=100000,warmup=2000,measure=5000,offset=7", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := Sampling{IntervalInsts: 100_000, WarmupInsts: 2_000, MeasureInsts: 5_000, OffsetInsts: 7}
	if s != want {
		t.Errorf("parsed %+v, want %+v", s, want)
	}
	if round, err := ParseSampling(s.String(), 0); err != nil || round != s {
		t.Errorf("String round trip: %+v, %v", round, err)
	}

	for _, spec := range []string{"", "off"} {
		if s, err := ParseSampling(spec, 400_000); err != nil || s.Enabled() {
			t.Errorf("ParseSampling(%q) = %+v, %v", spec, s, err)
		}
	}
	auto, err := ParseSampling("auto", 400_000)
	if err != nil || !auto.Enabled() {
		t.Fatalf("auto: %+v, %v", auto, err)
	}
	if err := auto.Validate(); err != nil {
		t.Errorf("auto schedule invalid: %v", err)
	}
	// Auto schedules stay valid even for tiny traces.
	tiny, err := ParseSampling("auto", 500)
	if err != nil {
		t.Fatal(err)
	}
	if err := tiny.Validate(); err != nil {
		t.Errorf("tiny auto schedule invalid: %v (%+v)", err, tiny)
	}

	for _, bad := range []string{"interval=x", "nope=3", "interval=100,warmup=60,measure=50", "interval"} {
		if _, err := ParseSampling(bad, 0); err == nil {
			t.Errorf("ParseSampling(%q) accepted", bad)
		}
	}
}

// TestSamplingValidateRejectsOverlap (regression): a schedule whose
// warm-up + measurement exceeds the interval has a negative fast-forward
// gap — the sampled driver would never converge on its schedule. The
// rejection must happen at Validate (so every entry point — flag parsing,
// HTTP overlays, direct RunOptions — fails before simulation) and the
// message must carry the offending arithmetic.
func TestSamplingValidateRejectsOverlap(t *testing.T) {
	s := Sampling{IntervalInsts: 10_000, WarmupInsts: 6_000, MeasureInsts: 5_000}
	err := s.Validate()
	if err == nil {
		t.Fatal("Validate accepted warmup+measure > interval")
	}
	for _, want := range []string{"11000", "10000"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not carry %s", err, want)
		}
	}
	// The boundary case — windows exactly filling the interval — is a legal
	// zero-length fast-forward schedule, not an overlap.
	ok := Sampling{IntervalInsts: 11_000, WarmupInsts: 6_000, MeasureInsts: 5_000}
	if err := ok.Validate(); err != nil {
		t.Errorf("exact-fit schedule rejected: %v", err)
	}
	if _, err := ParseSampling("interval=10000,warmup=6000,measure=5000", 0); err == nil {
		t.Error("ParseSampling accepted overlapping schedule")
	}
}

func TestSamplingDetailedFraction(t *testing.T) {
	s := Sampling{IntervalInsts: 100_000, WarmupInsts: 2_000, MeasureInsts: 3_000}
	if f := s.DetailedFraction(); f != 0.05 {
		t.Errorf("DetailedFraction = %v", f)
	}
	if f := (Sampling{}).DetailedFraction(); f != 1 {
		t.Errorf("disabled DetailedFraction = %v", f)
	}
}
