package core

// Lockstep multi-config batching.
//
// A parameter sweep runs many nearby configurations against the same
// workload trace; streamed serially, the frontend (synthetic-trace
// generation, or file decode) repeats identically once per configuration.
// RunBatch performs that work once: one trace.Fanout per CPU stream feeds
// every member's machine through per-member cursors, and the driver
// advances the members in lockstep rounds. Per-member mutable state stays
// entirely inside each member's system.System slab (the system.Instance
// interface is all the driver touches), so members are independent: each
// produces a Report byte-identical to its own serial run (pinned by
// TestRunBatchMatchesSerial), finishes, caps or errors individually, and is
// keyed/cached in the runcache individually.
//
// Scheduling rule: a member may advance k cycles in a round only if every
// one of its cursors can serve k × SourceReadBound records (or its stream
// has hit EOF). The ring's back-pressure bounds how far members drift apart
// in the trace; after each Fill the slowest member always sees a full ring,
// so it always advances — the batch cannot deadlock on a single stream. On
// multi-CPU machines, mutual starvation across *different* streams is
// theoretically possible (members' relative progress would have to invert
// by a whole ring depth on two streams at once); a round that advances no
// member falls back to re-running one member serially, which restores
// progress while keeping results exact.

import (
	"context"
	"fmt"

	"sparc64v/internal/config"
	"sparc64v/internal/obs"
	"sparc64v/internal/runcache"
	"sparc64v/internal/system"
	"sparc64v/internal/trace"
	"sparc64v/internal/workload"
)

// batchStride is how many detailed cycles one member advances per lockstep
// round. Small enough that members stay close in the trace (bounding ring
// occupancy skew), large enough that round bookkeeping vanishes against
// ~stride×CPUs Tick calls.
const batchStride = 256

// batchRingDepth sizes the full-run shared ring per CPU stream, in
// records: it must cover at least batchStride cycles of maximum fetch
// demand for the slowest member (stride × fetch width = 2048), and every
// extra slot is drift allowance for fast members. 8K records ≈ 320 KiB per
// stream.
const batchRingDepth = 8192

// Batch metrics (process-wide registry, the runcache/sched idiom).
// batchOccupancy is a live gauge — members enter at batch start and leave
// one by one as they finish — so a scrape shows how much lockstep
// parallelism the process is sustaining right now.
var (
	batchRuns = obs.Default().Counter("sparc64v_batch_runs_total",
		"Lockstep batches executed.")
	batchMembersTotal = obs.Default().Counter("sparc64v_batch_members_total",
		"Members simulated by lockstep batches (cache-served members excluded).")
	batchCacheSkips = obs.Default().Counter("sparc64v_batch_cache_skips_total",
		"Batch members served from the run cache before streaming began.")
	batchStallRestarts = obs.Default().Counter("sparc64v_batch_stall_restarts_total",
		"Members re-run serially after a lockstep round advanced nobody (cross-stream starvation).")
	batchOccupancy = obs.Default().Gauge("sparc64v_batch_occupancy",
		"Members currently advancing in lockstep batches.")
	batchRecordsStreamed = obs.Default().Counter("sparc64v_batch_records_streamed_total",
		"Trace records decoded once by batch frontends.")
	batchRecordsSaved = obs.Default().Counter("sparc64v_batch_records_saved_total",
		"Trace records served from shared rings that serial runs would have re-decoded.")
	batchBytesSaved = obs.Default().Counter("sparc64v_batch_decode_bytes_saved_total",
		"In-memory bytes of trace records the shared decode avoided re-materializing.")
)

// recordBytes prices a saved record for the bytes-saved counter: the
// in-memory record size the frontend would have re-materialized per member.
const recordBytes = 40

// BatchKey returns the grouping key under which runs may share one decoded
// trace stream: everything that determines the trace and the lockstep
// schedule — profile, CPU count, seed, length, warmup, cap, sampling —
// excluding the machine configuration itself, which is exactly what varies
// across a batch. Harnesses (internal/expt) group sweep points by this key
// and hand each group to RunBatch.
func BatchKey(cfg config.Config, p workload.Profile, opt RunOptions) (string, error) {
	opt.defaults()
	ph, err := config.HashJSON(p)
	if err != nil {
		return "", err
	}
	sj := ""
	if opt.Sample.Enabled() {
		b, err := config.CanonicalJSON(opt.Sample)
		if err != nil {
			return "", err
		}
		sj = string(b)
	}
	return fmt.Sprintf("%s\x00%d\x00%d\x00%d\x00%d\x00%d\x00%s",
		ph, cfg.CPUs, opt.Seed, opt.Insts, opt.Warmup, opt.MaxCycles, sj), nil
}

// RunBatch simulates every configuration in cfgs against the profile's
// trace, decoding the trace once and advancing the members in lockstep. It
// returns one Report and one error per member, index-aligned with cfgs; a
// member's pair is exactly what its own RunContext call would have returned
// (byte-identical Report, same error strings), so callers can scatter the
// results wherever serial results would have gone.
//
// All members must have the same CPU count (they share per-CPU streams);
// members that cannot join (validation failure, CPU mismatch) error
// individually without sinking the batch. With opt.Cache set, members whose
// key is already cached are served before streaming begins and the
// remaining members are stored individually on success. With opt.Sample
// enabled the whole batch runs sampled: fast-forward and measurement
// windows advance in lockstep against the same shared rings.
func RunBatch(ctx context.Context, cfgs []config.Config, p workload.Profile, opt RunOptions) ([]system.Report, []error) {
	opt.defaults()
	n := len(cfgs)
	reps := make([]system.Report, n)
	errs := make([]error, n)
	if n == 0 {
		return reps, errs
	}

	models := make([]*Model, n)
	cpus := 0
	for i := range cfgs {
		m, err := NewModel(cfgs[i])
		if err != nil {
			errs[i] = err
			continue
		}
		models[i] = m
		if cpus == 0 {
			cpus = m.cfg.CPUs
		}
	}
	for i, m := range models {
		if m != nil && m.cfg.CPUs != cpus {
			errs[i] = fmt.Errorf("core: batch member %s has %d CPUs, want %d (members share per-CPU trace streams)",
				m.cfg.Name, m.cfg.CPUs, cpus)
			models[i] = nil
		}
	}

	// Cache pre-pass: serve hits before any streaming, so cached members
	// cost nothing and never hold the ring back.
	keys := make([]runcache.Key, n)
	haveKey := make([]bool, n)
	var live []int
	for i, m := range models {
		if m == nil {
			continue
		}
		if opt.Cache != nil {
			if key, err := m.runKey(p, opt); err == nil {
				keys[i], haveKey[i] = key, true
				if rep, ok := opt.Cache.Get(key); ok {
					// Mirror RunContext's hit path: a span with the cached
					// marker is the member's whole story.
					sp := opt.Obs.StartSpan("run", p.Name)
					sp.Add("cached", 1)
					spanReport(sp, rep)
					sp.Finish()
					batchCacheSkips.Inc()
					reps[i] = rep
					continue
				}
			}
		}
		live = append(live, i)
	}
	switch len(live) {
	case 0:
		return reps, errs
	case 1:
		// Nothing to amortize across: take the ordinary serial path (which
		// also handles cache storage via GetOrRun).
		i := live[0]
		reps[i], errs[i] = models[i].RunContext(ctx, p, opt)
		return reps, errs
	}

	batchRuns.Inc()
	batchMembersTotal.Add(uint64(len(live)))
	batchOccupancy.Add(int64(len(live)))

	// Shared frontend: one generator chain and one fanout ring per CPU
	// stream, one cursor per (stream, member).
	depth := batchRingDepth
	if opt.Sample.Enabled() {
		// The ring must cover a member's largest single action: a whole
		// detailed window's budget, or one fast-forward chunk. Double it so
		// the slowest member still sees a full ring while others buffer.
		need := ffChunk
		if opt.Sample.WarmupInsts > need {
			need = opt.Sample.WarmupInsts
		}
		if opt.Sample.MeasureInsts > need {
			need = opt.Sample.MeasureInsts
		}
		depth = 2 * need
	}
	gens := workload.NewMP(p, opt.Seed, cpus)
	fans := make([]*trace.Fanout, cpus)
	for c := 0; c < cpus; c++ {
		fans[c] = trace.NewFanout(trace.NewLimitSource(gens[c], opt.Insts), depth, len(live))
	}

	if opt.Sample.Enabled() {
		runBatchSampled(ctx, models, live, fans, p, opt, reps, errs)
	} else {
		runBatchFull(ctx, models, live, fans, p, opt, reps, errs)
	}

	// Cache post-pass: store every member that simulated to completion.
	// Errored/cancelled members are never stored (the GetOrRun rule).
	if opt.Cache != nil {
		for _, i := range live {
			if errs[i] == nil && haveKey[i] {
				opt.Cache.Put(keys[i], reps[i])
			}
		}
	}

	var streamed, served uint64
	for _, f := range fans {
		streamed += f.Streamed()
		served += f.Served()
	}
	batchRecordsStreamed.Add(streamed)
	if served > streamed {
		batchRecordsSaved.Add(served - streamed)
		batchBytesSaved.Add((served - streamed) * recordBytes)
	}
	return reps, errs
}

// fullMember is one full-run batch member's driver state.
type fullMember struct {
	idx     int
	m       *Model
	sys     *system.System
	inst    system.Instance
	cursors []*trace.Cursor
	sp      *obs.Span
}

// finish closes the member out exactly like the serial full-run path:
// report snapshot, cap/cancel error formatting, meter and span accounting.
func (bm *fullMember) finish(label string, opt RunOptions, capped bool, cerr error) (system.Report, error) {
	for _, cur := range bm.cursors {
		cur.Close()
	}
	batchOccupancy.Add(-1)
	endReport := bm.sp.Phase(obs.PhaseReport)
	r := bm.sys.Report(label)
	r.HitCap = capped
	meterInstrs.Add(r.Committed)
	meterCycles.Add(r.Cycles)
	meterRuns.Add(1)
	endReport()
	spanReport(bm.sp, r)
	bm.sp.Add("batched", 1)
	bm.sp.Finish()
	if cerr != nil {
		return r, fmt.Errorf("core: %s/%s cancelled: %w", bm.m.cfg.Name, label, cerr)
	}
	if capped {
		return r, fmt.Errorf("core: %s/%s hit the %d-cycle cap", bm.m.cfg.Name, label, opt.MaxCycles)
	}
	return r, nil
}

// runBatchFull advances full detailed runs in lockstep: each round refills
// the rings, then gives every member up to batchStride cycles, skipping
// members whose cursors cannot cover the round's worst-case fetch demand.
func runBatchFull(ctx context.Context, models []*Model, live []int, fans []*trace.Fanout,
	p workload.Profile, opt RunOptions, reps []system.Report, errs []error) {
	label := p.Name
	cpus := len(fans)
	members := make([]*fullMember, 0, len(live))
	for slot, idx := range live {
		m := models[idx]
		cfg := m.cfg
		cfg.WarmupInsts = opt.Warmup
		sp := opt.Obs.StartSpan("run", label)
		endBuild := sp.Phase(obs.PhaseBuild)
		curs := make([]*trace.Cursor, cpus)
		srcs := make([]trace.Source, cpus)
		for c := 0; c < cpus; c++ {
			curs[c] = fans[c].Cursor(slot)
			srcs[c] = curs[c]
		}
		sys, err := system.New(cfg, srcs)
		endBuild()
		if err != nil {
			// Cannot happen for NewModel-validated configs; close out
			// defensively so the ring is not pinned forever.
			for _, cur := range curs {
				cur.Close()
			}
			batchOccupancy.Add(-1)
			errs[idx] = err
			continue
		}
		members = append(members, &fullMember{idx: idx, m: m, sys: sys, inst: sys, cursors: curs, sp: sp})
	}

	done := ctx.Done()
	for len(members) > 0 {
		if done != nil {
			select {
			case <-done:
				for _, bm := range members {
					reps[bm.idx], errs[bm.idx] = bm.finish(label, opt, false, ctx.Err())
				}
				return
			default:
			}
		}
		for _, f := range fans {
			f.Fill()
		}
		progressed := false
		next := members[:0]
		for _, bm := range members {
			k := batchStride
			for c, cur := range bm.cursors {
				if fans[c].EOF() {
					continue
				}
				if kc := cur.Buffered() / bm.inst.SourceReadBound(c); kc < k {
					k = kc
				}
			}
			if k == 0 {
				// Starved: a slower member pins the ring. Skip this round.
				next = append(next, bm)
				continue
			}
			endSim := bm.sp.Phase(obs.PhaseSim)
			mdone, capped := bm.inst.Step(k, opt.MaxCycles)
			endSim()
			progressed = true
			if mdone || capped {
				reps[bm.idx], errs[bm.idx] = bm.finish(label, opt, capped, nil)
			} else {
				next = append(next, bm)
			}
		}
		members = next
		if !progressed && len(members) > 0 {
			// Cross-stream starvation (see package comment): peel one member
			// off and re-run it serially so the rest can move.
			bm := members[0]
			members = members[1:]
			for _, cur := range bm.cursors {
				cur.Close()
			}
			batchOccupancy.Add(-1)
			batchStallRestarts.Inc()
			o := opt
			o.Cache = nil // the batch post-pass stores it like any member
			reps[bm.idx], errs[bm.idx] = bm.m.RunContext(ctx, p, o)
		}
	}
}

// sampledMember is one sampled batch member's driver state.
type sampledMember struct {
	idx     int
	run     *sampledRun
	cursors []*trace.Cursor
}

func (bm *sampledMember) close() {
	for _, cur := range bm.cursors {
		cur.Close()
	}
	batchOccupancy.Add(-1)
}

// runBatchSampled advances sampled runs in lockstep. Each member is a
// sampledRun state machine (sample.go); a round steps every member whose
// next action — a fast-forward chunk or one detailed window — the shared
// rings can feed. The per-member action sequence is exactly the serial
// one, so sampled reports stay byte-identical batched vs serial.
func runBatchSampled(ctx context.Context, models []*Model, live []int, fans []*trace.Fanout,
	p workload.Profile, opt RunOptions, reps []system.Report, errs []error) {
	cpus := len(fans)
	members := make([]*sampledMember, 0, len(live))
	for slot, idx := range live {
		curs := make([]*trace.Cursor, cpus)
		srcs := make([]trace.Source, cpus)
		for c := 0; c < cpus; c++ {
			curs[c] = fans[c].Cursor(slot)
			srcs[c] = curs[c]
		}
		run, err := newSampledRun(models[idx], p.Name, srcs, opt)
		if err != nil {
			for _, cur := range curs {
				cur.Close()
			}
			batchOccupancy.Add(-1)
			errs[idx] = err
			continue
		}
		bm := &sampledMember{idx: idx, run: run, cursors: curs}
		if run.stage == stageDone { // degenerate schedule: finished at birth
			reps[idx], errs[idx] = run.finish()
			bm.close()
			continue
		}
		members = append(members, bm)
	}

	done := ctx.Done()
	for len(members) > 0 {
		if done != nil {
			select {
			case <-done:
				for _, bm := range members {
					bm.run.cancel(ctx.Err())
					reps[bm.idx], errs[bm.idx] = bm.run.finish()
					bm.close()
				}
				return
			default:
			}
		}
		for _, f := range fans {
			f.Fill()
		}
		progressed := false
		next := members[:0]
		for _, bm := range members {
			cpu, need := bm.run.needRecords()
			starved := false
			if cpu >= 0 {
				starved = bm.cursors[cpu].Starved(need)
			} else {
				for _, cur := range bm.cursors {
					if cur.Starved(need) {
						starved = true
						break
					}
				}
			}
			if starved {
				next = append(next, bm)
				continue
			}
			bm.run.step(ctx)
			progressed = true
			if bm.run.stage == stageDone {
				reps[bm.idx], errs[bm.idx] = bm.run.finish()
				bm.close()
			} else {
				next = append(next, bm)
			}
		}
		members = next
		if !progressed && len(members) > 0 {
			bm := members[0]
			members = members[1:]
			bm.close()
			batchStallRestarts.Inc()
			o := opt
			o.Cache = nil
			reps[bm.idx], errs[bm.idx] = bm.run.m.RunContext(ctx, p, o)
		}
	}
}
