package core

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"sparc64v/internal/config"
	"sparc64v/internal/runcache"
	"sparc64v/internal/system"
	"sparc64v/internal/trace"
	"sparc64v/internal/workload"
)

// batchNeighborhood is the 8-config sweep neighborhood the batching tests
// and benchmarks share: the base machine plus the paper's usual parameter
// excursions (issue width, BHT, L1, L2, prefetch, reservation stations).
func batchNeighborhood() []config.Config {
	base := config.Base()
	return []config.Config{
		base,
		base.WithIssueWidth(2),
		base.WithIssueWidth(6),
		base.WithSmallBHT(),
		base.WithSmallL1(),
		base.WithOffChipL2(4),
		base.WithoutPrefetch(),
		base.WithOneRS(),
	}
}

// reportBytes marshals a report for byte-level comparison.
func reportBytes(t *testing.T, r system.Report) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return string(b)
}

// runSerial runs each config through the ordinary serial path.
func runSerial(t *testing.T, cfgs []config.Config, p workload.Profile, opt RunOptions) []system.Report {
	t.Helper()
	out := make([]system.Report, len(cfgs))
	for i, cfg := range cfgs {
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		out[i], err = m.RunContext(context.Background(), p, opt)
		if err != nil {
			t.Fatalf("serial run %d: %v", i, err)
		}
	}
	return out
}

// TestRunBatchMatchesSerial: a batched 8-config run must produce Reports
// byte-identical to 8 serial runs, for every uniprocessor workload.
func TestRunBatchMatchesSerial(t *testing.T) {
	cfgs := batchNeighborhood()
	opt := RunOptions{Insts: 20_000}
	for _, p := range workload.UPProfiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			serial := runSerial(t, cfgs, p, opt)
			reps, errs := RunBatch(context.Background(), cfgs, p, opt)
			for i := range cfgs {
				if errs[i] != nil {
					t.Fatalf("batch member %d: %v", i, errs[i])
				}
				if got, want := reportBytes(t, reps[i]), reportBytes(t, serial[i]); got != want {
					t.Errorf("member %d (%s) batched report differs from serial\nbatched: %s\nserial:  %s",
						i, cfgs[i].Name, got, want)
				}
			}
		})
	}
}

// TestRunBatchSampledMatchesSerial: the sampled engine under the lockstep
// driver must execute the identical per-member action sequence.
func TestRunBatchSampledMatchesSerial(t *testing.T) {
	cfgs := batchNeighborhood()
	opt := RunOptions{
		Insts:  120_000,
		Sample: config.Sampling{IntervalInsts: 20_000, WarmupInsts: 1_000, MeasureInsts: 2_000},
	}
	p := workload.SPECint95()
	serial := runSerial(t, cfgs, p, opt)
	reps, errs := RunBatch(context.Background(), cfgs, p, opt)
	for i := range cfgs {
		if errs[i] != nil {
			t.Fatalf("batch member %d: %v", i, errs[i])
		}
		if got, want := reportBytes(t, reps[i]), reportBytes(t, serial[i]); got != want {
			t.Errorf("member %d (%s) batched sampled report differs from serial", i, cfgs[i].Name)
		}
	}
}

// TestRunBatchMPMatchesSerial: multiprocessor members share one fanout per
// CPU stream; coherence traffic must still evolve identically to serial.
func TestRunBatchMPMatchesSerial(t *testing.T) {
	base := config.Base().WithCPUs(2)
	cfgs := []config.Config{
		base,
		base.WithSmallL1(),
		base.WithIssueWidth(2),
		base.WithoutPrefetch(),
	}
	opt := RunOptions{Insts: 15_000}
	p := workload.TPCC16P()
	serial := runSerial(t, cfgs, p, opt)
	reps, errs := RunBatch(context.Background(), cfgs, p, opt)
	for i := range cfgs {
		if errs[i] != nil {
			t.Fatalf("batch member %d: %v", i, errs[i])
		}
		if got, want := reportBytes(t, reps[i]), reportBytes(t, serial[i]); got != want {
			t.Errorf("member %d (%s) batched MP report differs from serial", i, cfgs[i].Name)
		}
	}
}

// TestRunBatchSampledMPMatchesSerial: sampled + MP + batching compose.
func TestRunBatchSampledMPMatchesSerial(t *testing.T) {
	base := config.Base().WithCPUs(2)
	cfgs := []config.Config{base, base.WithSmallL1(), base.WithIssueWidth(2)}
	opt := RunOptions{
		Insts:  40_000,
		Sample: config.Sampling{IntervalInsts: 10_000, WarmupInsts: 1_000, MeasureInsts: 2_000},
	}
	p := workload.TPCC16P()
	serial := runSerial(t, cfgs, p, opt)
	reps, errs := RunBatch(context.Background(), cfgs, p, opt)
	for i := range cfgs {
		if errs[i] != nil {
			t.Fatalf("batch member %d: %v", i, errs[i])
		}
		if got, want := reportBytes(t, reps[i]), reportBytes(t, serial[i]); got != want {
			t.Errorf("member %d (%s) batched sampled MP report differs from serial", i, cfgs[i].Name)
		}
	}
}

// TestRunBatchCancellation: cancelling mid-batch errors every unfinished
// member with the serial cancellation wrapping, and each partial report
// still satisfies fetched >= committed per CPU (the conservation invariant
// cancelled serial runs guarantee).
func TestRunBatchCancellation(t *testing.T) {
	cfgs := batchNeighborhood()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	defer cancel()
	reps, errs := RunBatch(ctx, cfgs, workload.SPECint95(), RunOptions{Insts: 400_000})
	cancelled := 0
	for i := range cfgs {
		if errs[i] == nil {
			continue // finished before the cancel landed
		}
		cancelled++
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("member %d err = %v, want context.Canceled", i, errs[i])
		}
		if !strings.Contains(errs[i].Error(), "cancelled") {
			t.Errorf("member %d err = %v", i, errs[i])
		}
		for c := range reps[i].CPUs {
			core := reps[i].CPUs[c].Core
			if core.Fetched < core.Committed {
				t.Errorf("member %d cpu%d fetched %d < committed %d", i, c, core.Fetched, core.Committed)
			}
		}
	}
	if cancelled == 0 {
		t.Skip("batch finished before cancellation; nothing to assert")
	}
}

// TestRunBatchCacheSkip: members already in the run cache are served before
// streaming begins; simulated members are stored individually, so a second
// batch is all hits.
func TestRunBatchCacheSkip(t *testing.T) {
	cache, err := runcache.New(runcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfgs := batchNeighborhood()[:4]
	p := workload.SPECint95()
	opt := RunOptions{Insts: 20_000, Cache: cache}

	// Pre-warm exactly one member through the serial path.
	m, _ := NewModel(cfgs[2])
	pre, err := m.RunContext(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	s0 := cache.Stats()

	reps, errs := RunBatch(context.Background(), cfgs, p, opt)
	for i := range cfgs {
		if errs[i] != nil {
			t.Fatalf("member %d: %v", i, errs[i])
		}
	}
	if got, want := reportBytes(t, reps[2]), reportBytes(t, pre); got != want {
		t.Error("cache-served member differs from its pre-warmed report")
	}
	s1 := cache.Stats()
	if hits := s1.Hits() - s0.Hits(); hits != 1 {
		t.Errorf("first batch took %d cache hits, want 1", hits)
	}
	if miss := s1.Misses - s0.Misses; miss != 3 {
		t.Errorf("first batch recorded %d misses, want 3", miss)
	}

	// Second identical batch: every member served from cache, nothing runs.
	_, runs0 := func() (uint64, uint64) { _, _, r := Meter(); return 0, r }()
	reps2, errs2 := RunBatch(context.Background(), cfgs, p, opt)
	for i := range cfgs {
		if errs2[i] != nil {
			t.Fatalf("second batch member %d: %v", i, errs2[i])
		}
		if got, want := reportBytes(t, reps2[i]), reportBytes(t, reps[i]); got != want {
			t.Errorf("second batch member %d differs from first", i)
		}
	}
	s2 := cache.Stats()
	if hits := s2.Hits() - s1.Hits(); hits != 4 {
		t.Errorf("second batch took %d cache hits, want 4", hits)
	}
	_, _, runs1 := Meter()
	if runs1 != runs0 && s2.Misses != s1.Misses {
		t.Errorf("second batch simulated: misses %d -> %d", s1.Misses, s2.Misses)
	}
}

// TestRunBatchMixedCPUs: a member whose CPU count differs cannot share the
// per-CPU streams; it errors individually without sinking the batch.
func TestRunBatchMixedCPUs(t *testing.T) {
	cfgs := []config.Config{
		config.Base(),
		config.Base().WithCPUs(2),
		config.Base().WithSmallL1(),
	}
	p := workload.SPECint95()
	opt := RunOptions{Insts: 10_000}
	serial := []system.Report{}
	for _, i := range []int{0, 2} {
		m, _ := NewModel(cfgs[i])
		r, err := m.RunContext(context.Background(), p, opt)
		if err != nil {
			t.Fatal(err)
		}
		serial = append(serial, r)
	}
	reps, errs := RunBatch(context.Background(), cfgs, p, opt)
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "CPUs") {
		t.Fatalf("mixed-CPU member err = %v", errs[1])
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("conforming members errored: %v, %v", errs[0], errs[2])
	}
	if got, want := reportBytes(t, reps[0]), reportBytes(t, serial[0]); got != want {
		t.Error("member 0 differs from serial")
	}
	if got, want := reportBytes(t, reps[2]), reportBytes(t, serial[1]); got != want {
		t.Error("member 2 differs from serial")
	}
}

// TestRunBatchSingleLive: with one live member the driver degrades to the
// ordinary serial path (nothing to amortize), still returning its report.
func TestRunBatchSingleLive(t *testing.T) {
	cfgs := []config.Config{config.Base()}
	p := workload.SPECint95()
	opt := RunOptions{Insts: 10_000}
	serial := runSerial(t, cfgs, p, opt)
	reps, errs := RunBatch(context.Background(), cfgs, p, opt)
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	if got, want := reportBytes(t, reps[0]), reportBytes(t, serial[0]); got != want {
		t.Error("single-member batch differs from serial")
	}
}

// TestBatchKey: sweep points that share a trace group together; anything
// that changes the trace or the schedule separates them.
func TestBatchKey(t *testing.T) {
	p := workload.SPECint95()
	opt := RunOptions{Insts: 20_000}
	k1, err := BatchKey(config.Base(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := BatchKey(config.Base().WithSmallL1(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("config variation changed the batch key; variants could not batch")
	}
	for name, alt := range map[string]struct {
		cfg config.Config
		p   workload.Profile
		opt RunOptions
	}{
		"seed":     {config.Base(), p, RunOptions{Insts: 20_000, Seed: 7}},
		"insts":    {config.Base(), p, RunOptions{Insts: 30_000}},
		"profile":  {config.Base(), workload.SPECfp95(), opt},
		"cpus":     {config.Base().WithCPUs(2), p, opt},
		"sampling": {config.Base(), p, RunOptions{Insts: 20_000, Sample: config.Sampling{IntervalInsts: 10_000, MeasureInsts: 1_000}}},
	} {
		k, err := BatchKey(alt.cfg, alt.p, alt.opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == k1 {
			t.Errorf("%s variation did not change the batch key", name)
		}
	}
}

// TestStepMatchesRunContext: a machine driven by arbitrary Step chunks must
// land on the same terminal state as one driven by RunContext (the batch
// driver's correctness foundation).
func TestStepMatchesRunContext(t *testing.T) {
	p := workload.SPECint95()
	opt := RunOptions{Insts: 10_000}
	serial := runSerial(t, []config.Config{config.Base()}, p, opt)

	opt.defaults()
	m, _ := NewModel(config.Base())
	cfg := m.Config()
	cfg.WarmupInsts = opt.Warmup
	gens := workload.NewMP(p, opt.Seed, cfg.CPUs)
	sys, err := system.New(cfg, []trace.Source{trace.NewLimitSource(gens[0], opt.Insts)})
	if err != nil {
		t.Fatal(err)
	}
	chunks := []int{1, 3, 17, 256, 1000}
	for i := 0; ; i++ {
		done, capped := sys.Step(chunks[i%len(chunks)], opt.MaxCycles)
		if capped {
			t.Fatal("stepped run hit the cycle cap")
		}
		if done {
			break
		}
	}
	r := sys.Report(p.Name)
	if got, want := reportBytes(t, r), reportBytes(t, serial[0]); got != want {
		t.Error("stepped report differs from RunContext report")
	}
}
