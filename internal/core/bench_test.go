package core

// Full-run vs sampled-run benchmarks: the pair that quantifies the sampled
// simulation speedup on identical inputs. The benchdiff gate
// (scripts/benchdiff.sh) tracks both, so a regression that erodes the
// fast-forward advantage — or an allocation added to either path — fails CI.
// The headline multiprocessor speedup artifact (BENCH_*.json) is produced
// from these numbers plus the MP validation run in DESIGN.md.

import (
	"context"
	"testing"

	"sparc64v/internal/config"
	"sparc64v/internal/workload"
)

// benchSampleSchedule is the benchmark schedule: 12.5% of each interval in
// detailed mode, matching the validation schedules in EXPERIMENTS.md.
func benchSampleSchedule() config.Sampling {
	return config.Sampling{IntervalInsts: 40_000, WarmupInsts: 2_000, MeasureInsts: 3_000}
}

func benchRun(b *testing.B, opt RunOptions) {
	b.Helper()
	b.ReportAllocs()
	m, err := NewModel(config.Base())
	if err != nil {
		b.Fatal(err)
	}
	total := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := m.Run(workload.SPECint95(), opt)
		if err != nil {
			b.Fatal(err)
		}
		total += int64(r.Committed)
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "sim-instrs/s")
}

func BenchmarkFullRun(b *testing.B) {
	benchRun(b, RunOptions{Insts: 120_000})
}

func BenchmarkSampledRun(b *testing.B) {
	benchRun(b, RunOptions{Insts: 120_000, Sample: benchSampleSchedule()})
}

// benchSweep runs the stock 8-configuration neighborhood (the batch tests'
// batchNeighborhood) against one sampled trace, either as eight serial runs
// — each re-generating the trace — or as one lockstep batch sharing a
// single decoded stream. Sampled mode is where batching pays: the detailed
// windows are a small slice of each run, so the per-member cost is
// dominated by exactly the frontend work the batch amortizes. The
// Serial/Batched pair in the benchdiff baseline records the speedup; the
// gate fails if a regression erodes it back toward serial cost.
func benchSweep(b *testing.B, batch bool) {
	b.Helper()
	b.ReportAllocs()
	cfgs := batchNeighborhood()
	p := workload.SPECint95()
	opt := RunOptions{Insts: 400_000, Sample: benchSampleSchedule()}
	total := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batch {
			reps, errs := RunBatch(context.Background(), cfgs, p, opt)
			for j := range reps {
				if errs[j] != nil {
					b.Fatal(errs[j])
				}
				total += int64(reps[j].Committed)
			}
			continue
		}
		for _, cfg := range cfgs {
			m, err := NewModel(cfg)
			if err != nil {
				b.Fatal(err)
			}
			r, err := m.Run(p, opt)
			if err != nil {
				b.Fatal(err)
			}
			total += int64(r.Committed)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "sim-instrs/s")
}

func BenchmarkSerialSweep(b *testing.B)  { benchSweep(b, false) }
func BenchmarkBatchedSweep(b *testing.B) { benchSweep(b, true) }
