package core

// Full-run vs sampled-run benchmarks: the pair that quantifies the sampled
// simulation speedup on identical inputs. The benchdiff gate
// (scripts/benchdiff.sh) tracks both, so a regression that erodes the
// fast-forward advantage — or an allocation added to either path — fails CI.
// The headline multiprocessor speedup artifact (BENCH_*.json) is produced
// from these numbers plus the MP validation run in DESIGN.md.

import (
	"testing"

	"sparc64v/internal/config"
	"sparc64v/internal/workload"
)

// benchSampleSchedule is the benchmark schedule: 12.5% of each interval in
// detailed mode, matching the validation schedules in EXPERIMENTS.md.
func benchSampleSchedule() config.Sampling {
	return config.Sampling{IntervalInsts: 40_000, WarmupInsts: 2_000, MeasureInsts: 3_000}
}

func benchRun(b *testing.B, opt RunOptions) {
	b.Helper()
	b.ReportAllocs()
	m, err := NewModel(config.Base())
	if err != nil {
		b.Fatal(err)
	}
	total := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := m.Run(workload.SPECint95(), opt)
		if err != nil {
			b.Fatal(err)
		}
		total += int64(r.Committed)
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "sim-instrs/s")
}

func BenchmarkFullRun(b *testing.B) {
	benchRun(b, RunOptions{Insts: 120_000})
}

func BenchmarkSampledRun(b *testing.B) {
	benchRun(b, RunOptions{Insts: 120_000, Sample: benchSampleSchedule()})
}
