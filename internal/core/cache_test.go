package core

import (
	"context"
	"reflect"
	"testing"

	"sparc64v/internal/config"
	"sparc64v/internal/runcache"
	"sparc64v/internal/workload"
)

// testCacheOpt returns a small, fast run configuration.
func testCacheOpt(cache *runcache.Cache) RunOptions {
	return RunOptions{Insts: 30_000, Seed: 7, Workers: 1, Cache: cache}
}

// TestCachedRunByteIdentical pins the cache's core guarantee: for an
// identical (config, workload, seed, insts, version) tuple, the cached and
// uncached paths return exactly equal reports — every table derived from
// them renders byte-identically.
func TestCachedRunByteIdentical(t *testing.T) {
	m, err := NewModel(config.Base())
	if err != nil {
		t.Fatal(err)
	}
	p := workload.SPECint95()

	fresh, err := m.Run(p, testCacheOpt(nil))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cache, err := runcache.New(runcache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := m.Run(p, testCacheOpt(cache))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := m.Run(p, testCacheOpt(cache))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, cold) {
		t.Fatal("cold cached run differs from uncached run")
	}
	if !reflect.DeepEqual(fresh, warm) {
		t.Fatal("warm cached run differs from uncached run")
	}
	s := cache.Stats()
	if s.Misses != 1 || s.MemoryHits != 1 {
		t.Fatalf("stats: %+v (want 1 miss, 1 memory hit)", s)
	}

	// A second process over the same cache dir serves from disk, again
	// exactly equal.
	cache2, err := runcache.New(runcache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := m.Run(p, testCacheOpt(cache2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, disk) {
		t.Fatal("disk-served run differs from uncached run")
	}
	if s := cache2.Stats(); s.DiskHits != 1 || s.Misses != 0 {
		t.Fatalf("stats: %+v (want 1 disk hit, 0 misses)", s)
	}
}

// TestCacheKeySensitivity pins that changing any run parameter re-simulates
// instead of serving a stale entry.
func TestCacheKeySensitivity(t *testing.T) {
	cache, err := runcache.New(runcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := workload.SPECint95()
	base := config.Base()
	m, _ := NewModel(base)

	opt := testCacheOpt(cache)
	if _, err := m.Run(p, opt); err != nil {
		t.Fatal(err)
	}
	// Different seed.
	o := opt
	o.Seed = 8
	if _, err := m.Run(p, o); err != nil {
		t.Fatal(err)
	}
	// Different config.
	m2, _ := NewModel(base.WithIssueWidth(2))
	if _, err := m2.Run(p, opt); err != nil {
		t.Fatal(err)
	}
	// Different workload, same display name: profile hash must separate.
	p2 := p
	p2.BlockLen++
	if _, err := m.Run(p2, opt); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Misses != 4 || s.Hits() != 0 {
		t.Fatalf("stats: %+v (want 4 distinct misses)", s)
	}
}

// TestBreakdownWarmCache pins the incremental-sweep behavior at the study
// level: a second Breakdown over a warm cache runs zero simulations and
// returns identical results.
func TestBreakdownWarmCache(t *testing.T) {
	cache, err := runcache.New(runcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewModel(config.Base())
	p := workload.SPECint95()
	opt := testCacheOpt(cache)

	cold, err := m.BreakdownContext(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	misses := cache.Stats().Misses
	warm, err := m.BreakdownContext(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm breakdown differs from cold")
	}
	s := cache.Stats()
	if s.Misses != misses {
		t.Fatalf("warm breakdown re-simulated: %d -> %d misses", misses, s.Misses)
	}
	if s.Hits() == 0 {
		t.Fatal("warm breakdown did not hit the cache")
	}
}

// TestRunManyDedup pins singleflight at the harness level: identical seeds
// submitted concurrently share one simulation.
func TestRunManyDedup(t *testing.T) {
	cache, err := runcache.New(runcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewModel(config.Base())
	p := workload.SPECint95()
	opt := testCacheOpt(cache)
	opt.Workers = 4

	// RunMany over n seeds twice concurrently: the second wave must share
	// or hit, never duplicate a simulation.
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := m.RunMany(p, opt, 3)
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if s := cache.Stats(); s.Misses != 3 {
		t.Fatalf("6 submitted runs over 3 seeds simulated %d times, want 3 (stats %+v)", s.Misses, s)
	}
}
