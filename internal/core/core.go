// Package core is the top of the performance model — the paper's primary
// contribution. A Model binds a machine configuration to workloads and
// exposes the analyses the paper runs on it: plain runs (IPC and rates),
// the perfect-ization stall breakdown of Figure 7, and the model-fidelity
// version ladder (v1..v8) behind the accuracy study of Figure 19.
package core

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"sparc64v/internal/config"
	"sparc64v/internal/obs"
	"sparc64v/internal/runcache"
	"sparc64v/internal/sched"
	"sparc64v/internal/stats"
	"sparc64v/internal/system"
	"sparc64v/internal/trace"
	"sparc64v/internal/workload"
)

// ModelVersion identifies the simulator's timing semantics for the run
// cache (internal/runcache): a cached result is only reused by the exact
// version that produced it. Bump this on ANY change that can alter
// simulation output — timing fixes, new counters, workload-generator
// changes — or stale results will be served as current ones.
const ModelVersion = "sparc64v-model/6"

// Simulation meter: committed instructions, cycles and runs actually
// simulated in this process (cache-served results do not count). The sweep
// reports effective sim-instrs/s from it; the simd service exposes it on
// /metrics. Atomics: simulations run concurrently on the scheduler.
var (
	meterInstrs atomic.Uint64
	meterCycles atomic.Uint64
	meterRuns   atomic.Uint64
)

// MeterReset zeroes the simulation meter.
func MeterReset() { meterInstrs.Store(0); meterCycles.Store(0); meterRuns.Store(0) }

// Meter returns committed instructions, simulated cycles and simulation
// runs accumulated since the last reset.
func Meter() (instrs, cycles, runs uint64) {
	return meterInstrs.Load(), meterCycles.Load(), meterRuns.Load()
}

// Model is a machine configuration ready to run workloads.
type Model struct {
	cfg config.Config
}

// NewModel validates cfg and wraps it.
func NewModel(cfg config.Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{cfg: cfg}, nil
}

// Config returns a copy of the model's configuration.
func (m *Model) Config() config.Config { return m.cfg }

// RunOptions controls a simulation run.
type RunOptions struct {
	// Insts is the trace length per CPU in instructions.
	Insts int
	// Seed selects the synthetic trace (the paper samples several trace
	// windows; different seeds play that role).
	Seed int64
	// MaxCycles caps the run as a hang guard; 0 derives a generous cap
	// from Insts.
	MaxCycles uint64
	// Warmup is the per-CPU committed-instruction count excluded from
	// statistics (cache/BHT warmup, mirroring the paper's steady-state
	// trace capture); 0 means Insts/5.
	Warmup uint64
	// Workers bounds harness-level fan-out: how many independent
	// simulations (Breakdown's fidelity runs, RunMany's seeds, the expt
	// studies) run concurrently. 0 means GOMAXPROCS, 1 forces a serial
	// run. It never changes results — every job owns its model and trace
	// state, and results are assembled in submission order.
	Workers int
	// Cache, when non-nil, serves profile-based runs content-addressed:
	// the result of an identical (configuration, workload, seed, insts,
	// model version) run is returned from the cache instead of being
	// re-simulated, and concurrent identical runs share one simulation.
	// Results are byte-identical either way (see runcache). Trace-file
	// runs (RunSources*) are never cached — a file has no stable content
	// key here.
	Cache *runcache.Cache
	// Obs, when non-nil, collects a per-run profile span (wall time split
	// into build/sim/report/cache phases, plus the run's headline counters)
	// for every simulation executed under these options. nil disables
	// profiling at zero cost; profiling never changes simulation results
	// (pinned by TestInstrumentationIsInvisible).
	Obs *obs.Collector
	// Sample, when enabled, switches the run to sampled simulation: most of
	// the trace fast-forwards through a functional executor and only
	// periodic detailed windows are measured (see sample.go). The sampled
	// Report estimates the full run's rates and CPI at a fraction of the
	// wall time; Report.Sampling records the schedule and error bound.
	// Sampling is part of the run's cache identity (runcache.Key.Sampling),
	// so sampled and full results never cross-serve. Under sampling, Warmup
	// is fast-forwarded before the first interval (so sampled and full runs
	// measure the same post-warm-up population) and the per-window detailed
	// warm-up replaces the classic measurement reset.
	Sample config.Sampling
	// Batch, when > 1, lets batch-aware harnesses (internal/expt, cmd/sweep,
	// cmd/accuracy) group up to Batch runs that share a workload trace
	// (same BatchKey) and execute each group through RunBatch, decoding the
	// trace once for the whole group. Like Workers it never changes
	// results — batched Reports are byte-identical to serial ones — only
	// how the work is scheduled. 0 or 1 disables batching.
	Batch int
}

func (o *RunOptions) defaults() {
	if o.Insts <= 0 {
		o.Insts = 400_000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = uint64(o.Insts)*400 + 10_000_000
	}
	if o.Warmup == 0 {
		o.Warmup = uint64(o.Insts / 5)
	}
}

// Run simulates the profile on this model. For multiprocessor
// configurations one trace per CPU is generated (sharing the profile's
// Shared region).
func (m *Model) Run(p workload.Profile, opt RunOptions) (system.Report, error) {
	return m.RunContext(context.Background(), p, opt)
}

// RunContext is Run with a cancellation point: the simulation polls ctx on
// a coarse cycle stride (system.RunContext) and returns a partial report
// wrapped around ctx.Err() when cancelled mid-run.
//
// With opt.Cache set the run is content-addressed: a prior identical run's
// report is returned without simulating, and concurrent identical runs
// share one simulation. Failed or cancelled runs are never cached.
func (m *Model) RunContext(ctx context.Context, p workload.Profile, opt RunOptions) (system.Report, error) {
	opt.defaults()
	if opt.Cache != nil {
		if key, err := m.runKey(p, opt); err == nil {
			sp := opt.Obs.StartSpan("run", p.Name)
			endCache := sp.Phase(obs.PhaseCache)
			rep, outcome, err := opt.Cache.GetOrRun(ctx, key, func(ctx context.Context) (system.Report, error) {
				return m.runProfile(ctx, p, opt)
			})
			endCache()
			if err == nil && outcome.Cached() {
				// Cache-served: this span is the run's whole story. On a
				// miss the inner runProfile already published the real
				// span, so this wrapper is dropped (never finished).
				sp.Add("cached", 1)
				spanReport(sp, rep)
				sp.Finish()
			}
			return rep, err
		}
		// Unhashable configuration (cannot happen for real Configs):
		// degrade to an uncached run rather than failing it.
	}
	return m.runProfile(ctx, p, opt)
}

// RunKey is the content address RunContext files the run under. Callers
// that drive the cache themselves (the experiment server, which inserts
// admission control between the cache and the simulator) use it so their
// entries stay interchangeable with runs cached directly through
// RunContext.
func (m *Model) RunKey(p workload.Profile, opt RunOptions) (runcache.Key, error) {
	opt.defaults()
	return m.runKey(p, opt)
}

// runKey builds the run's content address. The effective warmup is part of
// the hashed configuration (it changes measured cycles); the profile is
// hashed in full so two profiles sharing a display name cannot collide.
func (m *Model) runKey(p workload.Profile, opt RunOptions) (runcache.Key, error) {
	cfg := m.cfg
	cfg.WarmupInsts = opt.Warmup
	ch, err := cfg.Hash()
	if err != nil {
		return runcache.Key{}, err
	}
	ph, err := config.HashJSON(p)
	if err != nil {
		return runcache.Key{}, err
	}
	key := runcache.Key{
		ConfigHash:  ch,
		Workload:    p.Name,
		ProfileHash: ph,
		Seed:        opt.Seed,
		Insts:       opt.Insts,
		Version:     ModelVersion,
	}
	// A sampled run produces a different (estimated) Report than a full
	// run of the same inputs, so the sampling schedule joins the content
	// address; the empty string keeps full-run keys unchanged.
	if opt.Sample.Enabled() {
		sj, err := config.CanonicalJSON(opt.Sample)
		if err != nil {
			return runcache.Key{}, err
		}
		key.Sampling = string(sj)
	}
	return key, nil
}

// runProfile generates the profile's traces and simulates them (the
// uncached path under RunContext).
func (m *Model) runProfile(ctx context.Context, p workload.Profile, opt RunOptions) (system.Report, error) {
	gens := workload.NewMP(p, opt.Seed, m.cfg.CPUs)
	srcs := make([]trace.Source, len(gens))
	for i, g := range gens {
		srcs[i] = trace.NewLimitSource(g, opt.Insts)
	}
	return m.RunSourcesContext(ctx, p.Name, srcs, opt)
}

// RunSources simulates explicit trace sources (e.g. trace files).
func (m *Model) RunSources(label string, srcs []trace.Source, opt RunOptions) (system.Report, error) {
	return m.RunSourcesContext(context.Background(), label, srcs, opt)
}

// RunSourcesContext is RunSources with a cancellation point. On
// cancellation it returns the partial report alongside an error wrapping
// ctx.Err().
func (m *Model) RunSourcesContext(ctx context.Context, label string, srcs []trace.Source, opt RunOptions) (system.Report, error) {
	opt.defaults()
	if opt.Sample.Enabled() {
		return m.runSampled(ctx, label, srcs, opt)
	}
	sp := opt.Obs.StartSpan("run", label)
	cfg := m.cfg
	cfg.WarmupInsts = opt.Warmup
	endBuild := sp.Phase(obs.PhaseBuild)
	sys, err := system.New(cfg, srcs)
	endBuild()
	if err != nil {
		return system.Report{}, err
	}
	endSim := sp.Phase(obs.PhaseSim)
	_, capped, cerr := sys.RunContext(ctx, opt.MaxCycles)
	endSim()
	endReport := sp.Phase(obs.PhaseReport)
	r := sys.Report(label)
	r.HitCap = capped
	meterInstrs.Add(r.Committed)
	meterCycles.Add(r.Cycles)
	meterRuns.Add(1)
	endReport()
	spanReport(sp, r)
	sp.Finish()
	if cerr != nil {
		return r, fmt.Errorf("core: %s/%s cancelled: %w", m.cfg.Name, label, cerr)
	}
	if capped {
		return r, fmt.Errorf("core: %s/%s hit the %d-cycle cap", m.cfg.Name, label, opt.MaxCycles)
	}
	return r, nil
}

// spanReport copies a run's headline counters onto its span. The simulator
// interleaves all pipeline stages in one cycle loop, so per-stage *time*
// is not separable without per-cycle clock reads; per-stage *activity* is
// free — the machine already counted it — and is what profiles carry.
func spanReport(sp *obs.Span, r system.Report) {
	if sp == nil {
		return
	}
	sp.Add("cycles", int64(r.Cycles))
	sp.Add("committed", int64(r.Committed))
	sp.Add("bus_wait_cycles", int64(r.BusWaitCycles))
	sp.Add("dram_wait_cycles", int64(r.DRAMWaitCycles))
	if r.HitCap {
		sp.Add("hit_cap", 1)
	}
	for i := range r.CPUs {
		c := &r.CPUs[i]
		sp.Add("fetched", int64(c.Core.Fetched))
		sp.Add("branches", int64(c.Branch.Branches()))
		sp.Add("mispredicts", int64(c.Branch.Mispredicts()))
		sp.Add("l1i_accesses", int64(c.L1I.DemandAccesses))
		sp.Add("l1i_misses", int64(c.L1I.DemandMisses))
		sp.Add("l1d_accesses", int64(c.L1D.DemandAccesses))
		sp.Add("l1d_misses", int64(c.L1D.DemandMisses))
		sp.Add("l2_accesses", int64(c.L2.DemandAccesses))
		sp.Add("l2_misses", int64(c.L2.DemandMisses))
	}
}

// BreakdownResult is the Figure 7 analysis for one workload: the share of
// execution time lost to each stall class, obtained by progressively
// perfect-izing the machine.
type BreakdownResult struct {
	// Workload names the trace.
	Workload string
	// Breakdown holds the shares (core / branch / ibs+tlb / sx).
	Breakdown stats.Breakdown
	// Base, PerfectL2, PerfectL1, PerfectAll are the four runs' reports.
	Base, PerfectL2, PerfectL1, PerfectAll system.Report
}

// BreakdownConfigs returns the study's four configurations in fixed order:
// the real machine, a machine whose L2 never misses, one whose L1s and
// TLBs also never miss, and one with perfect branch prediction on top.
func BreakdownConfigs(cfg config.Config) []config.Config {
	return []config.Config{
		cfg.WithPerfect(config.Perfect{}),
		cfg.WithPerfect(config.Perfect{L2: true}),
		cfg.WithPerfect(config.Perfect{L2: true, L1: true, TLB: true}),
		cfg.WithPerfect(config.Perfect{L2: true, L1: true, TLB: true, Branch: true}),
	}
}

// AssembleBreakdown attributes execution time from the four reports of the
// BreakdownConfigs runs (same order). The cycle-count deltas attribute
// execution time exactly as section 4.2.
func AssembleBreakdown(workload string, reports []system.Report) BreakdownResult {
	res := BreakdownResult{Workload: workload}
	res.Base, res.PerfectL2, res.PerfectL1, res.PerfectAll =
		reports[0], reports[1], reports[2], reports[3]
	res.Breakdown = stats.FromCycles(
		res.Base.MeasuredCycles(), res.PerfectL2.MeasuredCycles(),
		res.PerfectL1.MeasuredCycles(), res.PerfectAll.MeasuredCycles())
	return res
}

// Breakdown runs the four-model perfect-ization study on one workload.
// The four runs are independent and execute on the scheduler.
func (m *Model) Breakdown(p workload.Profile, opt RunOptions) (BreakdownResult, error) {
	return m.BreakdownContext(context.Background(), p, opt)
}

// BreakdownContext is Breakdown with a cancellation point shared by all
// four scheduled runs.
func (m *Model) BreakdownContext(ctx context.Context, p workload.Profile, opt RunOptions) (BreakdownResult, error) {
	cfgs := BreakdownConfigs(m.cfg)
	reports, err := sched.MapCtx(ctx, len(cfgs), sched.Options{Workers: opt.Workers},
		func(ctx context.Context, i int) (system.Report, error) {
			sub, err := NewModel(cfgs[i])
			if err != nil {
				return system.Report{}, err
			}
			return sub.RunContext(ctx, p, opt)
		})
	if err != nil {
		return BreakdownResult{Workload: p.Name}, err
	}
	return AssembleBreakdown(p.Name, reports), nil
}

// Version is one rung of the model-fidelity ladder the paper labels
// v1..v8 (Figure 19): each version models more of the machine, so the
// performance estimate generally decreases as fidelity improves — except
// where better modeling removes a pessimistic approximation (v5's detailed
// special-instruction modeling).
type Version struct {
	// Name is the paper-style label ("v1".."v8").
	Name string
	// Detail describes what the version adds.
	Detail string
	// Apply derives the version's configuration from the final machine.
	Apply func(config.Config) config.Config
}

// Versions returns the ladder, oldest first. v8 is the final model.
func Versions() []Version {
	lad := func(f config.Fidelity, detailedSpecial bool) func(config.Config) config.Config {
		return func(c config.Config) config.Config {
			return c.WithFidelity(f, detailedSpecial)
		}
	}
	base := config.Fidelity{} // everything off
	flat := base
	flat.FlatMemory = true
	flat.FlatMemoryCycles = 22
	v2 := base // detailed latencies, no contention
	v3 := v2
	v3.BHTBubbles = true
	v4 := v3
	v4.BankConflicts = true
	v5 := v4
	v6 := v5
	v6.TLBModeled = true
	v7 := v6
	v7.BusContention = true
	v8 := config.FullFidelity()
	return []Version{
		{"v1", "flat-latency memory, idealized front end", lad(flat, false)},
		{"v2", "detailed cache/memory latencies", lad(v2, false)},
		{"v3", "BHT access bubbles on taken branches", lad(v3, false)},
		{"v4", "L1 operand cache bank conflicts", lad(v4, false)},
		{"v5", "detailed special-instruction modeling", lad(v5, true)},
		{"v6", "TLB miss modeling", lad(v6, true)},
		{"v7", "bus and memory-bank contention", lad(v7, true)},
		{"v8", "MP coherence transfer timing (final model)", lad(v8, true)},
	}
}

// Aggregate summarizes repeated runs of one configuration over several
// trace samples (different seeds), the analogue of the paper sampling
// multiple windows of its TPC-C traces.
type Aggregate struct {
	// Reports holds the per-seed reports.
	Reports []system.Report
	// MeanIPC and StdIPC summarize the IPC distribution.
	MeanIPC, StdIPC float64
}

// RunMany runs the profile over n consecutive seeds starting at opt.Seed.
// The seeds are independent samples and execute on the scheduler; reports
// stay in seed order regardless of completion order.
func (m *Model) RunMany(p workload.Profile, opt RunOptions, n int) (Aggregate, error) {
	return m.RunManyContext(context.Background(), p, opt, n)
}

// RunManyContext is RunMany with a cancellation point shared by all
// scheduled seeds.
func (m *Model) RunManyContext(ctx context.Context, p workload.Profile, opt RunOptions, n int) (Aggregate, error) {
	if n < 1 {
		n = 1
	}
	opt.defaults()
	var agg Aggregate
	reports, err := sched.MapCtx(ctx, n, sched.Options{Workers: opt.Workers},
		func(ctx context.Context, i int) (system.Report, error) {
			o := opt
			o.Seed = opt.Seed + int64(i)
			return m.RunContext(ctx, p, o)
		})
	if err != nil {
		return agg, err
	}
	ipcs := make([]float64, 0, n)
	for _, r := range reports {
		agg.Reports = append(agg.Reports, r)
		ipcs = append(ipcs, r.IPC())
	}
	agg.MeanIPC = stats.Mean(ipcs)
	var ss float64
	for _, x := range ipcs {
		d := x - agg.MeanIPC
		ss += d * d
	}
	if len(ipcs) > 1 {
		agg.StdIPC = math.Sqrt(ss / float64(len(ipcs)-1))
	}
	return agg, nil
}
