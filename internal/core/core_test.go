package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"sparc64v/internal/config"
	"sparc64v/internal/trace"
	"sparc64v/internal/workload"
)

func testOpt() RunOptions { return RunOptions{Insts: 60_000} }

func TestNewModelValidates(t *testing.T) {
	bad := config.Base()
	bad.CPUs = 0
	if _, err := NewModel(bad); err == nil {
		t.Fatal("NewModel accepted invalid config")
	}
	m, err := NewModel(config.Base())
	if err != nil {
		t.Fatal(err)
	}
	if m.Config().Name != "sparc64v.base" {
		t.Errorf("Config().Name = %q", m.Config().Name)
	}
}

func TestRunDefaults(t *testing.T) {
	m, _ := NewModel(config.Base())
	r, err := m.Run(workload.SPECint95(), testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC() <= 0 || r.HitCap {
		t.Fatalf("bad report: %+v", r)
	}
	if r.Workload != "SPECint95" {
		t.Errorf("Workload = %q", r.Workload)
	}
}

func TestRunSourcesMismatch(t *testing.T) {
	m, _ := NewModel(config.Base().WithCPUs(2))
	_, err := m.RunSources("x", []trace.Source{workload.New(workload.SPECint95(), 1, 0)}, testOpt())
	if err == nil {
		t.Fatal("RunSources accepted wrong source count")
	}
}

func TestBreakdownSharesSane(t *testing.T) {
	m, _ := NewModel(config.Base())
	br, err := m.Breakdown(workload.SPECint95(), testOpt())
	if err != nil {
		t.Fatal(err)
	}
	b := br.Breakdown
	if b.Core <= 0 || b.Sum() < 0.9 || b.Sum() > 1.1 {
		t.Fatalf("breakdown malformed: %+v (sum=%v)", b, b.Sum())
	}
	// Perfect-ization must be monotone in cycles.
	if !(br.Base.MeasuredCycles() >= br.PerfectL2.MeasuredCycles() &&
		br.PerfectL2.MeasuredCycles() >= br.PerfectL1.MeasuredCycles() &&
		br.PerfectL1.MeasuredCycles() >= br.PerfectAll.MeasuredCycles()) {
		t.Fatalf("perfect ladder not monotone: %d %d %d %d",
			br.Base.MeasuredCycles(), br.PerfectL2.MeasuredCycles(),
			br.PerfectL1.MeasuredCycles(), br.PerfectAll.MeasuredCycles())
	}
}

// The headline workload contrasts of Figure 7 must hold: TPC-C is
// dominated by L2-miss (sx) stalls; SPECfp95 by core execution; SPECint95
// spends far more on branches than SPECfp95.
func TestBreakdownWorkloadContrasts(t *testing.T) {
	m, _ := NewModel(config.Base())
	opt := RunOptions{Insts: 120_000}
	tpcc, err := m.Breakdown(workload.TPCC(), opt)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := m.Breakdown(workload.SPECfp95(), opt)
	if err != nil {
		t.Fatal(err)
	}
	ints, err := m.Breakdown(workload.SPECint95(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if tpcc.Breakdown.SX < 0.25 {
		t.Errorf("TPC-C sx share %.2f too small", tpcc.Breakdown.SX)
	}
	if tpcc.Breakdown.SX <= ints.Breakdown.SX || tpcc.Breakdown.SX <= fp.Breakdown.SX {
		t.Error("TPC-C sx share not the largest")
	}
	if fp.Breakdown.Core < 0.55 {
		t.Errorf("SPECfp95 core share %.2f too small", fp.Breakdown.Core)
	}
	if ints.Breakdown.Branch < 3*fp.Breakdown.Branch {
		t.Errorf("SPECint95 branch share %.2f not ≫ SPECfp95 %.2f",
			ints.Breakdown.Branch, fp.Breakdown.Branch)
	}
}

func TestVersionsLadder(t *testing.T) {
	vs := Versions()
	if len(vs) != 8 {
		t.Fatalf("got %d versions", len(vs))
	}
	for i, v := range vs {
		if !strings.HasPrefix(v.Name, "v") || v.Detail == "" {
			t.Errorf("version %d malformed: %+v", i, v)
		}
		cfg := v.Apply(config.Base())
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s config invalid: %v", v.Name, err)
		}
	}
	// v1 is flat-memory; v8 is full fidelity.
	if !vs[0].Apply(config.Base()).Fidelity.FlatMemory {
		t.Error("v1 not flat memory")
	}
	v8 := vs[7].Apply(config.Base())
	if v8.Fidelity != config.FullFidelity() || !v8.CPU.SpecialDetailed {
		t.Error("v8 not full fidelity")
	}
	// v5 switches special-instruction modeling on.
	if vs[4].Apply(config.Base()).CPU.SpecialDetailed != true ||
		vs[3].Apply(config.Base()).CPU.SpecialDetailed != false {
		t.Error("v5 boundary wrong")
	}
}

// The ladder's defining property: estimates tighten (cycles grow) with
// fidelity, except the v5 correction which removes pessimism.
func TestVersionEstimatesTrend(t *testing.T) {
	opt := RunOptions{Insts: 80_000, Seed: 7}
	var cycles []uint64
	for _, v := range Versions() {
		m, err := NewModel(v.Apply(config.Base()))
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run(workload.SPECint2000(), opt)
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		cycles = append(cycles, r.MeasuredCycles())
	}
	// v1 (flat, idealized) must estimate the highest performance.
	for i := 1; i < len(cycles); i++ {
		if cycles[0] > cycles[i] {
			t.Errorf("v1 cycles %d above v%d cycles %d", cycles[0], i+1, cycles[i])
		}
	}
	// v5 must run faster than v4 (pessimistic special penalty removed).
	if cycles[4] >= cycles[3] {
		t.Errorf("v5 cycles %d not below v4 %d", cycles[4], cycles[3])
	}
	// v8 (final) must be the slowest or near it.
	if cycles[7] < cycles[1] {
		t.Errorf("v8 cycles %d below v2 %d", cycles[7], cycles[1])
	}
}

func TestRunMany(t *testing.T) {
	m, _ := NewModel(config.Base())
	agg, err := m.RunMany(workload.SPECint95(), RunOptions{Insts: 30_000, Seed: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Reports) != 3 {
		t.Fatalf("reports: %d", len(agg.Reports))
	}
	if agg.MeanIPC <= 0 {
		t.Fatal("mean IPC not positive")
	}
	// Different seeds produce different samples (non-zero spread), but the
	// workload is statistically stable (spread well under the mean).
	if agg.StdIPC <= 0 || agg.StdIPC > agg.MeanIPC/4 {
		t.Errorf("IPC spread %.4f implausible for mean %.3f", agg.StdIPC, agg.MeanIPC)
	}
	// n < 1 clamps.
	one, err := m.RunMany(workload.SPECint95(), RunOptions{Insts: 20_000}, 0)
	if err != nil || len(one.Reports) != 1 || one.StdIPC != 0 {
		t.Fatalf("clamped RunMany: %v %d", err, len(one.Reports))
	}
}

// TestRunContextCancelPrompt is the model-level half of the run-lifecycle
// contract: cancelling mid-run surfaces ctx.Err() (wrapped) promptly
// instead of simulating to completion.
func TestRunContextCancelPrompt(t *testing.T) {
	m, _ := NewModel(config.Base())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// A run long enough that completion inside the test timeout would be
	// implausible on any host.
	_, err := m.RunContext(ctx, workload.SPECint95(), RunOptions{Insts: 200_000_000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext err = %v, want wrapped context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
}

// TestRunManyContextCancelled verifies the scheduled-seed fan-out stops
// handing out seeds once the context fires.
func TestRunManyContextCancelled(t *testing.T) {
	m, _ := NewModel(config.Base())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := m.RunManyContext(ctx, workload.SPECint95(), RunOptions{Insts: 40_000, Workers: 2}, 6)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunManyContext err = %v", err)
	}
}

// TestBreakdownContextMatchesBreakdown guards determinism of the ctx
// variant when the context never fires.
func TestBreakdownContextMatchesBreakdown(t *testing.T) {
	m, _ := NewModel(config.Base())
	a, err := m.Breakdown(workload.SPECint95(), testOpt())
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.BreakdownContext(context.Background(), workload.SPECint95(), testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if a.Breakdown != b.Breakdown {
		t.Fatalf("Breakdown %+v vs BreakdownContext %+v", a.Breakdown, b.Breakdown)
	}
}
