package core

import (
	"encoding/json"
	"testing"
	"time"

	"sparc64v/internal/config"
	"sparc64v/internal/obs"
	"sparc64v/internal/workload"
)

// TestInstrumentationIsInvisible pins the obs design rule: profiling may
// observe a simulation but never change it. The same run with and without
// a collector must produce a byte-identical Report.
func TestInstrumentationIsInvisible(t *testing.T) {
	m, err := NewModel(config.Base())
	if err != nil {
		t.Fatal(err)
	}
	p := workload.SPECint95()
	opt := RunOptions{Insts: 30_000}

	plain, err := m.Run(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	opt.Obs = col
	profiled, err := m.Run(p, opt)
	if err != nil {
		t.Fatal(err)
	}

	a, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(profiled)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("profiling changed the Report:\nplain:    %s\nprofiled: %s", a, b)
	}

	// And the profile itself must be a faithful transcript of the run.
	profs := col.Profiles()
	if len(profs) != 1 {
		t.Fatalf("profiles = %d, want 1", len(profs))
	}
	var committed, cycles int64
	for _, c := range profs[0].Counters {
		switch c.Name {
		case "committed":
			committed = c.Value
		case "cycles":
			cycles = c.Value
		}
	}
	if uint64(committed) != profiled.Committed || uint64(cycles) != profiled.Cycles {
		t.Errorf("profile counters (committed=%d cycles=%d) disagree with report (%d, %d)",
			committed, cycles, profiled.Committed, profiled.Cycles)
	}
}

// TestInstrumentationOverheadBound pins that enabling profiling costs less
// than 5% wall time on the repo's standard 1M-instruction smoke run. The
// span adds four clock reads and ~20 map writes to a ~10^8-operation
// simulation, so anything over the bound means a hot-path regression (an
// accidental per-cycle observation, say), not noise — but single-core CI
// hosts are noisy, so the comparison interleaves A/B runs, takes the
// minimum of each (the classic noise-robust estimator), and allows a small
// absolute slack for clock granularity.
func TestInstrumentationOverheadBound(t *testing.T) {
	insts := 1_000_000
	if testing.Short() || raceEnabled {
		insts = 200_000
	}
	m, err := NewModel(config.Base())
	if err != nil {
		t.Fatal(err)
	}
	p := workload.SPECint95()

	timeRun := func(col *obs.Collector) time.Duration {
		opt := RunOptions{Insts: insts, Obs: col}
		t0 := time.Now()
		if _, err := m.Run(p, opt); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}

	const bound = 1.05
	slack := 25 * time.Millisecond
	minOff := time.Duration(1<<63 - 1)
	minOn := minOff
	// Three interleaved pairs normally decide it; up to two more pairs
	// absorb a descheduled run before we call it a regression.
	for pair := 0; pair < 5; pair++ {
		if d := timeRun(nil); d < minOff {
			minOff = d
		}
		if d := timeRun(obs.NewCollector()); d < minOn {
			minOn = d
		}
		if pair >= 2 && float64(minOn) <= float64(minOff)*bound+float64(slack) {
			break
		}
	}
	if float64(minOn) > float64(minOff)*bound+float64(slack) {
		t.Errorf("instrumented run %.3fs vs plain %.3fs: overhead %.1f%% exceeds 5%%",
			minOn.Seconds(), minOff.Seconds(),
			100*(float64(minOn)/float64(minOff)-1))
	}
}
