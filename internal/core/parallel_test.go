package core

import (
	"testing"

	"sparc64v/internal/config"
	"sparc64v/internal/workload"
)

// TestRunManyParallelMatchesSerial pins the scheduler contract at the
// harness level: fanning the seed sweep onto workers must reproduce the
// serial reports seed for seed, in order.
func TestRunManyParallelMatchesSerial(t *testing.T) {
	m, err := NewModel(config.Base())
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	opt := RunOptions{Insts: 20_000, Workers: 1}
	serial, err := m.RunMany(workload.SPECint95(), opt, n)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = n
	parallel, err := m.RunMany(workload.SPECint95(), opt, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Reports) != n || len(parallel.Reports) != n {
		t.Fatalf("report counts: serial %d, parallel %d", len(serial.Reports), len(parallel.Reports))
	}
	for i := range serial.Reports {
		s, p := serial.Reports[i], parallel.Reports[i]
		if s.Cycles != p.Cycles || s.Committed != p.Committed {
			t.Errorf("seed %d: serial %d cycles/%d committed, parallel %d cycles/%d committed",
				i, s.Cycles, s.Committed, p.Cycles, p.Committed)
		}
	}
	if serial.MeanIPC != parallel.MeanIPC || serial.StdIPC != parallel.StdIPC {
		t.Errorf("aggregate stats differ: serial %.9f±%.9f, parallel %.9f±%.9f",
			serial.MeanIPC, serial.StdIPC, parallel.MeanIPC, parallel.StdIPC)
	}
}

// TestBreakdownParallelMatchesSerial does the same for the four-run
// perfect-ization study.
func TestBreakdownParallelMatchesSerial(t *testing.T) {
	m, err := NewModel(config.Base())
	if err != nil {
		t.Fatal(err)
	}
	opt := RunOptions{Insts: 20_000, Workers: 1}
	serial, err := m.Breakdown(workload.TPCC(), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	parallel, err := m.Breakdown(workload.TPCC(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Breakdown != parallel.Breakdown {
		t.Errorf("breakdown differs: serial %+v, parallel %+v", serial.Breakdown, parallel.Breakdown)
	}
	if serial.Base.Cycles != parallel.Base.Cycles ||
		serial.PerfectAll.Cycles != parallel.PerfectAll.Cycles {
		t.Errorf("cycle counts differ: base %d/%d, perfect-all %d/%d",
			serial.Base.Cycles, parallel.Base.Cycles,
			serial.PerfectAll.Cycles, parallel.PerfectAll.Cycles)
	}
}
