//go:build !race

package core

// raceEnabled reports that this test binary was built with -race; timing
// sensitive tests shrink their workloads accordingly.
const raceEnabled = false
