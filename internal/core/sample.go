package core

// Sampled simulation (SMARTS-style systematic sampling).
//
// A sampled run alternates three modes over the trace:
//
//	fast-forward      functional execution (cpu.FastForward): caches, TLBs
//	                  and the branch predictor stay warm; no cycles pass.
//	detailed warm-up  the out-of-order model runs but its statistics are
//	                  discarded — it re-establishes the pipeline, queue and
//	                  MSHR state the functional mode does not track.
//	measurement       the out-of-order model runs and the window's counter
//	                  deltas accumulate into the final Report.
//
// Measurement is snapshot-based: counters are read before and after each
// window and the difference accumulated, so warm-up and fast-forward
// pollution of shared counters never leaks into results. The headline CPI
// is the ratio estimator Σcycles/Σcommitted over all windows; the
// per-window CPI spread yields the reported confidence bound.
//
// The engine is a stepwise state machine (sampledRun): each step performs
// one bounded action — a fast-forward chunk on one CPU, or one detailed
// window. runSampled drives one machine's steps back to back; the lockstep
// batch driver (batch.go) interleaves steps of N machines against a shared
// trace ring. Both drivers execute the identical action sequence per
// machine, so sampled Reports are byte-identical serial vs batched and at
// any harness worker count, exactly like full runs.

import (
	"fmt"
	"math"

	"context"

	"sparc64v/internal/bpred"
	"sparc64v/internal/cache"
	"sparc64v/internal/coherence"
	"sparc64v/internal/config"
	"sparc64v/internal/cpu"
	"sparc64v/internal/obs"
	"sparc64v/internal/stats"
	"sparc64v/internal/system"
	"sparc64v/internal/trace"
)

// sampleGate budgets a CPU's trace source: Next serves at most budget
// records, so a detailed window ends (the CPU drains) after exactly the
// window's instruction count — or earlier when the underlying trace dries
// up, which dry latches.
type sampleGate struct {
	src    trace.Source
	budget int
	dry    bool
}

// Next implements trace.Source.
func (g *sampleGate) Next(r *trace.Record) bool {
	if g.budget <= 0 || g.dry {
		return false
	}
	if !g.src.Next(r) {
		g.dry = true
		return false
	}
	g.budget--
	return true
}

// cpuSnap is one CPU's counter snapshot (core, predictor, caches, TLBs).
type cpuSnap struct {
	core              cpu.Stats
	branch            bpred.Stats
	l1i, l1d, l2      cache.Stats
	itlbAcc, itlbMiss uint64
	dtlbAcc, dtlbMiss uint64
}

// sysSnap is a whole-machine counter snapshot.
type sysSnap struct {
	cpus              []cpuSnap
	coh               coherence.Stats
	busWait, dramWait uint64
}

func snapshot(sys *system.System, ncpu int) sysSnap {
	s := sysSnap{cpus: make([]cpuSnap, ncpu)}
	for i := 0; i < ncpu; i++ {
		c, chip := sys.CPU(i), sys.Chip(i)
		cs := &s.cpus[i]
		cs.core = c.Stats
		if p := c.Predictor(); p != nil {
			cs.branch = p.Stats
		}
		cs.l1i, cs.l1d, cs.l2 = chip.L1I.Stats, chip.L1D.Stats, chip.L2.Stats
		cs.itlbAcc, cs.itlbMiss = chip.ITLB.Accesses, chip.ITLB.Misses
		cs.dtlbAcc, cs.dtlbMiss = chip.DTLB.Accesses, chip.DTLB.Misses
	}
	s.coh = sys.Controller().Stats
	s.busWait = sys.Bus().WaitCycles()
	s.dramWait = sys.DRAM().WaitCycles()
	return s
}

// sub returns the field-wise counter difference s - o.
func (s sysSnap) sub(o sysSnap) sysSnap {
	d := sysSnap{cpus: make([]cpuSnap, len(s.cpus))}
	for i := range s.cpus {
		a, b := &s.cpus[i], &o.cpus[i]
		d.cpus[i] = cpuSnap{
			core:     a.core.Sub(b.core),
			branch:   a.branch.Sub(b.branch),
			l1i:      a.l1i.Sub(b.l1i),
			l1d:      a.l1d.Sub(b.l1d),
			l2:       a.l2.Sub(b.l2),
			itlbAcc:  a.itlbAcc - b.itlbAcc,
			itlbMiss: a.itlbMiss - b.itlbMiss,
			dtlbAcc:  a.dtlbAcc - b.dtlbAcc,
			dtlbMiss: a.dtlbMiss - b.dtlbMiss,
		}
	}
	d.coh = s.coh.Sub(o.coh)
	d.busWait = s.busWait - o.busWait
	d.dramWait = s.dramWait - o.dramWait
	return d
}

// add returns the field-wise counter sum s + o.
func (s sysSnap) add(o sysSnap) sysSnap {
	a := sysSnap{cpus: make([]cpuSnap, len(s.cpus))}
	for i := range s.cpus {
		x, y := &s.cpus[i], &o.cpus[i]
		a.cpus[i] = cpuSnap{
			core:     x.core.Add(y.core),
			branch:   x.branch.Add(y.branch),
			l1i:      x.l1i.Add(y.l1i),
			l1d:      x.l1d.Add(y.l1d),
			l2:       x.l2.Add(y.l2),
			itlbAcc:  x.itlbAcc + y.itlbAcc,
			itlbMiss: x.itlbMiss + y.itlbMiss,
			dtlbAcc:  x.dtlbAcc + y.dtlbAcc,
			dtlbMiss: x.dtlbMiss + y.dtlbMiss,
		}
	}
	a.coh = s.coh.Add(o.coh)
	a.busWait = s.busWait + o.busWait
	a.dramWait = s.dramWait + o.dramWait
	return a
}

// committed sums committed instructions across CPUs.
func (s sysSnap) committed() uint64 {
	var n uint64
	for i := range s.cpus {
		n += s.cpus[i].core.Committed
	}
	return n
}

// cpi returns aggregate cycles per committed instruction.
func (s sysSnap) cpi() float64 {
	var cyc, com uint64
	for i := range s.cpus {
		cyc += s.cpus[i].core.Cycles
		com += s.cpus[i].core.Committed
	}
	if com == 0 {
		return 0
	}
	return float64(cyc) / float64(com)
}

// ffPollStride is how many fast-forwarded records pass between context
// polls — the functional-mode analogue of system.RunContext's cycle-stride
// poll.
const ffPollStride = 8192

// ffChunk bounds one step's fast-forward work (records on one CPU). The
// chunk keeps a batched member's single step — and therefore its demand on
// the shared trace ring — bounded; a serial run just takes the chunks back
// to back.
const ffChunk = 4096

// sampledRun stages of the state machine. A run cycles
// FF(warmup+offset) → [ warm window → measure window → FF(gap) ]* → done,
// advancing CPU by CPU within each fast-forward region (the same order the
// loop-based driver used, which matters under MP: functional stores
// invalidate peer cache lines through the coherence controller, so the
// inter-CPU execution order is part of the result).
const (
	stageFF = iota
	stageWarm
	stageMeasure
	stageDone
)

// sampledRun is one machine's sampled-simulation state: the gated sources,
// the functional executors, the accumulated measurement snapshots, and the
// state-machine position. It is advanced by repeated step() calls and
// closed out by finish().
type sampledRun struct {
	m     *Model
	label string
	opt   RunOptions
	sc    config.Sampling
	sp    *obs.Span
	sys   *system.System
	gates []*sampleGate
	ffs   []*cpu.FastForward
	ncpu  int

	simErr error
	capped bool

	stage  int
	ffCPU  int // CPU currently fast-forwarding
	ffLeft int // records left for that CPU
	ffN    int // records per CPU in the current fast-forward region
	ffGap  int // records between a measure window and the next interval

	pre            sysSnap // snapshot at the current measure window's start
	preCyc         uint64
	start          sysSnap
	acc            sysSnap
	windows        []float64
	measuredCycles uint64
}

// newSampledRun validates the schedule and builds the machine over srcs.
func newSampledRun(m *Model, label string, srcs []trace.Source, opt RunOptions) (*sampledRun, error) {
	sc := opt.Sample
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	r := &sampledRun{m: m, label: label, opt: opt, sc: sc}
	r.sp = opt.Obs.StartSpan("run", label)
	cfg := m.cfg
	// The per-window detailed warm-up replaces the classic warm-up reset;
	// a mid-run resetMeasurement would corrupt snapshot deltas.
	cfg.WarmupInsts = 0
	endBuild := r.sp.Phase(obs.PhaseBuild)
	r.gates = make([]*sampleGate, len(srcs))
	gsrcs := make([]trace.Source, len(srcs))
	for i, s := range srcs {
		r.gates[i] = &sampleGate{src: s}
		gsrcs[i] = r.gates[i]
	}
	sys, err := system.New(cfg, gsrcs)
	if err != nil {
		endBuild()
		return nil, err
	}
	r.sys = sys
	r.ncpu = cfg.CPUs
	r.ffs = make([]*cpu.FastForward, r.ncpu)
	for i := 0; i < r.ncpu; i++ {
		r.ffs[i] = cpu.NewFastForward(sys.CPU(i))
	}
	endBuild()

	r.ffGap = sc.IntervalInsts - sc.WarmupInsts - sc.MeasureInsts
	r.start = snapshot(sys, r.ncpu)
	r.acc = sysSnap{cpus: make([]cpuSnap, r.ncpu)}

	// Fast-forward the run-level warm-up region plus the schedule's offset
	// before the first interval. A full run excludes its first opt.Warmup
	// committed instructions from statistics (the cold-start transient);
	// sampling the same population is what makes sampled and full reports
	// comparable — without this skip the early windows measure cold caches
	// the full run deliberately discards.
	r.setFF(int(opt.Warmup) + sc.OffsetInsts)
	r.norm()
	return r, nil
}

// setFF enters a fast-forward region of n records per CPU.
func (r *sampledRun) setFF(n int) {
	r.stage = stageFF
	r.ffN = n
	r.ffCPU = 0
	r.ffLeft = n
}

// allDry reports whether every CPU's trace is exhausted.
func (r *sampledRun) allDry() bool {
	for _, g := range r.gates {
		if !g.dry {
			return false
		}
	}
	return true
}

// norm advances the state machine past zero-work transitions, so that
// afterwards either stage == stageDone or the next step() performs real
// work whose trace demand needRecords() describes. A cap does not stop a
// pending fast-forward region (only windows respect it), matching the
// classic driver's control flow; a cancellation stops everything.
func (r *sampledRun) norm() {
	for {
		if r.stage == stageDone {
			return
		}
		if r.simErr != nil {
			r.stage = stageDone
			return
		}
		if r.stage != stageFF {
			return
		}
		if r.ffLeft > 0 && !r.gates[r.ffCPU].dry {
			return
		}
		if r.ffLeft > 0 { // dry CPU: nothing to fast-forward
			r.ffLeft = 0
		}
		if r.ffCPU+1 < r.ncpu {
			r.ffCPU++
			r.ffLeft = r.ffN
			continue
		}
		// Fast-forward region complete: the inter-interval loop condition.
		if r.capped || r.allDry() {
			r.stage = stageDone
			return
		}
		r.stage = stageWarm
		return
	}
}

// needRecords returns which CPU's source the next step reads and the most
// records it consumes: (cpu, n) for a fast-forward chunk on one CPU, or
// (-1, n) for a detailed window drawing up to n records from every CPU.
// The batch driver checks the shared ring can serve that demand before
// stepping; a serial run never asks.
func (r *sampledRun) needRecords() (int, int) {
	switch r.stage {
	case stageFF:
		n := r.ffLeft
		if n > ffChunk {
			n = ffChunk
		}
		return r.ffCPU, n
	case stageWarm:
		return -1, r.sc.WarmupInsts
	case stageMeasure:
		return -1, r.sc.MeasureInsts
	}
	return -1, 0
}

// step performs the run's next bounded action: one fast-forward chunk on
// one CPU, or one detailed window. Callers loop until stage == stageDone.
func (r *sampledRun) step(ctx context.Context) {
	switch r.stage {
	case stageFF:
		n := r.ffLeft
		if n > ffChunk {
			n = ffChunk
		}
		r.fastForwardOne(ctx, r.ffCPU, n)
		r.ffLeft -= n
	case stageWarm:
		r.runWindow(ctx, r.sc.WarmupInsts)
		r.pre = snapshot(r.sys, r.ncpu)
		r.preCyc = r.sys.Cycle()
		r.stage = stageMeasure
	case stageMeasure:
		r.runWindow(ctx, r.sc.MeasureInsts)
		d := snapshot(r.sys, r.ncpu).sub(r.pre)
		if d.committed() > 0 {
			r.acc = r.acc.add(d)
			r.measuredCycles += r.sys.Cycle() - r.preCyc
			r.windows = append(r.windows, d.cpi())
		}
		r.setFF(r.ffGap)
	}
	r.norm()
}

// cancel aborts the run with err (the batch driver's external cancellation
// path; a serial run surfaces cancellation through step's ctx instead).
func (r *sampledRun) cancel(err error) {
	if r.simErr == nil {
		r.simErr = err
	}
	r.stage = stageDone
}

// fastForwardOne advances CPU i by up to n records functionally.
func (r *sampledRun) fastForwardOne(ctx context.Context, i, n int) {
	if n <= 0 || r.simErr != nil {
		return
	}
	g := r.gates[i]
	if g.dry {
		return
	}
	end := r.sp.Phase(obs.PhaseFastForward)
	defer end()
	done := ctx.Done()
	var rec trace.Record
	for k := 0; k < n; k++ {
		if done != nil && k%ffPollStride == 0 {
			select {
			case <-done:
				r.simErr = ctx.Err()
				return
			default:
			}
		}
		if !g.src.Next(&rec) {
			g.dry = true
			return
		}
		r.ffs[i].Step(&rec)
	}
}

// runWindow gives every live CPU a budget of n records and runs the
// detailed machine until it drains again.
func (r *sampledRun) runWindow(ctx context.Context, n int) {
	if n <= 0 || r.simErr != nil || r.capped {
		return
	}
	live := false
	for i, g := range r.gates {
		if g.dry {
			continue
		}
		g.budget = n
		r.sys.CPU(i).ResumeSource()
		live = true
	}
	if !live {
		return
	}
	end := r.sp.Phase(obs.PhaseSim)
	_, c, err := r.sys.RunContext(ctx, r.opt.MaxCycles)
	end()
	if err != nil {
		r.simErr = err
		return
	}
	if c {
		r.capped = true
	}
}

// finish assembles the Report: the accumulated window deltas become the
// counter blocks, and Sampling carries the schedule, mode split and error
// model. Call exactly once, after stage reaches stageDone.
func (r *sampledRun) finish() (system.Report, error) {
	sc, opt := r.sc, r.opt
	ncpu := r.ncpu

	// Degenerate schedules (trace shorter than one warm-up window, window
	// longer than the trace): no measurement window completed any commits,
	// so fall back to everything the detailed model did simulate.
	if len(r.windows) == 0 {
		r.acc = snapshot(r.sys, ncpu).sub(r.start)
		r.measuredCycles = r.sys.Cycle()
		if r.acc.committed() > 0 {
			r.windows = append(r.windows, r.acc.cpi())
		}
	}

	endReport := r.sp.Phase(obs.PhaseReport)
	rep := system.Report{Name: r.m.cfg.Name, Workload: r.label, Cycles: r.measuredCycles, HitCap: r.capped}
	var measCycles uint64
	for i := 0; i < ncpu; i++ {
		cs := &r.acc.cpus[i]
		rep.CPUs = append(rep.CPUs, system.CPUReport{
			Core:         cs.core,
			Branch:       cs.branch,
			L1I:          cs.l1i,
			L1D:          cs.l1d,
			L2:           cs.l2,
			ITLBMissRate: stats.Ratio(cs.itlbMiss, cs.itlbAcc),
			DTLBMissRate: stats.Ratio(cs.dtlbMiss, cs.dtlbAcc),
		})
		rep.Committed += cs.core.Committed
		measCycles += cs.core.Cycles
	}
	rep.Coherence = r.acc.coh
	rep.BusWaitCycles = r.acc.busWait
	rep.DRAMWaitCycles = r.acc.dramWait

	var ffInsts, detInsts uint64
	for i := 0; i < ncpu; i++ {
		ffInsts += r.ffs[i].Insts
		detInsts += r.sys.CPU(i).Stats.Committed
	}
	info := &system.SamplingInfo{
		Interval:       sc.IntervalInsts,
		Warmup:         sc.WarmupInsts,
		Measure:        sc.MeasureInsts,
		Offset:         sc.OffsetInsts,
		Windows:        len(r.windows),
		FastForwarded:  ffInsts,
		DetailedInsts:  detInsts,
		MeasuredInsts:  rep.Committed,
		DetailedCycles: r.sys.Cycle(),
	}
	if n := len(r.windows); n > 0 {
		info.CPIMean = stats.Mean(r.windows)
		if n > 1 {
			var ss float64
			for _, x := range r.windows {
				d := x - info.CPIMean
				ss += d * d
			}
			info.CPIStd = math.Sqrt(ss / float64(n-1))
			info.CPIHalf95 = 1.96 * info.CPIStd / math.Sqrt(float64(n))
		}
	}
	sanitizeSampling(info)
	if rep.Committed > 0 {
		cpi := float64(measCycles) / float64(rep.Committed)
		perCPU := float64(ffInsts+detInsts) / float64(ncpu)
		info.EstimatedCycles = uint64(cpi*perCPU + 0.5)
	}
	rep.Sampling = info

	meterInstrs.Add(detInsts)
	meterCycles.Add(r.sys.Cycle())
	meterRuns.Add(1)
	endReport()
	spanReport(r.sp, rep)
	r.sp.Add("ff_insts", int64(ffInsts))
	r.sp.Add("sample_windows", int64(len(r.windows)))
	r.sp.Finish()

	if r.simErr != nil {
		return rep, fmt.Errorf("core: %s/%s cancelled: %w", r.m.cfg.Name, r.label, r.simErr)
	}
	if r.capped {
		return rep, fmt.Errorf("core: %s/%s hit the %d-cycle cap", r.m.cfg.Name, r.label, opt.MaxCycles)
	}
	return rep, nil
}

// sanitizeSampling clamps the error-model fields to finite values.
// CPIStd/CPIHalf95 are left zero when Windows <= 1 (a single window has no
// variance estimate; n-1 == 0 would make the naive estimator NaN, and a
// NaN here breaks encoding/json marshaling of the whole Report, poisoning
// the runcache disk tier). Windows == 1 in the marshaled report is the
// explicit "no spread estimate" marker consumers should key on.
func sanitizeSampling(info *system.SamplingInfo) {
	if math.IsNaN(info.CPIMean) || math.IsInf(info.CPIMean, 0) {
		info.CPIMean = 0
	}
	if info.Windows <= 1 || math.IsNaN(info.CPIStd) || math.IsInf(info.CPIStd, 0) {
		info.CPIStd = 0
	}
	if info.Windows <= 1 || math.IsNaN(info.CPIHalf95) || math.IsInf(info.CPIHalf95, 0) {
		info.CPIHalf95 = 0
	}
}

// runSampled is the sampled-simulation driver behind RunSourcesContext
// (opt.Sample enabled). It returns a Report whose counter blocks cover the
// measurement windows and whose Sampling field carries the schedule, mode
// split and error model.
func (m *Model) runSampled(ctx context.Context, label string, srcs []trace.Source, opt RunOptions) (system.Report, error) {
	r, err := newSampledRun(m, label, srcs, opt)
	if err != nil {
		return system.Report{}, err
	}
	for r.stage != stageDone {
		r.step(ctx)
	}
	return r.finish()
}
