package core

// Sampled simulation (SMARTS-style systematic sampling).
//
// runSampled alternates three modes over the trace:
//
//	fast-forward      functional execution (cpu.FastForward): caches, TLBs
//	                  and the branch predictor stay warm; no cycles pass.
//	detailed warm-up  the out-of-order model runs but its statistics are
//	                  discarded — it re-establishes the pipeline, queue and
//	                  MSHR state the functional mode does not track.
//	measurement       the out-of-order model runs and the window's counter
//	                  deltas accumulate into the final Report.
//
// Measurement is snapshot-based: counters are read before and after each
// window and the difference accumulated, so warm-up and fast-forward
// pollution of shared counters never leaks into results. The headline CPI
// is the ratio estimator Σcycles/Σcommitted over all windows; the
// per-window CPI spread yields the reported confidence bound.
//
// The driver is strictly serial per run (windows depend on each other's
// machine state), so sampled Reports are byte-identical at any harness
// worker count, exactly like full runs.

import (
	"fmt"
	"math"

	"context"

	"sparc64v/internal/bpred"
	"sparc64v/internal/cache"
	"sparc64v/internal/coherence"
	"sparc64v/internal/cpu"
	"sparc64v/internal/obs"
	"sparc64v/internal/stats"
	"sparc64v/internal/system"
	"sparc64v/internal/trace"
)

// sampleGate budgets a CPU's trace source: Next serves at most budget
// records, so a detailed window ends (the CPU drains) after exactly the
// window's instruction count — or earlier when the underlying trace dries
// up, which dry latches.
type sampleGate struct {
	src    trace.Source
	budget int
	dry    bool
}

// Next implements trace.Source.
func (g *sampleGate) Next(r *trace.Record) bool {
	if g.budget <= 0 || g.dry {
		return false
	}
	if !g.src.Next(r) {
		g.dry = true
		return false
	}
	g.budget--
	return true
}

// cpuSnap is one CPU's counter snapshot (core, predictor, caches, TLBs).
type cpuSnap struct {
	core              cpu.Stats
	branch            bpred.Stats
	l1i, l1d, l2      cache.Stats
	itlbAcc, itlbMiss uint64
	dtlbAcc, dtlbMiss uint64
}

// sysSnap is a whole-machine counter snapshot.
type sysSnap struct {
	cpus              []cpuSnap
	coh               coherence.Stats
	busWait, dramWait uint64
}

func snapshot(sys *system.System, ncpu int) sysSnap {
	s := sysSnap{cpus: make([]cpuSnap, ncpu)}
	for i := 0; i < ncpu; i++ {
		c, chip := sys.CPU(i), sys.Chip(i)
		cs := &s.cpus[i]
		cs.core = c.Stats
		if p := c.Predictor(); p != nil {
			cs.branch = p.Stats
		}
		cs.l1i, cs.l1d, cs.l2 = chip.L1I.Stats, chip.L1D.Stats, chip.L2.Stats
		cs.itlbAcc, cs.itlbMiss = chip.ITLB.Accesses, chip.ITLB.Misses
		cs.dtlbAcc, cs.dtlbMiss = chip.DTLB.Accesses, chip.DTLB.Misses
	}
	s.coh = sys.Controller().Stats
	s.busWait = sys.Bus().WaitCycles()
	s.dramWait = sys.DRAM().WaitCycles()
	return s
}

// sub returns the field-wise counter difference s - o.
func (s sysSnap) sub(o sysSnap) sysSnap {
	d := sysSnap{cpus: make([]cpuSnap, len(s.cpus))}
	for i := range s.cpus {
		a, b := &s.cpus[i], &o.cpus[i]
		d.cpus[i] = cpuSnap{
			core:     a.core.Sub(b.core),
			branch:   a.branch.Sub(b.branch),
			l1i:      a.l1i.Sub(b.l1i),
			l1d:      a.l1d.Sub(b.l1d),
			l2:       a.l2.Sub(b.l2),
			itlbAcc:  a.itlbAcc - b.itlbAcc,
			itlbMiss: a.itlbMiss - b.itlbMiss,
			dtlbAcc:  a.dtlbAcc - b.dtlbAcc,
			dtlbMiss: a.dtlbMiss - b.dtlbMiss,
		}
	}
	d.coh = s.coh.Sub(o.coh)
	d.busWait = s.busWait - o.busWait
	d.dramWait = s.dramWait - o.dramWait
	return d
}

// add returns the field-wise counter sum s + o.
func (s sysSnap) add(o sysSnap) sysSnap {
	a := sysSnap{cpus: make([]cpuSnap, len(s.cpus))}
	for i := range s.cpus {
		x, y := &s.cpus[i], &o.cpus[i]
		a.cpus[i] = cpuSnap{
			core:     x.core.Add(y.core),
			branch:   x.branch.Add(y.branch),
			l1i:      x.l1i.Add(y.l1i),
			l1d:      x.l1d.Add(y.l1d),
			l2:       x.l2.Add(y.l2),
			itlbAcc:  x.itlbAcc + y.itlbAcc,
			itlbMiss: x.itlbMiss + y.itlbMiss,
			dtlbAcc:  x.dtlbAcc + y.dtlbAcc,
			dtlbMiss: x.dtlbMiss + y.dtlbMiss,
		}
	}
	a.coh = s.coh.Add(o.coh)
	a.busWait = s.busWait + o.busWait
	a.dramWait = s.dramWait + o.dramWait
	return a
}

// committed sums committed instructions across CPUs.
func (s sysSnap) committed() uint64 {
	var n uint64
	for i := range s.cpus {
		n += s.cpus[i].core.Committed
	}
	return n
}

// cpi returns aggregate cycles per committed instruction.
func (s sysSnap) cpi() float64 {
	var cyc, com uint64
	for i := range s.cpus {
		cyc += s.cpus[i].core.Cycles
		com += s.cpus[i].core.Committed
	}
	if com == 0 {
		return 0
	}
	return float64(cyc) / float64(com)
}

// ffPollStride is how many fast-forwarded records pass between context
// polls — the functional-mode analogue of system.RunContext's cycle-stride
// poll.
const ffPollStride = 8192

// runSampled is the sampled-simulation driver behind RunSourcesContext
// (opt.Sample enabled). It returns a Report whose counter blocks cover the
// measurement windows and whose Sampling field carries the schedule, mode
// split and error model.
func (m *Model) runSampled(ctx context.Context, label string, srcs []trace.Source, opt RunOptions) (system.Report, error) {
	sc := opt.Sample
	if err := sc.Validate(); err != nil {
		return system.Report{}, err
	}
	sp := opt.Obs.StartSpan("run", label)
	cfg := m.cfg
	// The per-window detailed warm-up replaces the classic warm-up reset;
	// a mid-run resetMeasurement would corrupt snapshot deltas.
	cfg.WarmupInsts = 0
	endBuild := sp.Phase(obs.PhaseBuild)
	gates := make([]*sampleGate, len(srcs))
	gsrcs := make([]trace.Source, len(srcs))
	for i, s := range srcs {
		gates[i] = &sampleGate{src: s}
		gsrcs[i] = gates[i]
	}
	sys, err := system.New(cfg, gsrcs)
	if err != nil {
		endBuild()
		return system.Report{}, err
	}
	ncpu := cfg.CPUs
	ffs := make([]*cpu.FastForward, ncpu)
	for i := 0; i < ncpu; i++ {
		ffs[i] = cpu.NewFastForward(sys.CPU(i))
	}
	endBuild()

	var simErr error
	var capped bool
	done := ctx.Done()

	// fastForward advances every live CPU n records functionally.
	fastForward := func(n int) {
		if n <= 0 || simErr != nil {
			return
		}
		end := sp.Phase(obs.PhaseFastForward)
		defer end()
		var rec trace.Record
		for i, g := range gates {
			if g.dry {
				continue
			}
			for k := 0; k < n; k++ {
				if done != nil && k%ffPollStride == 0 {
					select {
					case <-done:
						simErr = ctx.Err()
						return
					default:
					}
				}
				if !g.src.Next(&rec) {
					g.dry = true
					break
				}
				ffs[i].Step(&rec)
			}
		}
	}

	allDry := func() bool {
		for _, g := range gates {
			if !g.dry {
				return false
			}
		}
		return true
	}

	// runWindow gives every live CPU a budget of n records and runs the
	// detailed machine until it drains again. Returns false when the run
	// must stop (cancellation or cycle cap).
	runWindow := func(n int) bool {
		if n <= 0 || simErr != nil || capped {
			return simErr == nil && !capped
		}
		live := false
		for i, g := range gates {
			if g.dry {
				continue
			}
			g.budget = n
			sys.CPU(i).ResumeSource()
			live = true
		}
		if !live {
			return true
		}
		end := sp.Phase(obs.PhaseSim)
		_, c, err := sys.RunContext(ctx, opt.MaxCycles)
		end()
		if err != nil {
			simErr = err
			return false
		}
		if c {
			capped = true
			return false
		}
		return true
	}

	ffGap := sc.IntervalInsts - sc.WarmupInsts - sc.MeasureInsts
	start := snapshot(sys, ncpu)
	acc := sysSnap{cpus: make([]cpuSnap, ncpu)}
	var windows []float64
	var measuredCycles uint64

	// Fast-forward the run-level warm-up region plus the schedule's offset
	// before the first interval. A full run excludes its first opt.Warmup
	// committed instructions from statistics (the cold-start transient);
	// sampling the same population is what makes sampled and full reports
	// comparable — without this skip the early windows measure cold caches
	// the full run deliberately discards.
	fastForward(int(opt.Warmup) + sc.OffsetInsts)
	for simErr == nil && !capped && !allDry() {
		runWindow(sc.WarmupInsts)
		pre := snapshot(sys, ncpu)
		preCyc := sys.Cycle()
		runWindow(sc.MeasureInsts)
		d := snapshot(sys, ncpu).sub(pre)
		if d.committed() > 0 {
			acc = acc.add(d)
			measuredCycles += sys.Cycle() - preCyc
			windows = append(windows, d.cpi())
		}
		fastForward(ffGap)
	}

	// Degenerate schedules (trace shorter than one warm-up window, window
	// longer than the trace): no measurement window completed any commits,
	// so fall back to everything the detailed model did simulate.
	if len(windows) == 0 {
		acc = snapshot(sys, ncpu).sub(start)
		measuredCycles = sys.Cycle()
		if acc.committed() > 0 {
			windows = append(windows, acc.cpi())
		}
	}

	endReport := sp.Phase(obs.PhaseReport)
	rep := system.Report{Name: cfg.Name, Workload: label, Cycles: measuredCycles, HitCap: capped}
	var measCycles uint64
	for i := 0; i < ncpu; i++ {
		cs := &acc.cpus[i]
		rep.CPUs = append(rep.CPUs, system.CPUReport{
			Core:         cs.core,
			Branch:       cs.branch,
			L1I:          cs.l1i,
			L1D:          cs.l1d,
			L2:           cs.l2,
			ITLBMissRate: stats.Ratio(cs.itlbMiss, cs.itlbAcc),
			DTLBMissRate: stats.Ratio(cs.dtlbMiss, cs.dtlbAcc),
		})
		rep.Committed += cs.core.Committed
		measCycles += cs.core.Cycles
	}
	rep.Coherence = acc.coh
	rep.BusWaitCycles = acc.busWait
	rep.DRAMWaitCycles = acc.dramWait

	var ffInsts, detInsts uint64
	for i := 0; i < ncpu; i++ {
		ffInsts += ffs[i].Insts
		detInsts += sys.CPU(i).Stats.Committed
	}
	info := &system.SamplingInfo{
		Interval:       sc.IntervalInsts,
		Warmup:         sc.WarmupInsts,
		Measure:        sc.MeasureInsts,
		Offset:         sc.OffsetInsts,
		Windows:        len(windows),
		FastForwarded:  ffInsts,
		DetailedInsts:  detInsts,
		MeasuredInsts:  rep.Committed,
		DetailedCycles: sys.Cycle(),
	}
	if n := len(windows); n > 0 {
		info.CPIMean = stats.Mean(windows)
		if n > 1 {
			var ss float64
			for _, x := range windows {
				d := x - info.CPIMean
				ss += d * d
			}
			info.CPIStd = math.Sqrt(ss / float64(n-1))
			info.CPIHalf95 = 1.96 * info.CPIStd / math.Sqrt(float64(n))
		}
	}
	if rep.Committed > 0 {
		cpi := float64(measCycles) / float64(rep.Committed)
		perCPU := float64(ffInsts+detInsts) / float64(ncpu)
		info.EstimatedCycles = uint64(cpi*perCPU + 0.5)
	}
	rep.Sampling = info

	meterInstrs.Add(detInsts)
	meterCycles.Add(sys.Cycle())
	meterRuns.Add(1)
	endReport()
	spanReport(sp, rep)
	sp.Add("ff_insts", int64(ffInsts))
	sp.Add("sample_windows", int64(len(windows)))
	sp.Finish()

	if simErr != nil {
		return rep, fmt.Errorf("core: %s/%s cancelled: %w", m.cfg.Name, label, simErr)
	}
	if capped {
		return rep, fmt.Errorf("core: %s/%s hit the %d-cycle cap", m.cfg.Name, label, opt.MaxCycles)
	}
	return rep, nil
}
