package core

// Tests for the sampled-simulation driver: accuracy against the full run,
// determinism, degenerate schedules (short traces, oversized windows,
// zero-length fast-forward), cancellation conservation, and cache-key
// separation between sampled and full runs.

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"sparc64v/internal/config"
	"sparc64v/internal/runcache"
	"sparc64v/internal/system"
	"sparc64v/internal/workload"
)

// sampleSchedule is the stock test schedule: ~8 measurement windows on a
// 400k-instruction trace with 7/8 of the trace fast-forwarded.
func sampleSchedule() config.Sampling {
	return config.Sampling{IntervalInsts: 50_000, WarmupInsts: 2_000, MeasureInsts: 4_000}
}

// conserveSampled asserts the PR 4 conservation invariant on a sampled
// report: every CPU fetched at least as much as it committed, and the
// per-class commit split sums to Committed.
func conserveSampled(t *testing.T, r system.Report) {
	t.Helper()
	for i := range r.CPUs {
		c := &r.CPUs[i].Core
		if c.Fetched < c.Committed {
			t.Errorf("cpu%d: fetched %d < committed %d", i, c.Fetched, c.Committed)
		}
		var sum uint64
		for _, n := range c.CommittedByClass {
			sum += n
		}
		if sum != c.Committed {
			t.Errorf("cpu%d: class sum %d != committed %d", i, sum, c.Committed)
		}
	}
}

func TestSampledCPIMatchesFull(t *testing.T) {
	m, _ := NewModel(config.Base())
	opt := RunOptions{Insts: 400_000}
	full, err := m.Run(workload.SPECint95(), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Sample = sampleSchedule()
	sampled, err := m.Run(workload.SPECint95(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Sampling == nil {
		t.Fatal("sampled report has no Sampling info")
	}
	if sampled.Sampling.Windows < 4 {
		t.Fatalf("only %d measurement windows", sampled.Sampling.Windows)
	}
	fullCPI := 1 / full.IPC()
	sampCPI := 1 / sampled.IPC()
	relErr := (sampCPI - fullCPI) / fullCPI
	if relErr < 0 {
		relErr = -relErr
	}
	t.Logf("full CPI %.4f, sampled CPI %.4f, rel err %.2f%%, windows %d, half95 %.4f",
		fullCPI, sampCPI, 100*relErr, sampled.Sampling.Windows, sampled.Sampling.CPIHalf95)
	if relErr > 0.05 {
		t.Errorf("sampled CPI error %.2f%% exceeds 5%%", 100*relErr)
	}
	// The fast-forward/detailed split must match the schedule: 7/8 of the
	// trace fast-forwarded, the rest detailed.
	si := sampled.Sampling
	if si.FastForwarded == 0 || si.DetailedInsts == 0 {
		t.Errorf("mode split degenerate: ff=%d detailed=%d", si.FastForwarded, si.DetailedInsts)
	}
	if si.FastForwarded+si.DetailedInsts != 400_000 {
		t.Errorf("ff %d + detailed %d != trace length", si.FastForwarded, si.DetailedInsts)
	}
	if si.MeasuredInsts != sampled.Committed {
		t.Errorf("MeasuredInsts %d != Committed %d", si.MeasuredInsts, sampled.Committed)
	}
	conserveSampled(t, sampled)
}

func TestSampledReportDeterministic(t *testing.T) {
	m, _ := NewModel(config.Base())
	opt := RunOptions{Insts: 100_000, Sample: sampleSchedule()}
	opt.Sample.IntervalInsts = 20_000
	var got [2][]byte
	for i := range got {
		r, err := m.Run(workload.TPCC(), opt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		got[i] = b
	}
	if string(got[0]) != string(got[1]) {
		t.Error("two identical sampled runs produced different reports")
	}
}

// TestSampledShortTrace: trace shorter than one warm-up window. The driver
// must fall back to reporting whatever ran in detail rather than returning
// an empty report.
func TestSampledShortTrace(t *testing.T) {
	m, _ := NewModel(config.Base())
	opt := RunOptions{
		Insts:  1_000,
		Sample: config.Sampling{IntervalInsts: 50_000, WarmupInsts: 5_000, MeasureInsts: 4_000},
	}
	r, err := m.Run(workload.SPECint95(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed == 0 {
		t.Fatal("short-trace sampled run reported zero commits")
	}
	if r.IPC() <= 0 {
		t.Errorf("IPC = %v", r.IPC())
	}
	if r.Sampling == nil || r.Sampling.Windows != 1 {
		t.Errorf("fallback should report one window, got %+v", r.Sampling)
	}
	conserveSampled(t, r)
}

// TestSampledMeasureLongerThanTrace: the measurement window exceeds the
// whole trace (zero warm-up), so the single window truncates at trace end.
// The classic warm-up region (RunOptions.Warmup, here the Insts/5 default =
// 2k) is fast-forwarded first, exactly as a full run excludes it from its
// measurement, so the window measures the remaining 8k.
func TestSampledMeasureLongerThanTrace(t *testing.T) {
	m, _ := NewModel(config.Base())
	opt := RunOptions{
		Insts:  10_000,
		Sample: config.Sampling{IntervalInsts: 100_000, WarmupInsts: 0, MeasureInsts: 50_000},
	}
	r, err := m.Run(workload.SPECint95(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed != 8_000 {
		t.Errorf("committed %d, want the full post-warm-up trace (8k) measured", r.Committed)
	}
	if r.Sampling.FastForwarded != 2_000 {
		t.Errorf("fast-forwarded %d, want the 2k classic warm-up region", r.Sampling.FastForwarded)
	}
	conserveSampled(t, r)
}

// TestSampledZeroFastForward: interval == warmup+measure leaves no
// fast-forward gap between intervals — the run degenerates to detailed
// execution with periodic measurement boundaries (only the initial classic
// warm-up region is fast-forwarded) and must still agree with the full run.
func TestSampledZeroFastForward(t *testing.T) {
	m, _ := NewModel(config.Base())
	opt := RunOptions{Insts: 60_000}
	full, err := m.Run(workload.SPECint95(), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Sample = config.Sampling{IntervalInsts: 10_000, WarmupInsts: 5_000, MeasureInsts: 5_000}
	r, err := m.Run(workload.SPECint95(), opt)
	if err != nil {
		t.Fatal(err)
	}
	// Only the classic Insts/5 warm-up region may be fast-forwarded.
	if r.Sampling.FastForwarded != 12_000 {
		t.Errorf("fast-forwarded %d instructions, want only the 12k warm-up region", r.Sampling.FastForwarded)
	}
	if r.Sampling.DetailedInsts != 48_000 {
		t.Errorf("detailed %d, want all 48k post-warm-up instructions", r.Sampling.DetailedInsts)
	}
	fullCPI, sampCPI := 1/full.IPC(), 1/r.IPC()
	relErr := (sampCPI - fullCPI) / fullCPI
	if relErr < 0 {
		relErr = -relErr
	}
	if relErr > 0.10 {
		t.Errorf("zero-gap sampled CPI error %.2f%% vs full", 100*relErr)
	}
	conserveSampled(t, r)
}

// TestSampledCancelMidWindow: cancellation mid-run returns a partial report
// that still satisfies fetched ≥ committed (the PR 4 regression), wrapped
// around the context error.
func TestSampledCancelMidWindow(t *testing.T) {
	m, _ := NewModel(config.Base())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := RunOptions{Insts: 200_000, Sample: sampleSchedule()}
	r, err := m.RunContext(ctx, workload.SPECint95(), opt)
	if err == nil {
		t.Fatal("cancelled sampled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("err = %v", err)
	}
	conserveSampled(t, r)
}

// TestSampledMP: sampling works on the multiprocessor configuration
// (per-chip functional warming, detailed windows re-establishing coherence).
func TestSampledMP(t *testing.T) {
	m, _ := NewModel(config.Base().WithCPUs(4))
	opt := RunOptions{
		Insts:  40_000,
		Sample: config.Sampling{IntervalInsts: 10_000, WarmupInsts: 1_000, MeasureInsts: 2_000},
	}
	r, err := m.Run(workload.TPCC16P(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CPUs) != 4 {
		t.Fatalf("got %d CPU reports", len(r.CPUs))
	}
	for i := range r.CPUs {
		if r.CPUs[i].Core.Committed == 0 {
			t.Errorf("cpu%d measured zero commits", i)
		}
	}
	conserveSampled(t, r)
}

// TestSampledCacheKeySeparation: a sampled run and a full run of identical
// inputs must hash to different content addresses, and a cache warmed by
// one must never serve the other.
func TestSampledCacheKeySeparation(t *testing.T) {
	m, _ := NewModel(config.Base())
	full := RunOptions{Insts: 30_000}
	samp := full
	samp.Sample = config.Sampling{IntervalInsts: 10_000, WarmupInsts: 1_000, MeasureInsts: 2_000}

	kFull, err := m.RunKey(workload.SPECint95(), full)
	if err != nil {
		t.Fatal(err)
	}
	kSamp, err := m.RunKey(workload.SPECint95(), samp)
	if err != nil {
		t.Fatal(err)
	}
	if kFull.ID() == kSamp.ID() {
		t.Fatal("sampled and full runs share a cache key")
	}
	if kSamp.Sampling == "" || kFull.Sampling != "" {
		t.Errorf("Sampling key fields: full=%q sampled=%q", kFull.Sampling, kSamp.Sampling)
	}

	// Warm a cache with the full run, then request the sampled run — and
	// vice versa. Each direction must miss (simulate fresh), never serve
	// the other population's report.
	cache, err := runcache.New(runcache.Options{MaxMemEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	full.Cache, samp.Cache = cache, cache
	rFull, err := m.Run(workload.SPECint95(), full)
	if err != nil {
		t.Fatal(err)
	}
	rSamp, err := m.Run(workload.SPECint95(), samp)
	if err != nil {
		t.Fatal(err)
	}
	if rSamp.Sampling == nil {
		t.Fatal("sampled request served a full-run report (no Sampling info)")
	}
	st := cache.Stats()
	if st.Misses != 2 {
		t.Errorf("cache misses = %d, want 2 (no cross-serving)", st.Misses)
	}
	// Re-requests now hit, each from its own entry.
	rFull2, err := m.Run(workload.SPECint95(), full)
	if err != nil {
		t.Fatal(err)
	}
	rSamp2, err := m.Run(workload.SPECint95(), samp)
	if err != nil {
		t.Fatal(err)
	}
	if rFull2.Sampling != nil {
		t.Error("full request served a sampled report")
	}
	if rSamp2.Sampling == nil {
		t.Error("sampled request served a full-run report")
	}
	if rFull2.Cycles != rFull.Cycles || rSamp2.Cycles != rSamp.Cycles {
		t.Error("cache round trip changed reports")
	}
}

// TestSampledSingleWindowMarshals (regression): a schedule that completes
// exactly one measurement window has no variance estimate — the naive
// estimator divides by n-1 == 0, which would set CPIStd/CPIHalf95 to NaN,
// and encoding/json rejects NaN, so the whole Report would fail to marshal
// and poison the runcache disk tier. The pinned contract: Windows == 1 is
// the explicit "no spread estimate" marker, with CPIStd and CPIHalf95
// clamped to zero and the report round-tripping through JSON and the
// on-disk cache.
func TestSampledSingleWindowMarshals(t *testing.T) {
	m, _ := NewModel(config.Base())
	p := workload.SPECint95()
	opt := RunOptions{
		Insts:  30_000,
		Sample: config.Sampling{IntervalInsts: 50_000, WarmupInsts: 2_000, MeasureInsts: 4_000},
	}
	r, err := m.Run(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	si := r.Sampling
	if si == nil || si.Windows != 1 {
		t.Fatalf("want exactly one window, got %+v", si)
	}
	if si.CPIStd != 0 || si.CPIHalf95 != 0 {
		t.Errorf("single window must clamp spread estimates to 0, got std=%v half95=%v",
			si.CPIStd, si.CPIHalf95)
	}
	if si.CPIMean <= 0 {
		t.Errorf("CPIMean = %v, want > 0", si.CPIMean)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("single-window report does not marshal: %v", err)
	}
	if strings.Contains(string(b), "NaN") {
		t.Error("marshaled report contains NaN")
	}

	// The same report must survive the cache's disk tier: store it, then
	// read it back through a fresh cache rooted at the same directory.
	dir := t.TempDir()
	cache, err := runcache.New(runcache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	key, err := m.runKey(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(key, r)
	cold, err := runcache.New(runcache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := cold.Get(key)
	if !ok {
		t.Fatal("single-window report missing from disk cache")
	}
	gb, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(gb) != string(b) {
		t.Error("disk-cache roundtrip changed the report")
	}
}

// TestSanitizeSampling pins the clamp itself: non-finite inputs never
// survive, and a single window zeroes the spread fields even when finite.
func TestSanitizeSampling(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		in   system.SamplingInfo
		want [3]float64 // CPIMean, CPIStd, CPIHalf95
	}{
		{"nan spread single window", system.SamplingInfo{Windows: 1, CPIMean: 1.5, CPIStd: nan, CPIHalf95: nan},
			[3]float64{1.5, 0, 0}},
		{"finite spread single window", system.SamplingInfo{Windows: 1, CPIMean: 1.5, CPIStd: 0.2, CPIHalf95: 0.1},
			[3]float64{1.5, 0, 0}},
		{"nan mean", system.SamplingInfo{Windows: 3, CPIMean: nan, CPIStd: 0.2, CPIHalf95: 0.1},
			[3]float64{0, 0.2, 0.1}},
		{"inf spread multi window", system.SamplingInfo{Windows: 3, CPIMean: 1.2, CPIStd: math.Inf(1), CPIHalf95: math.Inf(-1)},
			[3]float64{1.2, 0, 0}},
		{"finite multi window untouched", system.SamplingInfo{Windows: 3, CPIMean: 1.2, CPIStd: 0.2, CPIHalf95: 0.1},
			[3]float64{1.2, 0.2, 0.1}},
	}
	for _, c := range cases {
		info := c.in
		sanitizeSampling(&info)
		got := [3]float64{info.CPIMean, info.CPIStd, info.CPIHalf95}
		if got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}
