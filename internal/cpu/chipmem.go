package cpu

import (
	"sparc64v/internal/cache"
	"sparc64v/internal/config"
	"sparc64v/internal/mem"
	"sparc64v/internal/tlb"
)

// SystemPort is the chip's window onto the rest of the system: everything
// beyond the on-chip (or off-chip private) L2. The coherence.Controller
// satisfies it; unit tests use fixed-latency fakes.
type SystemPort interface {
	// FetchLine obtains the line containing addr after an L2 miss,
	// exclusive for stores. It returns the cycle the line reaches the L2
	// and the MOESI state to install.
	FetchLine(chip int, addr uint64, exclusive bool, cycle uint64) (uint64, cache.State)
	// Upgrade obtains write permission for a line already held shared.
	Upgrade(chip int, addr uint64, cycle uint64) uint64
	// Writeback casts a dirty L2 victim out to memory.
	Writeback(addr uint64, cycle uint64)
}

// ChipMem is a processor chip's memory hierarchy: split L1s, the unified
// L2 (the SX-unit of the paper's block diagram), TLBs, MSHRs and the L2
// hardware prefetcher. It computes completion cycles using timestamped
// resources and keeps all cache/coherence state up to date at request time.
type ChipMem struct {
	cfg  *config.Config
	id   int
	port SystemPort

	L1I, L1D, L2 *cache.Cache
	ITLB, DTLB   *tlb.TLB
	l1iMSHR      *cache.MSHRs
	l1dMSHR      *cache.MSHRs
	l2MSHR       *cache.MSHRs
	pf           *cache.Prefetcher
	l2Port       mem.Resource

	// Observer, when non-nil, is notified of snoop invalidations hitting
	// this chip (see MemObserver). Set before the first Tick.
	Observer MemObserver

	// Stats
	TLBStallCycles  uint64
	UpgradeRequests uint64
	BackInvalidates uint64
}

// NewChipMem builds the hierarchy for chip id.
func NewChipMem(cfg *config.Config, id int, port SystemPort) *ChipMem {
	m := &ChipMem{
		cfg:     cfg,
		id:      id,
		port:    port,
		L1I:     cache.New(cfg.L1I),
		L1D:     cache.New(cfg.L1D),
		L2:      cache.New(cfg.Mem.L2),
		ITLB:    tlb.New(cfg.ITLB),
		DTLB:    tlb.New(cfg.DTLB),
		l1iMSHR: cache.NewMSHRs(cfg.L1I.MSHRs),
		l1dMSHR: cache.NewMSHRs(cfg.L1D.MSHRs),
		l2MSHR:  cache.NewMSHRs(cfg.Mem.L2.MSHRs),
	}
	if cfg.Mem.Prefetch {
		m.pf = cache.NewPrefetcher(cfg.Mem.PrefetchDegree, cfg.Mem.PrefetchStride,
			cfg.Mem.PrefetchTableEntries)
	}
	// Inclusion-aware victim selection: protect L2 lines with L1 copies
	// (presence bits), so streaming L2 traffic does not back-invalidate the
	// hot L1 working sets.
	shift := m.L2.LineShift()
	m.L2.VictimFilter = func(lineAddr uint64) bool {
		addr := lineAddr << shift
		return m.L1D.Lookup(addr, false) != nil || m.L1I.Lookup(addr, false) != nil
	}
	return m
}

// l2Latency returns the L2 access latency including the chip-crossing
// penalty for off-chip designs (the Figure 14 "off.*" alternatives).
func (m *ChipMem) l2Latency() uint64 {
	lat := uint64(m.cfg.Mem.L2.HitCycles)
	if m.cfg.Mem.L2OffChip {
		lat += uint64(m.cfg.Mem.OffChipPenalty)
	}
	return lat
}

// l2Acquire models L2 port occupancy (only under bus-contention fidelity).
func (m *ChipMem) l2Acquire(cycle uint64) uint64 {
	return m.l2Port.Acquire(cycle, 2, m.cfg.Fidelity.BusContention)
}

// missDetect is the tag-check delay between an L1 access and the L2
// request leaving the core.
const missDetect = 2

// DataResult is the outcome of a data-side access.
type DataResult struct {
	// Ready is the cycle the data (load) or write permission (store) is
	// available.
	Ready uint64
	// L1Hit reports an L1 operand cache hit.
	L1Hit bool
	// Retry means no MSHR was available: the LSQ must re-issue later.
	Retry bool
}

// AccessData performs a load or store lookup at cycle. Stores obtain
// write permission (upgrade or exclusive fetch); loads obtain data.
func (m *ChipMem) AccessData(addr uint64, store bool, cycle uint64) DataResult {
	if m.cfg.Fidelity.TLBModeled && !m.cfg.Perfect.TLB {
		if pen := m.DTLB.Access(addr); pen > 0 {
			m.TLBStallCycles += uint64(pen)
			cycle += uint64(pen)
		}
	}
	hitReady := cycle + uint64(m.cfg.L1D.HitCycles)
	if m.cfg.Perfect.L1 {
		return DataResult{Ready: hitReady, L1Hit: true}
	}
	line := m.L1D.Access(addr)
	if line != nil {
		if store && !line.State.Writable() {
			// Upgrade: obtain write permission. The store buffer hides the
			// latency; the bus traffic still costs (MP invalidations).
			m.UpgradeRequests++
			if m.cfg.CPUs > 1 {
				m.port.Upgrade(m.id, addr, cycle)
			}
			line.State = cache.Modified
			m.L2.SetState(addr, cache.Modified)
		} else if store {
			line.State = cache.Modified
			m.L2.SetState(addr, cache.Modified)
		}
		// A hit on a line whose fill is still in flight delivers when the
		// fill lands (secondary access merged onto the outstanding miss).
		if pend, ok := m.l1dMSHR.Pending(m.L1D.LineAddr(addr), cycle); ok && pend > hitReady {
			return DataResult{Ready: pend, L1Hit: true}
		}
		return DataResult{Ready: hitReady, L1Hit: true}
	}

	// L1 miss.
	lineAddr := m.L1D.LineAddr(addr)
	if ready, ok := m.l1dMSHR.Pending(lineAddr, cycle); ok {
		r := ready
		if store {
			// The pending fill may not carry write permission; charge the
			// upgrade on arrival (state handled below).
			m.storeTouch(addr, r)
		}
		if hitReady > r {
			r = hitReady
		}
		return DataResult{Ready: r, L1Hit: false}
	}
	if !m.l1dMSHR.CanAllocate(cycle) {
		return DataResult{Retry: true}
	}
	fill := m.fetchIntoL1(addr, store, cycle+missDetect, m.L1D)
	if fill == 0 {
		return DataResult{Retry: true}
	}
	m.l1dMSHR.Allocate(lineAddr, fill, cycle)
	if store {
		m.storeTouch(addr, fill)
	}
	return DataResult{Ready: fill, L1Hit: false}
}

// storeTouch marks the (just filled or filling) line modified.
func (m *ChipMem) storeTouch(addr uint64, _ uint64) {
	if l := m.L1D.Lookup(addr, false); l != nil {
		l.State = cache.Modified
	}
	m.L2.SetState(addr, cache.Modified)
}

// InstrResult is the outcome of an instruction-side access.
type InstrResult struct {
	// Ready is the cycle the fetch block is available (== cycle on a hit;
	// the pipelined access latency is part of the fetch pipeline depth).
	Ready uint64
	// L1Hit reports an L1 instruction cache hit.
	L1Hit bool
}

// AccessInstr performs an instruction-fetch lookup for the line containing
// pc.
func (m *ChipMem) AccessInstr(pc uint64, cycle uint64) InstrResult {
	if m.cfg.Fidelity.TLBModeled && !m.cfg.Perfect.TLB {
		if pen := m.ITLB.Access(pc); pen > 0 {
			m.TLBStallCycles += uint64(pen)
			cycle += uint64(pen)
		}
	}
	if m.cfg.Perfect.L1 {
		return InstrResult{Ready: cycle, L1Hit: true}
	}
	if m.L1I.Access(pc) != nil {
		if pend, ok := m.l1iMSHR.Pending(m.L1I.LineAddr(pc), cycle); ok {
			return InstrResult{Ready: pend, L1Hit: false}
		}
		return InstrResult{Ready: cycle, L1Hit: true}
	}
	lineAddr := m.L1I.LineAddr(pc)
	if ready, ok := m.l1iMSHR.Pending(lineAddr, cycle); ok {
		return InstrResult{Ready: ready, L1Hit: false}
	}
	if !m.l1iMSHR.CanAllocate(cycle) {
		// MSHR pressure on the I-side: back off and re-probe; no memory
		// traffic may be billed for a refused miss.
		return InstrResult{Ready: cycle + missDetect, L1Hit: false}
	}
	fill := m.fetchIntoL1(pc, false, cycle+missDetect, m.L1I)
	if fill == 0 {
		return InstrResult{Ready: cycle + missDetect, L1Hit: false}
	}
	m.l1iMSHR.Allocate(lineAddr, fill, cycle)
	return InstrResult{Ready: fill, L1Hit: false}
}

// fetchIntoL1 services an L1 miss from the L2 (and below), installing
// states along the way. It returns the cycle the L1 fill completes, or 0
// when an L2 MSHR is unavailable (caller must retry).
func (m *ChipMem) fetchIntoL1(addr uint64, store bool, cycle uint64, l1 *cache.Cache) uint64 {
	// Hardware prefetch triggers on demand L1 misses (section 3.4).
	if m.pf != nil && !m.cfg.Perfect.L2 {
		m.prefetch(m.L2.LineAddr(addr), cycle)
	}

	if m.cfg.Fidelity.FlatMemory {
		ready := cycle + uint64(m.cfg.Fidelity.FlatMemoryCycles)
		m.fillL1(l1, addr, store, ready)
		return ready
	}

	t := m.l2Acquire(cycle)
	var ready uint64
	if m.cfg.Perfect.L2 {
		ready = t + m.l2Latency()
		m.fillL1(l1, addr, store, ready)
		return ready
	}

	l2line := m.L2.Access(addr)
	// A hit on a line whose fill is still in flight (demand on a prefetch,
	// or a second miss to the same line) delivers when the fill lands.
	pendingReady := uint64(0)
	if l2line != nil {
		if pend, ok := m.l2MSHR.Pending(m.L2.LineAddr(addr), t); ok {
			pendingReady = pend
		}
	}
	switch {
	case l2line != nil && store && !l2line.State.Writable():
		if m.cfg.CPUs > 1 {
			m.port.Upgrade(m.id, addr, t)
		}
		l2line.State = cache.Modified
		ready = t + m.l2Latency()
		if pendingReady > ready {
			ready = pendingReady
		}
	case l2line != nil:
		ready = t + m.l2Latency()
		if pendingReady > ready {
			ready = pendingReady
		}
	default:
		lineAddr := m.L2.LineAddr(addr)
		if pend, ok := m.l2MSHR.Pending(lineAddr, t); ok {
			ready = pend
		} else {
			if !m.l2MSHR.CanAllocate(t) {
				return 0
			}
			arrive, st := m.port.FetchLine(m.id, addr, store, t)
			if m.cfg.Mem.L2OffChip {
				arrive += uint64(m.cfg.Mem.OffChipPenalty)
			}
			m.l2MSHR.Allocate(lineAddr, arrive, t)
			m.fillL2(addr, st, false, t)
			ready = arrive
		}
		ready += uint64(m.cfg.L1D.HitCycles) // L2->L1 transfer
	}
	m.fillL1(l1, addr, store, ready)
	return ready
}

// fillL1 installs the line in an L1, handling dirty castout to the L2.
func (m *ChipMem) fillL1(l1 *cache.Cache, addr uint64, store bool, _ uint64) {
	st := cache.Exclusive
	if store {
		st = cache.Modified
	} else if l2 := m.L2.Lookup(addr, false); l2 != nil && l2.State == cache.Shared {
		st = cache.Shared
	}
	ev, evicted := l1.Fill(addr, st, false)
	if evicted && ev.State.Dirty() {
		// Copy-back into the L2 (inclusion guarantees presence).
		m.L2.SetState(ev.Addr(l1.LineShift()), cache.Modified)
	}
}

// fillL2 installs a line in the L2, handling victim writeback and L1
// back-invalidation (inclusion).
func (m *ChipMem) fillL2(addr uint64, st cache.State, prefetched bool, cycle uint64) {
	ev, evicted := m.L2.Fill(addr, st, prefetched)
	if !evicted {
		return
	}
	vaddr := ev.Addr(m.L2.LineShift())
	// Inclusion: remove the victim from the L1s; a dirty L1 copy folds
	// into the writeback.
	if st := m.L1D.Invalidate(vaddr); st != cache.Invalid {
		m.BackInvalidates++
		if st.Dirty() {
			ev.State = cache.Modified
		}
	}
	if m.L1I.Invalidate(vaddr) != cache.Invalid {
		m.BackInvalidates++
	}
	if ev.State.Dirty() && !m.cfg.Fidelity.FlatMemory {
		m.port.Writeback(vaddr, cycle)
	}
}

// prefetch issues prefetches for a demand-missed line into the L2.
func (m *ChipMem) prefetch(lineAddr uint64, cycle uint64) {
	for _, pfLine := range m.pf.OnMiss(lineAddr) {
		addr := pfLine << m.L2.LineShift()
		if m.L2.AccessPrefetch(addr) {
			continue
		}
		if m.cfg.Fidelity.FlatMemory {
			m.fillL2(addr, cache.Exclusive, true, cycle)
			continue
		}
		if _, ok := m.l2MSHR.Pending(pfLine, cycle); ok {
			continue
		}
		if !m.l2MSHR.CanAllocate(cycle) {
			continue // never bill traffic for a refused prefetch
		}
		arrive, st := m.port.FetchLine(m.id, addr, false, cycle)
		m.l2MSHR.Allocate(pfLine, arrive, cycle)
		m.fillL2(addr, st, true, cycle)
	}
}

// ---- coherence.ChipCache implementation (snoops from other chips).

// Probe returns the L2 state of the line containing addr.
func (m *ChipMem) Probe(addr uint64) cache.State {
	if l := m.L2.Lookup(addr, false); l != nil {
		return l.State
	}
	return cache.Invalid
}

// Downgrade adjusts L2 (and L1) state after supplying data to a snooper.
func (m *ChipMem) Downgrade(addr uint64, st cache.State) {
	m.L2.SetState(addr, st)
	m.L1D.SetState(addr, cache.Shared)
	m.L1I.SetState(addr, cache.Shared)
}

// InvalidateLine removes the line everywhere on the chip.
func (m *ChipMem) InvalidateLine(addr uint64) {
	if m.Observer != nil {
		m.Observer.LineInvalidated(m.id, addr)
	}
	m.L2.Invalidate(addr)
	m.L1D.Invalidate(addr)
	m.L1I.Invalidate(addr)
}
