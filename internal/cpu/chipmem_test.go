package cpu

import (
	"testing"

	"sparc64v/internal/cache"
	"sparc64v/internal/config"
)

func newChip(t *testing.T, mutate func(*config.Config)) (*ChipMem, *fakePort) {
	t.Helper()
	cfg := config.Base()
	cfg.Perfect.TLB = true
	if mutate != nil {
		mutate(&cfg)
	}
	port := &fakePort{latency: 100}
	return NewChipMem(&cfg, 0, port), port
}

func TestChipDataHitLatency(t *testing.T) {
	m, _ := newChip(t, nil)
	// Cold miss fills; warm access hits at the L1 latency.
	r := m.AccessData(0x1000, false, 0)
	if r.L1Hit || r.Retry {
		t.Fatalf("cold access: %+v", r)
	}
	r2 := m.AccessData(0x1000, false, r.Ready)
	if !r2.L1Hit || r2.Ready != r.Ready+uint64(m.cfg.L1D.HitCycles) {
		t.Fatalf("warm access: %+v (miss ready %d)", r2, r.Ready)
	}
}

func TestChipMissGoesThroughL2(t *testing.T) {
	m, port := newChip(t, nil)
	r := m.AccessData(0x2000, false, 0)
	// Demand fetch plus one degree-1 prefetch.
	if port.fetches != 2 {
		t.Fatalf("system fetches = %d", port.fetches)
	}
	// Miss latency must include L2 access plus system latency.
	if r.Ready < 100 {
		t.Fatalf("miss ready = %d, must include memory", r.Ready)
	}
	// A second access to the in-flight line merges on the MSHR: no new
	// system fetch, and its data waits for the fill.
	r2 := m.AccessData(0x2008, false, 1)
	if port.fetches != 2 {
		t.Fatalf("merged access fetched again: %d", port.fetches)
	}
	if r2.Ready < r.Ready {
		t.Fatalf("merged access ready %d before the fill %d", r2.Ready, r.Ready)
	}
}

func TestChipSecondMissToL2HitIsFast(t *testing.T) {
	m, _ := newChip(t, nil)
	r1 := m.AccessData(0x3000, false, 0)
	// Evict from L1 by filling the same set with other lines... simpler:
	// invalidate L1 copy only and re-access: the L2 still holds it.
	m.L1D.Invalidate(0x3000)
	start := r1.Ready + 10
	r2 := m.AccessData(0x3000, false, start)
	l2Cost := r2.Ready - start
	if l2Cost >= r1.Ready {
		t.Fatalf("L2 hit cost %d not below memory cost %d", l2Cost, r1.Ready)
	}
	if l2Cost < uint64(m.cfg.Mem.L2.HitCycles) {
		t.Fatalf("L2 hit cost %d below L2 latency", l2Cost)
	}
}

func TestChipStoreGetsWritableState(t *testing.T) {
	m, _ := newChip(t, nil)
	m.AccessData(0x4000, true, 0)
	l := m.L1D.Lookup(0x4000, false)
	if l == nil || !l.State.Writable() {
		t.Fatalf("store line state: %+v", l)
	}
	if l2 := m.L2.Lookup(0x4000, false); l2 == nil || l2.State != cache.Modified {
		t.Fatalf("L2 state after store: %+v", l2)
	}
}

func TestChipUpgradeOnSharedStore(t *testing.T) {
	m, port := newChip(t, func(c *config.Config) { c.CPUs = 2 })
	// Install a Shared line (as a remote read would leave it).
	m.L2.Fill(0x5000, cache.Shared, false)
	m.L1D.Fill(0x5000, cache.Shared, false)
	m.AccessData(0x5000, true, 0)
	if port.upgrades != 1 {
		t.Fatalf("upgrades = %d", port.upgrades)
	}
	if l := m.L1D.Lookup(0x5000, false); l.State != cache.Modified {
		t.Fatalf("post-upgrade state %v", l.State)
	}
}

func TestChipOffChipPenalty(t *testing.T) {
	on, _ := newChip(t, nil)
	off, _ := newChip(t, func(c *config.Config) {
		*c = c.WithOffChipL2(2)
	})
	// Warm both L2s, evict L1 copies, compare L2 hit cost.
	on.AccessData(0x6000, false, 0)
	off.AccessData(0x6000, false, 0)
	on.L1D.Invalidate(0x6000)
	off.L1D.Invalidate(0x6000)
	rOn := on.AccessData(0x6000, false, 1000)
	rOff := off.AccessData(0x6000, false, 1000)
	d := int64(rOff.Ready) - int64(rOn.Ready)
	if d < int64(off.cfg.Mem.OffChipPenalty) {
		t.Fatalf("off-chip L2 hit only %d cycles slower", d)
	}
}

func TestChipPrefetchFillsL2(t *testing.T) {
	m, _ := newChip(t, nil)
	// A demand miss on line X must prefetch X+1 into the L2.
	m.AccessData(0x7000, false, 0)
	if m.L2.Lookup(0x7040, false) == nil {
		t.Fatal("next line not prefetched into L2")
	}
	if m.L2.Stats.PrefetchAccesses == 0 {
		t.Fatal("prefetch not counted")
	}
	// Disabled prefetcher does nothing.
	m2, _ := newChip(t, func(c *config.Config) { c.Mem.Prefetch = false })
	m2.AccessData(0x7000, false, 0)
	if m2.L2.Lookup(0x7040, false) != nil {
		t.Fatal("prefetch fired while disabled")
	}
}

func TestChipDemandOnPendingPrefetchWaits(t *testing.T) {
	m, _ := newChip(t, nil)
	m.AccessData(0x8000, false, 0) // prefetches 0x8040 with ~100-cycle fill
	m.L1D.Invalidate(0x8040)       // ensure the demand goes to the L2
	r := m.AccessData(0x8040, false, 5)
	// The prefetched line is "in" the L2 but its fill is in flight: the
	// demand access must wait for the fill, not get an instant L2 hit.
	if r.Ready < 100 {
		t.Fatalf("demand on in-flight prefetch ready at %d", r.Ready)
	}
}

func TestChipInstrPath(t *testing.T) {
	m, _ := newChip(t, nil)
	r := m.AccessInstr(0x100000, 0)
	if r.L1Hit {
		t.Fatal("cold I-fetch hit")
	}
	r2 := m.AccessInstr(0x100004, r.Ready)
	if !r2.L1Hit {
		t.Fatal("same-line I-fetch missed")
	}
}

func TestChipPerfectSwitches(t *testing.T) {
	m, port := newChip(t, func(c *config.Config) { c.Perfect.L1 = true })
	r := m.AccessData(0x9000, false, 0)
	if !r.L1Hit || port.fetches != 0 {
		t.Fatalf("perfect L1 missed: %+v fetches=%d", r, port.fetches)
	}
	ri := m.AccessInstr(0x9000, 0)
	if !ri.L1Hit {
		t.Fatal("perfect L1 I-fetch missed")
	}
	m2, port2 := newChip(t, func(c *config.Config) { c.Perfect.L2 = true })
	r = m2.AccessData(0xa000, false, 0)
	if r.Retry || port2.fetches != 0 {
		t.Fatalf("perfect L2 went to memory: %+v fetches=%d", r, port2.fetches)
	}
}

func TestChipFlatMemoryFidelity(t *testing.T) {
	m, port := newChip(t, func(c *config.Config) {
		c.Fidelity.FlatMemory = true
		c.Fidelity.FlatMemoryCycles = 30
	})
	r := m.AccessData(0xb000, false, 0)
	if r.Ready != uint64(missDetect+30) {
		t.Fatalf("flat-memory miss ready = %d", r.Ready)
	}
	if port.fetches != 0 {
		t.Fatal("flat memory consulted the system port")
	}
}

func TestChipInclusionBackInvalidate(t *testing.T) {
	m, _ := newChip(t, func(c *config.Config) {
		// Tiny L2 so fills force evictions quickly.
		c.Mem.L2 = config.CacheGeometry{SizeBytes: 8 << 10, Ways: 2, LineBytes: 64,
			HitCycles: 10, MSHRs: 8}
	})
	// Fill many lines mapping across the whole tiny L2.
	for i := uint64(0); i < 512; i++ {
		m.AccessData(0x10000+i*64, false, i*400)
	}
	// Inclusion: every valid L1 line must still be present in the L2.
	violations := 0
	for i := uint64(0); i < 512; i++ {
		addr := 0x10000 + i*64
		if m.L1D.Lookup(addr, false) != nil && m.L2.Lookup(addr, false) == nil {
			violations++
		}
	}
	if violations > 0 {
		t.Fatalf("%d inclusion violations (L1 line without L2 backing)", violations)
	}
}

func TestChipSnoopInterface(t *testing.T) {
	m, _ := newChip(t, nil)
	m.AccessData(0xc000, true, 0) // dirty in L1+L2
	if st := m.Probe(0xc000); st != cache.Modified {
		t.Fatalf("Probe = %v", st)
	}
	m.Downgrade(0xc000, cache.Owned)
	if st := m.Probe(0xc000); st != cache.Owned {
		t.Fatalf("after Downgrade: %v", st)
	}
	if l1 := m.L1D.Lookup(0xc000, false); l1 == nil || l1.State != cache.Shared {
		t.Fatalf("L1 not downgraded: %+v", l1)
	}
	m.InvalidateLine(0xc000)
	if m.Probe(0xc000) != cache.Invalid || m.L1D.Lookup(0xc000, false) != nil {
		t.Fatal("InvalidateLine incomplete")
	}
}

func TestChipMSHRRetry(t *testing.T) {
	m, _ := newChip(t, func(c *config.Config) { c.L1D.MSHRs = 1 })
	r1 := m.AccessData(0xd000, false, 0)
	if r1.Retry {
		t.Fatal("first miss refused")
	}
	// Second miss to a different line while the only MSHR is busy: retry.
	r2 := m.AccessData(0xe000, false, 1)
	if !r2.Retry {
		t.Fatalf("second miss not refused: %+v", r2)
	}
	// After the first fill completes, it succeeds.
	r3 := m.AccessData(0xe000, false, r1.Ready+1)
	if r3.Retry {
		t.Fatal("miss refused after MSHR freed")
	}
}
