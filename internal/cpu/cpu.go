// Package cpu implements the SPARC64 V out-of-order core timing model: a
// 4-wide issue, 64-entry-window superscalar with two fixed-point units, two
// floating-point multiply-add units, two address generators, the
// RSE/RSF/RSA/RSBR reservation stations, speculative dispatch with data
// forwarding (section 3.1), non-blocking dual operand access with an
// 8-banked L1 (section 3.2), and in-order 4-wide commit.
//
// The model is trace-driven and cycle-driven: System calls Tick once per
// cycle; stages are processed commit-first so that a freed resource is
// usable one cycle later, never earlier.
package cpu

import (
	"fmt"

	"sparc64v/internal/bpred"
	"sparc64v/internal/cache"
	"sparc64v/internal/config"
	"sparc64v/internal/isa"
	"sparc64v/internal/trace"
)

// cacheStats aliases the cache counter block for warmup resets.
type cacheStats = cache.Stats

// entryState is the lifecycle of a window entry.
type entryState uint8

const (
	stEmpty entryState = iota
	// stWaiting: issued into the window and a reservation station, not yet
	// dispatched (or dispatched and then cancelled).
	stWaiting
	// stDispatched: dispatched to an execution unit; timing fields valid.
	stDispatched
)

// Station indices. In the 2RS topology RSE0/RSE1 and RSF0/RSF1 are separate
// stations, each hard-wired to one execution unit and dispatching one
// operation per cycle; in the 1RS topology RSE0 (RSF0) is a fused station
// of double capacity dispatching up to two (Figure 18).
const (
	rsA = iota
	rsBR
	rsE0
	rsE1
	rsF0
	rsF1
	numStations
)

// robEntry is one in-flight instruction.
type robEntry struct {
	rec trace.Record
	seq uint64
	st  entryState

	src1Seq, src2Seq uint64 // producer sequence numbers + 1 (0 = ready)
	station          int8

	dispCycle     uint64 // cycle of (last) dispatch
	fwdCycle      uint64 // cycle a consumer's execute stage may use the result
	completeCycle uint64 // cycle the result is architecturally final
	specUntil     uint64 // cancellable until this cycle (0 = immune)
	fetchCycle    uint64 // cycle the record left the fetch unit
	issueCycle    uint64 // cycle the record entered the window
	cancels       uint16 // speculative-dispatch cancellations suffered

	// Branch bookkeeping (from fetch).
	mispredict bool

	// Memory bookkeeping.
	addrReady uint64 // agen completion (loads/stores); ^0 until known
	accessed  bool   // cache access performed (loads)

	// Store data source (stores dispatch on address sources only; data
	// readiness is checked at commit).
	dataSeq uint64
}

// isLoad/isStore helpers.
func (e *robEntry) isLoad() bool  { return e.rec.Op == isa.Load }
func (e *robEntry) isStore() bool { return e.rec.Op == isa.Store }

// fetchedInstr is a decoded record waiting in the fetch buffer.
type fetchedInstr struct {
	rec     trace.Record
	fetched uint64 // cycle the record left the fetch unit
	readyAt uint64 // earliest issue cycle (fetch+decode pipeline depth)
	outcome bpred.Outcome
}

// reveal is a scheduled "the L1 predicted hit was wrong" event.
type reveal struct {
	seq    uint64
	at     uint64 // cycle the miss becomes visible to the scheduler
	newFwd uint64 // true forward cycle (fill-based)
}

// drainStore is a committed store waiting to write the L1.
type drainStore struct {
	addr uint64
	size uint8
	ok   uint64 // earliest drain cycle (commit cycle)
}

// Stats aggregates the core's counters.
type Stats struct {
	Cycles    uint64
	Committed uint64
	Fetched   uint64

	// CommittedByClass splits Committed by instruction class. The split is
	// a conservation oracle for the verification harness (internal/
	// metamorph): on a zero-warmup run the per-class counts must equal the
	// trace's composition exactly, and their sum must equal Committed on
	// every run, truncated or not.
	CommittedByClass [isa.NumClasses]uint64

	// Issue-stall cycles by cause (whole-group stalls).
	StallWindow, StallRename, StallRS, StallLQ, StallSQ uint64
	// Fetch-stall cycles by cause.
	FetchStallICache, FetchStallBranch, FetchBubbles uint64
	// Speculative dispatch.
	SpecCancels uint64
	// L1D bank conflicts (aborted+retried accesses).
	BankConflicts uint64
	// Stores drained to the L1.
	StoresDrained uint64
	// StoreForwards counts loads satisfied by store-queue bypass.
	StoreForwards uint64
	// Special-instruction serializations (crude mode).
	SpecialSerialized uint64

	// Online CPI stack: zero-commit cycles attributed to the condition
	// blocking the window head at that cycle. Complementary to the
	// perfect-ization breakdown (Figure 7): cheap, single-run, per-cycle.
	ZeroCommitFrontend uint64 // window empty, front end filling
	ZeroCommitMemory   uint64 // head is a memory op awaiting data/drain
	ZeroCommitExecute  uint64 // head dispatched, still executing
	ZeroCommitRS       uint64 // head waiting in a reservation station
	ZeroCommitSpec     uint64 // head complete but inside a cancel window
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// CPU is one processor's timing model.
type CPU struct {
	cfg  *config.Config
	id   int
	Mem  *ChipMem
	pred *bpred.Predictor
	src  trace.Source

	// Window.
	window  []robEntry
	winMask uint64
	head    uint64 // oldest in-flight seq
	tail    uint64 // next seq to allocate

	renameProducer [isa.NumRegs]uint64 // seq+1 of latest producer
	intInFlight    int
	fpInFlight     int

	stations [numStations][]uint64  // seqs
	unitFree [numStations][2]uint64 // per attached unit: next free cycle

	// Configuration-derived constants, resolved once at New so the
	// per-cycle stages never chase cfg pointers or re-branch on static
	// switches (the dispatch/issue path dominates the simulator profile).
	dispWidth    [numStations]int // dispatches per cycle per station
	stationCaps  [numStations]int // station entry capacities
	latencies    [isa.NumClasses]isa.LatencyClass
	fwdPenalty   uint64 // extra source-to-use delay when forwarding is off
	issueWidth   int
	commitWidth  int
	windowSize   int
	intRename    int
	fpRename     int
	lqEntries    int
	sqEntries    int
	fetchWidth   int    // instructions per fetch group
	fetchBufCap  int    // fetch buffer capacity bound
	pipeDepth    uint64 // fetch+decode pipeline depth
	hitCycles    uint64 // L1D predicted-hit latency
	storeFwdLat  uint64
	redirectPen  uint64 // mispredict refill penalty
	specialPen   uint64 // crude Special-instruction penalty
	specDispatch bool
	storeForward bool
	specialCrude bool // Special serializes (i.e. !SpecialDetailed)
	bankChecks   bool // bank-conflict fidelity with >1 bank
	bhtBubbles   bool

	// Fetch state. fetchBuf is a head-indexed queue: entries are consumed
	// by advancing fetchHead and the backing array is reused, so steady
	// state allocates nothing.
	fetchBuf      []fetchedInstr
	fetchHead     int
	pendingRec    trace.Record
	pendingValid  bool
	srcDone       bool
	fetchResumeAt uint64 // fetch blocked until this cycle
	blockSeq      uint64 // seq+1 of the mispredicted branch blocking fetch
	lastFetchLine uint64 // last I-cache line probed
	haveLine      bool

	// Load/store queues. drainQ is head-indexed like fetchBuf.
	lqCount, sqCount int
	drainQ           []drainStore
	drainHead        int

	reveals []reveal

	serializeSeq uint64 // seq+1 of a serializing Special in flight

	pipeTracer func(*PipeEvent)

	// Observer, when non-nil, receives load/store/snoop events (see
	// MemObserver). Set before the first Tick; never mid-run.
	Observer MemObserver

	warmupLeft uint64
	// Stats is the exported counter block.
	Stats Stats
}

const never = ^uint64(0)

// cacheStatsZero is assigned to clear cache counters at warmup.
var cacheStatsZero = cacheStats{}

// New builds a CPU with the given chip memory and trace source.
func New(cfg *config.Config, id int, chipMem *ChipMem, src trace.Source) *CPU {
	ws := cfg.CPU.WindowSize
	// Round the window up to a power of two for masking; capacity checks
	// still use the configured size.
	cap := 1
	for cap < ws {
		cap <<= 1
	}
	c := &CPU{
		cfg:        cfg,
		id:         id,
		Mem:        chipMem,
		src:        src,
		window:     make([]robEntry, cap),
		winMask:    uint64(cap - 1),
		warmupLeft: cfg.WarmupInsts,
	}
	if !cfg.Perfect.Branch {
		c.pred = bpred.NewPredictor(cfg.BHT, cfg.RASEntries)
	}
	for i := range c.stations {
		c.stations[i] = make([]uint64, 0, 2*cfg.CPU.RSEEntries+4)
	}
	p := &cfg.CPU
	for st := 0; st < numStations; st++ {
		c.dispWidth[st] = dispatchWidthFor(p, st)
		c.stationCaps[st] = stationCapFor(p, st)
	}
	c.latencies = p.Latencies
	if !p.DataForwarding {
		c.fwdPenalty = uint64(p.ForwardDelay)
	}
	c.issueWidth = p.IssueWidth
	c.commitWidth = p.CommitWidth
	c.windowSize = p.WindowSize
	c.intRename = p.IntRenameRegs
	c.fpRename = p.FPRenameRegs
	c.lqEntries = p.LoadQueueEntries
	c.sqEntries = p.StoreQueueEntries
	c.fetchWidth = p.FetchBytes / isa.InstrBytes
	c.fetchBufCap = p.FetchBufEntries
	c.pipeDepth = uint64(p.FetchPipeStages + p.DecodeStages)
	c.hitCycles = uint64(cfg.L1D.HitCycles)
	c.storeFwdLat = uint64(p.StoreForwardCycles)
	c.redirectPen = uint64(p.MispredictRedirect)
	c.specialPen = uint64(p.SpecialPenalty)
	c.specDispatch = p.SpeculativeDispatch
	c.storeForward = p.StoreForwarding
	c.specialCrude = !p.SpecialDetailed
	c.bankChecks = cfg.Fidelity.BankConflicts && cfg.L1D.Banks > 1
	c.bhtBubbles = cfg.Fidelity.BHTBubbles
	// The queues' occupancy bounds are enforced at issue/commit, so sizing
	// the backing arrays to those bounds makes steady state allocation-free.
	c.fetchBuf = make([]fetchedInstr, 0, p.FetchBufEntries+1)
	c.drainQ = make([]drainStore, 0, p.StoreQueueEntries+1)
	return c
}

// Predictor returns the branch predictor (nil under perfect branch mode).
func (c *CPU) Predictor() *bpred.Predictor { return c.pred }

// SourceReadBound returns the most trace records a single Tick can consume
// from the CPU's source (the fetch width — only fetch reads the source in
// detailed mode). The lockstep batch driver (internal/core) multiplies it
// by a cycle count to bound a machine's demand on a shared trace buffer.
func (c *CPU) SourceReadBound() int { return c.fetchWidth }

// entry returns the window entry for seq if still in flight.
func (c *CPU) entry(seq uint64) *robEntry {
	e := &c.window[seq&c.winMask]
	if e.st == stEmpty || e.seq != seq {
		return nil
	}
	return e
}

// inFlight returns the number of window entries in use.
func (c *CPU) inFlight() int { return int(c.tail - c.head) }

// fetchBufLen returns the number of buffered fetched instructions.
func (c *CPU) fetchBufLen() int { return len(c.fetchBuf) - c.fetchHead }

// pushFetch enqueues a fetched instruction, recycling the backing array
// once the consumed prefix would force a grow (capacity covers the
// occupancy bound, so steady state never allocates).
func (c *CPU) pushFetch(fi fetchedInstr) {
	if len(c.fetchBuf) == cap(c.fetchBuf) && c.fetchHead > 0 {
		n := copy(c.fetchBuf, c.fetchBuf[c.fetchHead:])
		c.fetchBuf = c.fetchBuf[:n]
		c.fetchHead = 0
	}
	c.fetchBuf = append(c.fetchBuf, fi)
}

// popFetch consumes the oldest buffered instruction.
func (c *CPU) popFetch() {
	c.fetchHead++
	if c.fetchHead == len(c.fetchBuf) {
		c.fetchBuf = c.fetchBuf[:0]
		c.fetchHead = 0
	}
}

// drainLen returns the number of committed stores awaiting drain.
func (c *CPU) drainLen() int { return len(c.drainQ) - c.drainHead }

// pushDrain enqueues a committed store, recycling like pushFetch.
func (c *CPU) pushDrain(d drainStore) {
	if len(c.drainQ) == cap(c.drainQ) && c.drainHead > 0 {
		n := copy(c.drainQ, c.drainQ[c.drainHead:])
		c.drainQ = c.drainQ[:n]
		c.drainHead = 0
	}
	c.drainQ = append(c.drainQ, d)
}

// popDrain consumes the oldest committed store.
func (c *CPU) popDrain() {
	c.drainHead++
	if c.drainHead == len(c.drainQ) {
		c.drainQ = c.drainQ[:0]
		c.drainHead = 0
	}
}

// Done reports whether the trace is exhausted and the pipeline drained.
func (c *CPU) Done() bool {
	return c.srcDone && !c.pendingValid && c.fetchBufLen() == 0 &&
		c.inFlight() == 0 && c.drainLen() == 0
}

// Tick advances the core by one cycle. Stage order is reverse-pipeline so
// same-cycle structural effects flow realistically.
func (c *CPU) Tick(cycle uint64) {
	if c.Done() {
		return
	}
	c.Stats.Cycles++
	before := c.Stats.Committed
	c.commit(cycle)
	if c.Stats.Committed == before {
		c.attributeZeroCommit(cycle)
	}
	c.processReveals(cycle)
	c.lsqTick(cycle)
	c.dispatch(cycle)
	c.issue(cycle)
	c.fetch(cycle)
}

// commit retires up to CommitWidth completed instructions in order.
func (c *CPU) commit(cycle uint64) {
	for n := 0; n < c.commitWidth && c.head < c.tail; n++ {
		e := &c.window[c.head&c.winMask]
		if e.st != stDispatched || e.completeCycle > cycle {
			return
		}
		if e.specUntil > cycle {
			return // result still cancellable: cannot be architectural yet
		}
		if e.isStore() {
			// Data must be ready (stores dispatch on address sources only).
			if rdy, ok := c.producerComplete(e.dataSeq, cycle); !ok {
				return
			} else if rdy > cycle {
				return
			}
			c.pushDrain(drainStore{addr: e.rec.EA, size: e.rec.Size, ok: cycle + 1})
		}
		if e.isLoad() {
			c.lqCount--
		}
		if c.pipeTracer != nil {
			c.pipeTracer(&PipeEvent{
				Seq: e.seq, PC: e.rec.PC, Op: e.rec.Op, EA: e.rec.EA,
				Fetch: e.fetchCycle, Issue: e.issueCycle, Dispatch: e.dispCycle,
				Complete: e.completeCycle, Commit: cycle,
				Cancels: int(e.cancels), Mispredict: e.mispredict,
			})
		}
		if c.Observer != nil && e.isLoad() {
			c.Observer.LoadCommit(c.id, e.seq, &e.rec)
		}
		c.releaseRename(e)
		if c.serializeSeq == e.seq+1 {
			c.serializeSeq = 0
		}
		e.st = stEmpty
		c.head++
		c.Stats.Committed++
		c.Stats.CommittedByClass[e.rec.Op]++
		if c.warmupLeft > 0 {
			c.warmupLeft--
			if c.warmupLeft == 0 {
				c.resetMeasurement()
			}
		}
	}
}

// producerComplete reports whether the producer (seq+1 handle) has finally
// completed, and when. Handles of committed producers are complete at 0.
func (c *CPU) producerComplete(handle uint64, cycle uint64) (uint64, bool) {
	if handle == 0 {
		return 0, true
	}
	p := c.entry(handle - 1)
	if p == nil {
		return 0, true // committed
	}
	if p.st != stDispatched {
		return 0, false
	}
	if p.specUntil > cycle {
		return 0, false // still cancellable
	}
	return p.completeCycle, true
}

// releaseRename drops rename bookkeeping at commit.
func (c *CPU) releaseRename(e *robEntry) {
	if e.rec.HasDst() {
		if isa.IsIntReg(e.rec.Dst) {
			c.intInFlight--
		} else {
			c.fpInFlight--
		}
		if c.renameProducer[e.rec.Dst] == e.seq+1 {
			c.renameProducer[e.rec.Dst] = 0
		}
	}
}

// attributeZeroCommit classifies a cycle in which nothing retired by the
// condition blocking the window head.
func (c *CPU) attributeZeroCommit(cycle uint64) {
	if c.head == c.tail {
		c.Stats.ZeroCommitFrontend++
		return
	}
	e := &c.window[c.head&c.winMask]
	switch {
	case e.st == stWaiting:
		c.Stats.ZeroCommitRS++
	case e.rec.Op.IsMemory() && (e.completeCycle == never || e.completeCycle > cycle):
		c.Stats.ZeroCommitMemory++
	case e.completeCycle > cycle:
		c.Stats.ZeroCommitExecute++
	case e.specUntil > cycle:
		c.Stats.ZeroCommitSpec++
	case e.isStore():
		c.Stats.ZeroCommitMemory++ // store data not captured yet
	default:
		c.Stats.ZeroCommitExecute++
	}
}

// resetMeasurement clears all statistics at the warmup boundary so the
// reported numbers reflect steady state (the paper starts its traces only
// after the workload "reaches a steady state").
func (c *CPU) resetMeasurement() {
	// Seed Fetched with the instructions already in flight (window + fetch
	// buffer): they were fetched before the warmup boundary but will commit
	// after it, and without the seed a truncated or cancelled run could
	// report fetched < committed — violating the fetch ≥ commit conservation
	// invariant the verification harness enforces.
	c.Stats = Stats{Cycles: 1, Fetched: uint64(c.inFlight() + c.fetchBufLen())}
	if c.pred != nil {
		c.pred.Stats = bpred.Stats{}
	}
	m := c.Mem
	m.L1I.Stats, m.L1D.Stats, m.L2.Stats = cacheStatsZero, cacheStatsZero, cacheStatsZero
	m.ITLB.Accesses, m.ITLB.Misses = 0, 0
	m.DTLB.Accesses, m.DTLB.Misses = 0, 0
	m.TLBStallCycles, m.UpgradeRequests = 0, 0
}

// String summarizes pipeline state (debugging aid).
func (c *CPU) String() string {
	return fmt.Sprintf("cpu%d: seq[%d,%d) fetchbuf=%d lq=%d sq=%d drain=%d",
		c.id, c.head, c.tail, c.fetchBufLen(), c.lqCount, c.sqCount, c.drainLen())
}
