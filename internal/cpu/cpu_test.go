package cpu

import (
	"testing"

	"sparc64v/internal/cache"
	"sparc64v/internal/config"
	"sparc64v/internal/isa"
	"sparc64v/internal/trace"
)

// fakePort is a fixed-latency stand-in for the system beyond the L2.
type fakePort struct {
	latency    uint64
	fetches    int
	upgrades   int
	writebacks int
}

func (f *fakePort) FetchLine(_ int, _ uint64, exclusive bool, cycle uint64) (uint64, cache.State) {
	f.fetches++
	st := cache.Exclusive
	if exclusive {
		st = cache.Modified
	}
	return cycle + f.latency, st
}
func (f *fakePort) Upgrade(_ int, _ uint64, cycle uint64) uint64 {
	f.upgrades++
	return cycle + 10
}
func (f *fakePort) Writeback(_, _ uint64) { f.writebacks++ }

// testConfig returns the base machine with warmup disabled and cache/TLB/
// branch interference removed, so each microbenchmark isolates the core
// behavior it asserts on. Tests that exercise the memory path switch the
// relevant Perfect knob back off.
func testConfig() config.Config {
	cfg := config.Base()
	cfg.WarmupInsts = 0
	cfg.Perfect.Branch = true
	cfg.Perfect.TLB = true
	cfg.Perfect.L1 = true
	return cfg
}

// runTrace executes recs to completion and returns the CPU.
func runTrace(t *testing.T, cfg config.Config, recs []trace.Record) *CPU {
	t.Helper()
	port := &fakePort{latency: 100}
	chip := NewChipMem(&cfg, 0, port)
	c := New(&cfg, 0, chip, trace.NewSliceSource(recs))
	for cycle := uint64(0); !c.Done(); cycle++ {
		if cycle > 2_000_000 {
			t.Fatalf("deadlock: %v", c)
		}
		c.Tick(cycle)
	}
	return c
}

func alu(pc uint64, dst, src uint8) trace.Record {
	return trace.Record{PC: pc, Op: isa.IntALU, Dst: dst, Src1: src, Src2: isa.RegNone}
}

// nops returns independent ALU ops looping over a 2KB hot code region so
// the I-cache warms (the tests measure core behavior, not cold-code fetch).
func nops(n int, startPC uint64) []trace.Record {
	out := make([]trace.Record, n)
	for i := range out {
		out[i] = trace.Record{PC: startPC + uint64(4*(i%512)), Op: isa.IntALU,
			Dst: uint8(8 + i%16), Src1: isa.RegNone, Src2: isa.RegNone}
	}
	return out
}

// A long chain of dependent single-cycle ALU ops must sustain ~1 IPC
// (back-to-back forwarding), never more.
func TestDependentChainIPC(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 2000; i++ {
		recs = append(recs, alu(uint64(0x1000+4*(i%512)), uint8(8+(i+1)%16), uint8(8+i%16)))
	}
	c := runTrace(t, testConfig(), recs)
	ipc := c.Stats.IPC()
	if ipc < 0.85 || ipc > 1.01 {
		t.Errorf("dependent-chain IPC = %.3f, want ~1", ipc)
	}
}

// Independent ALU ops are bounded by the two EX units, not the 4-wide
// issue.
func TestIndependentALUThroughput(t *testing.T) {
	recs := nops(4000, 0x1000)
	c := runTrace(t, testConfig(), recs)
	ipc := c.Stats.IPC()
	if ipc < 1.7 || ipc > 2.05 {
		t.Errorf("independent ALU IPC = %.3f, want ~2 (two EX units)", ipc)
	}
}

// Mixed int and FP independent work can exceed 2 IPC by using EX and FL
// units together.
func TestMixedUnitThroughput(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 4000; i++ {
		if i%2 == 0 {
			recs = append(recs, alu(uint64(0x1000+4*(i%512)), uint8(8+i%8), isa.RegNone))
		} else {
			recs = append(recs, trace.Record{PC: uint64(0x1000 + 4*(i%512)), Op: isa.FPAdd,
				Dst: uint8(int(isa.FPRegBase) + 4 + i%8), Src1: isa.RegNone, Src2: isa.RegNone})
		}
	}
	c := runTrace(t, testConfig(), recs)
	if ipc := c.Stats.IPC(); ipc < 2.5 {
		t.Errorf("mixed-unit IPC = %.3f, want > 2.5", ipc)
	}
}

// FP latency shows up in a dependent FP chain: ~1/latency IPC.
func TestFPChainLatency(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 1000; i++ {
		recs = append(recs, trace.Record{PC: uint64(0x1000 + 4*(i%512)), Op: isa.FPMulAdd,
			Dst:  uint8(int(isa.FPRegBase) + 4 + (i+1)%8),
			Src1: uint8(int(isa.FPRegBase) + 4 + i%8), Src2: isa.RegNone})
	}
	c := runTrace(t, testConfig(), recs)
	lat := float64(config.Base().CPU.Latencies[isa.FPMulAdd].Cycles)
	ipc := c.Stats.IPC()
	want := 1 / lat
	if ipc < want*0.8 || ipc > want*1.2 {
		t.Errorf("FP chain IPC = %.3f, want ~%.3f", ipc, want)
	}
}

// Loads that hit the L1 deliver to dependents after the hit latency.
func TestLoadUseLatency(t *testing.T) {
	cfg := testConfig()
	// One load (warmed line) followed by a dependent chain; measure that a
	// load->use->load chain is paced by hit latency + overheads.
	var recs []trace.Record
	// Warm the line first with an untimed pass (same trace twice; second
	// pass hits).
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 500; i++ {
			recs = append(recs, trace.Record{PC: uint64(0x1000 + 4*i), Op: isa.Load,
				EA: 0x100000, Size: 8, Dst: 8, Src1: 8, Src2: isa.RegNone})
		}
	}
	c := runTrace(t, cfg, recs)
	// Each load's address depends on the previous load: serialized at
	// roughly hit latency + issue overhead per load.
	cpi := 1 / c.Stats.IPC()
	if cpi < float64(cfg.L1D.HitCycles) || cpi > float64(cfg.L1D.HitCycles)+4 {
		t.Errorf("chained-load CPI = %.2f, want ~%d+overheads", cpi, cfg.L1D.HitCycles)
	}
}

// Speculative dispatch: on an all-hit workload it beats the conservative
// machine; on misses it produces cancels.
func TestSpeculativeDispatch(t *testing.T) {
	mk := func() []trace.Record {
		var recs []trace.Record
		for i := 0; i < 3000; i++ {
			// load -> dependent ALU, loads all hit after warmup (one line).
			recs = append(recs, trace.Record{PC: uint64(0x1000 + 8*(i%256)), Op: isa.Load,
				EA: 0x100000 + uint64(i%8)*8, Size: 8, Dst: 8, Src1: isa.RegNone, Src2: isa.RegNone})
			recs = append(recs, alu(uint64(0x1004+8*(i%256)), 9, 8))
		}
		return recs
	}
	cfgSpec := testConfig()
	cfgNoSpec := testConfig()
	cfgNoSpec.CPU.SpeculativeDispatch = false
	spec := runTrace(t, cfgSpec, mk())
	noSpec := runTrace(t, cfgNoSpec, mk())
	if spec.Stats.IPC() <= noSpec.Stats.IPC() {
		t.Errorf("speculative dispatch IPC %.3f not above conservative %.3f",
			spec.Stats.IPC(), noSpec.Stats.IPC())
	}
	if spec.Stats.SpecCancels > 4 {
		t.Errorf("nearly-all-hit run produced %d cancels (cold misses only expected)",
			spec.Stats.SpecCancels)
	}
	if noSpec.Stats.SpecCancels != 0 {
		t.Errorf("conservative run produced %d cancels", noSpec.Stats.SpecCancels)
	}
}

func TestSpeculativeDispatchCancelsOnMisses(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 800; i++ {
		// Every load misses (new line each time) and feeds a dependent.
		recs = append(recs, trace.Record{PC: uint64(0x1000 + 8*(i%256)), Op: isa.Load,
			EA: uint64(0x100000 + i*4096), Size: 8, Dst: 8, Src1: isa.RegNone, Src2: isa.RegNone})
		recs = append(recs, alu(uint64(0x1004+8*(i%256)), 9, 8))
	}
	cfg := testConfig()
	cfg.Perfect.L1 = false
	c := runTrace(t, cfg, recs)
	if c.Stats.SpecCancels == 0 {
		t.Error("all-miss run produced no speculative cancels")
	}
}

// A mispredicted branch must cost far more than a correctly predicted one.
func TestMispredictPenalty(t *testing.T) {
	// A tight loop with one branch: "good" takes it every iteration (the
	// 2-bit counter trains perfectly); "bad" alternates (the counter is
	// always wrong in one direction).
	mk := func(alternate bool) []trace.Record {
		var recs []trace.Record
		for i := 0; i < 2000; i++ {
			recs = append(recs, alu(0x1000, 8, isa.RegNone))
			tk := !alternate || i%2 == 0
			rec := trace.Record{PC: 0x1004, Op: isa.Branch, Taken: tk,
				Dst: isa.RegNone, Src1: 8, Src2: isa.RegNone}
			if tk {
				rec.EA = 0x1000
			}
			recs = append(recs, rec)
		}
		return recs
	}
	cfg := testConfig()
	cfg.Perfect.Branch = false
	good := runTrace(t, cfg, mk(false))
	cfg2 := testConfig()
	cfg2.Perfect.Branch = false
	bad := runTrace(t, cfg2, mk(true))
	if bad.Stats.IPC() >= good.Stats.IPC()*0.8 {
		t.Errorf("mispredicting run IPC %.3f not clearly below predictable %.3f",
			bad.Stats.IPC(), good.Stats.IPC())
	}
	if bad.pred.Stats.Mispredicts() == 0 {
		t.Error("alternating branches produced no mispredicts")
	}
}

// Perfect branch mode removes all branch costs.
func TestPerfectBranch(t *testing.T) {
	var recs []trace.Record
	pc := uint64(0x1000)
	for i := 0; i < 1000; i++ {
		tgt := pc + 8
		recs = append(recs, trace.Record{PC: pc, Op: isa.Branch, Taken: true, EA: tgt,
			Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
		pc = tgt
	}
	cfg := testConfig() // Perfect.Branch = true
	c := runTrace(t, cfg, recs)
	if c.Stats.FetchStallBranch != 0 || c.Stats.FetchBubbles != 0 {
		t.Errorf("perfect branch still stalled: %+v", c.Stats)
	}
}

// Store queue capacity throttles store bursts.
func TestStoreDrain(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 500; i++ {
		recs = append(recs, trace.Record{PC: uint64(0x1000 + 4*(i%512)), Op: isa.Store,
			EA: 0x200000 + uint64(i%64)*8, Size: 8,
			Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
	}
	c := runTrace(t, testConfig(), recs)
	if c.Stats.StoresDrained != 500 {
		t.Errorf("drained %d stores, want 500", c.Stats.StoresDrained)
	}
	if c.Stats.StallSQ == 0 {
		t.Error("a pure store burst should hit the 10-entry store queue limit")
	}
}

// Bank conflicts appear when two same-cycle accesses map to one bank and
// disappear under the bank-conflict-free fidelity.
func TestBankConflicts(t *testing.T) {
	mk := func() []trace.Record {
		var recs []trace.Record
		for i := 0; i < 2000; i++ {
			// Pairs of independent loads to the same bank (same 4-byte
			// offset in different lines of one warmed page).
			recs = append(recs, trace.Record{PC: uint64(0x1000 + 8*(i%256)), Op: isa.Load,
				EA: 0x100000 + uint64(i%4)*256, Size: 8, Dst: uint8(8 + i%4), Src1: isa.RegNone, Src2: isa.RegNone})
		}
		return recs
	}
	cfg := testConfig()
	with := runTrace(t, cfg, mk())
	cfg2 := testConfig()
	cfg2.Fidelity.BankConflicts = false
	without := runTrace(t, cfg2, mk())
	if with.Stats.BankConflicts == 0 {
		t.Error("same-bank load pairs produced no conflicts")
	}
	if without.Stats.BankConflicts != 0 {
		t.Error("fidelity switch did not disable bank conflicts")
	}
}

// The 64-entry window limits memory-level parallelism under long misses.
func TestWindowStall(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 300; i++ {
		recs = append(recs, trace.Record{PC: uint64(0x1000 + 16*(i%128)), Op: isa.Load,
			EA: uint64(0x100000 + i*4096), Size: 8, Dst: 8, Src1: isa.RegNone, Src2: isa.RegNone})
		for j := 0; j < 3; j++ {
			recs = append(recs, alu(uint64(0x1004+16*(i%128)+4*j), uint8(10+j), 8))
		}
	}
	cfg := testConfig()
	cfg.Perfect.L1 = false
	c := runTrace(t, cfg, recs)
	if c.Stats.StallWindow == 0 && c.Stats.StallRS == 0 && c.Stats.StallLQ == 0 {
		t.Error("miss-heavy run hit no backpressure at all")
	}
}

// Crude special-instruction modeling serializes and costs far more than
// detailed modeling (the paper's v5 fidelity event, Figure 19).
func TestSpecialInstructionFidelity(t *testing.T) {
	mk := func() []trace.Record {
		var recs []trace.Record
		for i := 0; i < 500; i++ {
			recs = append(recs, alu(uint64(0x1000+12*(i%128)), 8, isa.RegNone))
			recs = append(recs, trace.Record{PC: uint64(0x1004 + 12*(i%128)), Op: isa.Special,
				Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
			recs = append(recs, alu(uint64(0x1008+12*(i%128)), 9, isa.RegNone))
		}
		return recs
	}
	detailed := runTrace(t, testConfig(), mk())
	cfg := testConfig()
	cfg.CPU.SpecialDetailed = false
	crude := runTrace(t, cfg, mk())
	if crude.Stats.IPC() >= detailed.Stats.IPC()*0.7 {
		t.Errorf("crude special IPC %.3f not well below detailed %.3f",
			crude.Stats.IPC(), detailed.Stats.IPC())
	}
	if crude.Stats.SpecialSerialized != 500 {
		t.Errorf("SpecialSerialized = %d", crude.Stats.SpecialSerialized)
	}
}

// Data forwarding: disabling it slows dependent chains.
func TestDataForwardingAblation(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 2000; i++ {
		recs = append(recs, alu(uint64(0x1000+4*(i%512)), uint8(8+(i+1)%16), uint8(8+i%16)))
	}
	withFwd := runTrace(t, testConfig(), recs)
	cfg := testConfig()
	cfg.CPU.DataForwarding = false
	withoutFwd := runTrace(t, cfg, recs)
	if withoutFwd.Stats.IPC() >= withFwd.Stats.IPC() {
		t.Errorf("no-forwarding IPC %.3f not below forwarding %.3f",
			withoutFwd.Stats.IPC(), withFwd.Stats.IPC())
	}
}

// Issue width 2 must be slower than 4 on parallel work that spreads across
// unit classes (pure-int work is already bounded by the two EX units).
func TestIssueWidthEffect(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 4000; i++ {
		pc := uint64(0x1000 + 4*(i%512))
		switch i % 4 {
		case 0, 1:
			recs = append(recs, alu(pc, uint8(8+i%8), isa.RegNone))
		default:
			recs = append(recs, trace.Record{PC: pc, Op: isa.FPAdd,
				Dst: uint8(int(isa.FPRegBase) + 4 + i%8), Src1: isa.RegNone, Src2: isa.RegNone})
		}
	}
	four := runTrace(t, testConfig(), recs)
	cfg := testConfig().WithIssueWidth(2)
	cfg.WarmupInsts = 0
	two := runTrace(t, cfg, recs)
	if two.Stats.IPC() >= four.Stats.IPC() {
		t.Errorf("2-wide IPC %.3f not below 4-wide %.3f", two.Stats.IPC(), four.Stats.IPC())
	}
	if two.Stats.IPC() > 2.01 {
		t.Errorf("2-wide IPC %.3f exceeds issue width", two.Stats.IPC())
	}
}

// The OneRS topology must not be slower than 2RS (flexible dispatch),
// matching Figure 18's direction.
func TestOneRSNotSlower(t *testing.T) {
	// Bursty pattern: pairs of ready ALU ops that can collide in one RS.
	var recs []trace.Record
	for i := 0; i < 3000; i++ {
		recs = append(recs, alu(uint64(0x1000+4*(i%512)), uint8(8+i%4), uint8(8+(i+2)%4)))
	}
	twoRS := runTrace(t, testConfig(), recs)
	cfg := testConfig().WithOneRS()
	cfg.WarmupInsts = 0
	oneRS := runTrace(t, cfg, recs)
	if oneRS.Stats.IPC() < twoRS.Stats.IPC()*0.98 {
		t.Errorf("1RS IPC %.3f below 2RS %.3f", oneRS.Stats.IPC(), twoRS.Stats.IPC())
	}
}

// Warmup resets statistics.
func TestWarmupReset(t *testing.T) {
	cfg := testConfig()
	cfg.WarmupInsts = 1000
	recs := nops(3000, 0x1000)
	c := runTrace(t, cfg, recs)
	if c.Stats.Committed != 2000 {
		t.Errorf("post-warmup Committed = %d, want 2000", c.Stats.Committed)
	}
}

// Done must become true exactly when everything drains, and ticking a done
// CPU is harmless.
func TestDoneAndIdleTick(t *testing.T) {
	c := runTrace(t, testConfig(), nops(10, 0x1000))
	if !c.Done() {
		t.Fatal("not done after drain")
	}
	cycles := c.Stats.Cycles
	c.Tick(999999)
	if c.Stats.Cycles != cycles {
		t.Error("ticking a done CPU advanced stats")
	}
}

// A load immediately after an overlapping store must be satisfied by
// store-queue bypass: no cache access, forwarding latency applied.
func TestStoreToLoadForwarding(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 1000; i++ {
		addr := 0x200000 + uint64(i%16)*64
		recs = append(recs, trace.Record{PC: uint64(0x1000 + 8*(i%256)), Op: isa.Store,
			EA: addr, Size: 8, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
		recs = append(recs, trace.Record{PC: uint64(0x1004 + 8*(i%256)), Op: isa.Load,
			EA: addr, Size: 8, Dst: 8, Src1: isa.RegNone, Src2: isa.RegNone})
	}
	c := runTrace(t, testConfig(), recs)
	if c.Stats.StoreForwards == 0 {
		t.Fatal("no store-to-load forwards on store/load pairs")
	}
	// Forwarded loads never touch the cache: with forwarding disabled the
	// same trace performs more cache accesses.
	cfg := testConfig()
	cfg.CPU.StoreForwarding = false
	c2 := runTrace(t, cfg, recs)
	if c2.Stats.StoreForwards != 0 {
		t.Fatal("forwarding fired while disabled")
	}
	if c.Stats.IPC() < c2.Stats.IPC()*0.95 {
		t.Errorf("forwarding IPC %.3f well below non-forwarding %.3f",
			c.Stats.IPC(), c2.Stats.IPC())
	}
}

// Forwarding must not fire for non-overlapping addresses.
func TestStoreForwardNoFalsePositives(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 400; i++ {
		recs = append(recs, trace.Record{PC: uint64(0x1000 + 8*(i%256)), Op: isa.Store,
			EA: 0x200000 + uint64(i%16)*64, Size: 8,
			Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
		recs = append(recs, trace.Record{PC: uint64(0x1004 + 8*(i%256)), Op: isa.Load,
			EA: 0x300000 + uint64(i%16)*64, Size: 8, Dst: 8,
			Src1: isa.RegNone, Src2: isa.RegNone})
	}
	c := runTrace(t, testConfig(), recs)
	if c.Stats.StoreForwards != 0 {
		t.Fatalf("%d spurious forwards", c.Stats.StoreForwards)
	}
}

// The online CPI stack must attribute every zero-commit cycle, and a
// memory-bound run must attribute mostly to memory.
func TestZeroCommitAttribution(t *testing.T) {
	cfg := testConfig()
	cfg.Perfect.L1 = false
	var recs []trace.Record
	for i := 0; i < 400; i++ {
		recs = append(recs, trace.Record{PC: uint64(0x1000 + 8*(i%128)), Op: isa.Load,
			EA: uint64(0x400000 + i*4096), Size: 8, Dst: 8, Src1: 8, Src2: isa.RegNone})
	}
	c := runTrace(t, cfg, recs)
	st := &c.Stats
	zero := st.ZeroCommitFrontend + st.ZeroCommitMemory + st.ZeroCommitExecute +
		st.ZeroCommitRS + st.ZeroCommitSpec
	// Every cycle either committed something or was attributed.
	if zero == 0 || zero > st.Cycles {
		t.Fatalf("zero-commit cycles %d of %d", zero, st.Cycles)
	}
	if st.ZeroCommitMemory < zero/2 {
		t.Errorf("dependent-miss chain attributed %d/%d to memory", st.ZeroCommitMemory, zero)
	}
}

// Two FL units must outperform one on independent multiply-add streams —
// the paper's dual-FMA HPC argument.
func TestDualFMAUnits(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 4000; i++ {
		recs = append(recs, trace.Record{PC: uint64(0x1000 + 4*(i%512)), Op: isa.FPMulAdd,
			Dst: uint8(int(isa.FPRegBase) + 4 + i%16), Src1: isa.RegNone, Src2: isa.RegNone})
	}
	two := runTrace(t, testConfig(), recs)
	cfg := testConfig()
	cfg.CPU.FPUnits = 1
	one := runTrace(t, cfg, recs)
	if two.Stats.IPC() < one.Stats.IPC()*1.5 {
		t.Errorf("dual FMA IPC %.3f not well above single %.3f",
			two.Stats.IPC(), one.Stats.IPC())
	}
	if one.Stats.IPC() > 1.05 {
		t.Errorf("single FL unit IPC %.3f exceeds its throughput bound", one.Stats.IPC())
	}
}

// Deep call chains overflow the 8-entry RAS; returns beyond its depth must
// mispredict while shallow ones stay predicted.
func TestRASOverflowMispredicts(t *testing.T) {
	cfg := testConfig()
	cfg.Perfect.Branch = false
	var recs []trace.Record
	// 12 nested calls (deeper than the RAS), then 12 returns, repeated.
	const depth = 12
	for rep := 0; rep < 50; rep++ {
		for d := 0; d < depth; d++ {
			pc := uint64(0x1000 + 16*d)
			recs = append(recs, trace.Record{PC: pc, Op: isa.Call, Taken: true,
				EA: pc + 16, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
		}
		for d := depth - 1; d >= 0; d-- {
			pc := uint64(0x1000 + 16*depth + 16*(depth-1-d))
			recs = append(recs, trace.Record{PC: pc, Op: isa.Return, Taken: true,
				EA: uint64(0x1000 + 16*d + 4), Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
		}
	}
	// Control flow here is synthetic (record PCs drive fetch directly).
	c := runTrace(t, cfg, recs)
	if c.pred.Stats.ReturnMispredicts == 0 {
		t.Fatal("RAS overflow produced no return mispredicts")
	}
	if c.pred.Stats.ReturnMispredicts >= c.pred.Stats.Returns {
		t.Fatal("every return mispredicted: RAS not working at all")
	}
}

// Matched call/return pairs within the RAS depth must never mispredict:
// the fetch stage pushes call PC + isa.InstrBytes and the trace's return
// EA points exactly there. This pins the push/pop round trip end to end
// through the pipeline, not just at the predictor API.
func TestRASCallReturnRoundTrip(t *testing.T) {
	cfg := testConfig()
	cfg.Perfect.Branch = false
	var recs []trace.Record
	const depth = 6 // within the 8-entry RAS
	for rep := 0; rep < 50; rep++ {
		for d := 0; d < depth; d++ {
			pc := uint64(0x1000 + 16*d)
			recs = append(recs, trace.Record{PC: pc, Op: isa.Call, Taken: true,
				EA: pc + 16, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
		}
		for d := depth - 1; d >= 0; d-- {
			pc := uint64(0x1000 + 16*depth + 16*(depth-1-d))
			recs = append(recs, trace.Record{PC: pc, Op: isa.Return, Taken: true,
				EA:  uint64(0x1000+16*d) + isa.InstrBytes,
				Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
		}
	}
	c := runTrace(t, cfg, recs)
	if c.pred.Stats.Returns == 0 {
		t.Fatal("no returns reached the predictor")
	}
	if n := c.pred.Stats.ReturnMispredicts; n != 0 {
		t.Fatalf("%d/%d matched returns mispredicted", n, c.pred.Stats.Returns)
	}
}

// The 32-entry integer rename bound must be the limiting stall on a window
// full of long-latency int producers.
func TestRenameLimit(t *testing.T) {
	cfg := testConfig()
	var recs []trace.Record
	for i := 0; i < 2000; i++ {
		recs = append(recs, trace.Record{PC: uint64(0x1000 + 4*(i%512)), Op: isa.IntDiv,
			Dst: uint8(8 + i%20), Src1: isa.RegNone, Src2: isa.RegNone})
	}
	c := runTrace(t, cfg, recs)
	if c.Stats.StallRename == 0 && c.Stats.StallRS == 0 {
		t.Error("divide storm produced no rename/RS backpressure")
	}
	// Non-pipelined divides on two units bound throughput at 2/latency.
	maxIPC := 2.0 / float64(cfg.CPU.Latencies[isa.IntDiv].Cycles)
	if ipc := c.Stats.IPC(); ipc > maxIPC*1.2 {
		t.Errorf("divide IPC %.4f exceeds unit bound %.4f", ipc, maxIPC)
	}
}

// The 16-entry load queue bounds outstanding loads.
func TestLoadQueueLimit(t *testing.T) {
	cfg := testConfig()
	cfg.Perfect.L1 = false
	var recs []trace.Record
	for i := 0; i < 2000; i++ {
		recs = append(recs, trace.Record{PC: uint64(0x1000 + 4*(i%512)), Op: isa.Load,
			EA: uint64(0x500000 + i*4096), Size: 8,
			Dst: uint8(8 + i%16), Src1: isa.RegNone, Src2: isa.RegNone})
	}
	c := runTrace(t, cfg, recs)
	if c.Stats.StallLQ == 0 {
		t.Error("all-miss load storm never filled the load queue")
	}
}

// TLB misses add their penalty: a page-sparse access pattern must run
// slower with the TLB modeled than with a perfect TLB.
func TestTLBPenaltyVisible(t *testing.T) {
	mk := func() []trace.Record {
		var recs []trace.Record
		for i := 0; i < 3000; i++ {
			recs = append(recs, trace.Record{PC: uint64(0x1000 + 4*(i%512)), Op: isa.Load,
				EA: uint64(0x10000000 + (i%4096)*8192), Size: 8,
				Dst: uint8(8 + i%16), Src1: isa.RegNone, Src2: isa.RegNone})
		}
		return recs
	}
	cfg := testConfig() // perfect TLB
	perfect := runTrace(t, cfg, mk())
	cfg2 := testConfig()
	cfg2.Perfect.TLB = false
	real := runTrace(t, cfg2, mk())
	if real.Stats.IPC() >= perfect.Stats.IPC() {
		t.Errorf("TLB-modeled IPC %.3f not below perfect-TLB %.3f",
			real.Stats.IPC(), perfect.Stats.IPC())
	}
	if real.Mem.TLBStallCycles == 0 {
		t.Error("no TLB stall cycles recorded")
	}
}
