package cpu

import "fmt"

// DumpWindow prints in-flight entries (debug helper used while bringing up
// the model; kept test-only).
func (c *CPU) DumpWindow() {
	for seq := c.head; seq < c.tail; seq++ {
		e := c.entry(seq)
		if e == nil {
			fmt.Printf("  seq=%d GONE\n", seq)
			continue
		}
		inSt := false
		if e.station >= 0 {
			for _, s := range c.stations[e.station] {
				if s == seq {
					inSt = true
				}
			}
		}
		fmt.Printf("  seq=%d op=%v st=%d stn=%d inStation=%v disp=%d fwd=%d comp=%d specU=%d addrR=%d acc=%v src1=%d src2=%d data=%d mp=%v\n",
			seq, e.rec.Op, e.st, e.station, inSt, e.dispCycle, int64(e.fwdCycle), int64(e.completeCycle),
			e.specUntil, int64(e.addrReady), e.accessed, e.src1Seq, e.src2Seq, e.dataSeq, e.mispredict)
	}
	fmt.Printf("  blockSeq=%d resume=%d serial=%d\n", c.blockSeq, int64(c.fetchResumeAt), c.serializeSeq)
}
