package cpu

import (
	"sparc64v/internal/config"
	"sparc64v/internal/isa"
)

// issue renames and inserts up to IssueWidth instructions per cycle from
// the fetch buffer into the window, a reservation station, and (for memory
// operations) a load/store queue slot. Issue is in-order and stalls as a
// group on the first structural hazard — the paper's argument for keeping
// the issue stage simple enough for one pipeline stage at 1.3 GHz.
func (c *CPU) issue(cycle uint64) {
	for st := range c.stations {
		c.compactStation(st, cycle)
	}
	for n := 0; n < c.issueWidth; n++ {
		if c.fetchBufLen() == 0 || c.fetchBuf[c.fetchHead].readyAt > cycle {
			return
		}
		if c.serializeSeq != 0 {
			// A crude-mode Special instruction serializes the window.
			return
		}
		fi := &c.fetchBuf[c.fetchHead]
		rec := &fi.rec

		if c.inFlight() >= c.windowSize {
			c.Stats.StallWindow++
			return
		}
		if rec.HasDst() {
			if isa.IsIntReg(rec.Dst) {
				if c.intInFlight >= c.intRename {
					c.Stats.StallRename++
					return
				}
			} else if c.fpInFlight >= c.fpRename {
				c.Stats.StallRename++
				return
			}
		}
		st := c.stationFor(rec.Op)
		if st >= 0 && !c.stationHasRoom(st, cycle) {
			c.Stats.StallRS++
			return
		}
		if rec.Op == isa.Load && c.lqCount >= c.lqEntries {
			c.Stats.StallLQ++
			return
		}
		if rec.Op == isa.Store && c.sqCount >= c.sqEntries {
			c.Stats.StallSQ++
			return
		}

		// Allocate.
		seq := c.tail
		c.tail++
		e := &c.window[seq&c.winMask]
		*e = robEntry{
			rec:        *rec,
			seq:        seq,
			st:         stWaiting,
			station:    int8(st),
			addrReady:  never,
			fetchCycle: fi.fetched,
			issueCycle: cycle,
		}
		e.mispredict = fi.outcome.Mispredict

		// Rename: resolve sources to producers, claim the destination.
		e.src1Seq = c.lookupProducer(rec.Src1)
		if rec.Op == isa.Store {
			// Stores dispatch on the address source only; the data source
			// is tracked separately and checked at commit.
			e.dataSeq = c.lookupProducer(rec.Src2)
		} else {
			e.src2Seq = c.lookupProducer(rec.Src2)
		}
		if rec.HasDst() {
			c.renameProducer[rec.Dst] = seq + 1
			if isa.IsIntReg(rec.Dst) {
				c.intInFlight++
			} else {
				c.fpInFlight++
			}
		}

		switch {
		case st >= 0:
			c.stations[st] = append(c.stations[st], seq)
		default:
			// Nop-like: completes immediately after issue.
			e.st = stDispatched
			e.dispCycle = cycle
			e.fwdCycle = cycle + 1
			e.completeCycle = cycle + 1
		}
		if rec.Op == isa.Load {
			c.lqCount++
		}
		if rec.Op == isa.Store {
			c.sqCount++
		}
		if e.mispredict {
			c.blockSeq = seq + 1
		}
		if rec.Op == isa.Special && c.specialCrude {
			c.serializeSeq = seq + 1
			c.Stats.SpecialSerialized++
		}
		c.popFetch()
	}
}

// lookupProducer returns the producer handle (seq+1, 0 = ready) for an
// architectural source register.
func (c *CPU) lookupProducer(reg uint8) uint64 {
	if reg == isa.RegNone || reg == isa.G0 || reg >= isa.NumRegs {
		return 0
	}
	h := c.renameProducer[reg]
	if h == 0 {
		return 0
	}
	if c.entry(h-1) == nil {
		return 0 // producer already committed
	}
	return h
}

// stationFor routes an instruction class to its reservation station.
func (c *CPU) stationFor(op isa.Class) int {
	switch {
	case op.IsMemory():
		return rsA
	case op.IsBranch():
		return rsBR
	case op.IsInt(), op == isa.Special:
		if c.cfg.CPU.OneRS || c.cfg.CPU.IntUnits < 2 {
			return rsE0
		}
		if len(c.stations[rsE0]) <= len(c.stations[rsE1]) {
			return rsE0
		}
		return rsE1
	case op.IsFloat():
		if c.cfg.CPU.OneRS || c.cfg.CPU.FPUnits < 2 {
			return rsF0
		}
		if len(c.stations[rsF0]) <= len(c.stations[rsF1]) {
			return rsF0
		}
		return rsF1
	default: // Nop
		return -1
	}
}

// dispatchWidthFor returns dispatches per cycle for a station (resolved
// once at New into CPU.dispWidth).
func dispatchWidthFor(p *config.CPUParams, st int) int {
	switch st {
	case rsA:
		return p.AGUnits
	case rsBR:
		return 1
	case rsE0:
		if p.OneRS && p.IntUnits >= 2 {
			return 2
		}
		return 1
	case rsF0:
		if p.OneRS && p.FPUnits >= 2 {
			return 2
		}
		return 1
	default:
		return 1
	}
}

// stationCapFor returns the entry capacity of a station (resolved once at
// New into CPU.stationCaps).
func stationCapFor(p *config.CPUParams, st int) int {
	switch st {
	case rsA:
		return p.RSAEntries
	case rsBR:
		return p.RSBREntries
	case rsE0:
		if p.OneRS {
			return 2 * p.RSEEntries
		}
		return p.RSEEntries
	case rsE1:
		return p.RSEEntries
	case rsF0:
		if p.OneRS {
			return 2 * p.RSFEntries
		}
		return p.RSFEntries
	default:
		return p.RSFEntries
	}
}

// compactStation drops entries that have left the station. An entry
// occupies its station from issue until it has dispatched and is no longer
// cancellable (memory operations continue in the LSQ).
func (c *CPU) compactStation(st int, cycle uint64) {
	s := c.stations[st][:0]
	for _, seq := range c.stations[st] {
		e := c.entry(seq)
		if e == nil || int(e.station) != st {
			continue
		}
		if e.st == stDispatched && cycle >= e.specUntil {
			continue
		}
		s = append(s, seq)
	}
	c.stations[st] = s
}

// stationHasRoom checks capacity (stations are compacted once per cycle at
// the top of issue).
func (c *CPU) stationHasRoom(st int, cycle uint64) bool {
	return len(c.stations[st]) < c.stationCaps[st]
}

// dispatch selects ready (or predicted-ready) instructions from each
// reservation station, oldest first, and schedules their execution.
func (c *CPU) dispatch(cycle uint64) {
	for st := 0; st < numStations; st++ {
		width := c.dispWidth[st]
		dispatched := 0
		for _, seq := range c.stations[st] {
			if dispatched >= width {
				break
			}
			e := c.entry(seq)
			if e == nil || e.st != stWaiting {
				continue
			}
			ready, specUntil := c.sourcesReady(e, cycle)
			if !ready {
				continue
			}
			unit := c.freeUnit(st, width, cycle)
			if unit < 0 {
				continue
			}
			c.schedule(e, st, unit, cycle, specUntil)
			dispatched++
		}
	}
}

// srcReady reports whether the producer behind handle h delivers its
// result by limit (the consumer's execute stage), and until when that
// result remains cancellable. The window lookup is inlined (vs entry) so
// the scoreboard check costs one masked load in the common cases.
func (c *CPU) srcReady(h, limit uint64) (bool, uint64) {
	if h == 0 {
		return true, 0
	}
	p := &c.window[(h-1)&c.winMask]
	if p.st == stEmpty || p.seq != h-1 {
		return true, 0 // committed: value in the register file
	}
	if p.st != stDispatched || p.fwdCycle == never {
		return false, 0
	}
	if p.fwdCycle+c.fwdPenalty > limit {
		return false, 0
	}
	return true, p.specUntil
}

// sourcesReady reports whether e may dispatch at cycle (its sources'
// results reach the execute stage in time), and until when the dispatch
// remains cancellable because a source is a still-unconfirmed load hit.
func (c *CPU) sourcesReady(e *robEntry, cycle uint64) (bool, uint64) {
	limit := cycle + execOffset
	ok, spec1 := c.srcReady(e.src1Seq, limit)
	if !ok {
		return false, 0
	}
	ok, spec2 := c.srcReady(e.src2Seq, limit)
	if !ok {
		return false, 0
	}
	if spec2 > spec1 {
		spec1 = spec2
	}
	return true, spec1
}

// execOffset is the dispatch-to-execute depth: dispatch, register read,
// execute (section 3.1's minimum three stages).
const execOffset = 2

// freeUnit returns an execution unit of the station whose non-pipelined
// interlock (divides) has cleared, or -1. Fused 1RS stations own both
// units of their class.
func (c *CPU) freeUnit(st, width int, cycle uint64) int {
	for u := 0; u < width && u < 2; u++ {
		if c.unitFree[st][u] <= cycle+execOffset {
			return u
		}
	}
	return -1
}

// schedule marks e dispatched at cycle on the given unit and computes its
// timing.
func (c *CPU) schedule(e *robEntry, st, unit int, cycle uint64, specUntil uint64) {
	lat := c.latencies[e.rec.Op]
	execStart := cycle + execOffset
	done := execStart + uint64(lat.Cycles)

	e.st = stDispatched
	e.dispCycle = cycle
	e.specUntil = specUntil

	if !lat.Pipelined {
		c.unitFree[st][unit] = done
	}

	switch {
	case e.rec.Op.IsMemory():
		// Address generation completes; the LSQ takes over.
		e.addrReady = done
		e.fwdCycle = never // set when the access issues
		e.completeCycle = never
		if e.isStore() {
			// Stores are architecturally done once address (and, checked
			// at commit, data) are known.
			e.completeCycle = done
			e.fwdCycle = done
		}
	case e.rec.Op.IsBranch():
		e.fwdCycle = done
		e.completeCycle = done
		if e.mispredict && c.blockSeq == e.seq+1 {
			// Resolution: fetch restarts down the correct path.
			c.fetchResumeAt = done + c.redirectPen
		}
	default:
		if e.rec.Op == isa.Special && c.specialCrude {
			done = execStart + c.specialPen
		}
		e.fwdCycle = done
		e.completeCycle = done
	}
}

// processReveals applies scheduled load-miss reveals: the cycle the L1
// would have delivered a predicted hit, the scheduler learns the truth and
// cancels every speculatively dispatched dependent (section 3.1: "all
// instructions that have read-after-write dependency must be cancelled at
// every stage").
func (c *CPU) processReveals(cycle uint64) {
	if len(c.reveals) == 0 {
		return
	}
	kept := c.reveals[:0]
	for _, r := range c.reveals {
		if r.at > cycle {
			kept = append(kept, r)
			continue
		}
		c.applyReveal(r)
	}
	c.reveals = kept
}

func (c *CPU) applyReveal(r reveal) {
	e := c.entry(r.seq)
	if e == nil {
		return
	}
	e.fwdCycle = r.newFwd
	e.specUntil = 0
	// Walk younger in-flight instructions in order; cancel any whose
	// dispatch relied on data that now arrives later.
	for seq := r.seq + 1; seq < c.tail; seq++ {
		d := c.entry(seq)
		if d == nil || d.st != stDispatched {
			continue
		}
		if c.dispatchStillValid(d) {
			continue
		}
		c.cancel(d)
	}
}

// dispatchStillValid re-checks a dispatched entry's source timing.
func (c *CPU) dispatchStillValid(d *robEntry) bool {
	limit := d.dispCycle + execOffset
	if ok, _ := c.srcReady(d.src1Seq, limit); !ok {
		return false
	}
	ok, _ := c.srcReady(d.src2Seq, limit)
	return ok
}

// cancel returns a dispatched entry to its reservation station.
func (c *CPU) cancel(d *robEntry) {
	c.Stats.SpecCancels++
	d.cancels++
	d.st = stWaiting
	d.dispCycle = 0
	d.fwdCycle = 0
	d.completeCycle = 0
	d.specUntil = 0
	if d.rec.Op.IsMemory() {
		d.addrReady = never
		d.accessed = false
	}
	if d.mispredict && c.blockSeq == d.seq+1 {
		// The resolving branch itself was cancelled: fetch stays blocked
		// until it re-dispatches.
		c.fetchResumeAt = never
	}
}
