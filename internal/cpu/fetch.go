package cpu

import (
	"sparc64v/internal/bpred"
	"sparc64v/internal/isa"
)

// fetch models the I-unit's five-stage fetch pipeline: up to 32 bytes
// (eight instructions) per cycle through the L1 instruction cache, guided
// by the branch history table. Being trace-driven, the model consumes
// correct-path records only; wrong-path fetch after a misprediction shows
// up as the fetch gap between the branch and its resolution.
func (c *CPU) fetch(cycle uint64) {
	if cycle < c.fetchResumeAt {
		if c.blockSeq != 0 {
			c.Stats.FetchStallBranch++
		} else if c.fetchResumeAt != never {
			c.Stats.FetchStallICache++
		} else {
			c.Stats.FetchStallBranch++
		}
		return
	}
	c.blockSeq = 0

	width := c.fetchWidth
	for n := 0; n < width; n++ {
		if c.fetchBufLen() >= c.fetchBufCap {
			return
		}
		if !c.pendingValid {
			if c.srcDone {
				return
			}
			if !c.src.Next(&c.pendingRec) {
				c.srcDone = true
				return
			}
			c.pendingValid = true
		}
		rec := c.pendingRec

		// Instruction cache: probe on every new line.
		line := rec.PC >> c.Mem.L1I.LineShift()
		if !c.haveLine || line != c.lastFetchLine {
			res := c.Mem.AccessInstr(rec.PC, cycle)
			c.lastFetchLine, c.haveLine = line, true
			if !res.L1Hit {
				// Fetch stalls until the line arrives; the pending record
				// is consumed next time.
				c.fetchResumeAt = res.Ready
				return
			}
		}

		var out bpred.Outcome
		if rec.Op.IsBranch() && !c.cfg.Perfect.Branch {
			switch rec.Op {
			case isa.Call:
				out = c.pred.Call(rec.PC)
			case isa.Return:
				out = c.pred.Return(rec.EA)
			default:
				out = c.pred.Conditional(rec.PC, rec.Taken, rec.EA)
			}
		}
		if !c.bhtBubbles {
			out.TakenBubbles = 0
		}

		c.pendingValid = false
		c.Stats.Fetched++
		c.pushFetch(fetchedInstr{
			rec:     rec,
			fetched: cycle,
			readyAt: cycle + c.pipeDepth,
			outcome: out,
		})

		if out.Mispredict {
			// Wrong path: no further fetch until the branch resolves
			// (dispatch sets fetchResumeAt).
			c.fetchResumeAt = never
			return
		}
		if rec.Op.IsBranch() && rec.Taken {
			// Redirect: the fetch group ends; BHT access latency inserts
			// bubbles before the target block.
			bub := uint64(out.TakenBubbles)
			c.Stats.FetchBubbles += bub
			c.fetchResumeAt = cycle + 1 + bub
			return
		}
	}
}
