package cpu

// Functional fast-forward execution (the sampled-simulation "atomic" mode).
//
// FastForward retires one trace record per Step with no notion of cycles:
// no window, no reservation stations, no MSHRs, no port occupancy. It only
// performs the state updates that carry history across a fast-forward gap —
// cache contents and MOESI states (with inclusion and prefetcher training),
// TLB contents, and BHT/RAS training — so that when the detailed model
// resumes, it resumes against a warm machine rather than a cold one.
//
// Deliberate approximations, documented in DESIGN.md:
//   - No timing state is touched: MSHRs, bus/DRAM occupancy and the
//     coherence controller's transfer timing are left alone. Counters the
//     warm path shares with the detailed path (cache/TLB/predictor stats)
//     do advance, which is why the sampling driver measures with snapshot
//     deltas rather than absolute counter values.
//   - MP coherence traffic between chips is not generated during
//     fast-forward: each chip warms its own hierarchy from its own trace.
//     The detailed warm-up window re-establishes cross-chip states before
//     anything is measured.

import (
	"sparc64v/internal/bpred"
	"sparc64v/internal/cache"
	"sparc64v/internal/isa"
	"sparc64v/internal/trace"
)

// FastForward functionally executes a CPU's trace records against the
// chip's memory hierarchy and branch predictor.
type FastForward struct {
	mem           *ChipMem
	pred          *bpred.Predictor // nil under perfect branch prediction
	perfectBranch bool
	lineShift     uint
	lastLine      uint64
	haveLine      bool
	// Insts counts instructions fast-forwarded through this executor.
	Insts uint64
}

// NewFastForward builds the functional executor for c, sharing c's caches,
// TLBs and predictor so warmed state is visible to the detailed model.
func NewFastForward(c *CPU) *FastForward {
	return &FastForward{
		mem:           c.Mem,
		pred:          c.pred,
		perfectBranch: c.cfg.Perfect.Branch,
		lineShift:     c.Mem.L1I.LineShift(),
	}
}

// Step functionally executes one record.
func (f *FastForward) Step(r *trace.Record) {
	f.Insts++
	// Instruction side: like the detailed fetch stage, probe once per new
	// line.
	line := r.PC >> f.lineShift
	if !f.haveLine || line != f.lastLine {
		f.mem.WarmInstr(r.PC)
		f.lastLine, f.haveLine = line, true
	}
	switch {
	case r.Op == isa.Load:
		f.mem.WarmData(r.EA, false)
	case r.Op == isa.Store:
		f.mem.WarmData(r.EA, true)
	case r.Op.IsBranch() && !f.perfectBranch:
		switch r.Op {
		case isa.Call:
			f.pred.Call(r.PC)
		case isa.Return:
			f.pred.Return(r.EA)
		default:
			f.pred.Conditional(r.PC, r.Taken, r.EA)
		}
	}
}

// ResumeSource un-latches the trace-exhausted flag so the fetch stage probes
// the source again. The sampling driver alternates the CPU between drained
// windows by refilling a budgeted source and calling this; it must only be
// called when the CPU is Done (pipeline drained).
func (c *CPU) ResumeSource() {
	c.srcDone = false
	// Force a fresh I-cache probe: fast-forward may have moved execution far
	// from the line the fetch stage last remembered.
	c.haveLine = false
}

// WarmInstr warms the instruction side for a fetch of pc: ITLB fill and an
// L1I lookup with a functional miss fill. No timing state is touched.
func (m *ChipMem) WarmInstr(pc uint64) {
	if m.cfg.Fidelity.TLBModeled && !m.cfg.Perfect.TLB {
		m.ITLB.Access(pc)
	}
	if m.cfg.Perfect.L1 {
		return
	}
	if m.L1I.Access(pc) != nil {
		return
	}
	m.warmMiss(m.L1I, pc, false)
}

// WarmData warms the data side for a load or store of addr: DTLB fill, L1D
// lookup, store write-permission state, and a functional miss fill.
func (m *ChipMem) WarmData(addr uint64, store bool) {
	if m.cfg.Fidelity.TLBModeled && !m.cfg.Perfect.TLB {
		m.DTLB.Access(addr)
	}
	if m.cfg.Perfect.L1 {
		return
	}
	if line := m.L1D.Access(addr); line != nil {
		if store && !line.State.Writable() {
			m.UpgradeRequests++
			line.State = cache.Modified
			m.L2.SetState(addr, cache.Modified)
		} else if store {
			line.State = cache.Modified
			m.L2.SetState(addr, cache.Modified)
		}
		return
	}
	m.warmMiss(m.L1D, addr, store)
}

// warmMiss services an L1 miss functionally: prefetcher training, an L2
// lookup/fill and the L1 fill, mirroring fetchIntoL1's state updates with
// none of its MSHR/port/latency bookkeeping.
func (m *ChipMem) warmMiss(l1 *cache.Cache, addr uint64, store bool) {
	if m.pf != nil && !m.cfg.Perfect.L2 {
		m.warmPrefetch(m.L2.LineAddr(addr))
	}
	if m.cfg.Fidelity.FlatMemory || m.cfg.Perfect.L2 {
		m.fillL1(l1, addr, store, 0)
		return
	}
	l2line := m.L2.Access(addr)
	switch {
	case l2line != nil && store && !l2line.State.Writable():
		l2line.State = cache.Modified
	case l2line != nil:
		// L2 hit: nothing to install.
	default:
		st := cache.Exclusive
		if store {
			st = cache.Modified
		}
		m.warmFillL2(addr, st, false)
	}
	m.fillL1(l1, addr, store, 0)
}

// warmFillL2 installs a line in the L2 with inclusion back-invalidation but
// without the memory-side writeback traffic fillL2 generates.
func (m *ChipMem) warmFillL2(addr uint64, st cache.State, prefetched bool) {
	ev, evicted := m.L2.Fill(addr, st, prefetched)
	if !evicted {
		return
	}
	vaddr := ev.Addr(m.L2.LineShift())
	if m.L1D.Invalidate(vaddr) != cache.Invalid {
		m.BackInvalidates++
	}
	if m.L1I.Invalidate(vaddr) != cache.Invalid {
		m.BackInvalidates++
	}
}

// warmPrefetch trains the prefetcher on a demand miss and applies its fills
// functionally, keeping L2 content close to the detailed model's.
func (m *ChipMem) warmPrefetch(lineAddr uint64) {
	for _, pfLine := range m.pf.OnMiss(lineAddr) {
		addr := pfLine << m.L2.LineShift()
		if m.L2.AccessPrefetch(addr) {
			continue
		}
		m.warmFillL2(addr, cache.Exclusive, true)
	}
}
