package cpu

import "sparc64v/internal/cache"

// lsqTick models the non-blocking dual operand access of section 3.2: up to
// two requests per cycle between the operand-access pipelines and the L1
// operand cache, eight 4-byte banks with abort-and-retry on conflict, loads
// held in the load queue across misses, store-to-load forwarding from the
// store queue, and committed stores draining to the cache.
//
// The model uses perfect memory disambiguation (loads never wait on
// unresolved older store addresses) — the standard trace-driven
// simplification; overlap forwarding, queue capacity, ports, banks and
// MSHR pressure are all modeled.
func (c *CPU) lsqTick(cycle uint64) {
	ports := 2
	bankA, bankB := -1, -1
	banks := c.cfg.L1D.Banks
	bankBytes := c.cfg.L1D.BankBytes
	checkBank := func(addr uint64) bool {
		if !c.bankChecks {
			return true
		}
		b := cache.Bank(addr, banks, bankBytes)
		if b == bankA || b == bankB {
			c.Stats.BankConflicts++
			return false
		}
		if bankA < 0 {
			bankA = b
		} else {
			bankB = b
		}
		return true
	}

	// Loads first, oldest first: they are latency-critical.
	for seq := c.head; seq < c.tail && ports > 0; seq++ {
		e := c.entry(seq)
		if e == nil || !e.isLoad() || e.st != stDispatched ||
			e.accessed || e.addrReady > cycle {
			continue
		}
		if c.storeForward {
			if ready, ok, wait := c.forwardFromStore(e, cycle); ok {
				ports--
				e.accessed = true
				e.completeCycle = ready
				e.fwdCycle = ready + 1
				c.Stats.StoreForwards++
				if c.Observer != nil {
					c.Observer.LoadAccess(c.id, e.seq, &e.rec, true)
				}
				continue
			} else if wait {
				continue // overlapping store's data not captured yet
			}
		}
		if !checkBank(e.rec.EA) {
			continue
		}
		res := c.Mem.AccessData(e.rec.EA, false, cycle)
		if res.Retry {
			continue // MSHRs full: retry next cycle
		}
		ports--
		e.accessed = true
		e.completeCycle = res.Ready
		if c.Observer != nil {
			c.Observer.LoadAccess(c.id, e.seq, &e.rec, false)
		}
		if !c.specDispatch {
			// Conservative machine: consumers dispatch only after the data
			// is confirmed valid, paying the dispatch-to-execute depth on
			// every load-use — the deep-pipeline bubble speculative
			// dispatch exists to remove (section 3.1).
			e.fwdCycle = res.Ready + 1 + execOffset
			continue
		}
		if res.L1Hit {
			e.fwdCycle = res.Ready + 1
			continue
		}
		// Speculative dispatch: consumers see the predicted hit timing;
		// the miss is revealed when the hit data would have arrived.
		predicted := cycle + c.hitCycles
		e.fwdCycle = predicted + 1
		e.specUntil = predicted + 1
		c.reveals = append(c.reveals, reveal{
			seq:    e.seq,
			at:     predicted,
			newFwd: res.Ready + 1,
		})
	}

	// Committed stores drain in order with leftover ports.
	for ports > 0 && c.drainLen() > 0 && c.drainQ[c.drainHead].ok <= cycle {
		d := c.drainQ[c.drainHead]
		if !checkBank(d.addr) {
			break
		}
		res := c.Mem.AccessData(d.addr, true, cycle)
		if res.Retry {
			break
		}
		ports--
		c.popDrain()
		c.sqCount--
		c.Stats.StoresDrained++
		if c.Observer != nil {
			c.Observer.StoreDrained(c.id, d.addr, d.size)
		}
	}
}

// forwardFromStore checks for an older store whose 8-byte window covers the
// load. ok means the load was satisfied by bypass at the returned cycle;
// wait means an overlapping store exists but its data is not captured yet
// (the load retries next cycle). Committed-but-undrained stores forward
// from the drain queue.
func (c *CPU) forwardFromStore(ld *robEntry, cycle uint64) (ready uint64, ok, wait bool) {
	window := ld.rec.EA &^ 7
	lat := c.storeFwdLat
	// Youngest older in-window store wins.
	for seq := ld.seq; seq > c.head; seq-- {
		e := c.entry(seq - 1)
		if e == nil || !e.isStore() || e.rec.EA&^7 != window {
			continue
		}
		if e.st != stDispatched || e.addrReady > cycle {
			return 0, false, true // address not generated yet: conservative wait
		}
		if rdy, done := c.producerComplete(e.dataSeq, cycle); !done || rdy > cycle {
			return 0, false, true // data not captured yet
		}
		return cycle + lat, true, false
	}
	// Committed stores awaiting drain.
	for i := len(c.drainQ) - 1; i >= c.drainHead; i-- {
		if c.drainQ[i].addr&^7 == window {
			return cycle + lat, true, false
		}
	}
	return 0, false, false
}
