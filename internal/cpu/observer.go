package cpu

import "sparc64v/internal/trace"

// MemObserver receives the memory-ordering-relevant events of one chip's
// core and cache hierarchy: load accesses and commits, committed-store
// drains (the point a store becomes globally visible on this model), and
// snoop invalidations arriving from other chips. The litmus harness
// (internal/litmus) implements it to reconstruct observed load values on a
// timing-only model whose trace records carry no data.
//
// Observers are strictly passive — every hook fires after the model has
// made its decision, and a nil observer costs one predictable branch per
// event. The simulation ticks CPUs sequentially, so a single observer may
// be shared across all CPUs and chips of a System without locking.
//
// Trust boundary: LineInvalidated covers snoop invalidations only
// (coherence traffic). L2-capacity back-invalidations (ChipMem.fillL2) are
// NOT reported; workloads relying on the observer must keep their shared
// footprint far below L2 capacity so lines are never silently dropped.
type MemObserver interface {
	// LoadAccess fires when a load obtains its value: from the cache
	// hierarchy, or from an older in-flight store (forwarded=true). A
	// cancelled load re-accesses; later calls for the same seq override.
	LoadAccess(cpu int, seq uint64, rec *trace.Record, forwarded bool)
	// LoadCommit fires when a load retires; its value is architectural.
	LoadCommit(cpu int, seq uint64, rec *trace.Record)
	// StoreDrained fires when a committed store leaves the store queue and
	// writes the cache — the global-visibility point. Drains are FIFO, so
	// the n-th drain to a given address is that CPU's n-th program store.
	StoreDrained(cpu int, addr uint64, size uint8)
	// LineInvalidated fires when a snoop from another chip invalidates the
	// line containing addr on chip's caches.
	LineInvalidated(chip int, addr uint64)
}
