package cpu

import (
	"fmt"
	"strings"

	"sparc64v/internal/isa"
)

// PipeEvent is the lifecycle of one committed instruction through the
// pipeline, for visualization and model debugging (the kind of detailed
// per-instruction comparison the paper ran between the performance model
// and the logic simulator).
type PipeEvent struct {
	// Seq is the global instruction sequence number.
	Seq uint64
	// PC and Op identify the instruction.
	PC uint64
	Op isa.Class
	// EA is the memory effective address or taken-branch target from the
	// trace record (zero otherwise) — the "memory side effect" the
	// differential verification harness compares instruction-by-instruction
	// against the reference oracle.
	EA uint64
	// Fetch, Issue, Dispatch, Complete, Commit are the cycles the
	// instruction passed each stage (Dispatch is the final, successful
	// dispatch when cancellations occurred).
	Fetch, Issue, Dispatch, Complete, Commit uint64
	// Cancels counts speculative-dispatch cancellations suffered.
	Cancels int
	// Mispredict marks a mispredicted control transfer.
	Mispredict bool
}

// String renders one line of a pipeline trace.
func (e *PipeEvent) String() string {
	flags := ""
	if e.Mispredict {
		flags += " MISPRED"
	}
	if e.Cancels > 0 {
		flags += fmt.Sprintf(" CANCELx%d", e.Cancels)
	}
	return fmt.Sprintf("seq=%-7d pc=%#010x %-7s F=%-8d I=%-8d D=%-8d X=%-8d C=%-8d%s",
		e.Seq, e.PC, e.Op, e.Fetch, e.Issue, e.Dispatch, e.Complete, e.Commit, flags)
}

// Lane renders a gem5-style occupancy diagram of the event relative to a
// base cycle: one character per cycle — 'f' fetch/decode, 'i' waiting in a
// reservation station, 'd' executing, '.' waiting to commit, 'C' commit.
func (e *PipeEvent) Lane(base uint64, width int) string {
	var sb strings.Builder
	for c := base; c < base+uint64(width); c++ {
		switch {
		case c < e.Fetch:
			sb.WriteByte(' ')
		case c < e.Issue:
			sb.WriteByte('f')
		case c < e.Dispatch:
			sb.WriteByte('i')
		case c < e.Complete:
			sb.WriteByte('d')
		case c < e.Commit:
			sb.WriteByte('.')
		case c == e.Commit:
			sb.WriteByte('C')
		default:
			sb.WriteByte(' ')
		}
	}
	return sb.String()
}

// SetPipeTracer installs a per-committed-instruction observer. Pass nil to
// disable. Tracing is off the hot path: a nil check per commit.
func (c *CPU) SetPipeTracer(f func(*PipeEvent)) { c.pipeTracer = f }
