package cpu

import (
	"strings"
	"testing"

	"sparc64v/internal/isa"
	"sparc64v/internal/trace"
)

func TestPipeTracerOrdering(t *testing.T) {
	cfg := testConfig()
	recs := nops(500, 0x1000)
	port := &fakePort{latency: 100}
	chip := NewChipMem(&cfg, 0, port)
	c := New(&cfg, 0, chip, trace.NewSliceSource(recs))
	var events []PipeEvent
	c.SetPipeTracer(func(e *PipeEvent) { events = append(events, *e) })
	for cycle := uint64(0); !c.Done(); cycle++ {
		c.Tick(cycle)
	}
	if len(events) != 500 {
		t.Fatalf("traced %d events, want 500", len(events))
	}
	for i := range events {
		e := &events[i]
		if e.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d (commit must be in order)", i, e.Seq)
		}
		if !(e.Fetch <= e.Issue && e.Issue <= e.Dispatch &&
			e.Dispatch < e.Complete && e.Complete <= e.Commit) {
			t.Fatalf("event %d stages out of order: %+v", i, e)
		}
	}
	// Commit cycles are monotone non-decreasing.
	for i := 1; i < len(events); i++ {
		if events[i].Commit < events[i-1].Commit {
			t.Fatalf("commit order violated at %d", i)
		}
	}
}

func TestPipeTracerCancelCount(t *testing.T) {
	cfg := testConfig()
	cfg.Perfect.L1 = false
	var recs []trace.Record
	for i := 0; i < 300; i++ {
		recs = append(recs, trace.Record{PC: uint64(0x1000 + 8*(i%128)), Op: isa.Load,
			EA: uint64(0x100000 + i*4096), Size: 8, Dst: 8, Src1: isa.RegNone, Src2: isa.RegNone})
		recs = append(recs, alu(uint64(0x1004+8*(i%128)), 9, 8))
	}
	port := &fakePort{latency: 100}
	chip := NewChipMem(&cfg, 0, port)
	c := New(&cfg, 0, chip, trace.NewSliceSource(recs))
	cancels := 0
	c.SetPipeTracer(func(e *PipeEvent) { cancels += e.Cancels })
	for cycle := uint64(0); !c.Done(); cycle++ {
		c.Tick(cycle)
	}
	if cancels == 0 {
		t.Fatal("miss-heavy run traced no cancellations")
	}
	if uint64(cancels) != c.Stats.SpecCancels {
		t.Fatalf("traced cancels %d != stats %d", cancels, c.Stats.SpecCancels)
	}
}

func TestPipeEventRendering(t *testing.T) {
	e := PipeEvent{Seq: 7, PC: 0x1000, Op: isa.Load,
		Fetch: 10, Issue: 16, Dispatch: 18, Complete: 25, Commit: 26,
		Cancels: 1, Mispredict: true}
	s := e.String()
	for _, want := range []string{"seq=7", "load", "MISPRED", "CANCELx1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
	lane := e.Lane(8, 24)
	if len(lane) != 24 {
		t.Fatalf("lane width %d", len(lane))
	}
	for _, ch := range []string{"f", "i", "d", "C"} {
		if !strings.Contains(lane, ch) {
			t.Errorf("lane missing %q: %q", ch, lane)
		}
	}
}
