package cpu

// Counter-block arithmetic for the sampling driver (internal/core), which
// measures detailed windows as snapshot deltas: every field of Stats is a
// monotonic counter, so a window's activity is simply after.Sub(before),
// and whole-run measured activity is the Add over all windows.

// Sub returns the field-wise difference s - o (s must be a later snapshot
// of the same counter block).
func (s Stats) Sub(o Stats) Stats {
	d := Stats{
		Cycles:             s.Cycles - o.Cycles,
		Committed:          s.Committed - o.Committed,
		Fetched:            s.Fetched - o.Fetched,
		StallWindow:        s.StallWindow - o.StallWindow,
		StallRename:        s.StallRename - o.StallRename,
		StallRS:            s.StallRS - o.StallRS,
		StallLQ:            s.StallLQ - o.StallLQ,
		StallSQ:            s.StallSQ - o.StallSQ,
		FetchStallICache:   s.FetchStallICache - o.FetchStallICache,
		FetchStallBranch:   s.FetchStallBranch - o.FetchStallBranch,
		FetchBubbles:       s.FetchBubbles - o.FetchBubbles,
		SpecCancels:        s.SpecCancels - o.SpecCancels,
		BankConflicts:      s.BankConflicts - o.BankConflicts,
		StoresDrained:      s.StoresDrained - o.StoresDrained,
		StoreForwards:      s.StoreForwards - o.StoreForwards,
		SpecialSerialized:  s.SpecialSerialized - o.SpecialSerialized,
		ZeroCommitFrontend: s.ZeroCommitFrontend - o.ZeroCommitFrontend,
		ZeroCommitMemory:   s.ZeroCommitMemory - o.ZeroCommitMemory,
		ZeroCommitExecute:  s.ZeroCommitExecute - o.ZeroCommitExecute,
		ZeroCommitRS:       s.ZeroCommitRS - o.ZeroCommitRS,
		ZeroCommitSpec:     s.ZeroCommitSpec - o.ZeroCommitSpec,
	}
	for i := range d.CommittedByClass {
		d.CommittedByClass[i] = s.CommittedByClass[i] - o.CommittedByClass[i]
	}
	return d
}

// Add returns the field-wise sum s + o.
func (s Stats) Add(o Stats) Stats {
	a := Stats{
		Cycles:             s.Cycles + o.Cycles,
		Committed:          s.Committed + o.Committed,
		Fetched:            s.Fetched + o.Fetched,
		StallWindow:        s.StallWindow + o.StallWindow,
		StallRename:        s.StallRename + o.StallRename,
		StallRS:            s.StallRS + o.StallRS,
		StallLQ:            s.StallLQ + o.StallLQ,
		StallSQ:            s.StallSQ + o.StallSQ,
		FetchStallICache:   s.FetchStallICache + o.FetchStallICache,
		FetchStallBranch:   s.FetchStallBranch + o.FetchStallBranch,
		FetchBubbles:       s.FetchBubbles + o.FetchBubbles,
		SpecCancels:        s.SpecCancels + o.SpecCancels,
		BankConflicts:      s.BankConflicts + o.BankConflicts,
		StoresDrained:      s.StoresDrained + o.StoresDrained,
		StoreForwards:      s.StoreForwards + o.StoreForwards,
		SpecialSerialized:  s.SpecialSerialized + o.SpecialSerialized,
		ZeroCommitFrontend: s.ZeroCommitFrontend + o.ZeroCommitFrontend,
		ZeroCommitMemory:   s.ZeroCommitMemory + o.ZeroCommitMemory,
		ZeroCommitExecute:  s.ZeroCommitExecute + o.ZeroCommitExecute,
		ZeroCommitRS:       s.ZeroCommitRS + o.ZeroCommitRS,
		ZeroCommitSpec:     s.ZeroCommitSpec + o.ZeroCommitSpec,
	}
	for i := range a.CommittedByClass {
		a.CommittedByClass[i] = s.CommittedByClass[i] + o.CommittedByClass[i]
	}
	return a
}
