package expt

import (
	"context"
	"fmt"

	"sparc64v/internal/analytic"
	"sparc64v/internal/core"
	"sparc64v/internal/stats"
)

// AnalyticStudyCtx renders the grey-box analytic estimator's accuracy
// against the detailed model: per workload, the base-configuration measured
// and predicted CPI, the fitted overlap coefficients, and the residual
// spread across the eight-configuration calibration ladder. The study reads
// the embedded calibration artifact — the measured numbers are the detailed
// reference runs recorded at calibration time — so it costs no simulation
// and is deterministic by construction (the analytic-residual check in
// cmd/verify re-validates the artifact against fresh detailed runs).
func AnalyticStudyCtx(ctx context.Context, opt core.RunOptions) (Result, error) {
	cal, err := analytic.Default()
	if err != nil {
		return Result{}, err
	}
	t := stats.NewTable("Analytic CPI estimator vs detailed model (base configuration)",
		"workload", "detailed CPI", "analytic CPI", "err %", "ladder worst err %", "ladder rmse %",
		"c_core", "c_mem", "c_branch", "c_0")
	for _, wc := range cal.Workloads {
		var base *analytic.Residual
		for i := range wc.Residuals {
			if wc.Residuals[i].Config == "sparc64v.base" {
				base = &wc.Residuals[i]
			}
		}
		if base == nil {
			return Result{}, fmt.Errorf("expt: %s: artifact has no base-configuration residual",
				wc.Features.Workload)
		}
		t.AddRow(wc.Features.Workload,
			base.MeasuredCPI, base.EstimatedCPI, 100*base.RelErr,
			100*wc.MaxRelErr, 100*wc.RMSE,
			wc.Coeffs.Core, wc.Coeffs.Mem, wc.Coeffs.Branch, wc.Coeffs.Const)
	}
	return Result{ID: "Estimator", Title: "Grey-box analytic CPI model", Table: t,
		Notes: []string{
			fmt.Sprintf("calibrated against %s detailed runs at %d instructions, seed %d; "+
				"regenerate with cmd/calibrate", cal.ModelVersion, cal.Insts, cal.Seed),
			"coefficients are per-workload overlap factors on the additive core/memory/branch " +
				"penalty terms; the out-of-order window hides the remainder",
			"POST /v1/estimate serves this model in microseconds; estimates carry the " +
				"ladder worst-case error as their confidence band",
		}}, nil
}
