package expt

import (
	"context"
	"encoding/json"
	"testing"

	"sparc64v/internal/config"
	"sparc64v/internal/core"
	"sparc64v/internal/runcache"
	"sparc64v/internal/workload"
)

// batchTestJobs builds a study-shaped job set: several uniprocessor
// workloads across a config neighborhood (each workload forms one BatchKey
// group), plus one multiprocessor job with scaled options (its own group),
// plus a duplicated point (same key twice — the runcache dedup case).
func batchTestJobs(opt core.RunOptions) []job {
	base := config.Base()
	cfgs := []config.Config{base, base.WithIssueWidth(2), base.WithSmallBHT(), base.WithoutPrefetch()}
	profiles := []workload.Profile{workload.SPECint95(), workload.SPECfp95(), workload.TPCC()}
	jobs := crossJobs(profiles, cfgs, opt)
	jobs = append(jobs, job{cfg: base.WithCPUs(2), p: workload.TPCC16P(), opt: mpOpt(opt)})
	jobs = append(jobs, job{cfg: base, p: workload.SPECint95(), opt: opt}) // duplicate point
	return jobs
}

// TestRunJobsBatchedMatchesSerial pins the harness half of the batching
// contract: runJobs with opt.Batch > 1 must return reports byte-identical
// to the serial path, in submission order, at every worker count — the
// grouping, chunking and scatter must be invisible in the results.
func TestRunJobsBatchedMatchesSerial(t *testing.T) {
	opt := core.RunOptions{Insts: 15_000}
	jobs := batchTestJobs(opt)

	opt.Workers = 1
	want, err := runJobs(context.Background(), jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := make([][]byte, len(want))
	for i := range want {
		b, err := json.Marshal(want[i])
		if err != nil {
			t.Fatal(err)
		}
		wantBytes[i] = b
	}

	for _, workers := range []int{1, 4, 8} {
		for _, batch := range []int{2, 3, 16} {
			bo := opt
			bo.Workers = workers
			bo.Batch = batch
			got, err := runJobs(context.Background(), jobs, bo)
			if err != nil {
				t.Fatalf("workers=%d batch=%d: %v", workers, batch, err)
			}
			if len(got) != len(want) {
				t.Fatalf("workers=%d batch=%d: %d reports, want %d", workers, batch, len(got), len(want))
			}
			for i := range got {
				b, err := json.Marshal(got[i])
				if err != nil {
					t.Fatal(err)
				}
				if string(b) != string(wantBytes[i]) {
					t.Errorf("workers=%d batch=%d: job %d report differs from serial", workers, batch, i)
				}
			}
		}
	}
}

// TestRunJobsBatchedSampled pins the same contract for sampled runs: the
// lockstep fast-forward/measure schedule must not perturb the reports.
func TestRunJobsBatchedSampled(t *testing.T) {
	opt := core.RunOptions{Insts: 60_000,
		Sample: config.Sampling{IntervalInsts: 15_000, WarmupInsts: 1_000, MeasureInsts: 2_000}}
	base := config.Base()
	jobs := crossJobs(
		[]workload.Profile{workload.SPECint2000(), workload.TPCC()},
		[]config.Config{base, base.WithSmallL1(), base.WithOffChipL2(2)}, opt)

	opt.Workers = 1
	want, err := runJobs(context.Background(), jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	bo := opt
	bo.Workers = 4
	bo.Batch = 8
	got, err := runJobs(context.Background(), jobs, bo)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		wb, _ := json.Marshal(want[i])
		gb, _ := json.Marshal(got[i])
		if string(wb) != string(gb) {
			t.Errorf("job %d: sampled batched report differs from serial", i)
		}
	}
}

// TestRunJobsBatchedCache exercises the batch/runcache composition at the
// harness level: a second batched pass over the same jobs must serve every
// member from the cache (no new misses) and return identical bytes.
func TestRunJobsBatchedCache(t *testing.T) {
	cache, err := runcache.New(runcache.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.RunOptions{Insts: 10_000, Workers: 2, Batch: 4, Cache: cache}
	base := config.Base()
	jobs := crossJobs(
		[]workload.Profile{workload.SPECint95()},
		[]config.Config{base, base.WithIssueWidth(2), base.WithSmallBHT()}, opt)

	first, err := runJobs(context.Background(), jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Misses; got != uint64(len(jobs)) {
		t.Fatalf("first pass misses = %d, want %d", got, len(jobs))
	}
	second, err := runJobs(context.Background(), jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	s := cache.Stats()
	if s.Misses != uint64(len(jobs)) {
		t.Errorf("second pass added misses: %d total, want %d", s.Misses, len(jobs))
	}
	if s.Hits() < uint64(len(jobs)) {
		t.Errorf("second pass hits = %d, want >= %d", s.Hits(), len(jobs))
	}
	for i := range first {
		fb, _ := json.Marshal(first[i])
		sb, _ := json.Marshal(second[i])
		if string(fb) != string(sb) {
			t.Errorf("job %d: cache-served report differs from simulated", i)
		}
	}
}
