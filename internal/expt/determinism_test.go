package expt

import (
	"testing"

	"sparc64v/internal/core"
)

// TestAllDeterministicAcrossWorkers is the scheduler's core contract: the
// full study suite — every result, including the Section 2.1 calibration
// table — must render byte-identically whether it runs serially or fanned
// out. (Wall-clock throughput, the one thing parallelism changes, is
// reported on cmd/sweep's stderr, never in a rendered table.)
func TestAllDeterministicAcrossWorkers(t *testing.T) {
	opt := core.RunOptions{Insts: 20_000}

	opt.Workers = 1
	serial, err := All(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 8
	parallel, err := All(opt)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.ID != p.ID {
			t.Fatalf("result %d: ID %q (serial) vs %q (parallel)", i, s.ID, p.ID)
		}
		if got, want := p.String(), s.String(); got != want {
			t.Errorf("%s differs between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
				s.ID, want, got)
		}
	}
}
