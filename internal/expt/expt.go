// Package expt reproduces every table and figure of the paper's evaluation
// (section 4 and 5). Each harness sets up the same machine comparisons the
// paper ran on its performance model and renders the same rows/series.
// Absolute numbers differ (synthetic workloads, not Fujitsu's traces) but
// the comparisons' shapes are the reproduction target; see EXPERIMENTS.md.
package expt

import (
	"fmt"
	"time"

	"sparc64v/internal/config"
	"sparc64v/internal/core"
	"sparc64v/internal/stats"
	"sparc64v/internal/system"
	"sparc64v/internal/verif"
	"sparc64v/internal/workload"
)

// Result is one reproduced table or figure.
type Result struct {
	// ID is the paper artifact ("Table 1", "Figure 7", ...).
	ID string
	// Title describes the study.
	Title string
	// Table holds the data.
	Table *stats.Table
	// Chart is an ASCII rendering of the figure's headline series (the
	// paper presents these as bar graphs), when one applies.
	Chart string
	// Notes records expected-shape commentary.
	Notes []string
}

// String renders the result.
func (r *Result) String() string {
	s := fmt.Sprintf("== %s: %s ==\n%s", r.ID, r.Title, r.Table.String())
	if r.Chart != "" {
		s += "\n" + r.Chart
	}
	for _, n := range r.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

// run executes one workload on one configuration.
func run(cfg config.Config, p workload.Profile, opt core.RunOptions) (system.Report, error) {
	m, err := core.NewModel(cfg)
	if err != nil {
		return system.Report{}, err
	}
	return m.Run(p, opt)
}

// mpOpt scales a run down for 16-processor studies (16 traces execute in
// one global-cycle loop; per-CPU windows shrink to keep total work sane).
func mpOpt(opt core.RunOptions) core.RunOptions {
	o := opt
	if o.Insts <= 0 {
		o.Insts = 400_000
	}
	o.Insts /= 4
	if o.Insts < 30_000 {
		o.Insts = 30_000
	}
	o.Warmup = uint64(o.Insts / 5)
	return o
}

// Table1 reports the base machine parameters (the paper's Table 1).
func Table1() Result {
	c := config.Base()
	t := stats.NewTable("SPARC64 V microarchitecture (base model)", "parameter", "value")
	t.AddRow("Instruction set architecture", "SPARC-V9")
	t.AddRow("Execution control", "out-of-order superscalar")
	t.AddRow("Issue width", c.CPU.IssueWidth)
	t.AddRow("Instruction window", c.CPU.WindowSize)
	t.AddRow("Instruction fetch width (bytes)", c.CPU.FetchBytes)
	t.AddRow("Renaming registers (int/fp)",
		fmt.Sprintf("%d/%d", c.CPU.IntRenameRegs, c.CPU.FPRenameRegs))
	t.AddRow("Reservation stations",
		fmt.Sprintf("RSE 2x%d, RSF 2x%d, RSA %d, RSBR %d",
			c.CPU.RSEEntries, c.CPU.RSFEntries, c.CPU.RSAEntries, c.CPU.RSBREntries))
	t.AddRow("Execution units",
		fmt.Sprintf("EX %d, FL %d (multiply-add), EAG %d",
			c.CPU.IntUnits, c.CPU.FPUnits, c.CPU.AGUnits))
	t.AddRow("Load/store queues",
		fmt.Sprintf("%d/%d", c.CPU.LoadQueueEntries, c.CPU.StoreQueueEntries))
	t.AddRow("Branch history table",
		fmt.Sprintf("%d-way, %dK-entry, %d-cycle", c.BHT.Ways, c.BHT.Entries>>10, c.BHT.AccessCycles))
	t.AddRow("L1 caches (I/D)",
		fmt.Sprintf("%d-way, %dKB, %d/%d-cycle", c.L1I.Ways, c.L1I.SizeBytes>>10,
			c.L1I.HitCycles, c.L1D.HitCycles))
	t.AddRow("L1D banks", fmt.Sprintf("%dx%dB", c.L1D.Banks, c.L1D.BankBytes))
	t.AddRow("L2 cache",
		fmt.Sprintf("on-chip %d-way %dMB, %d-cycle", c.Mem.L2.Ways,
			c.Mem.L2.SizeBytes>>20, c.Mem.L2.HitCycles))
	t.AddRow("Memory latency (cycles)", c.Mem.DRAMCycles)
	t.AddRow("Hardware prefetch",
		fmt.Sprintf("L1-miss triggered, degree %d, stride detector", c.Mem.PrefetchDegree))
	return Result{ID: "Table 1", Title: "Microarchitecture", Table: t}
}

// Fig07 reproduces the benchmark characterization: execution-time
// breakdown into core / branch / ibs+tlb / sx via perfect-ization.
func Fig07(opt core.RunOptions) (Result, error) {
	t := stats.NewTable("Execution time breakdown (fraction of cycles)",
		"workload", "core", "branch", "ibs/tlb", "sx")
	m, err := core.NewModel(config.Base())
	if err != nil {
		return Result{}, err
	}
	var labels []string
	var shares [][]float64
	for _, p := range workload.UPProfiles() {
		br, err := m.Breakdown(p, opt)
		if err != nil {
			return Result{}, err
		}
		b := br.Breakdown
		t.AddRow(p.Name, b.Core, b.Branch, b.IBSTLB, b.SX)
		labels = append(labels, p.Name)
		shares = append(shares, []float64{b.Core, b.Branch, b.IBSTLB, b.SX})
	}
	chart := stats.StackedBars("", labels, shares,
		[]string{"core", "branch", "ibs/tlb", "sx"}, []rune{'c', 'b', 'i', 's'})
	return Result{
		ID:    "Figure 7",
		Title: "Benchmark characteristics",
		Table: t,
		Chart: chart,
		Notes: []string{
			"expected: TPC-C dominated by sx (L2 miss) stalls;",
			"SPECint95 spends ~30% on branch stalls; SPECfp95 ~74% in the core",
		},
	}, nil
}

// Fig08 reproduces the issue-width study: 4-way vs 2-way IPC.
func Fig08(opt core.RunOptions) (Result, error) {
	t := stats.NewTable("Issue width: 4-way vs 2-way",
		"workload", "IPC 4w", "IPC 2w", "2w vs 4w %")
	base := config.Base()
	two := base.WithIssueWidth(2)
	var labels []string
	var deltas []float64
	for _, p := range workload.UPProfiles() {
		r4, err := run(base, p, opt)
		if err != nil {
			return Result{}, err
		}
		r2, err := run(two, p, opt)
		if err != nil {
			return Result{}, err
		}
		d := stats.PercentDelta(r2.IPC(), r4.IPC())
		t.AddRow(p.Name, r4.IPC(), r2.IPC(), d)
		labels = append(labels, p.Name)
		deltas = append(deltas, d)
	}
	return Result{
		ID:    "Figure 8",
		Title: "Issue width — 4-way vs 2-way",
		Table: t,
		Chart: stats.Bars("2-way IPC relative to 4-way (%)", labels, deltas, "%"),
		Notes: []string{"expected: 2-way clearly slower everywhere; largest gap on high-hit-ratio SPECint"},
	}, nil
}

// Fig09and10 reproduces the BHT geometry study: IPC and prediction
// failure rates for 16k-4w.2t vs 4k-2w.1t.
func Fig09and10(opt core.RunOptions) (Result, Result, error) {
	ipc := stats.NewTable("BHT geometry: IPC",
		"workload", "IPC 16k-4w.2t", "IPC 4k-2w.1t", "4k vs 16k %")
	fail := stats.NewTable("Branch prediction failures (mispredicts/branch)",
		"workload", "16k-4w.2t", "4k-2w.1t", "increase %")
	base := config.Base()
	small := base.WithSmallBHT()
	for _, p := range workload.UPProfiles() {
		rb, err := run(base, p, opt)
		if err != nil {
			return Result{}, Result{}, err
		}
		rs, err := run(small, p, opt)
		if err != nil {
			return Result{}, Result{}, err
		}
		ipc.AddRow(p.Name, rb.IPC(), rs.IPC(), stats.PercentDelta(rs.IPC(), rb.IPC()))
		fb, fs := rb.BranchFailureRate(), rs.BranchFailureRate()
		fail.AddRow(p.Name, fb, fs, stats.PercentDelta(fs, fb))
	}
	r9 := Result{ID: "Figure 9", Title: "Branch history table — latency vs size", Table: ipc,
		Notes: []string{"expected: SPEC ~indifferent (small table's 1-cycle access compensates);",
			"TPC-C loses ~5% IPC with the small table"}}
	r10 := Result{ID: "Figure 10", Title: "Branch prediction failures", Table: fail,
		Notes: []string{"expected: TPC-C failure rate ~60% greater on 4k-2w.1t; SPEC unchanged"}}
	return r9, r10, nil
}

// Fig11to13 reproduces the L1 geometry study: IPC and I/D miss ratios for
// 128k-2w.4c vs 32k-1w.3c.
func Fig11to13(opt core.RunOptions) (Result, Result, Result, error) {
	ipc := stats.NewTable("L1 geometry: IPC",
		"workload", "IPC 128k-2w.4c", "IPC 32k-1w.3c", "32k vs 128k %")
	imiss := stats.NewTable("L1 instruction cache miss ratio",
		"workload", "128k-2w", "32k-1w", "increase %")
	dmiss := stats.NewTable("L1 operand cache miss ratio",
		"workload", "128k-2w", "32k-1w", "increase %")
	base := config.Base()
	small := base.WithSmallL1()
	for _, p := range workload.UPProfiles() {
		rb, err := run(base, p, opt)
		if err != nil {
			return Result{}, Result{}, Result{}, err
		}
		rs, err := run(small, p, opt)
		if err != nil {
			return Result{}, Result{}, Result{}, err
		}
		ipc.AddRow(p.Name, rb.IPC(), rs.IPC(), stats.PercentDelta(rs.IPC(), rb.IPC()))
		imiss.AddRow(p.Name, rb.L1IMissRate(), rs.L1IMissRate(),
			stats.PercentDelta(rs.L1IMissRate(), rb.L1IMissRate()))
		dmiss.AddRow(p.Name, rb.L1DMissRate(), rs.L1DMissRate(),
			stats.PercentDelta(rs.L1DMissRate(), rb.L1DMissRate()))
	}
	r11 := Result{ID: "Figure 11", Title: "L1 cache — latency vs volume", Table: ipc,
		Notes: []string{"expected: small IPC loss overall (~2% on TPC-C); SPEC barely moves"}}
	r12 := Result{ID: "Figure 12", Title: "L1 instruction cache miss", Table: imiss,
		Notes: []string{"expected: TPC-C I-miss roughly doubles (+99% in the paper) on 32k-1w"}}
	r13 := Result{ID: "Figure 13", Title: "L1 operand cache miss", Table: dmiss,
		Notes: []string{"expected: TPC-C D-miss ~+64% on 32k-1w"}}
	return r11, r12, r13, nil
}

// Fig14and15 reproduces the L2 study: on-chip 2MB 4-way vs off-chip 8MB
// 2-way and direct-mapped, including the TPC-C 16-processor SMP model.
func Fig14and15(opt core.RunOptions) (Result, Result, error) {
	ipc := stats.NewTable("L2 geometry: IPC relative to on.2m-4w (%)",
		"workload", "off.8m-2w %", "off.8m-1w %")
	miss := stats.NewTable("L2 cache miss ratio (demand)",
		"workload", "on.2m-4w", "off.8m-2w", "off.8m-1w")
	configs := []config.Config{
		config.Base(),
		config.Base().WithOffChipL2(2),
		config.Base().WithOffChipL2(1),
	}
	profiles := workload.UPProfiles()
	for _, p := range profiles {
		var ipcs [3]float64
		var misses [3]float64
		for i, cfg := range configs {
			r, err := run(cfg, p, opt)
			if err != nil {
				return Result{}, Result{}, err
			}
			ipcs[i] = r.IPC()
			misses[i] = r.L2DemandMissRate()
		}
		ipc.AddRow(p.Name, stats.PercentDelta(ipcs[1], ipcs[0]), stats.PercentDelta(ipcs[2], ipcs[0]))
		miss.AddRow(p.Name, misses[0], misses[1], misses[2])
	}
	// TPC-C (16P): the MP model.
	p16 := workload.TPCC16P()
	o16 := mpOpt(opt)
	var ipcs [3]float64
	var misses [3]float64
	for i, cfg := range configs {
		r, err := run(cfg.WithCPUs(16), p16, o16)
		if err != nil {
			return Result{}, Result{}, err
		}
		ipcs[i] = r.IPC()
		misses[i] = r.L2DemandMissRate()
	}
	ipc.AddRow(p16.Name, stats.PercentDelta(ipcs[1], ipcs[0]), stats.PercentDelta(ipcs[2], ipcs[0]))
	miss.AddRow(p16.Name, misses[0], misses[1], misses[2])

	r14 := Result{ID: "Figure 14", Title: "L2 cache — latency vs volume", Table: ipc,
		Notes: []string{"expected: off.8m-1w clearly loses on TPC-C (−12..−14%) despite 4x capacity;",
			"off.8m-2w roughly par or slightly ahead; reproduced: the −12..−16% TPC-C loss for",
			"off.8m-1w appears (code/data page conflicts in the direct-mapped array), off.8m-2w",
			"sits between it and on.2m-4w"}}
	r15 := Result{ID: "Figure 15", Title: "L2 cache miss", Table: miss,
		Notes: []string{"expected: 8MB cuts miss ratios; direct mapping gives conflicts back"}}
	return r14, r15, nil
}

// Fig16and17 reproduces the hardware prefetch study.
func Fig16and17(opt core.RunOptions) (Result, Result, error) {
	ipc := stats.NewTable("Hardware prefetch: IPC impact",
		"workload", "IPC with", "IPC without", "gain %")
	miss := stats.NewTable("L2 miss ratio under prefetch",
		"workload", "with", "with-Demand", "without")
	base := config.Base()
	nopf := base.WithoutPrefetch()
	for _, p := range workload.UPProfiles() {
		rw, err := run(base, p, opt)
		if err != nil {
			return Result{}, Result{}, err
		}
		ro, err := run(nopf, p, opt)
		if err != nil {
			return Result{}, Result{}, err
		}
		ipc.AddRow(p.Name, rw.IPC(), ro.IPC(), stats.PercentDelta(rw.IPC(), ro.IPC()))
		miss.AddRow(p.Name, rw.L2TotalMissRate(), rw.L2DemandMissRate(), ro.L2DemandMissRate())
	}
	r16 := Result{ID: "Figure 16", Title: "Hardware prefetching impact", Table: ipc,
		Notes: []string{"expected: SPECfp gains most (>13% in the paper; chain/stream access patterns);",
			"reproduced: same ordering with larger magnitudes (the 64-entry window exposes",
			"more of the un-prefetched miss latency than the paper's testbed)"}}
	r17 := Result{ID: "Figure 17", Title: "Hardware prefetching — L2 cache miss", Table: miss,
		Notes: []string{"expected: with-Demand < without (fewer demand misses);",
			"with > with-Demand exposes unnecessary prefetch traffic"}}
	return r16, r17, nil
}

// Fig18 reproduces the reservation-station topology study: fused 1RS
// (up to two dispatches) vs the adopted 2RS.
func Fig18(opt core.RunOptions) (Result, error) {
	t := stats.NewTable("Reservation stations: 2RS relative to 1RS",
		"workload", "IPC 1RS", "IPC 2RS", "2RS vs 1RS %")
	oneRS := config.Base().WithOneRS()
	twoRS := config.Base()
	for _, p := range workload.UPProfiles() {
		r1, err := run(oneRS, p, opt)
		if err != nil {
			return Result{}, err
		}
		r2, err := run(twoRS, p, opt)
		if err != nil {
			return Result{}, err
		}
		t.AddRow(p.Name, r1.IPC(), r2.IPC(), stats.PercentDelta(r2.IPC(), r1.IPC()))
	}
	return Result{ID: "Figure 18", Title: "Reservation station — 1RS vs 2RS", Table: t,
		Notes: []string{"expected: 2RS slightly slower (the paper accepts the small loss for simpler dispatch);",
			"reproduced: integer/OLTP ≈ −1% as in the paper; our FP loss is larger (station",
			"capacity pooling matters more under this model's FP chains)"}}, nil
}

// Fig19 reproduces the model-accuracy study: version estimates relative
// to the final model, and errors against the physical-machine proxy.
func Fig19(opt core.RunOptions) (Result, error) {
	t := stats.NewTable("Performance model accuracy (SPEC CPU2000 workloads)",
		"version", "detail", "int2000 perf/v8", "int2000 err vs machine %", "fp2000 perf/v8", "fp2000 err vs machine %")
	si, err := verif.RunAccuracyStudy(config.Base(), workload.SPECint2000(), opt)
	if err != nil {
		return Result{}, err
	}
	sf, err := verif.RunAccuracyStudy(config.Base(), workload.SPECfp2000(), opt)
	if err != nil {
		return Result{}, err
	}
	for i := range si.Points {
		pi, pf := si.Points[i], sf.Points[i]
		t.AddRow(pi.Name, pi.Detail, pi.RatioToFinal, 100*pi.ErrorVsMachine,
			pf.RatioToFinal, 100*pf.ErrorVsMachine)
	}
	return Result{ID: "Figure 19", Title: "Performance model accuracy", Table: t,
		Notes: []string{
			fmt.Sprintf("final error: SPECint2000 %.1f%%, SPECfp2000 %.1f%% (paper: 4.2%% / 3.9%%)",
				100*si.FinalError(), 100*sf.FinalError()),
			"expected: estimates decrease with fidelity except the v5 bump (special instructions)",
		}}, nil
}

// All runs every experiment in presentation order.
func All(opt core.RunOptions) ([]Result, error) {
	out := []Result{Table1()}
	add := func(rs ...Result) { out = append(out, rs...) }
	r7, err := Fig07(opt)
	if err != nil {
		return out, err
	}
	add(r7)
	r8, err := Fig08(opt)
	if err != nil {
		return out, err
	}
	add(r8)
	r9, r10, err := Fig09and10(opt)
	if err != nil {
		return out, err
	}
	add(r9, r10)
	r11, r12, r13, err := Fig11to13(opt)
	if err != nil {
		return out, err
	}
	add(r11, r12, r13)
	r14, r15, err := Fig14and15(opt)
	if err != nil {
		return out, err
	}
	add(r14, r15)
	r16, r17, err := Fig16and17(opt)
	if err != nil {
		return out, err
	}
	add(r16, r17)
	r18, err := Fig18(opt)
	if err != nil {
		return out, err
	}
	add(r18)
	r19, err := Fig19(opt)
	if err != nil {
		return out, err
	}
	add(r19)
	hpc, err := HPCStudy(opt)
	if err != nil {
		return out, err
	}
	add(hpc)
	add(ModelSpeed())
	return out, nil
}

// HPCStudy is an extension experiment (not a paper figure): it quantifies
// the dual floating-point multiply-add units the paper highlights as the
// machine's HPC feature, on a dense FMA kernel.
func HPCStudy(opt core.RunOptions) (Result, error) {
	t := stats.NewTable("Dual multiply-add units on a dense FP kernel",
		"configuration", "IPC", "vs base %")
	kernel := workload.HPC()
	variants := []struct {
		name   string
		mutate func(*config.Config)
	}{
		{"base (2x FL, 4-issue)", nil},
		{"1x FL unit", func(c *config.Config) { c.CPU.FPUnits = 1 }},
		{"2-issue", func(c *config.Config) { *c = c.WithIssueWidth(2) }},
		{"no speculative dispatch", func(c *config.Config) { c.CPU.SpeculativeDispatch = false }},
		{"no data forwarding", func(c *config.Config) { c.CPU.DataForwarding = false }},
	}
	var base float64
	for i, v := range variants {
		cfg := config.Base()
		if v.mutate != nil {
			v.mutate(&cfg)
		}
		r, err := run(cfg, kernel, opt)
		if err != nil {
			return Result{}, err
		}
		if i == 0 {
			base = r.IPC()
		}
		t.AddRow(v.name, r.IPC(), stats.PercentDelta(r.IPC(), base))
	}
	return Result{ID: "Extension", Title: "HPC: dual multiply-add units", Table: t,
		Notes: []string{"the paper: \"having two sets of floating-point multiply-add execution",
			"units is effective for HPC performance\" — quantified here"}}, nil
}

// ModelSpeed measures the simulator's own throughput — the modern
// counterpart of the paper's "7.8K instructions per second on a 1-GHz
// Pentium III" quote for their C model.
func ModelSpeed() Result {
	t := stats.NewTable("Performance-model execution speed (this host)",
		"workload", "simulated instrs/second")
	for _, p := range []workload.Profile{workload.SPECint95(), workload.TPCC()} {
		m, err := core.NewModel(config.Base())
		if err != nil {
			continue
		}
		start := timeNow()
		r, err := m.Run(p, core.RunOptions{Insts: 200_000})
		if err != nil {
			continue
		}
		sec := timeNow().Sub(start).Seconds()
		t.AddRow(p.Name, float64(r.Committed+uint64(200_000/5))/sec)
	}
	return Result{ID: "Section 2.1", Title: "Model speed", Table: t,
		Notes: []string{"the paper's model ran at 7.8K instr/s on a 1-GHz Pentium III"}}
}

// timeNow is indirected for tests.
var timeNow = time.Now
