// Package expt reproduces every table and figure of the paper's evaluation
// (section 4 and 5). Each harness sets up the same machine comparisons the
// paper ran on its performance model and renders the same rows/series.
// Absolute numbers differ (synthetic workloads, not Fujitsu's traces) but
// the comparisons' shapes are the reproduction target; see EXPERIMENTS.md.
//
// Every study is a set of independent (configuration, workload)
// simulations — exactly how the paper's team ran them — so each harness
// submits its runs to the sched worker pool and assembles tables from the
// deterministically ordered results. All itself runs whole studies
// concurrently on top of that. Workers = 1 (core.RunOptions.Workers)
// degenerates to the historical serial sweep with identical output.
package expt

import (
	"context"
	"fmt"
	"strings"
	"time"

	"sparc64v/internal/config"
	"sparc64v/internal/core"
	"sparc64v/internal/sched"
	"sparc64v/internal/stats"
	"sparc64v/internal/system"
	"sparc64v/internal/verif"
	"sparc64v/internal/workload"
)

// Result is one reproduced table or figure.
type Result struct {
	// ID is the paper artifact ("Table 1", "Figure 7", ...).
	ID string
	// Title describes the study.
	Title string
	// Table holds the data.
	Table *stats.Table
	// Chart is an ASCII rendering of the figure's headline series (the
	// paper presents these as bar graphs), when one applies.
	Chart string
	// Notes records expected-shape commentary.
	Notes []string
	// Elapsed is the study's wall-clock time when produced by All
	// (results of one multi-figure study share the value). It is not part
	// of String(), so rendered tables stay byte-identical across worker
	// counts and hosts.
	Elapsed time.Duration
}

// String renders the result.
func (r *Result) String() string {
	s := fmt.Sprintf("== %s: %s ==\n%s", r.ID, r.Title, r.Table.String())
	if r.Chart != "" {
		s += "\n" + r.Chart
	}
	for _, n := range r.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

// MeterReset zeroes the simulation throughput meter. The meter itself
// lives in core (it counts every simulation actually executed in this
// process, and only those — cache-served results don't inflate it); these
// wrappers keep the historical expt API for callers like cmd/sweep.
func MeterReset() { core.MeterReset() }

// Meter returns committed instructions and simulation runs accumulated
// since the last reset.
func Meter() (instrs, runs uint64) {
	instrs, _, runs = core.Meter()
	return instrs, runs
}

// run executes one workload on one configuration.
func run(ctx context.Context, cfg config.Config, p workload.Profile, opt core.RunOptions) (system.Report, error) {
	m, err := core.NewModel(cfg)
	if err != nil {
		return system.Report{}, err
	}
	return m.RunContext(ctx, p, opt)
}

// job is one independent simulation of a study.
type job struct {
	cfg config.Config
	p   workload.Profile
	opt core.RunOptions
}

// runJobs executes a study's simulations on the scheduler and returns the
// reports in submission order. With opt.Batch > 1 the jobs are first grouped
// by core.BatchKey — everything that pins the decoded trace stream — and
// each group of up to opt.Batch members becomes one core.RunBatch lockstep
// unit that streams the trace once. Results scatter back to submission
// order and the returned error is still the lowest-submission-index job
// error, so batching changes neither the reports' bytes nor the error a
// caller observes (pinned by TestRunJobsBatchedMatchesSerial).
func runJobs(ctx context.Context, jobs []job, opt core.RunOptions) ([]system.Report, error) {
	if opt.Batch > 1 {
		return runJobsBatched(ctx, jobs, opt)
	}
	return sched.MapCtx(ctx, len(jobs), sched.Options{Workers: opt.Workers},
		func(ctx context.Context, i int) (system.Report, error) {
			return run(ctx, jobs[i].cfg, jobs[i].p, jobs[i].opt)
		})
}

// runJobsBatched is runJobs' batching path: group by BatchKey in submission
// order, chunk each group to at most opt.Batch members, run chunks on the
// scheduler (singleton chunks take the ordinary serial path), and scatter
// the per-member results back to submission order.
func runJobsBatched(ctx context.Context, jobs []job, opt core.RunOptions) ([]system.Report, error) {
	groups := make(map[string][]int)
	var order []string
	for i, j := range jobs {
		key, err := core.BatchKey(j.cfg, j.p, j.opt)
		if err != nil {
			// Unkeyable jobs (unhashable profile) run alone; the serial path
			// surfaces the underlying error with its usual context.
			key = fmt.Sprintf("\x00unkeyed\x00%d", i)
		}
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}
	var chunks [][]int
	for _, key := range order {
		idx := groups[key]
		for len(idx) > opt.Batch {
			chunks = append(chunks, idx[:opt.Batch])
			idx = idx[opt.Batch:]
		}
		chunks = append(chunks, idx)
	}

	out := make([]system.Report, len(jobs))
	jobErrs := make([]error, len(jobs))
	_, chunkErrs := sched.MapAllCtx(ctx, len(chunks), sched.Options{Workers: opt.Workers},
		func(ctx context.Context, ci int) (struct{}, error) {
			idx := chunks[ci]
			if len(idx) == 1 {
				i := idx[0]
				out[i], jobErrs[i] = run(ctx, jobs[i].cfg, jobs[i].p, jobs[i].opt)
				return struct{}{}, nil
			}
			cfgs := make([]config.Config, len(idx))
			for n, i := range idx {
				cfgs[n] = jobs[i].cfg
			}
			first := jobs[idx[0]]
			reps, errs := core.RunBatch(ctx, cfgs, first.p, first.opt)
			for n, i := range idx {
				out[i], jobErrs[i] = reps[n], errs[n]
			}
			return struct{}{}, nil
		})
	for ci, err := range chunkErrs {
		if err == nil {
			continue
		}
		// A chunk skipped after cancellation never wrote its members.
		for _, i := range chunks[ci] {
			if jobErrs[i] == nil {
				jobErrs[i] = err
			}
		}
	}
	for _, err := range jobErrs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// crossJobs builds the full (profile x config) product with one options
// value, profiles outermost — the iteration order every study table uses.
func crossJobs(profiles []workload.Profile, cfgs []config.Config, opt core.RunOptions) []job {
	jobs := make([]job, 0, len(profiles)*len(cfgs))
	for _, p := range profiles {
		for _, cfg := range cfgs {
			jobs = append(jobs, job{cfg: cfg, p: p, opt: opt})
		}
	}
	return jobs
}

// mpOpt scales a run down for 16-processor studies (16 traces execute in
// one global-cycle loop; per-CPU windows shrink to keep total work sane).
func mpOpt(opt core.RunOptions) core.RunOptions {
	o := opt
	if o.Insts <= 0 {
		o.Insts = 400_000
	}
	o.Insts /= 4
	if o.Insts < 30_000 {
		o.Insts = 30_000
	}
	o.Warmup = uint64(o.Insts / 5)
	return o
}

// Table1 reports the base machine parameters (the paper's Table 1).
func Table1() Result {
	c := config.Base()
	t := stats.NewTable("SPARC64 V microarchitecture (base model)", "parameter", "value")
	t.AddRow("Instruction set architecture", "SPARC-V9")
	t.AddRow("Execution control", "out-of-order superscalar")
	t.AddRow("Issue width", c.CPU.IssueWidth)
	t.AddRow("Instruction window", c.CPU.WindowSize)
	t.AddRow("Instruction fetch width (bytes)", c.CPU.FetchBytes)
	t.AddRow("Renaming registers (int/fp)",
		fmt.Sprintf("%d/%d", c.CPU.IntRenameRegs, c.CPU.FPRenameRegs))
	t.AddRow("Reservation stations",
		fmt.Sprintf("RSE 2x%d, RSF 2x%d, RSA %d, RSBR %d",
			c.CPU.RSEEntries, c.CPU.RSFEntries, c.CPU.RSAEntries, c.CPU.RSBREntries))
	t.AddRow("Execution units",
		fmt.Sprintf("EX %d, FL %d (multiply-add), EAG %d",
			c.CPU.IntUnits, c.CPU.FPUnits, c.CPU.AGUnits))
	t.AddRow("Load/store queues",
		fmt.Sprintf("%d/%d", c.CPU.LoadQueueEntries, c.CPU.StoreQueueEntries))
	t.AddRow("Branch history table",
		fmt.Sprintf("%d-way, %dK-entry, %d-cycle", c.BHT.Ways, c.BHT.Entries>>10, c.BHT.AccessCycles))
	t.AddRow("L1 caches (I/D)",
		fmt.Sprintf("%d-way, %dKB, %d/%d-cycle", c.L1I.Ways, c.L1I.SizeBytes>>10,
			c.L1I.HitCycles, c.L1D.HitCycles))
	t.AddRow("L1D banks", fmt.Sprintf("%dx%dB", c.L1D.Banks, c.L1D.BankBytes))
	t.AddRow("L2 cache",
		fmt.Sprintf("on-chip %d-way %dMB, %d-cycle", c.Mem.L2.Ways,
			c.Mem.L2.SizeBytes>>20, c.Mem.L2.HitCycles))
	t.AddRow("Memory latency (cycles)", c.Mem.DRAMCycles)
	t.AddRow("Hardware prefetch",
		fmt.Sprintf("L1-miss triggered, degree %d, stride detector", c.Mem.PrefetchDegree))
	return Result{ID: "Table 1", Title: "Microarchitecture", Table: t}
}

// Fig07 reproduces the benchmark characterization: execution-time
// breakdown into core / branch / ibs+tlb / sx via perfect-ization.
// The study is 5 workloads x 4 perfect-ization rungs = 20 independent
// simulations, flattened onto one scheduler batch.
func Fig07(opt core.RunOptions) (Result, error) {
	return Fig07Ctx(context.Background(), opt)
}

// Fig07Ctx is Fig07 with a cancellation point.
func Fig07Ctx(ctx context.Context, opt core.RunOptions) (Result, error) {
	t := stats.NewTable("Execution time breakdown (fraction of cycles)",
		"workload", "core", "branch", "ibs/tlb", "sx")
	profiles := workload.UPProfiles()
	cfgs := core.BreakdownConfigs(config.Base())
	reports, err := runJobs(ctx, crossJobs(profiles, cfgs, opt), opt)
	if err != nil {
		return Result{}, err
	}
	var labels []string
	var shares [][]float64
	for i, p := range profiles {
		br := core.AssembleBreakdown(p.Name, reports[i*len(cfgs):(i+1)*len(cfgs)])
		b := br.Breakdown
		t.AddRow(p.Name, b.Core, b.Branch, b.IBSTLB, b.SX)
		labels = append(labels, p.Name)
		shares = append(shares, []float64{b.Core, b.Branch, b.IBSTLB, b.SX})
	}
	chart := stats.StackedBars("", labels, shares,
		[]string{"core", "branch", "ibs/tlb", "sx"}, []rune{'c', 'b', 'i', 's'})
	return Result{
		ID:    "Figure 7",
		Title: "Benchmark characteristics",
		Table: t,
		Chart: chart,
		Notes: []string{
			"expected: TPC-C dominated by sx (L2 miss) stalls;",
			"SPECint95 spends ~30% on branch stalls; SPECfp95 ~74% in the core",
		},
	}, nil
}

// Fig08 reproduces the issue-width study: 4-way vs 2-way IPC.
func Fig08(opt core.RunOptions) (Result, error) {
	return Fig08Ctx(context.Background(), opt)
}

// Fig08Ctx is Fig08 with a cancellation point.
func Fig08Ctx(ctx context.Context, opt core.RunOptions) (Result, error) {
	t := stats.NewTable("Issue width: 4-way vs 2-way",
		"workload", "IPC 4w", "IPC 2w", "2w vs 4w %")
	base := config.Base()
	profiles := workload.UPProfiles()
	reports, err := runJobs(ctx, crossJobs(profiles,
		[]config.Config{base, base.WithIssueWidth(2)}, opt), opt)
	if err != nil {
		return Result{}, err
	}
	var labels []string
	var deltas []float64
	for i, p := range profiles {
		r4, r2 := reports[2*i], reports[2*i+1]
		d := stats.PercentDelta(r2.IPC(), r4.IPC())
		t.AddRow(p.Name, r4.IPC(), r2.IPC(), d)
		labels = append(labels, p.Name)
		deltas = append(deltas, d)
	}
	return Result{
		ID:    "Figure 8",
		Title: "Issue width — 4-way vs 2-way",
		Table: t,
		Chart: stats.Bars("2-way IPC relative to 4-way (%)", labels, deltas, "%"),
		Notes: []string{"expected: 2-way clearly slower everywhere; largest gap on high-hit-ratio SPECint"},
	}, nil
}

// Fig09and10 reproduces the BHT geometry study: IPC and prediction
// failure rates for 16k-4w.2t vs 4k-2w.1t.
func Fig09and10(opt core.RunOptions) (Result, Result, error) {
	return Fig09and10Ctx(context.Background(), opt)
}

// Fig09and10Ctx is Fig09and10 with a cancellation point.
func Fig09and10Ctx(ctx context.Context, opt core.RunOptions) (Result, Result, error) {
	ipc := stats.NewTable("BHT geometry: IPC",
		"workload", "IPC 16k-4w.2t", "IPC 4k-2w.1t", "4k vs 16k %")
	fail := stats.NewTable("Branch prediction failures (mispredicts/branch)",
		"workload", "16k-4w.2t", "4k-2w.1t", "increase %")
	base := config.Base()
	profiles := workload.UPProfiles()
	reports, err := runJobs(ctx, crossJobs(profiles,
		[]config.Config{base, base.WithSmallBHT()}, opt), opt)
	if err != nil {
		return Result{}, Result{}, err
	}
	for i, p := range profiles {
		rb, rs := reports[2*i], reports[2*i+1]
		ipc.AddRow(p.Name, rb.IPC(), rs.IPC(), stats.PercentDelta(rs.IPC(), rb.IPC()))
		fb, fs := rb.BranchFailureRate(), rs.BranchFailureRate()
		fail.AddRow(p.Name, fb, fs, stats.PercentDelta(fs, fb))
	}
	r9 := Result{ID: "Figure 9", Title: "Branch history table — latency vs size", Table: ipc,
		Notes: []string{"expected: SPEC ~indifferent (small table's 1-cycle access compensates);",
			"TPC-C loses ~5% IPC with the small table"}}
	r10 := Result{ID: "Figure 10", Title: "Branch prediction failures", Table: fail,
		Notes: []string{"expected: TPC-C failure rate ~60% greater on 4k-2w.1t; SPEC unchanged"}}
	return r9, r10, nil
}

// Fig11to13 reproduces the L1 geometry study: IPC and I/D miss ratios for
// 128k-2w.4c vs 32k-1w.3c.
func Fig11to13(opt core.RunOptions) (Result, Result, Result, error) {
	return Fig11to13Ctx(context.Background(), opt)
}

// Fig11to13Ctx is Fig11to13 with a cancellation point.
func Fig11to13Ctx(ctx context.Context, opt core.RunOptions) (Result, Result, Result, error) {
	ipc := stats.NewTable("L1 geometry: IPC",
		"workload", "IPC 128k-2w.4c", "IPC 32k-1w.3c", "32k vs 128k %")
	imiss := stats.NewTable("L1 instruction cache miss ratio",
		"workload", "128k-2w", "32k-1w", "increase %")
	dmiss := stats.NewTable("L1 operand cache miss ratio",
		"workload", "128k-2w", "32k-1w", "increase %")
	base := config.Base()
	profiles := workload.UPProfiles()
	reports, err := runJobs(ctx, crossJobs(profiles,
		[]config.Config{base, base.WithSmallL1()}, opt), opt)
	if err != nil {
		return Result{}, Result{}, Result{}, err
	}
	for i, p := range profiles {
		rb, rs := reports[2*i], reports[2*i+1]
		ipc.AddRow(p.Name, rb.IPC(), rs.IPC(), stats.PercentDelta(rs.IPC(), rb.IPC()))
		imiss.AddRow(p.Name, rb.L1IMissRate(), rs.L1IMissRate(),
			stats.PercentDelta(rs.L1IMissRate(), rb.L1IMissRate()))
		dmiss.AddRow(p.Name, rb.L1DMissRate(), rs.L1DMissRate(),
			stats.PercentDelta(rs.L1DMissRate(), rb.L1DMissRate()))
	}
	r11 := Result{ID: "Figure 11", Title: "L1 cache — latency vs volume", Table: ipc,
		Notes: []string{"expected: small IPC loss overall (~2% on TPC-C); SPEC barely moves"}}
	r12 := Result{ID: "Figure 12", Title: "L1 instruction cache miss", Table: imiss,
		Notes: []string{"expected: TPC-C I-miss roughly doubles (+99% in the paper) on 32k-1w"}}
	r13 := Result{ID: "Figure 13", Title: "L1 operand cache miss", Table: dmiss,
		Notes: []string{"expected: TPC-C D-miss ~+64% on 32k-1w"}}
	return r11, r12, r13, nil
}

// Fig14and15 reproduces the L2 study: on-chip 2MB 4-way vs off-chip 8MB
// 2-way and direct-mapped, including the TPC-C 16-processor SMP model.
func Fig14and15(opt core.RunOptions) (Result, Result, error) {
	return Fig14and15Ctx(context.Background(), opt)
}

// Fig14and15Ctx is Fig14and15 with a cancellation point.
func Fig14and15Ctx(ctx context.Context, opt core.RunOptions) (Result, Result, error) {
	ipc := stats.NewTable("L2 geometry: IPC relative to on.2m-4w (%)",
		"workload", "off.8m-2w %", "off.8m-1w %")
	miss := stats.NewTable("L2 cache miss ratio (demand)",
		"workload", "on.2m-4w", "off.8m-2w", "off.8m-1w")
	configs := []config.Config{
		config.Base(),
		config.Base().WithOffChipL2(2),
		config.Base().WithOffChipL2(1),
	}
	profiles := workload.UPProfiles()
	jobs := crossJobs(profiles, configs, opt)
	// TPC-C (16P): the MP model rides in the same batch.
	p16 := workload.TPCC16P()
	o16 := mpOpt(opt)
	for _, cfg := range configs {
		jobs = append(jobs, job{cfg: cfg.WithCPUs(16), p: p16, opt: o16})
	}
	reports, err := runJobs(ctx, jobs, opt)
	if err != nil {
		return Result{}, Result{}, err
	}
	addRows := func(name string, rs []system.Report) {
		ipc.AddRow(name, stats.PercentDelta(rs[1].IPC(), rs[0].IPC()),
			stats.PercentDelta(rs[2].IPC(), rs[0].IPC()))
		miss.AddRow(name, rs[0].L2DemandMissRate(), rs[1].L2DemandMissRate(),
			rs[2].L2DemandMissRate())
	}
	for i, p := range profiles {
		addRows(p.Name, reports[3*i:3*i+3])
	}
	addRows(p16.Name, reports[len(reports)-3:])

	r14 := Result{ID: "Figure 14", Title: "L2 cache — latency vs volume", Table: ipc,
		Notes: []string{"expected: off.8m-1w clearly loses on TPC-C (−12..−14%) despite 4x capacity;",
			"off.8m-2w roughly par or slightly ahead; reproduced: the −12..−16% TPC-C loss for",
			"off.8m-1w appears (code/data page conflicts in the direct-mapped array), off.8m-2w",
			"sits between it and on.2m-4w"}}
	r15 := Result{ID: "Figure 15", Title: "L2 cache miss", Table: miss,
		Notes: []string{"expected: 8MB cuts miss ratios; direct mapping gives conflicts back"}}
	return r14, r15, nil
}

// Fig16and17 reproduces the hardware prefetch study.
func Fig16and17(opt core.RunOptions) (Result, Result, error) {
	return Fig16and17Ctx(context.Background(), opt)
}

// Fig16and17Ctx is Fig16and17 with a cancellation point.
func Fig16and17Ctx(ctx context.Context, opt core.RunOptions) (Result, Result, error) {
	ipc := stats.NewTable("Hardware prefetch: IPC impact",
		"workload", "IPC with", "IPC without", "gain %")
	miss := stats.NewTable("L2 miss ratio under prefetch",
		"workload", "with", "with-Demand", "without")
	base := config.Base()
	profiles := workload.UPProfiles()
	reports, err := runJobs(ctx, crossJobs(profiles,
		[]config.Config{base, base.WithoutPrefetch()}, opt), opt)
	if err != nil {
		return Result{}, Result{}, err
	}
	for i, p := range profiles {
		rw, ro := reports[2*i], reports[2*i+1]
		ipc.AddRow(p.Name, rw.IPC(), ro.IPC(), stats.PercentDelta(rw.IPC(), ro.IPC()))
		miss.AddRow(p.Name, rw.L2TotalMissRate(), rw.L2DemandMissRate(), ro.L2DemandMissRate())
	}
	r16 := Result{ID: "Figure 16", Title: "Hardware prefetching impact", Table: ipc,
		Notes: []string{"expected: SPECfp gains most (>13% in the paper; chain/stream access patterns);",
			"reproduced: same ordering with larger magnitudes (the 64-entry window exposes",
			"more of the un-prefetched miss latency than the paper's testbed)"}}
	r17 := Result{ID: "Figure 17", Title: "Hardware prefetching — L2 cache miss", Table: miss,
		Notes: []string{"expected: with-Demand < without (fewer demand misses);",
			"with > with-Demand exposes unnecessary prefetch traffic"}}
	return r16, r17, nil
}

// Fig18 reproduces the reservation-station topology study: fused 1RS
// (up to two dispatches) vs the adopted 2RS.
func Fig18(opt core.RunOptions) (Result, error) {
	return Fig18Ctx(context.Background(), opt)
}

// Fig18Ctx is Fig18 with a cancellation point.
func Fig18Ctx(ctx context.Context, opt core.RunOptions) (Result, error) {
	t := stats.NewTable("Reservation stations: 2RS relative to 1RS",
		"workload", "IPC 1RS", "IPC 2RS", "2RS vs 1RS %")
	profiles := workload.UPProfiles()
	reports, err := runJobs(ctx, crossJobs(profiles,
		[]config.Config{config.Base().WithOneRS(), config.Base()}, opt), opt)
	if err != nil {
		return Result{}, err
	}
	for i, p := range profiles {
		r1, r2 := reports[2*i], reports[2*i+1]
		t.AddRow(p.Name, r1.IPC(), r2.IPC(), stats.PercentDelta(r2.IPC(), r1.IPC()))
	}
	return Result{ID: "Figure 18", Title: "Reservation station — 1RS vs 2RS", Table: t,
		Notes: []string{"expected: 2RS slightly slower (the paper accepts the small loss for simpler dispatch);",
			"reproduced: integer/OLTP ≈ −1% as in the paper; our FP loss is larger (station",
			"capacity pooling matters more under this model's FP chains)"}}, nil
}

// Fig19 reproduces the model-accuracy study: version estimates relative
// to the final model, and errors against the physical-machine proxy.
// The two workloads' fidelity ladders run concurrently; each ladder's nine
// simulations are themselves scheduled (verif.RunAccuracyStudy).
func Fig19(opt core.RunOptions) (Result, error) {
	return Fig19Ctx(context.Background(), opt)
}

// Fig19Ctx is Fig19 with a cancellation point.
func Fig19Ctx(ctx context.Context, opt core.RunOptions) (Result, error) {
	t := stats.NewTable("Performance model accuracy (SPEC CPU2000 workloads)",
		"version", "detail", "int2000 perf/v8", "int2000 err vs machine %", "fp2000 perf/v8", "fp2000 err vs machine %")
	var si, sf verif.AccuracyStudy
	err := sched.DoCtx(ctx, sched.Options{Workers: opt.Workers},
		func(ctx context.Context) (err error) {
			si, err = verif.RunAccuracyStudyContext(ctx, config.Base(), workload.SPECint2000(), opt)
			return
		},
		func(ctx context.Context) (err error) {
			sf, err = verif.RunAccuracyStudyContext(ctx, config.Base(), workload.SPECfp2000(), opt)
			return
		},
	)
	if err != nil {
		return Result{}, err
	}
	for i := range si.Points {
		pi, pf := si.Points[i], sf.Points[i]
		t.AddRow(pi.Name, pi.Detail, pi.RatioToFinal, 100*pi.ErrorVsMachine,
			pf.RatioToFinal, 100*pf.ErrorVsMachine)
	}
	return Result{ID: "Figure 19", Title: "Performance model accuracy", Table: t,
		Notes: []string{
			fmt.Sprintf("final error: SPECint2000 %.1f%%, SPECfp2000 %.1f%% (paper: 4.2%% / 3.9%%)",
				100*si.FinalError(), 100*sf.FinalError()),
			"expected: estimates decrease with fidelity except the v5 bump (special instructions)",
		}}, nil
}

// Study is one named entry of the full sweep. The name labels the study in
// cancellation markers (where its Results never arrived) and, slugified,
// addresses the study on the experiment service (GET /v1/studies/{slug}).
type Study struct {
	// Name is the presentation name ("Table 1", "Figures 9-10", ...).
	Name string
	// Run executes the study's simulations.
	Run func(context.Context, core.RunOptions) ([]Result, error)
}

// Slug returns the study's URL-safe identifier: lower-cased, spaces
// replaced by dashes ("Figures 9-10" -> "figures-9-10").
func (s Study) Slug() string {
	return strings.ReplaceAll(strings.ToLower(s.Name), " ", "-")
}

// Studies returns every experiment of the full sweep in presentation
// order. The registry is shared by cmd/sweep (All) and the experiment
// service (internal/server), so a study is addressable the same way
// everywhere.
func Studies() []Study {
	return []Study{
		{"Table 1", func(context.Context, core.RunOptions) ([]Result, error) {
			return []Result{Table1()}, nil
		}},
		{"Figure 7", func(ctx context.Context, o core.RunOptions) ([]Result, error) {
			r, err := Fig07Ctx(ctx, o)
			return []Result{r}, err
		}},
		{"Figure 8", func(ctx context.Context, o core.RunOptions) ([]Result, error) {
			r, err := Fig08Ctx(ctx, o)
			return []Result{r}, err
		}},
		{"Figures 9-10", func(ctx context.Context, o core.RunOptions) ([]Result, error) {
			a, b, err := Fig09and10Ctx(ctx, o)
			return []Result{a, b}, err
		}},
		{"Figures 11-13", func(ctx context.Context, o core.RunOptions) ([]Result, error) {
			a, b, c, err := Fig11to13Ctx(ctx, o)
			return []Result{a, b, c}, err
		}},
		{"Figures 14-15", func(ctx context.Context, o core.RunOptions) ([]Result, error) {
			a, b, err := Fig14and15Ctx(ctx, o)
			return []Result{a, b}, err
		}},
		{"Figures 16-17", func(ctx context.Context, o core.RunOptions) ([]Result, error) {
			a, b, err := Fig16and17Ctx(ctx, o)
			return []Result{a, b}, err
		}},
		{"Figure 18", func(ctx context.Context, o core.RunOptions) ([]Result, error) {
			r, err := Fig18Ctx(ctx, o)
			return []Result{r}, err
		}},
		{"Figure 19", func(ctx context.Context, o core.RunOptions) ([]Result, error) {
			r, err := Fig19Ctx(ctx, o)
			return []Result{r}, err
		}},
		{"Extension", func(ctx context.Context, o core.RunOptions) ([]Result, error) {
			r, err := HPCStudyCtx(ctx, o)
			return []Result{r}, err
		}},
		{"Sampling", func(ctx context.Context, o core.RunOptions) ([]Result, error) {
			r, err := SampledStudyCtx(ctx, o)
			return []Result{r}, err
		}},
		{"Section 2.1", func(ctx context.Context, o core.RunOptions) ([]Result, error) {
			return []Result{ModelSpeedCtx(ctx, o)}, nil
		}},
		{"Estimator", func(ctx context.Context, o core.RunOptions) ([]Result, error) {
			r, err := AnalyticStudyCtx(ctx, o)
			return []Result{r}, err
		}},
		{"Litmus", func(ctx context.Context, o core.RunOptions) ([]Result, error) {
			r, err := LitmusStudyCtx(ctx, o)
			return []Result{r}, err
		}},
	}
}

// incompleteResult marks a study whose results never arrived — cancelled
// mid-run, or failed — so a partial sweep still renders every slot.
func incompleteResult(name string, err error) Result {
	t := stats.NewTable("", "status")
	t.AddRow(fmt.Sprintf("not completed: %v", err))
	return Result{ID: name, Title: "(incomplete)", Table: t,
		Notes: []string{"study did not complete; see status above"}}
}

// All runs every experiment in presentation order: the studies execute
// concurrently on the scheduler (each study also schedules its own runs),
// and results come back in the fixed presentation order with per-study
// wall time stamped into Result.Elapsed.
func All(opt core.RunOptions) ([]Result, error) {
	return AllContext(context.Background(), opt)
}

// AllContext is All with a cancellation point. On cancellation (or a study
// failure) it still returns every completed study's results in
// presentation order, with an incompleteResult marker in each missing
// study's slot, alongside the lowest-index study error — so a sweep
// interrupted by a deadline or SIGINT renders everything it finished.
func AllContext(ctx context.Context, opt core.RunOptions) ([]Result, error) {
	all := Studies()
	groups, errs := sched.MapAllCtx(ctx, len(all), sched.Options{Workers: opt.Workers},
		func(ctx context.Context, i int) ([]Result, error) {
			start := timeNow()
			rs, err := all[i].Run(ctx, opt)
			elapsed := timeNow().Sub(start)
			for j := range rs {
				rs[j].Elapsed = elapsed
			}
			return rs, err
		})
	var out []Result
	var firstErr error
	for i, g := range groups {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = errs[i]
			}
			out = append(out, incompleteResult(all[i].Name, errs[i]))
			continue
		}
		out = append(out, g...)
	}
	return out, firstErr
}

// HPCStudy is an extension experiment (not a paper figure): it quantifies
// the dual floating-point multiply-add units the paper highlights as the
// machine's HPC feature, on a dense FMA kernel.
func HPCStudy(opt core.RunOptions) (Result, error) {
	return HPCStudyCtx(context.Background(), opt)
}

// HPCStudyCtx is HPCStudy with a cancellation point.
func HPCStudyCtx(ctx context.Context, opt core.RunOptions) (Result, error) {
	t := stats.NewTable("Dual multiply-add units on a dense FP kernel",
		"configuration", "IPC", "vs base %")
	kernel := workload.HPC()
	variants := []struct {
		name   string
		mutate func(*config.Config)
	}{
		{"base (2x FL, 4-issue)", nil},
		{"1x FL unit", func(c *config.Config) { c.CPU.FPUnits = 1 }},
		{"2-issue", func(c *config.Config) { *c = c.WithIssueWidth(2) }},
		{"no speculative dispatch", func(c *config.Config) { c.CPU.SpeculativeDispatch = false }},
		{"no data forwarding", func(c *config.Config) { c.CPU.DataForwarding = false }},
	}
	jobs := make([]job, len(variants))
	for i, v := range variants {
		cfg := config.Base()
		if v.mutate != nil {
			v.mutate(&cfg)
		}
		jobs[i] = job{cfg: cfg, p: kernel, opt: opt}
	}
	reports, err := runJobs(ctx, jobs, opt)
	if err != nil {
		return Result{}, err
	}
	base := reports[0].IPC()
	for i, v := range variants {
		t.AddRow(v.name, reports[i].IPC(), stats.PercentDelta(reports[i].IPC(), base))
	}
	return Result{ID: "Extension", Title: "HPC: dual multiply-add units", Table: t,
		Notes: []string{"the paper: \"having two sets of floating-point multiply-add execution",
			"units is effective for HPC performance\" — quantified here"}}, nil
}

// SampledStudy validates sampled simulation (internal/core/sample.go)
// against the full model: every uniprocessor workload runs both ways and
// the table reports the CPI agreement, the per-run window count, and the
// fraction of instructions that ran on the detailed model. The rendered
// numbers are all deterministic — wall-clock speedups are measured by the
// benchmark suite (BenchmarkSampledRun), not here, so EXPERIMENTS.md stays
// byte-identical across hosts.
func SampledStudy(opt core.RunOptions) (Result, error) {
	return SampledStudyCtx(context.Background(), opt)
}

// sampledStudySchedule is the validation schedule for a trace of n
// instructions: ~40 intervals with a 2k detailed warm-up and a measurement
// window of interval/5, clamped for short traces. The window count and the
// measure fraction are sized for SPECfp95, whose long-latency phases give
// the per-window CPI the widest spread of the standard workloads; with
// fewer or shorter windows its estimate drifts past 5%.
func sampledStudySchedule(n int) config.Sampling {
	s := config.Sampling{IntervalInsts: n / 40, WarmupInsts: 2_000}
	if s.IntervalInsts < 10_000 {
		s.IntervalInsts = 10_000
	}
	s.MeasureInsts = s.IntervalInsts / 5
	if s.MeasureInsts < 2_000 {
		s.MeasureInsts = 2_000
	}
	return s
}

// SampledStudyCtx is SampledStudy with a cancellation point.
func SampledStudyCtx(ctx context.Context, opt core.RunOptions) (Result, error) {
	opt.Sample = config.Sampling{} // the comparison baseline is always a full run
	sc := sampledStudySchedule(opt.Insts)
	t := stats.NewTable(fmt.Sprintf("Sampled vs full simulation (%s)", sc),
		"workload", "full CPI", "sampled CPI", "err %", "windows", "detailed %")
	sampOpt := opt
	sampOpt.Sample = sc
	profiles := workload.UPProfiles()
	jobs := make([]job, 0, 2*len(profiles))
	for _, p := range profiles {
		jobs = append(jobs, job{cfg: config.Base(), p: p, opt: opt},
			job{cfg: config.Base(), p: p, opt: sampOpt})
	}
	reports, err := runJobs(ctx, jobs, opt)
	if err != nil {
		return Result{}, err
	}
	for i, p := range profiles {
		full, samp := reports[2*i], reports[2*i+1]
		fullCPI, sampCPI := 1/full.IPC(), 1/samp.IPC()
		windows, detailed := 0, 0.0
		if s := samp.Sampling; s != nil {
			windows = s.Windows
			detailed = 100 * float64(s.DetailedInsts) / float64(s.DetailedInsts+s.FastForwarded)
		}
		t.AddRow(p.Name, fullCPI, sampCPI,
			stats.PercentDelta(sampCPI, fullCPI), windows, detailed)
	}
	return Result{ID: "Sampling", Title: "Sampled simulation validation", Table: t,
		Notes: []string{"sampled runs fast-forward between detailed measurement windows (SMARTS-style);",
			"CPI agreement within a few percent at a fraction of the detailed instructions —",
			"wall-clock speedup is measured by BenchmarkSampledRun (see DESIGN.md)"}}, nil
}

// ModelSpeed measures the simulator's own throughput — the modern
// counterpart of the paper's "7.8K instructions per second on a 1-GHz
// Pentium III" quote for their C model. Per-workload rows are measured
// serially (single-thread model speed); the final row runs every
// uniprocessor workload concurrently through the scheduler and reports
// effective aggregate throughput, the number that governs sweep turnaround
// on a multicore host.
func ModelSpeed(opt core.RunOptions) Result {
	return ModelSpeedCtx(context.Background(), opt)
}

// ModelSpeedCtx is ModelSpeed with a cancellation point; cancelled rows
// are simply omitted.
//
// The paper quotes an absolute simulation rate (7.8K instr/s on a 1-GHz
// Pentium III). A wall-clock rate is a property of the measuring host, so
// rendering it here would make every regenerated EXPERIMENTS.md differ;
// instead the table reports the deterministic side of the same
// calibration — the cycle counts the model computes for a fixed
// 200k-instruction trace of each workload — and cmd/sweep prints the
// measured effective sim-instrs/s on stderr. The runs honor opt.Cache
// like every other study, so a warm-cache sweep serves them without
// simulating.
func ModelSpeedCtx(ctx context.Context, opt core.RunOptions) Result {
	t := stats.NewTable("Model calibration (200k-instr runs, base configuration)",
		"workload", "instructions", "simulated cycles")
	const insts = 200_000
	for _, p := range workload.UPProfiles() {
		m, err := core.NewModel(config.Base())
		if err != nil {
			continue
		}
		r, err := m.RunContext(ctx, p, core.RunOptions{Insts: insts, Cache: opt.Cache})
		if err != nil {
			continue
		}
		t.AddRow(p.Name, r.Committed, r.MeasuredCycles())
	}
	return Result{ID: "Section 2.1", Title: "Model speed", Table: t,
		Notes: []string{"the paper's model ran at 7.8K instr/s on a 1-GHz Pentium III; " +
			"this host's measured rate is cmd/sweep's \"effective sim-instrs/s\" stderr line"}}
}

// timeNow is indirected for tests.
var timeNow = time.Now
