package expt

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"sparc64v/internal/core"
)

// Small windows keep the suite fast; shape assertions are correspondingly
// loose (the full-size shapes are validated by cmd/sweep and recorded in
// EXPERIMENTS.md).
func testOpt() core.RunOptions { return core.RunOptions{Insts: 50_000} }

func TestTable1(t *testing.T) {
	r := Table1()
	if r.ID != "Table 1" || r.Table.Rows() < 10 {
		t.Fatalf("Table1 = %+v", r)
	}
	s := r.String()
	for _, want := range []string{"SPARC-V9", "out-of-order", "16K-entry", "2MB"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestFig07(t *testing.T) {
	r, err := Fig07(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if r.Table.Rows() != 5 {
		t.Fatalf("Fig07 has %d rows", r.Table.Rows())
	}
	if !strings.Contains(r.Table.String(), "TPC-C") {
		t.Error("Fig07 missing TPC-C row")
	}
}

func TestFig08(t *testing.T) {
	r, err := Fig08(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if r.Table.Rows() != 5 {
		t.Fatalf("Fig08 has %d rows", r.Table.Rows())
	}
}

func TestFig09and10(t *testing.T) {
	r9, r10, err := Fig09and10(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if r9.Table.Rows() != 5 || r10.Table.Rows() != 5 {
		t.Fatal("BHT figures incomplete")
	}
}

func TestFig11to13(t *testing.T) {
	r11, r12, r13, err := Fig11to13(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Result{r11, r12, r13} {
		if r.Table.Rows() != 5 {
			t.Fatalf("%s has %d rows", r.ID, r.Table.Rows())
		}
	}
}

func TestFig14and15(t *testing.T) {
	r14, r15, err := Fig14and15(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	// Five UP workloads plus TPC-C(16P).
	if r14.Table.Rows() != 6 || r15.Table.Rows() != 6 {
		t.Fatalf("L2 figures: %d/%d rows", r14.Table.Rows(), r15.Table.Rows())
	}
	if !strings.Contains(r14.Table.String(), "TPC-C(16P)") {
		t.Error("Fig14 missing the 16P row")
	}
}

func TestFig16and17(t *testing.T) {
	r16, r17, err := Fig16and17(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if r16.Table.Rows() != 5 || r17.Table.Rows() != 5 {
		t.Fatal("prefetch figures incomplete")
	}
}

func TestFig18(t *testing.T) {
	r, err := Fig18(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if r.Table.Rows() != 5 {
		t.Fatalf("Fig18 has %d rows", r.Table.Rows())
	}
}

func TestFig19(t *testing.T) {
	r, err := Fig19(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if r.Table.Rows() != 8 {
		t.Fatalf("Fig19 has %d rows (want v1..v8)", r.Table.Rows())
	}
	if len(r.Notes) == 0 || !strings.Contains(r.Notes[0], "final error") {
		t.Errorf("Fig19 notes missing the final-error summary: %v", r.Notes)
	}
}

func TestMPOptScaling(t *testing.T) {
	o := mpOpt(core.RunOptions{Insts: 400_000})
	if o.Insts != 100_000 || o.Warmup != 20_000 {
		t.Fatalf("mpOpt = %+v", o)
	}
	o = mpOpt(core.RunOptions{Insts: 40_000})
	if o.Insts != 30_000 {
		t.Fatalf("mpOpt floor = %+v", o)
	}
	o = mpOpt(core.RunOptions{})
	if o.Insts != 100_000 {
		t.Fatalf("mpOpt default = %+v", o)
	}
}

func TestHPCStudy(t *testing.T) {
	r, err := HPCStudy(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if r.Table.Rows() != 5 {
		t.Fatalf("rows: %d", r.Table.Rows())
	}
}

func TestModelSpeed(t *testing.T) {
	r := ModelSpeed(testOpt())
	// One calibration row per UP workload.
	if r.Table.Rows() != 5 {
		t.Fatalf("rows: %d", r.Table.Rows())
	}
	// The rendered table must be deterministic (no wall-clock columns):
	// rendering twice gives the same bytes.
	if a, b := r.Table.String(), ModelSpeed(testOpt()).Table.String(); a != b {
		t.Error("ModelSpeed table is not deterministic across runs")
	}
}

// TestAllContextPreCancelled: a sweep whose context is already dead must
// still render a marker in every presentation slot, in order, and report
// the cancellation — the "Ctrl-C renders what finished" contract at its
// degenerate extreme where nothing finished.
func TestAllContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := AllContext(ctx, testOpt())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("AllContext err = %v", err)
	}
	all := Studies()
	if len(results) != len(all) {
		t.Fatalf("got %d results, want one marker per study (%d)", len(results), len(all))
	}
	for i, r := range results {
		if r.ID != all[i].Name {
			t.Errorf("slot %d: ID %q, want %q", i, r.ID, all[i].Name)
		}
		if r.Title != "(incomplete)" {
			t.Errorf("slot %d: Title %q, want (incomplete)", i, r.Title)
		}
		if !strings.Contains(r.Table.String(), "not completed") {
			t.Errorf("slot %d: marker table lacks status row:\n%s", i, r.Table.String())
		}
	}
}

// TestAllContextMidCancel gives a long sweep a short deadline: whatever
// studies finished keep their real tables, the rest carry markers, and
// every study has at least one slot in presentation order.
func TestAllContextMidCancel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	results, err := AllContext(ctx, core.RunOptions{Insts: 3_000_000, Workers: 2})
	if err == nil {
		t.Skip("sweep finished inside the deadline; nothing to observe")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("AllContext err = %v", err)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("cancelled sweep took %v to return", d)
	}
	if len(results) < len(Studies()) {
		t.Fatalf("only %d results for %d studies", len(results), len(Studies()))
	}
	incomplete := 0
	for _, r := range results {
		if r.Title == "(incomplete)" {
			incomplete++
		}
	}
	if incomplete == 0 {
		t.Fatal("deadline expired yet no study was marked incomplete")
	}
	t.Logf("%d/%d result slots incomplete after the deadline", incomplete, len(results))
}

// TestAllContextUncancelledMatchesAll: with a live context the ctx variant
// is the same sweep — All itself delegates to it, and determinism across
// worker counts is locked by TestAllDeterministicAcrossWorkers.
func TestAllContextUncancelledMatchesAll(t *testing.T) {
	results, err := AllContext(context.Background(), testOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Title == "(incomplete)" {
			t.Fatalf("uncancelled sweep produced an incomplete marker: %s", r.ID)
		}
	}
}
