package expt

import (
	"context"
	"fmt"
	"strings"

	"sparc64v/internal/core"
	"sparc64v/internal/litmus"
	"sparc64v/internal/stats"
)

// LitmusStudyCtx sweeps the TSO litmus-test catalog (internal/litmus) and
// renders the outcome-frequency table: every shape at its natural machine
// size, each observed register tuple with its count and TSO verdict. The
// paper's part implements SPARC TSO; this study is the repository's
// visible evidence that the SMP model both never violates it and actually
// exhibits the one relaxation TSO permits (SB's r0=0,r1=0 store-buffer
// signature). Deterministic for a fixed seed at any worker count.
func LitmusStudyCtx(ctx context.Context, opt core.RunOptions) (Result, error) {
	seed := opt.Seed
	if seed == 0 {
		seed = 42
	}
	cfg := litmus.BaseConfig()
	t := stats.NewTable("TSO litmus outcome frequencies (32 seeds per shape)",
		"shape", "cpus", "outcome", "count", "tso")
	var notes []string
	clean := true
	for _, tt := range litmus.Tests() {
		sr, err := litmus.Sweep(ctx, tt, cfg, litmus.Options{
			Seeds:    32,
			BaseSeed: seed,
			Workers:  opt.Workers,
		})
		if err != nil {
			return Result{}, fmt.Errorf("litmus %s: %w", tt.Name, err)
		}
		for _, oc := range sr.Outcomes {
			verdict := "allowed"
			if !oc.Allowed {
				verdict = "FORBIDDEN"
			}
			t.AddRow(sr.Test, sr.CPUs, oc.Outcome, oc.Count, verdict)
		}
		if !sr.OK() {
			clean = false
			notes = append(notes, fmt.Sprintf("%s: forbidden=%v witness_missing=%v",
				sr.Test, sr.Forbidden, sr.WitnessMissing))
		}
	}
	if clean {
		notes = append(notes,
			"all outcomes TSO-allowed; sb witnesses the store-buffer relaxation (r0=0 r1=0)",
			"shapes: "+strings.Join(litmus.Names(), ", ")+" — see internal/litmus and `sparc64sim -litmus`")
	} else {
		notes = append(notes, "VERDICT: FAIL — the SMP model violates SPARC TSO")
	}
	return Result{
		ID:    "Litmus",
		Title: "SPARC TSO memory-ordering conformance (litmus-test sweeps)",
		Table: t,
		Notes: notes,
	}, nil
}
