package expt

import (
	"context"
	"fmt"

	"sparc64v/internal/core"
	"sparc64v/internal/metamorph"
	"sparc64v/internal/stats"
)

// VerificationStudy exposes the metamorphic verification harness
// (internal/metamorph) as a Study, so the experiment service can run the
// invariant catalog on demand next to the paper's figures. It is
// deliberately NOT part of Studies(): the sweep registry feeds
// EXPERIMENTS.md, which reproduces the paper's artifacts, and a
// verification verdict is a gate, not a figure. The server appends it to
// its own study listing.
func VerificationStudy() Study {
	return Study{
		Name: "Verification",
		Run: func(ctx context.Context, opt core.RunOptions) ([]Result, error) {
			rep, err := metamorph.Run(ctx, metamorph.Options{
				Seed:    opt.Seed,
				Insts:   opt.Insts,
				Workers: opt.Workers,
			})
			if err != nil {
				return nil, err
			}
			t := stats.NewTable("Metamorphic invariant catalog (quick)",
				"check", "kind", "status", "detail")
			for _, v := range rep.Verdicts {
				t.AddRow(v.Check, v.Kind, v.Status, v.Detail)
			}
			res := Result{
				ID:    "Verification",
				Title: "Cross-run invariant verdicts (internal/metamorph)",
				Table: t,
				Notes: []string{
					fmt.Sprintf("model %s seed %d insts %d: %d pass, %d fail, %d errors",
						rep.ModelVersion, rep.Seed, rep.Insts,
						rep.Pass, rep.Fail, rep.Errors),
				},
			}
			if !rep.OK() {
				res.Notes = append(res.Notes,
					"VERDICT: FAIL — the model violates its own invariants")
			}
			return []Result{res}, nil
		},
	}
}
