package gateway

// The cluster fault-injection suite: real simd servers (real simulator,
// short traces) behind a real gateway, with faults injected the way they
// happen in production — a worker process dying mid-sweep, a peer
// serving corrupted cache bytes, a node draining under load, and a
// thundering herd of identical requests. Every test asserts the two
// cluster invariants: results are byte-identical to a single node, and
// no accepted work is lost.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sparc64v/internal/obs"
	"sparc64v/internal/runcache"
	"sparc64v/internal/server"
)

// clusterInsts keeps real simulations short enough for tests while long
// enough to exercise the full pipeline.
const clusterInsts = 20_000

// node is one simd worker under test control.
type node struct {
	name  string
	cache *runcache.Cache
	srv   *server.Server
	ts    *httptest.Server
}

// startNode launches one worker with its own cache and registry.
func startNode(t *testing.T, name string) *node {
	t.Helper()
	cache, err := runcache.New(runcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Cache:        cache,
		Workers:      2,
		DefaultInsts: clusterInsts,
		NodeID:       name,
		Registry:     obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &node{name: name, cache: cache, srv: srv, ts: ts}
}

// startCluster launches n workers with full peer meshing and a gateway
// in front of them.
func startCluster(t *testing.T, n int) ([]*node, *Gateway, *httptest.Server) {
	t.Helper()
	nodes := make([]*node, n)
	for i := range nodes {
		nodes[i] = startNode(t, fmt.Sprintf("n%d", i))
	}
	for i, nd := range nodes {
		var peers []string
		for j, other := range nodes {
			if j != i {
				peers = append(peers, other.ts.URL)
			}
		}
		if len(peers) > 0 {
			nd.srv.SetPeers(peers)
		}
	}
	workers := make([]Worker, n)
	for i, nd := range nodes {
		workers[i] = Worker{Name: nd.name, URL: nd.ts.URL}
	}
	gw, err := New(Config{
		Workers:      workers,
		DefaultInsts: clusterInsts,
		Registry:     obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	gwts := httptest.NewServer(gw.Handler())
	t.Cleanup(gwts.Close)
	return nodes, gw, gwts
}

// runVerdict is a decoded /v1/run response with the stats kept raw for
// byte comparison.
type runVerdict struct {
	Key   string          `json:"key"`
	Cache string          `json:"cache"`
	Stats json.RawMessage `json:"stats"`
}

func postRunBody(t *testing.T, url, body string) (int, runVerdict, http.Header) {
	t.Helper()
	resp, err := http.Post(url+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var v runVerdict
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatalf("decode run response: %v\n%s", err, b)
		}
	}
	return resp.StatusCode, v, resp.Header
}

// totalSimulations counts actual simulator executions across the pool;
// cache misses are the only outcome that runs the model.
func totalSimulations(nodes []*node) uint64 {
	var n uint64
	for _, nd := range nodes {
		n += nd.cache.Stats().Misses
	}
	return n
}

// sweepBodies is the standard 4-config sweep the fault tests run.
func sweepBodies() []string {
	return []string{
		`{"workload":"specint95","seed":1}`,
		`{"workload":"specint95","seed":2}`,
		`{"workload":"specint2000","seed":1}`,
		`{"workload":"specfp95","seed":3}`,
	}
}

// TestClusterSurvivesWorkerKillMidSweep: a 3-node cluster loses a worker
// halfway through a sweep. Every request still succeeds, and every
// result is byte-identical to the single-node baseline.
func TestClusterSurvivesWorkerKillMidSweep(t *testing.T) {
	bodies := sweepBodies()

	// Baseline: the same sweep on a lone worker through its own gateway.
	_, _, soloURL := startCluster(t, 1)
	baseline := make(map[string]runVerdict, len(bodies))
	for _, body := range bodies {
		code, v, _ := postRunBody(t, soloURL.URL, body)
		if code != http.StatusOK {
			t.Fatalf("baseline %s: %d", body, code)
		}
		baseline[body] = v
	}

	nodes, gw, gwts := startCluster(t, 3)
	for _, body := range bodies[:2] {
		code, v, _ := postRunBody(t, gwts.URL, body)
		if code != http.StatusOK {
			t.Fatalf("pre-kill %s: %d", body, code)
		}
		if string(v.Stats) != string(baseline[body].Stats) {
			t.Fatalf("pre-kill %s: stats differ from single-node baseline", body)
		}
	}

	// Kill the worker that would serve the next request, so the failover
	// path is exercised deterministically rather than by luck.
	var req server.RunRequest
	if err := json.Unmarshal([]byte(bodies[2]), &req); err != nil {
		t.Fatal(err)
	}
	plan, err := gw.PlanFor(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes {
		if nd.name == plan[0] {
			nd.ts.CloseClientConnections()
			nd.ts.Close()
		}
	}

	// The rest of the sweep, plus a replay of the whole thing: all served,
	// all byte-identical. Replayed configs may come from any cache tier of
	// the surviving nodes.
	for _, body := range append(bodies[2:], bodies...) {
		code, v, _ := postRunBody(t, gwts.URL, body)
		if code != http.StatusOK {
			t.Fatalf("post-kill %s: %d", body, code)
		}
		if v.Key != baseline[body].Key {
			t.Fatalf("post-kill %s: key %s != baseline %s", body, v.Key, baseline[body].Key)
		}
		if string(v.Stats) != string(baseline[body].Stats) {
			t.Fatalf("post-kill %s: stats differ from single-node baseline:\n%s\n%s",
				body, v.Stats, baseline[body].Stats)
		}
	}
	if st := gw.Status(); len(st) != 3 {
		t.Fatalf("status rows = %d", len(st))
	}
}

// TestCorruptPeerEntryRejected: a peer that answers cache probes with
// garbage costs the node a rejected fetch — counted in stats — and the
// node simulates the correct answer itself.
func TestCorruptPeerEntryRejected(t *testing.T) {
	// A "peer" that confidently serves a corrupted envelope for every id.
	corrupt := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/cache/") {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"key":{"config":"x"},"sha256":"deadbeef","report":{"cycles":1}}`)
	}))
	defer corrupt.Close()

	nd := startNode(t, "n0")
	nd.srv.SetPeers([]string{corrupt.URL})
	gw, err := New(Config{
		Workers:      []Worker{{Name: nd.name, URL: nd.ts.URL}},
		DefaultInsts: clusterInsts,
		Registry:     obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	gwts := httptest.NewServer(gw.Handler())
	defer gwts.Close()

	code, v, _ := postRunBody(t, gwts.URL, `{"workload":"specint95","seed":7}`)
	if code != http.StatusOK {
		t.Fatalf("run with corrupt peer: %d", code)
	}
	if v.Cache != "miss" {
		t.Fatalf("cache outcome = %q, want miss (corrupt peer must not satisfy the request)", v.Cache)
	}
	s := nd.cache.Stats()
	if s.PeerCorrupt != 1 {
		t.Fatalf("PeerCorrupt = %d, want 1", s.PeerCorrupt)
	}
	if s.PeerHits != 0 {
		t.Fatalf("PeerHits = %d, want 0", s.PeerHits)
	}
	if s.Misses != 1 {
		t.Fatalf("Misses = %d, want 1 (the node simulated the truth)", s.Misses)
	}
}

// TestDrainUnderLoadLosesNothing: a node drains while the sweep runs.
// Requests routed at it fail over (503 → next replica) and every request
// in flight or after the drain completes successfully.
func TestDrainUnderLoadLosesNothing(t *testing.T) {
	nodes, gw, gwts := startCluster(t, 3)

	// Find a request whose primary is node 0, so draining node 0
	// deterministically exercises the 503 failover path.
	var victim string
	for seed := 1; seed <= 64; seed++ {
		body := fmt.Sprintf(`{"workload":"specint95","seed":%d}`, seed)
		var req server.RunRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		plan, err := gw.PlanFor(req)
		if err != nil {
			t.Fatal(err)
		}
		if plan[0] == nodes[0].name {
			victim = body
			break
		}
	}
	if victim == "" {
		t.Fatal("no seed in 1..64 routes to n0 first; ring is broken")
	}

	nodes[0].srv.DrainStarted()

	// The request aimed at the draining node fails over and succeeds.
	code, v, hdr := postRunBody(t, gwts.URL, victim)
	if code != http.StatusOK {
		t.Fatalf("drain failover: %d", code)
	}
	if got := hdr.Get("X-Node"); got == nodes[0].name {
		t.Fatalf("request served by draining node %s", got)
	}
	if v.Cache != "miss" {
		t.Fatalf("failover outcome = %q, want miss on the replica", v.Cache)
	}
	if got := gw.retriesDrain.Value(); got == 0 {
		t.Fatal("drain failover not counted in retries{reason=drain}")
	}

	// A concurrent burst of distinct work during the drain: nothing lost,
	// nothing shed (the cluster has capacity), every run exactly once.
	const burst = 12
	var wg sync.WaitGroup
	codes := make(chan int, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(gwts.URL+"/v1/run", "application/json",
				strings.NewReader(fmt.Sprintf(`{"workload":"specint95","seed":%d}`, 100+i)))
			if err != nil {
				codes <- 0
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}(i)
	}
	wg.Wait()
	close(codes)
	for c := range codes {
		if c != http.StatusOK {
			t.Fatalf("burst request returned %d during drain, want 200", c)
		}
	}
	if got := nodes[0].cache.Stats().Misses; got != 0 {
		t.Fatalf("draining node simulated %d runs after DrainStarted", got)
	}

	// After a health probe the gateway stops planning the drained node
	// first for anything.
	gw.ProbeHealth(t.Context())
	var req server.RunRequest
	if err := json.Unmarshal([]byte(victim), &req); err != nil {
		t.Fatal(err)
	}
	plan, err := gw.PlanFor(req)
	if err != nil {
		t.Fatal(err)
	}
	if plan[0] == nodes[0].name {
		t.Fatal("drained node still planned first after health probe")
	}
	for _, row := range gw.Status() {
		if row.Name == nodes[0].name && !row.Draining {
			t.Fatal("status does not show the node draining")
		}
	}
}

// TestSameConfigBurstSimulatesOnce: 50 clients ask for the same run at
// once; ring affinity plus worker singleflight mean the cluster
// simulates exactly once, and every client gets byte-identical stats.
func TestSameConfigBurstSimulatesOnce(t *testing.T) {
	nodes, _, gwts := startCluster(t, 3)
	const clients = 50
	body := `{"workload":"specint95","seed":42}`

	type result struct {
		code  int
		stats string
	}
	results := make(chan result, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(gwts.URL+"/v1/run", "application/json", strings.NewReader(body))
			if err != nil {
				results <- result{code: 0}
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				results <- result{code: 0}
				return
			}
			var v runVerdict
			if resp.StatusCode == http.StatusOK {
				if err := json.Unmarshal(b, &v); err != nil {
					results <- result{code: 0}
					return
				}
			}
			results <- result{code: resp.StatusCode, stats: string(v.Stats)}
		}()
	}
	wg.Wait()
	close(results)

	var stats string
	n := 0
	for r := range results {
		n++
		if r.code != http.StatusOK {
			t.Fatalf("burst client got %d", r.code)
		}
		if stats == "" {
			stats = r.stats
		} else if r.stats != stats {
			t.Fatal("burst clients saw different stats for one config")
		}
	}
	if n != clients {
		t.Fatalf("got %d results, want %d", n, clients)
	}
	if sims := totalSimulations(nodes); sims != 1 {
		t.Fatalf("cluster simulated %d times for one config, want exactly 1", sims)
	}
}

// TestOverloadPreservedEndToEnd: when every replica sheds with 429, the
// client sees the 429 — the gateway never converts backpressure into a
// silent failure or a fake 200.
func TestOverloadPreservedEndToEnd(t *testing.T) {
	shedding := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			httpError(w, http.StatusTooManyRequests, "server overloaded: queue full")
		}))
	}
	w0, w1 := shedding(), shedding()
	defer w0.Close()
	defer w1.Close()

	gw, err := New(Config{
		Workers:      []Worker{{Name: "w0", URL: w0.URL}, {Name: "w1", URL: w1.URL}},
		DefaultInsts: clusterInsts,
		Registry:     obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	gwts := httptest.NewServer(gw.Handler())
	defer gwts.Close()

	code, _, _ := postRunBody(t, gwts.URL, `{"workload":"specint95","seed":1}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("all-replicas-shedding run = %d, want 429", code)
	}
	if got := gw.retriesOverload.Value(); got != 2 {
		t.Fatalf("overload retries = %d, want 2 (both replicas tried)", got)
	}

	// One replica with room: the request lands there instead.
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Cache", "hit")
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"key":"k","cache":"hit","stats":{}}`)
	}))
	defer ok.Close()
	gw2, err := New(Config{
		Workers:      []Worker{{Name: "w0", URL: w0.URL}, {Name: "w1", URL: ok.URL}},
		DefaultInsts: clusterInsts,
		Registry:     obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	gwts2 := httptest.NewServer(gw2.Handler())
	defer gwts2.Close()
	code, _, _ = postRunBody(t, gwts2.URL, `{"workload":"specint95","seed":1}`)
	if code != http.StatusOK {
		t.Fatalf("one-replica-shedding run = %d, want 200 from the other replica", code)
	}
}

// TestGatewayHealthzReflectsPool: 503 only when no worker is available.
func TestGatewayHealthzReflectsPool(t *testing.T) {
	nodes, gw, gwts := startCluster(t, 2)
	get := func() int {
		resp, err := http.Get(gwts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get(); got != http.StatusOK {
		t.Fatalf("healthy pool /healthz = %d", got)
	}
	for _, nd := range nodes {
		nd.srv.DrainStarted()
	}
	gw.ProbeHealth(t.Context())
	if got := get(); got != http.StatusServiceUnavailable {
		t.Fatalf("fully-drained pool /healthz = %d, want 503", got)
	}
	waitHealthy := func(want int64) {
		deadline := time.Now().Add(5 * time.Second)
		for gw.healthyWorkers.Value() != want {
			if time.Now().After(deadline) {
				t.Fatalf("healthy workers = %d, want %d", gw.healthyWorkers.Value(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitHealthy(0)
}
