// Package gateway is the cluster front door: a thin HTTP proxy that
// routes experiment requests across a pool of simd workers.
//
// Placement is by consistent hashing of the run's content address — the
// same runcache key the workers cache under — so identical requests
// always land on the same node and the cluster deduplicates simulations
// without any coordination: ring affinity concentrates a key on one
// worker, that worker's in-process singleflight collapses concurrent
// identical requests, and the peer-cache tier covers the failover case
// where a key's replica moved.
//
// The gateway holds no state worth preserving: routing tables are
// derived from configuration, health is re-observed continuously, and
// every response a client sees came verbatim from a worker. Losing the
// gateway loses nothing but connectivity.
package gateway

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sparc64v/internal/config"
	"sparc64v/internal/obs"
	"sparc64v/internal/ring"
	"sparc64v/internal/server"
)

// maxBodyBytes bounds a proxied request body; run requests are a few
// hundred bytes of JSON, so 1 MiB is headroom, not a budget.
const maxBodyBytes = 1 << 20

// Worker names one member of the pool. Name is the ring identity and the
// bounded metrics label; URL is where requests go. Keeping them separate
// means a worker can change address (restart on a new port) without
// remapping every key it owned.
type Worker struct {
	Name string
	URL  string
}

// ParseWorkers parses a comma-separated worker list. Each element is
// either "name=url" or a bare URL (the name defaults to the URL's
// host:port).
func ParseWorkers(s string) ([]Worker, error) {
	var out []Worker
	for _, el := range strings.Split(s, ",") {
		el = strings.TrimSpace(el)
		if el == "" {
			continue
		}
		w := Worker{}
		if name, rest, ok := strings.Cut(el, "="); ok && !strings.Contains(name, "/") {
			w.Name, w.URL = strings.TrimSpace(name), strings.TrimSpace(rest)
		} else {
			w.URL = el
		}
		u, err := url.Parse(w.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("gateway: bad worker URL %q", el)
		}
		if w.Name == "" {
			w.Name = u.Host
		}
		w.URL = strings.TrimRight(w.URL, "/")
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, errors.New("gateway: no workers configured")
	}
	return out, nil
}

// Config parameterizes a Gateway.
type Config struct {
	// Workers is the pool; required, at least one.
	Workers []Worker
	// Base and DefaultInsts must match the workers' configuration: the
	// gateway resolves each request with server.ResolveRun to compute
	// the same cache key the worker will, and routes on it. Zero values
	// mean config.Base() and 1,000,000 — the worker defaults.
	Base         config.Config
	DefaultInsts int
	// RetryBudget caps worker attempts per request; 0 means every
	// replica once.
	RetryBudget int
	// LoadFactor is the bounded-load spill threshold (a node above
	// ceil(factor·mean) of in-flight gateway requests is skipped while a
	// less-loaded replica exists); 0 means 1.25.
	LoadFactor float64
	// Client performs proxied requests; nil means a dedicated client
	// with no overall timeout (simulations are long; per-request bounds
	// come from the client's context).
	Client *http.Client
	// Registry receives the gateway metrics; nil means obs.Default().
	Registry *obs.Registry
	// HealthEvery is the active health-probe interval for Run; 0 means
	// 2 seconds.
	HealthEvery time.Duration
}

// workerState is the gateway's live view of one worker.
type workerState struct {
	Worker
	healthy  atomic.Bool // last probe or proxy attempt succeeded
	draining atomic.Bool // /healthz or /v1/run said "draining"
	inflight atomic.Int64
}

// Gateway routes requests across the pool. Construct with New, serve
// Handler(); optionally call Run (or ProbeHealth from tests) to keep
// health fresh between request-driven observations.
type Gateway struct {
	ring        *ring.Ring
	workers     map[string]*workerState
	base        config.Config
	insts       int
	retryBudget int
	loadFactor  float64
	client      *http.Client
	reg         *obs.Registry
	healthEvery time.Duration
	now         func() time.Time

	mux *http.ServeMux

	// keyFlights pins every in-flight routing key to the node currently
	// serving it, so concurrent identical requests all land on one
	// worker and its in-process singleflight collapses them into one
	// simulation — without this, bounded-load spill would scatter a
	// thundering herd across replicas and each would simulate.
	keyMu      sync.Mutex
	keyFlights map[string]*keyFlight

	// Pre-registered metric families: creating them in New pins their
	// presence (and zero values) in the exposition, so the golden test
	// sees a stable page and node labels stay bounded by the pool.
	retriesError    *obs.Counter
	retriesDrain    *obs.Counter
	retriesOverload *obs.Counter
	healthyWorkers  *obs.Gauge
	proxySeconds    *obs.Histogram
}

// New builds a Gateway over the configured pool.
func New(c Config) (*Gateway, error) {
	if len(c.Workers) == 0 {
		return nil, errors.New("gateway: Config.Workers is required")
	}
	names := make([]string, 0, len(c.Workers))
	workers := make(map[string]*workerState, len(c.Workers))
	for _, w := range c.Workers {
		if w.Name == "" || w.URL == "" {
			return nil, fmt.Errorf("gateway: worker needs name and URL (got %+v)", w)
		}
		if _, dup := workers[w.Name]; dup {
			return nil, fmt.Errorf("gateway: duplicate worker name %q", w.Name)
		}
		ws := &workerState{Worker: w}
		ws.healthy.Store(true) // optimistic until observed otherwise
		workers[w.Name] = ws
		names = append(names, w.Name)
	}
	rg, err := ring.New(names, ring.Options{})
	if err != nil {
		return nil, fmt.Errorf("gateway: %w", err)
	}
	if c.Base.Name == "" {
		c.Base = config.Base()
	}
	if c.DefaultInsts <= 0 {
		c.DefaultInsts = 1_000_000
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = len(c.Workers)
	}
	if c.LoadFactor <= 1 {
		c.LoadFactor = 1.25
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	if c.HealthEvery <= 0 {
		c.HealthEvery = 2 * time.Second
	}
	g := &Gateway{
		ring:        rg,
		keyFlights:  make(map[string]*keyFlight),
		workers:     workers,
		base:        c.Base,
		insts:       c.DefaultInsts,
		retryBudget: c.RetryBudget,
		loadFactor:  c.LoadFactor,
		client:      c.Client,
		reg:         c.Registry,
		healthEvery: c.HealthEvery,
		now:         time.Now,
		retriesError: c.Registry.Counter("sparc64v_gateway_retries_total",
			"Failed worker attempts that moved a request to the next replica, by reason.",
			obs.L("reason", "error")),
		retriesDrain: c.Registry.Counter("sparc64v_gateway_retries_total",
			"Failed worker attempts that moved a request to the next replica, by reason.",
			obs.L("reason", "drain")),
		retriesOverload: c.Registry.Counter("sparc64v_gateway_retries_total",
			"Failed worker attempts that moved a request to the next replica, by reason.",
			obs.L("reason", "overload")),
		healthyWorkers: c.Registry.Gauge("sparc64v_gateway_healthy_workers",
			"Workers whose last health observation succeeded."),
		proxySeconds: c.Registry.Histogram("sparc64v_gateway_request_seconds",
			"Gateway end-to-end request latency (all worker attempts included).", nil),
	}
	// Pin the per-node and per-outcome families so the exposition is
	// stable from the first scrape and the label sets are visibly
	// bounded: one node label per configured worker, outcomes from the
	// runcache vocabulary.
	for _, name := range names {
		g.proxiedCounter(name, "ok").Add(0)
		g.proxiedCounter(name, "failed").Add(0)
	}
	for _, outcome := range []string{"hit", "hit-disk", "hit-peer", "miss", "dedup"} {
		g.outcomeCounter(outcome).Add(0)
	}
	g.healthyWorkers.Set(int64(len(names)))

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", g.handleRun)
	mux.HandleFunc("POST /v1/estimate", g.handleEstimate)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	g.mux = mux
	return g, nil
}

func (g *Gateway) proxiedCounter(node, result string) *obs.Counter {
	return g.reg.Counter("sparc64v_gateway_proxied_total",
		"Worker attempts, by node and result. Node labels are bounded by the configured pool.",
		obs.L("node", node), obs.L("result", result))
}

func (g *Gateway) outcomeCounter(outcome string) *obs.Counter {
	return g.reg.Counter("sparc64v_gateway_cache_outcomes_total",
		"Cluster-wide cache outcomes of successful runs, from the workers' X-Cache header.",
		obs.L("outcome", outcome))
}

func (g *Gateway) requestCounter(endpoint string) *obs.Counter {
	return g.reg.Counter("sparc64v_gateway_requests_total",
		"Requests accepted by the gateway, by endpoint.", obs.L("endpoint", endpoint))
}

// Handler returns the gateway's root handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Run keeps worker health fresh until ctx is cancelled: a proxy failure
// marks a node unhealthy immediately; this loop is how it gets back in.
func (g *Gateway) Run(ctx context.Context) {
	t := time.NewTicker(g.healthEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			g.ProbeHealth(ctx)
		}
	}
}

// ProbeHealth checks every worker's /healthz once and updates the
// gateway's view: 200 means healthy, 503 means draining (up, but not
// taking new runs), anything else means down.
func (g *Gateway) ProbeHealth(ctx context.Context) {
	healthy := 0
	for _, ws := range g.workers {
		pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, ws.URL+"/healthz", nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := g.client.Do(req)
		cancel()
		switch {
		case err != nil:
			ws.healthy.Store(false)
		case resp.StatusCode == http.StatusOK:
			ws.healthy.Store(true)
			ws.draining.Store(false)
		case resp.StatusCode == http.StatusServiceUnavailable:
			ws.healthy.Store(true)
			ws.draining.Store(true)
		default:
			ws.healthy.Store(false)
		}
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if ws.healthy.Load() && !ws.draining.Load() {
			healthy++
		}
	}
	g.healthyWorkers.Set(int64(healthy))
}

// keyFlight tracks one in-flight routing key: the node it is pinned to
// and how many requests are riding the pin.
type keyFlight struct {
	node string
	refs int
}

// acquireKey pins key to candidate unless an earlier request already
// pinned it, and returns the pinned node. Pair with releaseKey.
func (g *Gateway) acquireKey(key, candidate string) string {
	g.keyMu.Lock()
	defer g.keyMu.Unlock()
	if f, ok := g.keyFlights[key]; ok {
		f.refs++
		return f.node
	}
	g.keyFlights[key] = &keyFlight{node: candidate, refs: 1}
	return candidate
}

// repinKey moves an existing pin to a new node (failover), so joiners
// follow the request to the replica that is actually serving it.
func (g *Gateway) repinKey(key, node string) {
	g.keyMu.Lock()
	defer g.keyMu.Unlock()
	if f, ok := g.keyFlights[key]; ok {
		f.node = node
	}
}

func (g *Gateway) releaseKey(key string) {
	g.keyMu.Lock()
	defer g.keyMu.Unlock()
	if f, ok := g.keyFlights[key]; ok {
		if f.refs--; f.refs <= 0 {
			delete(g.keyFlights, key)
		}
	}
}

// spillFloor is the minimum per-node in-flight depth before bounded-load
// spill engages. At trivial load the strict bound is hair-trigger (one
// in-flight request can look "hot" in a small pool) and spilling would
// only dilute cache affinity; past this depth a queue is real and moving
// to a sibling replica is worth the colder cache.
const spillFloor = 8

// candidates returns worker names in the order the request should try
// them: the key's ring sequence, available nodes first, rotated so the
// first available node under the bounded-load threshold leads. Nodes
// believed down or draining stay in the list as a last resort — a stale
// health view must degrade to a wasted attempt, not an outage.
func (g *Gateway) candidates(key string) []string {
	seq := g.ring.Sequence(key)
	avail := make([]string, 0, len(seq))
	rest := make([]string, 0, len(seq))
	total := 0
	for _, name := range seq {
		ws := g.workers[name]
		if ws.healthy.Load() && !ws.draining.Load() {
			avail = append(avail, name)
			total += int(ws.inflight.Load())
		} else {
			rest = append(rest, name)
		}
	}
	if len(avail) == 0 {
		return seq
	}
	// Bounded load over the gateway's own in-flight view: spill past a
	// hot primary to the next replica, never shed (workers own 429).
	bound := int(g.loadFactor*float64(total+1)/float64(len(avail))) + 1
	if bound < spillFloor {
		bound = spillFloor
	}
	for i, name := range avail {
		if int(g.workers[name].inflight.Load()) < bound {
			rotated := append(append(make([]string, 0, len(seq)), avail[i:]...), avail[:i]...)
			return append(rotated, rest...)
		}
	}
	return append(avail, rest...)
}

// handleRun proxies POST /v1/run: resolve the request to its cache key
// with the exact code the worker runs, then route by that key.
func (g *Gateway) handleRun(w http.ResponseWriter, r *http.Request) {
	g.requestCounter("run").Inc()
	t0 := g.now()
	defer func() { g.proxySeconds.Observe(g.now().Sub(t0).Seconds()) }()
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req server.RunRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	rr, err := server.ResolveRun(g.base, g.insts, req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	g.route(w, r, "/v1/run", body, rr.Key.ID())
}

// handleEstimate proxies POST /v1/estimate. Estimates are pure
// arithmetic, so placement is about load spreading, not cache locality;
// hashing the body gives a stable, coordination-free spread that keeps
// repeated identical estimates on one node's warm code path.
func (g *Gateway) handleEstimate(w http.ResponseWriter, r *http.Request) {
	g.requestCounter("estimate").Inc()
	t0 := g.now()
	defer func() { g.proxySeconds.Observe(g.now().Sub(t0).Seconds()) }()
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	sum := sha256.Sum256(body)
	g.route(w, r, "/v1/estimate", body, hex.EncodeToString(sum[:]))
}

// route forwards body to the key's candidate workers until one gives a
// terminal answer. Failover semantics:
//
//   - transport error: mark the node down, try the next replica;
//   - 503 (draining or cancelled): mark draining, try the next replica;
//   - 429 (queue full): try the next replica — a different node may have
//     room — and if every attempt sheds, the client sees the 429, so
//     overload is never silently swallowed;
//   - anything else (200, 4xx, 5xx): the worker's verdict, returned
//     verbatim.
func (g *Gateway) route(w http.ResponseWriter, r *http.Request, path string, body []byte, key string) {
	seq := g.candidates(key)
	// An in-flight identical request pins the key to its node; following
	// the pin is what turns per-worker singleflight into cluster-wide
	// singleflight.
	pinned := g.acquireKey(key, seq[0])
	defer g.releaseKey(key)
	if pinned != seq[0] {
		reordered := make([]string, 0, len(seq))
		reordered = append(reordered, pinned)
		for _, name := range seq {
			if name != pinned {
				reordered = append(reordered, name)
			}
		}
		seq = reordered
	}

	var lastStatus int
	var lastHeader http.Header
	var lastBody []byte
	attempts := 0
	for _, name := range seq {
		if attempts >= g.retryBudget {
			break
		}
		if r.Context().Err() != nil {
			return // client gone; nothing to answer
		}
		attempts++
		g.repinKey(key, name)
		ws := g.workers[name]
		ws.inflight.Add(1)
		resp, err := g.forward(r.Context(), ws, path, body, r.Header.Get("Content-Type"))
		ws.inflight.Add(-1)
		if err != nil {
			ws.healthy.Store(false)
			g.proxiedCounter(name, "failed").Inc()
			g.retriesError.Inc()
			continue
		}
		rbody, rerr := io.ReadAll(io.LimitReader(resp.Body, maxPeerEntryBytes))
		resp.Body.Close()
		if rerr != nil {
			ws.healthy.Store(false)
			g.proxiedCounter(name, "failed").Inc()
			g.retriesError.Inc()
			continue
		}
		switch resp.StatusCode {
		case http.StatusServiceUnavailable:
			ws.draining.Store(true)
			g.proxiedCounter(name, "failed").Inc()
			g.retriesDrain.Inc()
		case http.StatusTooManyRequests:
			g.proxiedCounter(name, "failed").Inc()
			g.retriesOverload.Inc()
		default:
			g.proxiedCounter(name, "ok").Inc()
			ws.healthy.Store(true)
			if resp.StatusCode == http.StatusOK {
				if outcome := resp.Header.Get("X-Cache"); outcome != "" {
					g.outcomeCounter(outcome).Inc()
				}
			}
			writeUpstream(w, resp.StatusCode, resp.Header, rbody)
			return
		}
		lastStatus, lastHeader, lastBody = resp.StatusCode, resp.Header, rbody
	}
	if lastStatus != 0 {
		// Every replica shed or was draining: relay the final upstream
		// verdict so 429 stays a 429 end to end.
		writeUpstream(w, lastStatus, lastHeader, lastBody)
		return
	}
	httpError(w, http.StatusBadGateway, "no worker reachable for this request")
}

// maxPeerEntryBytes mirrors the worker-side response bound.
const maxPeerEntryBytes = 16 << 20

// forward performs one worker attempt.
func (g *Gateway) forward(ctx context.Context, ws *workerState, path string, body []byte, contentType string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ws.URL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType == "" {
		contentType = "application/json"
	}
	req.Header.Set("Content-Type", contentType)
	return g.client.Do(req)
}

// writeUpstream relays a worker response verbatim, keeping the headers
// clients and tests rely on (node attribution, cache outcome, model
// version, content type).
func writeUpstream(w http.ResponseWriter, status int, header http.Header, body []byte) {
	for _, h := range []string{"Content-Type", "X-Node", "X-Cache", "X-Model-Version"} {
		if v := header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(status)
	w.Write(body)
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	healthy := 0
	for _, ws := range g.workers {
		if ws.healthy.Load() && !ws.draining.Load() {
			healthy++
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if healthy == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintf(w, "%d/%d workers available\n", healthy, len(g.workers))
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.reg.WritePrometheus(w)
}

// WorkerView is one row of Status.
type WorkerView struct {
	Name     string `json:"name"`
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining"`
	Inflight int64  `json:"inflight"`
}

// Status snapshots the gateway's view of the pool (tests; debugging).
func (g *Gateway) Status() []WorkerView {
	out := make([]WorkerView, 0, len(g.workers))
	for _, name := range g.ring.Nodes() {
		ws := g.workers[name]
		out = append(out, WorkerView{
			Name:     ws.Name,
			URL:      ws.URL,
			Healthy:  ws.healthy.Load(),
			Draining: ws.draining.Load(),
			Inflight: ws.inflight.Load(),
		})
	}
	return out
}

// ResolveKey computes the routing key for a run request body — exposed
// so tests and the cluster-replay check can predict placement.
func (g *Gateway) ResolveKey(req server.RunRequest) (string, error) {
	rr, err := server.ResolveRun(g.base, g.insts, req)
	if err != nil {
		return "", err
	}
	return rr.Key.ID(), nil
}

// PlanFor returns the candidate order the gateway would try for a run
// request right now (health- and load-dependent; tests).
func (g *Gateway) PlanFor(req server.RunRequest) ([]string, error) {
	key, err := g.ResolveKey(req)
	if err != nil {
		return nil, err
	}
	return g.candidates(key), nil
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
