package gateway

import (
	"errors"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"sparc64v/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// scriptedTransport answers proxied requests by worker hostname, so the
// golden test needs no listeners and no real clock.
type scriptedTransport struct {
	mu sync.Mutex
	// byHost maps a worker hostname to its scripted behavior.
	byHost map[string]func(r *http.Request) (*http.Response, error)
}

func (t *scriptedTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	t.mu.Lock()
	fn, ok := t.byHost[r.URL.Hostname()]
	t.mu.Unlock()
	if !ok {
		return nil, errors.New("unscripted host " + r.URL.Hostname())
	}
	return fn(r)
}

func scriptedResponse(status int, header map[string]string, body string) *http.Response {
	h := http.Header{}
	for k, v := range header {
		h.Set(k, v)
	}
	return &http.Response{
		StatusCode: status,
		Header:     h,
		Body:       io.NopCloser(strings.NewReader(body)),
	}
}

// TestGatewayMetricsGolden scripts the clock, the worker pool, and an
// exact request sequence, then compares the gateway's full /metrics page
// against a checked-in golden file. Regenerate deliberately with:
//
//	go test ./internal/gateway -run Golden -update
func TestGatewayMetricsGolden(t *testing.T) {
	okBody := `{"key":"k","cache":"miss","stats":{}}`
	transport := &scriptedTransport{byHost: map[string]func(*http.Request) (*http.Response, error){
		// n0: healthy; first run misses, later runs hit.
		"n0": func() func(*http.Request) (*http.Response, error) {
			calls := 0
			return func(r *http.Request) (*http.Response, error) {
				if strings.HasSuffix(r.URL.Path, "/healthz") {
					return scriptedResponse(200, nil, "ok\n"), nil
				}
				calls++
				outcome := "miss"
				if calls > 1 {
					outcome = "hit"
				}
				return scriptedResponse(200, map[string]string{
					"Content-Type": "application/json",
					"X-Node":       "n0",
					"X-Cache":      outcome,
				}, okBody), nil
			}
		}(),
		// n1: dead — every contact is a transport error.
		"n1": func(*http.Request) (*http.Response, error) {
			return nil, errors.New("connection refused")
		},
		// n2: draining — 503 on everything.
		"n2": func(r *http.Request) (*http.Response, error) {
			return scriptedResponse(503, nil, `{"error":"draining"}`), nil
		},
	}}

	gw, err := New(Config{
		Workers: []Worker{
			{Name: "n0", URL: "http://n0:1"},
			{Name: "n1", URL: "http://n1:1"},
			{Name: "n2", URL: "http://n2:1"},
		},
		DefaultInsts: 20_000,
		Client:       &http.Client{Transport: transport},
		Registry:     obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Scripted clock: each read advances 1ms, so every latency
	// observation is exactly 1ms and the histogram is reproducible.
	base := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	tick := 0
	gw.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		tick++
		return base.Add(time.Duration(tick) * time.Millisecond)
	}
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	post := func(path, body string) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	// The scripted sequence: two runs of one config (a miss then a hit,
	// possibly with failover retries depending on ring placement — all
	// deterministic), one estimate, one client error, one health probe.
	post("/v1/run", `{"workload":"specint95","seed":1}`)
	post("/v1/run", `{"workload":"specint95","seed":1}`)
	post("/v1/estimate", `{"workload":"specint95"}`)
	post("/v1/run", `{"workload":"nope"}`)
	gw.ProbeHealth(t.Context())

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("/metrics drifted from golden file.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestNodeLabelsBounded is the negative cardinality test: whatever
// clients send — hostile workload names, junk paths, arbitrary bodies —
// the node and endpoint label sets on the gateway exposition stay
// exactly the configured pool and the fixed endpoint vocabulary. A
// malicious client must never be able to mint new series.
func TestNodeLabelsBounded(t *testing.T) {
	nodes, _, gwts := startCluster(t, 3)
	_ = nodes

	hostile := []struct{ path, body string }{
		{"/v1/run", `{"workload":"evil-label{x=\"1\"}"}`},
		{"/v1/run", `{"workload":"specint95","seed":1}`},
		{"/v1/run", `not json at all`},
		{"/v1/estimate", `{"workload":"` + strings.Repeat("a", 512) + `"}`},
		{"/v1/run", `{"workload":"specint95","config":{"bogus_field":1}}`},
	}
	for _, h := range hostile {
		resp, err := http.Post(gwts.URL+h.path, "application/json", strings.NewReader(h.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	// Junk paths never reach a worker; they 404 at the mux.
	resp, err := http.Get(gwts.URL + "/v1/run/../../etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(gwts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	allowedNodes := map[string]bool{"n0": true, "n1": true, "n2": true}
	allowedEndpoints := map[string]bool{"run": true, "estimate": true}
	for _, m := range regexp.MustCompile(`node="([^"]*)"`).FindAllStringSubmatch(string(page), -1) {
		if !allowedNodes[m[1]] {
			t.Errorf("unbounded node label %q in exposition", m[1])
		}
	}
	for _, m := range regexp.MustCompile(`endpoint="([^"]*)"`).FindAllStringSubmatch(string(page), -1) {
		if !allowedEndpoints[m[1]] {
			t.Errorf("unbounded endpoint label %q in exposition", m[1])
		}
	}
	// No client-controlled string may appear as a label value anywhere.
	if strings.Contains(string(page), "evil-label") || strings.Contains(string(page), strings.Repeat("a", 64)) {
		t.Error("client-supplied string leaked into the exposition")
	}
}
