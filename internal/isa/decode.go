package isa

// SPARC-V9 instruction-word decoding.
//
// The performance model itself is trace-driven and class-based, but trace
// *ingestion* from raw captures (program counter + 32-bit instruction word
// + effective address, the shape a Shade-style tracer emits) needs a real
// decoder. This file decodes the SPARC-V9 formats and the opcodes that
// matter to the timing model; anything exotic degrades to Special (which is
// also how the performance model treats serializing instructions).
//
// SPARC-V9 instruction formats (op = bits 31:30):
//
//	op=1  format 1: CALL, 30-bit word displacement
//	op=0  format 2: SETHI, Bicc/BPcc/FBfcc/BPr (op2 = bits 24:22)
//	op=2  format 3: arithmetic/logical/shift, JMPL, SAVE/RESTORE, FPops
//	op=3  format 3: loads, stores, atomics, prefetch

// Decoded is the outcome of decoding one instruction word.
type Decoded struct {
	// Class is the timing class the word maps to.
	Class Class
	// Rd, Rs1, Rs2 are architectural register numbers in the model's flat
	// space (integer [0,32), FP [32,64)), or RegNone.
	Rd, Rs1, Rs2 uint8
	// Imm reports an immediate second operand (Rs2 absent).
	Imm bool
	// Disp is the sign-extended branch/call displacement in bytes
	// (control transfers only).
	Disp int64
	// Annul is the branch annul bit (fetch-group shaping; informational).
	Annul bool
	// CondAlways marks BA/BN-style unconditional branches.
	CondAlways bool
}

// Opcode field constants.
const (
	op2SETHI   = 4
	op2Bicc    = 2
	op2BPcc    = 1
	op2BPr     = 3
	op2FBfcc   = 6
	op2FBPfcc  = 5
	op2ILLTRAP = 0
)

// op3 values for op=2 (arithmetic).
const (
	op3ADD     = 0x00
	op3AND     = 0x01
	op3OR      = 0x02
	op3XOR     = 0x03
	op3SUB     = 0x04
	op3ANDN    = 0x05
	op3ORN     = 0x06
	op3XNOR    = 0x07
	op3ADDC    = 0x08
	op3MULX    = 0x09
	op3UMUL    = 0x0a
	op3SMUL    = 0x0b
	op3SUBC    = 0x0c
	op3UDIVX   = 0x0d
	op3UDIV    = 0x0e
	op3SDIV    = 0x0f
	op3ADDcc   = 0x10
	op3ANDcc   = 0x11
	op3ORcc    = 0x12
	op3XORcc   = 0x13
	op3SUBcc   = 0x14
	op3SLL     = 0x25
	op3SRL     = 0x26
	op3SRA     = 0x27
	op3SDIVX   = 0x2d
	op3FPop1   = 0x34
	op3FPop2   = 0x35
	op3JMPL    = 0x38
	op3RETURN  = 0x39
	op3Ticc    = 0x3a
	op3FLUSH   = 0x3b
	op3SAVE    = 0x3c
	op3RESTORE = 0x3d
	op3DONE    = 0x3e
)

// op3 values for op=3 (memory).
const (
	op3LDUW     = 0x00
	op3LDUB     = 0x01
	op3LDUH     = 0x02
	op3LDD      = 0x03
	op3STW      = 0x04
	op3STB      = 0x05
	op3STH      = 0x06
	op3STD      = 0x07
	op3LDSW     = 0x08
	op3LDSB     = 0x09
	op3LDSH     = 0x0a
	op3LDX      = 0x0b
	op3STX      = 0x0e
	op3LDSTUB   = 0x0d
	op3SWAP     = 0x0f
	op3CASA     = 0x3c
	op3CASXA    = 0x3e
	op3LDF      = 0x20
	op3LDDF     = 0x23
	op3STF      = 0x24
	op3STDF     = 0x27
	op3PREFETCH = 0x2d
)

// Decode classifies a SPARC-V9 instruction word. It never fails: unknown
// encodings decode as Special (serializing), matching the model's
// conservative handling.
func Decode(word uint32) Decoded {
	op := word >> 30
	switch op {
	case 1: // CALL
		disp := int64(int32(word << 2)) // disp30 * 4, sign-extended
		return Decoded{Class: Call, Rd: 15, Rs1: RegNone, Rs2: RegNone,
			Disp: disp, CondAlways: true}
	case 0:
		return decodeFormat2(word)
	case 2:
		return decodeArith(word)
	default: // 3
		return decodeMemory(word)
	}
}

func decodeFormat2(word uint32) Decoded {
	op2 := (word >> 22) & 7
	switch op2 {
	case op2SETHI:
		rd := uint8((word >> 25) & 31)
		if rd == 0 && word&0x3fffff == 0 {
			return Decoded{Class: Nop, Rd: RegNone, Rs1: RegNone, Rs2: RegNone}
		}
		return Decoded{Class: IntALU, Rd: rd, Rs1: RegNone, Rs2: RegNone, Imm: true}
	case op2Bicc, op2BPcc:
		cond := (word >> 25) & 15
		d := Decoded{Class: Branch, Rd: RegNone, Rs1: RegNone, Rs2: RegNone,
			Annul: word&(1<<29) != 0}
		if op2 == op2Bicc {
			d.Disp = signExtend(int64(word&0x3fffff), 22) * 4
		} else {
			d.Disp = signExtend(int64(word&0x7ffff), 19) * 4
		}
		if cond == 8 || cond == 0 { // BA / BN
			d.CondAlways = true
		}
		return d
	case op2FBfcc, op2FBPfcc:
		d := Decoded{Class: Branch, Rd: RegNone, Rs1: RegNone, Rs2: RegNone,
			Annul: word&(1<<29) != 0}
		if op2 == op2FBfcc {
			d.Disp = signExtend(int64(word&0x3fffff), 22) * 4
		} else {
			d.Disp = signExtend(int64(word&0x7ffff), 19) * 4
		}
		return d
	case op2BPr:
		return Decoded{Class: Branch, Rd: RegNone,
			Rs1: uint8((word >> 14) & 31), Rs2: RegNone,
			Disp:  signExtend(int64((word>>6)&0x3fff|(word>>20)&0xc000), 16) * 4,
			Annul: word&(1<<29) != 0}
	default: // ILLTRAP and friends
		return Decoded{Class: Special, Rd: RegNone, Rs1: RegNone, Rs2: RegNone}
	}
}

func decodeArith(word uint32) Decoded {
	op3 := (word >> 19) & 0x3f
	rd := uint8((word >> 25) & 31)
	rs1 := uint8((word >> 14) & 31)
	imm := word&(1<<13) != 0
	rs2 := uint8(word & 31)
	d := Decoded{Rd: rd, Rs1: rs1, Imm: imm}
	if imm {
		d.Rs2 = RegNone
	} else {
		d.Rs2 = rs2
	}
	switch op3 {
	case op3ADD, op3AND, op3OR, op3XOR, op3SUB, op3ANDN, op3ORN, op3XNOR,
		op3ADDC, op3SUBC, op3ADDcc, op3ANDcc, op3ORcc, op3XORcc, op3SUBcc,
		op3SLL, op3SRL, op3SRA:
		d.Class = IntALU
	case op3MULX, op3UMUL, op3SMUL:
		d.Class = IntMul
	case op3UDIVX, op3UDIV, op3SDIV, op3SDIVX:
		d.Class = IntDiv
	case op3JMPL:
		// JMPL with rd=%o7 is a call; with rs1=%i7/%o7 and rd=%g0 a return.
		switch {
		case rd == 15:
			d.Class = Call
		case rd == 0 && (rs1 == 31 || rs1 == 15):
			d.Class = Return
		default:
			d.Class = Branch // indirect jump
		}
	case op3RETURN:
		d.Class = Return
	case op3SAVE, op3RESTORE, op3Ticc, op3FLUSH, op3DONE:
		d.Class = Special
	case op3FPop1:
		d = decodeFPop(word, d)
	case op3FPop2:
		// FP compares and conditional moves.
		d.Class = FPAdd
		d.Rd, d.Rs1 = RegNone, fpReg(rs1)
		if !imm {
			d.Rs2 = fpReg(rs2)
		}
	default:
		d.Class = Special
	}
	return d
}

// fpReg maps a 5-bit FP register field into the model's flat space.
func fpReg(r uint8) uint8 { return FPRegBase + (r & 31) }

func decodeFPop(word uint32, d Decoded) Decoded {
	opf := (word >> 5) & 0x1ff
	d.Rd = fpReg(uint8((word >> 25) & 31))
	d.Rs1 = fpReg(uint8((word >> 14) & 31))
	d.Rs2 = fpReg(uint8(word & 31))
	d.Imm = false
	switch opf {
	case 0x41, 0x42, 0x43, 0x45, 0x46, 0x47: // FADD/FSUB s/d/q
		d.Class = FPAdd
	case 0x49, 0x4a, 0x4b, 0x69, 0x6e: // FMUL s/d/q, FsMULd, FdMULq
		d.Class = FPMul
	case 0x4d, 0x4e, 0x4f: // FDIV s/d/q
		d.Class = FPDiv
	case 0x29, 0x2a, 0x2b: // FSQRT s/d/q
		d.Class = FPDiv
	default:
		// Converts, moves, abs/neg: single-pass FP work.
		d.Class = FPAdd
	}
	return d
}

func decodeMemory(word uint32) Decoded {
	op3 := (word >> 19) & 0x3f
	rd := uint8((word >> 25) & 31)
	rs1 := uint8((word >> 14) & 31)
	imm := word&(1<<13) != 0
	rs2 := uint8(word & 31)
	d := Decoded{Rd: rd, Rs1: rs1, Imm: imm}
	if imm {
		d.Rs2 = RegNone
	} else {
		d.Rs2 = rs2
	}
	switch op3 {
	case op3LDUW, op3LDUB, op3LDUH, op3LDD, op3LDSW, op3LDSB, op3LDSH, op3LDX:
		d.Class = Load
	case op3STW, op3STB, op3STH, op3STD, op3STX:
		d.Class = Store
		// Stores read rd as data; the model records it as a source.
		d.Rs2, d.Rd = d.Rd, RegNone
		_ = rs2
	case op3LDF, op3LDDF:
		d.Class = Load
		d.Rd = fpReg(rd)
	case op3STF, op3STDF:
		d.Class = Store
		d.Rs2, d.Rd = fpReg(rd), RegNone
	case op3PREFETCH:
		d.Class = Load
		d.Rd = RegNone
	case op3LDSTUB, op3SWAP, op3CASA, op3CASXA:
		d.Class = Special // atomics serialize in the model
	default:
		d.Class = Special
	}
	return d
}

// AccessBytes returns the memory access size for a memory-class word
// (0 for non-memory classes).
func AccessBytes(word uint32) uint8 {
	if word>>30 != 3 {
		return 0
	}
	switch (word >> 19) & 0x3f {
	case op3LDUB, op3LDSB, op3STB, op3LDSTUB:
		return 1
	case op3LDUH, op3LDSH, op3STH:
		return 2
	case op3LDUW, op3LDSW, op3STW, op3SWAP, op3LDF, op3STF, op3CASA:
		return 4
	case op3LDX, op3STX, op3LDD, op3STD, op3LDDF, op3STDF, op3CASXA, op3PREFETCH:
		return 8
	}
	return 8
}

func signExtend(v int64, bits uint) int64 {
	shift := 64 - bits
	return v << shift >> shift
}
