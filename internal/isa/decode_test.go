package isa

import (
	"testing"
	"testing/quick"
)

// Hand-assembled SPARC-V9 words. Field packing helpers keep the tests
// readable.

func f3(op, rd, op3, rs1 uint32, imm bool, rs2OrSimm uint32) uint32 {
	w := op<<30 | rd<<25 | op3<<19 | rs1<<14
	if imm {
		w |= 1<<13 | rs2OrSimm&0x1fff
	} else {
		w |= rs2OrSimm & 31
	}
	return w
}

func TestDecodeCall(t *testing.T) {
	// CALL with displacement +0x40 words.
	w := uint32(1)<<30 | 0x10
	d := Decode(w)
	if d.Class != Call || d.Rd != 15 || d.Disp != 0x40 || !d.CondAlways {
		t.Fatalf("CALL decoded as %+v", d)
	}
	// Negative displacement sign-extends.
	w = uint32(1)<<30 | 0x3fffffff
	if d := Decode(w); d.Disp != -4 {
		t.Fatalf("CALL -1 word disp = %d", d.Disp)
	}
}

func TestDecodeSethiNop(t *testing.T) {
	// NOP = SETHI 0, %g0.
	if d := Decode(0x01000000); d.Class != Nop {
		t.Fatalf("NOP decoded as %+v", d)
	}
	// SETHI 0x1234, %o0 (reg 8).
	w := uint32(8)<<25 | uint32(op2SETHI)<<22 | 0x1234
	d := Decode(w)
	if d.Class != IntALU || d.Rd != 8 || !d.Imm {
		t.Fatalf("SETHI decoded as %+v", d)
	}
}

func TestDecodeBranches(t *testing.T) {
	// BNE (cond=9) with disp22 = +8 words, annul set.
	w := uint32(1)<<29 | uint32(9)<<25 | uint32(op2Bicc)<<22 | 8
	d := Decode(w)
	if d.Class != Branch || !d.Annul || d.Disp != 32 || d.CondAlways {
		t.Fatalf("BNE decoded as %+v", d)
	}
	// BA (cond=8): unconditional.
	w = uint32(8)<<25 | uint32(op2Bicc)<<22 | 0x3fffff // disp -1 word
	d = Decode(w)
	if !d.CondAlways || d.Disp != -4 {
		t.Fatalf("BA decoded as %+v", d)
	}
	// BPcc uses disp19.
	w = uint32(9)<<25 | uint32(op2BPcc)<<22 | 4
	if d := Decode(w); d.Class != Branch || d.Disp != 16 {
		t.Fatalf("BPcc decoded as %+v", d)
	}
	// FBfcc is a branch.
	w = uint32(9)<<25 | uint32(op2FBfcc)<<22 | 4
	if d := Decode(w); d.Class != Branch {
		t.Fatalf("FBfcc decoded as %+v", d)
	}
}

func TestDecodeArithmetic(t *testing.T) {
	// add %o0, %o1, %o2 -> rd=10, rs1=8, rs2=9.
	d := Decode(f3(2, 10, op3ADD, 8, false, 9))
	if d.Class != IntALU || d.Rd != 10 || d.Rs1 != 8 || d.Rs2 != 9 || d.Imm {
		t.Fatalf("ADD decoded as %+v", d)
	}
	// add %o0, 42, %o2 (immediate).
	d = Decode(f3(2, 10, op3ADD, 8, true, 42))
	if !d.Imm || d.Rs2 != RegNone {
		t.Fatalf("ADDI decoded as %+v", d)
	}
	if d := Decode(f3(2, 10, op3MULX, 8, false, 9)); d.Class != IntMul {
		t.Fatalf("MULX decoded as %+v", d)
	}
	if d := Decode(f3(2, 10, op3SDIVX, 8, false, 9)); d.Class != IntDiv {
		t.Fatalf("SDIVX decoded as %+v", d)
	}
	if d := Decode(f3(2, 10, op3SLL, 8, true, 3)); d.Class != IntALU {
		t.Fatalf("SLL decoded as %+v", d)
	}
}

func TestDecodeControlRegisterOps(t *testing.T) {
	// JMPL with rd=%o7 (15) is a call.
	if d := Decode(f3(2, 15, op3JMPL, 8, true, 0)); d.Class != Call {
		t.Fatalf("JMPL->call decoded as %+v", d)
	}
	// JMPL %i7+8, %g0 is a return (ret).
	if d := Decode(f3(2, 0, op3JMPL, 31, true, 8)); d.Class != Return {
		t.Fatalf("ret decoded as %+v", d)
	}
	// JMPL elsewhere: indirect jump -> Branch.
	if d := Decode(f3(2, 1, op3JMPL, 9, false, 0)); d.Class != Branch {
		t.Fatalf("indirect JMPL decoded as %+v", d)
	}
	// SAVE/RESTORE serialize.
	if d := Decode(f3(2, 14, op3SAVE, 14, true, 0x1fc0)); d.Class != Special {
		t.Fatalf("SAVE decoded as %+v", d)
	}
	if d := Decode(f3(2, 0, op3RESTORE, 0, false, 0)); d.Class != Special {
		t.Fatalf("RESTORE decoded as %+v", d)
	}
}

func TestDecodeFP(t *testing.T) {
	fpop := func(opf uint32) uint32 {
		return f3(2, 4, op3FPop1, 2, false, 6) | opf<<5
	}
	cases := map[uint32]Class{
		0x42: FPAdd, // FADDd
		0x46: FPAdd, // FSUBd
		0x4a: FPMul, // FMULd
		0x4e: FPDiv, // FDIVd
		0x2a: FPDiv, // FSQRTd
		0x69: FPMul, // FsMULd
		0xc6: FPAdd, // FdTOs (convert)
	}
	for opf, want := range cases {
		d := Decode(fpop(opf))
		if d.Class != want {
			t.Errorf("FPop opf=%#x decoded as %v, want %v", opf, d.Class, want)
		}
		if !IsFPReg(d.Rd) || !IsFPReg(d.Rs1) || !IsFPReg(d.Rs2) {
			t.Errorf("FPop opf=%#x registers not FP: %+v", opf, d)
		}
	}
}

func TestDecodeMemory(t *testing.T) {
	// ldx [%o0+8], %o1.
	d := Decode(f3(3, 9, op3LDX, 8, true, 8))
	if d.Class != Load || d.Rd != 9 || d.Rs1 != 8 {
		t.Fatalf("LDX decoded as %+v", d)
	}
	if AccessBytes(f3(3, 9, op3LDX, 8, true, 8)) != 8 {
		t.Fatal("LDX size")
	}
	// stw %o2, [%o0].
	d = Decode(f3(3, 10, op3STW, 8, true, 0))
	if d.Class != Store || d.Rd != RegNone || d.Rs2 != 10 {
		t.Fatalf("STW decoded as %+v (store data must be a source)", d)
	}
	if AccessBytes(f3(3, 10, op3STW, 8, true, 0)) != 4 {
		t.Fatal("STW size")
	}
	// ldd [%o0], %f2 (FP load).
	d = Decode(f3(3, 2, op3LDDF, 8, true, 0))
	if d.Class != Load || !IsFPReg(d.Rd) {
		t.Fatalf("LDDF decoded as %+v", d)
	}
	// CASX is an atomic -> Special.
	if d := Decode(f3(3, 1, op3CASXA, 8, false, 2)); d.Class != Special {
		t.Fatalf("CASXA decoded as %+v", d)
	}
	// Byte loads.
	if AccessBytes(f3(3, 9, op3LDUB, 8, true, 0)) != 1 {
		t.Fatal("LDUB size")
	}
	if AccessBytes(0) != 0 {
		t.Fatal("non-memory AccessBytes")
	}
}

// Property: Decode never panics and always produces a valid class and
// in-range registers, for any 32-bit word.
func TestDecodeTotalQuick(t *testing.T) {
	f := func(word uint32) bool {
		d := Decode(word)
		if !d.Class.Valid() {
			return false
		}
		for _, r := range []uint8{d.Rd, d.Rs1, d.Rs2} {
			if r != RegNone && r >= NumRegs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}
