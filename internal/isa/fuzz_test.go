package isa

import "testing"

// FuzzDecode throws arbitrary 32-bit words at the decoder. Decode's
// contract is total: it never fails, unknown encodings degrade to Special,
// and every decoded operand stays inside the flat register space. The seed
// corpus (testdata/fuzz/FuzzDecode) pins one word per format: CALL, SETHI,
// NOP, Bicc, BPcc, ADD (reg and imm), MULX, JMPL, FADDd, LDUW, STX, CASA,
// ILLTRAP, and the all-ones word.
func FuzzDecode(f *testing.F) {
	seeds := []uint32{
		0x40000001, // CALL +4
		0x03000001, // SETHI %hi(0x400), %g1
		0x01000000, // NOP (SETHI 0, %g0)
		0x10800003, // BA +12
		0x02800003, // BE +12
		0x30480003, // BA,pt %xcc, +12 (BPcc)
		0x8a004002, // ADD %g1, %g2, %g5
		0x8a006004, // ADD %g1, 4, %g5
		0x8a484002, // MULX %g1, %g2, %g5
		0x81c3e008, // JMPL %o7+8, %g0 (ret)
		0x9fc04000, // JMPL %g1, %o7 (call)
		0x89a0094a, // FADDd %f2, %f10, %f4
		0xc4004002, // LDUW [%g1+%g2], %g2
		0xc4704002, // STX %g2, [%g1+%g2]
		0xc5e04002, // CASA [%g1], %g2, %g2
		0x00000000, // ILLTRAP
		0xffffffff, // not a real encoding
	}
	for _, w := range seeds {
		f.Add(w)
	}
	f.Fuzz(func(t *testing.T, word uint32) {
		d := Decode(word)
		if !d.Class.Valid() {
			t.Fatalf("Decode(%#08x): invalid class %d", word, d.Class)
		}
		for _, r := range []uint8{d.Rd, d.Rs1, d.Rs2} {
			if r != RegNone && r >= NumRegs {
				t.Fatalf("Decode(%#08x): register %d outside flat space [0,%d)",
					word, r, NumRegs)
			}
		}
		// Stores are exempt: they carry the data register in Rs2 regardless
		// of addressing form (decodeMemory swaps rd into Rs2 as a source).
		if d.Imm && d.Rs2 != RegNone && d.Class != Store {
			t.Fatalf("Decode(%#08x): immediate form with Rs2=%d", word, d.Rs2)
		}
		if d.Disp != 0 && d.Class != Branch && d.Class != Call {
			t.Fatalf("Decode(%#08x): displacement %d on non-control class %v",
				word, d.Disp, d.Class)
		}
		if d.Disp%int64(InstrBytes) != 0 {
			t.Fatalf("Decode(%#08x): displacement %d not word-aligned", word, d.Disp)
		}
		// AccessBytes must be consistent with the decode: only op=3 words
		// access memory, and every memory-class decode has a non-zero size.
		ab := AccessBytes(word)
		if ab != 0 && word>>30 != 3 {
			t.Fatalf("AccessBytes(%#08x) = %d for non-memory format", word, ab)
		}
		if (d.Class == Load || d.Class == Store) && word>>30 == 3 && ab == 0 {
			t.Fatalf("Decode(%#08x) = %v but AccessBytes = 0", word, d.Class)
		}
	})
}
