// Package isa models the subset of the SPARC-V9 instruction set
// architecture needed to drive a trace-driven timing simulator.
//
// The performance model is timing-only: it never computes architectural
// values. What it needs from the ISA is a classification of each dynamic
// instruction (which execution resource it uses, its execution latency
// class, whether it touches memory or redirects control flow) and the
// register identifiers that create data dependencies. This package provides
// exactly that, mirroring how the SPARC64 V routes instructions to its
// reservation stations: RSA for address generation, RSE for fixed-point,
// RSF for floating-point, and RSBR for branches.
package isa

import "fmt"

// Class identifies the execution class of a dynamic instruction. The class
// determines the reservation station the instruction is queued in, the
// execution unit it needs, and its base execution latency.
type Class uint8

// Instruction classes. The grouping follows the SPARC64 V dispatch rules
// described in the paper (section 3): integer and floating-point operations
// go to RSE/RSF, memory operations occupy RSA (for address generation) plus
// a load- or store-queue entry, and control transfers go to RSBR.
const (
	// Nop consumes an issue slot and a window entry but no execution unit.
	Nop Class = iota
	// IntALU is a single-cycle fixed-point operation (add, logic, shift,
	// sethi, compare, ...). Executes on one of the two EX units.
	IntALU
	// IntMul is a fixed-point multiply (longer latency, EX unit).
	IntMul
	// IntDiv is a fixed-point divide (long latency, non-pipelined, EX unit).
	IntDiv
	// Load is a memory read: RSA + EAG for address generation, a load-queue
	// entry, and an L1 operand-cache access.
	Load
	// Store is a memory write: RSA + EAG, a store-queue entry; data is
	// written to the L1 operand cache after commit.
	Store
	// FPAdd is a floating-point add/sub/convert/compare (FL unit).
	FPAdd
	// FPMul is a floating-point multiply (FL unit).
	FPMul
	// FPMulAdd is a fused multiply-add; the SPARC64 V has two FL units that
	// each execute multiply-add, which the paper calls out as an HPC feature.
	FPMulAdd
	// FPDiv is a floating-point divide/sqrt (long latency, non-pipelined).
	FPDiv
	// Branch is a conditional branch (RSBR). The trace records its outcome.
	Branch
	// Call is an unconditional call; it pushes a return address (RAS).
	Call
	// Return is a return-from-subroutine; its target is predicted by the RAS.
	Return
	// Special covers serializing or otherwise exceptional instructions
	// (SAVE/RESTORE window spills, MEMBAR, atomics, traps). Their modeling
	// fidelity is a model-version knob: early model versions charge a fixed
	// experimental penalty, later versions model the actual serialization
	// (the paper's v5 accuracy event).
	Special
	numClasses
)

// NumClasses is the number of distinct instruction classes.
const NumClasses = int(numClasses)

var classNames = [...]string{
	Nop:      "nop",
	IntALU:   "alu",
	IntMul:   "mul",
	IntDiv:   "div",
	Load:     "load",
	Store:    "store",
	FPAdd:    "fadd",
	FPMul:    "fmul",
	FPMulAdd: "fmadd",
	FPDiv:    "fdiv",
	Branch:   "branch",
	Call:     "call",
	Return:   "return",
	Special:  "special",
}

// String returns the short mnemonic-style name of the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Valid reports whether c is a defined instruction class.
func (c Class) Valid() bool { return c < numClasses }

// IsMemory reports whether the class accesses the L1 operand cache.
func (c Class) IsMemory() bool { return c == Load || c == Store }

// IsBranch reports whether the class is a control transfer handled by RSBR.
func (c Class) IsBranch() bool { return c == Branch || c == Call || c == Return }

// IsFloat reports whether the class executes on a floating-point (FL) unit.
func (c Class) IsFloat() bool {
	switch c {
	case FPAdd, FPMul, FPMulAdd, FPDiv:
		return true
	}
	return false
}

// IsInt reports whether the class executes on a fixed-point (EX) unit.
func (c Class) IsInt() bool {
	switch c {
	case IntALU, IntMul, IntDiv:
		return true
	}
	return false
}

// Register identifiers. The model uses a flat architectural register space:
// integer registers occupy [0,32) and floating-point registers [32,64).
// SPARC register windows are not renamed here; window manipulation shows up
// as Special instructions, matching how the performance model treats them.
const (
	// RegNone marks an absent operand.
	RegNone uint8 = 0xFF
	// G0 is the SPARC %g0 hard-wired zero register: never a dependency.
	G0 uint8 = 0
	// IntRegBase is the first integer register identifier.
	IntRegBase uint8 = 0
	// NumIntRegs is the number of architectural integer registers modeled.
	NumIntRegs = 32
	// FPRegBase is the first floating-point register identifier.
	FPRegBase uint8 = 32
	// NumFPRegs is the number of architectural FP registers modeled.
	NumFPRegs = 32
	// NumRegs is the total size of the flat register space.
	NumRegs = NumIntRegs + NumFPRegs
)

// IsIntReg reports whether r names an integer architectural register.
func IsIntReg(r uint8) bool { return r < FPRegBase }

// IsFPReg reports whether r names a floating-point architectural register.
func IsFPReg(r uint8) bool { return r >= FPRegBase && r < NumRegs }

// LatencyClass captures the base execution latency, in cycles, of each
// class on the SPARC64 V execution pipelines. These are the "minimum three
// stages" pipelines of section 3.1: the values below are the execute-stage
// occupancy; dispatch-to-use timing is assembled by the core model.
type LatencyClass struct {
	// Cycles is the execution latency.
	Cycles int
	// Pipelined reports whether a new operation may enter the unit each
	// cycle (false for divides).
	Pipelined bool
}

// DefaultLatencies returns the per-class execution latencies used by the
// base machine model (Table 1 machine). Callers may copy and modify.
func DefaultLatencies() [NumClasses]LatencyClass {
	return [NumClasses]LatencyClass{
		Nop:      {Cycles: 1, Pipelined: true},
		IntALU:   {Cycles: 1, Pipelined: true},
		IntMul:   {Cycles: 5, Pipelined: true},
		IntDiv:   {Cycles: 37, Pipelined: false},
		Load:     {Cycles: 1, Pipelined: true}, // address generation; cache adds the rest
		Store:    {Cycles: 1, Pipelined: true},
		FPAdd:    {Cycles: 4, Pipelined: true},
		FPMul:    {Cycles: 4, Pipelined: true},
		FPMulAdd: {Cycles: 4, Pipelined: true},
		FPDiv:    {Cycles: 28, Pipelined: false},
		Branch:   {Cycles: 1, Pipelined: true},
		Call:     {Cycles: 1, Pipelined: true},
		Return:   {Cycles: 1, Pipelined: true},
		Special:  {Cycles: 1, Pipelined: true},
	}
}

// InstrBytes is the fixed SPARC instruction size in bytes.
const InstrBytes = 4
