package isa

import "testing"

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		Nop:      "nop",
		IntALU:   "alu",
		Load:     "load",
		Store:    "store",
		FPMulAdd: "fmadd",
		Branch:   "branch",
		Special:  "special",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
	if got := Class(200).String(); got != "class(200)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestClassPredicates(t *testing.T) {
	for c := Class(0); c.Valid(); c++ {
		mem := c == Load || c == Store
		if c.IsMemory() != mem {
			t.Errorf("%v.IsMemory() = %v, want %v", c, c.IsMemory(), mem)
		}
		br := c == Branch || c == Call || c == Return
		if c.IsBranch() != br {
			t.Errorf("%v.IsBranch() = %v, want %v", c, c.IsBranch(), br)
		}
		if c.IsInt() && c.IsFloat() {
			t.Errorf("%v is both int and float", c)
		}
	}
	if Class(250).Valid() {
		t.Error("Class(250).Valid() = true")
	}
}

func TestRegisterSpaces(t *testing.T) {
	if !IsIntReg(G0) || !IsIntReg(31) {
		t.Error("integer register space misclassified")
	}
	if IsIntReg(FPRegBase) {
		t.Error("FP base classified as int")
	}
	if !IsFPReg(32) || !IsFPReg(63) {
		t.Error("FP register space misclassified")
	}
	if IsFPReg(64) || IsFPReg(RegNone) {
		t.Error("out-of-range register classified as FP")
	}
}

func TestDefaultLatencies(t *testing.T) {
	lat := DefaultLatencies()
	for c := Class(0); c.Valid(); c++ {
		l := lat[c]
		if l.Cycles < 1 {
			t.Errorf("%v latency %d < 1", c, l.Cycles)
		}
	}
	if lat[IntDiv].Pipelined || lat[FPDiv].Pipelined {
		t.Error("divides must be non-pipelined")
	}
	if !lat[IntALU].Pipelined {
		t.Error("ALU must be pipelined")
	}
	if lat[IntALU].Cycles != 1 {
		t.Errorf("ALU latency = %d, want 1", lat[IntALU].Cycles)
	}
}
