package litmus

import (
	"context"
	"testing"
)

// FuzzLitmusOutcomes drives the conformance harness over the whole
// parameter space the sweep driver samples — shape, seed, random-skew
// bound and structural skew pattern — and requires that the stock model
// never produces a TSO-forbidden outcome and never diverges from the
// value shadow. The seed corpus in testdata/fuzz covers every catalog
// shape; the nightly CI job fuzzes beyond it.
func FuzzLitmusOutcomes(f *testing.F) {
	names := Names()
	f.Add(uint8(0), int64(1), uint8(96), uint8(0))   // sb, aligned
	f.Add(uint8(1), int64(7), uint8(64), uint8(2))   // mp, reader late
	f.Add(uint8(2), int64(3), uint8(32), uint8(1))   // lb, cpu0 late
	f.Add(uint8(3), int64(11), uint8(16), uint8(0))  // corr
	f.Add(uint8(4), int64(13), uint8(8), uint8(2))   // coww
	f.Add(uint8(5), int64(5), uint8(128), uint8(5))  // iriw, readers late
	f.Add(uint8(6), int64(17), uint8(96), uint8(3))  // sbn4
	f.Add(uint8(7), int64(23), uint8(255), uint8(4)) // sbn8
	cfg := BaseConfig()
	f.Fuzz(func(t *testing.T, shape uint8, seed int64, maxSkew uint8, pattern uint8) {
		tt, _ := ByName(names[int(shape)%len(names)])
		patterns := skewPatterns(tt)
		bopt := BuildOptions{
			Seed:      seed,
			MaxSkew:   int(maxSkew),
			MaxGap:    3,
			ExtraSkew: patterns[int(pattern)%len(patterns)],
		}
		res, err := Run(context.Background(), tt, cfg, bopt, 1_000_000)
		if err != nil {
			t.Fatalf("%s seed=%d skew=%d pattern=%d: %v", tt.Name, seed, maxSkew, pattern, err)
		}
		if !res.Allowed {
			t.Fatalf("%s seed=%d skew=%d pattern=%d: TSO-forbidden outcome %s",
				tt.Name, seed, maxSkew, pattern, OutcomeString(res.Outcome))
		}
	})
}
