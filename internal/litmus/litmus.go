// Package litmus is a memory-ordering conformance harness for the SMP
// model: the classic litmus-test shapes of the SPARC TSO literature (store
// buffering, message passing, load buffering, IRIW, and the coherence
// shapes CoRR/CoWW), expressed as multi-CPU trace programs and classified
// against their TSO-allowed outcome sets.
//
// The source paper's processor is an enterprise SMP part whose correctness
// story rests on SPARC TSO; the formalisation in Hou et al. ("A
// formalisation of the SPARC TSO memory model for multi-core machine
// code") gives the allowed/forbidden outcome sets the tests here carry.
// TSO relaxes exactly one thing — a load may complete before an older
// store to a *different* address drains from the store buffer — so SB's
// r0=0,r1=0 outcome is allowed, while MP's stale read, LB's out-of-thin-
// air pair, IRIW's split observation and non-monotone same-location reads
// (CoRR/CoWW) are all forbidden.
//
// The model is trace-driven and carries no data values, so outcomes are
// reconstructed by a value-shadow Observer (observer.go) attached to the
// cpu.MemObserver hooks: store identity (drains are FIFO per CPU) gives
// each drain its program-order value, snoop invalidations track which chip
// holds which value, and a load binds its value at access time — with a
// re-bind at finalisation when a snoop revoked an out-of-order bind,
// mirroring how TSO hardware keeps out-of-order loads architecturally
// ordered without forbidding the store-buffer relaxation itself.
//
// Entry points: Run (one seed), Sweep (many seeds x per-CPU skew
// patterns), the tso-outcomes metamorph check (internal/metamorph), the
// LitmusStudy experiment (internal/expt), and `sparc64sim -litmus <name>`.
package litmus

import "fmt"

// Step is one body instruction of a litmus program: a store of a constant
// to a shared variable, or a load of a shared variable into an observed
// register.
type Step struct {
	// Store selects between a store (Var, Val) and a load (Var, Reg).
	Store bool
	// Var is the shared-variable index (0-based).
	Var int
	// Val is the value written (stores). Values are small positive
	// integers, unique per (CPU, Var) so every observation is unambiguous;
	// 0 is the initial value of every variable.
	Val int
	// Reg is the observed-register index the load targets (loads).
	Reg int
}

// St builds a store step.
func St(v, val int) Step { return Step{Store: true, Var: v, Val: val} }

// Ld builds a load step.
func Ld(v, reg int) Step { return Step{Var: v, Reg: reg} }

// Test is one litmus shape: per-CPU programs over shared variables, and
// the TSO-allowed outcome predicate over the observed registers.
type Test struct {
	// Name is the stable identifier ("sb", "mp", "iriw", ...).
	Name string
	// Doc is a one-line description of the shape and its forbidden outcome.
	Doc string
	// CPUs, Vars and Regs size the shape: CPU programs, shared variables,
	// observed registers. All variables start at 0.
	CPUs, Vars, Regs int
	// Progs[i] is CPU i's body program.
	Progs [][]Step
	// Allowed reports whether an observed register tuple (indexed by Reg)
	// is TSO-allowed.
	Allowed func(r []int) bool
	// Witness lists outcomes that a healthy sweep must observe at least
	// once — the point of SB is *seeing* the store-buffer relaxation, not
	// merely never seeing forbidden ones. May be empty.
	Witness [][]int
}

// SB is the store-buffering shape: each CPU stores its own variable then
// loads the other's. TSO allows all four outcomes — r0=0,r1=0 is the
// store-buffer signature (both loads overtook the remote store) and is a
// witness a healthy machine must produce.
func SB() Test {
	return Test{
		Name: "sb",
		Doc:  "store buffering: St X; Ld Y || St Y; Ld X — all outcomes TSO-allowed, 0,0 must be witnessed",
		CPUs: 2, Vars: 2, Regs: 2,
		Progs: [][]Step{
			{St(0, 1), Ld(1, 0)},
			{St(1, 1), Ld(0, 1)},
		},
		Allowed: func(r []int) bool { return true },
		Witness: [][]int{{0, 0}},
	}
}

// MP is message passing: a writer publishes data then a flag; a reader
// polls the flag then reads the data. Seeing the flag set but the data
// stale (r0=1, r1=0) is forbidden — TSO stores drain in order and loads
// do not reorder observably.
func MP() Test {
	return Test{
		Name: "mp",
		Doc:  "message passing: St X; St Y || Ld Y; Ld X — r0=1,r1=0 (flag set, data stale) forbidden",
		CPUs: 2, Vars: 2, Regs: 2,
		Progs: [][]Step{
			{St(0, 1), St(1, 1)},
			{Ld(1, 0), Ld(0, 1)},
		},
		Allowed: func(r []int) bool { return !(r[0] == 1 && r[1] == 0) },
	}
}

// LB is load buffering: each CPU loads one variable then stores the
// other. Both loads observing the other CPU's (program-later) store
// (r0=1, r1=1) is forbidden under TSO — loads never pass program-earlier
// loads observably and stores do not execute early.
func LB() Test {
	return Test{
		Name: "lb",
		Doc:  "load buffering: Ld X; St Y || Ld Y; St X — r0=1,r1=1 (both read the later stores) forbidden",
		CPUs: 2, Vars: 2, Regs: 2,
		Progs: [][]Step{
			{Ld(0, 0), St(1, 1)},
			{Ld(1, 1), St(0, 1)},
		},
		Allowed: func(r []int) bool { return !(r[0] == 1 && r[1] == 1) },
	}
}

// CoRR is coherent read-read: two program-ordered loads of the same
// variable must not observe it going backwards in coherence order
// (r0=1, r1=0 forbidden).
func CoRR() Test {
	return Test{
		Name: "corr",
		Doc:  "coherent read-read: St X || Ld X; Ld X — r0=1,r1=0 (value moves backwards) forbidden",
		CPUs: 2, Vars: 1, Regs: 2,
		Progs: [][]Step{
			{St(0, 1)},
			{Ld(0, 0), Ld(0, 1)},
		},
		Allowed: func(r []int) bool { return !(r[0] == 1 && r[1] == 0) },
	}
}

// CoWW is coherent write-write observed by a reader: a CPU writes 1 then 2
// to the same variable; a second CPU's two ordered loads must observe a
// non-decreasing sequence (0, 1, 2 are in coherence order).
func CoWW() Test {
	return Test{
		Name: "coww",
		Doc:  "coherent write-write: St X=1; St X=2 || Ld X; Ld X — reads must be coherence-monotone (r1 >= r0)",
		CPUs: 2, Vars: 1, Regs: 2,
		Progs: [][]Step{
			{St(0, 1), St(0, 2)},
			{Ld(0, 0), Ld(0, 1)},
		},
		Allowed: func(r []int) bool { return r[1] >= r[0] },
	}
}

// IRIW is independent reads of independent writes: two writers touch
// different variables; two readers each read both in opposite orders.
// The readers disagreeing on the store order (r0=1,r1=0 and r2=1,r3=0)
// is forbidden — TSO has a single total store order all CPUs agree on.
func IRIW() Test {
	return Test{
		Name: "iriw",
		Doc:  "independent reads of independent writes: readers must agree on the store order; the split r=(1,0,1,0) is forbidden",
		CPUs: 4, Vars: 2, Regs: 4,
		Progs: [][]Step{
			{St(0, 1)},
			{St(1, 1)},
			{Ld(0, 0), Ld(1, 1)},
			{Ld(1, 2), Ld(0, 3)},
		},
		Allowed: func(r []int) bool {
			return !(r[0] == 1 && r[1] == 0 && r[2] == 1 && r[3] == 0)
		},
	}
}

// SBN is the n-thread generalisation of SB: CPU i stores variable i then
// loads variable i+1 (mod n). TSO allows every outcome (each load may
// overtake the remote store); the all-zero tuple is the n-way store-buffer
// signature.
func SBN(n int) Test {
	progs := make([][]Step, n)
	for i := 0; i < n; i++ {
		progs[i] = []Step{St(i, 1), Ld((i+1)%n, i)}
	}
	return Test{
		Name: fmt.Sprintf("sbn%d", n),
		Doc:  fmt.Sprintf("%d-thread store-buffer ring: St V_i; Ld V_(i+1) — all outcomes TSO-allowed", n),
		CPUs: n, Vars: n, Regs: n,
		Progs:   progs,
		Allowed: func(r []int) bool { return true },
	}
}

// Tests returns the full shape catalog in presentation order.
func Tests() []Test {
	return []Test{SB(), MP(), LB(), CoRR(), CoWW(), IRIW(), SBN(4), SBN(8)}
}

// ByName resolves a shape by its stable name.
func ByName(name string) (Test, bool) {
	for _, t := range Tests() {
		if t.Name == name {
			return t, true
		}
	}
	return Test{}, false
}

// Names lists the catalog's shape names in presentation order.
func Names() []string {
	var names []string
	for _, t := range Tests() {
		names = append(names, t.Name)
	}
	return names
}
