package litmus

import (
	"context"
	"encoding/json"
	"fmt"
	"math/bits"
	"reflect"
	"testing"

	"sparc64v/internal/coherence"
	"sparc64v/internal/system"
	"sparc64v/internal/trace"
)

// sweepOpts are the stock test options: enough seeds to exercise every
// skew pattern a few times without making `go test` slow.
func sweepOpts(cpus int) Options {
	return Options{Seeds: 32, BaseSeed: 42, CPUs: cpus}
}

// TestStockConformance sweeps every catalog shape at its natural size and
// padded machine sizes: no TSO-forbidden outcome may appear, every
// required witness must, and the coherence invariant must hold after each
// run (Run checks it per shared line).
func TestStockConformance(t *testing.T) {
	cfg := BaseConfig()
	for _, tt := range Tests() {
		for _, cpus := range []int{2, 4, 8} {
			if cpus < tt.CPUs {
				continue
			}
			tt, cpus := tt, cpus
			t.Run(fmt.Sprintf("%s/%dcpu", tt.Name, cpus), func(t *testing.T) {
				t.Parallel()
				sr, err := Sweep(context.Background(), tt, cfg, sweepOpts(cpus))
				if err != nil {
					t.Fatalf("sweep: %v", err)
				}
				if len(sr.Forbidden) > 0 {
					t.Errorf("TSO-forbidden outcomes observed: %v", sr.Forbidden)
				}
				if len(sr.WitnessMissing) > 0 {
					t.Errorf("required witness outcomes never observed: %v", sr.WitnessMissing)
				}
				total := 0
				for _, oc := range sr.Outcomes {
					total += oc.Count
				}
				if total != sr.Seeds {
					t.Errorf("histogram covers %d of %d seeds", total, sr.Seeds)
				}
			})
		}
	}
}

// TestSBWitnessesRelaxation pins the point of the harness: the
// store-buffer relaxation (both loads overtaking the remote store) is
// actually observed, not merely permitted.
func TestSBWitnessesRelaxation(t *testing.T) {
	sr, err := Sweep(context.Background(), SB(), BaseConfig(), sweepOpts(0))
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for _, oc := range sr.Outcomes {
		if oc.Outcome == "r0=0 r1=0" {
			if oc.Count == 0 {
				t.Fatalf("witness row present but empty: %+v", sr.Outcomes)
			}
			return
		}
	}
	t.Fatalf("store-buffer witness r0=0 r1=0 never observed: %+v", sr.Outcomes)
}

// TestSweepDeterministicAcrossWorkers pins byte-identical results at any
// worker count: runs fan out on the scheduler but merge in seed order.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	cfg := BaseConfig()
	for _, tt := range []Test{SB(), IRIW()} {
		var want []byte
		for _, workers := range []int{1, 8} {
			opt := sweepOpts(0)
			opt.Workers = workers
			sr, err := Sweep(context.Background(), tt, cfg, opt)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tt.Name, workers, err)
			}
			got, err := json.Marshal(sr)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
			} else if string(got) != string(want) {
				t.Errorf("%s: workers=%d diverged:\n  1: %s\n  %d: %s",
					tt.Name, workers, want, workers, got)
			}
		}
	}
}

// TestObserverInvisible pins that attaching the observer does not perturb
// the timing model: cycle counts with and without it are identical.
func TestObserverInvisible(t *testing.T) {
	tt := SB()
	cfg := BaseConfig()
	prog, err := tt.Build(BuildOptions{Seed: 7, MaxSkew: 96, MaxGap: 3})
	if err != nil {
		t.Fatal(err)
	}
	run := func(observe bool) uint64 {
		c := cfg.WithCPUs(prog.CPUs)
		c.WarmupInsts = 0
		srcs := make([]trace.Source, prog.CPUs)
		for i := range srcs {
			srcs[i] = trace.NewSliceSource(prog.Recs[i])
		}
		sys, err := system.New(c, srcs)
		if err != nil {
			t.Fatal(err)
		}
		if observe {
			obs, err := NewObserver(prog, uint(bits.TrailingZeros(uint(c.L1D.LineBytes))))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < prog.CPUs; i++ {
				sys.CPU(i).Observer = obs
				sys.Chip(i).Observer = obs
			}
		}
		cycles, capped, err := sys.RunContext(context.Background(), 1_000_000)
		if err != nil || capped {
			t.Fatalf("run: cycles=%d capped=%v err=%v", cycles, capped, err)
		}
		return cycles
	}
	with, without := run(true), run(false)
	if with != without {
		t.Fatalf("observer perturbed timing: %d cycles with, %d without", with, without)
	}
}

// TestInjectedFaultCaught pins the harness's teeth: a coherence controller
// that drops invalidations must produce TSO-forbidden outcomes on the
// stale-read shapes.
func TestInjectedFaultCaught(t *testing.T) {
	coherence.InjectFault(coherence.FaultDropInvalidate)
	defer coherence.InjectFault(coherence.FaultNone)
	cfg := BaseConfig()
	for _, name := range []string{"mp", "iriw"} {
		tt, ok := ByName(name)
		if !ok {
			t.Fatalf("shape %s missing", name)
		}
		sr, err := Sweep(context.Background(), tt, cfg, sweepOpts(0))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(sr.Forbidden) == 0 {
			t.Errorf("%s: dropped invalidations produced no forbidden outcome: %+v", name, sr.Outcomes)
		}
	}
}

// TestByName covers the catalog lookups.
func TestByName(t *testing.T) {
	for _, name := range Names() {
		tt, ok := ByName(name)
		if !ok || tt.Name != name {
			t.Errorf("ByName(%q) = %q, %v", name, tt.Name, ok)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted an unknown shape")
	}
}

// TestBuildLayout pins the generated program's structural promises: body
// loads target the declared registers, stores appear in program order in
// storeSeq, variables sit on distinct cache lines, and padding CPUs get
// warm+filler-only traces.
func TestBuildLayout(t *testing.T) {
	tt := MP()
	prog, err := tt.Build(BuildOptions{Seed: 3, MaxSkew: 16, MaxGap: 2, CPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if prog.CPUs != 4 || len(prog.Recs) != 4 {
		t.Fatalf("padding: got %d CPUs", prog.CPUs)
	}
	if got := [][]storeEvent{{{0, 1}, {1, 1}}, nil, nil, nil}; !reflect.DeepEqual(prog.storeSeq, got) {
		t.Errorf("storeSeq = %+v", prog.storeSeq)
	}
	for v := 0; v < tt.Vars; v++ {
		for w := v + 1; w < tt.Vars; w++ {
			if prog.VarAddr[v]>>6 == prog.VarAddr[w]>>6 {
				t.Errorf("vars %d and %d share a 64B line", v, w)
			}
		}
	}
	// Reader CPU 1: two observed loads mapping r0 <- Y, r1 <- X.
	if got := prog.regOfDst[dstKey(1, regBase+0)]; got != 0 {
		t.Errorf("cpu1 r0 mapping = %d", got)
	}
	if got := prog.regOfDst[dstKey(1, regBase+1)]; got != 1 {
		t.Errorf("cpu1 r1 mapping = %d", got)
	}
	// Padding CPUs carry no body: every record is a warm load or filler.
	for _, r := range prog.Recs[3] {
		if r.EA != 0 && r.Dst != warmReg {
			t.Errorf("padding CPU has body record %+v", r)
		}
	}
}

// TestBuildRejectsRegisterBudget covers the register-budget guard.
func TestBuildRejectsRegisterBudget(t *testing.T) {
	tt := SBN(4)
	tt.Regs = warmReg - regBase + 1
	if _, err := tt.Build(BuildOptions{}); err == nil {
		t.Error("oversized register set accepted")
	}
}

// TestObserverValueShadow drives the shadow directly through an MP-shaped
// event sequence and checks the bind/finalise semantics: an in-order bind
// survives a later invalidation (the store-buffer relaxation), while an
// out-of-order bind revoked by a snoop re-binds at finalisation.
func TestObserverValueShadow(t *testing.T) {
	tt := MP()
	prog, err := tt.Build(BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	newObs := func() *Observer {
		obs, err := NewObserver(prog, 6)
		if err != nil {
			t.Fatal(err)
		}
		return obs
	}
	// Reader CPU 1's observed loads in trace order: seqs of Ld Y, Ld X.
	var loadSeqs []uint64
	for seq, r := range prog.Recs[1] {
		if r.EA != 0 && r.Dst != warmReg {
			loadSeqs = append(loadSeqs, uint64(seq))
		}
	}
	if len(loadSeqs) != 2 {
		t.Fatalf("reader has %d body loads", len(loadSeqs))
	}
	ldY, ldX := loadSeqs[0], loadSeqs[1]
	recY, recX := &prog.Recs[1][ldY], &prog.Recs[1][ldX]
	warmAll := func(obs *Observer) {
		for cpu := 0; cpu < prog.CPUs; cpu++ {
			for seq, r := range prog.Recs[cpu] {
				if r.Dst == warmReg {
					obs.LoadAccess(cpu, uint64(seq), &prog.Recs[cpu][seq], false)
					obs.LoadCommit(cpu, uint64(seq), &prog.Recs[cpu][seq])
				}
			}
		}
	}

	// In order: both reader loads bind 0, then the writer drains. The
	// early binds are final and survive the invalidations — outcome 0,0.
	obs := newObs()
	warmAll(obs)
	obs.LoadAccess(1, ldY, recY, false)
	obs.LoadAccess(1, ldX, recX, false)
	obs.StoreDrained(0, prog.VarAddr[0], 8) // X=1
	obs.LineInvalidated(1, prog.VarAddr[0])
	obs.StoreDrained(0, prog.VarAddr[1], 8) // Y=1
	obs.LineInvalidated(1, prog.VarAddr[1])
	obs.LoadCommit(1, ldY, recY)
	obs.LoadCommit(1, ldX, recX)
	if got := obs.Outcome(); !reflect.DeepEqual(got, []int{0, 0}) {
		t.Errorf("in-order binds: outcome %v, want [0 0]", got)
	}

	// Out of order: Ld X binds 0 early, the writer drains both stores,
	// then Ld Y binds 1. X's bind was revoked before finalisation, so it
	// re-binds to 1 — the forbidden 1,0 never materialises.
	obs = newObs()
	warmAll(obs)
	obs.LoadAccess(1, ldX, recX, false) // younger first (retry reordering)
	obs.StoreDrained(0, prog.VarAddr[0], 8)
	obs.LineInvalidated(1, prog.VarAddr[0])
	obs.StoreDrained(0, prog.VarAddr[1], 8)
	obs.LineInvalidated(1, prog.VarAddr[1])
	obs.LoadAccess(1, ldY, recY, false) // older load finally accesses
	obs.LoadCommit(1, ldY, recY)
	obs.LoadCommit(1, ldX, recX)
	if got := obs.Outcome(); !reflect.DeepEqual(got, []int{1, 1}) {
		t.Errorf("out-of-order rebind: outcome %v, want [1 1]", got)
	}
	if errs := obs.Finish(); len(errs) != 0 {
		t.Errorf("complete synthetic run reported errors: %v", errs)
	}
}

// TestObserverFinishFlagsIncomplete pins that Finish reports unobserved
// registers, pending loads and undrained stores.
func TestObserverFinishFlagsIncomplete(t *testing.T) {
	prog, err := SB().Build(BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	obs, err := NewObserver(prog, 6)
	if err != nil {
		t.Fatal(err)
	}
	errs := obs.Finish()
	if len(errs) == 0 {
		t.Fatal("empty run reported complete")
	}
}
