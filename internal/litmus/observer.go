package litmus

import (
	"fmt"

	"sparc64v/internal/isa"
	"sparc64v/internal/trace"
)

// Observer reconstructs observed load values on the timing-only model. It
// implements cpu.MemObserver and mirrors, in values, exactly what the
// model does in cache states:
//
//   - a drained store (the model's global-visibility point; drains are
//     FIFO per CPU) publishes its program-order value globally and into
//     the draining chip's copy;
//   - a snoop invalidation marks a chip's copy gone and bumps the
//     (chip, var) epoch;
//   - a load binds its value at access time: the chip's held copy if
//     present (cache hit), else the current global value (miss — the fill
//     comes from the owner or memory), which also makes the chip a holder.
//
// A bind is provisional until every program-order-older load of the same
// CPU has accessed (the model's load queue can initiate accesses out of
// order across bank-conflict and MSHR retries). At that point the bind is
// finalised: if a snoop invalidated the line in between, the load
// re-binds to the value current at finalisation. This makes each CPU's
// effective bind times monotone in program order — exactly the load-load
// ordering TSO demands — without tying binds to commit. Tying them to
// commit would be stronger than TSO: an early-bound load whose line is
// invalidated before retirement is still a legal TSO execution (the read
// is ordered before the store), and it is precisely the store-buffer
// relaxation the SB witness exists to observe.
//
// Store-to-load forwards bypass the cache entirely and deliver the
// forwarding store's own value (precomputed per load in Program.fwdVal);
// they are final at access.
//
// Trust boundary: the shadow sees snoop invalidations but not L2-capacity
// back-invalidations (see cpu.MemObserver); litmus footprints are a few
// lines, far below L2 capacity, and Finish cross-checks that every store
// drained and every observed load committed.
//
// The simulation ticks CPUs sequentially, so one Observer serves all CPUs
// and chips of a System without locking.
type Observer struct {
	prog      *Program
	lineShift uint
	lineVar   map[uint64]int // line address -> variable index

	cur     []int      // current globally visible value, per var
	held    [][]bool   // chip holds a copy of var
	heldVal [][]int    // the value that copy carries
	epoch   [][]uint32 // bumped per (chip, var) on snoop invalidation

	// loadOrd[cpu] maps a load's window seq (== trace record index: the
	// model is trace-driven and allocates seqs in program order with no
	// wrong-path entries) to its program-order load ordinal.
	loadOrd []map[uint64]int
	// accessed[cpu][k] records that the CPU's k-th load has accessed;
	// frontier[cpu] is the count of leading accessed loads. A pending
	// load finalises when the frontier passes it.
	accessed [][]bool
	frontier []int

	pending  []map[uint64]pendingLoad // per CPU, by window seq
	ordSeq   []map[int]uint64         // per CPU, load ordinal -> window seq
	drainPos []int                    // per CPU, index into Program.storeSeq

	finals   []int // observed register values
	gotFinal []bool
	errs     []string
}

// pendingLoad is a load bound at access, awaiting finalisation and commit.
type pendingLoad struct {
	varIdx int
	reg    int // observed-register index, -1 for warming loads
	ord    int // program-order load ordinal on its CPU
	val    int
	epoch  uint32
	final  bool
}

// NewObserver builds the shadow for a program on a machine with the given
// cache-line shift.
func NewObserver(p *Program, lineShift uint) (*Observer, error) {
	o := &Observer{
		prog:      p,
		lineShift: lineShift,
		lineVar:   make(map[uint64]int, len(p.VarAddr)),
		cur:       make([]int, len(p.VarAddr)),
		held:      make([][]bool, p.CPUs),
		heldVal:   make([][]int, p.CPUs),
		epoch:     make([][]uint32, p.CPUs),
		loadOrd:   make([]map[uint64]int, p.CPUs),
		accessed:  make([][]bool, p.CPUs),
		frontier:  make([]int, p.CPUs),
		pending:   make([]map[uint64]pendingLoad, p.CPUs),
		ordSeq:    make([]map[int]uint64, p.CPUs),
		drainPos:  make([]int, p.CPUs),
		finals:    make([]int, p.Test.Regs),
		gotFinal:  make([]bool, p.Test.Regs),
	}
	for v, ea := range p.VarAddr {
		line := ea >> lineShift
		if prev, dup := o.lineVar[line]; dup {
			return nil, fmt.Errorf("litmus: vars %d and %d share cache line %#x", prev, v, line)
		}
		o.lineVar[line] = v
	}
	for i := 0; i < p.CPUs; i++ {
		o.held[i] = make([]bool, len(p.VarAddr))
		o.heldVal[i] = make([]int, len(p.VarAddr))
		o.epoch[i] = make([]uint32, len(p.VarAddr))
		o.loadOrd[i] = make(map[uint64]int)
		for seq, r := range p.Recs[i] {
			if r.Op == isa.Load {
				o.loadOrd[i][uint64(seq)] = len(o.loadOrd[i])
			}
		}
		o.accessed[i] = make([]bool, len(o.loadOrd[i]))
		o.pending[i] = make(map[uint64]pendingLoad)
		o.ordSeq[i] = make(map[int]uint64)
	}
	return o, nil
}

// errf records a shadow/model divergence (an infrastructure failure, not
// a TSO verdict).
func (o *Observer) errf(format string, args ...any) {
	if len(o.errs) < 16 {
		o.errs = append(o.errs, fmt.Sprintf(format, args...))
	}
}

// LoadAccess implements cpu.MemObserver. A cancelled load re-accesses;
// the map overwrite keeps only the final observation for the seq.
func (o *Observer) LoadAccess(cpu int, seq uint64, rec *trace.Record, forwarded bool) {
	v, ok := o.lineVar[rec.EA>>o.lineShift]
	if !ok {
		return
	}
	ord, isLoad := o.loadOrd[cpu][seq]
	if !isLoad {
		o.errf("cpu %d: access for seq %d which the program says is not a load", cpu, seq)
		return
	}
	var val int
	if forwarded {
		fv, ok := o.prog.fwdVal[dstKey(cpu, rec.Dst)]
		if !ok {
			o.errf("cpu %d: unexpected store-forward into load pc %#x", cpu, rec.PC)
			return
		}
		val = fv
	} else if o.held[cpu][v] {
		val = o.heldVal[cpu][v]
	} else {
		val = o.cur[v]
		o.held[cpu][v] = true
		o.heldVal[cpu][v] = val
	}
	reg, observed := o.prog.regOfDst[dstKey(cpu, rec.Dst)]
	if !observed {
		reg = -1
	}
	o.pending[cpu][seq] = pendingLoad{
		varIdx: v, reg: reg, ord: ord, val: val,
		epoch: o.epoch[cpu][v], final: forwarded,
	}
	o.ordSeq[cpu][ord] = seq
	o.accessed[cpu][ord] = true
	o.advanceFrontier(cpu)
}

// advanceFrontier finalises every pending load all of whose older loads
// have now accessed: if a snoop invalidated its line since the bind, it
// re-binds to the value current now (the chip's refreshed copy if a later
// access refetched it, else the global value — without claiming the chip
// holds the line: the timing model did not refetch on its behalf).
func (o *Observer) advanceFrontier(cpu int) {
	for o.frontier[cpu] < len(o.accessed[cpu]) && o.accessed[cpu][o.frontier[cpu]] {
		seq, ok := o.ordSeq[cpu][o.frontier[cpu]]
		o.frontier[cpu]++
		if !ok {
			continue
		}
		p, live := o.pending[cpu][seq]
		if !live || p.final {
			continue
		}
		if o.epoch[cpu][p.varIdx] != p.epoch {
			if o.held[cpu][p.varIdx] {
				p.val = o.heldVal[cpu][p.varIdx]
			} else {
				p.val = o.cur[p.varIdx]
			}
		}
		p.final = true
		o.pending[cpu][seq] = p
	}
}

// LoadCommit implements cpu.MemObserver: the finalised bind becomes
// architectural.
func (o *Observer) LoadCommit(cpu int, seq uint64, rec *trace.Record) {
	p, ok := o.pending[cpu][seq]
	if !ok {
		return
	}
	delete(o.pending[cpu], seq)
	if !p.final {
		// Commit is in program order, so every older load has committed —
		// hence accessed — and the frontier must have passed this load.
		o.errf("cpu %d: load seq %d committed before its bind finalised", cpu, seq)
	}
	if p.reg >= 0 {
		if o.gotFinal[p.reg] {
			o.errf("cpu %d: register r%d observed twice", cpu, p.reg)
		}
		o.finals[p.reg] = p.val
		o.gotFinal[p.reg] = true
	}
}

// StoreDrained implements cpu.MemObserver: the CPU's next program-order
// store becomes globally visible. The address cross-check pins the model's
// FIFO-drain promise — a reordered drain is a real TSO W->W violation and
// surfaces here as a shadow error.
func (o *Observer) StoreDrained(cpu int, addr uint64, size uint8) {
	v, ok := o.lineVar[addr>>o.lineShift]
	if !ok {
		return
	}
	seq := o.prog.storeSeq[cpu]
	i := o.drainPos[cpu]
	if i >= len(seq) {
		o.errf("cpu %d: unexpected extra store drain to %#x", cpu, addr)
		return
	}
	if seq[i].varIdx != v {
		o.errf("cpu %d: drain %d hit var %d but program order says var %d (W->W reorder?)",
			cpu, i, v, seq[i].varIdx)
		return
	}
	o.drainPos[cpu] = i + 1
	o.cur[v] = seq[i].val
	o.held[cpu][v] = true
	o.heldVal[cpu][v] = seq[i].val
}

// LineInvalidated implements cpu.MemObserver: a snoop took the chip's
// copy; any load bound against it that has not finalised must re-bind.
func (o *Observer) LineInvalidated(chip int, addr uint64) {
	v, ok := o.lineVar[addr>>o.lineShift]
	if !ok {
		return
	}
	o.held[chip][v] = false
	o.epoch[chip][v]++
}

// Outcome returns the observed register tuple (valid after the run).
func (o *Observer) Outcome() []int { return o.finals }

// Finish cross-checks completeness and returns every shadow error: all
// observed registers written, no load left pending, every program store
// drained.
func (o *Observer) Finish() []string {
	errs := o.errs
	for g, ok := range o.gotFinal {
		if !ok {
			errs = append(errs, fmt.Sprintf("register r%d never observed", g))
		}
	}
	for cpu, pend := range o.pending {
		if len(pend) > 0 {
			errs = append(errs, fmt.Sprintf("cpu %d: %d loads accessed but never committed", cpu, len(pend)))
		}
	}
	for cpu, pos := range o.drainPos {
		if pos != len(o.prog.storeSeq[cpu]) {
			errs = append(errs, fmt.Sprintf("cpu %d: %d of %d stores drained", cpu, pos, len(o.prog.storeSeq[cpu])))
		}
	}
	return errs
}
