package litmus

import (
	"fmt"
	"math/rand"

	"sparc64v/internal/isa"
	"sparc64v/internal/trace"
)

// Address and register layout of the generated programs.
const (
	// varBase anchors the shared variables well away from the synthetic
	// workloads' regions. varStride keeps each variable on its own cache
	// line (64B) and staggers the L1 bank it lands in; it is 8-byte
	// aligned so an 8-byte access never splits.
	varBase   = 0x4000_0000
	varStride = 1096

	// codeStride separates the per-CPU instruction streams so no I-cache
	// line is ever shared between chips (I-side fetches are non-exclusive
	// and must not perturb the data-side invalidation sequence).
	codeStride = 0x0010_0000

	// Fillers fetch from a small PC loop (fillLoopInstrs instructions at
	// codeBase+fillLoopOff) instead of a linear stream: after one cold
	// pass the loop hits in the L1I every cycle, so fetch sustains full
	// width and the window actually fills. With linear filler PCs every
	// 16th instruction takes an I-miss, fetch becomes the ~1-per-cycle
	// bottleneck, the window runs near-empty, and loads access within a
	// cycle or two of commit — hiding the store-buffer relaxation the SB
	// witness exists to demonstrate.
	fillLoopOff    = 0x1000
	fillLoopInstrs = 64

	// regBase maps observed-register index g to architectural integer
	// register regBase+g (body loads only; Test.Regs stays far below the
	// scratch registers).
	regBase = 8
	// warmReg sinks the warming loads, fillReg carries the dependence
	// chain of the filler instructions.
	warmReg = 24
	fillReg = 25

	// barrierFillers is the dependence-chained filler run between the
	// warming loads and the body. It must exceed the 64-entry window so
	// the body cannot issue — and its loads cannot access — until the
	// warm misses have committed; past that point the chain retires one
	// per cycle, turning every additional filler into one cycle of
	// controllable skew.
	barrierFillers = 80

	// windowDivs widens the observable store-buffer window. A chained
	// IntALU run alone leaves issue leading the chain's dispatch frontier
	// by only the 16 reservation-station slots (2 stations x 8 entries),
	// not the 64-entry window, so a body store drains ~15 cycles after
	// its own loads access — far below the random skew spread, and the SB
	// (0,0) witness essentially never lands. Chaining two non-pipelined
	// divides (37 cycles each) onto the fillers immediately before the
	// body keeps the body speculative for ~75 cycles after it issues:
	// its loads still access within a few cycles, its stores drain after
	// the divides retire, and two bodies within ~70 cycles of each other
	// observably overlap in their store buffers.
	windowDivs = 2
)

// BuildOptions parameterises one generated program.
type BuildOptions struct {
	// Seed drives the per-CPU random skews and gaps.
	Seed int64
	// MaxSkew bounds the random filler run inserted before each CPU's
	// body (uniform in [0, MaxSkew]); 0 inserts none.
	MaxSkew int
	// MaxGap bounds the random filler run between body steps (uniform in
	// [0, MaxGap]); 0 inserts none.
	MaxGap int
	// ExtraSkew[i] adds a fixed filler run before CPU i's body — the
	// structural "this CPU runs late" patterns the sweep driver cycles
	// through. Shorter slices leave the remaining CPUs at 0.
	ExtraSkew []int
	// CPUs embeds the shape in a larger machine: CPUs beyond Test.CPUs
	// run warm+filler-only programs (extra invalidation targets). 0 or
	// anything below Test.CPUs means the shape's natural size.
	CPUs int
}

// storeEvent is one program-order store of a CPU: drains are FIFO, so the
// n-th observed drain must match the n-th entry.
type storeEvent struct {
	varIdx int
	val    int
}

// Program is a built litmus run: one trace per CPU plus the metadata the
// Observer needs to reconstruct values on a data-less trace model.
type Program struct {
	Test Test
	// CPUs is the machine size (>= Test.CPUs; extras run filler).
	CPUs int
	// Recs[i] is CPU i's instruction trace.
	Recs [][]trace.Record
	// VarAddr[v] is shared variable v's effective address.
	VarAddr []uint64

	// storeSeq[i] is CPU i's program-order store sequence.
	storeSeq [][]storeEvent
	// regOfDst maps (cpu, dst arch reg) to the observed-register index.
	regOfDst map[int]int
	// fwdVal maps (cpu, dst arch reg) of a load to the value of the last
	// program-order-earlier same-variable store on that CPU — the value a
	// store-to-load forward must deliver.
	fwdVal map[int]int
}

// dstKey indexes regOfDst/fwdVal by (cpu, architectural register).
func dstKey(cpu int, reg uint8) int { return cpu<<8 | int(reg) }

// Build generates the per-CPU traces for the shape.
func (t Test) Build(opt BuildOptions) (*Program, error) {
	if t.Regs > warmReg-regBase {
		return nil, fmt.Errorf("litmus %s: %d observed registers exceed the register budget", t.Name, t.Regs)
	}
	cpus := t.CPUs
	if opt.CPUs > cpus {
		cpus = opt.CPUs
	}
	p := &Program{
		Test:     t,
		CPUs:     cpus,
		Recs:     make([][]trace.Record, cpus),
		VarAddr:  make([]uint64, t.Vars),
		storeSeq: make([][]storeEvent, cpus),
		regOfDst: make(map[int]int),
		fwdVal:   make(map[int]int),
	}
	for v := range p.VarAddr {
		p.VarAddr[v] = varBase + uint64(v)*varStride
	}
	for cpu := 0; cpu < cpus; cpu++ {
		rng := rand.New(rand.NewSource(opt.Seed ^ int64(cpu+1)*0x9e3779b97f4a7c))
		pc := uint64(codeStride * (cpu + 1))
		var recs []trace.Record
		emit := func(r trace.Record) {
			r.PC = pc
			pc += isa.InstrBytes
			recs = append(recs, r)
		}
		fillBase := uint64(codeStride*(cpu+1) + fillLoopOff)
		fillCount := 0
		filler := func(op isa.Class) {
			fpc := fillBase + uint64(fillCount%fillLoopInstrs)*isa.InstrBytes
			fillCount++
			recs = append(recs, trace.Record{PC: fpc, Op: op,
				Dst: fillReg, Src1: fillReg, Src2: isa.RegNone})
		}
		fillers := func(n int) {
			for i := 0; i < n; i++ {
				filler(isa.IntALU)
			}
		}
		// Warm every variable into this chip (Shared everywhere): the body
		// stores then provoke real cross-chip invalidations, and a dropped
		// one leaves an *observably* stale copy.
		for _, ea := range p.VarAddr {
			emit(trace.Record{EA: ea, Op: isa.Load, Dst: warmReg,
				Src1: isa.RegNone, Src2: isa.RegNone, Size: 8})
		}
		fillers(barrierFillers)
		if cpu < len(opt.ExtraSkew) {
			fillers(opt.ExtraSkew[cpu])
		}
		if opt.MaxSkew > 0 {
			fillers(rng.Intn(opt.MaxSkew + 1))
		}
		if cpu < t.CPUs {
			for i := 0; i < windowDivs; i++ {
				filler(isa.IntDiv)
			}
			lastStore := make(map[int]int)
			for si, s := range t.Progs[cpu] {
				if si > 0 && opt.MaxGap > 0 {
					fillers(rng.Intn(opt.MaxGap + 1))
				}
				if s.Store {
					emit(trace.Record{EA: p.VarAddr[s.Var], Op: isa.Store,
						Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, Size: 8})
					p.storeSeq[cpu] = append(p.storeSeq[cpu], storeEvent{varIdx: s.Var, val: s.Val})
					lastStore[s.Var] = s.Val
				} else {
					dst := uint8(regBase + s.Reg)
					if _, dup := p.regOfDst[dstKey(cpu, dst)]; dup {
						return nil, fmt.Errorf("litmus %s: register r%d loaded twice on cpu %d", t.Name, s.Reg, cpu)
					}
					emit(trace.Record{EA: p.VarAddr[s.Var], Op: isa.Load, Dst: dst,
						Src1: isa.RegNone, Src2: isa.RegNone, Size: 8})
					p.regOfDst[dstKey(cpu, dst)] = s.Reg
					if v, ok := lastStore[s.Var]; ok {
						p.fwdVal[dstKey(cpu, dst)] = v
					}
				}
			}
		}
		p.Recs[cpu] = recs
	}
	return p, nil
}
