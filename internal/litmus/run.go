package litmus

import (
	"context"
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"sparc64v/internal/coherence"
	"sparc64v/internal/config"
	"sparc64v/internal/sched"
	"sparc64v/internal/system"
	"sparc64v/internal/trace"
)

// BaseConfig returns the machine litmus runs use: the Table 1 machine with
// the small L1s and a 256KB L2 (tiny runs get tiny caches — the shared
// footprint must stay far below L2 capacity so lines are never silently
// evicted past the observer, see the Observer trust boundary) and zero
// measurement warmup (every committed instruction is part of the program).
// CPU count is set per run from the shape.
func BaseConfig() config.Config {
	cfg := config.Base().WithSmallL1()
	cfg.Mem.L2.SizeBytes = 256 << 10
	cfg.WarmupInsts = 0
	cfg.Name += ".litmus"
	return cfg
}

// Options parameterises a Sweep.
type Options struct {
	// Seeds is the number of runs (default 32). Each seed gets its own
	// random skews/gaps and cycles through the per-CPU skew patterns.
	Seeds int
	// BaseSeed offsets the per-run seeds (default 1).
	BaseSeed int64
	// MaxSkew / MaxGap bound the random fillers (defaults 96 / 3).
	MaxSkew, MaxGap int
	// CPUs pads the machine beyond the shape's natural size (0 = natural).
	CPUs int
	// Workers bounds the parallel fan-out (0 = GOMAXPROCS).
	Workers int
	// MaxCycles caps each run (default 1M; litmus runs take ~1k cycles).
	MaxCycles uint64
}

// withDefaults fills the zero values.
func (o Options) withDefaults() Options {
	if o.Seeds == 0 {
		o.Seeds = 32
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	if o.MaxSkew == 0 {
		o.MaxSkew = 96
	}
	if o.MaxGap == 0 {
		o.MaxGap = 3
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 1_000_000
	}
	return o
}

// lateSkew is the structural skew of a "this CPU runs late" pattern: far
// past MaxSkew plus the ~64-cycle store-drain window, so a late CPU's body
// provably starts after an early CPU's stores have drained.
const lateSkew = 256

// skewPatterns returns the structural per-CPU skew patterns a sweep
// cycles through: everyone aligned, each shape CPU late in turn, and all
// reader CPUs late together (the pattern that arms multi-reader shapes
// like IRIW — both readers must run after both writers for a split
// observation to be visible at all).
func skewPatterns(t Test) [][]int {
	patterns := [][]int{make([]int, t.CPUs)}
	for i := 0; i < t.CPUs; i++ {
		p := make([]int, t.CPUs)
		p[i] = lateSkew
		patterns = append(patterns, p)
	}
	readers := make([]int, t.CPUs)
	n := 0
	for i, prog := range t.Progs {
		for _, s := range prog {
			if !s.Store {
				readers[i] = lateSkew
				n++
				break
			}
		}
	}
	if n > 1 && n < t.CPUs {
		patterns = append(patterns, readers)
	}
	return patterns
}

// Result is one classified litmus run.
type Result struct {
	// Outcome is the observed register tuple.
	Outcome []int
	// Allowed reports whether TSO permits it.
	Allowed bool
	// Cycles is the run length.
	Cycles uint64
}

// Run builds and simulates one litmus program and classifies its outcome.
// Errors are infrastructure failures (the run could not be trusted);
// forbidden outcomes come back as Allowed=false, not as errors.
func Run(ctx context.Context, t Test, cfg config.Config, bopt BuildOptions, maxCycles uint64) (Result, error) {
	prog, err := t.Build(bopt)
	if err != nil {
		return Result{}, err
	}
	cfg = cfg.WithCPUs(prog.CPUs)
	cfg.WarmupInsts = 0
	srcs := make([]trace.Source, prog.CPUs)
	for i := range srcs {
		srcs[i] = trace.NewSliceSource(prog.Recs[i])
	}
	sys, err := system.New(cfg, srcs)
	if err != nil {
		return Result{}, err
	}
	obs, err := NewObserver(prog, uint(bits.TrailingZeros(uint(cfg.L1D.LineBytes))))
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < prog.CPUs; i++ {
		sys.CPU(i).Observer = obs
		sys.Chip(i).Observer = obs
	}
	if maxCycles == 0 {
		maxCycles = 1_000_000
	}
	cycles, capped, err := sys.RunContext(ctx, maxCycles)
	if err != nil {
		return Result{}, err
	}
	if capped {
		return Result{}, fmt.Errorf("litmus %s: run hit the %d-cycle cap", t.Name, maxCycles)
	}
	for i := 0; i < prog.CPUs; i++ {
		if got, want := sys.CPU(i).Stats.Committed, uint64(len(prog.Recs[i])); got != want {
			return Result{}, fmt.Errorf("litmus %s: cpu %d committed %d of %d records", t.Name, i, got, want)
		}
	}
	// The protocol invariant must hold for every shared line after the
	// run — unless a coherence fault is armed, in which case breaking it
	// is the point and the verdict belongs to the outcome classification.
	if coherence.InjectedFault() == coherence.FaultNone {
		for v, ea := range prog.VarAddr {
			if !sys.Controller().CheckCoherence(ea) {
				return Result{}, fmt.Errorf("litmus %s: coherence invariant violated on var %d", t.Name, v)
			}
		}
	}
	if errs := obs.Finish(); len(errs) > 0 {
		return Result{}, fmt.Errorf("litmus %s: observer diverged: %s", t.Name, strings.Join(errs, "; "))
	}
	out := obs.Outcome()
	return Result{Outcome: out, Allowed: t.Allowed(out), Cycles: cycles}, nil
}

// OutcomeCount is one row of a sweep's outcome histogram.
type OutcomeCount struct {
	Outcome string `json:"outcome"`
	Count   int    `json:"count"`
	Allowed bool   `json:"allowed"`
}

// SweepResult is the classified histogram of a multi-seed sweep.
type SweepResult struct {
	Test     string         `json:"test"`
	CPUs     int            `json:"cpus"`
	Seeds    int            `json:"seeds"`
	Outcomes []OutcomeCount `json:"outcomes"`
	// Forbidden lists every TSO-forbidden observation with its seed.
	Forbidden []string `json:"forbidden,omitempty"`
	// WitnessMissing lists required outcomes the sweep never produced.
	WitnessMissing []string `json:"witness_missing,omitempty"`
}

// OK reports a clean sweep: no forbidden outcome, no missing witness.
func (r *SweepResult) OK() bool {
	return len(r.Forbidden) == 0 && len(r.WitnessMissing) == 0
}

// OutcomeString renders a register tuple ("r0=0 r1=1").
func OutcomeString(out []int) string {
	var b strings.Builder
	for i, v := range out {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "r%d=%d", i, v)
	}
	return b.String()
}

// Sweep runs a shape across opt.Seeds seeds, cycling the structural skew
// patterns, and classifies every outcome. The result is deterministic for
// fixed options at any worker count: runs fan out on the scheduler but
// merge in seed order.
func Sweep(ctx context.Context, t Test, cfg config.Config, opt Options) (SweepResult, error) {
	opt = opt.withDefaults()
	patterns := skewPatterns(t)
	results, err := sched.MapCtx(ctx, opt.Seeds, sched.Options{Workers: opt.Workers},
		func(ctx context.Context, i int) (Result, error) {
			bopt := BuildOptions{
				Seed:      opt.BaseSeed + int64(i),
				MaxSkew:   opt.MaxSkew,
				MaxGap:    opt.MaxGap,
				ExtraSkew: patterns[i%len(patterns)],
				CPUs:      opt.CPUs,
			}
			return Run(ctx, t, cfg, bopt, opt.MaxCycles)
		})
	if err != nil {
		return SweepResult{}, err
	}
	cpus := t.CPUs
	if opt.CPUs > cpus {
		cpus = opt.CPUs
	}
	sr := SweepResult{Test: t.Name, CPUs: cpus, Seeds: opt.Seeds}
	counts := make(map[string]*OutcomeCount)
	order := []string{}
	for i, r := range results {
		key := OutcomeString(r.Outcome)
		oc := counts[key]
		if oc == nil {
			oc = &OutcomeCount{Outcome: key, Allowed: r.Allowed}
			counts[key] = oc
			order = append(order, key)
		}
		oc.Count++
		if !r.Allowed {
			sr.Forbidden = append(sr.Forbidden,
				fmt.Sprintf("seed %d: %s", opt.BaseSeed+int64(i), key))
		}
	}
	for _, w := range t.Witness {
		if counts[OutcomeString(w)] == nil {
			sr.WitnessMissing = append(sr.WitnessMissing, OutcomeString(w))
		}
	}
	// Histogram rows sort by outcome string: stable across worker counts
	// and human-scannable.
	for _, key := range order {
		sr.Outcomes = append(sr.Outcomes, *counts[key])
	}
	sort.Slice(sr.Outcomes, func(i, j int) bool {
		return sr.Outcomes[i].Outcome < sr.Outcomes[j].Outcome
	})
	return sr, nil
}
