// Package mem models the system bus and main memory of the performance
// model with timestamped resources: every shared resource keeps a
// next-free cycle, so a request's service time is computed at issue from
// latency plus queuing delay. This is how the model captures the paper's
// "request queue, bus conflict, bandwidth, and latency" without a global
// event queue.
package mem

import "sparc64v/internal/config"

// Resource is a serially occupied resource (a bus slot, a DRAM bank).
type Resource struct {
	nextFree uint64
	// BusyCycles accumulates total occupancy (utilization reporting).
	BusyCycles uint64
	// WaitCycles accumulates queuing delay experienced by requesters.
	WaitCycles uint64
	// MaxWait and BigWaits record pathological queueing (diagnostics).
	MaxWait, BigWaits uint64
}

// Acquire occupies the resource for busy cycles starting no earlier than
// cycle; it returns the actual start time (>= cycle). When contend is
// false the resource is treated as infinitely wide (no queuing), which
// implements the low-fidelity model versions.
func (r *Resource) Acquire(cycle, busy uint64, contend bool) uint64 {
	if !contend {
		r.BusyCycles += busy
		return cycle
	}
	start := cycle
	if r.nextFree > start {
		w := r.nextFree - start
		r.WaitCycles += w
		if w > r.MaxWait {
			r.MaxWait = w
		}
		if w > 100 {
			r.BigWaits++
		}
		start = r.nextFree
	}
	r.nextFree = start + busy
	r.BusyCycles += busy
	return start
}

// NextFree returns the cycle at which the resource becomes available.
func (r *Resource) NextFree() uint64 { return r.nextFree }

// channelBytes is the width of one data channel; the configured bus
// bandwidth is provided by BusBytesPerCycle/channelBytes parallel channels
// (a crossbar-style data network, which is what enterprise SPARC systems
// of this class shipped).
const channelBytes = 8

// Bus is the system interconnect connecting processor chips and memory: an
// address/snoop network plus a multi-channel data network.
type Bus struct {
	req     []Resource
	data    []Resource
	reqBusy uint64
	contend bool
	// Stats
	Requests  uint64
	DataMoves uint64
}

// NewBus builds the bus from the memory parameters.
func NewBus(p config.MemParams, contend bool) *Bus {
	bpc := p.BusBytesPerCycle
	if bpc <= 0 {
		bpc = 8
	}
	nchan := bpc / channelBytes
	if nchan < 1 {
		nchan = 1
	}
	rb := uint64(p.BusRequestCycles)
	if rb == 0 {
		rb = 1
	}
	nreq := 2
	return &Bus{
		req:     make([]Resource, nreq),
		data:    make([]Resource, nchan),
		reqBusy: rb,
		contend: contend,
	}
}

// pick selects the least-loaded resource of a group.
func pick(rs []Resource) *Resource {
	best := &rs[0]
	for i := 1; i < len(rs); i++ {
		if rs[i].nextFree < best.nextFree {
			best = &rs[i]
		}
	}
	return best
}

// Request arbitrates for the address/snoop network at cycle; the returned
// cycle is when the request has been broadcast.
func (b *Bus) Request(cycle uint64) uint64 {
	b.Requests++
	start := pick(b.req).Acquire(cycle, b.reqBusy, b.contend)
	return start + b.reqBusy
}

// Transfer moves bytes over one data channel starting no earlier than
// cycle; the returned cycle is when the last byte arrives.
func (b *Bus) Transfer(cycle, bytes uint64) uint64 {
	b.DataMoves++
	busy := (bytes + channelBytes - 1) / channelBytes
	if busy == 0 {
		busy = 1
	}
	start := pick(b.data).Acquire(cycle, busy, b.contend)
	return start + busy
}

// Utilization returns (request, data) busy cycles for reporting.
func (b *Bus) Utilization() (reqBusy, dataBusy uint64) {
	for i := range b.req {
		reqBusy += b.req[i].BusyCycles
	}
	for i := range b.data {
		dataBusy += b.data[i].BusyCycles
	}
	return reqBusy, dataBusy
}

// WaitCycles returns total queuing delay on both networks.
func (b *Bus) WaitCycles() uint64 {
	var w uint64
	for i := range b.req {
		w += b.req[i].WaitCycles
	}
	for i := range b.data {
		w += b.data[i].WaitCycles
	}
	return w
}

// DRAM is main memory: interleaved banks with a fixed access latency and a
// per-access bank busy time (cycle time).
type DRAM struct {
	banks    []Resource
	bankMask uint64
	latency  uint64
	bankBusy uint64
	contend  bool
	// Stats
	Accesses uint64
}

// NewDRAM builds memory from the parameters.
func NewDRAM(p config.MemParams, contend bool) *DRAM {
	n := p.DRAMBanks
	if n < 1 {
		n = 1
	}
	for n&(n-1) != 0 {
		n &= n - 1
	}
	lat := uint64(p.DRAMCycles)
	if lat == 0 {
		lat = 200
	}
	busy := uint64(p.DRAMBankBusy)
	if busy == 0 {
		busy = 16
	}
	return &DRAM{
		banks:    make([]Resource, n),
		bankMask: uint64(n - 1),
		latency:  lat,
		bankBusy: busy,
		contend:  contend,
	}
}

// Access reads or writes the line at lineAddr starting no earlier than
// cycle; the returned cycle is when data is available at the memory pins.
func (d *DRAM) Access(cycle, lineAddr uint64) uint64 {
	d.Accesses++
	bank := &d.banks[lineAddr&d.bankMask]
	start := bank.Acquire(cycle, d.bankBusy, d.contend)
	return start + d.latency
}

// Latency returns the configured access latency.
func (d *DRAM) Latency() uint64 { return d.latency }

// WaitCycles returns total bank queuing delay.
func (d *DRAM) WaitCycles() uint64 {
	var w uint64
	for i := range d.banks {
		w += d.banks[i].WaitCycles
	}
	return w
}
