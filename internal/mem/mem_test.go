package mem

import (
	"testing"
	"testing/quick"

	"sparc64v/internal/config"
)

func params() config.MemParams {
	return config.MemParams{
		DRAMCycles: 200, DRAMBanks: 4, DRAMBankBusy: 16,
		BusBytesPerCycle: 8, BusRequestCycles: 2,
	}
}

func TestResourceQueuing(t *testing.T) {
	var r Resource
	if s := r.Acquire(10, 5, true); s != 10 {
		t.Fatalf("first Acquire start = %d", s)
	}
	// Second request at cycle 12 queues until 15.
	if s := r.Acquire(12, 5, true); s != 15 {
		t.Fatalf("queued Acquire start = %d", s)
	}
	if r.NextFree() != 20 {
		t.Fatalf("NextFree = %d", r.NextFree())
	}
	if r.WaitCycles != 3 {
		t.Fatalf("WaitCycles = %d", r.WaitCycles)
	}
	// Idle gap: no queuing.
	if s := r.Acquire(100, 5, true); s != 100 {
		t.Fatalf("idle Acquire start = %d", s)
	}
	// Non-contending mode never queues.
	var nc Resource
	nc.Acquire(0, 100, false)
	if s := nc.Acquire(1, 100, false); s != 1 {
		t.Fatalf("non-contending Acquire start = %d", s)
	}
}

// Property: Acquire start times are monotone in arrival order and never
// before the arrival cycle.
func TestResourceQuick(t *testing.T) {
	f := func(deltas []uint8) bool {
		var r Resource
		cycle, lastStart := uint64(0), uint64(0)
		for _, d := range deltas {
			cycle += uint64(d % 8)
			start := r.Acquire(cycle, 4, true)
			if start < cycle || start < lastStart {
				return false
			}
			lastStart = start
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBusTransferBandwidth(t *testing.T) {
	b := NewBus(params(), true) // 8 B/cycle = one 8-byte channel
	// 64 bytes over one 8-byte channel = 8 cycles.
	if done := b.Transfer(0, 64); done != 8 {
		t.Fatalf("Transfer done = %d", done)
	}
	// Back-to-back transfer queues behind the first (single channel).
	if done := b.Transfer(0, 64); done != 16 {
		t.Fatalf("second Transfer done = %d", done)
	}
	if done := b.Transfer(100, 1); done != 101 {
		t.Fatalf("1-byte Transfer done = %d", done)
	}
	req, data := b.Utilization()
	if req != 0 || data != 17 {
		t.Fatalf("Utilization = %d,%d", req, data)
	}
	// A wider bus is multiple parallel channels: two 64-byte transfers at
	// the same cycle complete together.
	wide := NewBus(config.MemParams{BusBytesPerCycle: 16, BusRequestCycles: 2}, true)
	d1 := wide.Transfer(0, 64)
	d2 := wide.Transfer(0, 64)
	if d1 != 8 || d2 != 8 {
		t.Fatalf("parallel transfers done = %d,%d", d1, d2)
	}
	// The third queues behind one of them.
	if d3 := wide.Transfer(0, 64); d3 != 16 {
		t.Fatalf("third transfer done = %d", d3)
	}
}

func TestBusRequest(t *testing.T) {
	b := NewBus(params(), true)
	if g := b.Request(0); g != 2 {
		t.Fatalf("Request grant = %d", g)
	}
	// The address network has two slots per arbitration window.
	if g := b.Request(0); g != 2 {
		t.Fatalf("second Request grant = %d", g)
	}
	if g := b.Request(0); g != 4 {
		t.Fatalf("queued Request grant = %d", g)
	}
	if b.Requests != 3 {
		t.Fatalf("Requests = %d", b.Requests)
	}
	if b.WaitCycles() == 0 {
		t.Fatal("queued request recorded no wait")
	}
}

func TestDRAMBanking(t *testing.T) {
	d := NewDRAM(params(), true)
	// Two accesses to the same bank at the same cycle serialize by the
	// bank busy time; different banks do not.
	r1 := d.Access(0, 0)
	r2 := d.Access(0, 0) // same bank
	r3 := d.Access(0, 1) // different bank
	if r1 != 200 {
		t.Fatalf("first access ready = %d", r1)
	}
	if r2 != 216 {
		t.Fatalf("same-bank access ready = %d", r2)
	}
	if r3 != 200 {
		t.Fatalf("other-bank access ready = %d", r3)
	}
	if d.Accesses != 3 {
		t.Fatalf("Accesses = %d", d.Accesses)
	}
	if d.Latency() != 200 {
		t.Fatalf("Latency = %d", d.Latency())
	}
	if d.WaitCycles() == 0 {
		t.Fatal("same-bank conflict recorded no wait")
	}
}

func TestDefaultsApplied(t *testing.T) {
	b := NewBus(config.MemParams{}, true)
	if done := b.Transfer(0, 8); done != 1 {
		t.Fatalf("default bandwidth transfer done = %d", done)
	}
	d := NewDRAM(config.MemParams{}, true)
	if r := d.Access(0, 0); r != 200 {
		t.Fatalf("default latency ready = %d", r)
	}
	// Non-power-of-two bank counts round down.
	d2 := NewDRAM(config.MemParams{DRAMBanks: 6, DRAMCycles: 100, DRAMBankBusy: 10}, true)
	if d2.bankMask != 3 {
		t.Fatalf("bankMask = %d", d2.bankMask)
	}
}

// Saturating the bus must produce growing queuing delay — the system-level
// balance effect the paper's detailed memory model exists to expose.
func TestBusSaturation(t *testing.T) {
	b := NewBus(params(), true)
	var lastDone uint64
	for i := 0; i < 100; i++ {
		lastDone = b.Transfer(uint64(i), 64) // 1 line/cycle offered, 1/8 sustainable
	}
	// Offered load is 8x capacity: completion must lag far behind arrival.
	if lastDone < 700 {
		t.Fatalf("no saturation: last done = %d", lastDone)
	}
}
