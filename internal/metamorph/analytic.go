package metamorph

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"sparc64v/internal/analytic"
	"sparc64v/internal/config"
	"sparc64v/internal/core"
	"sparc64v/internal/workload"
)

// analyticCPITol is the accuracy contract of the fast tier: the calibrated
// analytic estimate must land within 10% of the detailed model's CPI at the
// calibration operating point on every registered workload.
const analyticCPITol = 0.10

// checkConserveStallAttribution verifies that the per-cause stall
// attribution is physically possible: the issue stage records at most one
// stall cause per cycle, the fetch stage at most one, and the commit stage
// classifies at most one zero-commit cause per cycle — so each family's sum
// can never exceed the cycle count. An attribution bug (double counting, a
// missed early return) breaks this before it becomes a visibly wrong
// breakdown table.
func checkConserveStallAttribution(ctx context.Context, env *Env) (string, error) {
	var details []string
	for _, p := range env.Profiles {
		m, err := core.NewModel(env.Base)
		if err != nil {
			return "", err
		}
		r, err := m.RunContext(ctx, p, env.opts())
		if err != nil {
			return "", err
		}
		for i := range r.CPUs {
			c := &r.CPUs[i].Core
			issue := c.StallWindow + c.StallRename + c.StallRS + c.StallLQ + c.StallSQ
			fetch := c.FetchStallICache + c.FetchStallBranch
			zero := c.ZeroCommitFrontend + c.ZeroCommitMemory + c.ZeroCommitExecute +
				c.ZeroCommitRS + c.ZeroCommitSpec
			for _, fam := range []struct {
				name string
				sum  uint64
			}{{"issue-stall", issue}, {"fetch-stall", fetch}, {"zero-commit", zero}} {
				if fam.sum > c.Cycles {
					return "", violationf("%s: cpu%d %s sum %d > %d cycles",
						p.Name, i, fam.name, fam.sum, c.Cycles)
				}
			}
			details = append(details, fmt.Sprintf("%s: issue=%.0f%% fetch=%.0f%% zero=%.0f%% of cycles",
				p.Name, 100*float64(issue)/float64(c.Cycles),
				100*float64(fetch)/float64(c.Cycles),
				100*float64(zero)/float64(c.Cycles)))
		}
	}
	return strings.Join(details, "; "), nil
}

// analyticMeasuredCPI runs the detailed model at the calibration artifact's
// operating point (its trace length and seed, not the harness's) so the
// comparison prices the estimator, not a trace-length mismatch.
func analyticMeasuredCPI(ctx context.Context, env *Env, cal *analytic.Calibration,
	cfg config.Config, p workload.Profile) (float64, error) {
	m, err := core.NewModel(cfg)
	if err != nil {
		return 0, err
	}
	opt := env.opts()
	opt.Insts, opt.Seed = cal.Insts, cal.Seed
	r, err := m.RunContext(ctx, p, opt)
	if err != nil {
		return 0, err
	}
	ipc := r.IPC()
	if ipc <= 0 {
		return 0, fmt.Errorf("%s/%s: detailed run has no IPC", cfg.Name, p.Name)
	}
	return 1 / ipc, nil
}

// checkAnalyticResidual is the fast tier's accuracy gate: the embedded
// calibration artifact must match the current model version, its estimate
// must land within analyticCPITol of a fresh detailed run on every
// calibrated workload (this also catches timing changes shipped without a
// ModelVersion bump — the detailed CPI drifts away from the fitted one),
// and an L1 capacity ladder must move the estimate in the same direction as
// the detailed model.
func checkAnalyticResidual(ctx context.Context, env *Env) (string, error) {
	cal, err := analytic.Default()
	if err != nil {
		return "", err
	}
	if cal.ModelVersion != core.ModelVersion {
		return "", violationf("calibration artifact fitted against %q but model is %q — regenerate with cmd/calibrate",
			cal.ModelVersion, core.ModelVersion)
	}
	var details []string
	var first *workload.Profile
	var firstMeasured, firstEstimated float64
	for i := range env.Profiles {
		p := env.Profiles[i]
		est, err := cal.Estimate(env.Base, p.Name)
		if errors.Is(err, analytic.ErrUncalibrated) {
			details = append(details, p.Name+": uncalibrated (skipped)")
			continue
		}
		if err != nil {
			return "", err
		}
		measured, err := analyticMeasuredCPI(ctx, env, cal, env.Base, p)
		if err != nil {
			return "", err
		}
		rel := math.Abs(est.CPI-measured) / measured
		if rel > analyticCPITol {
			return "", violationf("%s: analytic CPI %.4f vs detailed %.4f: %.1f%% error exceeds %.0f%%",
				p.Name, est.CPI, measured, 100*rel, 100*analyticCPITol)
		}
		if first == nil {
			first, firstMeasured, firstEstimated = &env.Profiles[i], measured, est.CPI
		}
		details = append(details, fmt.Sprintf("%s: %.4f~%.4f (%.1f%%)",
			p.Name, est.CPI, measured, 100*rel))
	}
	if first == nil {
		return "", fmt.Errorf("no calibrated workload in the harness profile set")
	}
	// Trend agreement on the first calibrated profile: shrinking the L1s
	// at constant hit latency must raise both models' CPI (or move the
	// detailed model too little to carry a sign).
	for _, cfg := range []config.Config{
		env.Base.WithL1Capacity(64<<10, 2),
		env.Base.WithL1Capacity(32<<10, 1),
	} {
		est, err := cal.Estimate(cfg, first.Name)
		if err != nil {
			return "", err
		}
		measured, err := analyticMeasuredCPI(ctx, env, cal, cfg, *first)
		if err != nil {
			return "", err
		}
		fullDelta := (measured - firstMeasured) / firstMeasured
		estDelta := est.CPI - firstEstimated
		switch {
		case math.Abs(fullDelta) < trendDeadBand:
			details = append(details, fmt.Sprintf("trend %s: flat (detailed delta %+.1f%% inside dead band)",
				cfg.Name, 100*fullDelta))
		case fullDelta*estDelta <= 0:
			return "", violationf("%s: %s moves detailed CPI by %+.1f%% but the estimate by %+.4f: trend sign disagrees",
				first.Name, cfg.Name, 100*fullDelta, estDelta)
		default:
			details = append(details, fmt.Sprintf("trend %s: %+.4f~%+.1f%%", cfg.Name, estDelta, 100*fullDelta))
		}
	}
	return strings.Join(details, "; "), nil
}
