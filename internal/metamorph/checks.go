package metamorph

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"sparc64v/internal/cache"
	"sparc64v/internal/config"
	"sparc64v/internal/core"
	"sparc64v/internal/cpu"
	"sparc64v/internal/isa"
	"sparc64v/internal/runcache"
	"sparc64v/internal/system"
	"sparc64v/internal/trace"
	"sparc64v/internal/verif"
	"sparc64v/internal/workload"
)

// Tolerances. Monotonicity holds architecturally, but the compared runs
// differ in timing, and timing feeds back into the counters (speculative
// retries, prefetch triggers, bank-conflict replays), so rates can wiggle
// by a fraction of a percent without the model being wrong. The slack is
// far below any real bug's signature — the injected index-bit fault moves
// miss rates by whole percents.
const (
	// rateTol is the absolute slack on miss/failure-rate comparisons.
	rateTol = 0.003
	// ipcRelTol is the relative slack on IPC comparisons.
	ipcRelTol = 0.02
	// cycRelTol is the relative slack on cycle-count comparisons.
	cycRelTol = 0.01
	// sampledCPITol is the relative slack between a sampled run's CPI
	// estimate and the full run's CPI (the ISSUE's ε): systematic sampling
	// with functional warming should land well inside 5% on the stock
	// schedules.
	sampledCPITol = 0.05
	// trendDeadBand is the minimum relative CPI delta a config change must
	// produce in the full model before the sampled run's trend direction is
	// checked — below it the sign carries no signal and sampling noise could
	// legitimately flip it.
	trendDeadBand = 0.02
)

// Catalog returns the invariant catalog in display order.
func Catalog() []Check {
	return []Check{
		{
			Name: "mono-l1-size", Kind: "monotonicity",
			Detail: "128KB-2w L1s must not miss more than 32KB-1w L1s",
			Run:    checkMonoL1Size,
		},
		{
			Name: "mono-l2-ways", Kind: "monotonicity",
			Detail: "2MB-4w L2 must not miss more than 1MB-2w (same sets, LRU nesting)",
			Run:    checkMonoL2Ways,
		},
		{
			Name: "mono-bht", Kind: "monotonicity",
			Detail: "16K-4w BHT must not mispredict more than 4K-2w",
			Run:    checkMonoBHT,
		},
		{
			Name: "mono-issue-width", Kind: "monotonicity",
			Detail: "4-wide issue must not lower IPC below 2-wide",
			Run:    checkMonoIssueWidth,
		},
		{
			Name: "mono-perfect-ladder", Kind: "monotonicity",
			Detail: "each perfect-ization rung (Figure 7) must not add cycles",
			Run:    checkMonoPerfectLadder,
		},
		{
			Name: "conserve-counts", Kind: "conservation",
			Detail: "zero-warmup commit counts equal trace composition per class",
			Run:    checkConserveCounts,
		},
		{
			Name: "conserve-truncated", Kind: "conservation",
			Detail: "counters stay consistent when the run hits the cycle cap",
			Run:    checkConserveTruncated,
		},
		{
			Name: "conserve-mp", Kind: "conservation", FullOnly: true,
			Detail: "per-CPU counters balance on a 4P TPC-C run",
			Run:    checkConserveMP,
		},
		{
			Name: "diff-commit-stream", Kind: "differential",
			Detail: "OoO commit stream equals the trace and the reverse-tracer replay",
			Run:    checkDiffCommitStream,
		},
		{
			Name: "diff-cache-shadow", Kind: "differential",
			Detail: "LRU cache agrees access-by-access with an independent shadow model",
			Run:    checkDiffCacheShadow,
		},
		{
			Name: "diff-replay", Kind: "differential",
			Detail: "cache-served run reports are byte-identical to the cold run",
			Run:    checkDiffReplay,
		},
		{
			Name: "diff-batch-replay", Kind: "differential",
			Detail: "lockstep-batched run reports are byte-identical to serial runs",
			Run:    checkDiffBatchReplay,
		},
		{
			Name: "diff-reference-trend", Kind: "differential",
			Detail: "design-change direction agrees with the in-order reference model",
			Run:    checkDiffReferenceTrend,
		},
		{
			Name: "sampled-cpi", Kind: "differential",
			Detail: "sampled-mode CPI within 5% of the full run; config trends keep their sign",
			Run:    checkSampledCPI,
		},
		{
			Name: "conserve-stall-attribution", Kind: "conservation",
			Detail: "per-cause issue/fetch/zero-commit stall sums never exceed total cycles",
			Run:    checkConserveStallAttribution,
		},
		{
			Name: "analytic-residual", Kind: "differential",
			Detail: "analytic CPI within 10% of the detailed model; L1 ladder trends keep their sign",
			Run:    checkAnalyticResidual,
		},
		{
			Name: "tso-outcomes", Kind: "conformance",
			Detail: "litmus sweeps: no TSO-forbidden outcome, store-buffer witness observed",
			Run:    checkTSOOutcomes,
		},
	}
}

// ---- monotonicity ----

// pairCheck runs base and variant on every profile and applies assert to
// each metric pair.
func pairCheck(ctx context.Context, env *Env, variant config.Config,
	assert func(p workload.Profile, big, small reportIPC) error,
	describe func(big, small reportIPC) string) (string, error) {
	var details []string
	for _, p := range env.Profiles {
		big, err := env.run(ctx, env.Base, p)
		if err != nil {
			return "", err
		}
		small, err := env.run(ctx, variant, p)
		if err != nil {
			return "", err
		}
		if err := assert(p, big, small); err != nil {
			return "", err
		}
		details = append(details, fmt.Sprintf("%s: %s", p.Name, describe(big, small)))
	}
	return strings.Join(details, "; "), nil
}

func checkMonoL1Size(ctx context.Context, env *Env) (string, error) {
	return pairCheck(ctx, env, env.Base.WithSmallL1(),
		func(p workload.Profile, big, small reportIPC) error {
			if big.L1I > small.L1I+rateTol {
				return violationf("%s: L1I miss rate %.4f (128KB-2w) > %.4f (32KB-1w): larger cache misses more",
					p.Name, big.L1I, small.L1I)
			}
			if big.L1D > small.L1D+rateTol {
				return violationf("%s: L1D miss rate %.4f (128KB-2w) > %.4f (32KB-1w): larger cache misses more",
					p.Name, big.L1D, small.L1D)
			}
			return nil
		},
		func(big, small reportIPC) string {
			return fmt.Sprintf("l1d %.4f<=%.4f l1i %.4f<=%.4f",
				big.L1D, small.L1D, big.L1I, small.L1I)
		})
}

func checkMonoL2Ways(ctx context.Context, env *Env) (string, error) {
	// Prefetching is disabled on both sides: the prefetcher reacts to the
	// miss stream, so it would couple the two runs' access streams and blur
	// the pure capacity/associativity comparison. 2MB-4w and 1MB-2w have
	// the same 8192 sets, so LRU stack inclusion nests the miss sets.
	base := env.Base.WithoutPrefetch()
	small := base
	small.Mem.L2.SizeBytes = 1 << 20
	small.Mem.L2.Ways = 2
	small.Name += ".l2-1m-2w"
	var details []string
	for _, p := range env.Profiles {
		big, err := env.run(ctx, base, p)
		if err != nil {
			return "", err
		}
		sm, err := env.run(ctx, small, p)
		if err != nil {
			return "", err
		}
		if big.L2 > sm.L2+rateTol {
			return "", violationf("%s: L2 demand miss rate %.4f (2MB-4w) > %.4f (1MB-2w): larger cache misses more",
				p.Name, big.L2, sm.L2)
		}
		details = append(details, fmt.Sprintf("%s: l2 %.4f<=%.4f", p.Name, big.L2, sm.L2))
	}
	return strings.Join(details, "; "), nil
}

func checkMonoBHT(ctx context.Context, env *Env) (string, error) {
	return pairCheck(ctx, env, env.Base.WithSmallBHT(),
		func(p workload.Profile, big, small reportIPC) error {
			if big.BranchFail > small.BranchFail+rateTol {
				return violationf("%s: branch failure rate %.4f (16K-4w) > %.4f (4K-2w): larger BHT fails more",
					p.Name, big.BranchFail, small.BranchFail)
			}
			return nil
		},
		func(big, small reportIPC) string {
			return fmt.Sprintf("bpfail %.4f<=%.4f", big.BranchFail, small.BranchFail)
		})
}

func checkMonoIssueWidth(ctx context.Context, env *Env) (string, error) {
	return pairCheck(ctx, env, env.Base.WithIssueWidth(2),
		func(p workload.Profile, wide, narrow reportIPC) error {
			if wide.IPC < narrow.IPC*(1-ipcRelTol) {
				return violationf("%s: IPC %.3f (issue 4) < %.3f (issue 2): wider issue got slower",
					p.Name, wide.IPC, narrow.IPC)
			}
			return nil
		},
		func(wide, narrow reportIPC) string {
			return fmt.Sprintf("ipc %.3f>=%.3f", wide.IPC, narrow.IPC)
		})
}

func checkMonoPerfectLadder(ctx context.Context, env *Env) (string, error) {
	m, err := core.NewModel(env.Base)
	if err != nil {
		return "", err
	}
	rungs := []string{"base", "perfect-L2", "perfect-L1+TLB", "perfect-branch"}
	var details []string
	for _, p := range env.Profiles {
		bd, err := m.BreakdownContext(ctx, p, env.opts())
		if err != nil {
			return "", err
		}
		cycles := []uint64{
			bd.Base.MeasuredCycles(), bd.PerfectL2.MeasuredCycles(),
			bd.PerfectL1.MeasuredCycles(), bd.PerfectAll.MeasuredCycles(),
		}
		for i := 1; i < len(cycles); i++ {
			limit := float64(cycles[i-1]) * (1 + cycRelTol)
			if float64(cycles[i]) > limit {
				return "", violationf("%s: %s took %d cycles, more than %s's %d: removing stalls added time",
					p.Name, rungs[i], cycles[i], rungs[i-1], cycles[i-1])
			}
		}
		details = append(details, fmt.Sprintf("%s: %d>=%d>=%d>=%d cycles",
			p.Name, cycles[0], cycles[1], cycles[2], cycles[3]))
	}
	return strings.Join(details, "; "), nil
}

// ---- conservation ----

// collectTrace materializes the profile's per-CPU traces.
func collectTrace(p workload.Profile, seed int64, cpuIdx, insts int) []trace.Record {
	return trace.Collect(trace.NewLimitSource(workload.New(p, seed, cpuIdx), insts), insts)
}

// conserveReport applies the counter-balance invariants every run must
// satisfy, truncated or not.
func conserveReport(label string, r *system.Report) error {
	var sum uint64
	for i := range r.CPUs {
		c := &r.CPUs[i]
		if c.Core.Fetched < c.Core.Committed {
			return violationf("%s: cpu%d fetched %d < committed %d",
				label, i, c.Core.Fetched, c.Core.Committed)
		}
		var byClass uint64
		for _, n := range c.Core.CommittedByClass {
			byClass += n
		}
		if byClass != c.Core.Committed {
			return violationf("%s: cpu%d per-class commit sum %d != committed %d",
				label, i, byClass, c.Core.Committed)
		}
		for _, cs := range []struct {
			name string
			st   *cache.Stats
		}{{"L1I", &c.L1I}, {"L1D", &c.L1D}, {"L2", &c.L2}} {
			if cs.st.DemandMisses > cs.st.DemandAccesses {
				return violationf("%s: cpu%d %s demand misses %d > accesses %d",
					label, i, cs.name, cs.st.DemandMisses, cs.st.DemandAccesses)
			}
			if cs.st.PrefetchMisses > cs.st.PrefetchAccesses {
				return violationf("%s: cpu%d %s prefetch misses %d > accesses %d",
					label, i, cs.name, cs.st.PrefetchMisses, cs.st.PrefetchAccesses)
			}
		}
		sum += c.Core.Committed
	}
	if sum != r.Committed {
		return violationf("%s: per-CPU commit sum %d != report total %d", label, sum, r.Committed)
	}
	return nil
}

func checkConserveCounts(ctx context.Context, env *Env) (string, error) {
	var details []string
	for _, p := range env.Profiles {
		recs := collectTrace(p, env.Seed, 0, env.Insts)
		var want [isa.NumClasses]uint64
		for i := range recs {
			want[recs[i].Op]++
		}
		// Zero warmup so nothing is excluded from the counters; driven
		// through system.New directly because core treats Warmup 0 as
		// "default to Insts/5".
		cfg := env.Base
		cfg.CPUs = 1
		cfg.WarmupInsts = 0
		sys, err := system.New(cfg, []trace.Source{trace.NewSliceSource(recs)})
		if err != nil {
			return "", err
		}
		if _, capped, err := sys.RunContext(ctx, 0); err != nil {
			return "", err
		} else if capped {
			return "", fmt.Errorf("%s: run hit the cycle cap", p.Name)
		}
		r := sys.Report(p.Name)
		if r.Committed != uint64(len(recs)) {
			return "", violationf("%s: committed %d != trace length %d",
				p.Name, r.Committed, len(recs))
		}
		if got := r.CPUs[0].Core.CommittedByClass; got != want {
			return "", violationf("%s: per-class commits %v != trace composition %v",
				p.Name, got, want)
		}
		if err := conserveReport(p.Name, &r); err != nil {
			return "", err
		}
		details = append(details, fmt.Sprintf("%s: %d commits balanced", p.Name, r.Committed))
	}
	return strings.Join(details, "; "), nil
}

func checkConserveTruncated(ctx context.Context, env *Env) (string, error) {
	p := env.Profiles[0]
	recs := collectTrace(p, env.Seed, 0, env.Insts)
	cfg := env.Base
	cfg.CPUs = 1
	cfg.WarmupInsts = uint64(env.Insts / 10)
	sys, err := system.New(cfg, []trace.Source{trace.NewSliceSource(recs)})
	if err != nil {
		return "", err
	}
	// A cap of Insts/8 cycles cannot retire the whole trace (IPC would have
	// to exceed 8 on a 4-wide machine), so the run always truncates and the
	// invariants are exercised on a mid-flight snapshot.
	cap := uint64(env.Insts / 8)
	if _, capped, err := sys.RunContext(ctx, cap); err != nil {
		return "", err
	} else if !capped {
		return "", fmt.Errorf("%s: %d-cycle cap did not truncate the run", p.Name, cap)
	}
	r := sys.Report(p.Name)
	if r.Committed >= uint64(len(recs)) {
		return "", fmt.Errorf("%s: truncated run committed the whole trace", p.Name)
	}
	if err := conserveReport(p.Name+"(truncated)", &r); err != nil {
		return "", err
	}
	return fmt.Sprintf("%s: balanced at %d/%d commits after %d-cycle cap",
		p.Name, r.Committed, len(recs), cap), nil
}

func checkConserveMP(ctx context.Context, env *Env) (string, error) {
	cfg := env.Base.WithCPUs(4)
	m, err := core.NewModel(cfg)
	if err != nil {
		return "", err
	}
	opt := env.opts()
	opt.Insts = env.Insts / 2 // 4 CPUs: keep total simulated work bounded
	r, err := m.RunContext(ctx, workload.TPCC16P(), opt)
	if err != nil {
		return "", err
	}
	if err := conserveReport("TPC-C(4P)", &r); err != nil {
		return "", err
	}
	return fmt.Sprintf("4 CPUs, %d commits balanced", r.Committed), nil
}

// ---- differential ----

func checkDiffCommitStream(ctx context.Context, env *Env) (string, error) {
	p := env.Profiles[0]
	recs := collectTrace(p, env.Seed, 0, env.Insts)

	// The reverse tracer must reconstruct the trace exactly: its replay is
	// the independent re-derivation of the instruction stream.
	prog, err := verif.FromTrace(trace.NewSliceSource(recs))
	if err != nil {
		return "", err
	}
	replayed := trace.Collect(prog.Replay(), len(recs)+1)
	if len(replayed) != len(recs) {
		return "", violationf("%s: replay length %d != trace length %d",
			p.Name, len(replayed), len(recs))
	}
	for i := range recs {
		if replayed[i] != recs[i] {
			return "", violationf("%s: replay diverges at instruction %d: %+v != %+v",
				p.Name, i, replayed[i], recs[i])
		}
	}

	// The OoO core must commit exactly the trace, in order, with the
	// trace's side effects (PC, class, effective address) — out-of-order
	// execution with in-order retirement is architecturally invisible.
	cfg := env.Base
	cfg.CPUs = 1
	cfg.WarmupInsts = 0
	sys, err := system.New(cfg, []trace.Source{trace.NewSliceSource(recs)})
	if err != nil {
		return "", err
	}
	type effect struct {
		pc, ea uint64
		op     isa.Class
	}
	var commits []effect
	sys.CPU(0).SetPipeTracer(func(e *cpu.PipeEvent) {
		commits = append(commits, effect{pc: e.PC, ea: e.EA, op: e.Op})
	})
	if _, capped, err := sys.RunContext(ctx, 0); err != nil {
		return "", err
	} else if capped {
		return "", fmt.Errorf("%s: run hit the cycle cap", p.Name)
	}
	if len(commits) != len(recs) {
		return "", violationf("%s: committed %d instructions, trace has %d",
			p.Name, len(commits), len(recs))
	}
	for i := range recs {
		want := effect{pc: recs[i].PC, ea: recs[i].EA, op: recs[i].Op}
		if commits[i] != want {
			return "", violationf("%s: commit stream diverges at instruction %d: got pc=%#x op=%v ea=%#x, trace has pc=%#x op=%v ea=%#x",
				p.Name, i, commits[i].pc, commits[i].op, commits[i].ea,
				want.pc, want.op, want.ea)
		}
	}
	return fmt.Sprintf("%s: %d commits match trace and replay", p.Name, len(recs)), nil
}

func checkDiffCacheShadow(ctx context.Context, env *Env) (string, error) {
	p := env.Profiles[0]
	recs := collectTrace(p, env.Seed, 0, env.Insts)
	var details []string
	// The base L1D geometry plus a small direct-mapped one: the latter
	// evicts constantly, stressing replacement where the big cache would
	// mostly just fill.
	geos := []struct {
		name string
		geo  config.CacheGeometry
	}{
		{"L1D-128k-2w", env.Base.L1D},
		{"L1D-32k-1w", env.Base.WithSmallL1().L1D},
		{"L1I-128k-2w", env.Base.L1I},
	}
	for _, g := range geos {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		real := cache.New(g.geo)
		shadow := newShadow(g.geo)
		instr := strings.HasPrefix(g.name, "L1I")
		n, hits := 0, 0
		for i := range recs {
			addr := recs[i].EA
			if instr {
				addr = recs[i].PC
			} else if recs[i].Op != isa.Load && recs[i].Op != isa.Store {
				continue
			}
			realHit := real.Access(addr) != nil
			if !realHit {
				real.Fill(addr, cache.Exclusive, false)
			}
			shadowHit := shadow.access(addr)
			if realHit != shadowHit {
				return "", violationf("%s: access %d (addr %#x) disagrees: cache says hit=%v, shadow model says hit=%v",
					g.name, n, addr, realHit, shadowHit)
			}
			n++
			if realHit {
				hits++
			}
		}
		if err := real.CheckInvariants(); err != nil {
			return "", violationf("%s: %v", g.name, err)
		}
		details = append(details, fmt.Sprintf("%s: %d/%d hits agree", g.name, hits, n))
	}
	return strings.Join(details, "; "), nil
}

func checkDiffReplay(ctx context.Context, env *Env) (string, error) {
	p := env.Profiles[0]
	dir, err := os.MkdirTemp("", "metamorph-runcache-*")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(dir)
	m, err := core.NewModel(env.Base)
	if err != nil {
		return "", err
	}
	rc, err := runcache.New(runcache.Options{Dir: dir})
	if err != nil {
		return "", err
	}
	opt := env.opts()
	opt.Cache = rc
	cold, err := m.RunContext(ctx, p, opt)
	if err != nil {
		return "", err
	}
	memHit, err := m.RunContext(ctx, p, opt)
	if err != nil {
		return "", err
	}
	if s := rc.Stats(); s.Misses != 1 || s.MemoryHits != 1 {
		return "", fmt.Errorf("cache outcomes off: %+v (want 1 miss then 1 memory hit)", s)
	}
	// A second cache over the same directory has an empty memory tier, so
	// the third run must come off disk.
	rc2, err := runcache.New(runcache.Options{Dir: dir})
	if err != nil {
		return "", err
	}
	opt.Cache = rc2
	diskHit, err := m.RunContext(ctx, p, opt)
	if err != nil {
		return "", err
	}
	if s := rc2.Stats(); s.DiskHits != 1 {
		return "", fmt.Errorf("cache outcomes off: %+v (want 1 disk hit)", s)
	}
	want, err := json.Marshal(cold)
	if err != nil {
		return "", err
	}
	for _, tier := range []struct {
		name string
		rep  system.Report
	}{{"memory", memHit}, {"disk", diskHit}} {
		got, err := json.Marshal(tier.rep)
		if err != nil {
			return "", err
		}
		if !bytes.Equal(got, want) {
			return "", violationf("%s: %s-tier replay differs from the cold run", p.Name, tier.name)
		}
	}
	return fmt.Sprintf("%s: memory and disk replays byte-identical (%d bytes)",
		p.Name, len(want)), nil
}

// checkDiffBatchReplay is the lockstep-batching differential: core.RunBatch
// advances several configurations against one shared decoded trace stream,
// and every member's report must be byte-identical to the report its own
// serial RunContext produces — in full mode and in sampled mode, where the
// fast-forward/measure schedule also rides the shared rings. Any divergence
// means per-member state leaked across the batch or the shared frontend
// reordered the stream.
func checkDiffBatchReplay(ctx context.Context, env *Env) (string, error) {
	p := env.Profiles[0]
	cfgs := []config.Config{
		env.Base,
		env.Base.WithIssueWidth(2),
		env.Base.WithSmallBHT(),
		env.Base.WithoutPrefetch(),
	}
	// The sampled schedule scales with the trace so the check is valid at
	// both quick and full trace lengths: warmup+measure stays well under
	// the interval, which Sampling.Validate requires.
	interval := env.Insts / 4
	modes := []struct {
		name   string
		sample config.Sampling
	}{
		{"full", config.Sampling{}},
		{"sampled", config.Sampling{IntervalInsts: interval, WarmupInsts: interval / 8, MeasureInsts: interval / 4}},
	}
	var details []string
	for _, mode := range modes {
		opt := env.opts()
		opt.Sample = mode.sample
		batched, errs := core.RunBatch(ctx, cfgs, p, opt)
		var bytesTotal int
		for i, cfg := range cfgs {
			if errs[i] != nil {
				return "", errs[i]
			}
			m, err := core.NewModel(cfg)
			if err != nil {
				return "", err
			}
			serial, err := m.RunContext(ctx, p, opt)
			if err != nil {
				return "", err
			}
			want, err := json.Marshal(serial)
			if err != nil {
				return "", err
			}
			got, err := json.Marshal(batched[i])
			if err != nil {
				return "", err
			}
			if !bytes.Equal(got, want) {
				return "", violationf("%s/%s member %d (%s): batched report differs from serial run",
					p.Name, mode.name, i, cfg.Name)
			}
			bytesTotal += len(want)
		}
		details = append(details, fmt.Sprintf("%s: %d members byte-identical (%d bytes)",
			mode.name, len(cfgs), bytesTotal))
	}
	return strings.Join(details, "; "), nil
}

// sampledCheckSetup returns the trace length and schedule the sampled-cpi
// check compares on. The estimator's confidence bound scales with
// 1/sqrt(windows), so the check needs ~30 measurement windows to hold a 5%
// tolerance — the harness's quick-mode trace (50k) yields only a handful on
// any valid schedule. The check therefore runs its own, longer trace.
func sampledCheckSetup(envInsts int) (int, config.Sampling) {
	insts := envInsts
	if insts < 400_000 {
		insts = 400_000
	}
	interval := insts / 30
	measure := interval / 4
	if measure < 1_000 {
		measure = 1_000
	}
	return insts, config.Sampling{IntervalInsts: interval, WarmupInsts: 2_000, MeasureInsts: measure}
}

// fullAndSampledCPI runs profile p on cfg both ways and returns (full CPI,
// sampled CPI).
func fullAndSampledCPI(ctx context.Context, env *Env, cfg config.Config, p workload.Profile) (float64, float64, error) {
	m, err := core.NewModel(cfg)
	if err != nil {
		return 0, 0, err
	}
	opt := env.opts()
	opt.Insts, opt.Sample = sampledCheckSetup(env.Insts)
	full, err := m.RunContext(ctx, p, core.RunOptions{Insts: opt.Insts, Seed: opt.Seed, Obs: opt.Obs})
	if err != nil {
		return 0, 0, err
	}
	samp, err := m.RunContext(ctx, p, opt)
	if err != nil {
		return 0, 0, err
	}
	if samp.Sampling == nil || samp.Sampling.Windows == 0 {
		return 0, 0, fmt.Errorf("%s: sampled run reported no measurement windows", p.Name)
	}
	return 1 / full.IPC(), 1 / samp.IPC(), nil
}

// checkSampledCPI is the sampled-simulation differential: the fast-forward +
// detailed-window estimator (internal/core/sample.go) is an independent
// measurement path over the same model, so its CPI must agree with the full
// run within sampledCPITol on every workload — and a design change that
// moves the full model's CPI beyond the dead band must move the sampled
// estimate in the same direction, mirroring the paper's requirement that
// performance trends, not just absolute numbers, agree across models.
func checkSampledCPI(ctx context.Context, env *Env) (string, error) {
	var details []string
	fullBase := make([]float64, len(env.Profiles))
	sampBase := make([]float64, len(env.Profiles))
	for i, p := range env.Profiles {
		full, samp, err := fullAndSampledCPI(ctx, env, env.Base, p)
		if err != nil {
			return "", err
		}
		fullBase[i], sampBase[i] = full, samp
		relErr := (samp - full) / full
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > sampledCPITol {
			return "", violationf("%s: sampled CPI %.4f vs full %.4f: %.1f%% error exceeds %.0f%%",
				p.Name, samp, full, 100*relErr, 100*sampledCPITol)
		}
		details = append(details, fmt.Sprintf("%s: %.4f~%.4f", p.Name, samp, full))
	}
	// Trend agreement on the first profile: shrinking the L1s must slow the
	// sampled estimate whenever it slows the full model beyond the dead band.
	p := env.Profiles[0]
	fullVar, sampVar, err := fullAndSampledCPI(ctx, env, env.Base.WithSmallL1(), p)
	if err != nil {
		return "", err
	}
	fullDelta := fullVar - fullBase[0]
	sampDelta := sampVar - sampBase[0]
	switch {
	case fullDelta/fullBase[0] < trendDeadBand && fullDelta/fullBase[0] > -trendDeadBand:
		details = append(details, fmt.Sprintf("trend: flat (full delta %+.4f inside dead band)", fullDelta))
	case fullDelta*sampDelta <= 0:
		return "", violationf("%s: L1 shrink moves full CPI by %+.4f but sampled CPI by %+.4f: trend sign disagrees",
			p.Name, fullDelta, sampDelta)
	default:
		details = append(details, fmt.Sprintf("trend: %+.4f~%+.4f", sampDelta, fullDelta))
	}
	return strings.Join(details, "; "), nil
}

func checkDiffReferenceTrend(ctx context.Context, env *Env) (string, error) {
	// The L1 shrink keeps the base hit latencies (unlike WithSmallL1, whose
	// faster-but-smaller trade-off the in-order reference and the OoO model
	// legitimately weigh differently): a pure capacity loss must slow both
	// models, or at least never speed one up while slowing the other.
	smallL1 := env.Base.WithL1Capacity(32<<10, 1)
	changes := []struct {
		name    string
		variant config.Config
	}{
		{"issue width 4->2", env.Base.WithIssueWidth(2)},
		{"L1 shrink (iso-latency)", smallL1},
	}
	profiles := env.Profiles
	if len(profiles) > 2 {
		profiles = profiles[:2] // 4 simulations per (change, profile): bound it
	}
	var details []string
	for _, ch := range changes {
		for _, p := range profiles {
			tc, err := verif.RunTrendCheckContext(ctx, ch.name, env.Base, ch.variant, p, env.opts())
			if err != nil {
				return "", err
			}
			if !tc.Agree() {
				return "", violationf("%s on %s: model delta %+.4f, reference delta %+.4f: models disagree on the direction",
					ch.name, p.Name, tc.ModelDelta, tc.ReferenceDelta)
			}
			details = append(details, fmt.Sprintf("%s/%s: %+.3f~%+.3f",
				ch.name, p.Name, tc.ModelDelta, tc.ReferenceDelta))
		}
	}
	return strings.Join(details, "; "), nil
}
