// Package metamorph is the metamorphic + differential verification harness:
// it treats the timing simulator as the system under test and checks
// cross-run invariants instead of golden numbers.
//
// The paper validated its performance model by cross-checking it,
// instruction by instruction, against an independent logic simulator and
// by confirming that design-change trends agreed between models. Without
// RTL we reproduce the *shape* of that methodology with four check
// families over the model itself:
//
//   - monotonicity: a strictly better machine must not perform worse —
//     larger or more associative caches cannot miss more, a wider issue
//     width cannot lower IPC, and each perfect-ization rung of the
//     Figure 7 ladder cannot add cycles;
//   - conservation: counters must balance — committed instructions equal
//     the trace composition (per class) on a zero-warmup run, fetch ≥
//     commit on every run including truncated and cancelled ones, and
//     every cache reports at least as many accesses as misses;
//   - differential: independent implementations must agree exactly — the
//     OoO commit stream against the trace and the reverse-tracer replay,
//     the LRU cache against a structurally different shadow model, a
//     cache-served run against the cold simulation that produced it, and
//     design-change trends against the in-order reference model;
//   - conformance: the SMP model must obey the SPARC TSO memory model —
//     litmus-test sweeps (internal/litmus) may never observe a forbidden
//     outcome and must witness the store-buffer relaxation.
//
// Checks run through the public model API (internal/core and
// internal/system) and fan out on the scheduler; cmd/verify is the CLI
// gate and `make verify` / CI wire it into the build.
package metamorph

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"sparc64v/internal/cache"
	"sparc64v/internal/coherence"
	"sparc64v/internal/config"
	"sparc64v/internal/core"
	"sparc64v/internal/obs"
	"sparc64v/internal/sched"
	"sparc64v/internal/workload"
)

// Violation is an invariant failure: the harness ran fine and the model
// broke a promise. Anything else a check returns is an infrastructure
// error, reported separately so a broken harness is never mistaken for a
// verified model.
type Violation struct {
	Msg string
}

// Error implements error.
func (v *Violation) Error() string { return v.Msg }

// violationf builds a Violation.
func violationf(format string, args ...any) error {
	return &Violation{Msg: fmt.Sprintf(format, args...)}
}

// Check statuses.
const (
	StatusPass  = "pass"
	StatusFail  = "fail"
	StatusError = "error"
)

// Check is one catalog entry.
type Check struct {
	// Name is the stable identifier ("mono-l1-size", "diff-cache-shadow").
	Name string
	// Kind is the family: "monotonicity", "conservation" or "differential".
	Kind string
	// Detail is a one-line description of the invariant.
	Detail string
	// FullOnly excludes the check from -quick mode (expensive MP runs).
	FullOnly bool
	// Run evaluates the invariant. A *Violation return means the model
	// failed the check; any other error means the harness could not run it.
	// The returned string summarizes the measured quantities (shown on pass
	// and fail alike).
	Run func(ctx context.Context, env *Env) (string, error)
}

// Env is the shared context checks run in.
type Env struct {
	// Base is the machine under verification (config.Base() in cmd/verify).
	Base config.Config
	// Profiles are the workloads each workload-driven check iterates.
	Profiles []workload.Profile
	// Insts is the per-run trace length; Seed selects the trace windows.
	Insts int
	Seed  int64
	// Workers bounds the inner fan-out of checks that run several
	// simulations (Breakdown, TrendCheck). The harness already parallelizes
	// across checks, so 1 is the right default.
	Workers int
	// Full mirrors Options.Full so checks can scale their own depth (the
	// TSO sweep doubles its seed count in full mode).
	Full bool
	// Obs collects per-run profile spans for every simulation the checks
	// execute; nil disables profiling.
	Obs *obs.Collector
}

// opts returns the RunOptions shared by simulation-driven checks.
func (e *Env) opts() core.RunOptions {
	return core.RunOptions{Insts: e.Insts, Seed: e.Seed, Workers: e.Workers, Obs: e.Obs}
}

// run simulates profile p on cfg with the env's options.
func (e *Env) run(ctx context.Context, cfg config.Config, p workload.Profile) (reportIPC, error) {
	m, err := core.NewModel(cfg)
	if err != nil {
		return reportIPC{}, err
	}
	r, err := m.RunContext(ctx, p, e.opts())
	if err != nil {
		return reportIPC{}, err
	}
	return reportIPC{
		IPC:        r.IPC(),
		L1I:        r.L1IMissRate(),
		L1D:        r.L1DMissRate(),
		L2:         r.L2DemandMissRate(),
		BranchFail: r.BranchFailureRate(),
	}, nil
}

// reportIPC is the metric tuple monotonicity checks compare.
type reportIPC struct {
	IPC, L1I, L1D, L2, BranchFail float64
}

// Verdict is one check's outcome, serialization-ready for the -json report.
type Verdict struct {
	Check     string `json:"check"`
	Kind      string `json:"kind"`
	Status    string `json:"status"`
	Detail    string `json:"detail,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

// Report is a full harness run, the machine-readable artifact the CI gate
// uploads.
type Report struct {
	ModelVersion string    `json:"model_version"`
	Mode         string    `json:"mode"`
	Config       string    `json:"config"`
	Seed         int64     `json:"seed"`
	Insts        int       `json:"insts"`
	Fault        string    `json:"injected_fault"`
	Workloads    []string  `json:"workloads"`
	Verdicts     []Verdict `json:"verdicts"`
	Pass         int       `json:"pass"`
	Fail         int       `json:"fail"`
	Errors       int       `json:"errors"`
	ElapsedMS    int64     `json:"elapsed_ms"`
}

// OK reports whether every check passed.
func (r *Report) OK() bool { return r.Fail == 0 && r.Errors == 0 }

// Options configures a harness run.
type Options struct {
	// Full selects the full catalog and workload set; the default is the
	// quick CI gate (subset of workloads, MP checks skipped).
	Full bool
	// Seed selects the trace windows (0 = 42, matching core's default).
	Seed int64
	// Insts overrides the per-run trace length (0 = mode default:
	// 50k quick, 150k full).
	Insts int
	// Workers bounds check-level concurrency (0 = GOMAXPROCS).
	Workers int
	// Checks, when non-empty, restricts the run to the named checks.
	Checks []string
	// Extra appends caller-supplied checks to the catalog. This is the
	// extension point for checks that live above this package in the
	// import graph (cmd/verify's cluster-replay check exercises the HTTP
	// gateway, which depends on packages that depend on metamorph).
	Extra []Check
	// Obs, when non-nil, collects a per-check timing span ("check"/<name>)
	// alongside the verdict counters the harness always publishes to the
	// process-wide metric registry.
	Obs *obs.Collector
}

// Verdict counters in the process-wide registry: one series per status, so
// a long-lived service running periodic verification exposes its pass/fail
// history on /metrics.
var (
	verdictPass  = verdictCounter(StatusPass)
	verdictFail  = verdictCounter(StatusFail)
	verdictError = verdictCounter(StatusError)
)

func verdictCounter(status string) *obs.Counter {
	return obs.Default().Counter("sparc64v_metamorph_verdicts_total",
		"Metamorphic verification check verdicts, by status.", obs.L("status", status))
}

// modeProfiles returns the workload set for a mode.
func modeProfiles(full bool) []workload.Profile {
	if full {
		return append(workload.UPProfiles(), workload.HPC())
	}
	return []workload.Profile{workload.SPECint95(), workload.TPCC()}
}

// Run executes the catalog and assembles the report. Checks are
// independent and execute on the scheduler; verdicts stay in catalog
// order. Run never fails on an invariant violation — that is the report's
// job — and only returns an error for harness-level problems (an unknown
// check name in opt.Checks).
func Run(ctx context.Context, opt Options) (Report, error) {
	start := time.Now()
	mode := "quick"
	insts := 50_000
	if opt.Full {
		mode, insts = "full", 150_000
	}
	if opt.Insts > 0 {
		insts = opt.Insts
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 42
	}
	env := &Env{
		Base:     config.Base(),
		Profiles: modeProfiles(opt.Full),
		Insts:    insts,
		Seed:     seed,
		Workers:  1,
		Full:     opt.Full,
		Obs:      opt.Obs,
	}
	checks, err := selectChecks(opt)
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		ModelVersion: core.ModelVersion,
		Mode:         mode,
		Config:       env.Base.Name,
		Seed:         seed,
		Insts:        insts,
		Fault:        injectedFaults(),
	}
	for _, p := range env.Profiles {
		rep.Workloads = append(rep.Workloads, p.Name)
	}
	verdicts, _ := sched.MapCtx(ctx, len(checks), sched.Options{Workers: opt.Workers},
		func(ctx context.Context, i int) (Verdict, error) {
			c := checks[i]
			sp := opt.Obs.StartSpan("check", c.Name)
			t0 := time.Now()
			detail, err := c.Run(ctx, env)
			v := Verdict{
				Check:     c.Name,
				Kind:      c.Kind,
				Status:    StatusPass,
				Detail:    detail,
				ElapsedMS: time.Since(t0).Milliseconds(),
			}
			var viol *Violation
			switch {
			case err == nil:
				verdictPass.Inc()
			case errors.As(err, &viol):
				v.Status, v.Detail = StatusFail, viol.Msg
				verdictFail.Inc()
			default:
				v.Status, v.Detail = StatusError, err.Error()
				verdictError.Inc()
			}
			sp.Add(v.Status, 1)
			sp.Finish()
			return v, nil
		})
	rep.Verdicts = verdicts
	for _, v := range rep.Verdicts {
		switch v.Status {
		case StatusPass:
			rep.Pass++
		case StatusFail:
			rep.Fail++
		default:
			rep.Errors++
		}
	}
	rep.ElapsedMS = time.Since(start).Milliseconds()
	return rep, nil
}

// selectChecks resolves the catalog subset for the options.
func selectChecks(opt Options) ([]Check, error) {
	all := append(Catalog(), opt.Extra...)
	if len(opt.Checks) == 0 {
		if opt.Full {
			return all, nil
		}
		quick := all[:0:0]
		for _, c := range all {
			if !c.FullOnly {
				quick = append(quick, c)
			}
		}
		return quick, nil
	}
	byName := make(map[string]Check, len(all))
	var names []string
	for _, c := range all {
		byName[c.Name] = c
		names = append(names, c.Name)
	}
	sort.Strings(names)
	var sel []Check
	for _, name := range opt.Checks {
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("metamorph: unknown check %q (have %v)", name, names)
		}
		sel = append(sel, c)
	}
	return sel, nil
}

// injectedFaults renders the process-wide fault state across all
// injection points (cache and coherence) for the report header.
func injectedFaults() string {
	var armed []string
	if f := cache.InjectedFault(); f != cache.FaultNone {
		armed = append(armed, f.String())
	}
	if f := coherence.InjectedFault(); f != coherence.FaultNone {
		armed = append(armed, f.String())
	}
	if len(armed) == 0 {
		return cache.FaultNone.String()
	}
	return strings.Join(armed, "+")
}

// CheckNames lists the catalog, sorted, for flag validation and docs.
func CheckNames() []string {
	var names []string
	for _, c := range Catalog() {
		names = append(names, c.Name)
	}
	sort.Strings(names)
	return names
}
