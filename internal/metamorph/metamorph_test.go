package metamorph

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"sparc64v/internal/cache"
	"sparc64v/internal/coherence"
	"sparc64v/internal/config"
)

// These tests arm the process-global fault injector, so none of them may
// run in parallel.

func TestQuickCatalogPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole quick catalog")
	}
	rep, err := Run(context.Background(), Options{Insts: 10_000})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, v := range rep.Verdicts {
		if v.Status != StatusPass {
			t.Errorf("%s: %s: %s", v.Check, v.Status, v.Detail)
		}
	}
	if !rep.OK() {
		t.Fatalf("quick catalog not OK: %d fail, %d errors", rep.Fail, rep.Errors)
	}
	if rep.Mode != "quick" || rep.Fault != "none" {
		t.Fatalf("report header wrong: mode=%q fault=%q", rep.Mode, rep.Fault)
	}
}

// TestInjectedFaultCaught is the harness's self-test: a planted index-bit
// bug must fail at least one monotonicity or differential check in quick
// mode, or the catalog is security theater.
func TestInjectedFaultCaught(t *testing.T) {
	cache.InjectFault(cache.FaultIndexBits)
	defer cache.InjectFault(cache.FaultNone)
	rep, err := Run(context.Background(), Options{Insts: 10_000})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Fault != "l1index" {
		t.Fatalf("report fault = %q, want l1index", rep.Fault)
	}
	if rep.Errors > 0 {
		for _, v := range rep.Verdicts {
			if v.Status == StatusError {
				t.Errorf("harness error in %s: %s", v.Check, v.Detail)
			}
		}
	}
	caught := false
	for _, v := range rep.Verdicts {
		if v.Status == StatusFail && (v.Kind == "monotonicity" || v.Kind == "differential") {
			caught = true
			t.Logf("fault caught by %s: %s", v.Check, v.Detail)
		}
	}
	if !caught {
		t.Fatalf("injected l1index fault escaped the quick catalog: %+v", rep.Verdicts)
	}
}

// TestInjectedCoherenceFaultCaught is the TSO harness's self-test: a
// coherence controller that drops invalidations must fail the
// tso-outcomes check — stale copies survive in remote chips and the
// litmus sweeps observe forbidden outcomes.
func TestInjectedCoherenceFaultCaught(t *testing.T) {
	coherence.InjectFault(coherence.FaultDropInvalidate)
	defer coherence.InjectFault(coherence.FaultNone)
	rep, err := Run(context.Background(), Options{Checks: []string{"tso-outcomes"}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Fault != "dropinval" {
		t.Fatalf("report fault = %q, want dropinval", rep.Fault)
	}
	if rep.Errors > 0 || rep.Fail == 0 {
		t.Fatalf("injected dropinval fault escaped tso-outcomes: %+v", rep.Verdicts)
	}
	t.Logf("fault caught: %s", rep.Verdicts[0].Detail)
}

func TestCheckSelection(t *testing.T) {
	if _, err := Run(context.Background(), Options{Checks: []string{"no-such-check"}}); err == nil {
		t.Fatal("unknown check name accepted")
	}
	rep, err := Run(context.Background(), Options{
		Insts:  5_000,
		Checks: []string{"conserve-counts", "diff-cache-shadow"},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Verdicts) != 2 {
		t.Fatalf("got %d verdicts, want 2", len(rep.Verdicts))
	}
	if rep.Verdicts[0].Check != "conserve-counts" || rep.Verdicts[1].Check != "diff-cache-shadow" {
		t.Fatalf("verdicts out of order: %+v", rep.Verdicts)
	}
}

// TestUnknownCheckErrorListsNames pins the unknown-check error message: it
// must list every valid name, including caller-supplied Extra checks —
// cmd/verify users see this text when they typo a -checks value.
func TestUnknownCheckErrorListsNames(t *testing.T) {
	extra := Check{Name: "extra-gateway-check", Kind: "differential",
		Run: func(context.Context, *Env) (string, error) { return "", nil }}
	_, err := Run(context.Background(), Options{
		Checks: []string{"no-such-check"},
		Extra:  []Check{extra},
	})
	if err == nil {
		t.Fatal("unknown check name accepted")
	}
	for _, want := range []string{"tso-outcomes", "extra-gateway-check", "mono-l1-size"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not list %q", err, want)
		}
	}
}

func TestCatalogNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Catalog() {
		if seen[c.Name] {
			t.Errorf("duplicate check name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Kind != "monotonicity" && c.Kind != "conservation" && c.Kind != "differential" && c.Kind != "conformance" {
			t.Errorf("%s: unknown kind %q", c.Name, c.Kind)
		}
		if c.Run == nil {
			t.Errorf("%s: nil Run", c.Name)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep, err := Run(context.Background(), Options{Insts: 5_000, Checks: []string{"diff-cache-shadow"}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.ModelVersion != rep.ModelVersion || len(back.Verdicts) != len(rep.Verdicts) {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

// TestShadowCacheLRU pins the oracle's own semantics with a hand-computed
// access pattern on a tiny 2-set 2-way cache (16-byte lines).
func TestShadowCacheLRU(t *testing.T) {
	s := newShadow(config.CacheGeometry{SizeBytes: 64, Ways: 2, LineBytes: 16, HitCycles: 1})
	steps := []struct {
		addr uint64
		hit  bool
	}{
		{0x00, false}, // line 0 -> set 0
		{0x0f, true},  // same line
		{0x20, false}, // line 2 -> set 0
		{0x00, true},  // still resident
		{0x40, false}, // line 4 -> set 0: evicts LRU (line 2)
		{0x20, false}, // line 2 gone
		{0x00, false}, // line 0 was LRU when line 2 refilled
		{0x10, false}, // line 1 -> set 1: other set untouched
		{0x10, true},
	}
	for i, st := range steps {
		if got := s.access(st.addr); got != st.hit {
			t.Fatalf("step %d (addr %#x): hit=%v, want %v", i, st.addr, got, st.hit)
		}
	}
}

// TestShadowAgreesWithCache cross-checks the two implementations on a
// pseudo-random stream over a small geometry — the same comparison
// diff-cache-shadow runs on real traces, minus the simulator.
func TestShadowAgreesWithCache(t *testing.T) {
	geo := config.CacheGeometry{SizeBytes: 4 << 10, Ways: 4, LineBytes: 64, HitCycles: 1}
	real := cache.New(geo)
	shadow := newShadow(geo)
	x := uint64(0x2545f491)
	for i := 0; i < 200_000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		addr := x % (32 << 10) // 8x the cache: plenty of eviction
		realHit := real.Access(addr) != nil
		if !realHit {
			real.Fill(addr, cache.Exclusive, false)
		}
		if shadowHit := shadow.access(addr); realHit != shadowHit {
			t.Fatalf("access %d (addr %#x): cache hit=%v, shadow hit=%v",
				i, addr, realHit, shadowHit)
		}
	}
	if err := real.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
