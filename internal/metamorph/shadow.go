package metamorph

import "sparc64v/internal/config"

// shadowCache is a deliberately independent implementation of a
// set-associative true-LRU cache: MRU-ordered slices instead of LRU
// timestamps, arithmetic modulo instead of bit masks, division instead of
// shifts. It exists solely as a differential oracle for internal/cache —
// the two implementations share nothing but the geometry contract, so an
// index-bit, masking, replacement or eviction bug in either one shows up
// as a hit/miss disagreement on the first access where behavior diverges.
//
// This mirrors the paper's methodology at the model level: the SPARC64 V
// performance model was cross-verified against a structurally different
// logic simulator precisely because shared code cannot catch its own bugs.
type shadowCache struct {
	lineBytes uint64
	nsets     uint64
	ways      int
	// sets[i] holds the set's resident line numbers, most recently used
	// first.
	sets [][]uint64
}

// newShadow builds the oracle for a geometry.
func newShadow(g config.CacheGeometry) *shadowCache {
	s := &shadowCache{
		lineBytes: uint64(g.LineBytes),
		nsets:     uint64(g.Sets()),
		ways:      g.Ways,
		sets:      make([][]uint64, g.Sets()),
	}
	for i := range s.sets {
		s.sets[i] = make([]uint64, 0, g.Ways)
	}
	return s
}

// access performs a demand access with fill-on-miss and reports whether it
// hit. Replacement is true LRU: hits move to the MRU position, misses
// insert at MRU and push out the LRU way when the set is full.
func (s *shadowCache) access(addr uint64) bool {
	line := addr / s.lineBytes
	set := s.sets[line%s.nsets]
	for i, t := range set {
		if t == line {
			copy(set[1:i+1], set[:i])
			set[0] = line
			return true
		}
	}
	if len(set) == s.ways {
		set = set[:s.ways-1]
	}
	set = append(set, 0)
	copy(set[1:], set)
	set[0] = line
	s.sets[line%s.nsets] = set
	return false
}
