package metamorph

import (
	"context"
	"fmt"
	"strings"

	"sparc64v/internal/litmus"
)

// checkTSOOutcomes runs the litmus-test conformance family: every catalog
// shape sweeps across seeds and structural skew patterns at its natural
// machine size, and the two-CPU shapes additionally on a padded 4-CPU
// machine (extra chips are pure invalidation targets — the protocol must
// stay conformant with bystanders snooping). Any TSO-forbidden outcome or
// missing required witness (SB's r0=0,r1=0 store-buffer signature) is a
// violation. Quick mode sweeps 32 seeds per shape; full mode 64.
func checkTSOOutcomes(ctx context.Context, env *Env) (string, error) {
	seeds := 32
	if env.Full {
		seeds = 64
	}
	cfg := litmus.BaseConfig()
	type job struct {
		t    litmus.Test
		cpus int
	}
	var jobs []job
	for _, t := range litmus.Tests() {
		jobs = append(jobs, job{t, 0})
		if t.CPUs == 2 {
			jobs = append(jobs, job{t, 4})
		}
	}
	var details, bad []string
	runs := 0
	for _, j := range jobs {
		sr, err := litmus.Sweep(ctx, j.t, cfg, litmus.Options{
			Seeds:    seeds,
			BaseSeed: env.Seed,
			CPUs:     j.cpus,
			Workers:  env.Workers,
		})
		if err != nil {
			return "", err
		}
		runs += sr.Seeds
		details = append(details, fmt.Sprintf("%s/%dcpu:%d outcomes", sr.Test, sr.CPUs, len(sr.Outcomes)))
		for _, f := range sr.Forbidden {
			bad = append(bad, fmt.Sprintf("%s/%dcpu forbidden %s", sr.Test, sr.CPUs, f))
		}
		for _, w := range sr.WitnessMissing {
			bad = append(bad, fmt.Sprintf("%s/%dcpu witness %q never observed", sr.Test, sr.CPUs, w))
		}
	}
	if len(bad) > 0 {
		if len(bad) > 8 {
			bad = append(bad[:8], fmt.Sprintf("... %d more", len(bad)-8))
		}
		return "", violationf("TSO conformance: %s", strings.Join(bad, "; "))
	}
	return fmt.Sprintf("%d runs clean: %s", runs, strings.Join(details, ", ")), nil
}
