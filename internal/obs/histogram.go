package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket distribution. Bucket upper bounds follow the
// Prometheus le convention — a value lands in the first bucket whose bound
// is >= the value, so a value exactly on a boundary counts in that
// boundary's bucket — plus an implicit +Inf overflow bucket. Observation
// is lock-free (one atomic add per bucket/count, one CAS loop for the
// float sum), so workers can observe concurrently without serializing;
// p50/p90/p99 are derived from the bucket counts, and histograms with the
// same layout merge associatively, so per-worker instances can be summed
// into one distribution.
type Histogram struct {
	bounds []float64       // strictly increasing upper bounds, no +Inf
	counts []atomic.Uint64 // len(bounds)+1; the last is the overflow bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// DefLatencyBuckets returns the repository's standard wall-time buckets in
// seconds: 5µs..120s in a ~1-2.5-5 progression. The range is set by what
// this system actually measures — cache hits and HTTP handling land in the
// microsecond decades, single simulations in 10ms..10s, full studies and
// drained shutdowns up to two minutes — and the coarse progression keeps a
// histogram at 23 buckets (cheap to merge and expose) while bounding
// quantile interpolation error to the bucket width (~2.5x).
func DefLatencyBuckets() []float64 {
	return []float64{
		0.000005, 0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
		1, 2.5, 5, 10, 30, 60, 120,
	}
}

// NewHistogram builds a standalone histogram (registry-free: merge
// scratch, tests). Bounds must be non-empty and strictly increasing;
// anything else is a programming error and panics.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d: %v", i, bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. NaN observations are dropped and negative
// ones are clamped to zero: exposition must never show negative or NaN
// quantiles/sums, and a negative latency is always a caller bug (clock
// skew), not a signal worth corrupting the distribution for.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = overflow
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// HistogramSnapshot is a consistent-enough copy of a histogram's state for
// rendering and assertions (individual loads are atomic; a snapshot taken
// mid-observation may be off by in-flight increments, never torn).
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds (no +Inf).
	Bounds []float64
	// Counts are per-bucket (not cumulative) counts; the last entry is the
	// +Inf overflow bucket, so len(Counts) == len(Bounds)+1.
	Counts []uint64
	// Count and Sum summarize all observations.
	Count uint64
	Sum   float64
}

// Snapshot copies the current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts by
// linear interpolation inside the selected bucket, the same estimate a
// Prometheus histogram_quantile produces. The error is bounded by the
// bucket width; observations in the +Inf overflow bucket clamp to the
// highest finite bound. An empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	snap := h.Snapshot()
	var total uint64
	for _, c := range snap.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range snap.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if i == len(snap.Bounds) {
				// Overflow bucket: no finite upper bound to interpolate
				// toward; clamp to the largest finite bound.
				return snap.Bounds[len(snap.Bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = snap.Bounds[i-1]
			}
			upper := snap.Bounds[i]
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
		cum = next
	}
	return snap.Bounds[len(snap.Bounds)-1]
}

// Merge adds o's observations into h. Both histograms must share the same
// bucket layout; merging is commutative and associative, which is what
// lets per-worker histograms fold into one distribution in any order.
func (h *Histogram) Merge(o *Histogram) error {
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("obs: merge of %d-bucket histogram into %d-bucket histogram",
			len(o.bounds), len(h.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			return fmt.Errorf("obs: merge with mismatched bucket bound %d: %v vs %v",
				i, o.bounds[i], h.bounds[i])
		}
	}
	snap := o.Snapshot()
	for i, c := range snap.Counts {
		h.counts[i].Add(c)
	}
	h.count.Add(snap.Count)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + snap.Sum)
		if h.sum.CompareAndSwap(old, next) {
			return nil
		}
	}
}
