package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	// le convention: a value exactly on a bound lands in that bound's
	// bucket; above the last bound lands in overflow.
	bounds := []float64{1, 2, 5}
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0},
		{0.5, 0},
		{1, 0}, // boundary value counts in its bucket (le, not lt)
		{1.0000001, 1},
		{2, 1},
		{3, 2},
		{5, 2},
		{5.1, 3}, // overflow
		{1e9, 3},
		{-4, 0},           // negatives clamp to 0
		{math.Inf(1), 3},  // +Inf is an overflow observation
		{math.NaN(), -1},  // dropped entirely
		{math.Inf(-1), 0}, // -Inf clamps like any negative
	}
	for _, tc := range cases {
		h := NewHistogram(bounds)
		h.Observe(tc.v)
		snap := h.Snapshot()
		if tc.bucket < 0 {
			if snap.Count != 0 {
				t.Errorf("Observe(%v): want dropped, got count=%d buckets=%v", tc.v, snap.Count, snap.Counts)
			}
			continue
		}
		if snap.Count != 1 {
			t.Fatalf("Observe(%v): count = %d, want 1", tc.v, snap.Count)
		}
		for i, c := range snap.Counts {
			want := uint64(0)
			if i == tc.bucket {
				want = 1
			}
			if c != want {
				t.Errorf("Observe(%v): bucket %d = %d, want %d (counts %v)", tc.v, i, c, want, snap.Counts)
			}
		}
	}
}

func TestHistogramSumClampsNegatives(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(0.5)
	h.Observe(-3) // clamped to 0, contributes nothing to the sum
	h.Observe(math.NaN())
	if got := h.Sum(); got != 0.5 {
		t.Errorf("Sum = %v, want 0.5", got)
	}
	if got := h.Count(); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
}

func TestNewHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}, {1, 2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v): want panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestHistogramQuantileErrorBound(t *testing.T) {
	// Observe a known uniform population; every quantile estimate must land
	// within the width of the bucket holding the true quantile (the
	// documented error bound of bucket-interpolated quantiles).
	bounds := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	h := NewHistogram(bounds)
	const n = 1000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i) * 100 / n) // uniform on (0, 100]
	}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0} {
		truth := q * 100
		got := h.Quantile(q)
		if math.Abs(got-truth) > 10 { // one bucket width
			t.Errorf("Quantile(%v) = %v, want within 10 of %v", q, got, truth)
		}
	}
	// Uniform data interpolates nearly exactly; pin the median tightly so a
	// broken interpolation (e.g. always returning the upper bound) fails.
	if got := h.Quantile(0.5); math.Abs(got-50) > 0.5 {
		t.Errorf("Quantile(0.5) = %v, want ~50", got)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	h.Observe(10) // overflow only
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("overflow Quantile = %v, want clamp to last bound 2", got)
	}
	// Out-of-range q clamps instead of panicking.
	if got := h.Quantile(-1); got != 2 {
		t.Errorf("Quantile(-1) = %v, want 2", got)
	}
	if got := h.Quantile(7); got != 2 {
		t.Errorf("Quantile(7) = %v, want 2", got)
	}
}

// TestHistogramQuantileOverflowClamp (regression): when observations land
// past the last finite boundary they fall in the implicit +Inf bucket,
// which has no upper bound to interpolate toward. A naive estimator
// returns the overflow bucket's *lower* bound for low quantiles and +Inf
// for high ones; the pinned contract is that every quantile of an
// overflow-heavy distribution clamps to the largest finite bound — always
// finite, never below the last boundary.
func TestHistogramQuantileOverflowClamp(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for i := 0; i < 100; i++ {
		h.Observe(1000) // all observations beyond the last boundary
	}
	for _, q := range []float64{0, 0.01, 0.5, 0.9, 0.99, 1} {
		got := h.Quantile(q)
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("Quantile(%v) = %v, must stay finite", q, got)
		}
		if got != 5 {
			t.Errorf("Quantile(%v) = %v, want clamp to last finite bound 5", q, got)
		}
	}

	// Mixed distribution: quantiles inside finite buckets interpolate as
	// usual; only the quantiles that land in the overflow tail clamp.
	m := NewHistogram([]float64{1, 2, 5})
	for i := 0; i < 90; i++ {
		m.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		m.Observe(99)
	}
	if got := m.Quantile(0.5); got > 1 {
		t.Errorf("mixed Quantile(0.5) = %v, want inside first bucket", got)
	}
	if got := m.Quantile(0.99); got != 5 {
		t.Errorf("mixed Quantile(0.99) = %v, want clamp to 5", got)
	}
}

func TestHistogramMergeAssociative(t *testing.T) {
	bounds := DefLatencyBuckets()
	mk := func(vals ...float64) *Histogram {
		h := NewHistogram(bounds)
		for _, v := range vals {
			h.Observe(v)
		}
		return h
	}
	a := func() *Histogram { return mk(0.0001, 0.005, 3) }
	b := func() *Histogram { return mk(0.5, 0.5, 90) }
	c := func() *Histogram { return mk(0.000001, 200) }

	// (a+b)+c
	left := a()
	if err := left.Merge(b()); err != nil {
		t.Fatal(err)
	}
	if err := left.Merge(c()); err != nil {
		t.Fatal(err)
	}
	// a+(b+c)
	bc := b()
	if err := bc.Merge(c()); err != nil {
		t.Fatal(err)
	}
	right := a()
	if err := right.Merge(bc); err != nil {
		t.Fatal(err)
	}

	ls, rs := left.Snapshot(), right.Snapshot()
	if ls.Count != rs.Count || ls.Count != 8 {
		t.Fatalf("counts: left %d right %d, want 8", ls.Count, rs.Count)
	}
	if math.Abs(ls.Sum-rs.Sum) > 1e-9 {
		t.Fatalf("sums differ: %v vs %v", ls.Sum, rs.Sum)
	}
	for i := range ls.Counts {
		if ls.Counts[i] != rs.Counts[i] {
			t.Fatalf("bucket %d: %d vs %d", i, ls.Counts[i], rs.Counts[i])
		}
	}
}

func TestHistogramMergeRejectsMismatchedBounds(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if err := h.Merge(NewHistogram([]float64{1, 2, 3})); err == nil {
		t.Error("merge with different bucket count: want error")
	}
	if err := h.Merge(NewHistogram([]float64{1, 3})); err == nil {
		t.Error("merge with different bound value: want error")
	}
	if got := h.Count(); got != 0 {
		t.Errorf("failed merges must not mutate: count = %d", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	// Race test: many goroutines observing one histogram while another
	// renders snapshots. Run with -race; also asserts no lost increments.
	h := NewHistogram(DefLatencyBuckets())
	const (
		workers = 8
		perG    = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.Snapshot()
				_ = h.Quantile(0.99)
			}
		}
	}()
	var ww sync.WaitGroup
	for g := 0; g < workers; g++ {
		ww.Add(1)
		go func(g int) {
			defer ww.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG+i) * 1e-6)
			}
		}(g)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	snap := h.Snapshot()
	if want := uint64(workers * perG); snap.Count != want {
		t.Fatalf("lost increments: count = %d, want %d", snap.Count, want)
	}
	var total uint64
	for _, c := range snap.Counts {
		total += c
	}
	if total != snap.Count {
		t.Fatalf("bucket total %d != count %d", total, snap.Count)
	}
	// Sum of 0..N-1 in µs, exact in float64 at this magnitude.
	n := float64(workers * perG)
	want := n * (n - 1) / 2 * 1e-6
	if math.Abs(snap.Sum-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", snap.Sum, want)
	}
}
