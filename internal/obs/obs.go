// Package obs is the repository's zero-dependency instrumentation layer:
// monotonic counters, gauges, fixed-bucket latency histograms, a named
// registry with Prometheus-style text exposition, and a per-run Span API
// that turns every simulation into a structured timing+counter profile.
//
// The paper's methodology lived on exactly this kind of visibility: the
// model stayed credible from pre-RTL studies to silicon because every run
// exposed per-component counters that could be cross-checked against an
// independent simulator (PAPER.md section 5). This package gives the
// modern service the same substrate — "where did this run spend its time",
// "what is p99 run latency under load", "did this PR regress the hot
// loop" — without pulling a metrics dependency into a simulator that must
// stay reproducible and fast.
//
// Design rules:
//
//   - everything is atomics; observation never takes a lock on the hot
//     path (the registry mutex guards only series creation and rendering);
//   - instrumentation may observe a simulation but never change it — the
//     regression test in internal/core pins byte-identical Reports and a
//     <5% wall-time bound with profiling enabled;
//   - exposition is deterministic: families and series render in sorted
//     order, so /metrics output is golden-testable and scrapers never see
//     churn from map iteration.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L builds a Label (shorthand for composing series).
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing value. The zero value is usable;
// registry-created counters are shared by all callers of the same
// (name, labels).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (queue depths, in-flight work).
// The zero value is usable.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metric kinds, for family type checks and TYPE lines.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one labeled instance within a family.
type series struct {
	labels []Label // sorted by key
	metric any     // *Counter, *Gauge or *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name, help, kind string
	buckets          []float64 // histogram families only
	series           map[string]*series
}

// Registry is a set of named metrics with deterministic text exposition.
// All methods are safe for concurrent use; metric constructors are
// get-or-create, so independent packages can claim the same series and
// share it.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry (tests and isolated servers).
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry package-level
// instrumentation (sched, runcache, metamorph) registers into; the simd
// service renders it on /metrics.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// seriesKey canonicalizes labels: sorted by key, rendered once.
func seriesKey(labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return "", nil
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String(), ls
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// get returns the family, creating it with the given kind on first use.
// A name reused with a different kind is a programming error and panics.
func (r *Registry) get(name, help, kind string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets,
			series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// getSeries returns the family's series for labels, creating it via mk.
func (f *family) getSeries(r *Registry, labels []Label, mk func() any) any {
	key, ls := seriesKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: ls, metric: mk()}
		f.series[key] = s
	}
	return s.metric
}

// Counter returns (creating on first use) the counter series for
// name+labels. Help is recorded on first registration.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.get(name, help, kindCounter, nil)
	return f.getSeries(r, labels, func() any { return new(Counter) }).(*Counter)
}

// Gauge returns (creating on first use) the gauge series for name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.get(name, help, kindGauge, nil)
	return f.getSeries(r, labels, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram returns (creating on first use) the histogram series for
// name+labels. Buckets are fixed at family creation; later calls may pass
// nil to reuse them. All series of one family share the bucket layout, so
// they merge and render uniformly.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets()
	}
	f := r.get(name, help, kindHistogram, buckets)
	return f.getSeries(r, labels, func() any { return NewHistogram(f.buckets) }).(*Histogram)
}

// formatFloat renders exposition values: shortest representation that
// round-trips, matching what scrapers expect ("0.005", not "5e-03" — the
// 'g' format switches to exponent only for extreme magnitudes).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the text exposition format
// (version 0.0.4): families sorted by name, series sorted by label key,
// histograms expanded into cumulative _bucket/_sum/_count lines.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type renderSeries struct {
		key string
		s   *series
	}
	type renderFamily struct {
		f      *family
		series []renderSeries
	}
	fams := make([]renderFamily, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		rf := renderFamily{f: f}
		for key, s := range f.series {
			rf.series = append(rf.series, renderSeries{key, s})
		}
		sort.Slice(rf.series, func(i, j int) bool { return rf.series[i].key < rf.series[j].key })
		fams = append(fams, rf)
	}
	r.mu.Unlock()

	var b []byte
	for _, rf := range fams {
		f := rf.f
		b = fmt.Appendf(b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		for _, rs := range rf.series {
			suffix := ""
			if rs.key != "" {
				suffix = "{" + rs.key + "}"
			}
			switch m := rs.s.metric.(type) {
			case *Counter:
				b = fmt.Appendf(b, "%s%s %d\n", f.name, suffix, m.Value())
			case *Gauge:
				b = fmt.Appendf(b, "%s%s %d\n", f.name, suffix, m.Value())
			case *Histogram:
				b = appendHistogram(b, f.name, rs.key, m)
			}
		}
	}
	_, err := w.Write(b)
	return err
}

// appendHistogram renders one histogram series: cumulative buckets with
// the le label spliced after the series labels, then _sum and _count.
func appendHistogram(b []byte, name, labelKey string, h *Histogram) []byte {
	snap := h.Snapshot()
	bucketLabels := func(le string) string {
		if labelKey == "" {
			return `{le="` + le + `"}`
		}
		return "{" + labelKey + `,le="` + le + `"}`
	}
	suffix := ""
	if labelKey != "" {
		suffix = "{" + labelKey + "}"
	}
	var cum uint64
	for i, bound := range snap.Bounds {
		cum += snap.Counts[i]
		b = fmt.Appendf(b, "%s_bucket%s %d\n", name, bucketLabels(formatFloat(bound)), cum)
	}
	cum += snap.Counts[len(snap.Counts)-1]
	b = fmt.Appendf(b, "%s_bucket%s %d\n", name, bucketLabels("+Inf"), cum)
	b = fmt.Appendf(b, "%s_sum%s %s\n", name, suffix, formatFloat(snap.Sum))
	b = fmt.Appendf(b, "%s_count%s %d\n", name, suffix, snap.Count)
	return b
}
