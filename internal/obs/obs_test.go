package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestRegistryGetOrCreateShares(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("k", "v"))
	b := r.Counter("x_total", "ignored on reuse", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("shared counter not shared")
	}
	if r.Counter("x_total", "", L("k", "other")) == a {
		t.Fatal("different labels must be a different series")
	}
	// Label order must not matter.
	g1 := r.Gauge("g", "", L("a", "1"), L("b", "2"))
	g2 := r.Gauge("g", "", L("b", "2"), L("a", "1"))
	if g1 != g2 {
		t.Fatal("label order must not create a new series")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on kind mismatch")
		}
	}()
	r.Gauge("m", "")
}

func TestRegistryConcurrentCreate(t *testing.T) {
	// Race test: concurrent get-or-create plus rendering.
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("c_total", "h", L("w", string(rune('a'+g)))).Inc()
				r.Gauge("g", "h").Set(int64(i))
				r.Histogram("h_seconds", "h", nil, L("w", string(rune('a'+g)))).Observe(0.001)
				var b bytes.Buffer
				_ = r.WritePrometheus(&b)
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		if got := r.Counter("c_total", "", L("w", string(rune('a'+g)))).Value(); got != 200 {
			t.Fatalf("worker %d counter = %d, want 200", g, got)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("e_total", "h", L("path", "a\\b\"c\nd")).Inc()
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `e_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(b.String(), want+"\n") {
		t.Fatalf("exposition missing %q:\n%s", want, b.String())
	}
}

// scriptedClock replaces the package clock with a deterministic sequence:
// each call advances by step. Restores the real clock on cleanup.
func scriptedClock(t *testing.T, step time.Duration) {
	t.Helper()
	base := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	var n int64
	now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return base.Add(time.Duration(n) * step)
	}
	t.Cleanup(func() { now = time.Now })
}

func TestExpositionGolden(t *testing.T) {
	// A scripted registry covering every metric kind, label shapes, and a
	// histogram with observations in the first, middle, boundary, and
	// overflow buckets. Any drift in the exposition format fails here
	// instead of silently breaking scrapers; regenerate deliberately with
	// `go test ./internal/obs -run Golden -update`.
	r := NewRegistry()
	r.Counter("sparc64v_demo_runs_total", "Completed demo runs.", L("study", "table1")).Add(3)
	r.Counter("sparc64v_demo_runs_total", "Completed demo runs.", L("study", "fig07")).Add(5)
	r.Counter("sparc64v_plain_total", "A label-free counter.").Add(7)
	r.Gauge("sparc64v_demo_queue_depth", "Requests holding a queue token.").Set(2)
	h := r.Histogram("sparc64v_demo_seconds", "Demo latency.", []float64{0.001, 0.01, 0.1, 1}, L("endpoint", "run"))
	for _, v := range []float64{0.0005, 0.05, 0.1, 4} {
		h.Observe(v)
	}

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s--- want ---\n%s", b.Bytes(), want)
	}
}

func TestExpositionDeterministic(t *testing.T) {
	mk := func() string {
		r := NewRegistry()
		// Insert in two different orders across calls via map-iteration
		// pressure: many series in one family.
		for _, s := range []string{"zeta", "alpha", "mid", "beta"} {
			r.Counter("d_total", "h", L("s", s)).Inc()
		}
		r.Histogram("d_seconds", "h", []float64{1}).Observe(0.5)
		var b bytes.Buffer
		_ = r.WritePrometheus(&b)
		return b.String()
	}
	first := mk()
	for i := 0; i < 10; i++ {
		if got := mk(); got != first {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
	// Series must appear sorted.
	if strings.Index(first, `s="alpha"`) > strings.Index(first, `s="zeta"`) {
		t.Fatalf("series not sorted:\n%s", first)
	}
}

func TestSpanProfile(t *testing.T) {
	scriptedClock(t, time.Millisecond)
	c := NewCollector()

	sp := c.StartSpan("run", "table1") // clock tick 1
	end := sp.Phase(PhaseBuild)        // tick 2
	end()                              // tick 3 → build = 1ms
	end = sp.Phase(PhaseSim)           // tick 4
	end()                              // tick 5 → sim = 1ms
	sp.Add("committed", 400)
	sp.Add("committed", 200)
	sp.Add("cycles", 1000)
	sp.Finish() // tick 6 → wall = 5ms

	dropped := c.StartSpan("run", "never-finished")
	_ = dropped // not finished → not published

	ps := c.Profiles()
	if len(ps) != 1 {
		t.Fatalf("profiles = %d, want 1 (unfinished spans excluded)", len(ps))
	}
	p := ps[0]
	if p.Name != "run" || p.Label != "table1" {
		t.Fatalf("identity = %s/%s", p.Name, p.Label)
	}
	if p.WallSeconds != 0.005 {
		t.Errorf("wall = %v, want 0.005", p.WallSeconds)
	}
	wantPhases := []PhaseSeconds{{PhaseBuild, 0.001}, {PhaseSim, 0.001}}
	if len(p.Phases) != 2 || p.Phases[0] != wantPhases[0] || p.Phases[1] != wantPhases[1] {
		t.Errorf("phases = %+v, want %+v", p.Phases, wantPhases)
	}
	wantCounters := []CounterValue{{"committed", 600}, {"cycles", 1000}}
	if len(p.Counters) != 2 || p.Counters[0] != wantCounters[0] || p.Counters[1] != wantCounters[1] {
		t.Errorf("counters = %+v, want %+v", p.Counters, wantCounters)
	}
}

func TestNilCollectorAndSpanAreSafe(t *testing.T) {
	var c *Collector
	sp := c.StartSpan("run", "x")
	if sp != nil {
		t.Fatal("nil collector must hand out nil spans")
	}
	end := sp.Phase(PhaseSim)
	end()
	sp.Add("n", 1)
	sp.Finish()
	if got := c.Profiles(); got != nil {
		t.Fatalf("nil collector profiles = %v", got)
	}
	var b bytes.Buffer
	if err := c.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"profiles": []`) {
		t.Fatalf("nil collector JSON = %s", b.String())
	}
}

func TestCollectorJSONDeterministic(t *testing.T) {
	scriptedClock(t, time.Millisecond)
	c := NewCollector()
	// Publish out of order; dump must sort by (name, label).
	for _, label := range []string{"zeta", "alpha"} {
		sp := c.StartSpan("run", label)
		sp.Add("n", 1)
		sp.Finish()
	}
	var b bytes.Buffer
	if err := c.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	s := b.String()
	if strings.Index(s, "alpha") > strings.Index(s, "zeta") {
		t.Fatalf("profiles not sorted:\n%s", s)
	}
}

func TestCollectorConcurrentSpans(t *testing.T) {
	// Race test: spans finishing from many goroutines while profiles are
	// being read.
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := c.StartSpan("run", "w")
				end := sp.Phase(PhaseSim)
				sp.Add("n", int64(i))
				end()
				sp.Finish()
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = c.Profiles()
		}
	}()
	wg.Wait()
	<-done
	if got := len(c.Profiles()); got != 800 {
		t.Fatalf("profiles = %d, want 800", got)
	}
}
