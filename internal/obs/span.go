package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// now is the span clock. Tests script it to make profiles deterministic;
// nothing else may read the wall clock in this package.
var now = time.Now

// Wall-time phases of one run. The cycle-accurate simulator interleaves
// fetch/decode/execute/mem inside a single loop, so per-pipeline-stage wall
// timing would need a clock read every cycle (~30x overhead); instead the
// span splits wall time at the natural sequential seams — workload build,
// the simulation loop, report extraction, cache lookup — and per-stage
// activity (fetched, committed, cache accesses, bus waits) travels as
// counters, which cost nothing to collect because the simulator already
// maintains them.
const (
	PhaseBuild  = "build"
	PhaseSim    = "sim"
	PhaseReport = "report"
	PhaseCache  = "cache"
	// PhaseFastForward is the functional fast-forward portion of a sampled
	// run; PhaseSim then covers only the detailed windows, so a sampled
	// run's profile shows the fast-forward/detailed wall-time split.
	PhaseFastForward = "fastforward"
)

// A Span measures one unit of work (typically one simulation run): total
// wall time, per-phase wall time, and named counters. All methods are
// nil-safe no-ops, so instrumented code threads a span through
// unconditionally and pays nothing when profiling is off.
type Span struct {
	c           *Collector
	name, label string
	start       time.Time

	mu       sync.Mutex
	phases   map[string]time.Duration
	counters map[string]int64
	wall     time.Duration
}

// Phase starts timing the named phase and returns the function that stops
// it. Repeated phases accumulate.
func (s *Span) Phase(phase string) func() {
	if s == nil {
		return func() {}
	}
	t0 := now()
	return func() {
		d := now().Sub(t0)
		s.mu.Lock()
		s.phases[phase] += d
		s.mu.Unlock()
	}
}

// Add accumulates n into the named counter.
func (s *Span) Add(counter string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.counters[counter] += n
	s.mu.Unlock()
}

// Finish stamps the span's wall time and publishes it to the collector. A
// span that is never finished is never published — the cache wrapper in
// core exploits this to drop its span when the inner run recorded the real
// one.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.wall = now().Sub(s.start)
	s.mu.Unlock()
	s.c.publish(s)
}

// Profile is the serialized form of one finished span.
type Profile struct {
	Name        string         `json:"name"`
	Label       string         `json:"label,omitempty"`
	WallSeconds float64        `json:"wall_seconds"`
	Phases      []PhaseSeconds `json:"phases,omitempty"`
	Counters    []CounterValue `json:"counters,omitempty"`
}

// PhaseSeconds is one phase's accumulated wall time.
type PhaseSeconds struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
}

// CounterValue is one named counter's final value.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// A Collector gathers finished spans into a profile dump. The zero value
// is not usable; a nil *Collector is, and disables profiling (every
// StartSpan returns a nil, no-op span).
type Collector struct {
	mu    sync.Mutex
	spans []*Span
}

// NewCollector builds an empty collector.
func NewCollector() *Collector { return &Collector{} }

// StartSpan opens a span. Name identifies the kind of work ("run",
// "study"), label the instance (workload or study name). On a nil
// collector it returns nil, which every Span method accepts.
func (c *Collector) StartSpan(name, label string) *Span {
	if c == nil {
		return nil
	}
	return &Span{
		c:        c,
		name:     name,
		label:    label,
		start:    now(),
		phases:   make(map[string]time.Duration),
		counters: make(map[string]int64),
	}
}

func (c *Collector) publish(s *Span) {
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

// Profiles snapshots the finished spans, sorted by (name, label) and with
// phases/counters sorted by name, so dumps are deterministic regardless of
// worker interleaving.
func (c *Collector) Profiles() []Profile {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	spans := append([]*Span(nil), c.spans...)
	c.mu.Unlock()

	out := make([]Profile, 0, len(spans))
	for _, s := range spans {
		s.mu.Lock()
		p := Profile{
			Name:        s.name,
			Label:       s.label,
			WallSeconds: s.wall.Seconds(),
		}
		for phase, d := range s.phases {
			p.Phases = append(p.Phases, PhaseSeconds{Phase: phase, Seconds: d.Seconds()})
		}
		for name, v := range s.counters {
			p.Counters = append(p.Counters, CounterValue{Name: name, Value: v})
		}
		s.mu.Unlock()
		sort.Slice(p.Phases, func(i, j int) bool { return p.Phases[i].Phase < p.Phases[j].Phase })
		sort.Slice(p.Counters, func(i, j int) bool { return p.Counters[i].Name < p.Counters[j].Name })
		out = append(out, p)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// WriteJSON dumps the collected profiles as indented JSON:
// {"profiles":[...]}. A nil collector writes an empty document, so CLI
// plumbing needs no profiling-enabled branch.
func (c *Collector) WriteJSON(w io.Writer) error {
	doc := struct {
		Profiles []Profile `json:"profiles"`
	}{Profiles: c.Profiles()}
	if doc.Profiles == nil {
		doc.Profiles = []Profile{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteProfileFile dumps the collector to path (the -profile flag's
// backend in cmd/sweep, cmd/accuracy and cmd/verify).
func (c *Collector) WriteProfileFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	werr := c.WriteJSON(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("obs: write %s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("obs: close %s: %w", path, cerr)
	}
	return nil
}
