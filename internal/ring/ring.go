// Package ring places cache keys on a pool of nodes so that identical
// keys always land on the same node (cache affinity and cluster-wide
// singleflight) while membership changes move as few keys as possible.
//
// Two placement strategies share one API:
//
//   - a consistent-hash ring with virtual nodes for normal pools: each
//     node owns Replicas points on a 64-bit circle, a key is served by
//     the first point at or after its hash, and removing a node moves
//     only the keys that node owned (~K/N of K keys on N nodes);
//   - rendezvous (highest-random-weight) hashing for tiny pools, where a
//     vnode ring's per-node share is too noisy: every node scores every
//     key and the highest score wins, which is per-key uniform and still
//     minimally disruptive, at O(N) per lookup — fine when N is small.
//
// Everything is deterministic: hashes are seed-free FNV-1a, nodes are
// sorted at construction, and the same membership produces the same
// key→node assignment in every process on every host. The gateway's
// failover path leans on Sequence: the preference order a key visits is
// stable, so retries land on the same fallback replica everywhere.
//
// PickBounded implements the "bounded loads" refinement: walk the key's
// preference sequence and take the first node whose current load stays
// under factor × the pool average, so a hot shard spills to its next
// replica instead of melting one node.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the vnode count per node; 128 keeps per-node share
// within a few percent of uniform for pools of up to dozens of nodes.
const DefaultReplicas = 128

// DefaultRendezvousBelow is the pool size under which the ring switches
// to rendezvous hashing. Tiny pools are exactly where vnode-share noise
// is worst and where O(N) rendezvous scoring is cheapest.
const DefaultRendezvousBelow = 4

// Options parameterizes a Ring.
type Options struct {
	// Replicas is the virtual-node count per node; <= 0 means
	// DefaultReplicas.
	Replicas int
	// RendezvousBelow selects rendezvous hashing for pools with fewer
	// than this many nodes; <= 0 means DefaultRendezvousBelow. Set to 1
	// to force the vnode ring at any size.
	RendezvousBelow int
}

// vnode is one point on the circle.
type vnode struct {
	hash uint64
	node int // index into nodes
}

// Ring is an immutable placement of a node set; build a new Ring on
// membership change. All methods are safe for concurrent use.
type Ring struct {
	nodes      []string // sorted, unique
	vnodes     []vnode  // sorted by hash (empty in rendezvous mode)
	rendezvous bool
}

// New builds a ring over the node names. Names must be non-empty and
// unique; order does not matter (they are sorted, so two processes that
// learn the membership in different orders agree on placement).
func New(nodes []string, opt Options) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("ring: empty node set")
	}
	if opt.Replicas <= 0 {
		opt.Replicas = DefaultReplicas
	}
	if opt.RendezvousBelow <= 0 {
		opt.RendezvousBelow = DefaultRendezvousBelow
	}
	sorted := make([]string, len(nodes))
	copy(sorted, nodes)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("ring: empty node name")
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("ring: duplicate node %q", n)
		}
	}
	r := &Ring{nodes: sorted}
	if len(sorted) < opt.RendezvousBelow {
		r.rendezvous = true
		return r, nil
	}
	r.vnodes = make([]vnode, 0, len(sorted)*opt.Replicas)
	for ni, name := range sorted {
		for i := 0; i < opt.Replicas; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: hashString(fmt.Sprintf("%s\x00%d", name, i)), node: ni})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (vanishingly rare) break by node index so the sort,
		// and therefore placement, is still deterministic.
		return a.node < b.node
	})
	return r, nil
}

// hashString is seed-free 64-bit FNV-1a followed by a splitmix64
// finalizer. FNV alone leaves the high bits of short, similar strings
// nearly identical ("cfg-…01" vs "cfg-…02" land adjacent on the circle),
// which collapses vnode spread; the finalizer avalanches every input bit
// across the word. Both stages are fixed constants — stable across
// processes, hosts, and releases, which is what lets placement survive
// restarts.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Nodes returns the sorted membership (a copy).
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len returns the pool size.
func (r *Ring) Len() int { return len(r.nodes) }

// Rendezvous reports whether the pool is small enough to use rendezvous
// scoring instead of the vnode circle.
func (r *Ring) Rendezvous() bool { return r.rendezvous }

// Primary returns the key's preferred node.
func (r *Ring) Primary(key string) string { return r.Sequence(key)[0] }

// Sequence returns every node in the key's deterministic preference
// order: the primary first, then the fallback replicas a failover should
// try. The slice is freshly allocated.
func (r *Ring) Sequence(key string) []string {
	if r.rendezvous {
		return r.rendezvousSequence(key)
	}
	kh := hashString(key)
	i := sort.Search(len(r.vnodes), func(j int) bool { return r.vnodes[j].hash >= kh })
	out := make([]string, 0, len(r.nodes))
	seen := make([]bool, len(r.nodes))
	for scanned := 0; scanned < len(r.vnodes) && len(out) < len(r.nodes); scanned++ {
		v := r.vnodes[(i+scanned)%len(r.vnodes)]
		if !seen[v.node] {
			seen[v.node] = true
			out = append(out, r.nodes[v.node])
		}
	}
	return out
}

// rendezvousSequence orders nodes by descending HRW score.
func (r *Ring) rendezvousSequence(key string) []string {
	type scored struct {
		score uint64
		node  string
	}
	ss := make([]scored, len(r.nodes))
	for i, n := range r.nodes {
		ss[i] = scored{score: hashString(n + "\x00" + key), node: n}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].node < ss[j].node
	})
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.node
	}
	return out
}

// PickBounded walks the key's preference sequence and returns the first
// node whose load, after taking this request, stays within factor times
// the pool's average load (the consistent-hashing-with-bounded-loads
// rule). load reports each node's current load; factor <= 1 is treated
// as 1.25. Because ceil(factor·(total+1)/n) is at least the average,
// some node always qualifies; the primary wins whenever it has room, so
// affinity is only sacrificed under genuine imbalance.
func (r *Ring) PickBounded(key string, load func(node string) int, factor float64) string {
	if factor <= 1 {
		factor = 1.25
	}
	total := 0
	for _, n := range r.nodes {
		total += load(n)
	}
	// Capacity per node: ceil(factor * (total+1) / n), counting the
	// incoming request in the total so the bound can never be zero.
	want := factor * float64(total+1) / float64(len(r.nodes))
	bound := int(want)
	if float64(bound) < want {
		bound++
	}
	if bound < 1 {
		bound = 1
	}
	seq := r.Sequence(key)
	for _, n := range seq {
		if load(n)+1 <= bound {
			return n
		}
	}
	return seq[0]
}
