package ring

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// sampleKeys generates a deterministic key population (seeded, so every
// run and every host sees the same keys — the tests below are exact, not
// statistical).
func sampleKeys(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("cfg-%016x-%08x", rng.Uint64(), i)
	}
	return keys
}

func poolNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("node-%02d", i)
	}
	return names
}

func mustNew(t *testing.T, nodes []string, opt Options) *Ring {
	t.Helper()
	r, err := New(nodes, opt)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestConstructionErrors pins the membership validation.
func TestConstructionErrors(t *testing.T) {
	for _, tc := range []struct {
		name  string
		nodes []string
	}{
		{"empty set", nil},
		{"empty name", []string{"a", ""}},
		{"duplicate", []string{"a", "b", "a"}},
	} {
		if _, err := New(tc.nodes, Options{}); err == nil {
			t.Errorf("%s: New accepted %v", tc.name, tc.nodes)
		}
	}
}

// TestRemovalRemapsOnlyVictimKeys is the consistent-hashing contract on
// the vnode ring: removing one of N nodes moves exactly the keys that
// node owned and nothing else, and that share is ~K/N.
func TestRemovalRemapsOnlyVictimKeys(t *testing.T) {
	const pool, nKeys = 10, 10000
	nodes := poolNames(pool)
	keys := sampleKeys(nKeys, 1)
	full := mustNew(t, nodes, Options{})

	for _, victim := range []int{0, 3, pool - 1} {
		var rest []string
		for i, n := range nodes {
			if i != victim {
				rest = append(rest, n)
			}
		}
		shrunk := mustNew(t, rest, Options{})
		moved, onVictim := 0, 0
		for _, k := range keys {
			before, after := full.Primary(k), shrunk.Primary(k)
			if before == nodes[victim] {
				onVictim++
				continue
			}
			if before != after {
				moved++
			}
		}
		if moved != 0 {
			t.Errorf("removing %s moved %d keys that it did not own", nodes[victim], moved)
		}
		// The victim's share is ~K/N; allow 2x slack for vnode noise.
		if lo, hi := nKeys/(2*pool), 2*nKeys/pool; onVictim < lo || onVictim > hi {
			t.Errorf("victim %s owned %d of %d keys, want within [%d, %d] (~K/N)",
				nodes[victim], onVictim, nKeys, lo, hi)
		}
	}
}

// TestAdditionRemapsOnlyToNewNode: growing the pool by one node moves
// ~K/(N+1) keys, and every moved key moves to the new node.
func TestAdditionRemapsOnlyToNewNode(t *testing.T) {
	const pool, nKeys = 9, 10000
	nodes := poolNames(pool)
	keys := sampleKeys(nKeys, 2)
	small := mustNew(t, nodes, Options{})
	grown := mustNew(t, append(poolNames(pool), "node-new"), Options{})

	moved := 0
	for _, k := range keys {
		before, after := small.Primary(k), grown.Primary(k)
		if before == after {
			continue
		}
		moved++
		if after != "node-new" {
			t.Fatalf("key %s moved %s -> %s, not to the new node", k, before, after)
		}
	}
	if lo, hi := nKeys/(2*(pool+1)), 2*nKeys/(pool+1); moved < lo || moved > hi {
		t.Errorf("adding a node moved %d of %d keys, want within [%d, %d] (~K/(N+1))",
			moved, nKeys, lo, hi)
	}
}

// TestRendezvousRemapMinimal pins the same minimal-disruption property on
// the tiny-pool (rendezvous) path.
func TestRendezvousRemapMinimal(t *testing.T) {
	keys := sampleKeys(10000, 3)
	three := mustNew(t, []string{"a", "b", "c"}, Options{})
	if !three.Rendezvous() {
		t.Fatal("3-node pool did not select rendezvous mode")
	}
	two := mustNew(t, []string{"a", "b"}, Options{})
	for _, k := range keys {
		before, after := three.Primary(k), two.Primary(k)
		if before != "c" && before != after {
			t.Fatalf("key %s moved %s -> %s though its node survived", k, before, after)
		}
	}
}

// TestPrimaryDistribution bounds static skew: with the default vnode
// count, no node's share of 10k keys strays far from uniform.
func TestPrimaryDistribution(t *testing.T) {
	const pool, nKeys = 8, 10000
	r := mustNew(t, poolNames(pool), Options{})
	counts := map[string]int{}
	for _, k := range sampleKeys(nKeys, 4) {
		counts[r.Primary(k)]++
	}
	mean := nKeys / pool
	for node, c := range counts {
		if c > mean*16/10 || c < mean*4/10 {
			t.Errorf("node %s holds %d keys, mean %d: vnode distribution too skewed", node, c, mean)
		}
	}
	if len(counts) != pool {
		t.Errorf("only %d of %d nodes hold keys", len(counts), pool)
	}
}

// TestPickBoundedLoadFactor is the bounded-load guarantee: routing 10k
// keys while counting load keeps every node within ceil(factor * mean),
// deterministically — not a statistical bound.
func TestPickBoundedLoadFactor(t *testing.T) {
	const pool, nKeys = 8, 10000
	factor := 1.25
	r := mustNew(t, poolNames(pool), Options{})
	load := map[string]int{}
	for _, k := range sampleKeys(nKeys, 5) {
		n := r.PickBounded(k, func(node string) int { return load[node] }, factor)
		load[n]++
	}
	total := 0
	for _, c := range load {
		total += c
	}
	if total != nKeys {
		t.Fatalf("placed %d keys, want %d", total, nKeys)
	}
	bound := int(factor*float64(nKeys)/float64(pool)) + 1
	for node, c := range load {
		if c > bound {
			t.Errorf("node %s carries %d keys, bounded-load cap is %d", node, c, bound)
		}
	}
	// Affinity is preserved when balanced: a fresh pass over the same keys
	// with zero load must give the plain primary.
	for _, k := range sampleKeys(64, 5) {
		if got := r.PickBounded(k, func(string) int { return 0 }, factor); got != r.Primary(k) {
			t.Fatalf("unloaded PickBounded(%s) = %s, want primary %s", k, got, r.Primary(k))
		}
	}
}

// TestSequenceCoversAllNodesOnce: the failover order visits every node
// exactly once, starting at the primary.
func TestSequenceCoversAllNodesOnce(t *testing.T) {
	for _, pool := range []int{2, 3, 5, 9} {
		r := mustNew(t, poolNames(pool), Options{})
		for _, k := range sampleKeys(100, 6) {
			seq := r.Sequence(k)
			if len(seq) != pool {
				t.Fatalf("pool %d: sequence has %d entries", pool, len(seq))
			}
			if seq[0] != r.Primary(k) {
				t.Fatalf("pool %d: sequence starts at %s, primary is %s", pool, seq[0], r.Primary(k))
			}
			seen := map[string]bool{}
			for _, n := range seq {
				if seen[n] {
					t.Fatalf("pool %d: node %s repeats in sequence %v", pool, n, seq)
				}
				seen[n] = true
			}
		}
	}
}

// TestDeterministicAcrossConstruction: two rings built from the same
// membership in different input orders agree on every assignment — the
// "restart and nothing moves" contract.
func TestDeterministicAcrossConstruction(t *testing.T) {
	nodes := poolNames(7)
	shuffled := make([]string, len(nodes))
	copy(shuffled, nodes)
	rand.New(rand.NewSource(9)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	a := mustNew(t, nodes, Options{})
	b := mustNew(t, shuffled, Options{})
	for _, k := range sampleKeys(500, 7) {
		if !reflect.DeepEqual(a.Sequence(k), b.Sequence(k)) {
			t.Fatalf("sequence for %s differs across construction orders:\n%v\n%v",
				k, a.Sequence(k), b.Sequence(k))
		}
	}
}

// TestGoldenAssignments pins the exact key→node mapping for both modes.
// These literals are the cross-restart determinism contract: they must
// never change without a deliberate placement-version bump (which moves
// every cached key to a new node and cold-starts the cluster's caches).
func TestGoldenAssignments(t *testing.T) {
	ringPool := mustNew(t, []string{"n0", "n1", "n2", "n3", "n4"}, Options{})
	tinyPool := mustNew(t, []string{"n0", "n1", "n2"}, Options{})
	if ringPool.Rendezvous() || !tinyPool.Rendezvous() {
		t.Fatalf("mode selection drifted: 5-node rendezvous=%v, 3-node rendezvous=%v",
			ringPool.Rendezvous(), tinyPool.Rendezvous())
	}
	golden := []struct {
		key        string
		ring, tiny string
	}{
		{"key-00", "n3", "n0"},
		{"key-01", "n1", "n2"},
		{"key-02", "n1", "n2"},
		{"key-03", "n0", "n2"},
		{"key-04", "n3", "n2"},
		{"key-05", "n3", "n2"},
		{"key-06", "n4", "n0"},
		{"key-07", "n2", "n0"},
		{"key-08", "n2", "n1"},
		{"key-09", "n3", "n0"},
		{"key-10", "n1", "n0"},
		{"key-11", "n3", "n2"},
		{"key-12", "n3", "n0"},
		{"key-13", "n3", "n0"},
		{"key-14", "n1", "n2"},
		{"key-15", "n3", "n0"},
	}
	for _, g := range golden {
		if got := ringPool.Primary(g.key); got != g.ring {
			t.Errorf("ring mode: Primary(%s) = %s, want %s (placement drifted across versions)",
				g.key, got, g.ring)
		}
		if got := tinyPool.Primary(g.key); got != g.tiny {
			t.Errorf("rendezvous mode: Primary(%s) = %s, want %s (placement drifted across versions)",
				g.key, got, g.tiny)
		}
	}
}
