package runcache

import (
	"context"
	"testing"

	"sparc64v/internal/system"
)

// These benchmarks feed scripts/benchdiff.sh, the CI benchmark regression
// gate. allocs/op is the tight, machine-independent signal there; keep each
// benchmark's per-iteration work deterministic so that count stays stable.

func BenchmarkKeyID(b *testing.B) {
	k := testKey(42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if k.ID() == "" {
			b.Fatal("empty id")
		}
	}
}

// BenchmarkGetMemoryHit is the read fast path: one LRU lookup plus the
// defensive report clone handed to the caller.
func BenchmarkGetMemoryHit(b *testing.B) {
	c, err := New(Options{})
	if err != nil {
		b.Fatal(err)
	}
	key := testKey(1)
	ctx := context.Background()
	if _, _, err := c.GetOrRun(ctx, key, func(context.Context) (system.Report, error) {
		return testReport(1), nil
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(key); !ok {
			b.Fatal("lost the cached entry")
		}
	}
}

// BenchmarkGetOrRunMemoryHit adds the singleflight bookkeeping on top of
// the read path — what a warm server request actually pays.
func BenchmarkGetOrRunMemoryHit(b *testing.B) {
	c, err := New(Options{})
	if err != nil {
		b.Fatal(err)
	}
	key := testKey(1)
	ctx := context.Background()
	run := func(context.Context) (system.Report, error) { return testReport(1), nil }
	if _, _, err := c.GetOrRun(ctx, key, run); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, outcome, err := c.GetOrRun(ctx, key, run); err != nil || outcome != OutcomeMemoryHit {
			b.Fatalf("outcome = %v, err = %v", outcome, err)
		}
	}
}

// BenchmarkGetOrRunMiss is the cold path minus the simulation itself:
// leader election, insert, LRU maintenance (with steady-state evictions
// once the table fills).
func BenchmarkGetOrRunMiss(b *testing.B) {
	c, err := New(Options{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	rep := testReport(1)
	run := func(context.Context) (system.Report, error) { return rep, nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, outcome, err := c.GetOrRun(ctx, testKey(int64(i)), run); err != nil || outcome != OutcomeMiss {
			b.Fatalf("outcome = %v, err = %v", outcome, err)
		}
	}
}
