package runcache

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sparc64v/internal/system"
)

// writeEntry populates a disk entry through the public path and returns
// the entry file's bytes and path.
func writeEntry(t *testing.T, dir string, key Key, rep system.Report) (string, []byte) {
	t.Helper()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, outcome, err := c.GetOrRun(context.Background(), key,
		func(context.Context) (system.Report, error) { return rep, nil }); err != nil || outcome != OutcomeMiss {
		t.Fatalf("store: outcome %v err %v", outcome, err)
	}
	path := filepath.Join(dir, key.ID()+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("entry file not written: %v", err)
	}
	return path, b
}

// TestDiskEntryTruncatedAtEveryOffset mirrors the trace-reader truncation
// test: for a valid entry file cut at every byte offset, the cache must
// report a miss — and after the miss, re-running must repopulate a valid
// entry. A partially written entry may cost a re-simulation but can never
// surface a wrong result.
func TestDiskEntryTruncatedAtEveryOffset(t *testing.T) {
	key := testKey(11)
	want := testReport(11)
	_, full := writeEntry(t, t.TempDir(), key, want)

	for cut := 0; cut < len(full); cut++ {
		dir := t.TempDir()
		path := filepath.Join(dir, key.ID()+".json")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := New(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get(key); ok {
			t.Fatalf("cut at %d/%d: truncated entry served as a hit", cut, len(full))
		}
		if s := c.Stats(); s.Corrupt != 1 {
			t.Fatalf("cut at %d: corrupt counter = %d, want 1", cut, s.Corrupt)
		}
		// The corrupt file is gone; a re-run must repopulate and then hit.
		rep, outcome, err := c.GetOrRun(context.Background(), key,
			func(context.Context) (system.Report, error) { return want, nil })
		if err != nil || outcome != OutcomeMiss {
			t.Fatalf("cut at %d: repopulate outcome %v err %v", cut, outcome, err)
		}
		if !reflect.DeepEqual(rep, want) {
			t.Fatalf("cut at %d: repopulated report mismatch", cut)
		}
		c2, _ := New(Options{Dir: dir})
		if _, ok := c2.Get(key); !ok {
			t.Fatalf("cut at %d: repopulated entry not readable", cut)
		}
	}
}

// TestDiskEntryBitFlips flips one bit at a spread of offsets across an
// entry file; every flip must produce either a miss or the exact original
// report — never a silently different result.
func TestDiskEntryBitFlips(t *testing.T) {
	key := testKey(13)
	want := testReport(13)
	_, full := writeEntry(t, t.TempDir(), key, want)

	stride := len(full)/97 + 1
	for off := 0; off < len(full); off += stride {
		for bit := 0; bit < 8; bit += 3 {
			dir := t.TempDir()
			mut := append([]byte(nil), full...)
			mut[off] ^= 1 << bit
			path := filepath.Join(dir, key.ID()+".json")
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			c, _ := New(Options{Dir: dir})
			got, ok := c.Get(key)
			if ok && !reflect.DeepEqual(got, want) {
				t.Fatalf("flip bit %d at offset %d: corrupted entry served wrong report", bit, off)
			}
		}
	}
}

// TestDiskEntryWrongKey pins that an entry renamed to another key's path
// (operator error, backup restore) is rejected by the embedded-key check.
func TestDiskEntryWrongKey(t *testing.T) {
	dir := t.TempDir()
	_, full := writeEntry(t, dir, testKey(1), testReport(1))
	other := testKey(2)
	if err := os.WriteFile(filepath.Join(dir, other.ID()+".json"), full, 0o644); err != nil {
		t.Fatal(err)
	}
	c, _ := New(Options{Dir: dir})
	if _, ok := c.Get(other); ok {
		t.Fatal("entry with mismatched embedded key served as a hit")
	}
	if s := c.Stats(); s.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", s.Corrupt)
	}
}

// TestDiskEntryEmptyAndGarbage covers zero-length and non-JSON files.
func TestDiskEntryEmptyAndGarbage(t *testing.T) {
	for _, tc := range []struct {
		name string
		body []byte
	}{
		{"empty", nil},
		{"garbage", []byte("not json at all \x00\xff")},
		{"wrong-shape", []byte(`[1,2,3]`)},
		{"valid-json-no-envelope", []byte(`{"foo":"bar"}`)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			key := testKey(1)
			if err := os.WriteFile(filepath.Join(dir, key.ID()+".json"), tc.body, 0o644); err != nil {
				t.Fatal(err)
			}
			c, _ := New(Options{Dir: dir})
			if _, ok := c.Get(key); ok {
				t.Fatal("invalid entry served as a hit")
			}
		})
	}
}
