package runcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sparc64v/internal/system"
)

// The on-disk tier stores one JSON file per entry under the cache
// directory, named <key-ID>.json. Every write goes to a temp file in the
// same directory followed by an atomic rename, so a reader never observes
// a half-written entry under the final name. A crash mid-write can still
// leave a stale temp file (ignored — it never matches an ID) or, on
// filesystems without atomic-rename durability, a truncated final file;
// the checksum envelope below catches that case and any later corruption.

// diskEntry is the integrity envelope around a serialized report.
type diskEntry struct {
	// Key is the full content key, re-verified on load so a renamed or
	// garbled file can never satisfy the wrong request.
	Key Key `json:"key"`
	// Sum is the hex SHA-256 of the Report bytes.
	Sum string `json:"sha256"`
	// Report is the serialized system.Report.
	Report json.RawMessage `json:"report"`
}

// ensureDir creates the cache directory.
func ensureDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	return nil
}

// entryPath returns the final path for a key ID.
func (c *Cache) entryPath(id string) string {
	return filepath.Join(c.dir, id+".json")
}

// loadDisk reads and verifies one entry. Every failure mode — missing
// file, truncated or bit-flipped content, checksum mismatch, key mismatch,
// undecodable report — is treated as a miss; corrupt files are deleted so
// they are rewritten on the next store.
func (c *Cache) loadDisk(id string, key Key) (rep system.Report, ok bool) {
	if c.dir == "" {
		return rep, false
	}
	path := c.entryPath(id)
	b, err := os.ReadFile(path)
	if err != nil {
		// Missing file: a stat-fail, not a read — keep it out of the
		// read-latency distribution.
		return rep, false
	}
	defer diskReadSeconds.ObserveSince(time.Now())
	var e diskEntry
	if err := json.Unmarshal(b, &e); err != nil {
		c.discardCorrupt(path)
		return rep, false
	}
	if e.Key.ID() != id {
		c.discardCorrupt(path)
		return rep, false
	}
	sum := sha256.Sum256(e.Report)
	if hex.EncodeToString(sum[:]) != e.Sum {
		c.discardCorrupt(path)
		return rep, false
	}
	if err := json.Unmarshal(e.Report, &rep); err != nil {
		c.discardCorrupt(path)
		return rep, false
	}
	return rep, true
}

// readEntryFile reads one stored envelope verbatim (for EntryBytes; the
// peer that asked verifies it).
func readEntryFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// storeDisk persists one entry atomically. Failures are recorded but not
// fatal: the cache degrades to memory-only for that entry.
func (c *Cache) storeDisk(id string, key Key, rep system.Report) {
	if c.dir == "" {
		return
	}
	defer diskWriteSeconds.ObserveSince(time.Now())
	b, err := EncodeEntry(key, rep)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, id+".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.entryPath(id)); err != nil {
		os.Remove(tmp.Name())
	}
}

// discardCorrupt counts and removes a rejected entry file.
func (c *Cache) discardCorrupt(path string) {
	c.mu.Lock()
	c.stats.Corrupt++
	c.mu.Unlock()
	evCorrupt.Inc()
	os.Remove(path)
}
