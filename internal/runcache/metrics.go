package runcache

import (
	"sparc64v/internal/obs"
)

// Package-level cache metrics in the process-wide registry. These overlap
// with the per-Cache Stats() snapshot on purpose: Stats is the per-instance
// programmatic view (server JSON, tests), while these series aggregate
// every cache in the process for /metrics and add the latency axes Stats
// cannot express. Event names mirror Outcome.String() so logs, responses
// and exposition use one vocabulary.
var (
	evMemHit      = cacheEvent("hit")
	evDiskHit     = cacheEvent("hit-disk")
	evPeerHit     = cacheEvent("hit-peer")
	evMiss        = cacheEvent("miss")
	evShared      = cacheEvent("dedup")
	evError       = cacheEvent("error")
	evCorrupt     = cacheEvent("corrupt")
	evPeerCorrupt = cacheEvent("corrupt-peer")
	evEviction    = cacheEvent("eviction")

	diskReadSeconds = obs.Default().Histogram("sparc64v_runcache_disk_read_seconds",
		"Wall time of disk-tier entry reads (including checksum verification).", nil)
	diskWriteSeconds = obs.Default().Histogram("sparc64v_runcache_disk_write_seconds",
		"Wall time of disk-tier entry writes (serialize, temp file, rename).", nil)
	runSeconds = obs.Default().Histogram("sparc64v_runcache_run_seconds",
		"Wall time of cache-miss simulations executed by flight leaders.", nil)
)

func cacheEvent(event string) *obs.Counter {
	return obs.Default().Counter("sparc64v_runcache_events_total",
		"Run-cache events, by kind.", obs.L("event", event))
}
