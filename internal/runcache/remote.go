package runcache

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"sparc64v/internal/system"
)

// The remote tier turns one node's cache hit into a cluster-wide hit.
// A Cache configured with SetRemote consults it after the memory and
// disk tiers miss and before simulating: the fetcher (internal/server's
// PeerFetcher in production) asks peer nodes for the entry over HTTP.
//
// Trust boundary: a peer's bytes are untrusted input. Fetch returns the
// raw entry envelope and the cache re-verifies it locally — key identity
// and content checksum — exactly as it verifies its own disk files. A
// corrupted or mismatched peer response is counted (Stats.PeerCorrupt,
// the "corrupt-peer" event) and treated as a miss, never returned.

// Remote fetches a serialized entry envelope (EncodeEntry bytes) for a
// key from somewhere else — peer nodes, an object store. ok=false means
// the remote tier has no entry (or could not be reached); the caller
// falls through to simulating. Implementations must not recurse into
// another Cache's remote tier: peer lookups answer from local tiers
// only, or a miss could ricochet around the cluster.
type Remote interface {
	Fetch(ctx context.Context, key Key) ([]byte, bool)
}

// SetRemote installs the remote tier. Call before serving traffic;
// passing nil disables remote lookups.
func (c *Cache) SetRemote(r Remote) {
	c.mu.Lock()
	c.remote = r
	c.mu.Unlock()
}

// EncodeEntry serializes a report into the integrity envelope peers and
// the disk tier share: the full key (so a misrouted entry can never
// satisfy the wrong request) plus a SHA-256 over the report bytes.
func EncodeEntry(key Key, rep system.Report) ([]byte, error) {
	rb, err := json.Marshal(rep)
	if err != nil {
		return nil, fmt.Errorf("runcache: encode entry report: %w", err)
	}
	sum := sha256.Sum256(rb)
	b, err := json.Marshal(diskEntry{Key: key, Sum: hex.EncodeToString(sum[:]), Report: rb})
	if err != nil {
		return nil, fmt.Errorf("runcache: encode entry: %w", err)
	}
	return b, nil
}

// DecodeEntry parses and verifies an entry envelope against the key the
// caller asked for. Every failure mode — undecodable envelope, key
// mismatch, checksum mismatch, undecodable report — is an error; the
// caller treats it as a miss.
func DecodeEntry(key Key, b []byte) (system.Report, error) {
	var rep system.Report
	var e diskEntry
	if err := json.Unmarshal(b, &e); err != nil {
		return rep, fmt.Errorf("runcache: entry envelope: %w", err)
	}
	if e.Key.ID() != key.ID() {
		return rep, fmt.Errorf("runcache: entry key %s does not match requested %s", e.Key.ID(), key.ID())
	}
	sum := sha256.Sum256(e.Report)
	if hex.EncodeToString(sum[:]) != e.Sum {
		return rep, fmt.Errorf("runcache: entry checksum mismatch")
	}
	if err := json.Unmarshal(e.Report, &rep); err != nil {
		return rep, fmt.Errorf("runcache: entry report: %w", err)
	}
	return rep, nil
}

// EntryBytes serves one entry to a peer: the envelope for id from the
// local memory or disk tier, or ok=false. It deliberately never consults
// the remote tier (no fetch recursion) and never touches the hit
// counters — a peer's probe is not a local request. Disk bytes are
// returned as stored; the requesting side verifies them, so a corrupted
// file costs the peer a rejected fetch, never a wrong result.
func (c *Cache) EntryBytes(id string) ([]byte, bool) {
	c.mu.Lock()
	if n, ok := c.mem[id]; ok {
		key, rep := n.key, cloneReport(n.rep)
		c.mu.Unlock()
		b, err := EncodeEntry(key, rep)
		if err != nil {
			return nil, false
		}
		return b, true
	}
	dir := c.dir
	c.mu.Unlock()
	if dir == "" {
		return nil, false
	}
	b, err := readEntryFile(c.entryPath(id))
	if err != nil {
		return nil, false
	}
	return b, true
}

// fetchRemote is the miss path's remote-tier probe (called by lead with
// no locks held). On a verified hit the entry is persisted to the local
// disk tier, so the next request — local or a further peer's — is served
// without re-crossing the network.
func (c *Cache) fetchRemote(ctx context.Context, id string, key Key) (system.Report, bool) {
	c.mu.Lock()
	remote := c.remote
	c.mu.Unlock()
	if remote == nil {
		return system.Report{}, false
	}
	b, ok := remote.Fetch(ctx, key)
	if !ok {
		return system.Report{}, false
	}
	rep, err := DecodeEntry(key, b)
	if err != nil {
		c.mu.Lock()
		c.stats.PeerCorrupt++
		c.mu.Unlock()
		evPeerCorrupt.Inc()
		return system.Report{}, false
	}
	c.storeDisk(id, key, rep)
	return rep, true
}
