package runcache

import (
	"context"
	"encoding/json"
	"testing"

	"sparc64v/internal/system"
)

// scriptedRemote is a Remote backed by a map of envelope bytes, with an
// optional corruptor applied to every response.
type scriptedRemote struct {
	entries map[string][]byte
	corrupt func([]byte) []byte
	fetches int
}

func (r *scriptedRemote) Fetch(_ context.Context, key Key) ([]byte, bool) {
	r.fetches++
	b, ok := r.entries[key.ID()]
	if !ok {
		return nil, false
	}
	if r.corrupt != nil {
		b = r.corrupt(b)
	}
	return b, true
}

func remoteTestKey(seed int64) Key {
	return Key{ConfigHash: "cfg", Workload: "wl", ProfileHash: "prof", Seed: seed, Insts: 1000, Version: "v"}
}

func remoteTestReport(tag uint64) system.Report {
	r := system.Report{Name: "cfg", Workload: "wl", Cycles: 100 + tag, Committed: 50 + tag}
	r.CPUs = make([]system.CPUReport, 1)
	r.CPUs[0].Core.Cycles = 90 + tag
	return r
}

// mustEncode builds envelope bytes for the scripted remote.
func mustEncode(t *testing.T, key Key, rep system.Report) []byte {
	t.Helper()
	b, err := EncodeEntry(key, rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRemoteHit: a key missing from memory and disk but present at the
// remote is served without running, reported as OutcomeRemoteHit, and
// persisted to the local disk tier for the next process.
func TestRemoteHit(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	key, rep := remoteTestKey(1), remoteTestReport(1)
	remote := &scriptedRemote{entries: map[string][]byte{key.ID(): mustEncode(t, key, rep)}}
	c.SetRemote(remote)

	ran := false
	got, outcome, err := c.GetOrRun(context.Background(), key, func(context.Context) (system.Report, error) {
		ran = true
		return system.Report{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("remote hit still ran the simulation")
	}
	if outcome != OutcomeRemoteHit || outcome.String() != "hit-peer" || !outcome.Cached() {
		t.Fatalf("outcome = %v (%s), want OutcomeRemoteHit/hit-peer/cached", outcome, outcome)
	}
	a, _ := json.Marshal(got)
	b, _ := json.Marshal(rep)
	if string(a) != string(b) {
		t.Fatalf("remote report differs:\n%s\n%s", a, b)
	}
	if s := c.Stats(); s.PeerHits != 1 || s.Misses != 0 || s.PeerCorrupt != 0 {
		t.Fatalf("stats = %+v, want 1 peer hit", s)
	}
	if s := c.Stats(); s.HitInstructions != rep.Committed {
		t.Fatalf("HitInstructions = %d, want %d", s.HitInstructions, rep.Committed)
	}

	// The fetched entry was persisted: a fresh cache over the same dir
	// serves it from disk without touching the remote.
	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	fetchesBefore := remote.fetches
	c2.SetRemote(remote)
	if _, outcome, err := c2.GetOrRun(context.Background(), key, nil); err != nil || outcome != OutcomeDiskHit {
		t.Fatalf("replay outcome = %v err=%v, want disk hit", outcome, err)
	}
	if remote.fetches != fetchesBefore {
		t.Fatal("disk-tier hit still crossed the network")
	}
}

// TestRemoteCorruptTreatedAsMiss covers every rejection mode: bit-flipped
// payload, wrong-key envelope, and garbage bytes each count PeerCorrupt
// and fall through to the runner — a corrupt peer can cost a fetch, never
// a wrong result.
func TestRemoteCorruptTreatedAsMiss(t *testing.T) {
	key, rep := remoteTestKey(2), remoteTestReport(2)
	good := mustEncode(t, key, rep)
	otherKey := remoteTestKey(3)

	for _, tc := range []struct {
		name    string
		payload []byte
	}{
		{"bit flip", flipByte(good, len(good)/2)},
		{"wrong key", mustEncode(t, otherKey, rep)},
		{"garbage", []byte("{nope")},
		{"truncated", good[:len(good)/2]},
	} {
		c, err := New(Options{})
		if err != nil {
			t.Fatal(err)
		}
		c.SetRemote(&scriptedRemote{entries: map[string][]byte{key.ID(): tc.payload}})
		ran := false
		got, outcome, err := c.GetOrRun(context.Background(), key, func(context.Context) (system.Report, error) {
			ran = true
			return rep, nil
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !ran || outcome != OutcomeMiss {
			t.Fatalf("%s: ran=%v outcome=%v, want a simulated miss", tc.name, ran, outcome)
		}
		if got.Cycles != rep.Cycles {
			t.Fatalf("%s: wrong report returned", tc.name)
		}
		if s := c.Stats(); s.PeerCorrupt != 1 || s.PeerHits != 0 {
			t.Fatalf("%s: stats = %+v, want 1 rejected peer entry", tc.name, s)
		}
	}
}

func flipByte(b []byte, i int) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	out[i] ^= 0x40
	return out
}

// TestEntryBytesServesBothTiers: EntryBytes answers from memory (fresh
// envelope) and from disk (stored bytes), never from the remote tier,
// and its responses round-trip through DecodeEntry.
func TestEntryBytesServesBothTiers(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// A remote that panics proves EntryBytes never recurses outward.
	c.SetRemote(panicRemote{})
	key, rep := remoteTestKey(4), remoteTestReport(4)
	c.Put(key, rep)

	b, ok := c.EntryBytes(key.ID())
	if !ok {
		t.Fatal("memory-tier entry not served")
	}
	if got, err := DecodeEntry(key, b); err != nil || got.Cycles != rep.Cycles {
		t.Fatalf("memory envelope decode: %v", err)
	}

	// Fresh cache, same dir: the memory tier is empty, so this serves the
	// stored disk bytes.
	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c2.SetRemote(panicRemote{})
	b2, ok := c2.EntryBytes(key.ID())
	if !ok {
		t.Fatal("disk-tier entry not served")
	}
	if got, err := DecodeEntry(key, b2); err != nil || got.Cycles != rep.Cycles {
		t.Fatalf("disk envelope decode: %v", err)
	}

	if _, ok := c2.EntryBytes("no-such-id"); ok {
		t.Fatal("EntryBytes fabricated a missing entry")
	}
	// Serving a peer is not a local hit.
	if s := c2.Stats(); s.MemoryHits != 0 || s.DiskHits != 0 || s.PeerHits != 0 {
		t.Fatalf("EntryBytes polluted hit stats: %+v", s)
	}
}

type panicRemote struct{}

func (panicRemote) Fetch(context.Context, Key) ([]byte, bool) {
	panic("EntryBytes must never consult the remote tier")
}

// TestRemoteMissFallsThrough: a remote with no entry neither errors nor
// pollutes the corrupt counter.
func TestRemoteMissFallsThrough(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	remote := &scriptedRemote{entries: map[string][]byte{}}
	c.SetRemote(remote)
	key, rep := remoteTestKey(5), remoteTestReport(5)
	_, outcome, err := c.GetOrRun(context.Background(), key, func(context.Context) (system.Report, error) {
		return rep, nil
	})
	if err != nil || outcome != OutcomeMiss {
		t.Fatalf("outcome=%v err=%v, want plain miss", outcome, err)
	}
	if remote.fetches != 1 {
		t.Fatalf("remote consulted %d times, want 1", remote.fetches)
	}
	if s := c.Stats(); s.PeerCorrupt != 0 || s.PeerHits != 0 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// Hits() folds the peer tier in.
	c.SetRemote(&scriptedRemote{entries: map[string][]byte{key.ID(): mustEncode(t, key, rep)}})
	key2 := remoteTestKey(6)
	c.SetRemote(&scriptedRemote{entries: map[string][]byte{key2.ID(): mustEncode(t, key2, rep)}})
	if _, outcome, _ := c.GetOrRun(context.Background(), key2, nil); outcome != OutcomeRemoteHit {
		t.Fatalf("outcome = %v, want remote hit", outcome)
	}
	if got := c.Stats().Hits(); got != 1 {
		t.Fatalf("Stats.Hits() = %d, want 1 (peer hits included)", got)
	}
}
