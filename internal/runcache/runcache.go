// Package runcache is a deterministic, content-addressed cache for
// simulation results.
//
// The paper's methodology re-ran the same trace-driven model thousands of
// times across parameter variants from pre-RTL studies through silicon
// verification; most of those runs repeat earlier ones exactly. A run here
// is fully determined by (configuration, workload, seed, trace length,
// model version), so its result can be addressed by a canonical hash of
// that tuple (internal/config's Canonical()/Hash() layer) and served from a
// cache instead of re-simulated.
//
// The cache is two-tiered: a bounded in-memory LRU for hot entries, and an
// optional on-disk tier (one JSON file per entry, written atomically via
// temp-file + rename) that makes sweeps incremental across process runs.
// Disk entries carry a checksum envelope; a partially written or corrupted
// file is detected, discarded, and treated as a miss — never returned as a
// wrong result. Concurrent requests for the same key share one underlying
// simulation (singleflight dedup), which is what lets an HTTP service
// absorb a burst of identical requests with a single model run.
package runcache

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"sparc64v/internal/system"
)

// Key identifies one simulation run by content, not by name: every field
// that can change the result participates. ConfigHash covers the whole
// machine configuration including warmup (config.Config.Hash over the
// effective config); ProfileHash covers the synthetic workload's
// statistical description, so two profiles that share a display name but
// differ in shape never collide. Version is the model version
// (core.ModelVersion) — bumping it invalidates every prior entry when the
// simulator's timing semantics change.
type Key struct {
	ConfigHash  string `json:"config_hash"`
	Workload    string `json:"workload"`
	ProfileHash string `json:"profile_hash"`
	Seed        int64  `json:"seed"`
	Insts       int    `json:"insts"`
	Version     string `json:"version"`
	// Sampling is the canonical-JSON sampled-simulation schedule, or the
	// empty string for a full run. Sampled Reports are estimates, so they
	// must never be served for full-run requests (or vice versa); putting
	// the schedule in the key keeps the two populations disjoint.
	Sampling string `json:"sampling,omitempty"`
}

// ID returns the key's content address: a hex SHA-256 over an unambiguous
// (length-prefix-free, NUL-separated) serialization of the fields. It is
// stable across processes and hosts.
func (k Key) ID() string {
	sum := sha256.Sum256(fmt.Appendf(nil, "%s\x00%s\x00%s\x00%d\x00%d\x00%s\x00%s",
		k.ConfigHash, k.Workload, k.ProfileHash, k.Seed, k.Insts, k.Version, k.Sampling))
	return hex.EncodeToString(sum[:])
}

// Outcome classifies how a GetOrRun request was served.
type Outcome int

const (
	// OutcomeMemoryHit: served from the in-memory LRU tier.
	OutcomeMemoryHit Outcome = iota
	// OutcomeDiskHit: served from the on-disk tier (and promoted).
	OutcomeDiskHit
	// OutcomeMiss: simulated by this request's runner.
	OutcomeMiss
	// OutcomeShared: joined another request's in-flight simulation.
	OutcomeShared
	// OutcomeRemoteHit: fetched from a peer node's cache (remote tier)
	// and persisted locally.
	OutcomeRemoteHit
)

// Cached reports whether the outcome avoided running a new simulation in
// this request (hits and shared flights).
func (o Outcome) Cached() bool { return o != OutcomeMiss }

// String names the outcome for responses and logs.
func (o Outcome) String() string {
	switch o {
	case OutcomeMemoryHit:
		return "hit"
	case OutcomeDiskHit:
		return "hit-disk"
	case OutcomeMiss:
		return "miss"
	case OutcomeShared:
		return "dedup"
	case OutcomeRemoteHit:
		return "hit-peer"
	}
	return "outcome?"
}

// Options configures a Cache.
type Options struct {
	// Dir is the on-disk tier's directory; "" disables the disk tier
	// (memory-only cache). The directory is created if missing.
	Dir string
	// MaxMemEntries bounds the in-memory LRU tier; <= 0 means 512.
	// Evicted entries remain on disk (when a Dir is set) and re-enter
	// memory on their next access.
	MaxMemEntries int
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	// MemoryHits and DiskHits count requests served from each tier.
	MemoryHits, DiskHits uint64
	// PeerHits counts requests served from a peer node via the remote
	// tier (verified, then persisted locally).
	PeerHits uint64
	// Misses counts requests that ran a new simulation.
	Misses uint64
	// Shared counts requests that joined an in-flight simulation.
	Shared uint64
	// Errors counts runner failures (never cached).
	Errors uint64
	// Corrupt counts disk entries rejected by the integrity checks
	// (partial writes, bit flips, key mismatches) and discarded.
	Corrupt uint64
	// PeerCorrupt counts remote-tier responses rejected by the same
	// integrity checks (checksum, key identity) and treated as misses.
	PeerCorrupt uint64
	// Evictions counts LRU evictions from the memory tier.
	Evictions uint64
	// HitInstructions accumulates the committed instructions of every
	// cache-served report — simulation work avoided, in instructions.
	HitInstructions uint64
}

// Hits returns the total cache-served requests (all tiers + shared).
func (s Stats) Hits() uint64 { return s.MemoryHits + s.DiskHits + s.PeerHits + s.Shared }

// flight is one in-progress simulation that identical concurrent requests
// attach to.
type flight struct {
	done chan struct{}
	rep  system.Report
	err  error
}

// memEntry is one LRU node. The key rides along so the entry can be
// re-enveloped for a peer (EntryBytes) without a disk round-trip.
type memEntry struct {
	id  string
	key Key
	rep system.Report
}

// Cache is the two-tier result cache. All methods are safe for concurrent
// use.
type Cache struct {
	dir    string
	maxMem int

	mu      sync.Mutex
	remote  Remote
	mem     map[string]*lruNode
	front   *lruNode // most recently used
	back    *lruNode // least recently used
	n       int
	flights map[string]*flight
	stats   Stats
}

// lruNode is an intrusive doubly-linked LRU list node.
type lruNode struct {
	prev, next *lruNode
	memEntry
}

// New builds a cache, creating the disk directory when one is configured.
func New(o Options) (*Cache, error) {
	if o.MaxMemEntries <= 0 {
		o.MaxMemEntries = 512
	}
	c := &Cache{
		dir:     o.Dir,
		maxMem:  o.MaxMemEntries,
		mem:     make(map[string]*lruNode),
		flights: make(map[string]*flight),
	}
	if o.Dir != "" {
		if err := ensureDir(o.Dir); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of entries in the memory tier.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// cloneReport detaches the report from cache-internal storage so callers
// can't alias each other through the shared CPUs slice.
func cloneReport(r system.Report) system.Report {
	if r.CPUs != nil {
		cp := make([]system.CPUReport, len(r.CPUs))
		copy(cp, r.CPUs)
		r.CPUs = cp
	}
	return r
}

// Get returns the cached report for key, consulting memory then disk,
// without running anything on a miss.
func (c *Cache) Get(key Key) (system.Report, bool) {
	id := key.ID()
	c.mu.Lock()
	if n, ok := c.mem[id]; ok {
		c.moveToFront(n)
		c.stats.MemoryHits++
		c.stats.HitInstructions += n.rep.Committed
		rep := cloneReport(n.rep)
		c.mu.Unlock()
		evMemHit.Inc()
		return rep, true
	}
	c.mu.Unlock()
	if rep, ok := c.loadDisk(id, key); ok {
		c.mu.Lock()
		c.insert(id, key, rep)
		c.stats.DiskHits++
		c.stats.HitInstructions += rep.Committed
		c.mu.Unlock()
		evDiskHit.Inc()
		return cloneReport(rep), true
	}
	return system.Report{}, false
}

// Put inserts a simulated result under key: the memory tier and, when
// configured, the disk tier. It counts one miss, mirroring GetOrRun's
// accounting — a Put is the completion of a request the cache could not
// serve, so Hits+Misses still totals the requests a Get/Put caller made.
// The lockstep batch driver (internal/core RunBatch) uses Get/Put around a
// batched run, where GetOrRun's one-runner-per-key shape does not fit:
// hits are peeled off the batch up front and every simulated member is
// stored individually on completion. Failed or cancelled members are never
// Put, preserving GetOrRun's never-cache-errors rule.
func (c *Cache) Put(key Key, rep system.Report) {
	id := key.ID()
	c.storeDisk(id, key, rep)
	c.mu.Lock()
	c.insert(id, key, rep)
	c.stats.Misses++
	c.mu.Unlock()
	evMiss.Inc()
}

// GetOrRun returns the cached report for key, or executes run exactly once
// to produce it. Concurrent calls with the same key share one execution:
// the first caller becomes the leader and runs with its own context; later
// callers block until the leader finishes (or their own context is
// cancelled) and receive the leader's result with OutcomeShared. Failed
// runs are never cached — the error propagates to the leader and every
// waiter, and the next request retries.
func (c *Cache) GetOrRun(ctx context.Context, key Key, run func(context.Context) (system.Report, error)) (system.Report, Outcome, error) {
	id := key.ID()
	c.mu.Lock()
	if n, ok := c.mem[id]; ok {
		c.moveToFront(n)
		c.stats.MemoryHits++
		c.stats.HitInstructions += n.rep.Committed
		rep := cloneReport(n.rep)
		c.mu.Unlock()
		evMemHit.Inc()
		return rep, OutcomeMemoryHit, nil
	}
	if f, ok := c.flights[id]; ok {
		c.stats.Shared++
		c.mu.Unlock()
		evShared.Inc()
		select {
		case <-f.done:
			if f.err != nil {
				return system.Report{}, OutcomeShared, f.err
			}
			c.mu.Lock()
			c.stats.HitInstructions += f.rep.Committed
			c.mu.Unlock()
			return cloneReport(f.rep), OutcomeShared, nil
		case <-ctx.Done():
			return system.Report{}, OutcomeShared, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[id] = f
	c.mu.Unlock()

	rep, outcome, err := c.lead(ctx, id, key, run)
	f.rep, f.err = rep, err
	c.mu.Lock()
	delete(c.flights, id)
	switch {
	case err != nil:
		c.stats.Errors++
		evError.Inc()
	default:
		c.insert(id, key, rep)
		switch outcome {
		case OutcomeDiskHit:
			c.stats.DiskHits++
			c.stats.HitInstructions += rep.Committed
			evDiskHit.Inc()
		case OutcomeRemoteHit:
			c.stats.PeerHits++
			c.stats.HitInstructions += rep.Committed
			evPeerHit.Inc()
		default:
			c.stats.Misses++
			evMiss.Inc()
		}
	}
	c.mu.Unlock()
	close(f.done)
	if err != nil {
		return rep, outcome, err
	}
	return cloneReport(rep), outcome, nil
}

// lead is the flight leader's path: disk tier first, then the remote
// (peer) tier, then the runner. A successful simulation is persisted to
// disk before the flight completes.
func (c *Cache) lead(ctx context.Context, id string, key Key, run func(context.Context) (system.Report, error)) (system.Report, Outcome, error) {
	if rep, ok := c.loadDisk(id, key); ok {
		return rep, OutcomeDiskHit, nil
	}
	if rep, ok := c.fetchRemote(ctx, id, key); ok {
		return rep, OutcomeRemoteHit, nil
	}
	t0 := time.Now()
	rep, err := run(ctx)
	runSeconds.ObserveSince(t0)
	if err != nil {
		return rep, OutcomeMiss, err
	}
	c.storeDisk(id, key, rep)
	return rep, OutcomeMiss, nil
}

// ---- memory LRU tier (callers hold c.mu) ----

func (c *Cache) insert(id string, key Key, rep system.Report) {
	if n, ok := c.mem[id]; ok {
		n.rep = rep
		c.moveToFront(n)
		return
	}
	n := &lruNode{memEntry: memEntry{id: id, key: key, rep: cloneReport(rep)}}
	c.mem[id] = n
	c.pushFront(n)
	c.n++
	for c.n > c.maxMem {
		old := c.back
		c.unlink(old)
		delete(c.mem, old.id)
		c.n--
		c.stats.Evictions++
		evEviction.Inc()
	}
}

func (c *Cache) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.front
	if c.front != nil {
		c.front.prev = n
	}
	c.front = n
	if c.back == nil {
		c.back = n
	}
}

func (c *Cache) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.front = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.back = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *Cache) moveToFront(n *lruNode) {
	if c.front == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
