package runcache

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"sparc64v/internal/system"
)

// testReport fabricates a distinctive report so cache identity mistakes
// are visible in any field.
func testReport(tag uint64) system.Report {
	r := system.Report{
		Name:      fmt.Sprintf("cfg-%d", tag),
		Workload:  "wl",
		Cycles:    1000 + tag,
		Committed: 500 + tag,
		CPUs:      make([]system.CPUReport, 2),
	}
	r.CPUs[0].Core.Cycles = 900 + tag
	r.CPUs[0].Core.Committed = 250 + tag
	r.CPUs[0].ITLBMissRate = 0.001 * float64(tag+1)
	r.CPUs[1].Core.Cycles = 910 + tag
	r.CPUs[1].L1D.DemandAccesses = 12345 + tag
	r.CPUs[1].L1D.DemandMisses = 67 + tag
	r.Coherence.MemoryReads = 42 + tag
	r.BusWaitCycles = 7 + tag
	return r
}

func testKey(seed int64) Key {
	return Key{
		ConfigHash:  "cfghash",
		Workload:    "wl",
		ProfileHash: "profhash",
		Seed:        seed,
		Insts:       100,
		Version:     "model/test",
	}
}

func TestKeyID(t *testing.T) {
	a, b := testKey(1), testKey(1)
	if a.ID() != b.ID() {
		t.Fatal("equal keys produce different IDs")
	}
	muts := []Key{
		{ConfigHash: "x", Workload: "wl", ProfileHash: "profhash", Seed: 1, Insts: 100, Version: "model/test"},
		{ConfigHash: "cfghash", Workload: "x", ProfileHash: "profhash", Seed: 1, Insts: 100, Version: "model/test"},
		{ConfigHash: "cfghash", Workload: "wl", ProfileHash: "x", Seed: 1, Insts: 100, Version: "model/test"},
		testKey(2),
		{ConfigHash: "cfghash", Workload: "wl", ProfileHash: "profhash", Seed: 1, Insts: 101, Version: "model/test"},
		{ConfigHash: "cfghash", Workload: "wl", ProfileHash: "profhash", Seed: 1, Insts: 100, Version: "x"},
	}
	seen := map[string]bool{a.ID(): true}
	for i, k := range muts {
		if seen[k.ID()] {
			t.Errorf("mutation %d collides", i)
		}
		seen[k.ID()] = true
	}
}

func TestMemoryTierHitAndDedup(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	want := testReport(1)
	var runs atomic.Int64
	runner := func(context.Context) (system.Report, error) {
		runs.Add(1)
		return want, nil
	}
	got, outcome, err := c.GetOrRun(context.Background(), key, runner)
	if err != nil || outcome != OutcomeMiss {
		t.Fatalf("first call: outcome %v err %v", outcome, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("first call report mismatch:\n%+v\nvs\n%+v", got, want)
	}
	got2, outcome2, err := c.GetOrRun(context.Background(), key, runner)
	if err != nil || outcome2 != OutcomeMemoryHit {
		t.Fatalf("second call: outcome %v err %v", outcome2, err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Fatal("cached report differs from original")
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("runner ran %d times, want 1", n)
	}
	// Mutating a returned report must not poison the cache.
	got2.CPUs[0].Core.Cycles = 0
	got3, _, _ := c.GetOrRun(context.Background(), key, runner)
	if !reflect.DeepEqual(got3, want) {
		t.Fatal("cache entry aliased by caller mutation")
	}
	s := c.Stats()
	if s.Misses != 1 || s.MemoryHits != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c, _ := New(Options{})
	key := testKey(1)
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.GetOrRun(context.Background(), key, func(context.Context) (system.Report, error) {
		calls++
		return system.Report{}, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	_, outcome, err := c.GetOrRun(context.Background(), key, func(context.Context) (system.Report, error) {
		calls++
		return testReport(1), nil
	})
	if err != nil || outcome != OutcomeMiss || calls != 2 {
		t.Fatalf("retry after error: outcome %v err %v calls %d", outcome, err, calls)
	}
	if s := c.Stats(); s.Errors != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c, _ := New(Options{MaxMemEntries: 2})
	run := func(tag uint64) func(context.Context) (system.Report, error) {
		return func(context.Context) (system.Report, error) { return testReport(tag), nil }
	}
	ctx := context.Background()
	c.GetOrRun(ctx, testKey(1), run(1))
	c.GetOrRun(ctx, testKey(2), run(2))
	// Touch key 1 so key 2 is the LRU victim.
	if _, outcome, _ := c.GetOrRun(ctx, testKey(1), run(1)); outcome != OutcomeMemoryHit {
		t.Fatalf("key 1 should be resident, got %v", outcome)
	}
	c.GetOrRun(ctx, testKey(3), run(3))
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	// Key 1 survived the eviction (recently used); key 2 was the victim.
	if _, outcome, _ := c.GetOrRun(ctx, testKey(1), run(1)); outcome != OutcomeMemoryHit {
		t.Fatalf("key 1 should have survived (recently used), got %v", outcome)
	}
	if _, outcome, _ := c.GetOrRun(ctx, testKey(2), run(2)); outcome != OutcomeMiss {
		t.Fatalf("key 2 should have been evicted, got %v", outcome)
	}
	if s := c.Stats(); s.Evictions < 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestDiskTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := testKey(7)
	want := testReport(7)
	c1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, outcome, err := c1.GetOrRun(context.Background(), key,
		func(context.Context) (system.Report, error) { return want, nil }); err != nil || outcome != OutcomeMiss {
		t.Fatalf("store: outcome %v err %v", outcome, err)
	}
	// A fresh cache (new process) must serve from disk without running,
	// and the round-tripped report must be exactly equal — the cached and
	// uncached paths must be indistinguishable downstream.
	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, outcome, err := c2.GetOrRun(context.Background(), key,
		func(context.Context) (system.Report, error) {
			t.Fatal("runner must not execute on a disk hit")
			return system.Report{}, nil
		})
	if err != nil || outcome != OutcomeDiskHit {
		t.Fatalf("load: outcome %v err %v", outcome, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("disk round trip not exact:\n%+v\nvs\n%+v", got, want)
	}
	// Promoted to memory: next access is a memory hit.
	if _, outcome, _ := c2.GetOrRun(context.Background(), key,
		func(context.Context) (system.Report, error) { return system.Report{}, nil }); outcome != OutcomeMemoryHit {
		t.Fatalf("promotion: outcome %v", outcome)
	}
}

func TestDiskEvictedEntrySurvives(t *testing.T) {
	dir := t.TempDir()
	c, _ := New(Options{Dir: dir, MaxMemEntries: 1})
	ctx := context.Background()
	c.GetOrRun(ctx, testKey(1), func(context.Context) (system.Report, error) { return testReport(1), nil })
	c.GetOrRun(ctx, testKey(2), func(context.Context) (system.Report, error) { return testReport(2), nil })
	// Key 1 was evicted from memory but must come back from disk.
	got, outcome, err := c.GetOrRun(ctx, testKey(1), func(context.Context) (system.Report, error) {
		t.Fatal("must re-load from disk, not re-run")
		return system.Report{}, nil
	})
	if err != nil || outcome != OutcomeDiskHit {
		t.Fatalf("outcome %v err %v", outcome, err)
	}
	if !reflect.DeepEqual(got, testReport(1)) {
		t.Fatal("report mismatch after eviction round trip")
	}
}

func TestSingleflightDedup(t *testing.T) {
	c, _ := New(Options{})
	key := testKey(9)
	want := testReport(9)
	started := make(chan struct{})
	release := make(chan struct{})
	var runs atomic.Int64
	runner := func(context.Context) (system.Report, error) {
		runs.Add(1)
		close(started)
		<-release
		return want, nil
	}
	const waiters = 8
	var wg sync.WaitGroup
	outcomes := make([]Outcome, waiters)
	reports := make([]system.Report, waiters)
	errs := make([]error, waiters)
	// Leader.
	wg.Add(1)
	go func() {
		defer wg.Done()
		reports[0], outcomes[0], errs[0] = c.GetOrRun(context.Background(), key, runner)
	}()
	<-started
	// Joiners: the leader is mid-run, so all of these must share it.
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports[i], outcomes[i], errs[i] = c.GetOrRun(context.Background(), key,
				func(context.Context) (system.Report, error) {
					t.Error("joiner runner must not execute")
					return system.Report{}, nil
				})
		}()
	}
	// Joiners must have registered as shared before the leader completes.
	for c.Stats().Shared != waiters-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if n := runs.Load(); n != 1 {
		t.Fatalf("runner ran %d times, want 1", n)
	}
	var miss, shared int
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(reports[i], want) {
			t.Fatalf("waiter %d report mismatch", i)
		}
		switch outcomes[i] {
		case OutcomeMiss:
			miss++
		case OutcomeShared:
			shared++
		}
	}
	if miss != 1 || shared != waiters-1 {
		t.Fatalf("outcomes: %d miss, %d shared", miss, shared)
	}
}

func TestSharedWaiterCancellation(t *testing.T) {
	c, _ := New(Options{})
	key := testKey(3)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go c.GetOrRun(context.Background(), key, func(context.Context) (system.Report, error) {
		close(started)
		<-release
		return testReport(3), nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.GetOrRun(ctx, key, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestConcurrentMixedKeys exercises the cache under -race: many goroutines,
// overlapping keys, simultaneous memory/disk/flight paths.
func TestConcurrentMixedKeys(t *testing.T) {
	c, _ := New(Options{Dir: t.TempDir(), MaxMemEntries: 4})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tag := uint64(i % 8)
				rep, _, err := c.GetOrRun(context.Background(), testKey(int64(tag)),
					func(context.Context) (system.Report, error) { return testReport(tag), nil })
				if err != nil {
					t.Error(err)
					return
				}
				if rep.Cycles != 1000+tag {
					t.Errorf("wrong report for key %d: cycles %d", tag, rep.Cycles)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestTempFilesCleanedOrIgnored pins that a stale temp file never shadows
// or corrupts lookups.
func TestTempFilesCleanedOrIgnored(t *testing.T) {
	dir := t.TempDir()
	c, _ := New(Options{Dir: dir})
	key := testKey(5)
	if err := os.WriteFile(filepath.Join(dir, key.ID()+".tmp-stale"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, outcome, err := c.GetOrRun(context.Background(), key,
		func(context.Context) (system.Report, error) { return testReport(5), nil })
	if err != nil || outcome != OutcomeMiss {
		t.Fatalf("outcome %v err %v", outcome, err)
	}
}
