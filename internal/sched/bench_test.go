package sched

import (
	"context"
	"testing"
)

// These benchmarks feed scripts/benchdiff.sh, the CI benchmark regression
// gate. They measure the scheduler's own cost — dispatch, result slots,
// instrumentation — with near-zero job bodies, so a hot-path regression
// (say, an accidental per-job allocation) moves allocs/op immediately.

const benchJobs = 64

// BenchmarkMapSerial is the Workers:1 degenerate path: no goroutines, one
// worker loop in submission order.
func BenchmarkMapSerial(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := Map(benchJobs, Options{Workers: 1}, func(index int) (int, error) {
			return index, nil
		})
		if err != nil || len(out) != benchJobs {
			b.Fatalf("len = %d, err = %v", len(out), err)
		}
	}
}

// BenchmarkMapParallel is the fan-out path: worker goroutines, the shared
// index counter, and the per-batch metric updates.
func BenchmarkMapParallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := Map(benchJobs, Options{Workers: 4}, func(index int) (int, error) {
			return index, nil
		})
		if err != nil || len(out) != benchJobs {
			b.Fatalf("len = %d, err = %v", len(out), err)
		}
	}
}

// BenchmarkMapAllCtxParallel adds the per-job error slots and context
// plumbing that MapAllCtx layers over Map's happy path.
func BenchmarkMapAllCtxParallel(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, errs := MapAllCtx(ctx, benchJobs, Options{Workers: 4}, func(ctx context.Context, index int) (int, error) {
			return index, nil
		})
		if len(out) != benchJobs {
			b.Fatalf("len = %d", len(out))
		}
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
