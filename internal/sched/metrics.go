package sched

import (
	"strconv"

	"sparc64v/internal/obs"
)

// Package-level scheduler metrics, registered in the process-wide registry
// so every harness (sweep, verify, simd) reports into the same series.
// Observation cost is two clock reads and a few atomic adds per *job*, and
// jobs here are whole simulations, so the scheduler's serial fast path
// stays indistinguishable from an uninstrumented loop.
var (
	queueDepth = obs.Default().Gauge("sparc64v_sched_queue_depth",
		"Jobs submitted to the scheduler but not yet started.")
	runningJobs = obs.Default().Gauge("sparc64v_sched_running",
		"Jobs currently executing on a scheduler worker.")
	jobSeconds = obs.Default().Histogram("sparc64v_sched_job_seconds",
		"Submission-to-completion latency of scheduler jobs (includes queue wait).", nil)
	jobsOK = obs.Default().Counter("sparc64v_sched_jobs_total",
		"Scheduler jobs finished, by result.", obs.L("result", "ok"))
	jobsErr = obs.Default().Counter("sparc64v_sched_jobs_total",
		"Scheduler jobs finished, by result.", obs.L("result", "error"))
)

// workerBusy returns the busy-time counter for one worker slot. Worker
// indices restart at 0 for every batch, so the series count stays bounded
// by the widest batch ever run, and slot 0's ratio to wall time reads as
// "serial fraction" directly.
func workerBusy(w int) *obs.Counter {
	return obs.Default().Counter("sparc64v_sched_worker_busy_ns_total",
		"Nanoseconds each scheduler worker slot spent executing jobs.",
		obs.L("worker", strconv.Itoa(w)))
}
