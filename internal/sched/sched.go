// Package sched is the experiment-harness run scheduler: a bounded worker
// pool that executes independent simulation jobs concurrently and returns
// their results in deterministic submission order.
//
// The paper's methodology depends on model turnaround (its C model ran at
// 7.8K instructions/second, and every design study is a set of independent
// (configuration, workload) simulations). Each simulation in this
// reproduction builds its own Model, trace generators and machine state, so
// the jobs share nothing mutable; the scheduler exploits that independence
// on multicore hosts while keeping every table byte-identical to a serial
// run: results are ordered by submission index, never by completion time,
// and all randomness stays inside the per-job generators.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configures one scheduled batch.
type Options struct {
	// Workers bounds the number of jobs in flight; <= 0 means GOMAXPROCS.
	// 1 degenerates to a strictly serial run (same order, same results).
	Workers int
	// OnDone, when non-nil, is called once per job as it finishes, with the
	// job's submission index and error. Calls may arrive out of order and
	// concurrently; the callback must be safe for concurrent use.
	OnDone func(index int, err error)
}

// Workers resolves a worker-count request against the host.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs job(0..n-1) on a bounded worker pool and returns the results in
// submission order. Every job runs regardless of other jobs' failures; the
// returned error is the lowest-index job error (nil if all succeeded), so a
// parallel run reports the same error a serial loop would have hit first.
func Map[T any](n int, opt Options, job func(index int) (T, error)) ([]T, error) {
	out, errs := MapAll(n, opt, job)
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// MapAll is Map with per-job error capture: errs[i] is job i's error.
func MapAll[T any](n int, opt Options, job func(index int) (T, error)) (out []T, errs []error) {
	out = make([]T, n)
	errs = make([]error, n)
	if n == 0 {
		return out, errs
	}
	workers := Workers(opt.Workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial fast path: no goroutines, deterministic by construction.
		for i := 0; i < n; i++ {
			out[i], errs[i] = job(i)
			if opt.OnDone != nil {
				opt.OnDone(i, errs[i])
			}
		}
		return out, errs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = job(i)
				if opt.OnDone != nil {
					opt.OnDone(i, errs[i])
				}
			}
		}()
	}
	wg.Wait()
	return out, errs
}

// Do runs independent thunks (no results) and returns the lowest-index
// error.
func Do(opt Options, jobs ...func() error) error {
	_, err := Map(len(jobs), opt, func(i int) (struct{}, error) {
		return struct{}{}, jobs[i]()
	})
	return err
}
