// Package sched is the experiment-harness run scheduler: a bounded worker
// pool that executes independent simulation jobs concurrently and returns
// their results in deterministic submission order.
//
// The paper's methodology depends on model turnaround (its C model ran at
// 7.8K instructions/second, and every design study is a set of independent
// (configuration, workload) simulations). Each simulation in this
// reproduction builds its own Model, trace generators and machine state, so
// the jobs share nothing mutable; the scheduler exploits that independence
// on multicore hosts while keeping every table byte-identical to a serial
// run: results are ordered by submission index, never by completion time,
// and all randomness stays inside the per-job generators.
//
// Run lifecycle: the context-aware variants (MapCtx, MapAllCtx, DoCtx)
// stop handing out job indices once the context is cancelled — jobs not
// yet started report ctx.Err() — and every worker recovers panics into a
// *PanicError carrying the job index and a truncated stack, so one bad
// configuration in a long sweep reports instead of killing its siblings.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"sparc64v/internal/obs"
)

// Options configures one scheduled batch.
type Options struct {
	// Workers bounds the number of jobs in flight; <= 0 means GOMAXPROCS.
	// 1 degenerates to a strictly serial run (same order, same results).
	Workers int
	// OnDone, when non-nil, is called once per job as it finishes, with the
	// job's submission index and error. Calls may arrive out of order and
	// concurrently; the callback must be safe for concurrent use. Jobs
	// skipped because the batch context was cancelled still get a call,
	// with the context's error.
	OnDone func(index int, err error)
}

// Workers resolves a worker-count request against the host.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// maxPanicStack bounds the stack captured into a PanicError: enough for
// the panic site and the frames leading to it, without dumping the whole
// goroutine dump of a deep simulation into an error string.
const maxPanicStack = 4 << 10

// PanicError is a job panic recovered by the scheduler. The batch keeps
// running: sibling jobs are unaffected, and the panicking job reports this
// error at its submission index.
type PanicError struct {
	// Index is the job's submission index within its batch.
	Index int
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack, truncated to a few KB.
	Stack []byte
}

// Error renders the panic with its job index and stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: job %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// runJob executes one job, converting a panic into a *PanicError.
func runJob[T any](ctx context.Context, i int, job func(ctx context.Context, index int) (T, error)) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			stack := debug.Stack()
			if len(stack) > maxPanicStack {
				stack = append(stack[:maxPanicStack], "... (truncated)"...)
			}
			err = &PanicError{Index: i, Value: r, Stack: stack}
		}
	}()
	return job(ctx, i)
}

// Map runs job(0..n-1) on a bounded worker pool and returns the results in
// submission order. Every job runs regardless of other jobs' failures; the
// returned error is the lowest-index job error (nil if all succeeded), so a
// parallel run reports the same error a serial loop would have hit first.
func Map[T any](n int, opt Options, job func(index int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), n, opt,
		func(_ context.Context, i int) (T, error) { return job(i) })
}

// MapCtx is Map with a batch context: cancellation stops new jobs from
// starting (already-running jobs finish, or observe ctx themselves), and
// jobs that never started report ctx.Err() at their index. The returned
// error is still the lowest-index per-job error, so a batch cancelled
// before any job failed returns ctx.Err().
func MapCtx[T any](ctx context.Context, n int, opt Options, job func(ctx context.Context, index int) (T, error)) ([]T, error) {
	out, errs := MapAllCtx(ctx, n, opt, job)
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// MapAll is Map with per-job error capture: errs[i] is job i's error.
func MapAll[T any](n int, opt Options, job func(index int) (T, error)) (out []T, errs []error) {
	return MapAllCtx(context.Background(), n, opt,
		func(_ context.Context, i int) (T, error) { return job(i) })
}

// MapAllCtx is MapCtx with per-job error capture: errs[i] is job i's
// error, or ctx.Err() for jobs skipped after cancellation.
func MapAllCtx[T any](ctx context.Context, n int, opt Options, job func(ctx context.Context, index int) (T, error)) (out []T, errs []error) {
	out = make([]T, n)
	errs = make([]error, n)
	if n == 0 {
		return out, errs
	}
	workers := Workers(opt.Workers)
	if workers > n {
		workers = n
	}
	submitted := time.Now()
	queueDepth.Add(int64(n))
	runOne := func(i int, busy *obs.Counter) {
		queueDepth.Add(-1)
		runningJobs.Add(1)
		t0 := time.Now()
		if err := ctx.Err(); err != nil {
			errs[i] = err
		} else {
			out[i], errs[i] = runJob(ctx, i, job)
		}
		busy.Add(uint64(time.Since(t0)))
		runningJobs.Add(-1)
		jobSeconds.ObserveSince(submitted)
		if errs[i] != nil {
			jobsErr.Inc()
		} else {
			jobsOK.Inc()
		}
		if opt.OnDone != nil {
			opt.OnDone(i, errs[i])
		}
	}
	if workers == 1 {
		// Serial fast path: no goroutines, deterministic by construction.
		busy := workerBusy(0)
		for i := 0; i < n; i++ {
			runOne(i, busy)
		}
		return out, errs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			busy := workerBusy(w)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runOne(i, busy)
			}
		}(w)
	}
	wg.Wait()
	return out, errs
}

// Do runs independent thunks (no results) and returns the lowest-index
// error.
func Do(opt Options, jobs ...func() error) error {
	_, err := Map(len(jobs), opt, func(i int) (struct{}, error) {
		return struct{}{}, jobs[i]()
	})
	return err
}

// DoCtx is Do with a batch context (MapCtx semantics).
func DoCtx(ctx context.Context, opt Options, jobs ...func(context.Context) error) error {
	_, err := MapCtx(ctx, len(jobs), opt, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, jobs[i](ctx)
	})
	return err
}
