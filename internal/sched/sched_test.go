package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		out, err := Map(50, Options{Workers: workers}, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapFirstError(t *testing.T) {
	err3 := errors.New("three")
	err7 := errors.New("seven")
	ran := make([]atomic.Bool, 10)
	_, err := Map(10, Options{Workers: 4}, func(i int) (int, error) {
		ran[i].Store(true)
		switch i {
		case 7:
			return 0, err7
		case 3:
			return 0, err3
		}
		return i, nil
	})
	if err != err3 {
		t.Fatalf("want lowest-index error %v, got %v", err3, err)
	}
	for i := range ran {
		if !ran[i].Load() {
			t.Fatalf("job %d did not run", i)
		}
	}
}

func TestMapAllPerJobErrors(t *testing.T) {
	out, errs := MapAll(6, Options{Workers: 3}, func(i int) (string, error) {
		if i%2 == 1 {
			return "", fmt.Errorf("odd %d", i)
		}
		return fmt.Sprintf("ok%d", i), nil
	})
	for i := 0; i < 6; i++ {
		if i%2 == 1 {
			if errs[i] == nil || out[i] != "" {
				t.Fatalf("job %d: out=%q errs=%v", i, out[i], errs[i])
			}
		} else if errs[i] != nil || out[i] != fmt.Sprintf("ok%d", i) {
			t.Fatalf("job %d: out=%q errs=%v", i, out[i], errs[i])
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	gate := make(chan struct{})
	var once sync.Once
	_, err := Map(24, Options{Workers: workers}, func(i int) (int, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		// Force overlap so the peak is meaningful on multicore hosts; on a
		// single-CPU host the bound still must never be exceeded.
		once.Do(func() { close(gate) })
		<-gate
		inFlight.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds bound %d", p, workers)
	}
}

func TestOnDoneCoversEveryJob(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]error{}
	wantErr := errors.New("e")
	_, _ = Map(12, Options{
		Workers: 4,
		OnDone: func(i int, err error) {
			mu.Lock()
			seen[i] = err
			mu.Unlock()
		},
	}, func(i int) (int, error) {
		if i == 5 {
			return 0, wantErr
		}
		return i, nil
	})
	if len(seen) != 12 {
		t.Fatalf("OnDone saw %d jobs, want 12", len(seen))
	}
	if seen[5] != wantErr {
		t.Fatalf("OnDone error for job 5 = %v", seen[5])
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(5) != 5 {
		t.Fatal("explicit count not honored")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("default must be at least 1")
	}
}

func TestDo(t *testing.T) {
	var a, b atomic.Bool
	err := Do(Options{Workers: 2},
		func() error { a.Store(true); return nil },
		func() error { b.Store(true); return nil },
	)
	if err != nil || !a.Load() || !b.Load() {
		t.Fatalf("Do: err=%v a=%v b=%v", err, a.Load(), b.Load())
	}
	want := errors.New("x")
	if err := Do(Options{}, func() error { return want }); err != want {
		t.Fatalf("Do error = %v", err)
	}
}

func TestEmptyBatch(t *testing.T) {
	out, err := Map(0, Options{}, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v %v", out, err)
	}
}
