package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		out, err := Map(50, Options{Workers: workers}, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapFirstError(t *testing.T) {
	err3 := errors.New("three")
	err7 := errors.New("seven")
	ran := make([]atomic.Bool, 10)
	_, err := Map(10, Options{Workers: 4}, func(i int) (int, error) {
		ran[i].Store(true)
		switch i {
		case 7:
			return 0, err7
		case 3:
			return 0, err3
		}
		return i, nil
	})
	if err != err3 {
		t.Fatalf("want lowest-index error %v, got %v", err3, err)
	}
	for i := range ran {
		if !ran[i].Load() {
			t.Fatalf("job %d did not run", i)
		}
	}
}

func TestMapAllPerJobErrors(t *testing.T) {
	out, errs := MapAll(6, Options{Workers: 3}, func(i int) (string, error) {
		if i%2 == 1 {
			return "", fmt.Errorf("odd %d", i)
		}
		return fmt.Sprintf("ok%d", i), nil
	})
	for i := 0; i < 6; i++ {
		if i%2 == 1 {
			if errs[i] == nil || out[i] != "" {
				t.Fatalf("job %d: out=%q errs=%v", i, out[i], errs[i])
			}
		} else if errs[i] != nil || out[i] != fmt.Sprintf("ok%d", i) {
			t.Fatalf("job %d: out=%q errs=%v", i, out[i], errs[i])
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	gate := make(chan struct{})
	var once sync.Once
	_, err := Map(24, Options{Workers: workers}, func(i int) (int, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		// Force overlap so the peak is meaningful on multicore hosts; on a
		// single-CPU host the bound still must never be exceeded.
		once.Do(func() { close(gate) })
		<-gate
		inFlight.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds bound %d", p, workers)
	}
}

func TestOnDoneCoversEveryJob(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]error{}
	wantErr := errors.New("e")
	_, _ = Map(12, Options{
		Workers: 4,
		OnDone: func(i int, err error) {
			mu.Lock()
			seen[i] = err
			mu.Unlock()
		},
	}, func(i int) (int, error) {
		if i == 5 {
			return 0, wantErr
		}
		return i, nil
	})
	if len(seen) != 12 {
		t.Fatalf("OnDone saw %d jobs, want 12", len(seen))
	}
	if seen[5] != wantErr {
		t.Fatalf("OnDone error for job 5 = %v", seen[5])
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(5) != 5 {
		t.Fatal("explicit count not honored")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("default must be at least 1")
	}
}

func TestDo(t *testing.T) {
	var a, b atomic.Bool
	err := Do(Options{Workers: 2},
		func() error { a.Store(true); return nil },
		func() error { b.Store(true); return nil },
	)
	if err != nil || !a.Load() || !b.Load() {
		t.Fatalf("Do: err=%v a=%v b=%v", err, a.Load(), b.Load())
	}
	want := errors.New("x")
	if err := Do(Options{}, func() error { return want }); err != want {
		t.Fatalf("Do error = %v", err)
	}
}

func TestEmptyBatch(t *testing.T) {
	out, err := Map(0, Options{}, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v %v", out, err)
	}
}

func TestMapCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	for _, workers := range []int{1, 4} {
		out, errs := MapAllCtx(ctx, 8, Options{Workers: workers},
			func(context.Context, int) (int, error) {
				ran.Add(1)
				return 1, nil
			})
		if n := ran.Load(); n != 0 {
			t.Fatalf("workers=%d: %d jobs ran under a cancelled context", workers, n)
		}
		for i := range errs {
			if !errors.Is(errs[i], context.Canceled) {
				t.Fatalf("workers=%d: errs[%d] = %v, want context.Canceled", workers, i, errs[i])
			}
			if out[i] != 0 {
				t.Fatalf("workers=%d: out[%d] = %d for a skipped job", workers, i, out[i])
			}
		}
	}
	if _, err := MapCtx(ctx, 3, Options{}, func(context.Context, int) (int, error) {
		return 0, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("MapCtx = %v, want context.Canceled", err)
	}
}

// TestMapCtxMidBatchCancel cancels after the third completion: no new jobs
// may start afterwards, every remaining index reports ctx.Err(), and jobs
// that finished keep their results — the "render completed studies" half
// of the run-lifecycle contract.
func TestMapCtxMidBatchCancel(t *testing.T) {
	const n = 64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var completed atomic.Int64
	out, errs := MapAllCtx(ctx, n, Options{Workers: 4},
		func(ctx context.Context, i int) (int, error) {
			if completed.Add(1) == 3 {
				cancel()
			}
			return i + 1, nil
		})
	ranOK, skipped := 0, 0
	for i := range errs {
		switch {
		case errs[i] == nil:
			if out[i] != i+1 {
				t.Fatalf("completed job %d lost its result: %d", i, out[i])
			}
			ranOK++
		case errors.Is(errs[i], context.Canceled):
			skipped++
		default:
			t.Fatalf("errs[%d] = %v", i, errs[i])
		}
	}
	if ranOK < 3 {
		t.Fatalf("only %d jobs completed before cancel", ranOK)
	}
	if skipped == 0 {
		t.Fatal("cancellation stopped nothing: every job ran")
	}
}

// TestMapCtxCancelPrompt verifies a cancelled batch returns quickly even
// when unstarted jobs would each have taken a long time.
func TestMapCtxCancelPrompt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, errs := MapAllCtx(ctx, 1000, Options{Workers: 2},
		func(context.Context, int) (int, error) {
			time.Sleep(time.Second)
			return 0, nil
		})
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancelled batch took %v", d)
	}
	if !errors.Is(errs[999], context.Canceled) {
		t.Fatalf("errs[999] = %v", errs[999])
	}
}

func TestPanicIsolation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		out, errs := MapAll(10, Options{Workers: workers}, func(i int) (string, error) {
			ran.Add(1)
			if i == 6 {
				panic(fmt.Sprintf("bad config %d", i))
			}
			return fmt.Sprintf("ok%d", i), nil
		})
		if n := ran.Load(); n != 10 {
			t.Fatalf("workers=%d: %d jobs ran, want all 10 despite the panic", workers, n)
		}
		var pe *PanicError
		if !errors.As(errs[6], &pe) {
			t.Fatalf("workers=%d: errs[6] = %v, want *PanicError", workers, errs[6])
		}
		if pe.Index != 6 {
			t.Fatalf("panic error index = %d, want 6", pe.Index)
		}
		if msg := pe.Error(); !strings.Contains(msg, "job 6 panicked") ||
			!strings.Contains(msg, "bad config 6") {
			t.Fatalf("panic error message: %q", msg)
		}
		if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
			t.Fatalf("panic error lacks a stack: %q", pe.Stack)
		}
		for i := 0; i < 10; i++ {
			if i == 6 {
				continue
			}
			if errs[i] != nil || out[i] != fmt.Sprintf("ok%d", i) {
				t.Fatalf("workers=%d: sibling job %d damaged: out=%q errs=%v",
					workers, i, out[i], errs[i])
			}
		}
	}
}

func TestPanicStackTruncated(t *testing.T) {
	// Recurse deep enough that the raw stack exceeds the cap.
	var deep func(n int)
	deep = func(n int) {
		if n == 0 {
			panic("deep")
		}
		deep(n - 1)
	}
	_, errs := MapAll(1, Options{Workers: 1}, func(int) (int, error) {
		deep(500)
		return 0, nil
	})
	var pe *PanicError
	if !errors.As(errs[0], &pe) {
		t.Fatalf("errs[0] = %v", errs[0])
	}
	if len(pe.Stack) > maxPanicStack+64 {
		t.Fatalf("stack not truncated: %d bytes", len(pe.Stack))
	}
	if !strings.HasSuffix(string(pe.Stack), "... (truncated)") {
		t.Fatalf("truncated stack lacks marker: ...%q", pe.Stack[len(pe.Stack)-32:])
	}
}

func TestDoCtx(t *testing.T) {
	var a atomic.Bool
	if err := DoCtx(context.Background(), Options{Workers: 2},
		func(context.Context) error { a.Store(true); return nil },
	); err != nil || !a.Load() {
		t.Fatalf("DoCtx: err=%v ran=%v", err, a.Load())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := DoCtx(ctx, Options{},
		func(context.Context) error { return nil },
	); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled DoCtx = %v", err)
	}
}

func TestOnDoneCalledForSkippedJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var mu sync.Mutex
	seen := map[int]error{}
	MapAllCtx(ctx, 5, Options{
		Workers: 2,
		OnDone: func(i int, err error) {
			mu.Lock()
			seen[i] = err
			mu.Unlock()
		},
	}, func(context.Context, int) (int, error) { return 0, nil })
	if len(seen) != 5 {
		t.Fatalf("OnDone saw %d jobs, want 5", len(seen))
	}
	for i, err := range seen {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("OnDone[%d] = %v", i, err)
		}
	}
}
