package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sparc64v/internal/analytic"
	"sparc64v/internal/core"
	"sparc64v/internal/obs"
	"sparc64v/internal/system"
	"sparc64v/internal/workload"
)

func postEstimate(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/estimate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestEstimateEndpointEndToEnd drives the fast tier through the HTTP
// surface: a calibrated workload gets a CPI with confidence band and
// provenance, a config overlay moves the estimate the physical way, and
// the response carries the model-version header.
func TestEstimateEndpointEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, b := postEstimate(t, ts.URL, `{"workload":"specint95"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: %d %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Model-Version"); got != core.ModelVersion {
		t.Fatalf("X-Model-Version = %q, want %q", got, core.ModelVersion)
	}
	var est analytic.Estimate
	if err := json.Unmarshal(b, &est); err != nil {
		t.Fatal(err)
	}
	if est.CPI <= 0 || est.IPC <= 0 {
		t.Fatalf("empty estimate: %+v", est)
	}
	if !(est.CPILow <= est.CPI && est.CPI <= est.CPIHigh) {
		t.Fatalf("band does not bracket the estimate: %+v", est)
	}
	if est.ModelVersion != core.ModelVersion || est.CalibrationInsts <= 0 {
		t.Fatalf("missing provenance: %+v", est)
	}

	// A smaller L1 must not price lower than the base machine.
	resp2, b2 := postEstimate(t, ts.URL,
		`{"workload":"specint95","config":{"L1D":{"SizeBytes":32768,"Ways":1,"LineBytes":64,"HitCycles":4,"MSHRs":8,"Banks":8,"BankBytes":4}}}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("overlay estimate: %d %s", resp2.StatusCode, b2)
	}
	var small analytic.Estimate
	if err := json.Unmarshal(b2, &small); err != nil {
		t.Fatal(err)
	}
	if small.CPI < est.CPI {
		t.Fatalf("smaller L1D estimated faster: %.4f < %.4f", small.CPI, est.CPI)
	}
}

// TestEstimateValidation covers the 400 paths: same strictness as /v1/run.
func TestEstimateValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, tc := range []struct {
		name, body string
	}{
		{"unknown workload", `{"workload":"quake3"}`},
		{"unknown request field", `{"workload":"specint95","insts":1000}`},
		{"unknown config field", `{"workload":"specint95","config":{"NoSuchKnob":1}}`},
		{"invalid overlay geometry", `{"workload":"specint95","config":{"L1D":{"SizeBytes":98304,"Ways":2,"LineBytes":64,"HitCycles":4}}}`},
		{"garbage body", `{`},
	} {
		resp, b := postEstimate(t, ts.URL, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, b)
		}
	}
}

// TestEstimateFallback pins the uncalibrated paths: multiprocessor
// configurations and workloads outside the calibration set answer 404 with
// a /v1/run fallback hint and count as fallbacks, never as errors.
func TestEstimateFallback(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Workers: 1, Registry: reg})
	for _, tc := range []struct {
		name, body string
	}{
		{"explicit MP", `{"workload":"specint95","cpus":4}`},
		{"MP workload defaults to 16P", `{"workload":"tpcc16p"}`},
	} {
		resp, b := postEstimate(t, ts.URL, tc.body)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d (%s), want 404", tc.name, resp.StatusCode, b)
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(b, &e); err != nil || !strings.Contains(e.Error, "/v1/run") {
			t.Errorf("%s: body %q lacks the /v1/run fallback hint", tc.name, b)
		}
	}
	fallbacks := reg.Counter("sparc64v_server_estimates_total", "",
		obs.L("outcome", "fallback_uncalibrated")).Value()
	if fallbacks != 2 {
		t.Errorf("fallback_uncalibrated = %d, want 2", fallbacks)
	}
	served := reg.Counter("sparc64v_server_estimates_total", "",
		obs.L("outcome", "served")).Value()
	if served != 0 {
		t.Errorf("served = %d, want 0", served)
	}
}

// TestEstimateLatencyP99 pins the fast tier's latency contract through the
// instrumentation that reports it in production: after a burst of estimate
// requests, the obs request histogram's p99 for the endpoint must sit under
// one millisecond. The requests go through the full middleware + handler
// path (what a client pays minus the TCP hop).
func TestEstimateLatencyP99(t *testing.T) {
	reg := obs.NewRegistry()
	s, _ := newTestServer(t, Config{Workers: 1, Registry: reg})
	h := s.Handler()
	const n = 500
	for i := 0; i < n; i++ {
		req := httptest.NewRequest("POST", "/v1/estimate",
			strings.NewReader(`{"workload":"specint95"}`))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, rec.Code, rec.Body.String())
		}
	}
	hist := reg.Histogram("sparc64v_http_request_seconds", "", nil,
		obs.L("endpoint", "estimate"), obs.L("code", "200"))
	if got := hist.Count(); got != n {
		t.Fatalf("histogram observed %d requests, want %d", got, n)
	}
	if p99 := hist.Quantile(0.99); p99 >= 0.001 {
		t.Errorf("estimate p99 latency %.6fs >= 1ms", p99)
	}
}

// TestEstimateBypassesAdmission pins the tiering property that makes the
// fast tier useful: with the only worker slot held by a running simulation
// and no queue room left, /v1/run sheds 429 but /v1/estimate still answers
// 200 immediately.
func TestEstimateBypassesAdmission(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxQueue: -1})
	var started atomic.Uint64
	release := make(chan struct{})
	s.simulate = func(ctx context.Context, m *core.Model, p workload.Profile, opt core.RunOptions) (system.Report, error) {
		started.Add(1)
		<-release
		return fakeReport(uint64(opt.Seed)), nil
	}
	defer close(release)

	done := make(chan struct{})
	go func() {
		defer close(done)
		postRun(t, ts.URL, `{"workload":"specint95","seed":1}`)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for started.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("setup stalled: simulation never started")
		}
		time.Sleep(time.Millisecond)
	}

	// The detailed tier is saturated…
	resp, b := postRun(t, ts.URL, `{"workload":"specint95","seed":2}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated run: status %d (%s), want 429", resp.StatusCode, b)
	}
	// …but the analytic tier still answers.
	for i := 0; i < 3; i++ {
		resp, b := postEstimate(t, ts.URL, fmt.Sprintf(`{"workload":"specint95","config":{"CPU":{"IssueWidth":%d}}}`, 2+i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate under saturation: status %d (%s)", resp.StatusCode, b)
		}
	}
	release <- struct{}{}
	<-done
}
