package server

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"sparc64v/internal/core"
	"sparc64v/internal/obs"
	"sparc64v/internal/runcache"
	"sparc64v/internal/system"
	"sparc64v/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestLoadBurstMetrics floods the server with concurrent distinct runs
// against one worker and a two-slot queue, then audits the whole metric
// surface: the request histogram's 200 sample count equals the accepted
// requests, the shed counters equal the 429s, and after a drain the
// exposition contains no negative or NaN value.
func TestLoadBurstMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cache, err := runcache.New(runcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Cache: cache, Workers: 1, MaxQueue: 2, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	s.simulate = func(ctx context.Context, m *core.Model, p workload.Profile, opt core.RunOptions) (system.Report, error) {
		<-release
		return fakeReport(uint64(opt.Seed)), nil
	}

	// A real http.Server (not httptest) so the drain below exercises the
	// same Shutdown path cmd/simd runs on SIGINT.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	serveDone := make(chan struct{})
	go func() { hs.Serve(ln); close(serveDone) }()
	url := "http://" + ln.Addr().String()

	const burst = 10 // capacity is 1 running + 2 queued => 7 shed
	codes := make(chan int, burst)
	var wg sync.WaitGroup
	for seed := 1; seed <= burst; seed++ {
		wg.Add(1)
		go func(seed int) {
			// Raw http.Post: postRun's t.Fatal is only legal on the test
			// goroutine. A transport error reports as code 0 below.
			defer wg.Done()
			resp, err := http.Post(url+"/v1/run", "application/json",
				strings.NewReader(fmt.Sprintf(`{"workload":"specint95","seed":%d}`, seed)))
			if err != nil {
				codes <- 0
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}(seed)
	}
	// Wait until the burst has settled into its steady state: 3 admitted
	// (1 simulating + 2 queued), 7 shed.
	deadline := time.Now().Add(5 * time.Second)
	for !(len(s.queue) == 3 && s.rejected.Load() == burst-3) {
		if time.Now().After(deadline) {
			t.Fatalf("burst never settled: queued=%d rejected=%d", len(s.queue), s.rejected.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	counts := map[int]int{}
	for i := 0; i < burst; i++ {
		counts[<-codes]++
	}
	accepted, shed := counts[http.StatusOK], counts[http.StatusTooManyRequests]
	if accepted != 3 || shed != 7 || accepted+shed != burst {
		t.Fatalf("burst outcomes = %v, want 3x200 + 7x429", counts)
	}

	// The middleware observes after the handler returns, which can trail
	// the client seeing the response; poll the counters to settlement.
	okHist := reg.Histogram("sparc64v_http_request_seconds", "", nil,
		obs.L("endpoint", "run"), obs.L("code", "200"))
	shedCount := reg.Counter("sparc64v_http_responses_total", "",
		obs.L("endpoint", "run"), obs.L("code", "429"))
	deadline = time.Now().Add(5 * time.Second)
	for !(okHist.Count() == uint64(accepted) && shedCount.Value() == uint64(shed)) {
		if time.Now().After(deadline) {
			t.Fatalf("request metrics never settled: histogram 200s = %d (want %d), responses 429s = %d (want %d)",
				okHist.Count(), accepted, shedCount.Value(), shed)
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.rejectedShed.Value(); got != uint64(shed) {
		t.Errorf("shed counter = %d, want %d", got, shed)
	}
	if got := s.rejected.Load(); got != uint64(shed) {
		t.Errorf("legacy rejected counter = %d, want %d", got, shed)
	}

	// Drain exactly as cmd/simd does on SIGINT, then audit the exposition.
	s.DrainStarted()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	<-serveDone
	if got := s.drains.Value(); got != 1 {
		t.Errorf("drain counter = %d, want 1", got)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	assertSaneExposition(t, b.String())
}

// assertSaneExposition fails on any sample line whose value is negative,
// NaN, or infinite — the "never confuse a scraper" contract.
func assertSaneExposition(t *testing.T, exposition string) {
	t.Helper()
	samples := 0
	for _, line := range strings.Split(exposition, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Errorf("malformed exposition line %q", line)
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
			continue
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Errorf("insane exposition value in %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Error("exposition had no samples")
	}
}

// TestMetricsGoldenExposition scripts the server clock, the simulator, and
// an exact request sequence, then compares the full /metrics page against
// a checked-in golden file. A metric rename, a format change, or series
// ordering drift fails here instead of silently breaking scrapers.
// Regenerate deliberately with:
//
//	go test ./internal/server -run Golden -update
func TestMetricsGoldenExposition(t *testing.T) {
	// The hand-emitted block reads the process-global simulation meter;
	// reset it so earlier real-simulation tests don't leak into the page.
	core.MeterReset()
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{Workers: 1, Registry: reg})
	s.simulate = func(ctx context.Context, m *core.Model, p workload.Profile, opt core.RunOptions) (system.Report, error) {
		return fakeReport(uint64(opt.Seed)), nil
	}
	// Scripted clock: every read advances 1ms, so each request's histogram
	// observation is exactly 1ms and the exposition is reproducible.
	base := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	tick := 0
	s.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		tick++
		return base.Add(time.Duration(tick) * time.Millisecond)
	}

	for _, req := range []struct{ body string }{
		{`{"workload":"specint95","seed":1}`}, // miss
		{`{"workload":"specint95","seed":1}`}, // memory hit
		{`{"workload":"nope"}`},               // 400
	} {
		postRun(t, ts.URL, req.body)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("/metrics drifted from golden file.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	assertSaneExposition(t, string(got))
}
