package server

import (
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"time"

	"sparc64v/internal/obs"
	"sparc64v/internal/runcache"
)

// The peer-cache protocol is the cluster's shared-cache tier: when a
// node's memory and disk tiers miss, it asks its peers for the entry
// before paying for a simulation, so any one node's cached result serves
// the whole pool. Two sides:
//
//   - serving: GET /v1/cache/{id} answers from local tiers only — never
//     from this node's own remote tier (no fetch recursion) and never by
//     simulating, so a peer probe is always cheap and loop-free;
//   - fetching: PeerFetcher implements runcache.Remote over HTTP. The
//     response bytes are untrusted; the cache re-verifies key identity
//     and checksum before using them (internal/runcache DecodeEntry),
//     so a corrupted or malicious peer can cost a rejected fetch, never
//     a wrong result.

// entryIDPattern is a content address: 64 hex chars (SHA-256).
var entryIDPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// maxPeerEntryBytes bounds a peer response; a system.Report envelope is
// a few KB even at 64 CPUs, so 16 MiB is generous headroom, not a limit
// anyone should meet.
const maxPeerEntryBytes = 16 << 20

// defaultPeerTimeout bounds one peer's lookup; a peer that cannot answer
// a local-tier probe this fast is effectively down, and simulating is
// always the fallback.
const defaultPeerTimeout = 5 * time.Second

// handleCacheEntry serves GET /v1/cache/{id}: the raw entry envelope for
// a content address, or 404. Local tiers only.
func (s *Server) handleCacheEntry(w http.ResponseWriter, r *http.Request) {
	outcome := func(o string) *obs.Counter {
		return s.reg.Counter("sparc64v_server_peer_requests_total",
			"Peer cache-entry lookups served, by outcome.", obs.L("outcome", o))
	}
	id := r.PathValue("id")
	if !entryIDPattern.MatchString(id) {
		outcome("bad_id").Inc()
		httpError(w, http.StatusBadRequest, "malformed entry id")
		return
	}
	b, ok := s.cache.EntryBytes(id)
	if !ok {
		outcome("miss").Inc()
		httpError(w, http.StatusNotFound, "no entry")
		return
	}
	outcome("hit").Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// PeerFetcher asks peer nodes for cache entries over HTTP; it implements
// runcache.Remote. Peers are tried in configured order until one answers
// 200; 404 and transport errors fall through to the next peer. The
// returned bytes are verified by the cache, not here.
type PeerFetcher struct {
	client  *http.Client
	reg     *obs.Registry
	timeout time.Duration

	mu    sync.RWMutex
	peers []string

	fetchSeconds *obs.Histogram
}

// NewPeerFetcher builds a fetcher over the peer base URLs (scheme://
// host:port, no trailing slash required). client nil means a dedicated
// client with the default peer timeout; reg nil means obs.Default().
func NewPeerFetcher(peers []string, client *http.Client, reg *obs.Registry) *PeerFetcher {
	if reg == nil {
		reg = obs.Default()
	}
	if client == nil {
		client = &http.Client{Timeout: defaultPeerTimeout}
	}
	f := &PeerFetcher{
		client:  client,
		reg:     reg,
		timeout: defaultPeerTimeout,
		fetchSeconds: reg.Histogram("sparc64v_peer_fetch_seconds",
			"Wall time of peer cache-entry fetch attempts (per peer tried).", nil),
	}
	f.SetPeers(peers)
	return f
}

// SetPeers replaces the peer list (cluster membership changes; tests
// that learn listener addresses after construction).
func (f *PeerFetcher) SetPeers(peers []string) {
	cleaned := make([]string, 0, len(peers))
	for _, p := range peers {
		if p = strings.TrimRight(strings.TrimSpace(p), "/"); p != "" {
			cleaned = append(cleaned, p)
		}
	}
	f.mu.Lock()
	f.peers = cleaned
	f.mu.Unlock()
}

// Peers returns the configured peer list (a copy).
func (f *PeerFetcher) Peers() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, len(f.peers))
	copy(out, f.peers)
	return out
}

// Fetch implements runcache.Remote: first peer with a 200 wins.
func (f *PeerFetcher) Fetch(ctx context.Context, key runcache.Key) ([]byte, bool) {
	outcome := func(o string) *obs.Counter {
		return f.reg.Counter("sparc64v_peer_fetch_total",
			"Peer cache-entry fetch attempts, by outcome.", obs.L("outcome", o))
	}
	id := key.ID()
	for _, peer := range f.Peers() {
		b, ok := f.fetchOne(ctx, peer, id, outcome)
		if ok {
			return b, true
		}
		if ctx.Err() != nil {
			return nil, false
		}
	}
	return nil, false
}

// fetchOne probes a single peer.
func (f *PeerFetcher) fetchOne(ctx context.Context, peer, id string, outcome func(string) *obs.Counter) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(ctx, f.timeout)
	defer cancel()
	defer f.fetchSeconds.ObserveSince(time.Now())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/cache/"+id, nil)
	if err != nil {
		outcome("error").Inc()
		return nil, false
	}
	resp, err := f.client.Do(req)
	if err != nil {
		outcome("error").Inc()
		return nil, false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		outcome("miss").Inc()
		return nil, false
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerEntryBytes+1))
	if err != nil || len(b) > maxPeerEntryBytes {
		outcome("error").Inc()
		return nil, false
	}
	outcome("hit").Inc()
	return b, true
}
