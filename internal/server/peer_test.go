package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sparc64v/internal/config"
	"sparc64v/internal/core"
	"sparc64v/internal/obs"
	"sparc64v/internal/runcache"
	"sparc64v/internal/system"
	"sparc64v/internal/workload"
)

// resolveTestKey computes the cache key the server would use for a
// request body, through the same ResolveRun path handleRun takes.
func resolveTestKey(t *testing.T, req RunRequest) runcache.Key {
	t.Helper()
	rr, err := ResolveRun(config.Base(), 20_000, req)
	if err != nil {
		t.Fatal(err)
	}
	return rr.Key
}

// TestCacheEntryEndpoint covers the serving side of the peer protocol:
// malformed ids are 400, unknown ids are 404, and a cached entry comes
// back as a verifiable envelope.
func TestCacheEntryEndpoint(t *testing.T) {
	cache, err := runcache.New(runcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Cache: cache, Workers: 1, DefaultInsts: 20_000, Registry: obs.NewRegistry()})

	key := resolveTestKey(t, RunRequest{Workload: "specint95", Seed: 9})
	rep := fakeReport(9)
	cache.Put(key, rep)

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/cache/" + key.ID(), http.StatusOK},
		{"/v1/cache/" + strings.Repeat("0", 64), http.StatusNotFound},
		{"/v1/cache/nothex", http.StatusBadRequest},
		{"/v1/cache/" + strings.ToUpper(key.ID()), http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.want {
			t.Fatalf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
		if tc.want == http.StatusOK {
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			got, err := runcache.DecodeEntry(key, b)
			if err != nil {
				t.Fatalf("served envelope does not verify: %v", err)
			}
			if got.Cycles != rep.Cycles {
				t.Fatalf("served report cycles = %d, want %d", got.Cycles, rep.Cycles)
			}
		} else {
			resp.Body.Close()
		}
	}
}

// TestPeerSharedCache is the shared-cache tier end to end over real HTTP:
// node A has the entry, node B misses locally, fetches it from A, serves
// it as a peer hit, and never simulates.
func TestPeerSharedCache(t *testing.T) {
	cacheA, err := runcache.New(runcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, tsA := newTestServer(t, Config{Cache: cacheA, Workers: 1, DefaultInsts: 20_000, NodeID: "a", Registry: obs.NewRegistry()})

	body := `{"workload":"specint95","seed":11}`
	key := resolveTestKey(t, RunRequest{Workload: "specint95", Seed: 11})
	rep := fakeReport(11)
	cacheA.Put(key, rep)

	cacheB, err := runcache.New(runcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sB, tsB := newTestServer(t, Config{Cache: cacheB, Workers: 1, DefaultInsts: 20_000, NodeID: "b", Registry: obs.NewRegistry()})
	sB.SetPeers([]string{tsA.URL})
	sB.simulate = func(context.Context, *core.Model, workload.Profile, core.RunOptions) (system.Report, error) {
		t.Error("node B simulated despite a peer holding the entry")
		return system.Report{}, nil
	}

	resp, b := postRun(t, tsB.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run via peer: %d %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Node"); got != "b" {
		t.Fatalf("X-Node = %q, want b", got)
	}
	if got := resp.Header.Get("X-Cache"); got != "hit-peer" {
		t.Fatalf("X-Cache = %q, want hit-peer", got)
	}
	var rr RunResponse
	if err := json.Unmarshal(b, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Cache != "hit-peer" || rr.Key != key.ID() {
		t.Fatalf("response cache=%q key=%q, want hit-peer/%s", rr.Cache, rr.Key, key.ID())
	}
	if s := cacheB.Stats(); s.PeerHits != 1 || s.Misses != 0 {
		t.Fatalf("node B stats = %+v, want one peer hit", s)
	}

	// The fetched entry populated B's local tiers: a repeat is a memory
	// hit with no second network round trip.
	resp2, _ := postRun(t, tsB.URL, body)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat X-Cache = %q, want hit", got)
	}
}

// TestPeerFetcherSkipsDeadPeers: a down peer costs one failed attempt,
// then the next peer answers.
func TestPeerFetcherSkipsDeadPeers(t *testing.T) {
	key := resolveTestKey(t, RunRequest{Workload: "specint95", Seed: 13})
	rep := fakeReport(13)
	envelope, err := runcache.EncodeEntry(key, rep)
	if err != nil {
		t.Fatal(err)
	}
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/cache/"+key.ID() {
			http.NotFound(w, r)
			return
		}
		w.Write(envelope)
	}))
	defer good.Close()

	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from here on

	f := NewPeerFetcher([]string{deadURL, good.URL}, nil, obs.NewRegistry())
	b, ok := f.Fetch(context.Background(), key)
	if !ok {
		t.Fatal("fetch failed despite a live peer")
	}
	if got, err := runcache.DecodeEntry(key, b); err != nil || got.Cycles != rep.Cycles {
		t.Fatalf("fetched envelope: %v", err)
	}

	// All peers dead: a miss, not an error.
	f.SetPeers([]string{deadURL})
	if _, ok := f.Fetch(context.Background(), key); ok {
		t.Fatal("fetch succeeded with no live peers")
	}
}

// TestDrainSheds: after DrainStarted, /healthz flips to 503 so the
// gateway stops routing here, and new runs are shed with 503 "draining".
func TestDrainSheds(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, DefaultInsts: 20_000, NodeID: "n0", Registry: obs.NewRegistry()})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy /healthz = %d", resp.StatusCode)
	}

	s.DrainStarted()
	if !s.Draining() {
		t.Fatal("Draining() false after DrainStarted")
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz = %d, want 503", resp.StatusCode)
	}
	runResp, body := postRun(t, ts.URL, `{"workload":"specint95"}`)
	if runResp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("draining run = %d %s, want 503 draining", runResp.StatusCode, body)
	}
	// Cache serving stays up during a drain so peers can still pull
	// entries from the departing node.
	resp, err = http.Get(ts.URL + "/v1/cache/" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("draining cache probe = %d, want 404 (still served)", resp.StatusCode)
	}
}
