// Package server exposes the simulator as a small HTTP service: a
// content-addressed run endpoint, the experiment-study harness, a health
// probe, and a Prometheus-style text metrics page.
//
// The service is deliberately stdlib-only. Admission control is two-stage:
// a request that needs a fresh simulation first takes a queue token
// (non-blocking — when the queue is full the request is shed with 429
// before any simulation work starts) and then a worker slot (blocking —
// this bounds concurrent simulations). Cache hits and deduplicated joiners
// never touch the queue: only the singleflight leader of a missing key
// pays for admission, so a burst of identical requests costs one slot.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sparc64v/internal/analytic"
	"sparc64v/internal/config"
	"sparc64v/internal/core"
	"sparc64v/internal/expt"
	"sparc64v/internal/obs"
	"sparc64v/internal/runcache"
	"sparc64v/internal/sched"
	"sparc64v/internal/system"
	"sparc64v/internal/workload"
)

// ErrOverloaded is returned by the admission gate when the queue is full;
// the handlers translate it to 429.
var ErrOverloaded = errors.New("server overloaded: queue full")

// Config parameterizes a Server.
type Config struct {
	// Cache serves repeated runs; required.
	Cache *runcache.Cache
	// Base is the configuration request overlays start from; the zero
	// value means config.Base().
	Base config.Config
	// Workers bounds concurrent simulations; 0 means sched.Workers().
	Workers int
	// MaxQueue bounds admitted-but-not-yet-running jobs beyond Workers;
	// 0 means 64. A negative value means no waiting room (admit only up
	// to Workers).
	MaxQueue int
	// DefaultInsts is the per-CPU trace length when a request does not
	// specify one; 0 means 1,000,000 (the repo's standard sweep length).
	DefaultInsts int
	// Registry receives the server's request metrics and is rendered on
	// /metrics after the hand-emitted series; nil means obs.Default(), so
	// the production service also exposes the sched/runcache/metamorph
	// series. Tests pass a fresh registry for deterministic output.
	Registry *obs.Registry
	// NodeID names this node in a cluster; when set it is echoed as the
	// X-Node header on every response so the gateway (and operators) can
	// attribute work. Empty means single-node operation.
	NodeID string
	// Peers lists peer node base URLs for the shared-cache protocol;
	// when non-empty the run cache gains a remote tier that consults
	// them (GET /v1/cache/{id}) before simulating a miss.
	Peers []string
	// PeerClient overrides the HTTP client peer fetches use (tests;
	// custom timeouts). nil means a dedicated client with the default
	// peer timeout.
	PeerClient *http.Client
}

// Server implements the HTTP handlers. Construct with New; serve
// Handler() from an http.Server the caller owns (so the caller controls
// listening and graceful Shutdown).
type Server struct {
	cache        *runcache.Cache
	base         config.Config
	workers      int
	maxQueue     int
	defaultInsts int

	// nodeID is the cluster identity; draining flips when a graceful
	// shutdown starts, turning /healthz into a drain signal and shedding
	// new runs with 503 so the gateway fails them over.
	nodeID      string
	draining    atomic.Bool
	peerClient  *http.Client
	peerFetcher *PeerFetcher

	// queue holds every admitted simulation (waiting or running); cap
	// workers+maxQueue. working holds running simulations; cap workers.
	queue   chan struct{}
	working chan struct{}

	runRequests      atomic.Uint64
	studyRequests    atomic.Uint64
	estimateRequests atomic.Uint64
	rejected         atomic.Uint64

	// cal is the embedded analytic calibration behind POST /v1/estimate;
	// the fast tier is pure arithmetic over it, so estimate requests never
	// touch the admission queue.
	cal *analytic.Calibration

	// reg holds the obs-based series; now is the request clock, scripted
	// by the exposition golden test.
	reg *obs.Registry
	now func() time.Time

	rejectedShed *obs.Counter
	drains       *obs.Counter

	// simulate runs one uncached simulation; tests substitute a scripted
	// implementation to pin admission and drain behavior without
	// simulating.
	simulate func(ctx context.Context, m *core.Model, p workload.Profile, opt core.RunOptions) (system.Report, error)

	mux *http.ServeMux
}

// New builds a Server.
func New(c Config) (*Server, error) {
	if c.Cache == nil {
		return nil, errors.New("server: Config.Cache is required")
	}
	if c.Base.Name == "" {
		c.Base = config.Base()
	}
	c.Workers = sched.Workers(c.Workers)
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = 64
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	}
	if c.DefaultInsts <= 0 {
		c.DefaultInsts = 1_000_000
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	cal, err := analytic.Default()
	if err != nil {
		return nil, fmt.Errorf("server: load calibration artifact: %w", err)
	}
	s := &Server{
		cal:          cal,
		cache:        c.Cache,
		base:         c.Base,
		workers:      c.Workers,
		maxQueue:     c.MaxQueue,
		defaultInsts: c.DefaultInsts,
		nodeID:       c.NodeID,
		peerClient:   c.PeerClient,
		queue:        make(chan struct{}, c.Workers+c.MaxQueue),
		working:      make(chan struct{}, c.Workers),
		reg:          c.Registry,
		now:          time.Now,
		rejectedShed: c.Registry.Counter("sparc64v_http_shed_total",
			"Requests shed with 429 because the admission queue was full."),
		drains: c.Registry.Counter("sparc64v_server_drains_total",
			"Graceful drains started (SIGINT/SIGTERM shutdowns)."),
		simulate: func(ctx context.Context, m *core.Model, p workload.Profile, opt core.RunOptions) (system.Report, error) {
			return m.RunContext(ctx, p, opt)
		},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	mux.HandleFunc("GET /v1/studies/{id}", s.handleStudy)
	mux.HandleFunc("GET /v1/cache/{id}", s.handleCacheEntry)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	if len(c.Peers) > 0 {
		s.SetPeers(c.Peers)
	}
	return s, nil
}

// SetPeers installs (or replaces) the peer list of the shared-cache
// remote tier. Tests and dynamic-membership callers use it when peer
// addresses are only known after construction.
func (s *Server) SetPeers(peers []string) {
	if s.peerFetcher == nil {
		s.peerFetcher = NewPeerFetcher(peers, s.peerClient, s.reg)
		s.cache.SetRemote(s.peerFetcher)
		return
	}
	s.peerFetcher.SetPeers(peers)
}

// Handler returns the service's root handler: the route mux wrapped in the
// request-metrics middleware.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := s.now()
		if s.nodeID != "" {
			w.Header().Set("X-Node", s.nodeID)
		}
		sw := &statusWriter{ResponseWriter: w}
		s.mux.ServeHTTP(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		endpoint := endpointLabel(r.URL.Path)
		labels := []obs.Label{obs.L("endpoint", endpoint), obs.L("code", strconv.Itoa(code))}
		s.reg.Counter("sparc64v_http_responses_total",
			"HTTP responses, by endpoint and status code.", labels...).Inc()
		s.reg.Histogram("sparc64v_http_request_seconds",
			"HTTP request handling latency, by endpoint and status code.",
			nil, labels...).Observe(s.now().Sub(t0).Seconds())
	})
}

// statusWriter captures the response status for the metrics middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// endpointLabel maps a request path to its bounded endpoint label — never
// the raw path, which would let clients mint unbounded series.
func endpointLabel(path string) string {
	switch {
	case path == "/v1/run":
		return "run"
	case path == "/v1/estimate":
		return "estimate"
	case strings.HasPrefix(path, "/v1/studies/"):
		return "study"
	case strings.HasPrefix(path, "/v1/cache/"):
		return "cache"
	case path == "/healthz":
		return "healthz"
	case path == "/metrics":
		return "metrics"
	}
	return "other"
}

// DrainStarted records the beginning of a graceful shutdown; cmd/simd
// calls it when the stop signal arrives, so post-drain scrapes (and the
// final stderr report) show the drain happened. From this point /healthz
// answers 503 and new /v1/run requests are shed with 503 "draining";
// in-flight runs, cache serving, estimates and metrics keep working so
// the node drains without losing accepted work.
func (s *Server) DrainStarted() {
	s.draining.Store(true)
	s.drains.Inc()
}

// Draining reports whether a graceful shutdown has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// admit reserves capacity for one simulation. It returns ErrOverloaded
// immediately when the queue is full, otherwise blocks until a worker slot
// frees (or ctx is cancelled). The returned release frees both.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	select {
	case s.queue <- struct{}{}:
	default:
		s.rejected.Add(1)
		s.rejectedShed.Inc()
		return nil, ErrOverloaded
	}
	select {
	case s.working <- struct{}{}:
	case <-ctx.Done():
		<-s.queue
		return nil, ctx.Err()
	}
	return func() { <-s.working; <-s.queue }, nil
}

// RunRequest is the POST /v1/run body. Config, when present, is a strict
// partial overlay on the server's base configuration: fields present
// override, absent fields keep their base value, unknown fields are a 400.
type RunRequest struct {
	Workload string `json:"workload"`
	Insts    int    `json:"insts,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Warmup   uint64 `json:"warmup,omitempty"`
	CPUs     int    `json:"cpus,omitempty"`
	// Sampling opts the run into sampled simulation (fast-forward +
	// detailed measurement windows). Omitted or null means a full run.
	// Sampled results are estimates and hash to their own cache keys, so
	// they never serve (or get served by) full-run requests; the response's
	// stats carry a "sampling" block identifying the mode.
	Sampling *config.Sampling `json:"sampling,omitempty"`
	Config   json.RawMessage  `json:"config,omitempty"`
}

// RunResponse is the POST /v1/run reply. Stats is the same system.Summary
// the sparc64sim -json flag emits, so server and CLI output share one
// encoder.
type RunResponse struct {
	Key   string         `json:"key"`
	Cache string         `json:"cache"`
	Stats system.Summary `json:"stats"`
}

// ResolvedRun is a RunRequest resolved against a base configuration: the
// model to run, the workload profile, the effective options, and the
// content address the result is cached under. The gateway resolves
// requests with the same code path the worker executes, so both sides
// agree byte-for-byte on every request's placement key.
type ResolvedRun struct {
	Model   *core.Model
	Profile workload.Profile
	Opt     core.RunOptions
	Key     runcache.Key
}

// ResolveRun validates req against base and computes its cache key.
// defaultInsts fills an absent insts field (<= 0 means the server
// default of 1,000,000). Every error is a client error (HTTP 400).
func ResolveRun(base config.Config, defaultInsts int, req RunRequest) (ResolvedRun, error) {
	var rr ResolvedRun
	if base.Name == "" {
		base = config.Base()
	}
	if defaultInsts <= 0 {
		defaultInsts = 1_000_000
	}
	prof, ok := workload.ByName(req.Workload)
	if !ok {
		return rr, fmt.Errorf("unknown workload %q (have %v)", req.Workload, workload.Names())
	}
	cfg := base
	if len(req.Config) > 0 {
		// Same strict overlay semantics as sparc64sim -config: present
		// fields override, unknown fields are rejected, the result is
		// validated.
		var err error
		cfg, err = config.OverlayJSON(cfg, bytes.NewReader(req.Config))
		if err != nil {
			return rr, fmt.Errorf("bad config overlay: %w", err)
		}
	}
	switch {
	case req.CPUs > 0:
		cfg = cfg.WithCPUs(req.CPUs)
	case prof.SharedBytes > 0 && cfg.CPUs <= 1:
		// Mirror the sparc64sim CLI: MP workloads default to the
		// paper's 16-processor system.
		cfg = cfg.WithCPUs(16)
	}
	if req.Insts < 0 {
		return rr, fmt.Errorf("insts must be >= 0")
	}
	opt := core.RunOptions{
		Insts:  req.Insts,
		Seed:   req.Seed,
		Warmup: req.Warmup,
		// One request is one job: harness fan-out stays with the
		// admission gate, not inside a single run.
		Workers: 1,
	}
	if opt.Insts == 0 {
		opt.Insts = defaultInsts
	}
	if req.Sampling != nil {
		if err := req.Sampling.Validate(); err != nil {
			return rr, fmt.Errorf("bad sampling: %w", err)
		}
		opt.Sample = *req.Sampling
	}
	m, err := core.NewModel(cfg)
	if err != nil {
		return rr, fmt.Errorf("bad configuration: %w", err)
	}
	key, err := m.RunKey(prof, opt)
	if err != nil {
		return rr, fmt.Errorf("hash run: %w", err)
	}
	return ResolvedRun{Model: m, Profile: prof, Opt: opt, Key: key}, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.runRequests.Add(1)
	if s.draining.Load() {
		// A draining node finishes in-flight work but takes no new runs;
		// 503 tells the gateway to fail over to the next replica.
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req RunRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	rr, err := ResolveRun(s.base, s.defaultInsts, req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rep, outcome, err := s.cache.GetOrRun(r.Context(), rr.Key, func(ctx context.Context) (system.Report, error) {
		release, err := s.admit(ctx)
		if err != nil {
			return system.Report{}, err
		}
		defer release()
		return s.simulate(ctx, rr.Model, rr.Profile, rr.Opt)
	})
	if err == nil {
		s.reg.Counter("sparc64v_server_runs_total",
			"Completed /v1/run requests, by workload and cache outcome.",
			obs.L("workload", rr.Profile.Name), obs.L("outcome", outcome.String())).Inc()
	}
	if err != nil {
		switch {
		case errors.Is(err, ErrOverloaded):
			httpError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			httpError(w, http.StatusServiceUnavailable, "run cancelled: %v", err)
		default:
			httpError(w, http.StatusInternalServerError, "run failed: %v", err)
		}
		return
	}
	w.Header().Set("X-Model-Version", core.ModelVersion)
	w.Header().Set("X-Cache", outcome.String())
	writeJSON(w, RunResponse{Key: rr.Key.ID(), Cache: outcome.String(), Stats: rep.Summary()})
}

// EstimateRequest is the POST /v1/estimate body: the same workload naming
// and strict configuration overlay as /v1/run, minus the run-shaping fields
// (insts/seed/warmup belong to simulation; the analytic tier's operating
// point is fixed by its calibration artifact).
type EstimateRequest struct {
	Workload string          `json:"workload"`
	CPUs     int             `json:"cpus,omitempty"`
	Config   json.RawMessage `json:"config,omitempty"`
}

// handleEstimate serves the analytic fast tier: a closed-form CPI estimate
// with confidence band and calibration provenance (the analytic.Estimate
// JSON). It never enters the admission queue — the computation is pure
// arithmetic over the embedded calibration artifact, so an estimate stays
// sub-millisecond even while every worker slot is busy simulating.
// Uncalibrated requests (MP configurations, workloads outside the artifact)
// get 404 with a fallback hint; a stale artifact (model version behind the
// binary) gets 503, because serving numbers fitted against a different
// simulator would be silently wrong.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	s.estimateRequests.Add(1)
	outcomeCounter := func(outcome string) *obs.Counter {
		return s.reg.Counter("sparc64v_server_estimates_total",
			"POST /v1/estimate outcomes: served, or fallback-to-/v1/run.",
			obs.L("outcome", outcome))
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req EstimateRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	prof, ok := workload.ByName(req.Workload)
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown workload %q (have %v)", req.Workload, workload.Names())
		return
	}
	cfg := s.base
	if len(req.Config) > 0 {
		var err error
		cfg, err = config.OverlayJSON(cfg, bytes.NewReader(req.Config))
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad config overlay: %v", err)
			return
		}
	}
	// Mirror /v1/run's CPU-count semantics so the two tiers price the same
	// machine for the same request body.
	switch {
	case req.CPUs > 0:
		cfg = cfg.WithCPUs(req.CPUs)
	case prof.SharedBytes > 0 && cfg.CPUs <= 1:
		cfg = cfg.WithCPUs(16)
	}
	if s.cal.ModelVersion != core.ModelVersion {
		outcomeCounter("fallback_stale").Inc()
		httpError(w, http.StatusServiceUnavailable,
			"calibration artifact is for model %q but this binary is %q; use POST /v1/run",
			s.cal.ModelVersion, core.ModelVersion)
		return
	}
	est, err := s.cal.Estimate(cfg, prof.Name)
	if err != nil {
		if errors.Is(err, analytic.ErrUncalibrated) {
			outcomeCounter("fallback_uncalibrated").Inc()
			httpError(w, http.StatusNotFound, "%v; use POST /v1/run", err)
			return
		}
		httpError(w, http.StatusBadRequest, "bad configuration: %v", err)
		return
	}
	outcomeCounter("served").Inc()
	w.Header().Set("X-Model-Version", core.ModelVersion)
	writeJSON(w, est)
}

// StudyResponse is the GET /v1/studies/{id} reply.
type StudyResponse struct {
	Study   string        `json:"study"`
	Results []StudyResult `json:"results"`
}

// StudyResult is one rendered paper artifact.
type StudyResult struct {
	ID    string   `json:"id"`
	Title string   `json:"title"`
	Table string   `json:"table"`
	Chart string   `json:"chart,omitempty"`
	Notes []string `json:"notes,omitempty"`
}

func (s *Server) handleStudy(w http.ResponseWriter, r *http.Request) {
	s.studyRequests.Add(1)
	id := r.PathValue("id")
	var study expt.Study
	found := false
	var slugs []string
	// The sweep registry plus the verification catalog: the harness is
	// addressable like any figure here, but stays out of Studies() so it
	// never appears in EXPERIMENTS.md.
	for _, st := range append(expt.Studies(), expt.VerificationStudy()) {
		slugs = append(slugs, st.Slug())
		if st.Slug() == id {
			study, found = st, true
		}
	}
	if !found {
		sort.Strings(slugs)
		httpError(w, http.StatusNotFound, "unknown study %q (have %v)", id, slugs)
		return
	}
	s.reg.Counter("sparc64v_study_requests_total",
		"Study requests served, by study slug.", obs.L("study", id)).Inc()
	opt := core.RunOptions{
		Insts:   s.defaultInsts,
		Workers: s.workers,
		Cache:   s.cache,
	}
	if v := r.URL.Query().Get("insts"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "bad insts %q", v)
			return
		}
		opt.Insts = n
	}
	if v := r.URL.Query().Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad seed %q", v)
			return
		}
		opt.Seed = n
	}
	// A study is one admitted job however many runs it fans out to; its
	// internal fan-out reuses the server's worker budget via opt.Workers.
	release, err := s.admit(r.Context())
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			httpError(w, http.StatusTooManyRequests, "%v", err)
		} else {
			httpError(w, http.StatusServiceUnavailable, "cancelled: %v", err)
		}
		return
	}
	defer release()
	results, err := study.Run(r.Context(), opt)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "study failed: %v", err)
		return
	}
	resp := StudyResponse{Study: id}
	for i := range results {
		res := &results[i]
		sr := StudyResult{ID: res.ID, Title: res.Title, Chart: res.Chart, Notes: res.Notes}
		if res.Table != nil {
			sr.Table = res.Table.String()
		}
		resp.Results = append(resp.Results, sr)
	}
	writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	cs := s.cache.Stats()
	instrs, cycles, runs := core.Meter()
	inflight := len(s.working)
	queued := len(s.queue) - inflight
	if queued < 0 {
		queued = 0
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b []byte
	emit := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	emit("# HELP sparc64v_requests_total HTTP requests received per endpoint.\n")
	emit("# TYPE sparc64v_requests_total counter\n")
	emit("sparc64v_requests_total{endpoint=\"estimate\"} %d\n", s.estimateRequests.Load())
	emit("sparc64v_requests_total{endpoint=\"run\"} %d\n", s.runRequests.Load())
	emit("sparc64v_requests_total{endpoint=\"study\"} %d\n", s.studyRequests.Load())
	emit("# HELP sparc64v_rejected_total Requests shed with 429 because the queue was full.\n")
	emit("# TYPE sparc64v_rejected_total counter\n")
	emit("sparc64v_rejected_total %d\n", s.rejected.Load())
	emit("# HELP sparc64v_cache_hits_total Run-cache hits by tier.\n")
	emit("# TYPE sparc64v_cache_hits_total counter\n")
	emit("sparc64v_cache_hits_total{tier=\"memory\"} %d\n", cs.MemoryHits)
	emit("sparc64v_cache_hits_total{tier=\"disk\"} %d\n", cs.DiskHits)
	emit("# HELP sparc64v_cache_misses_total Run-cache misses (simulations started).\n")
	emit("# TYPE sparc64v_cache_misses_total counter\n")
	emit("sparc64v_cache_misses_total %d\n", cs.Misses)
	emit("# HELP sparc64v_cache_shared_total Requests that joined an in-flight identical run.\n")
	emit("# TYPE sparc64v_cache_shared_total counter\n")
	emit("sparc64v_cache_shared_total %d\n", cs.Shared)
	emit("# HELP sparc64v_cache_corrupt_total Disk entries rejected by integrity checks.\n")
	emit("# TYPE sparc64v_cache_corrupt_total counter\n")
	emit("sparc64v_cache_corrupt_total %d\n", cs.Corrupt)
	emit("# HELP sparc64v_cache_entries Entries in the in-memory tier.\n")
	emit("# TYPE sparc64v_cache_entries gauge\n")
	emit("sparc64v_cache_entries %d\n", s.cache.Len())
	emit("# HELP sparc64v_inflight_runs Simulations currently running.\n")
	emit("# TYPE sparc64v_inflight_runs gauge\n")
	emit("sparc64v_inflight_runs %d\n", inflight)
	emit("# HELP sparc64v_queue_depth Admitted jobs waiting for a worker slot.\n")
	emit("# TYPE sparc64v_queue_depth gauge\n")
	emit("sparc64v_queue_depth %d\n", queued)
	emit("# HELP sparc64v_simulated_instructions_total Instructions committed by simulations in this process.\n")
	emit("# TYPE sparc64v_simulated_instructions_total counter\n")
	emit("sparc64v_simulated_instructions_total %d\n", instrs)
	emit("# HELP sparc64v_simulated_cycles_total Cycles simulated in this process.\n")
	emit("# TYPE sparc64v_simulated_cycles_total counter\n")
	emit("sparc64v_simulated_cycles_total %d\n", cycles)
	emit("# HELP sparc64v_simulated_runs_total Simulations completed in this process.\n")
	emit("# TYPE sparc64v_simulated_runs_total counter\n")
	emit("sparc64v_simulated_runs_total %d\n", runs)
	w.Write(b)
	// The obs registry follows the hand-emitted block: request histograms,
	// per-study/per-workload counters, and (on the default registry) the
	// sched/runcache/metamorph series.
	s.reg.WritePrometheus(w)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
