package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sparc64v/internal/core"
	"sparc64v/internal/runcache"
	"sparc64v/internal/system"
	"sparc64v/internal/workload"
)

// fakeReport fabricates a distinctive report for scripted simulations.
func fakeReport(tag uint64) system.Report {
	r := system.Report{
		Name:      fmt.Sprintf("cfg-%d", tag),
		Workload:  "wl",
		Cycles:    1000 + tag,
		Committed: 500 + tag,
		CPUs:      make([]system.CPUReport, 1),
	}
	r.CPUs[0].Core.Cycles = 900 + tag
	r.CPUs[0].Core.Committed = 450 + tag
	return r
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Cache == nil {
		c, err := runcache.New(runcache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cache = c
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postRun(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestRunEndpointEndToEnd drives the real simulator through the HTTP
// surface: a cold POST simulates, an identical POST is a cache hit, and
// the two response bodies are byte-identical except for the cache marker.
func TestRunEndpointEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, DefaultInsts: 20_000})
	body := `{"workload":"specint95","insts":20000,"seed":3}`

	resp1, b1 := postRun(t, ts.URL, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold run: %d %s", resp1.StatusCode, b1)
	}
	if got := resp1.Header.Get("X-Model-Version"); got != core.ModelVersion {
		t.Fatalf("X-Model-Version = %q, want %q", got, core.ModelVersion)
	}
	var r1, r2 RunResponse
	if err := json.Unmarshal(b1, &r1); err != nil {
		t.Fatal(err)
	}
	if r1.Cache != "miss" {
		t.Fatalf("cold run cache = %q, want miss", r1.Cache)
	}
	if r1.Stats.Committed == 0 || r1.Stats.Cycles == 0 || r1.Stats.IPC == 0 {
		t.Fatalf("cold run stats look empty: %+v", r1.Stats)
	}

	resp2, b2 := postRun(t, ts.URL, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm run: %d %s", resp2.StatusCode, b2)
	}
	if err := json.Unmarshal(b2, &r2); err != nil {
		t.Fatal(err)
	}
	if r2.Cache != "hit" {
		t.Fatalf("warm run cache = %q, want hit", r2.Cache)
	}
	if r1.Key != r2.Key {
		t.Fatalf("keys differ: %s vs %s", r1.Key, r2.Key)
	}
	// Byte-identical stats: the cached report re-encodes exactly.
	s1, _ := json.Marshal(r1.Stats)
	s2, _ := json.Marshal(r2.Stats)
	if string(s1) != string(s2) {
		t.Fatalf("cached stats differ from simulated stats:\n%s\n%s", s1, s2)
	}
}

// TestRunEndpointValidation covers the 400 paths.
func TestRunEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, tc := range []struct {
		name, body string
	}{
		{"unknown workload", `{"workload":"quake3"}`},
		{"unknown request field", `{"workload":"specint95","instz":1}`},
		{"unknown config field", `{"workload":"specint95","config":{"NoSuchKnob":1}}`},
		{"negative insts", `{"workload":"specint95","insts":-5}`},
		{"garbage body", `{`},
		// Sampling schedules are validated before the run is admitted
		// (regression: an overlapping schedule must be the client's 400,
		// never a simulation-side failure).
		{"sampling warmup+measure exceeds interval",
			`{"workload":"specint95","insts":1000,"sampling":{"interval_insts":10000,"warmup_insts":6000,"measure_insts":5000}}`},
		{"sampling without measurement window",
			`{"workload":"specint95","insts":1000,"sampling":{"interval_insts":10000}}`},
		{"sampling windows with zero interval",
			`{"workload":"specint95","insts":1000,"sampling":{"measure_insts":1000}}`},
	} {
		resp, b := postRun(t, ts.URL, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, b)
		}
	}
}

// TestRunOverlayRejection pins the overlay contract: a syntactically valid
// but structurally broken config overlay is the *client's* error — every
// case must come back 400 with a structured {"error": ...} body, never
// reach the simulator, and never surface as a 500.
func TestRunOverlayRejection(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, tc := range []struct {
		name, overlay string
	}{
		{"unknown field", `{"NoSuchKnob": 1}`},
		{"sets not a power of two", `{"L1D": {"SizeBytes": 98304, "Ways": 2, "LineBytes": 64, "HitCycles": 4}}`},
		{"size not divisible by ways*line", `{"L1D": {"SizeBytes": 100000, "Ways": 2, "LineBytes": 64, "HitCycles": 4}}`},
		{"zero hit latency", `{"L1D": {"SizeBytes": 131072, "Ways": 2, "LineBytes": 64, "HitCycles": 0}}`},
		{"L1/L2 line size mismatch", `{"L1D": {"SizeBytes": 131072, "Ways": 2, "LineBytes": 32, "HitCycles": 4}}`},
		{"negative L2 ways", `{"Mem": {"L2": {"SizeBytes": 2097152, "Ways": -4, "LineBytes": 64, "HitCycles": 21}}}`},
		{"zero issue width", `{"CPU": {"IssueWidth": 0}}`},
		{"BHT sets not a power of two", `{"BHT": {"Entries": 12288, "Ways": 2, "AccessCycles": 1}}`},
	} {
		body := fmt.Sprintf(`{"workload":"specint95","insts":1000,"config":%s}`, tc.overlay)
		resp, b := postRun(t, ts.URL, body)
		if resp.StatusCode >= 500 {
			t.Fatalf("%s: status %d — a bad overlay must never be a server error (%s)",
				tc.name, resp.StatusCode, b)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, b)
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(b, &e); err != nil || e.Error == "" {
			t.Errorf("%s: body %q is not a structured {\"error\": ...} reply", tc.name, b)
		}
	}
	// The overlay path still works: a well-formed variant is accepted.
	resp, b := postRun(t, ts.URL,
		`{"workload":"specint95","insts":1000,"config":{"L1D": {"SizeBytes": 65536, "Ways": 2, "LineBytes": 64, "HitCycles": 4}}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid overlay rejected: status %d (%s)", resp.StatusCode, b)
	}
}

// TestRunEndpointSampled drives a sampled run through the HTTP surface: the
// response must identify the estimate via the stats' sampling block, hash to
// a different cache key than the identical full run, and reject invalid
// schedules with 400.
func TestRunEndpointSampled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, DefaultInsts: 20_000})
	full := `{"workload":"specint95","insts":60000,"seed":3}`
	sampled := `{"workload":"specint95","insts":60000,"seed":3,` +
		`"sampling":{"interval_insts":10000,"warmup_insts":1000,"measure_insts":2000,"offset_insts":0}}`

	respF, bF := postRun(t, ts.URL, full)
	respS, bS := postRun(t, ts.URL, sampled)
	if respF.StatusCode != http.StatusOK || respS.StatusCode != http.StatusOK {
		t.Fatalf("status: full %d (%s), sampled %d (%s)", respF.StatusCode, bF, respS.StatusCode, bS)
	}
	var rF, rS RunResponse
	if err := json.Unmarshal(bF, &rF); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bS, &rS); err != nil {
		t.Fatal(err)
	}
	if rF.Key == rS.Key {
		t.Fatal("sampled and full runs share a cache key")
	}
	if rF.Stats.Sampling != nil {
		t.Error("full run reports a sampling block")
	}
	if rS.Stats.Sampling == nil || rS.Stats.Sampling.Windows == 0 {
		t.Fatalf("sampled run's stats carry no sampling block: %s", bS)
	}
	if rS.Cache != "miss" {
		t.Errorf("sampled run served from the full run's entry: cache=%q", rS.Cache)
	}

	resp, b := postRun(t, ts.URL,
		`{"workload":"specint95","sampling":{"interval_insts":100,"warmup_insts":90,"measure_insts":50}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid schedule: status %d (%s), want 400", resp.StatusCode, b)
	}
}

// TestQueueFullReturns429 pins overload shedding: with one worker and one
// queue slot, a third distinct request is rejected with 429 before its
// simulation starts.
func TestQueueFullReturns429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxQueue: 1})
	var started atomic.Uint64
	release := make(chan struct{})
	s.simulate = func(ctx context.Context, m *core.Model, p workload.Profile, opt core.RunOptions) (system.Report, error) {
		started.Add(1)
		<-release
		return fakeReport(uint64(opt.Seed)), nil
	}

	type result struct {
		code int
		body string
	}
	results := make(chan result, 2)
	for seed := 1; seed <= 2; seed++ {
		go func(seed int) {
			resp, b := postRun(t, ts.URL, fmt.Sprintf(`{"workload":"specint95","seed":%d}`, seed))
			results <- result{resp.StatusCode, string(b)}
		}(seed)
	}
	// Wait until one simulation is running and the second job holds the
	// queue slot (admitted, blocked on the worker gate).
	deadline := time.Now().Add(5 * time.Second)
	for !(started.Load() == 1 && len(s.queue) == 2) {
		if time.Now().After(deadline) {
			t.Fatalf("setup stalled: started=%d queued=%d", started.Load(), len(s.queue))
		}
		time.Sleep(time.Millisecond)
	}

	resp, b := postRun(t, ts.URL, `{"workload":"specint95","seed":3}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload: status %d (%s), want 429", resp.StatusCode, b)
	}
	if got := started.Load(); got != 1 {
		t.Fatalf("rejected request started a simulation: %d starts", got)
	}
	if got := s.rejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}

	close(release)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("admitted request failed after release: %d (%s)", r.code, r.body)
		}
	}
	if got := started.Load(); got != 2 {
		t.Fatalf("started = %d, want 2", got)
	}
}

// TestBurstDedup pins singleflight through the HTTP surface: a concurrent
// burst of identical requests runs exactly one simulation; the rest join
// it and report "dedup".
func TestBurstDedup(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})
	const joiners = 7
	var started atomic.Uint64
	release := make(chan struct{})
	s.simulate = func(ctx context.Context, m *core.Model, p workload.Profile, opt core.RunOptions) (system.Report, error) {
		started.Add(1)
		<-release
		return fakeReport(9), nil
	}

	outcomes := make(chan string, joiners+1)
	for i := 0; i < joiners+1; i++ {
		go func() {
			resp, b := postRun(t, ts.URL, `{"workload":"specint95","seed":9}`)
			if resp.StatusCode != http.StatusOK {
				outcomes <- fmt.Sprintf("status %d: %s", resp.StatusCode, b)
				return
			}
			var rr RunResponse
			if err := json.Unmarshal(b, &rr); err != nil {
				outcomes <- err.Error()
				return
			}
			outcomes <- rr.Cache
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.cache.Stats().Shared != joiners {
		if time.Now().After(deadline) {
			t.Fatalf("joiners stalled: stats %+v", s.cache.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	counts := map[string]int{}
	for i := 0; i < joiners+1; i++ {
		counts[<-outcomes]++
	}
	if counts["miss"] != 1 || counts["dedup"] != joiners {
		t.Fatalf("outcomes = %v, want 1 miss + %d dedup", counts, joiners)
	}
	if got := started.Load(); got != 1 {
		t.Fatalf("burst ran %d simulations, want 1", got)
	}
}

// TestMetricsScriptedSequence runs an exact request script and checks the
// /metrics exposition line by line.
func TestMetricsScriptedSequence(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxQueue: -1})
	release := make(chan struct{})
	blocked := make(chan struct{}, 8)
	s.simulate = func(ctx context.Context, m *core.Model, p workload.Profile, opt core.RunOptions) (system.Report, error) {
		if opt.Seed == 2 {
			blocked <- struct{}{}
			<-release
		}
		return fakeReport(uint64(opt.Seed)), nil
	}

	// 1-2: run A cold (miss), run A again (memory hit).
	for i := 0; i < 2; i++ {
		if resp, b := postRun(t, ts.URL, `{"workload":"specint95","seed":1}`); resp.StatusCode != 200 {
			t.Fatalf("run A: %d %s", resp.StatusCode, b)
		}
	}
	// 3: invalid workload (400) still counts as a received request.
	postRun(t, ts.URL, `{"workload":"nope"}`)
	// 4: run B occupies the only worker...
	done := make(chan struct{})
	go func() {
		postRun(t, ts.URL, `{"workload":"specint95","seed":2}`)
		close(done)
	}()
	<-blocked
	// 5: ...so run C is shed (MaxQueue<0 means no waiting room).
	if resp, b := postRun(t, ts.URL, `{"workload":"specint95","seed":3}`); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("run C: %d %s, want 429", resp.StatusCode, b)
	}
	// 6: unknown study (404) counts on the study endpoint.
	resp, err := http.Get(ts.URL + "/v1/studies/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("study: %d, want 404", resp.StatusCode)
	}
	close(release)
	<-done

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mb, _ := io.ReadAll(mresp.Body)
	metrics := string(mb)
	for _, want := range []string{
		`sparc64v_requests_total{endpoint="run"} 5`,
		`sparc64v_requests_total{endpoint="study"} 1`,
		`sparc64v_rejected_total 1`,
		`sparc64v_cache_hits_total{tier="memory"} 1`,
		`sparc64v_cache_hits_total{tier="disk"} 0`,
		`sparc64v_cache_misses_total 2`,
		`sparc64v_cache_shared_total 0`,
		`sparc64v_cache_corrupt_total 0`,
		`sparc64v_cache_entries 2`,
		`sparc64v_inflight_runs 0`,
		`sparc64v_queue_depth 0`,
	} {
		if !strings.Contains(metrics, want+"\n") {
			t.Errorf("metrics missing %q\n---\n%s", want, metrics)
		}
	}
}

// TestDrainFinishesInflight pins graceful shutdown: after Shutdown begins
// (the SIGINT path in cmd/simd), the in-flight run still completes with a
// full 200 response, while new connections are refused.
func TestDrainFinishesInflight(t *testing.T) {
	cache, err := runcache.New(runcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Cache: cache, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	entered := make(chan struct{})
	s.simulate = func(ctx context.Context, m *core.Model, p workload.Profile, opt core.RunOptions) (system.Report, error) {
		close(entered)
		<-release
		return fakeReport(1), nil
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	serveDone := make(chan struct{})
	go func() { srv.Serve(ln); close(serveDone) }()
	url := "http://" + ln.Addr().String()

	type result struct {
		code int
		body string
	}
	inflight := make(chan result, 1)
	go func() {
		resp, b := postRun(t, url, `{"workload":"specint95","seed":1}`)
		inflight <- result{resp.StatusCode, string(b)}
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Shutdown closes the listener first: wait until new connections are
	// refused, proving the drain has begun while the run is in flight.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := http.Get(url + "/healthz"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting after Shutdown")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a run was in flight", err)
	default:
	}

	close(release)
	r := <-inflight
	if r.code != http.StatusOK {
		t.Fatalf("in-flight run during drain: %d (%s), want 200", r.code, r.body)
	}
	var rr RunResponse
	if err := json.Unmarshal([]byte(r.body), &rr); err != nil {
		t.Fatalf("in-flight response truncated by drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	<-serveDone
}

// TestStudyEndpoint runs a real (tiny) study through the harness route and
// checks the rendered artifacts and cache wiring.
func TestStudyEndpoint(t *testing.T) {
	cache, err := runcache.New(runcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Cache: cache, Workers: 2})

	get := func() StudyResponse {
		resp, err := http.Get(ts.URL + "/v1/studies/figure-7?insts=20000")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("study: %d %s", resp.StatusCode, b)
		}
		var sr StudyResponse
		if err := json.Unmarshal(b, &sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}
	first := get()
	if len(first.Results) == 0 || first.Results[0].ID == "" || first.Results[0].Table == "" {
		t.Fatalf("study response empty: %+v", first)
	}
	misses := cache.Stats().Misses
	if misses == 0 {
		t.Fatal("study runs did not go through the cache")
	}
	second := get()
	if s := cache.Stats(); s.Misses != misses {
		t.Fatalf("warm study re-simulated: %d -> %d misses", misses, s.Misses)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if string(a) != string(b) {
		t.Fatal("warm study response differs from cold")
	}
}
