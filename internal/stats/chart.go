package stats

import (
	"fmt"
	"math"
	"strings"
)

// Bars renders a horizontal ASCII bar chart: one row per label, bar length
// proportional to |value|, negative values marked. It is how the sweep
// tool renders the paper's bar-graph figures in a terminal.
//
//	SPECint95    |###################          |  -17.2
func Bars(title string, labels []string, values []float64, unit string) string {
	if len(labels) != len(values) {
		panic("stats: labels/values length mismatch")
	}
	const width = 40
	maxAbs := MaxAbs(values)
	if maxAbs == 0 {
		maxAbs = 1
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	for i, l := range labels {
		n := int(math.Round(math.Abs(values[i]) / maxAbs * width))
		bar := strings.Repeat("#", n) + strings.Repeat(" ", width-n)
		sign := ""
		if values[i] < 0 {
			sign = "-"
		}
		fmt.Fprintf(&sb, "%-*s |%s| %s%.3g%s\n", labelW, l, bar, sign,
			math.Abs(values[i]), unit)
	}
	return sb.String()
}

// StackedBars renders one 100%-stacked bar per label, split into the given
// series shares (values per label should sum to ~1). Each series uses its
// rune from chars. This is the shape of the paper's Figure 7.
//
//	TPC-C  [ccccbbbbiiiissssssssssssssssssss]
func StackedBars(title string, labels []string, shares [][]float64, legend []string, chars []rune) string {
	const width = 48
	if len(labels) != len(shares) {
		panic("stats: labels/shares length mismatch")
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	for i, l := range labels {
		var bar []rune
		for s, share := range shares[i] {
			n := int(math.Round(share * width))
			ch := '?'
			if s < len(chars) {
				ch = chars[s]
			}
			for k := 0; k < n && len(bar) < width; k++ {
				bar = append(bar, ch)
			}
		}
		for len(bar) < width {
			bar = append(bar, ' ')
		}
		fmt.Fprintf(&sb, "%-*s [%s]\n", labelW, l, string(bar))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&sb, "%*s  ", labelW, "")
		parts := make([]string, 0, len(legend))
		for s, name := range legend {
			ch := '?'
			if s < len(chars) {
				ch = chars[s]
			}
			parts = append(parts, fmt.Sprintf("%c=%s", ch, name))
		}
		sb.WriteString(strings.Join(parts, " "))
		sb.WriteByte('\n')
	}
	return sb.String()
}
