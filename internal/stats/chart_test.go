package stats

import (
	"strings"
	"testing"
)

func TestBars(t *testing.T) {
	s := Bars("Demo", []string{"a", "bb"}, []float64{10, -5}, "%")
	if !strings.Contains(s, "Demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The larger magnitude has the longer bar.
	na := strings.Count(lines[1], "#")
	nb := strings.Count(lines[2], "#")
	if na <= nb {
		t.Errorf("bar lengths %d vs %d not proportional", na, nb)
	}
	if !strings.Contains(lines[2], "-5") {
		t.Errorf("negative value not rendered: %q", lines[2])
	}
	// All-zero input must not divide by zero.
	if z := Bars("", []string{"x"}, []float64{0}, ""); !strings.Contains(z, "|") {
		t.Error("zero bars malformed")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	Bars("", []string{"a"}, nil, "")
}

func TestStackedBars(t *testing.T) {
	s := StackedBars("Breakdown",
		[]string{"w1", "w2"},
		[][]float64{{0.5, 0.25, 0.25}, {0.1, 0.1, 0.8}},
		[]string{"core", "branch", "sx"},
		[]rune{'c', 'b', 's'})
	if !strings.Contains(s, "c=core") || !strings.Contains(s, "s=sx") {
		t.Errorf("legend missing:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // title, two bars, legend
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	// w1's core segment (~24 chars) dominates; w2's sx does.
	if strings.Count(lines[1], "c") <= strings.Count(lines[2], "c") {
		t.Error("share proportions wrong")
	}
	if strings.Count(lines[2], "s") <= strings.Count(lines[1], "s") {
		t.Error("share proportions wrong for sx")
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatch did not panic")
		}
	}()
	StackedBars("", []string{"a"}, nil, nil, nil)
}
