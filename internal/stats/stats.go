// Package stats provides the counting and reporting primitives shared by
// the simulator: rate/ratio helpers, a CPI (cycles-per-instruction) stack
// used for the paper's Figure 7 style execution-time breakdowns, and a
// plain-text table renderer for experiment output.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Ratio returns a/b, or 0 when b is zero.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Percent returns 100*a/b, or 0 when b is zero.
func Percent(a, b uint64) float64 { return 100 * Ratio(a, b) }

// PercentDelta returns the relative difference of x from base, in percent:
// 100*(x-base)/base. It is how the paper expresses all of its IPC ratios.
func PercentDelta(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (x - base) / base
}

// Breakdown is an execution-time decomposition in the style of the paper's
// Figure 7: the share of execution time attributable to the processor core,
// branch-prediction failures, L1/TLB misses ("ibs/tlb") and L2 misses
// ("sx"). Shares are fractions summing to ~1.
type Breakdown struct {
	// Core is time the I-unit and E-unit are the limit (perfect everything).
	Core float64
	// Branch is stall time from branch prediction failures.
	Branch float64
	// IBSTLB is stall time from L1 cache misses and TLB misses.
	IBSTLB float64
	// SX is stall time from L2 cache misses (serviced by the SX-unit).
	SX float64
}

// FromCycles builds a Breakdown from the four cycle counts obtained by the
// perfect-ization methodology: total (real machine), perfectL2 (all L2
// accesses hit), perfectL1 (additionally all L1/TLB accesses hit) and
// perfectAll (additionally perfect branch prediction).
//
// Each successive model removes one stall source, so the deltas attribute
// execution time exactly as the paper does. Negative deltas (possible from
// second-order interactions) are clamped to zero.
func FromCycles(total, perfectL2, perfectL1, perfectAll uint64) Breakdown {
	if total == 0 {
		return Breakdown{}
	}
	t := float64(total)
	clamp := func(a, b uint64) float64 {
		if a <= b {
			return 0
		}
		return float64(a-b) / t
	}
	return Breakdown{
		SX:     clamp(total, perfectL2),
		IBSTLB: clamp(perfectL2, perfectL1),
		Branch: clamp(perfectL1, perfectAll),
		Core:   float64(perfectAll) / t,
	}
}

// String renders the breakdown as percentages.
func (b Breakdown) String() string {
	return fmt.Sprintf("core=%.1f%% branch=%.1f%% ibs/tlb=%.1f%% sx=%.1f%%",
		100*b.Core, 100*b.Branch, 100*b.IBSTLB, 100*b.SX)
}

// Sum returns the total of all shares (≈1 when the clamping never fired).
func (b Breakdown) Sum() float64 { return b.Core + b.Branch + b.IBSTLB + b.SX }

// Table accumulates rows of mixed string/number cells and renders them as
// an aligned plain-text table. It is the output backend for the experiment
// harnesses and the sweep tool.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row. Cells may be string, fmt.Stringer, int, uint64,
// int64, or float64 (rendered with 3 significant decimals).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
}

func formatCell(c any) string {
	switch v := c.(type) {
	case string:
		return v
	case fmt.Stringer:
		return v.String()
	case float64:
		// One width for every float: integral values used to render "%.1f"
		// while fractional ones rendered "%.3f", so a column mixing 2.0 and
		// 1.975 came out ragged ("2.0" over "1.975") and the same quantity
		// changed width across configurations.
		return fmt.Sprintf("%.3f", v)
	case int:
		return fmt.Sprintf("%d", v)
	case int64:
		return fmt.Sprintf("%d", v)
	case uint64:
		return fmt.Sprintf("%d", v)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Rows returns the number of data rows added so far.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.headers))
	for i, h := range t.headers {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(width) {
				pad = width[i] - len(c)
			}
			if i == 0 { // left-align the label column
				sb.WriteString(c)
				sb.WriteString(strings.Repeat(" ", pad))
			} else {
				sb.WriteString(strings.Repeat(" ", pad))
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", width[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored markdown table (used when
// regenerating EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.title != "" {
		fmt.Fprintf(&sb, "**%s**\n\n", t.title)
	}
	sb.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = "---"
	}
	sb.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, the conventional aggregate for
// SPEC-style performance ratios. Non-positive inputs yield 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// MaxAbs returns the maximum absolute value in xs (0 for empty input).
func MaxAbs(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
