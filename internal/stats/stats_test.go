package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRatioPercent(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio with zero denominator must be 0")
	}
	if got := Ratio(3, 4); got != 0.75 {
		t.Errorf("Ratio(3,4) = %v", got)
	}
	if got := Percent(1, 4); got != 25 {
		t.Errorf("Percent(1,4) = %v", got)
	}
	if got := PercentDelta(90, 100); got != -10 {
		t.Errorf("PercentDelta(90,100) = %v", got)
	}
	if PercentDelta(5, 0) != 0 {
		t.Error("PercentDelta with zero base must be 0")
	}
}

func TestBreakdownFromCycles(t *testing.T) {
	// total 200, perfect-L2 150, perfect-L1 120, perfect-all 100:
	// sx=25%, ibs/tlb=15%, branch=10%, core=50%.
	b := FromCycles(200, 150, 120, 100)
	if b.SX != 0.25 || b.IBSTLB != 0.15 || b.Branch != 0.10 || b.Core != 0.50 {
		t.Fatalf("breakdown = %+v", b)
	}
	if math.Abs(b.Sum()-1) > 1e-12 {
		t.Fatalf("Sum = %v", b.Sum())
	}
	if !strings.Contains(b.String(), "sx=25.0%") {
		t.Errorf("String = %q", b.String())
	}
	// Zero total.
	if z := FromCycles(0, 0, 0, 0); z != (Breakdown{}) {
		t.Errorf("zero-total breakdown = %+v", z)
	}
	// Inverted cycle counts clamp to zero rather than going negative.
	b = FromCycles(100, 120, 110, 100)
	if b.SX != 0 {
		t.Errorf("clamped SX = %v", b.SX)
	}
}

// Property: for any descending cycle sequence the shares are non-negative
// and sum to 1.
func TestBreakdownQuick(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		// Build a descending sequence ≥1.
		total := uint64(a) + uint64(b) + uint64(c) + uint64(d) + 1
		p2 := uint64(b) + uint64(c) + uint64(d) + 1
		p1 := uint64(c) + uint64(d) + 1
		pa := uint64(d) + 1
		bd := FromCycles(total, p2, p1, pa)
		if bd.Core < 0 || bd.Branch < 0 || bd.IBSTLB < 0 || bd.SX < 0 {
			return false
		}
		return math.Abs(bd.Sum()-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("Demo", "name", "ipc", "n")
	tb.AddRow("tpcc", 0.5123, uint64(42))
	tb.AddRow("specint", 1.25, 7)
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	s := tb.String()
	for _, want := range []string{"Demo", "name", "tpcc", "0.512", "42", "specint"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("table has %d lines:\n%s", len(lines), s)
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| name | ipc | n |") || !strings.Contains(md, "| --- |") {
		t.Errorf("markdown output malformed:\n%s", md)
	}
}

func TestTableCellFormats(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(int64(-3), 2.0) // floats render at a single width, integral or not
	s := tb.String()
	if !strings.Contains(s, "-3") || !strings.Contains(s, "2.000") {
		t.Errorf("cell formatting: %q", s)
	}
	tb.AddRow("x", 1.975)
	s = tb.String()
	if !strings.Contains(s, "1.975") || strings.Contains(s, "2.0 ") {
		t.Errorf("mixed-column formatting: %q", s)
	}
}

func TestMeans(t *testing.T) {
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty means must be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v", got)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("GeoMean with non-positive input must be 0")
	}
	if got := MaxAbs([]float64{-3, 2}); got != 3 {
		t.Errorf("MaxAbs = %v", got)
	}
}
