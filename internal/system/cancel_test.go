package system

import (
	"context"
	"errors"
	"testing"

	"sparc64v/internal/config"
	"sparc64v/internal/trace"
	"sparc64v/internal/workload"
)

// cancellingSource cancels a context after n records, so the run is torn
// down mid-flight at a deterministic point in the instruction stream.
type cancellingSource struct {
	src    trace.Source
	n      int
	cancel context.CancelFunc
}

func (c *cancellingSource) Next(r *trace.Record) bool {
	if c.n == 0 {
		c.cancel()
	}
	c.n--
	return c.src.Next(r)
}

// TestCancelMidRunConservation is the regression test for the truncated-
// run counter bug: cancelling a run just after the warmup boundary used to
// leave Fetched seeded at zero while the in-flight instructions still
// committed, so a cancelled report could claim fetched < committed. The
// fix seeds Fetched with the in-flight count at the warmup reset; this
// test cancels mid-run and holds the report to the conservation
// invariants the verification harness enforces (fetch >= commit, per-class
// commits sum to the total, accesses >= misses).
func TestCancelMidRunConservation(t *testing.T) {
	cfg := config.Base()
	cfg.WarmupInsts = 2000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancellingSource{
		src:    trace.NewLimitSource(workload.New(workload.SPECint95(), 1, 0), 100_000),
		n:      8_000,
		cancel: cancel,
	}
	sys, err := New(cfg, []trace.Source{src})
	if err != nil {
		t.Fatal(err)
	}
	_, capped, err := sys.RunContext(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
	if capped {
		t.Fatal("cancelled run reported the cycle cap")
	}
	r := sys.Report("cancel-test")
	core := &r.CPUs[0].Core
	if core.Committed == 0 {
		t.Fatal("cancelled run committed nothing: cancellation landed before warmup")
	}
	if r.Committed >= 100_000 {
		t.Fatal("run completed before the cancellation took effect")
	}
	if core.Fetched < core.Committed {
		t.Errorf("fetched %d < committed %d on cancelled run", core.Fetched, core.Committed)
	}
	var byClass uint64
	for _, n := range core.CommittedByClass {
		byClass += n
	}
	if byClass != core.Committed {
		t.Errorf("per-class commit sum %d != committed %d", byClass, core.Committed)
	}
	for _, cs := range []struct {
		name string
		acc  uint64
		miss uint64
	}{
		{"L1I", r.CPUs[0].L1I.DemandAccesses, r.CPUs[0].L1I.DemandMisses},
		{"L1D", r.CPUs[0].L1D.DemandAccesses, r.CPUs[0].L1D.DemandMisses},
		{"L2", r.CPUs[0].L2.DemandAccesses, r.CPUs[0].L2.DemandMisses},
	} {
		if cs.miss > cs.acc {
			t.Errorf("%s: misses %d > accesses %d", cs.name, cs.miss, cs.acc)
		}
	}
	// The summary view must reflect the same balanced counters.
	s := r.Summary()
	if s.PerCPU[0].Fetched != core.Fetched || s.PerCPU[0].Committed != core.Committed {
		t.Errorf("summary counters diverge from report: %+v", s.PerCPU[0])
	}
}
