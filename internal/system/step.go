package system

// Lockstep stepping. A batched sweep (internal/core RunBatch) advances N
// independent machines against one shared trace stream; it needs to tick
// each machine a bounded number of cycles per round instead of running it
// to completion. Step is RunContext's loop body factored out with exactly
// the same termination semantics, so a machine driven by repeated Step
// calls evolves byte-identically to one driven by a single RunContext call
// (pinned by TestStepMatchesRunContext).

// Instance is the narrow view of a machine the lockstep batch driver
// drives. All per-configuration mutable state — pipeline slabs, cache
// arrays, predictor tables, coherence state — lives behind this interface
// in the System (and its CPUs), so the driver holds N opaque instances plus
// the shared trace ring and nothing else.
type Instance interface {
	// Step advances up to n cycles; see System.Step.
	Step(n int, maxCycles uint64) (done, capped bool)
	// Done reports whether every CPU has drained.
	Done() bool
	// Cycle returns the current global cycle.
	Cycle() uint64
	// SourceReadBound returns the most trace records CPU i can consume in
	// one cycle.
	SourceReadBound(i int) int
}

var _ Instance = (*System)(nil)

// Step advances the machine by at most n cycles, stopping early when every
// CPU drains or the cycle cap is reached. It returns done (machine drained)
// and capped (cycle cap hit); both false means the machine simply used its
// n cycles and wants more. The cap is checked before the drain test each
// cycle, matching RunContext, so a machine that drains exactly at the cap
// reports capped — the two drivers classify every run identically.
func (s *System) Step(n int, maxCycles uint64) (done, capped bool) {
	if maxCycles == 0 {
		maxCycles = 1 << 62
	}
	for ; n > 0; n-- {
		if s.cycle >= maxCycles {
			return false, true
		}
		if s.Done() {
			return true, false
		}
		for _, c := range s.cpus {
			c.Tick(s.cycle)
		}
		s.cycle++
	}
	if s.cycle >= maxCycles {
		return false, true
	}
	return s.Done(), false
}

// SourceReadBound implements Instance for CPU i.
func (s *System) SourceReadBound(i int) int { return s.cpus[i].SourceReadBound() }
