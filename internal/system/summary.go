package system

import (
	"encoding/json"
	"io"

	"sparc64v/internal/isa"
)

// Summary is the flattened, serialization-friendly view of a Report: all
// computed metrics materialized, suitable for downstream tooling
// (spreadsheets, plotting, regression tracking).
type Summary struct {
	Config   string `json:"config"`
	Workload string `json:"workload"`

	Cycles         uint64  `json:"cycles"`
	Committed      uint64  `json:"instructions"`
	IPC            float64 `json:"ipc"`
	CPI            float64 `json:"cpi"`
	L1IMissRate    float64 `json:"l1i_miss_rate"`
	L1DMissRate    float64 `json:"l1d_miss_rate"`
	L2DemandMiss   float64 `json:"l2_demand_miss_rate"`
	L2TotalMiss    float64 `json:"l2_total_miss_rate"`
	BranchFailRate float64 `json:"branch_failure_rate"`

	BusWaitCycles  uint64 `json:"bus_wait_cycles"`
	DRAMWaitCycles uint64 `json:"dram_wait_cycles"`
	MemoryReads    uint64 `json:"memory_reads"`
	CacheTransfers uint64 `json:"cache_to_cache_transfers"`
	Invalidations  uint64 `json:"invalidations"`
	Writebacks     uint64 `json:"writebacks"`

	// Sampling carries the sampled-simulation schedule and error bound when
	// the run used sampled mode; nil (omitted) for full runs, so consumers
	// can always tell an estimate from an exact measurement.
	Sampling *SamplingInfo `json:"sampling,omitempty"`

	PerCPU []CPUSummary `json:"per_cpu,omitempty"`
}

// CPUSummary is the per-processor slice of a Summary.
type CPUSummary struct {
	IPC       float64 `json:"ipc"`
	Committed uint64  `json:"instructions"`
	// Fetched counts instructions that left the fetch unit. Conservation:
	// Fetched >= Committed on every run, including truncated and cancelled
	// ones (fetched instructions may never commit; the reverse is
	// impossible).
	Fetched uint64 `json:"fetched"`
	// CommittedByClass splits Committed by instruction class name; the sum
	// of its values equals Committed, and on a zero-warmup run the counts
	// equal the trace composition (see internal/metamorph).
	CommittedByClass map[string]uint64 `json:"committed_by_class,omitempty"`
	Cycles           uint64            `json:"cycles"`
	SpecCancels      uint64            `json:"speculative_cancels"`
	BankConflicts    uint64            `json:"bank_conflicts"`
	StallWindow      uint64            `json:"stall_window"`
	StallRename      uint64            `json:"stall_rename"`
	StallRS          uint64            `json:"stall_rs"`
	StallLQ          uint64            `json:"stall_lq"`
	StallSQ          uint64            `json:"stall_sq"`
	// Per-cause front-end stalls and the chip's TLB penalty cycles: the
	// fields the analytic estimator (internal/analytic) consumes, exposed
	// so an estimate is explainable from one run's JSON.
	FetchStallICache uint64  `json:"fetch_stall_icache"`
	FetchStallBranch uint64  `json:"fetch_stall_branch"`
	FetchBubbles     uint64  `json:"fetch_bubbles"`
	TLBStallCycles   uint64  `json:"tlb_stall_cycles"`
	ZeroFrontend     uint64  `json:"zero_commit_frontend"`
	ZeroMemory       uint64  `json:"zero_commit_memory"`
	ZeroExecute      uint64  `json:"zero_commit_execute"`
	ZeroRS           uint64  `json:"zero_commit_rs"`
	ITLBMissRate     float64 `json:"itlb_miss_rate"`
	DTLBMissRate     float64 `json:"dtlb_miss_rate"`
}

// Summary flattens the report.
func (r *Report) Summary() Summary {
	s := Summary{
		Config:         r.Name,
		Workload:       r.Workload,
		Cycles:         r.MeasuredCycles(),
		Committed:      r.Committed,
		IPC:            r.IPC(),
		L1IMissRate:    r.L1IMissRate(),
		L1DMissRate:    r.L1DMissRate(),
		L2DemandMiss:   r.L2DemandMissRate(),
		L2TotalMiss:    r.L2TotalMissRate(),
		BranchFailRate: r.BranchFailureRate(),
		BusWaitCycles:  r.BusWaitCycles,
		DRAMWaitCycles: r.DRAMWaitCycles,
		MemoryReads:    r.Coherence.MemoryReads,
		CacheTransfers: r.Coherence.CacheTransfers,
		Invalidations:  r.Coherence.Invalidations,
		Writebacks:     r.Coherence.Writebacks,
	}
	if s.IPC > 0 {
		s.CPI = 1 / s.IPC
	}
	if r.Sampling != nil {
		si := *r.Sampling
		s.Sampling = &si
	}
	for i := range r.CPUs {
		c := &r.CPUs[i]
		byClass := make(map[string]uint64)
		for op, n := range c.Core.CommittedByClass {
			if n > 0 {
				byClass[isa.Class(op).String()] = n
			}
		}
		s.PerCPU = append(s.PerCPU, CPUSummary{
			IPC:              c.IPC(),
			Committed:        c.Core.Committed,
			Fetched:          c.Core.Fetched,
			CommittedByClass: byClass,
			Cycles:           c.Core.Cycles,
			SpecCancels:      c.Core.SpecCancels,
			BankConflicts:    c.Core.BankConflicts,
			StallWindow:      c.Core.StallWindow,
			StallRename:      c.Core.StallRename,
			StallRS:          c.Core.StallRS,
			StallLQ:          c.Core.StallLQ,
			StallSQ:          c.Core.StallSQ,
			FetchStallICache: c.Core.FetchStallICache,
			FetchStallBranch: c.Core.FetchStallBranch,
			FetchBubbles:     c.Core.FetchBubbles,
			TLBStallCycles:   c.TLBStallCycles,
			ZeroFrontend:     c.Core.ZeroCommitFrontend,
			ZeroMemory:       c.Core.ZeroCommitMemory,
			ZeroExecute:      c.Core.ZeroCommitExecute,
			ZeroRS:           c.Core.ZeroCommitRS,
			ITLBMissRate:     c.ITLBMissRate,
			DTLBMissRate:     c.DTLBMissRate,
		})
	}
	return s
}

// WriteJSON writes the summary as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Summary())
}
