package system

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sparc64v/internal/config"
	"sparc64v/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestSummaryGoldenJSON pins the exact Summary JSON (the sparc64sim -json
// and POST /v1/run payload) for a small deterministic run. Any field
// addition, rename, or value change shows up as a diff here — the
// reminder to bump core.ModelVersion so cached runs don't serve a stale
// shape. Regenerate with: go test ./internal/system -run SummaryGolden -update
func TestSummaryGoldenJSON(t *testing.T) {
	r := runUP(t, config.Base(), workload.SPECint95(), 20000)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "summary_specint95.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("summary JSON drifted from golden %s (regenerate with -update if intended, and bump core.ModelVersion):\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
	// The golden must carry the per-cause stall breakdown the analytic
	// estimator consumes.
	for _, field := range []string{
		"fetch_stall_icache", "fetch_stall_branch", "fetch_bubbles", "tlb_stall_cycles",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(`"`+field+`"`)) {
			t.Errorf("summary JSON missing stall-breakdown field %q", field)
		}
	}
}
