// Package system composes the full machine model: one or more processor
// chips (out-of-order core + L1s + on/off-chip L2), the snooping coherence
// controller, the system bus and main memory — the paper's "detailed
// processor model and detailed memory system model" in one object, usable
// as a uniprocessor or an SMP (TPC-C 16P).
package system

import (
	"context"
	"fmt"

	"sparc64v/internal/bpred"
	"sparc64v/internal/cache"
	"sparc64v/internal/coherence"
	"sparc64v/internal/config"
	"sparc64v/internal/cpu"
	"sparc64v/internal/mem"
	"sparc64v/internal/stats"
	"sparc64v/internal/trace"
)

// System is a complete simulated machine.
type System struct {
	cfg   config.Config
	cpus  []*cpu.CPU
	chips []*cpu.ChipMem
	ctrl  *coherence.Controller
	bus   *mem.Bus
	dram  *mem.DRAM
	cycle uint64
}

// New builds a machine for cfg; sources supplies one instruction trace per
// CPU (len(sources) must equal cfg.CPUs).
func New(cfg config.Config, sources []trace.Source) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sources) != cfg.CPUs {
		return nil, fmt.Errorf("system: %d sources for %d CPUs", len(sources), cfg.CPUs)
	}
	s := &System{cfg: cfg}
	s.bus = mem.NewBus(cfg.Mem, cfg.Fidelity.BusContention)
	s.dram = mem.NewDRAM(cfg.Mem, cfg.Fidelity.BusContention)
	s.ctrl = coherence.NewController(cfg.Mem, s.bus, s.dram, cfg.Fidelity.CoherenceTiming)
	for i := 0; i < cfg.CPUs; i++ {
		chip := cpu.NewChipMem(&s.cfg, i, s.ctrl)
		s.ctrl.AttachChip(chip)
		s.chips = append(s.chips, chip)
		s.cpus = append(s.cpus, cpu.New(&s.cfg, i, chip, sources[i]))
	}
	return s, nil
}

// Done reports whether every CPU has drained.
func (s *System) Done() bool {
	for _, c := range s.cpus {
		if !c.Done() {
			return false
		}
	}
	return true
}

// Run advances the machine until every CPU drains or maxCycles elapse.
// It returns the cycles simulated and whether the run hit the cycle cap.
func (s *System) Run(maxCycles uint64) (uint64, bool) {
	cycles, capped, _ := s.RunContext(context.Background(), maxCycles)
	return cycles, capped
}

// ctxPollStride is how often (in global cycles) RunContext polls its
// context. 4K cycles is coarse enough that the check never shows up in the
// hot-loop profile, yet a mid-run cancellation still lands within
// microseconds of wall time.
const ctxPollStride = 4096

// RunContext is Run with a cancellation point: the loop polls ctx every
// ctxPollStride global cycles and stops with ctx.Err() once the context is
// done. The machine state stays consistent on early return — Report still
// snapshots whatever was simulated up to the cancellation cycle.
func (s *System) RunContext(ctx context.Context, maxCycles uint64) (uint64, bool, error) {
	if maxCycles == 0 {
		maxCycles = 1 << 62
	}
	done := ctx.Done()
	for s.cycle < maxCycles {
		if done != nil && s.cycle&(ctxPollStride-1) == 0 {
			select {
			case <-done:
				return s.cycle, false, ctx.Err()
			default:
			}
		}
		if s.Done() {
			return s.cycle, false, nil
		}
		for _, c := range s.cpus {
			c.Tick(s.cycle)
		}
		s.cycle++
	}
	return s.cycle, true, nil
}

// Cycle returns the current global cycle.
func (s *System) Cycle() uint64 { return s.cycle }

// CPU returns processor i (testing and detailed reporting).
func (s *System) CPU(i int) *cpu.CPU { return s.cpus[i] }

// Chip returns chip i's memory hierarchy.
func (s *System) Chip(i int) *cpu.ChipMem { return s.chips[i] }

// Controller returns the coherence controller.
func (s *System) Controller() *coherence.Controller { return s.ctrl }

// Bus returns the system bus (reporting and diagnostics).
func (s *System) Bus() *mem.Bus { return s.bus }

// DRAM returns main memory (reporting and diagnostics).
func (s *System) DRAM() *mem.DRAM { return s.dram }

// CPUReport is the per-processor slice of a Report.
type CPUReport struct {
	// Core is the core counter block.
	Core cpu.Stats
	// Branch is the predictor counter block (zero under perfect branch).
	Branch bpred.Stats
	// L1I, L1D, L2 are the cache counter blocks.
	L1I, L1D, L2 cache.Stats
	// ITLBMissRate and DTLBMissRate are misses per access.
	ITLBMissRate, DTLBMissRate float64
	// TLBStallCycles is the cycles charged to TLB miss penalties (both
	// TLBs), the chip-level counterpart of the core's stall attribution.
	TLBStallCycles uint64
}

// IPC returns this CPU's committed instructions per cycle.
func (r *CPUReport) IPC() float64 { return r.Core.IPC() }

// Report is the machine-level result of a run.
type Report struct {
	// Name echoes the configuration name.
	Name string
	// Workload labels the trace.
	Workload string
	// Cycles is the global cycle count; Committed sums all CPUs. In a
	// sampled run both cover only the detailed measurement windows (the
	// per-CPU counter blocks are measurement-window sums, so every derived
	// rate and the IPC ratio estimator stay correct); Sampling carries the
	// extrapolation to the whole run.
	Cycles    uint64
	Committed uint64
	// CPUs holds the per-processor reports.
	CPUs []CPUReport
	// Coherence is the protocol counter block.
	Coherence coherence.Stats
	// BusWaitCycles and DRAMWaitCycles expose queuing delay.
	BusWaitCycles, DRAMWaitCycles uint64
	// HitCap reports the run ended at the cycle cap (likely deadlock).
	HitCap bool
	// Sampling is non-nil iff the run used sampled simulation; it records
	// the schedule, the fast-forward/detailed split and the error model.
	Sampling *SamplingInfo `json:",omitempty"`
}

// SamplingInfo describes how a sampled run produced its Report: the window
// schedule, how much work ran in each mode, and the per-window CPI spread
// that bounds the estimate's error.
type SamplingInfo struct {
	// Interval, Warmup, Measure and Offset echo the sampling schedule
	// (per-CPU instruction counts).
	Interval, Warmup, Measure, Offset int
	// Windows counts completed measurement windows.
	Windows int
	// FastForwarded counts instructions executed functionally (all CPUs).
	FastForwarded uint64
	// DetailedInsts counts instructions committed on the detailed model,
	// warm-up windows included (all CPUs).
	DetailedInsts uint64
	// MeasuredInsts counts instructions committed inside measurement
	// windows (all CPUs) — the denominator of the CPI estimator.
	MeasuredInsts uint64
	// DetailedCycles is the global cycle count actually simulated in
	// detail (warm-up + measurement).
	DetailedCycles uint64
	// CPIMean and CPIStd summarize the per-window CPI distribution;
	// CPIHalf95 is the 95% confidence half-width (1.96·std/√Windows).
	// The headline sampled CPI is the ratio estimator over all windows
	// (Report.IPC), not CPIMean; CPIMean exists to price the spread.
	CPIMean, CPIStd, CPIHalf95 float64
	// EstimatedCycles extrapolates whole-run per-CPU cycles: measured CPI
	// applied to every instruction the run advanced through.
	EstimatedCycles uint64
}

// MeasuredCycles returns the mean post-warmup cycle count across CPUs —
// the steady-state execution time the paper's analyses compare.
func (r *Report) MeasuredCycles() uint64 {
	if len(r.CPUs) == 0 {
		return r.Cycles
	}
	var sum uint64
	for i := range r.CPUs {
		sum += r.CPUs[i].Core.Cycles
	}
	return sum / uint64(len(r.CPUs))
}

// IPC returns the mean per-CPU IPC — the paper's figure of merit for both
// UP and MP comparisons.
func (r *Report) IPC() float64 {
	var xs []float64
	for i := range r.CPUs {
		xs = append(xs, r.CPUs[i].IPC())
	}
	return stats.Mean(xs)
}

// L1IMissRate returns demand misses per access across CPUs.
func (r *Report) L1IMissRate() float64 {
	return r.missRate(func(c *CPUReport) *cache.Stats { return &c.L1I })
}

// L1DMissRate returns demand misses per access across CPUs.
func (r *Report) L1DMissRate() float64 {
	return r.missRate(func(c *CPUReport) *cache.Stats { return &c.L1D })
}

// L2DemandMissRate returns demand misses per demand access across CPUs
// (the paper's "with-Demand"/"without" style metric).
func (r *Report) L2DemandMissRate() float64 {
	return r.missRate(func(c *CPUReport) *cache.Stats { return &c.L2 })
}

// L2TotalMissRate includes prefetch requests (the paper's "with" bars).
func (r *Report) L2TotalMissRate() float64 {
	var acc, miss uint64
	for i := range r.CPUs {
		s := &r.CPUs[i].L2
		acc += s.DemandAccesses + s.PrefetchAccesses
		miss += s.DemandMisses + s.PrefetchMisses
	}
	return stats.Ratio(miss, acc)
}

func (r *Report) missRate(sel func(*CPUReport) *cache.Stats) float64 {
	var acc, miss uint64
	for i := range r.CPUs {
		s := sel(&r.CPUs[i])
		acc += s.DemandAccesses
		miss += s.DemandMisses
	}
	return stats.Ratio(miss, acc)
}

// BranchFailureRate returns mispredictions per branch across CPUs.
func (r *Report) BranchFailureRate() float64 {
	var br, mp uint64
	for i := range r.CPUs {
		br += r.CPUs[i].Branch.Branches()
		mp += r.CPUs[i].Branch.Mispredicts()
	}
	return stats.Ratio(mp, br)
}

// Report snapshots the machine state into a Report.
func (s *System) Report(workload string) Report {
	r := Report{
		Name:     s.cfg.Name,
		Workload: workload,
		Cycles:   s.cycle,
	}
	for i, c := range s.cpus {
		cr := CPUReport{
			Core: c.Stats,
			L1I:  s.chips[i].L1I.Stats,
			L1D:  s.chips[i].L1D.Stats,
			L2:   s.chips[i].L2.Stats,
		}
		if p := c.Predictor(); p != nil {
			cr.Branch = p.Stats
		}
		cr.ITLBMissRate = s.chips[i].ITLB.MissRate()
		cr.DTLBMissRate = s.chips[i].DTLB.MissRate()
		cr.TLBStallCycles = s.chips[i].TLBStallCycles
		r.CPUs = append(r.CPUs, cr)
		r.Committed += c.Stats.Committed
	}
	r.Coherence = s.ctrl.Stats
	r.BusWaitCycles = s.bus.WaitCycles()
	r.DRAMWaitCycles = s.dram.WaitCycles()
	return r
}

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s/%s: IPC=%.3f l1i=%.4f l1d=%.4f l2=%.4f bpfail=%.4f",
		r.Name, r.Workload, r.IPC(), r.L1IMissRate(), r.L1DMissRate(),
		r.L2DemandMissRate(), r.BranchFailureRate())
}
