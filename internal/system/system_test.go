package system

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"sparc64v/internal/config"
	"sparc64v/internal/trace"
	"sparc64v/internal/workload"
)

func sources(p workload.Profile, n int, insts int) []trace.Source {
	gens := workload.NewMP(p, 42, n)
	out := make([]trace.Source, n)
	for i, g := range gens {
		out[i] = trace.NewLimitSource(g, insts)
	}
	return out
}

func runUP(t *testing.T, cfg config.Config, p workload.Profile, insts int) Report {
	t.Helper()
	cfg.WarmupInsts = uint64(insts / 5)
	sys, err := New(cfg, sources(p, 1, insts))
	if err != nil {
		t.Fatal(err)
	}
	if _, capped := sys.Run(50_000_000); capped {
		t.Fatalf("run hit the cycle cap: %v", sys.CPU(0))
	}
	return sys.Report(p.Name)
}

func TestNewValidates(t *testing.T) {
	cfg := config.Base()
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("New accepted 0 sources for 1 CPU")
	}
	cfg.CPUs = 0
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

func TestUPBaseSPECint(t *testing.T) {
	r := runUP(t, config.Base(), workload.SPECint95(), 40000)
	ipc := r.IPC()
	if ipc < 0.2 || ipc > 3.5 {
		t.Fatalf("SPECint95 IPC = %.3f out of plausible range", ipc)
	}
	if r.Committed == 0 || r.Cycles == 0 {
		t.Fatal("empty report")
	}
	if r.BranchFailureRate() <= 0 || r.BranchFailureRate() > 0.5 {
		t.Fatalf("branch failure rate = %.4f", r.BranchFailureRate())
	}
	if s := r.String(); !strings.Contains(s, "IPC=") {
		t.Errorf("report string: %q", s)
	}
}

func TestUPBaseTPCC(t *testing.T) {
	r := runUP(t, config.Base(), workload.TPCC(), 40000)
	if r.IPC() <= 0 {
		t.Fatal("zero IPC")
	}
	// TPC-C must show real L2 pressure (its data set is far beyond 2MB).
	if r.L2DemandMissRate() < 0.02 {
		t.Errorf("TPC-C L2 demand miss rate %.4f suspiciously low", r.L2DemandMissRate())
	}
	// And a much worse L1I story than SPEC.
	spec := runUP(t, config.Base(), workload.SPECint95(), 40000)
	if r.L1IMissRate() <= spec.L1IMissRate() {
		t.Errorf("TPC-C L1I miss %.4f not above SPECint95 %.4f",
			r.L1IMissRate(), spec.L1IMissRate())
	}
	if r.IPC() >= spec.IPC() {
		t.Errorf("TPC-C IPC %.3f not below SPECint95 %.3f", r.IPC(), spec.IPC())
	}
}

func TestPerfectLaddersImprove(t *testing.T) {
	base := runUP(t, config.Base(), workload.TPCC(), 30000)
	pl2 := runUP(t, config.Base().WithPerfect(config.Perfect{L2: true}),
		workload.TPCC(), 30000)
	pl1 := runUP(t, config.Base().WithPerfect(config.Perfect{L2: true, L1: true, TLB: true}),
		workload.TPCC(), 30000)
	pall := runUP(t, config.Base().WithPerfect(config.Perfect{L2: true, L1: true, TLB: true, Branch: true}),
		workload.TPCC(), 30000)
	if !(pall.IPC() >= pl1.IPC() && pl1.IPC() >= pl2.IPC() && pl2.IPC() > base.IPC()) {
		t.Errorf("perfect ladder not monotone: base=%.3f pL2=%.3f pL1=%.3f pAll=%.3f",
			base.IPC(), pl2.IPC(), pl1.IPC(), pall.IPC())
	}
}

func TestSMPRuns(t *testing.T) {
	cfg := config.Base().WithCPUs(4)
	cfg.WarmupInsts = 2000
	sys, err := New(cfg, sources(workload.TPCC16P(), 4, 15000))
	if err != nil {
		t.Fatal(err)
	}
	if _, capped := sys.Run(50_000_000); capped {
		t.Fatal("SMP run hit the cycle cap")
	}
	r := sys.Report("TPC-C(4P)")
	if len(r.CPUs) != 4 {
		t.Fatalf("report has %d CPUs", len(r.CPUs))
	}
	for i := range r.CPUs {
		if r.CPUs[i].Core.Committed == 0 {
			t.Errorf("CPU %d committed nothing", i)
		}
	}
	// Sharing must generate coherence traffic.
	if r.Coherence.CacheTransfers == 0 && r.Coherence.Invalidations == 0 {
		t.Errorf("no coherence activity in a shared-data SMP run: %+v", r.Coherence)
	}
}

func TestSMPCoherenceInvariantSpotCheck(t *testing.T) {
	cfg := config.Base().WithCPUs(2)
	cfg.WarmupInsts = 0
	sys, err := New(cfg, sources(workload.TPCC16P(), 2, 8000))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(20_000_000)
	// Spot-check shared-region lines for MOESI invariant violations.
	base := uint64(0x4000_0000_0000)
	for off := uint64(0); off < 1<<20; off += 4096 {
		if !sys.Controller().CheckCoherence(base + off) {
			t.Fatalf("coherence invariant violated at %#x", base+off)
		}
	}
}

func TestFlatMemoryFidelityDiffers(t *testing.T) {
	flat := config.Base()
	flat.Fidelity.FlatMemory = true
	flat.Fidelity.FlatMemoryCycles = 30
	flat.Fidelity.BusContention = false
	flat.Fidelity.CoherenceTiming = false
	rFlat := runUP(t, flat, workload.TPCC(), 25000)
	rFull := runUP(t, config.Base(), workload.TPCC(), 25000)
	// The flat 30-cycle memory hides the real L2-miss cost: it must report
	// clearly higher performance than the detailed model — the paper's
	// core argument for modeling the memory system in detail.
	if rFlat.IPC() <= rFull.IPC()*1.05 {
		t.Errorf("flat-memory IPC %.3f not clearly above detailed %.3f",
			rFlat.IPC(), rFull.IPC())
	}
}

// Determinism: identical runs produce identical cycle counts.
func TestDeterminism(t *testing.T) {
	a := runUP(t, config.Base(), workload.SPECfp95(), 20000)
	b := runUP(t, config.Base(), workload.SPECfp95(), 20000)
	if a.Cycles != b.Cycles || a.Committed != b.Committed {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d cycles/instrs",
			a.Cycles, a.Committed, b.Cycles, b.Committed)
	}
}

func TestPrefetchHelpsStreams(t *testing.T) {
	with := runUP(t, config.Base(), workload.SPECfp2000(), 30000)
	without := runUP(t, config.Base().WithoutPrefetch(), workload.SPECfp2000(), 30000)
	if with.IPC() <= without.IPC() {
		t.Errorf("prefetch IPC %.3f not above no-prefetch %.3f",
			with.IPC(), without.IPC())
	}
	if with.L2DemandMissRate() >= without.L2DemandMissRate() {
		t.Errorf("prefetch demand miss rate %.4f not below no-prefetch %.4f",
			with.L2DemandMissRate(), without.L2DemandMissRate())
	}
}

func TestSummaryJSON(t *testing.T) {
	r := runUP(t, config.Base(), workload.SPECint95(), 20000)
	s := r.Summary()
	if s.IPC <= 0 || s.CPI <= 0 || s.Committed == 0 {
		t.Fatalf("summary: %+v", s)
	}
	if len(s.PerCPU) != 1 {
		t.Fatalf("PerCPU: %d", len(s.PerCPU))
	}
	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"ipc"`, `"l2_demand_miss_rate"`, `"per_cpu"`, `"stall_rs"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s", want)
		}
	}
	var back map[string]any
	if err := json.Unmarshal([]byte(out), &back); err != nil {
		t.Fatalf("JSON does not parse: %v", err)
	}
}

// TestRunContextCancellation covers the global cycle loop's cancellation
// point: a pre-cancelled context stops the run before any cycle, a mid-run
// cancel stops within one poll stride, and the partial report still
// snapshots consistently.
func TestRunContextCancellation(t *testing.T) {
	cfg := config.Base()
	sys, err := New(cfg, sources(workload.SPECint95(), 1, 200_000))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cycles, capped, cerr := sys.RunContext(ctx, 0)
	if !errors.Is(cerr, context.Canceled) {
		t.Fatalf("pre-cancelled RunContext err = %v", cerr)
	}
	if cycles != 0 || capped {
		t.Fatalf("pre-cancelled run simulated %d cycles (capped=%v)", cycles, capped)
	}

	// Mid-run: a deadline that fires while the simulation is in flight.
	sys, err = New(cfg, sources(workload.SPECint95(), 1, 5_000_000))
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	_, capped, cerr = sys.RunContext(ctx2, 0)
	if cerr != nil {
		if !errors.Is(cerr, context.DeadlineExceeded) {
			t.Fatalf("mid-run RunContext err = %v", cerr)
		}
		if capped {
			t.Fatal("cancelled run reported the cycle cap")
		}
		// The partial state must still be reportable.
		r := sys.Report("partial")
		if r.Cycles != sys.Cycle() {
			t.Fatalf("partial report cycles=%d, system at %d", r.Cycles, sys.Cycle())
		}
	}
	// (If the host finished 5M instructions inside 30ms, the run completing
	// with cerr == nil is also correct.)
}

// TestRunContextUncancelledMatchesRun guards determinism: the context-
// aware loop must simulate exactly the same machine as Run when the
// context never fires.
func TestRunContextUncancelledMatchesRun(t *testing.T) {
	cfg := config.Base()
	a, err := New(cfg, sources(workload.TPCC(), 1, 20_000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, sources(workload.TPCC(), 1, 20_000))
	if err != nil {
		t.Fatal(err)
	}
	ca, cappedA := a.Run(0)
	cb, cappedB, cerr := b.RunContext(context.Background(), 0)
	if cerr != nil {
		t.Fatal(cerr)
	}
	if ca != cb || cappedA != cappedB {
		t.Fatalf("Run (%d,%v) vs RunContext (%d,%v) diverge", ca, cappedA, cb, cappedB)
	}
	ra, rb := a.Report("x"), b.Report("x")
	if ra.String() != rb.String() {
		t.Fatalf("reports diverge:\n%s\n%s", ra.String(), rb.String())
	}
}
