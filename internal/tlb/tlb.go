// Package tlb models the SPARC64 V instruction and data translation
// lookaside buffers. The timing model needs only hit/miss behavior and the
// refill penalty: SPARC-V9 TLB refills are software traps, so a miss
// serializes the access and costs a fixed penalty.
//
// The model keys translations on virtual page number alone (the simulator
// never forms physical addresses; caches are indexed with the virtual
// address, which is harmless for timing because the synthetic address
// spaces are disjoint where they should be).
package tlb

import (
	"fmt"

	"sparc64v/internal/config"
)

type entry struct {
	vpn   uint64
	valid bool
	lru   uint64
}

// TLB is a translation buffer with LRU replacement within each set,
// matching the reach/penalty parameters in config.TLBGeometry. Small TLBs
// (≤16 entries) are fully associative; larger ones are organized as 8-way
// sets so that lookups stay O(ways) on the simulator's hot path.
type TLB struct {
	sets      [][]entry
	setMask   uint64
	pageShift uint
	penalty   int
	tick      uint64
	nentries  int
	// Stats
	Accesses uint64
	Misses   uint64
}

// New builds a TLB from its geometry.
func New(g config.TLBGeometry) *TLB {
	if g.Entries < 1 || g.PageBytes < 1 || g.PageBytes&(g.PageBytes-1) != 0 {
		panic(fmt.Sprintf("tlb: bad geometry %+v", g))
	}
	shift := uint(0)
	for 1<<shift < g.PageBytes {
		shift++
	}
	ways := 8
	if g.Entries <= 16 {
		ways = g.Entries
	}
	nsets := g.Entries / ways
	if nsets < 1 {
		nsets = 1
	}
	// Round the set count down to a power of two for masking.
	for nsets&(nsets-1) != 0 {
		nsets &= nsets - 1
	}
	sets := make([][]entry, nsets)
	backing := make([]entry, nsets*ways)
	for i := range sets {
		sets[i], backing = backing[:ways:ways], backing[ways:]
	}
	return &TLB{
		sets:      sets,
		setMask:   uint64(nsets - 1),
		pageShift: shift,
		penalty:   g.MissPenalty,
		nentries:  nsets * ways,
	}
}

// Penalty returns the refill cost in cycles.
func (t *TLB) Penalty() int { return t.penalty }

// Access translates addr, returning the extra latency this access pays
// (0 on a hit, the refill penalty on a miss). The missing translation is
// installed.
func (t *TLB) Access(addr uint64) int {
	t.Accesses++
	vpn := addr >> t.pageShift
	set := t.sets[vpn&t.setMask]
	t.tick++
	victim := 0
	for i := range set {
		e := &set[i]
		if e.valid && e.vpn == vpn {
			e.lru = t.tick
			return 0
		}
		if !set[victim].valid {
			continue
		}
		if !e.valid || e.lru < set[victim].lru {
			victim = i
		}
	}
	t.Misses++
	set[victim] = entry{vpn: vpn, valid: true, lru: t.tick}
	return t.penalty
}

// MissRate returns misses per access.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}

// Reach returns the bytes mapped when the TLB is full.
func (t *TLB) Reach() uint64 { return uint64(t.nentries) << t.pageShift }

// Flush invalidates all entries (context switch modeling).
func (t *TLB) Flush() {
	for _, set := range t.sets {
		for i := range set {
			set[i].valid = false
		}
	}
}
