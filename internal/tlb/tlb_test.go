package tlb

import (
	"math/rand"
	"testing"

	"sparc64v/internal/config"
)

func geo(entries int) config.TLBGeometry {
	return config.TLBGeometry{Entries: entries, PageBytes: 8 << 10, MissPenalty: 40}
}

func TestHitMiss(t *testing.T) {
	tl := New(geo(4))
	if p := tl.Access(0x10000); p != 40 {
		t.Fatalf("cold access penalty = %d", p)
	}
	if p := tl.Access(0x10000); p != 0 {
		t.Fatalf("warm access penalty = %d", p)
	}
	// Same page, different offset: hit.
	if p := tl.Access(0x10008); p != 0 {
		t.Fatalf("same-page access penalty = %d", p)
	}
	// Different page: miss.
	if p := tl.Access(0x20000); p != 40 {
		t.Fatalf("new-page access penalty = %d", p)
	}
	if tl.Accesses != 4 || tl.Misses != 2 {
		t.Fatalf("stats = %d/%d", tl.Misses, tl.Accesses)
	}
	if tl.MissRate() != 0.5 {
		t.Fatalf("MissRate = %v", tl.MissRate())
	}
}

func TestLRUReplacement(t *testing.T) {
	tl := New(geo(2))
	tl.Access(0x0 << 13)
	tl.Access(0x1 << 13)
	tl.Access(0x0 << 13) // refresh page 0
	tl.Access(0x2 << 13) // evicts page 1 (LRU)
	if p := tl.Access(0x0 << 13); p != 0 {
		t.Error("page 0 should have survived")
	}
	if p := tl.Access(0x1 << 13); p == 0 {
		t.Error("page 1 should have been evicted")
	}
}

func TestWorkingSetBehavior(t *testing.T) {
	tl := New(geo(64))
	rng := rand.New(rand.NewSource(1))
	// Working set inside the reach: near-zero steady-state miss rate.
	for i := 0; i < 50000; i++ {
		tl.Access(uint64(rng.Intn(32)) << 13)
	}
	inReach := tl.MissRate()
	tl2 := New(geo(64))
	// Working set 64x the reach: high miss rate.
	for i := 0; i < 50000; i++ {
		tl2.Access(uint64(rng.Intn(4096)) << 13)
	}
	outReach := tl2.MissRate()
	if inReach > 0.01 {
		t.Errorf("in-reach miss rate %.4f too high", inReach)
	}
	if outReach < 0.5 {
		t.Errorf("out-of-reach miss rate %.4f too low", outReach)
	}
}

func TestReachAndFlush(t *testing.T) {
	tl := New(geo(128))
	if tl.Reach() != 128*8<<10 {
		t.Fatalf("Reach = %d", tl.Reach())
	}
	tl.Access(0x1234)
	tl.Flush()
	if p := tl.Access(0x1234); p == 0 {
		t.Error("flushed entry still hits")
	}
	if tl.Penalty() != 40 {
		t.Errorf("Penalty = %d", tl.Penalty())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad geometry did not panic")
		}
	}()
	New(config.TLBGeometry{Entries: 8, PageBytes: 3000})
}

func TestZeroAccessesMissRate(t *testing.T) {
	if New(geo(8)).MissRate() != 0 {
		t.Error("zero-access miss rate must be 0")
	}
}
