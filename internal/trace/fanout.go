package trace

import "fmt"

// Fanout fans one decoded record stream out to several lockstep consumers.
//
// A parameter sweep runs the same trace through N nearby machine
// configurations; streamed serially, the frontend work — synthetic-trace
// generation or file decode — repeats N times for byte-identical records.
// A Fanout performs that work once: records are pulled from the master
// source into a bounded ring buffer, and each consumer reads the ring
// through its own Cursor. The ring recycles a slot only after the slowest
// open cursor has consumed it, so a fast consumer is back-pressured by the
// batch's laggard instead of forcing unbounded buffering: the ring's
// capacity is the hard bound on how far any two members of a batch may
// drift apart in the trace.
//
// A Fanout is deliberately single-goroutine: the lockstep batch driver
// (internal/core) advances every consumer from one loop, so the ring needs
// no locks and a Cursor costs one bounds check and one copy per record —
// the same cost profile as reading a SliceSource. It is NOT safe for
// concurrent use.
type Fanout struct {
	src    Source
	buf    []Record
	mask   int64
	filled int64 // absolute count of records pulled from src
	eof    bool

	cursors []Cursor

	streamed uint64 // records pulled from the master (frontend work done)
	served   uint64 // records handed to cursors (frontend work amortized)
}

// NewFanout builds a fanout over src with the given ring depth (rounded up
// to a power of two, minimum 64) and consumer count. Consumers must be >= 1.
func NewFanout(src Source, depth, consumers int) *Fanout {
	if consumers < 1 {
		panic("trace: fanout needs at least one consumer")
	}
	cap := 64
	for cap < depth {
		cap <<= 1
	}
	f := &Fanout{
		src:     src,
		buf:     make([]Record, cap),
		mask:    int64(cap - 1),
		cursors: make([]Cursor, consumers),
	}
	for i := range f.cursors {
		f.cursors[i].f = f
	}
	return f
}

// Cursor returns consumer i's read handle. Each consumer owns exactly one
// cursor; calling Cursor twice for the same index returns the same handle.
func (f *Fanout) Cursor(i int) *Cursor { return &f.cursors[i] }

// Depth returns the ring capacity in records — the maximum drift between
// the fastest and slowest open cursor.
func (f *Fanout) Depth() int { return len(f.buf) }

// EOF reports whether the master source is exhausted. Cursors with
// buffered records keep serving them; once a cursor catches up, its Next
// reports end-of-stream.
func (f *Fanout) EOF() bool { return f.eof }

// Streamed returns the records pulled from the master source so far.
func (f *Fanout) Streamed() uint64 { return f.streamed }

// Served returns the records delivered to cursors so far. With N consumers
// reading the whole stream, Served approaches N x Streamed; the difference
// Served - Streamed is the frontend work the fanout avoided.
func (f *Fanout) Served() uint64 { return f.served }

// minPos returns the smallest position among open cursors, or filled when
// every cursor is closed (the whole ring is then recyclable).
func (f *Fanout) minPos() int64 {
	min := f.filled
	for i := range f.cursors {
		if c := &f.cursors[i]; !c.closed && c.pos < min {
			min = c.pos
		}
	}
	return min
}

// Fill pulls records from the master until the ring is full or the master
// is exhausted. The batch driver calls it once per lockstep round; Cursor.
// Next also pulls on demand, so Fill is a batching optimization, not a
// correctness requirement.
func (f *Fanout) Fill() {
	if f.eof {
		return
	}
	room := int64(len(f.buf)) - (f.filled - f.minPos())
	for ; room > 0; room-- {
		if !f.src.Next(&f.buf[f.filled&f.mask]) {
			f.eof = true
			return
		}
		f.filled++
		f.streamed++
	}
}

// Cursor is one consumer's view of a Fanout. It implements Source: Next
// returns false only at the true end of the master stream, exactly like
// reading the master directly.
type Cursor struct {
	f      *Fanout
	pos    int64
	closed bool
}

// Buffered returns the records available to this cursor without touching
// the master source.
func (c *Cursor) Buffered() int { return int(c.f.filled - c.pos) }

// Starved reports that the cursor cannot safely serve need records: the
// master is not exhausted, fewer than need records are buffered, and the
// ring has no room to pull more because a slower open cursor pins it. The
// lockstep driver skips a starved member for the round; ticking it anyway
// would overrun the ring (Next panics rather than mis-reporting
// end-of-trace, which would silently corrupt the member's timing).
func (c *Cursor) Starved(need int) bool {
	f := c.f
	if f.eof || c.Buffered() >= need {
		return false
	}
	room := int64(len(f.buf)) - (f.filled - f.minPos())
	return c.Buffered()+int(room) < need
}

// Next implements Source. Buffered records are served directly; at the
// buffer's edge the cursor pulls from the master itself when the ring has
// room. False means the master stream is exhausted — never "try again".
func (c *Cursor) Next(r *Record) bool {
	f := c.f
	if c.pos == f.filled {
		if f.eof {
			return false
		}
		if f.filled-f.minPos() >= int64(len(f.buf)) {
			// The driver ticked a consumer past the back-pressure bound.
			// Returning false here would make the consumer believe the
			// trace ended — a silent wrong result — so fail loudly.
			panic(fmt.Sprintf("trace: fanout ring overrun (depth %d): consumer ticked while starved", len(f.buf)))
		}
		if !f.src.Next(&f.buf[f.filled&f.mask]) {
			f.eof = true
			return false
		}
		f.filled++
		f.streamed++
	}
	*r = f.buf[c.pos&f.mask]
	c.pos++
	f.served++
	return true
}

// Close marks the cursor done: it stops holding back the ring, so the
// remaining consumers can stream ahead. The batch driver closes a member's
// cursors when the member finishes, is cancelled, hits its cycle cap, or
// is served from the run cache — and more than one of those paths can fire
// for the same member, so Close is idempotent: closing an already-closed
// cursor is a no-op and never disturbs the ring or the other cursors.
func (c *Cursor) Close() { c.closed = true }
