package trace

import (
	"testing"

	"sparc64v/internal/isa"
)

func fanoutRecs(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{PC: uint64(0x1000 + 4*i), Op: isa.IntALU, Dst: uint8(i % 8)}
	}
	return recs
}

// Every cursor must see the exact master stream, regardless of interleaving.
func TestFanoutAllCursorsSeeFullStream(t *testing.T) {
	const n, consumers = 1000, 3
	recs := fanoutRecs(n)
	f := NewFanout(NewSliceSource(recs), 64, consumers)

	got := make([][]Record, consumers)
	// Interleave reads with deliberately unequal strides so cursors drift
	// apart up to the ring bound.
	strides := []int{1, 7, 31}
	var r Record
	for done := 0; done < consumers; {
		done = 0
		for i := 0; i < consumers; i++ {
			c := f.Cursor(i)
			for k := 0; k < strides[i]; k++ {
				if c.Starved(1) {
					break
				}
				if !c.Next(&r) {
					break
				}
				got[i] = append(got[i], r)
			}
			if len(got[i]) == n {
				done++
			}
		}
	}
	for i := 0; i < consumers; i++ {
		if len(got[i]) != n {
			t.Fatalf("cursor %d saw %d records, want %d", i, len(got[i]), n)
		}
		for k := range got[i] {
			if got[i][k] != recs[k] {
				t.Fatalf("cursor %d record %d = %+v, want %+v", i, k, got[i][k], recs[k])
			}
		}
		// Exhausted master: one more Next must report end-of-stream.
		if f.Cursor(i).Next(&r) {
			t.Fatalf("cursor %d yielded a record past the end", i)
		}
	}
	if f.Streamed() != n {
		t.Fatalf("Streamed() = %d, want %d (master read exactly once)", f.Streamed(), n)
	}
	if f.Served() != n*consumers {
		t.Fatalf("Served() = %d, want %d", f.Served(), n*consumers)
	}
}

// A fast cursor must stall (Starved) at the ring bound while a slow open
// cursor pins the tail, and resume once the slow cursor advances or closes.
func TestFanoutBackPressure(t *testing.T) {
	recs := fanoutRecs(500)
	f := NewFanout(NewSliceSource(recs), 64, 2)
	depth := f.Depth()

	fast, slow := f.Cursor(0), f.Cursor(1)
	var r Record
	for i := 0; i < depth; i++ {
		if fast.Starved(1) {
			t.Fatalf("fast cursor starved at %d, depth %d", i, depth)
		}
		if !fast.Next(&r) {
			t.Fatalf("fast cursor ended at %d", i)
		}
	}
	if !fast.Starved(1) {
		t.Fatal("fast cursor not starved with ring full and slow cursor at 0")
	}
	// Drain the slow cursor one record: exactly one slot frees up.
	if !slow.Next(&r) {
		t.Fatal("slow cursor ended immediately")
	}
	if fast.Starved(1) {
		t.Fatal("fast cursor still starved after slow advanced")
	}
	if !fast.Next(&r) || r != recs[depth] {
		t.Fatalf("fast cursor resumed with %+v, want %+v", r, recs[depth])
	}
	// Closing the slow cursor releases the ring entirely.
	slow.Close()
	for i := depth + 1; i < len(recs); i++ {
		if fast.Starved(1) {
			t.Fatalf("fast cursor starved at %d after slow closed", i)
		}
		if !fast.Next(&r) {
			t.Fatalf("fast cursor ended at %d", i)
		}
	}
	if fast.Next(&r) {
		t.Fatal("fast cursor yielded a record past the end")
	}
}

// Overrunning the back-pressure bound must panic loudly, not silently
// report end-of-stream (which would corrupt the overrunning member's
// timing without any visible failure).
func TestFanoutOverrunPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Next past the back-pressure bound did not panic")
		}
	}()
	f := NewFanout(NewSliceSource(fanoutRecs(500)), 64, 2)
	c := f.Cursor(0)
	var r Record
	for i := 0; i <= f.Depth(); i++ { // one past the bound; cursor 1 pins pos 0
		c.Next(&r)
	}
}

// Starved must account for room the ring could still pull into.
func TestFanoutStarvedCountsRoom(t *testing.T) {
	f := NewFanout(NewSliceSource(fanoutRecs(200)), 64, 2)
	c := f.Cursor(0)
	// Nothing buffered yet, but the whole ring is available to pull into.
	if c.Starved(f.Depth()) {
		t.Fatal("cursor starved with an empty ring and live master")
	}
	if c.Starved(1) {
		t.Fatal("cursor starved with a live master")
	}
	// Once the master is exhausted, Starved is always false: Next will
	// correctly report end-of-stream rather than deadlock.
	g := NewFanout(NewSliceSource(fanoutRecs(10)), 64, 1)
	g.Fill()
	var r Record
	for g.Cursor(0).Next(&r) {
	}
	if g.Cursor(0).Starved(1) {
		t.Fatal("cursor starved at end of stream")
	}
}

// Fill is an optimization: pre-filling must not change what cursors see.
func TestFanoutFillMatchesOnDemand(t *testing.T) {
	recs := fanoutRecs(300)
	f := NewFanout(NewSliceSource(recs), 32, 1)
	var got []Record
	var r Record
	for {
		f.Fill()
		if !f.Cursor(0).Next(&r) {
			break
		}
		got = append(got, r)
	}
	if len(got) != len(recs) {
		t.Fatalf("saw %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

// Buffered reflects exactly the unread pulled records for each cursor.
func TestFanoutBuffered(t *testing.T) {
	f := NewFanout(NewSliceSource(fanoutRecs(100)), 64, 2)
	f.Fill()
	depth := f.Depth()
	if got := f.Cursor(0).Buffered(); got != depth {
		t.Fatalf("Buffered() = %d after Fill, want %d", got, depth)
	}
	var r Record
	for i := 0; i < 10; i++ {
		f.Cursor(0).Next(&r)
	}
	if got := f.Cursor(0).Buffered(); got != depth-10 {
		t.Fatalf("Buffered() = %d after 10 reads, want %d", got, depth-10)
	}
	if got := f.Cursor(1).Buffered(); got != depth {
		t.Fatalf("cursor 1 Buffered() = %d, want %d", got, depth)
	}
}

func TestFanoutDepthRounding(t *testing.T) {
	for _, tc := range []struct{ depth, want int }{
		{0, 64}, {1, 64}, {64, 64}, {65, 128}, {1000, 1024},
	} {
		if got := NewFanout(NewSliceSource(nil), tc.depth, 1).Depth(); got != tc.want {
			t.Errorf("NewFanout depth %d -> %d, want %d", tc.depth, got, tc.want)
		}
	}
}

// Close is idempotent: the batch driver can reach a member's cursors
// through more than one teardown path (normal finish, cancellation, cycle
// cap, cache hit), so closing twice must be a no-op — the ring keeps
// streaming for the survivors and the stream they see is unchanged.
func TestFanoutDoubleClose(t *testing.T) {
	recs := fanoutRecs(300)
	f := NewFanout(NewSliceSource(recs), 64, 2)
	quitter, survivor := f.Cursor(0), f.Cursor(1)

	var r Record
	for i := 0; i < 10; i++ {
		if !quitter.Next(&r) {
			t.Fatalf("quitter ended at %d", i)
		}
	}
	quitter.Close()
	quitter.Close() // second close: must change nothing
	for i := 0; i < len(recs); i++ {
		if survivor.Starved(1) {
			t.Fatalf("survivor starved at %d after double close", i)
		}
		if !survivor.Next(&r) {
			t.Fatalf("survivor ended at %d", i)
		}
		if r != recs[i] {
			t.Fatalf("survivor record %d = %+v, want %+v", i, r, recs[i])
		}
	}
	if survivor.Next(&r) {
		t.Fatal("survivor yielded a record past the end")
	}
	// Closing the last open cursor twice is equally harmless.
	survivor.Close()
	survivor.Close()
	if f.Streamed() != uint64(len(recs)) {
		t.Fatalf("Streamed() = %d, want %d", f.Streamed(), len(recs))
	}
}
