package trace

import (
	"bytes"
	"testing"

	"sparc64v/internal/isa"
)

// FuzzReader feeds arbitrary bytes to the trace reader: it must never
// panic, and every record it does yield must validate.
func FuzzReader(f *testing.F) {
	// Seed with a real trace prefix and some junk.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 20; i++ {
		r := Record{PC: uint64(0x1000 + 4*i), Op: isa.IntALU,
			Dst: uint8(8 + i%8), Src1: isa.RegNone, Src2: isa.RegNone}
		w.Write(&r)
	}
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte("garbage"))
	f.Add([]byte{0x1f, 0x8b, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := OpenReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var r Record
		for i := 0; rd.Next(&r) && i < 10000; i++ {
			if err := r.Validate(); err != nil {
				t.Fatalf("reader yielded invalid record: %v", err)
			}
		}
	})
}
