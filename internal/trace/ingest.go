package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sparc64v/internal/isa"
)

// Raw-capture ingestion.
//
// The paper's traces came from Shade (SPEC) and a kernel tracer (TPC-C):
// per-instruction captures of the program counter, the instruction word,
// and the effective address of memory operations. IngestRaw converts that
// shape into the model's Record stream using the SPARC-V9 decoder,
// inferring branch outcomes from the captured control flow.
//
// The accepted text format is one instruction per line:
//
//	<pc-hex> <instruction-word-hex> [<ea-hex>]
//
// with '#'-prefixed comment lines and blank lines ignored.

// RawEntry is one captured instruction before conversion.
type RawEntry struct {
	// PC is the instruction address.
	PC uint64
	// Word is the 32-bit SPARC-V9 instruction.
	Word uint32
	// EA is the effective address (memory operations; 0 otherwise).
	EA uint64
}

// ParseRaw reads the text capture format.
func ParseRaw(r io.Reader) ([]RawEntry, error) {
	var out []RawEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("trace: raw line %d: want 2-3 fields, got %d", lineNo, len(fields))
		}
		pc, err := strconv.ParseUint(strings.TrimPrefix(fields[0], "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: raw line %d: pc: %v", lineNo, err)
		}
		word, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: raw line %d: word: %v", lineNo, err)
		}
		e := RawEntry{PC: pc, Word: uint32(word)}
		if len(fields) == 3 {
			ea, err := strconv.ParseUint(strings.TrimPrefix(fields[2], "0x"), 16, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: raw line %d: ea: %v", lineNo, err)
			}
			e.EA = ea
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ConvertRaw decodes captured entries into trace records. Branch outcomes
// are inferred from the next captured PC (SPARC's delay slots are already
// resolved in a Shade-style capture, so "next PC != PC+4" means taken).
func ConvertRaw(entries []RawEntry) ([]Record, error) {
	recs := make([]Record, 0, len(entries))
	for i, e := range entries {
		d := isa.Decode(e.Word)
		rec := Record{
			PC:   e.PC,
			Op:   d.Class,
			Dst:  d.Rd,
			Src1: d.Rs1,
			Src2: d.Rs2,
		}
		if d.Class.IsMemory() {
			rec.EA = e.EA
			rec.Size = isa.AccessBytes(e.Word)
			if rec.Size == 0 {
				rec.Size = 8
			}
		}
		if d.Class.IsBranch() {
			if i+1 < len(entries) {
				next := entries[i+1].PC
				if next != e.PC+isa.InstrBytes {
					rec.Taken = true
					rec.EA = next
				}
			} else if d.CondAlways || d.Class == isa.Call || d.Class == isa.Return {
				// Last record: fall back to the decoded displacement.
				rec.Taken = true
				rec.EA = uint64(int64(e.PC) + d.Disp)
			}
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("trace: raw entry %d (pc %#x): %w", i, e.PC, err)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// IngestRaw parses a raw text capture and writes it as a binary trace.
// It returns the number of records written.
func IngestRaw(r io.Reader, w *Writer) (int, error) {
	entries, err := ParseRaw(r)
	if err != nil {
		return 0, err
	}
	recs, err := ConvertRaw(entries)
	if err != nil {
		return 0, err
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			return i, err
		}
	}
	return len(recs), nil
}
