package trace

import (
	"bytes"
	"strings"
	"testing"

	"sparc64v/internal/isa"
)

// A tiny hand-assembled capture: add; ldx; bne (taken); add at target.
const rawCapture = `
# pc        word       ea
0x1000 0x94022009            # add %o0, 9, %o2  (f3: op=2 rd=10 op3=0 rs1=8 imm)
0x1004 0xd25a2008 0x7feff0   # ldx [%o0+8], %o1
0x1008 0x32800004            # bne,a +4 words (taken: next pc != 0x100c)
0x1018 0x94022001            # add at branch target
`

func TestParseRaw(t *testing.T) {
	entries, err := ParseRaw(strings.NewReader(rawCapture))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("parsed %d entries", len(entries))
	}
	if entries[1].EA != 0x7feff0 {
		t.Fatalf("EA = %#x", entries[1].EA)
	}
	// Malformed lines fail with position info.
	for _, bad := range []string{"0x10", "zz 0x94022009", "0x10 zz", "0x10 0x1 0x2 0x3"} {
		if _, err := ParseRaw(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseRaw accepted %q", bad)
		}
	}
}

func TestConvertRaw(t *testing.T) {
	entries, err := ParseRaw(strings.NewReader(rawCapture))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ConvertRaw(entries)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Op != isa.IntALU || recs[0].Dst != 10 || recs[0].Src1 != 8 {
		t.Fatalf("add converted to %+v", recs[0])
	}
	if recs[1].Op != isa.Load || recs[1].EA != 0x7feff0 || recs[1].Size != 8 {
		t.Fatalf("ldx converted to %+v", recs[1])
	}
	if recs[2].Op != isa.Branch || !recs[2].Taken || recs[2].EA != 0x1018 {
		t.Fatalf("bne converted to %+v (taken inferred from control flow)", recs[2])
	}
	// The converted stream must be control-flow consistent.
	for i := 1; i < len(recs); i++ {
		if recs[i].PC != recs[i-1].NextPC() {
			t.Fatalf("record %d breaks control flow", i)
		}
	}
}

func TestIngestRawRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	n, err := IngestRaw(strings.NewReader(rawCapture), w)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("ingested %d", n)
	}
	w.Flush()
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(rd, 0)
	if len(got) != 4 || got[2].Op != isa.Branch || !got[2].Taken {
		t.Fatalf("round trip: %+v", got)
	}
}

// A not-taken conditional (next PC sequential) converts as not taken.
func TestConvertRawNotTaken(t *testing.T) {
	capture := "0x1000 0x32800004\n0x1004 0x94022009\n"
	entries, _ := ParseRaw(strings.NewReader(capture))
	recs, err := ConvertRaw(entries)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Taken {
		t.Fatalf("sequential successor converted as taken: %+v", recs[0])
	}
}
