package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"sparc64v/internal/isa"
)

// Binary trace format.
//
// Traces compress extremely well with delta encoding because instruction
// addresses are sequential most of the time and effective addresses are
// frequently strided. The on-disk format is:
//
//	header:  magic "S64VTRC1" | uvarint(recordCount, 0 = unknown)
//	record:  flags byte | op byte | regs | varint(pcDelta) | [varint(eaDelta) size?]
//
// pcDelta is the signed difference from the previous record's PC (the first
// record is a delta from zero); eaDelta likewise chains from the previous
// record's EA. Register bytes are only present when the flags say so.

// Magic identifies a sparc64v trace file.
const Magic = "S64VTRC1"

const (
	flagTaken   = 1 << 0
	flagHasDst  = 1 << 1
	flagHasSrc1 = 1 << 2
	flagHasSrc2 = 1 << 3
	flagHasEA   = 1 << 4
)

// ErrBadMagic is returned when a trace stream does not start with Magic.
var ErrBadMagic = errors.New("trace: bad magic (not a sparc64v trace)")

// Writer encodes records to an underlying io.Writer. Call Flush when done.
type Writer struct {
	w      *bufio.Writer
	prevPC uint64
	prevEA uint64
	count  uint64
	buf    [2 * binary.MaxVarintLen64]byte
}

// NewWriter writes the trace header and returns a Writer. The record count
// written in the header is 0 ("unknown"); readers discover the end by EOF.
func NewWriter(w io.Writer) (*Writer, error) {
	return NewWriterCount(w, 0)
}

// NewWriterCount writes the trace header with a known record count
// (0 = unknown) and returns a Writer. The count is advisory: the stream
// still ends at EOF, but readers can size buffers or sanity-check against
// Reader.HeaderCount.
func NewWriterCount(w io.Writer, count uint64) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], count)
	if _, err := bw.Write(buf[:n]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write encodes one record.
func (w *Writer) Write(r *Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	var flags byte
	if r.Taken {
		flags |= flagTaken
	}
	if r.Dst != isa.RegNone {
		flags |= flagHasDst
	}
	if r.Src1 != isa.RegNone {
		flags |= flagHasSrc1
	}
	if r.Src2 != isa.RegNone {
		flags |= flagHasSrc2
	}
	hasEA := r.Op.IsMemory() || (r.Op.IsBranch() && r.Taken)
	if hasEA {
		flags |= flagHasEA
	}
	if err := w.w.WriteByte(flags); err != nil {
		return err
	}
	if err := w.w.WriteByte(byte(r.Op)); err != nil {
		return err
	}
	for _, b := range []struct {
		present bool
		v       uint8
	}{{flags&flagHasDst != 0, r.Dst}, {flags&flagHasSrc1 != 0, r.Src1}, {flags&flagHasSrc2 != 0, r.Src2}} {
		if b.present {
			if err := w.w.WriteByte(b.v); err != nil {
				return err
			}
		}
	}
	n := binary.PutVarint(w.buf[:], int64(r.PC-w.prevPC))
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		return err
	}
	w.prevPC = r.PC
	if hasEA {
		n = binary.PutVarint(w.buf[:], int64(r.EA-w.prevEA))
		if _, err := w.w.Write(w.buf[:n]); err != nil {
			return err
		}
		w.prevEA = r.EA
		if r.Op.IsMemory() {
			if err := w.w.WriteByte(r.Size); err != nil {
				return err
			}
		}
	}
	w.count++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush flushes buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes a trace stream produced by Writer. It implements Source.
type Reader struct {
	r         *bufio.Reader
	prevPC    uint64
	prevEA    uint64
	headCount uint64
	err       error
	// verify runs once at clean EOF to validate the transport framing —
	// for gzip streams, that the decompressor reached its trailer and the
	// CRC32/length checks passed. Without it a truncated .gz whose deflate
	// stream happens to end on a block boundary would read as a short but
	// apparently complete trace.
	verify func() error
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr) != Magic {
		return nil, ErrBadMagic
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading header count: %w", err)
	}
	return &Reader{r: br, headCount: count}, nil
}

// HeaderCount returns the record count declared by the stream header
// (0 = unknown; see NewWriterCount).
func (rd *Reader) HeaderCount() uint64 { return rd.headCount }

// Err returns the first decoding error encountered, if any. io.EOF at a
// record boundary is normal termination and is not reported.
func (rd *Reader) Err() error { return rd.err }

// Next implements Source.
func (rd *Reader) Next(r *Record) bool {
	if rd.err != nil {
		return false
	}
	flags, err := rd.r.ReadByte()
	if err != nil {
		if err != io.EOF {
			rd.err = err
		} else if rd.verify != nil {
			if verr := rd.verify(); verr != nil {
				rd.err = verr
			}
			rd.verify = nil
		}
		return false
	}
	op, err := rd.r.ReadByte()
	if err != nil {
		rd.err = fmt.Errorf("trace: truncated record: %w", err)
		return false
	}
	*r = Record{Op: isa.Class(op), Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	r.Taken = flags&flagTaken != 0
	for _, f := range []struct {
		mask byte
		dst  *uint8
	}{{flagHasDst, &r.Dst}, {flagHasSrc1, &r.Src1}, {flagHasSrc2, &r.Src2}} {
		if flags&f.mask != 0 {
			b, err := rd.r.ReadByte()
			if err != nil {
				rd.err = fmt.Errorf("trace: truncated record: %w", err)
				return false
			}
			*f.dst = b
		}
	}
	d, err := binary.ReadVarint(rd.r)
	if err != nil {
		rd.err = fmt.Errorf("trace: truncated record: %w", err)
		return false
	}
	rd.prevPC += uint64(d)
	r.PC = rd.prevPC
	if flags&flagHasEA != 0 {
		d, err = binary.ReadVarint(rd.r)
		if err != nil {
			rd.err = fmt.Errorf("trace: truncated record: %w", err)
			return false
		}
		rd.prevEA += uint64(d)
		r.EA = rd.prevEA
		if r.Op.IsMemory() {
			sz, err := rd.r.ReadByte()
			if err != nil {
				rd.err = fmt.Errorf("trace: truncated record: %w", err)
				return false
			}
			r.Size = sz
		}
	}
	if verr := r.Validate(); verr != nil {
		rd.err = verr
		return false
	}
	return true
}

// OpenReader returns a Reader for a trace stream, transparently handling
// gzip-compressed traces (long TPC-C captures are routinely stored
// compressed). For gzip input the Reader validates the gzip trailer
// (CRC32 and uncompressed length) once the records end: a compressed
// trace that was cut short surfaces through Err() instead of silently
// reading as a shorter trace.
func OpenReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, err := br.Peek(2)
	if err == nil && len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: gzip: %w", err)
		}
		rd, err := NewReader(gz)
		if err != nil {
			return nil, err
		}
		rd.verify = func() error {
			// A clean io.EOF from gzip means the decompressor consumed the
			// trailer and the CRC32/ISIZE checks passed; anything else is a
			// truncated or corrupt compressed stream.
			var b [1]byte
			if _, err := gz.Read(b[:]); err != io.EOF {
				if err == nil {
					err = errors.New("data past end of records")
				}
				return fmt.Errorf("trace: gzip stream: %w", err)
			}
			if err := gz.Close(); err != nil {
				return fmt.Errorf("trace: gzip stream: %w", err)
			}
			return nil
		}
		return rd, nil
	}
	return NewReader(br)
}
