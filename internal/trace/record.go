// Package trace defines the instruction-trace format that drives the
// performance model, together with readers, writers and sampling utilities.
//
// The paper's model is trace-driven: instruction traces captured on a real
// machine (application and, for TPC-C, kernel code) are replayed through the
// timing model. Our Record carries exactly the information the timing model
// consumes: the instruction class, the architectural registers that create
// dependencies, the effective address of memory operations, and the actual
// outcome of control transfers.
package trace

import (
	"fmt"

	"sparc64v/internal/isa"
)

// Record is one dynamic instruction in a trace.
//
// Records describe the *actual* executed path: for branches, Taken/Target
// give the architected outcome; the model runs its predictor against the
// record to decide whether fetch went down the wrong path (wrong-path
// instructions are modeled as lost fetch cycles, the standard trace-driven
// approximation).
type Record struct {
	// PC is the instruction address.
	PC uint64
	// EA is the effective address of a memory access (Load/Store), or the
	// branch target for taken control transfers.
	EA uint64
	// Op is the instruction class.
	Op isa.Class
	// Dst is the destination architectural register, or isa.RegNone.
	Dst uint8
	// Src1, Src2 are source architectural registers, or isa.RegNone.
	Src1, Src2 uint8
	// Size is the access size in bytes for memory operations (1,2,4,8).
	Size uint8
	// Taken reports whether a control transfer was taken.
	Taken bool
}

// HasDst reports whether the record writes an architectural register.
// Writes to %g0 are discarded by hardware and create no dependency.
func (r *Record) HasDst() bool { return r.Dst != isa.RegNone && r.Dst != isa.G0 }

// BranchTarget returns the target address of a taken control transfer.
func (r *Record) BranchTarget() uint64 { return r.EA }

// NextPC returns the address of the next instruction actually executed.
func (r *Record) NextPC() uint64 {
	if r.Op.IsBranch() && r.Taken {
		return r.EA
	}
	return r.PC + isa.InstrBytes
}

// Validate checks internal consistency of the record.
func (r *Record) Validate() error {
	if !r.Op.Valid() {
		return fmt.Errorf("trace: invalid class %d", r.Op)
	}
	if r.Op.IsMemory() {
		switch r.Size {
		case 1, 2, 4, 8:
		default:
			return fmt.Errorf("trace: memory op with size %d", r.Size)
		}
	}
	if r.Dst != isa.RegNone && r.Dst >= isa.NumRegs {
		return fmt.Errorf("trace: dst register %d out of range", r.Dst)
	}
	if r.Src1 != isa.RegNone && r.Src1 >= isa.NumRegs {
		return fmt.Errorf("trace: src1 register %d out of range", r.Src1)
	}
	if r.Src2 != isa.RegNone && r.Src2 >= isa.NumRegs {
		return fmt.Errorf("trace: src2 register %d out of range", r.Src2)
	}
	return nil
}

// String renders the record in a compact single-line form for debugging
// and for the traceinfo tool.
func (r *Record) String() string {
	switch {
	case r.Op.IsMemory():
		return fmt.Sprintf("%#x %s ea=%#x sz=%d d=%d s=%d,%d",
			r.PC, r.Op, r.EA, r.Size, int8(r.Dst), int8(r.Src1), int8(r.Src2))
	case r.Op.IsBranch():
		t := "nt"
		if r.Taken {
			t = "t"
		}
		return fmt.Sprintf("%#x %s %s tgt=%#x", r.PC, r.Op, t, r.EA)
	default:
		return fmt.Sprintf("%#x %s d=%d s=%d,%d",
			r.PC, r.Op, int8(r.Dst), int8(r.Src1), int8(r.Src2))
	}
}

// Source supplies a stream of trace records to a simulated CPU. A Source is
// single-consumer; Next returns false when the trace is exhausted.
type Source interface {
	// Next writes the next record into *r and reports whether one was
	// available. Implementations must not retain r.
	Next(r *Record) bool
}

// SliceSource replays an in-memory slice of records. It is the simplest
// Source and the one used throughout the tests.
type SliceSource struct {
	recs []Record
	pos  int
}

// NewSliceSource returns a Source replaying recs in order.
func NewSliceSource(recs []Record) *SliceSource { return &SliceSource{recs: recs} }

// Next implements Source.
func (s *SliceSource) Next(r *Record) bool {
	if s.pos >= len(s.recs) {
		return false
	}
	*r = s.recs[s.pos]
	s.pos++
	return true
}

// Reset rewinds the source to the beginning of the slice.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of records in the underlying slice.
func (s *SliceSource) Len() int { return len(s.recs) }

// Collect drains up to max records from src (all records if max <= 0).
func Collect(src Source, max int) []Record {
	var out []Record
	var r Record
	for src.Next(&r) {
		out = append(out, r)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// LimitSource caps an underlying source at n records.
type LimitSource struct {
	src  Source
	left int
}

// NewLimitSource returns a Source that yields at most n records from src.
func NewLimitSource(src Source, n int) *LimitSource { return &LimitSource{src: src, left: n} }

// Next implements Source.
func (l *LimitSource) Next(r *Record) bool {
	if l.left <= 0 {
		return false
	}
	if !l.src.Next(r) {
		l.left = 0
		return false
	}
	l.left--
	return true
}
