package trace

// Sampling utilities.
//
// The paper samples long TPC-C traces ("we followed TPC guidelines during
// system setup ... and sampled these traces"). SampleSource implements the
// standard skip/measure periodic sampling used for such traces: out of
// every Period records it passes through the first Keep and drops the rest.

// SampleSource periodically subsamples an underlying Source.
type SampleSource struct {
	src    Source
	keep   int
	period int
	pos    int
}

// NewSampleSource returns a Source that keeps the first keep records of
// every period records from src. keep must be in (0, period].
func NewSampleSource(src Source, keep, period int) *SampleSource {
	if keep <= 0 || period <= 0 || keep > period {
		panic("trace: invalid sampling parameters")
	}
	return &SampleSource{src: src, keep: keep, period: period}
}

// Next implements Source.
func (s *SampleSource) Next(r *Record) bool {
	for {
		if !s.src.Next(r) {
			return false
		}
		inWindow := s.pos < s.keep
		s.pos++
		if s.pos == s.period {
			s.pos = 0
		}
		if inWindow {
			return true
		}
	}
}

// SkipSource discards the first n records of src (e.g. to skip past warmup
// into the steady state, mirroring "we wait until it reaches a steady
// state, and then start trace").
type SkipSource struct {
	src     Source
	skip    int
	skipped bool
}

// NewSkipSource returns a Source skipping the first n records of src.
func NewSkipSource(src Source, n int) *SkipSource { return &SkipSource{src: src, skip: n} }

// Next implements Source.
func (s *SkipSource) Next(r *Record) bool {
	if !s.skipped {
		for i := 0; i < s.skip; i++ {
			if !s.src.Next(r) {
				return false
			}
		}
		s.skipped = true
	}
	return s.src.Next(r)
}

// ConcatSource replays a sequence of sources back to back.
type ConcatSource struct {
	srcs []Source
}

// NewConcatSource returns a Source yielding all records of each source in
// order.
func NewConcatSource(srcs ...Source) *ConcatSource { return &ConcatSource{srcs: srcs} }

// Next implements Source.
func (c *ConcatSource) Next(r *Record) bool {
	for len(c.srcs) > 0 {
		if c.srcs[0].Next(r) {
			return true
		}
		c.srcs = c.srcs[1:]
	}
	return false
}
