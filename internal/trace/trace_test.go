package trace

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"sparc64v/internal/isa"
)

func randRecord(rng *rand.Rand) Record {
	classes := []isa.Class{isa.IntALU, isa.IntMul, isa.Load, isa.Store,
		isa.FPAdd, isa.FPMulAdd, isa.Branch, isa.Call, isa.Return, isa.Special, isa.Nop}
	r := Record{
		PC:   uint64(rng.Int63n(1<<40)) &^ 3,
		Op:   classes[rng.Intn(len(classes))],
		Dst:  isa.RegNone,
		Src1: isa.RegNone,
		Src2: isa.RegNone,
	}
	if rng.Intn(2) == 0 {
		r.Dst = uint8(rng.Intn(isa.NumRegs))
	}
	if rng.Intn(2) == 0 {
		r.Src1 = uint8(rng.Intn(isa.NumRegs))
	}
	if rng.Intn(3) == 0 {
		r.Src2 = uint8(rng.Intn(isa.NumRegs))
	}
	if r.Op.IsMemory() {
		r.EA = uint64(rng.Int63n(1 << 40))
		r.Size = []uint8{1, 2, 4, 8}[rng.Intn(4)]
	}
	if r.Op.IsBranch() {
		r.Taken = rng.Intn(2) == 0
		if r.Taken {
			r.EA = uint64(rng.Int63n(1<<40)) &^ 3
		}
	}
	return r
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	recs := make([]Record, 5000)
	for i := range recs {
		recs[i] = randRecord(rng)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatalf("Write(%d): %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(recs)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(recs))
	}

	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got Record
	for i := range recs {
		if !rd.Next(&got) {
			t.Fatalf("Next returned false at %d (err=%v)", i, rd.Err())
		}
		want := recs[i]
		// EA of a not-taken branch is not encoded; normalize.
		if want.Op.IsBranch() && !want.Taken {
			want.EA = 0
		}
		if got != want {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if rd.Next(&got) {
		t.Fatal("Next returned true past end")
	}
	if rd.Err() != nil {
		t.Fatalf("Err = %v", rd.Err())
	}
}

// Property: the round trip preserves every field the format defines, for
// arbitrary generated records.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%64 + 1
		recs := make([]Record, count)
		for i := range recs {
			recs[i] = randRecord(rng)
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for i := range recs {
			if w.Write(&recs[i]) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		rd, err := NewReader(&buf)
		if err != nil {
			return false
		}
		var got Record
		for i := range recs {
			if !rd.Next(&got) {
				return false
			}
			want := recs[i]
			if want.Op.IsBranch() && !want.Taken {
				want.EA = 0
			}
			if got != want {
				return false
			}
		}
		return !rd.Next(&got) && rd.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBadMagic(t *testing.T) {
	_, err := NewReader(strings.NewReader("NOTATRACEFILE"))
	if err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	r := Record{PC: 0x1000, Op: isa.Load, EA: 0x2000, Size: 8,
		Dst: 1, Src1: 2, Src2: isa.RegNone}
	if err := w.Write(&r); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	full := buf.Bytes()
	// Chop the stream anywhere inside the record body: Next must fail
	// cleanly with a non-nil Err, never panic.
	for cut := len(Magic) + 2; cut < len(full); cut++ {
		rd, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut=%d: NewReader: %v", cut, err)
		}
		var got Record
		if rd.Next(&got) {
			continue // record happened to be complete
		}
		if rd.Err() == nil {
			t.Fatalf("cut=%d: truncation not reported", cut)
		}
	}
}

func TestWriteInvalidRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	bad := Record{Op: isa.Load, Size: 3, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	if err := w.Write(&bad); err == nil {
		t.Fatal("Write accepted invalid size")
	}
	bad = Record{Op: isa.Class(99), Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	if err := w.Write(&bad); err == nil {
		t.Fatal("Write accepted invalid class")
	}
}

func TestSliceSource(t *testing.T) {
	recs := []Record{
		{PC: 0, Op: isa.IntALU, Dst: 1, Src1: isa.RegNone, Src2: isa.RegNone},
		{PC: 4, Op: isa.IntALU, Dst: 2, Src1: 1, Src2: isa.RegNone},
	}
	s := NewSliceSource(recs)
	got := Collect(s, 0)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("Collect = %+v, want %+v", got, recs)
	}
	s.Reset()
	if got := Collect(s, 1); len(got) != 1 || got[0] != recs[0] {
		t.Fatalf("Collect(max=1) = %+v", got)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestLimitSource(t *testing.T) {
	recs := make([]Record, 10)
	for i := range recs {
		recs[i] = Record{PC: uint64(i * 4), Op: isa.IntALU,
			Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	}
	l := NewLimitSource(NewSliceSource(recs), 3)
	if got := Collect(l, 0); len(got) != 3 {
		t.Fatalf("limit 3 yielded %d records", len(got))
	}
	l = NewLimitSource(NewSliceSource(recs[:2]), 5)
	if got := Collect(l, 0); len(got) != 2 {
		t.Fatalf("short source yielded %d records", len(got))
	}
}

func TestSampleSource(t *testing.T) {
	recs := make([]Record, 100)
	for i := range recs {
		recs[i] = Record{PC: uint64(i), Op: isa.IntALU,
			Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	}
	s := NewSampleSource(NewSliceSource(recs), 2, 10)
	got := Collect(s, 0)
	if len(got) != 20 {
		t.Fatalf("sampled %d records, want 20", len(got))
	}
	// Kept records must be the first 2 of each period of 10.
	for i, r := range got {
		period, off := i/2, i%2
		if want := uint64(period*10 + off); r.PC != want {
			t.Fatalf("sample %d: PC=%d, want %d", i, r.PC, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid sampling parameters did not panic")
		}
	}()
	NewSampleSource(NewSliceSource(recs), 11, 10)
}

func TestSkipAndConcat(t *testing.T) {
	recs := make([]Record, 10)
	for i := range recs {
		recs[i] = Record{PC: uint64(i), Op: isa.IntALU,
			Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	}
	sk := NewSkipSource(NewSliceSource(recs), 7)
	got := Collect(sk, 0)
	if len(got) != 3 || got[0].PC != 7 {
		t.Fatalf("skip: got %+v", got)
	}
	// Skipping past the end yields nothing.
	sk = NewSkipSource(NewSliceSource(recs), 20)
	if got := Collect(sk, 0); len(got) != 0 {
		t.Fatalf("skip past end yielded %d", len(got))
	}
	cc := NewConcatSource(NewSliceSource(recs[:3]), NewSliceSource(recs[3:5]))
	if got := Collect(cc, 0); len(got) != 5 || got[4].PC != 4 {
		t.Fatalf("concat: got %+v", got)
	}
}

func TestNextPC(t *testing.T) {
	r := Record{PC: 100, Op: isa.IntALU}
	if r.NextPC() != 104 {
		t.Errorf("sequential NextPC = %d", r.NextPC())
	}
	r = Record{PC: 100, Op: isa.Branch, Taken: true, EA: 400}
	if r.NextPC() != 400 {
		t.Errorf("taken branch NextPC = %d", r.NextPC())
	}
	r = Record{PC: 100, Op: isa.Branch, Taken: false, EA: 400}
	if r.NextPC() != 104 {
		t.Errorf("not-taken branch NextPC = %d", r.NextPC())
	}
}

func TestRecordString(t *testing.T) {
	for _, r := range []Record{
		{PC: 0x40, Op: isa.Load, EA: 0x1000, Size: 8, Dst: 3, Src1: 1, Src2: isa.RegNone},
		{PC: 0x44, Op: isa.Branch, Taken: true, EA: 0x80},
		{PC: 0x48, Op: isa.IntALU, Dst: 4, Src1: 3, Src2: 2},
	} {
		if s := r.String(); s == "" {
			t.Errorf("empty String for %+v", r)
		}
	}
}

func TestOpenReaderGzip(t *testing.T) {
	recs := []Record{
		{PC: 0x1000, Op: isa.Load, EA: 0x2000, Size: 8, Dst: 1, Src1: 2, Src2: isa.RegNone},
		{PC: 0x1004, Op: isa.IntALU, Dst: 3, Src1: 1, Src2: isa.RegNone},
	}
	var plain bytes.Buffer
	w, _ := NewWriter(&plain)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()

	var zipped bytes.Buffer
	gz := gzip.NewWriter(&zipped)
	gz.Write(plain.Bytes())
	gz.Close()

	for name, buf := range map[string][]byte{"plain": plain.Bytes(), "gzip": zipped.Bytes()} {
		rd, err := OpenReader(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := Collect(rd, 0)
		if len(got) != len(recs) {
			t.Fatalf("%s: %d records", name, len(got))
		}
		if rd.Err() != nil {
			t.Fatalf("%s: %v", name, rd.Err())
		}
	}
	// Corrupt gzip header fails cleanly.
	if _, err := OpenReader(bytes.NewReader([]byte{0x1f, 0x8b, 0xff, 0x00})); err == nil {
		t.Error("corrupt gzip accepted")
	}
}

// TestHeaderCountRoundTrip locks the header encoding: the count varint must
// actually be the encoded bytes (a former bug wrote a zero-filled buffer of
// the right length instead — invisible for count 0, corrupt for any other).
func TestHeaderCountRoundTrip(t *testing.T) {
	for _, count := range []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 - 1} {
		var buf bytes.Buffer
		w, err := NewWriterCount(&buf, count)
		if err != nil {
			t.Fatal(err)
		}
		r := Record{PC: 0x1000, Op: isa.IntALU, Dst: 1, Src1: isa.RegNone, Src2: isa.RegNone}
		if err := w.Write(&r); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		// The bytes after the magic must be the minimal varint encoding.
		var want [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(want[:], count)
		if got := buf.Bytes()[len(Magic) : len(Magic)+n]; !bytes.Equal(got, want[:n]) {
			t.Fatalf("count %d: header varint % x, want % x", count, got, want[:n])
		}
		rd, err := NewReader(&buf)
		if err != nil {
			t.Fatalf("count %d: %v", count, err)
		}
		if rd.HeaderCount() != count {
			t.Fatalf("HeaderCount = %d, want %d", rd.HeaderCount(), count)
		}
		var got Record
		if !rd.Next(&got) || got != r {
			t.Fatalf("count %d: record lost after header (err=%v)", count, rd.Err())
		}
	}
	// NewWriter writes the "unknown" count.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.HeaderCount() != 0 {
		t.Fatalf("default HeaderCount = %d", rd.HeaderCount())
	}
}

// buildTestTrace writes a mixed-class trace and returns the encoded bytes
// plus the byte offset of every record boundary (the header end included).
func buildTestTrace(t *testing.T, n int) ([]byte, map[int]int) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	boundaries := map[int]int{buf.Len(): 0} // offset -> records before it
	for i := 0; i < n; i++ {
		r := randRecord(rng)
		if err := w.Write(&r); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		boundaries[buf.Len()] = i + 1
	}
	return buf.Bytes(), boundaries
}

// TestTruncateEveryOffset cuts a valid multi-record trace at every byte
// offset: the Reader must report a truncation error everywhere except at
// exact record boundaries, where it must deliver exactly the records before
// the cut and end cleanly.
func TestTruncateEveryOffset(t *testing.T) {
	full, boundaries := buildTestTrace(t, 40)
	headerLen := len(Magic) + 1 // magic + one-byte varint count 0
	for cut := 0; cut <= len(full); cut++ {
		rd, err := NewReader(bytes.NewReader(full[:cut]))
		if cut < headerLen {
			if err == nil {
				t.Fatalf("cut=%d: truncated header accepted", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut=%d: NewReader: %v", cut, err)
		}
		var r Record
		read := 0
		for rd.Next(&r) {
			read++
		}
		want, atBoundary := boundaries[cut]
		if atBoundary {
			if rd.Err() != nil {
				t.Fatalf("cut=%d (boundary): spurious error %v", cut, rd.Err())
			}
			if read != want {
				t.Fatalf("cut=%d (boundary): read %d records, want %d", cut, read, want)
			}
		} else {
			if rd.Err() == nil {
				t.Fatalf("cut=%d (mid-record, %d records read): truncation not reported",
					cut, read)
			}
		}
	}
}

// TestTruncatedGzip cuts the *compressed* stream at every offset: a short
// .gz must never read as a clean shorter trace — either OpenReader fails or
// Err() reports the damage, including cuts inside the gzip trailer where
// every record decodes but the CRC32/length words are missing.
func TestTruncatedGzip(t *testing.T) {
	full, _ := buildTestTrace(t, 25)
	var zipped bytes.Buffer
	gz := gzip.NewWriter(&zipped)
	gz.Write(full)
	gz.Close()
	zb := zipped.Bytes()
	for cut := 2; cut < len(zb); cut++ {
		rd, err := OpenReader(bytes.NewReader(zb[:cut]))
		if err != nil {
			continue // damage caught at open time
		}
		var r Record
		read := 0
		for rd.Next(&r) {
			read++
		}
		if rd.Err() == nil {
			t.Fatalf("cut=%d/%d: truncated gzip read as a clean %d-record trace",
				cut, len(zb), read)
		}
	}
	// The whole stream still reads cleanly.
	rd, err := OpenReader(bytes.NewReader(zb))
	if err != nil {
		t.Fatal(err)
	}
	read := 0
	var r Record
	for rd.Next(&r) {
		read++
	}
	if rd.Err() != nil || read != 25 {
		t.Fatalf("intact gzip: %d records, err=%v", read, rd.Err())
	}
}

// TestCorruptGzipPayload flips one byte of the compressed payload: the
// checksum mismatch must surface through Err() even when the flip leaves
// the deflate stream decodable.
func TestCorruptGzipPayload(t *testing.T) {
	full, _ := buildTestTrace(t, 25)
	var zipped bytes.Buffer
	gz := gzip.NewWriter(&zipped)
	gz.Write(full)
	gz.Close()
	zb := zipped.Bytes()
	flips := 0
	for off := 10; off < len(zb)-8; off += 7 {
		mut := bytes.Clone(zb)
		mut[off] ^= 0x10
		// Some flips land in dead bits of the deflate framing (stored-block
		// padding): gzip legitimately decodes identical bytes and the CRC
		// passes. Only flips gzip itself objects to must surface.
		if g, err := gzip.NewReader(bytes.NewReader(mut)); err == nil {
			if _, err := io.Copy(io.Discard, g); err == nil {
				continue
			}
		}
		rd, err := OpenReader(bytes.NewReader(mut))
		if err != nil {
			continue // rejected outright
		}
		var r Record
		for rd.Next(&r) {
		}
		if rd.Err() == nil {
			t.Fatalf("flip at %d: corrupt gzip read cleanly", off)
		}
		flips++
	}
	if flips == 0 {
		t.Fatal("no flip exercised the reader path")
	}
}
