package trace

import (
	"bytes"
	"compress/gzip"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"sparc64v/internal/isa"
)

func randRecord(rng *rand.Rand) Record {
	classes := []isa.Class{isa.IntALU, isa.IntMul, isa.Load, isa.Store,
		isa.FPAdd, isa.FPMulAdd, isa.Branch, isa.Call, isa.Return, isa.Special, isa.Nop}
	r := Record{
		PC:   uint64(rng.Int63n(1<<40)) &^ 3,
		Op:   classes[rng.Intn(len(classes))],
		Dst:  isa.RegNone,
		Src1: isa.RegNone,
		Src2: isa.RegNone,
	}
	if rng.Intn(2) == 0 {
		r.Dst = uint8(rng.Intn(isa.NumRegs))
	}
	if rng.Intn(2) == 0 {
		r.Src1 = uint8(rng.Intn(isa.NumRegs))
	}
	if rng.Intn(3) == 0 {
		r.Src2 = uint8(rng.Intn(isa.NumRegs))
	}
	if r.Op.IsMemory() {
		r.EA = uint64(rng.Int63n(1 << 40))
		r.Size = []uint8{1, 2, 4, 8}[rng.Intn(4)]
	}
	if r.Op.IsBranch() {
		r.Taken = rng.Intn(2) == 0
		if r.Taken {
			r.EA = uint64(rng.Int63n(1<<40)) &^ 3
		}
	}
	return r
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	recs := make([]Record, 5000)
	for i := range recs {
		recs[i] = randRecord(rng)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatalf("Write(%d): %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(recs)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(recs))
	}

	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got Record
	for i := range recs {
		if !rd.Next(&got) {
			t.Fatalf("Next returned false at %d (err=%v)", i, rd.Err())
		}
		want := recs[i]
		// EA of a not-taken branch is not encoded; normalize.
		if want.Op.IsBranch() && !want.Taken {
			want.EA = 0
		}
		if got != want {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if rd.Next(&got) {
		t.Fatal("Next returned true past end")
	}
	if rd.Err() != nil {
		t.Fatalf("Err = %v", rd.Err())
	}
}

// Property: the round trip preserves every field the format defines, for
// arbitrary generated records.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%64 + 1
		recs := make([]Record, count)
		for i := range recs {
			recs[i] = randRecord(rng)
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for i := range recs {
			if w.Write(&recs[i]) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		rd, err := NewReader(&buf)
		if err != nil {
			return false
		}
		var got Record
		for i := range recs {
			if !rd.Next(&got) {
				return false
			}
			want := recs[i]
			if want.Op.IsBranch() && !want.Taken {
				want.EA = 0
			}
			if got != want {
				return false
			}
		}
		return !rd.Next(&got) && rd.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBadMagic(t *testing.T) {
	_, err := NewReader(strings.NewReader("NOTATRACEFILE"))
	if err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	r := Record{PC: 0x1000, Op: isa.Load, EA: 0x2000, Size: 8,
		Dst: 1, Src1: 2, Src2: isa.RegNone}
	if err := w.Write(&r); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	full := buf.Bytes()
	// Chop the stream anywhere inside the record body: Next must fail
	// cleanly with a non-nil Err, never panic.
	for cut := len(Magic) + 2; cut < len(full); cut++ {
		rd, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut=%d: NewReader: %v", cut, err)
		}
		var got Record
		if rd.Next(&got) {
			continue // record happened to be complete
		}
		if rd.Err() == nil {
			t.Fatalf("cut=%d: truncation not reported", cut)
		}
	}
}

func TestWriteInvalidRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	bad := Record{Op: isa.Load, Size: 3, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	if err := w.Write(&bad); err == nil {
		t.Fatal("Write accepted invalid size")
	}
	bad = Record{Op: isa.Class(99), Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	if err := w.Write(&bad); err == nil {
		t.Fatal("Write accepted invalid class")
	}
}

func TestSliceSource(t *testing.T) {
	recs := []Record{
		{PC: 0, Op: isa.IntALU, Dst: 1, Src1: isa.RegNone, Src2: isa.RegNone},
		{PC: 4, Op: isa.IntALU, Dst: 2, Src1: 1, Src2: isa.RegNone},
	}
	s := NewSliceSource(recs)
	got := Collect(s, 0)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("Collect = %+v, want %+v", got, recs)
	}
	s.Reset()
	if got := Collect(s, 1); len(got) != 1 || got[0] != recs[0] {
		t.Fatalf("Collect(max=1) = %+v", got)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestLimitSource(t *testing.T) {
	recs := make([]Record, 10)
	for i := range recs {
		recs[i] = Record{PC: uint64(i * 4), Op: isa.IntALU,
			Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	}
	l := NewLimitSource(NewSliceSource(recs), 3)
	if got := Collect(l, 0); len(got) != 3 {
		t.Fatalf("limit 3 yielded %d records", len(got))
	}
	l = NewLimitSource(NewSliceSource(recs[:2]), 5)
	if got := Collect(l, 0); len(got) != 2 {
		t.Fatalf("short source yielded %d records", len(got))
	}
}

func TestSampleSource(t *testing.T) {
	recs := make([]Record, 100)
	for i := range recs {
		recs[i] = Record{PC: uint64(i), Op: isa.IntALU,
			Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	}
	s := NewSampleSource(NewSliceSource(recs), 2, 10)
	got := Collect(s, 0)
	if len(got) != 20 {
		t.Fatalf("sampled %d records, want 20", len(got))
	}
	// Kept records must be the first 2 of each period of 10.
	for i, r := range got {
		period, off := i/2, i%2
		if want := uint64(period*10 + off); r.PC != want {
			t.Fatalf("sample %d: PC=%d, want %d", i, r.PC, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid sampling parameters did not panic")
		}
	}()
	NewSampleSource(NewSliceSource(recs), 11, 10)
}

func TestSkipAndConcat(t *testing.T) {
	recs := make([]Record, 10)
	for i := range recs {
		recs[i] = Record{PC: uint64(i), Op: isa.IntALU,
			Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	}
	sk := NewSkipSource(NewSliceSource(recs), 7)
	got := Collect(sk, 0)
	if len(got) != 3 || got[0].PC != 7 {
		t.Fatalf("skip: got %+v", got)
	}
	// Skipping past the end yields nothing.
	sk = NewSkipSource(NewSliceSource(recs), 20)
	if got := Collect(sk, 0); len(got) != 0 {
		t.Fatalf("skip past end yielded %d", len(got))
	}
	cc := NewConcatSource(NewSliceSource(recs[:3]), NewSliceSource(recs[3:5]))
	if got := Collect(cc, 0); len(got) != 5 || got[4].PC != 4 {
		t.Fatalf("concat: got %+v", got)
	}
}

func TestNextPC(t *testing.T) {
	r := Record{PC: 100, Op: isa.IntALU}
	if r.NextPC() != 104 {
		t.Errorf("sequential NextPC = %d", r.NextPC())
	}
	r = Record{PC: 100, Op: isa.Branch, Taken: true, EA: 400}
	if r.NextPC() != 400 {
		t.Errorf("taken branch NextPC = %d", r.NextPC())
	}
	r = Record{PC: 100, Op: isa.Branch, Taken: false, EA: 400}
	if r.NextPC() != 104 {
		t.Errorf("not-taken branch NextPC = %d", r.NextPC())
	}
}

func TestRecordString(t *testing.T) {
	for _, r := range []Record{
		{PC: 0x40, Op: isa.Load, EA: 0x1000, Size: 8, Dst: 3, Src1: 1, Src2: isa.RegNone},
		{PC: 0x44, Op: isa.Branch, Taken: true, EA: 0x80},
		{PC: 0x48, Op: isa.IntALU, Dst: 4, Src1: 3, Src2: 2},
	} {
		if s := r.String(); s == "" {
			t.Errorf("empty String for %+v", r)
		}
	}
}

func TestOpenReaderGzip(t *testing.T) {
	recs := []Record{
		{PC: 0x1000, Op: isa.Load, EA: 0x2000, Size: 8, Dst: 1, Src1: 2, Src2: isa.RegNone},
		{PC: 0x1004, Op: isa.IntALU, Dst: 3, Src1: 1, Src2: isa.RegNone},
	}
	var plain bytes.Buffer
	w, _ := NewWriter(&plain)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()

	var zipped bytes.Buffer
	gz := gzip.NewWriter(&zipped)
	gz.Write(plain.Bytes())
	gz.Close()

	for name, buf := range map[string][]byte{"plain": plain.Bytes(), "gzip": zipped.Bytes()} {
		rd, err := OpenReader(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := Collect(rd, 0)
		if len(got) != len(recs) {
			t.Fatalf("%s: %d records", name, len(got))
		}
		if rd.Err() != nil {
			t.Fatalf("%s: %v", name, rd.Err())
		}
	}
	// Corrupt gzip header fails cleanly.
	if _, err := OpenReader(bytes.NewReader([]byte{0x1f, 0x8b, 0xff, 0x00})); err == nil {
		t.Error("corrupt gzip accepted")
	}
}
