package verif

import (
	"context"
	"fmt"

	"sparc64v/internal/analytic"
	"sparc64v/internal/config"
	"sparc64v/internal/core"
	"sparc64v/internal/sched"
	"sparc64v/internal/stats"
	"sparc64v/internal/trace"
	"sparc64v/internal/workload"
)

// VersionPoint is one rung of the accuracy study: a model version's
// performance estimate and its error against the reference.
type VersionPoint struct {
	// Name is the version label ("v1".."v8").
	Name string
	// Detail describes the fidelity added.
	Detail string
	// IPC is the version's performance estimate.
	IPC float64
	// RatioToFinal is IPC relative to v8 (the upper Figure 19 graph is
	// plotted against v8's estimate).
	RatioToFinal float64
	// ErrorVsMachine is the signed relative error against the physical-
	// machine proxy (the lower Figure 19 graph).
	ErrorVsMachine float64
}

// AccuracyStudy is the Figure 19 reproduction for one workload.
type AccuracyStudy struct {
	// Workload names the trace.
	Workload string
	// MachineIPC is the physical-machine proxy's performance.
	MachineIPC float64
	// Points holds v1..v8.
	Points []VersionPoint
}

// FinalError returns |error| of the final model (v8) against the machine.
func (a *AccuracyStudy) FinalError() float64 {
	if len(a.Points) == 0 {
		return 0
	}
	e := a.Points[len(a.Points)-1].ErrorVsMachine
	if e < 0 {
		return -e
	}
	return e
}

// AnalyticRung places the grey-box analytic estimator (internal/analytic)
// below the fidelity ladder as a "v0" rung: the closed-form estimate's IPC
// scored against the same machine proxy and final model as the simulated
// versions. The paper's ladder starts at a trace-driven v1; the analytic
// tier sits beneath it — no simulation at all — and this rung shows how
// much accuracy that costs. The study must already hold v1..v8; an error
// (e.g. the workload is outside the calibration set) leaves the ladder
// usable without the rung.
func AnalyticRung(cal *analytic.Calibration, base config.Config, study *AccuracyStudy) (VersionPoint, error) {
	if len(study.Points) == 0 {
		return VersionPoint{}, fmt.Errorf("verif: accuracy study for %s has no ladder points", study.Workload)
	}
	est, err := cal.Estimate(base, study.Workload)
	if err != nil {
		return VersionPoint{}, err
	}
	final := study.Points[len(study.Points)-1].IPC
	return VersionPoint{
		Name:           "v0",
		Detail:         "analytic grey-box estimate (no simulation)",
		IPC:            est.IPC,
		RatioToFinal:   est.IPC / final,
		ErrorVsMachine: stats.PercentDelta(est.IPC, study.MachineIPC) / 100,
	}, nil
}

// PhysicalMachineProxy derives the "physical machine" from the final
// machine configuration: the same design with slightly different
// electrical realities than any model version assumes (memory a touch
// slower, one less cycle of L2 wave-pipelining margin). The paper could
// only measure this once silicon arrived; we declare it here (see
// DESIGN.md "Substitutions").
func PhysicalMachineProxy(cfg config.Config) config.Config {
	m := cfg
	m.Name = cfg.Name + ".machine"
	m.Mem.DRAMCycles += 8
	m.Mem.L2.HitCycles++
	return m
}

// RunAccuracyStudy runs every model version and the machine proxy on the
// workload and assembles the Figure 19 series. The machine proxy and the
// eight versions are independent simulations and execute on the scheduler.
func RunAccuracyStudy(base config.Config, p workload.Profile, opt core.RunOptions) (AccuracyStudy, error) {
	return RunAccuracyStudyContext(context.Background(), base, p, opt)
}

// RunAccuracyStudyContext is RunAccuracyStudy with a cancellation point
// shared by the ladder's scheduled simulations. With opt.Batch > 1 the
// ladder's rungs — nine configurations of the same trace — run as lockstep
// batches of up to opt.Batch members sharing one decoded stream; reports
// (and therefore the study's numbers) are byte-identical either way.
func RunAccuracyStudyContext(ctx context.Context, base config.Config, p workload.Profile, opt core.RunOptions) (AccuracyStudy, error) {
	study := AccuracyStudy{Workload: p.Name}
	versions := core.Versions()
	cfgs := []config.Config{PhysicalMachineProxy(base)}
	for _, v := range versions {
		cfgs = append(cfgs, v.Apply(base))
	}
	// wrap restores the serial path's error labeling: rung i > 0 is model
	// version i-1, rung 0 the machine proxy.
	wrap := func(i int, err error) error {
		if i > 0 {
			return fmt.Errorf("%s: %w", versions[i-1].Name, err)
		}
		return err
	}
	var all []float64
	var err error
	if opt.Batch > 1 {
		all = make([]float64, len(cfgs))
		var chunks [][2]int
		for lo := 0; lo < len(cfgs); lo += opt.Batch {
			hi := lo + opt.Batch
			if hi > len(cfgs) {
				hi = len(cfgs)
			}
			chunks = append(chunks, [2]int{lo, hi})
		}
		cfgErrs := make([]error, len(cfgs))
		_, chunkErrs := sched.MapAllCtx(ctx, len(chunks), sched.Options{Workers: opt.Workers},
			func(ctx context.Context, ci int) (struct{}, error) {
				lo, hi := chunks[ci][0], chunks[ci][1]
				reps, errs := core.RunBatch(ctx, cfgs[lo:hi], p, opt)
				for j := range reps {
					if errs[j] != nil {
						cfgErrs[lo+j] = errs[j]
						continue
					}
					all[lo+j] = reps[j].IPC()
				}
				return struct{}{}, nil
			})
		for ci, cerr := range chunkErrs {
			if cerr == nil {
				continue
			}
			for i := chunks[ci][0]; i < chunks[ci][1]; i++ {
				if cfgErrs[i] == nil {
					cfgErrs[i] = cerr
				}
			}
		}
		for i, cerr := range cfgErrs {
			if cerr != nil {
				return study, wrap(i, cerr)
			}
		}
	} else {
		all, err = sched.MapCtx(ctx, len(cfgs), sched.Options{Workers: opt.Workers},
			func(ctx context.Context, i int) (float64, error) {
				m, merr := core.NewModel(cfgs[i])
				if merr != nil {
					return 0, merr
				}
				r, rerr := m.RunContext(ctx, p, opt)
				if rerr != nil {
					return 0, wrap(i, rerr)
				}
				return r.IPC(), nil
			})
	}
	if err != nil {
		return study, err
	}
	study.MachineIPC = all[0]
	ipcs := all[1:]
	final := ipcs[len(ipcs)-1]
	for i, v := range versions {
		study.Points = append(study.Points, VersionPoint{
			Name:           v.Name,
			Detail:         v.Detail,
			IPC:            ipcs[i],
			RatioToFinal:   ipcs[i] / final,
			ErrorVsMachine: stats.PercentDelta(ipcs[i], study.MachineIPC) / 100,
		})
	}
	return study, nil
}

// TrendCheck compares the direction of a design change between the
// detailed model and the independent in-order reference model — the
// methodology used to validate the initial performance model before any
// RTL existed. It returns the two relative deltas (variant vs base); a
// trend agreement means they share a sign.
type TrendCheck struct {
	// Change names the design change checked.
	Change string
	// ModelDelta and ReferenceDelta are relative performance deltas
	// (positive = variant faster).
	ModelDelta, ReferenceDelta float64
}

// Agree reports whether both models agree on the direction (deltas within
// noise count as agreement).
func (t *TrendCheck) Agree() bool {
	const eps = 0.002
	a, b := t.ModelDelta, t.ReferenceDelta
	if a > -eps && a < eps || b > -eps && b < eps {
		return true
	}
	return (a > 0) == (b > 0)
}

// RunTrendCheck evaluates base vs variant on both models.
func RunTrendCheck(change string, base, variant config.Config, p workload.Profile,
	opt core.RunOptions) (TrendCheck, error) {
	return RunTrendCheckContext(context.Background(), change, base, variant, p, opt)
}

// RunTrendCheckContext is RunTrendCheck with a cancellation point shared
// by the four scheduled simulations.
func RunTrendCheckContext(ctx context.Context, change string, base, variant config.Config,
	p workload.Profile, opt core.RunOptions) (TrendCheck, error) {
	tc := TrendCheck{Change: change}
	run := func(ctx context.Context, cfg config.Config) (float64, error) {
		m, err := core.NewModel(cfg)
		if err != nil {
			return 0, err
		}
		r, err := m.RunContext(ctx, p, opt)
		if err != nil {
			return 0, err
		}
		return r.IPC(), nil
	}
	refRun := func(ctx context.Context, cfg config.Config) (float64, error) {
		rf := NewReference(cfg)
		n := opt.Insts
		if n <= 0 {
			n = 200_000
		}
		if err := rf.RunContext(ctx, trace.NewLimitSource(workload.New(p, opt.Seed, 0), n)); err != nil {
			return 0, err
		}
		return 1 / rf.CPI(), nil
	}
	// Both models on both configurations: four independent simulations.
	var b, v, rb, rv float64
	err := sched.DoCtx(ctx, sched.Options{Workers: opt.Workers},
		func(ctx context.Context) (err error) { b, err = run(ctx, base); return },
		func(ctx context.Context) (err error) { v, err = run(ctx, variant); return },
		func(ctx context.Context) (err error) { rb, err = refRun(ctx, base); return },
		func(ctx context.Context) (err error) { rv, err = refRun(ctx, variant); return },
	)
	if err != nil {
		return tc, err
	}
	tc.ModelDelta = (v - b) / b
	tc.ReferenceDelta = (rv - rb) / rb
	return tc, nil
}
