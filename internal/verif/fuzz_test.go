package verif

import (
	"bytes"
	"testing"

	"sparc64v/internal/trace"
	"sparc64v/internal/workload"
)

// FuzzReadProgram feeds arbitrary bytes to the program decoder: it must
// never panic, and any program it accepts must replay without panicking.
func FuzzReadProgram(f *testing.F) {
	recs := trace.Collect(trace.NewLimitSource(
		workload.New(workload.SPECint95(), 1, 0), 500), 0)
	prog, err := FromTrace(trace.NewSliceSource(recs))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := prog.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(programMagic))
	f.Add([]byte("junk"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadProgram(bytes.NewReader(data))
		if err != nil {
			return
		}
		src := p.Replay()
		var r trace.Record
		for i := 0; src.Next(&r) && i < 5000; i++ {
		}
	})
}
