package verif

import (
	"context"

	"sparc64v/internal/cache"
	"sparc64v/internal/config"
	"sparc64v/internal/isa"
	"sparc64v/internal/trace"
)

// Reference is a deliberately simple in-order, blocking-cache timing model,
// independent of the out-of-order machinery. It plays the role the
// verified mainframe model played for the paper's initial model bring-up:
// two structurally different models whose *trends* across configurations
// must agree, even though their absolute numbers differ.
type Reference struct {
	cfg config.Config
	l1i *cache.Cache
	l1d *cache.Cache
	l2  *cache.Cache
	// Cycles and Instructions accumulate run totals.
	Cycles       uint64
	Instructions uint64
	// predictor state: 2-bit counters, untagged.
	counters []uint8
}

// NewReference builds the reference model for the cache/BHT geometries of
// cfg (core parameters are ignored: the reference core is scalar).
func NewReference(cfg config.Config) *Reference {
	return &Reference{
		cfg:      cfg,
		l1i:      cache.New(cfg.L1I),
		l1d:      cache.New(cfg.L1D),
		l2:       cache.New(cfg.Mem.L2),
		counters: make([]uint8, cfg.BHT.Entries),
	}
}

// Run consumes the source and accumulates timing.
func (rf *Reference) Run(src trace.Source) {
	_ = rf.RunContext(context.Background(), src)
}

// ctxPollStride matches the detailed model's cancellation granularity: the
// reference loop polls its context every 4K instructions.
const ctxPollStride = 4096

// RunContext is Run with a cancellation point, polled on a coarse
// instruction stride. It returns ctx.Err() when cancelled mid-run; the
// accumulated Cycles/Instructions stay consistent with what was consumed.
func (rf *Reference) RunContext(ctx context.Context, src trace.Source) error {
	var r trace.Record
	memLat := uint64(rf.cfg.Mem.DRAMCycles)
	l2Lat := uint64(rf.cfg.Mem.L2.HitCycles)
	if rf.cfg.Mem.L2OffChip {
		l2Lat += uint64(rf.cfg.Mem.OffChipPenalty)
	}
	done := ctx.Done()
	for src.Next(&r) {
		if done != nil && rf.Instructions&(ctxPollStride-1) == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		rf.Instructions++
		rf.Cycles++ // base CPI of 1
		if rf.Instructions%8 == 1 {
			// Fetch path: one I-cache probe per fetch group.
			rf.Cycles += rf.access(rf.l1i, r.PC, false, l2Lat, memLat)
		}
		switch {
		case r.Op.IsMemory():
			rf.Cycles += uint64(rf.cfg.L1D.HitCycles) / 2
			rf.Cycles += rf.access(rf.l1d, r.EA, r.Op == isa.Store, l2Lat, memLat)
		case r.Op == isa.Branch:
			idx := (r.PC >> 2) % uint64(len(rf.counters))
			pred := rf.counters[idx] >= 2
			if pred != r.Taken {
				rf.Cycles += uint64(rf.cfg.CPU.MispredictRedirect) + 8
			} else if r.Taken {
				rf.Cycles += uint64(rf.cfg.BHT.AccessCycles)
			}
			if r.Taken && rf.counters[idx] < 3 {
				rf.counters[idx]++
			} else if !r.Taken && rf.counters[idx] > 0 {
				rf.counters[idx]--
			}
		case r.Op.IsFloat():
			rf.Cycles += uint64(rf.cfg.CPU.Latencies[r.Op].Cycles) / 2
		}
	}
	return nil
}

// access charges a blocking hierarchy access and maintains cache state.
func (rf *Reference) access(l1 *cache.Cache, addr uint64, store bool, l2Lat, memLat uint64) uint64 {
	if l1.Access(addr) != nil {
		return 0
	}
	var extra uint64
	if rf.l2.Access(addr) == nil {
		extra = memLat
		rf.l2.Fill(addr, cache.Exclusive, false)
	} else {
		extra = l2Lat
	}
	st := cache.Exclusive
	if store {
		st = cache.Modified
	}
	l1.Fill(addr, st, false)
	return extra
}

// CPI returns the model's cycles per instruction.
func (rf *Reference) CPI() float64 {
	if rf.Instructions == 0 {
		return 0
	}
	return float64(rf.Cycles) / float64(rf.Instructions)
}
