// Package verif reproduces the paper's verification methodology around the
// performance model:
//
//   - ReverseTracer (paper reference [11]): converts an instruction trace
//     into a compact, self-contained test program whose execution replays
//     the trace exactly. The paper generated performance test programs this
//     way and required that the logic simulator's execution of the program
//     match the performance model's execution of the original trace; here
//     the replayed program is bit-identical to the trace, so runs through
//     the model are directly comparable.
//   - An independent in-order reference model (the "verified mainframe
//     model" role): a deliberately different, far simpler timing model used
//     to check that design-study *trends* agree between two models.
//   - The accuracy harness of Figure 19: model versions v1..v8 against the
//     final model and against a "physical machine" proxy.
package verif

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"sparc64v/internal/isa"
	"sparc64v/internal/trace"
)

// staticInstr is the per-PC static part of an instruction.
type staticInstr struct {
	op              isa.Class
	dst, src1, src2 uint8
	size            uint8
	fallthroughNext uint64 // PC + 4
}

// Program is a reverse-traced test program: a static instruction image
// plus the dynamic streams (branch outcomes, targets, effective addresses)
// needed to replay the original trace exactly.
type Program struct {
	entry   uint64
	static  map[uint64]staticInstr
	takens  []byte      // bitstream of branch outcomes
	targets []uint64    // taken-branch targets, in order
	eas     []uint64    // memory effective addresses, in order
	dyn     []dynFields // per-instance register assignment
	count   int
}

// FromTrace builds a Program from a record stream. Records must be
// control-flow consistent (each record's PC equals the previous record's
// NextPC), which traces from the workload generators and the trace readers
// guarantee; inconsistent streams are rejected.
func FromTrace(src trace.Source) (*Program, error) {
	p := &Program{static: make(map[uint64]staticInstr)}
	var r trace.Record
	var prev trace.Record
	first := true
	takenBits := 0
	var curByte byte
	for src.Next(&r) {
		if first {
			p.entry = r.PC
		} else if want := prev.NextPC(); r.PC != want {
			return nil, fmt.Errorf("verif: control-flow break at record %d: pc=%#x want %#x",
				p.count, r.PC, want)
		}
		si := staticInstr{op: r.Op, dst: r.Dst, src1: r.Src1, src2: r.Src2,
			size: r.Size, fallthroughNext: r.PC + isa.InstrBytes}
		if old, ok := p.static[r.PC]; ok {
			if old.op != si.op || old.dst != si.dst || old.src1 != si.src1 {
				// Dynamic register/operand variation: keep the first static
				// image and record the variation in the dynamic streams.
				// Only the class must be stable for a valid program image.
				if old.op != si.op {
					return nil, fmt.Errorf("verif: PC %#x changes class %v->%v", r.PC, old.op, si.op)
				}
			}
		} else {
			p.static[r.PC] = si
		}
		if r.Op.IsBranch() {
			if r.Taken {
				curByte |= 1 << (takenBits % 8)
				p.targets = append(p.targets, r.EA)
			}
			takenBits++
			if takenBits%8 == 0 {
				p.takens = append(p.takens, curByte)
				curByte = 0
			}
		}
		if r.Op.IsMemory() {
			p.eas = append(p.eas, r.EA)
		}
		// Register IDs can vary per dynamic instance in synthetic traces;
		// store them in the EA side-channel only when they differ from the
		// static image. For exactness we record all dynamic fields below.
		p.dyn = append(p.dyn, dynFields{dst: r.Dst, src1: r.Src1, src2: r.Src2, size: r.Size})
		prev = r
		first = false
		p.count++
	}
	if takenBits%8 != 0 {
		p.takens = append(p.takens, curByte)
	}
	return p, nil
}

// dynFields carries the per-instance register assignment (synthetic traces
// re-assign rename-friendly registers dynamically; real traces would have
// these static).
type dynFields struct {
	dst, src1, src2, size uint8
}

// Len returns the number of dynamic instructions the program replays.
func (p *Program) Len() int { return p.count }

// StaticInstrs returns the number of distinct instruction addresses.
func (p *Program) StaticInstrs() int { return len(p.static) }

// Replay returns a Source that regenerates the original trace exactly.
func (p *Program) Replay() trace.Source {
	return &replayer{p: p, pc: p.entry}
}

type replayer struct {
	p        *Program
	pc       uint64
	idx      int
	takenIdx int
	tgtIdx   int
	eaIdx    int
}

// Next implements trace.Source. A structurally corrupted program (dynamic
// streams shorter than the instruction stream demands) terminates the
// replay cleanly rather than panicking.
func (rp *replayer) Next(r *trace.Record) bool {
	if rp.idx >= rp.p.count || rp.idx >= len(rp.p.dyn) {
		return false
	}
	si, ok := rp.p.static[rp.pc]
	if !ok {
		return false
	}
	d := rp.p.dyn[rp.idx]
	*r = trace.Record{PC: rp.pc, Op: si.op, Dst: d.dst, Src1: d.src1, Src2: d.src2, Size: d.size}
	if si.op.IsBranch() {
		byteIdx, bit := rp.takenIdx/8, uint(rp.takenIdx%8)
		if byteIdx >= len(rp.p.takens) {
			return false
		}
		taken := rp.p.takens[byteIdx]&(1<<bit) != 0
		rp.takenIdx++
		r.Taken = taken
		if taken {
			if rp.tgtIdx >= len(rp.p.targets) {
				return false
			}
			r.EA = rp.p.targets[rp.tgtIdx]
			rp.tgtIdx++
		}
	}
	if si.op.IsMemory() {
		if rp.eaIdx >= len(rp.p.eas) {
			return false
		}
		r.EA = rp.p.eas[rp.eaIdx]
		rp.eaIdx++
	}
	if r.Validate() != nil {
		return false
	}
	rp.pc = r.NextPC()
	rp.idx++
	return true
}

// programMagic identifies an encoded reverse-traced program.
const programMagic = "S64VPRG1"

// WriteTo serializes the program (the "performance test program" artifact
// the paper ships to the logic simulator).
func (p *Program) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.WriteString(programMagic)
	var tmp [binary.MaxVarintLen64]byte
	writeU := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	writeU(p.entry)
	writeU(uint64(p.count))
	writeU(uint64(len(p.static)))
	for pc, si := range p.static {
		writeU(pc)
		buf.Write([]byte{byte(si.op), si.dst, si.src1, si.src2, si.size})
	}
	writeU(uint64(len(p.takens)))
	buf.Write(p.takens)
	writeU(uint64(len(p.targets)))
	prev := uint64(0)
	for _, t := range p.targets {
		n := binary.PutVarint(tmp[:], int64(t-prev))
		buf.Write(tmp[:n])
		prev = t
	}
	writeU(uint64(len(p.eas)))
	prev = 0
	for _, ea := range p.eas {
		n := binary.PutVarint(tmp[:], int64(ea-prev))
		buf.Write(tmp[:n])
		prev = ea
	}
	writeU(uint64(len(p.dyn)))
	for _, d := range p.dyn {
		buf.Write([]byte{d.dst, d.src1, d.src2, d.size})
	}
	return buf.WriteTo(w)
}

// ReadProgram deserializes a program written by WriteTo.
func ReadProgram(r io.Reader) (*Program, error) {
	br := newByteReader(r)
	hdr := make([]byte, len(programMagic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, err
	}
	if string(hdr) != programMagic {
		return nil, errors.New("verif: bad program magic")
	}
	readU := func() (uint64, error) { return binary.ReadUvarint(br) }
	p := &Program{static: make(map[uint64]staticInstr)}
	var err error
	if p.entry, err = readU(); err != nil {
		return nil, err
	}
	cnt, err := readU()
	if err != nil {
		return nil, err
	}
	p.count = int(cnt)
	nStatic, err := readU()
	if err != nil {
		return nil, err
	}
	var b [5]byte
	for i := uint64(0); i < nStatic; i++ {
		pc, err := readU()
		if err != nil {
			return nil, err
		}
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return nil, err
		}
		p.static[pc] = staticInstr{op: isa.Class(b[0]), dst: b[1], src1: b[2],
			src2: b[3], size: b[4], fallthroughNext: pc + isa.InstrBytes}
	}
	nTak, err := readU()
	if err != nil {
		return nil, err
	}
	p.takens = make([]byte, nTak)
	if _, err := io.ReadFull(br, p.takens); err != nil {
		return nil, err
	}
	nTgt, err := readU()
	if err != nil {
		return nil, err
	}
	prev := uint64(0)
	for i := uint64(0); i < nTgt; i++ {
		d, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		prev += uint64(d)
		p.targets = append(p.targets, prev)
	}
	nEA, err := readU()
	if err != nil {
		return nil, err
	}
	prev = 0
	for i := uint64(0); i < nEA; i++ {
		d, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		prev += uint64(d)
		p.eas = append(p.eas, prev)
	}
	nDyn, err := readU()
	if err != nil {
		return nil, err
	}
	var db [4]byte
	for i := uint64(0); i < nDyn; i++ {
		if _, err := io.ReadFull(br, db[:]); err != nil {
			return nil, err
		}
		p.dyn = append(p.dyn, dynFields{dst: db[0], src1: db[1], src2: db[2], size: db[3]})
	}
	return p, nil
}

type byteReader struct {
	r   io.Reader
	buf [1]byte
}

func newByteReader(r io.Reader) *byteReader {
	if br, ok := r.(*byteReader); ok {
		return br
	}
	return &byteReader{r: r}
}

func (b *byteReader) Read(p []byte) (int, error) { return b.r.Read(p) }

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.buf[:]); err != nil {
		return 0, err
	}
	return b.buf[0], nil
}
